package core

import (
	"bytes"
	"encoding/json"
	"errors"
	"path/filepath"
	"strings"
	"testing"

	"scadaver/internal/powergrid"
	"scadaver/internal/scadanet"
)

// transferFixture builds a small enumerate checkpoint with n vector
// entries and returns it with its fingerprint.
func transferFixture(t *testing.T, dir string, n int) (*Checkpoint, string) {
	t.Helper()
	cfg := synthConfig(t, powergrid.Case5(), 7, 2)
	q := Query{Property: Observability, Combined: true, K: 2}
	fp, err := CampaignFingerprint(cfg, CheckpointKindEnumerate, q)
	if err != nil {
		t.Fatal(err)
	}
	ck, err := OpenCheckpoint(filepath.Join(dir, "src.ckpt"), CheckpointKindEnumerate, fp)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := ck.Add(ThreatVector{IEDs: []scadanet.DeviceID{scadanet.DeviceID(i + 1)}}); err != nil {
			t.Fatal(err)
		}
	}
	// Reopen so Entries() exposes the journaled records, like a real
	// exporter serving its on-disk checkpoint.
	ck, err = OpenCheckpoint(filepath.Join(dir, "src.ckpt"), CheckpointKindEnumerate, fp)
	if err != nil {
		t.Fatal(err)
	}
	return ck, fp
}

func TestCheckpointWriteToRoundTrips(t *testing.T) {
	dir := t.TempDir()
	src, fp := transferFixture(t, dir, 3)

	var buf bytes.Buffer
	n, err := src.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	if got := strings.Count(buf.String(), "\n"); got != 4 { // header + 3 entries
		t.Fatalf("serialized checkpoint has %d lines, want 4", got)
	}

	imported, err := ImportCheckpoint(filepath.Join(dir, "dst.ckpt"), CheckpointKindEnumerate, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if imported.Fingerprint() != fp {
		t.Fatalf("imported fingerprint %q != source %q", imported.Fingerprint(), fp)
	}
	if len(imported.Entries()) != 3 {
		t.Fatalf("imported %d entries, want 3", len(imported.Entries()))
	}

	// The imported file must open for the same campaign and carry the
	// same entries, byte for byte.
	reopened, err := OpenCheckpoint(filepath.Join(dir, "dst.ckpt"), CheckpointKindEnumerate, fp)
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range reopened.Entries() {
		if !bytes.Equal(e, src.Entries()[i]) {
			t.Fatalf("entry %d differs after round trip: %s != %s", i, e, src.Entries()[i])
		}
	}
}

func TestImportCheckpointTornFinalLine(t *testing.T) {
	dir := t.TempDir()
	src, fp := transferFixture(t, dir, 3)

	var buf bytes.Buffer
	if _, err := src.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	// A mid-transfer kill: the stream ends partway through the final
	// entry. The complete prefix must import; the torn tail is dropped.
	raw := buf.Bytes()
	cut := raw[:len(raw)-7]
	imported, err := ImportCheckpoint(filepath.Join(dir, "dst.ckpt"), CheckpointKindEnumerate, bytes.NewReader(cut))
	if err != nil {
		t.Fatal(err)
	}
	if len(imported.Entries()) != 2 {
		t.Fatalf("torn import recovered %d entries, want 2", len(imported.Entries()))
	}
	// The materialized file is whole again: reopening finds the same
	// complete prefix, no torn line.
	reopened, err := OpenCheckpoint(filepath.Join(dir, "dst.ckpt"), CheckpointKindEnumerate, fp)
	if err != nil {
		t.Fatal(err)
	}
	if len(reopened.Entries()) != 2 {
		t.Fatalf("reopened torn import has %d entries, want 2", len(reopened.Entries()))
	}
}

func TestImportCheckpointRejectsForeignKindAndSchema(t *testing.T) {
	dir := t.TempDir()
	src, _ := transferFixture(t, dir, 1)
	var buf bytes.Buffer
	if _, err := src.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}

	if _, err := ImportCheckpoint(filepath.Join(dir, "a.ckpt"), CheckpointKindCampaign, bytes.NewReader(buf.Bytes())); !errors.Is(err, ErrCheckpointMismatch) {
		t.Fatalf("foreign-kind import: err = %v, want ErrCheckpointMismatch", err)
	}
	if _, err := ImportCheckpoint(filepath.Join(dir, "b.ckpt"), CheckpointKindEnumerate, strings.NewReader(`{"schema":"bogus/9","kind":"enumerate","fingerprint":"x"}`+"\n")); !errors.Is(err, ErrCheckpointMismatch) {
		t.Fatalf("foreign-schema import: err = %v, want ErrCheckpointMismatch", err)
	}
	if _, err := ImportCheckpoint(filepath.Join(dir, "c.ckpt"), CheckpointKindEnumerate, strings.NewReader("")); !errors.Is(err, ErrCheckpointMismatch) {
		t.Fatalf("empty import: err = %v, want ErrCheckpointMismatch", err)
	}
}

func TestImportCheckpointNeverClobbersForeignFile(t *testing.T) {
	dir := t.TempDir()
	src, _ := transferFixture(t, dir, 2)
	var buf bytes.Buffer
	if _, err := src.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}

	// A resident checkpoint at the destination path bound to a different
	// campaign: the import must refuse, leaving the resident intact.
	other := NewTransferCheckpoint(CheckpointKindEnumerate, "feedfeed", []json.RawMessage{json.RawMessage(`{"ieds":[9]}`)})
	var otherBuf bytes.Buffer
	if _, err := other.WriteTo(&otherBuf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "dst.ckpt")
	if _, err := ImportCheckpoint(path, CheckpointKindEnumerate, &otherBuf); err != nil {
		t.Fatal(err)
	}
	if _, err := ImportCheckpoint(path, CheckpointKindEnumerate, bytes.NewReader(buf.Bytes())); !errors.Is(err, ErrCheckpointMismatch) {
		t.Fatalf("import over a foreign-fingerprint file: err = %v, want ErrCheckpointMismatch", err)
	}
	resident, err := OpenCheckpoint(path, CheckpointKindEnumerate, "feedfeed")
	if err != nil {
		t.Fatalf("resident checkpoint was damaged by the refused import: %v", err)
	}
	if len(resident.Entries()) != 1 {
		t.Fatalf("resident entries = %d, want 1", len(resident.Entries()))
	}
}

func TestImportCheckpointKeepsLongerResident(t *testing.T) {
	dir := t.TempDir()
	src, fp := transferFixture(t, dir, 3)
	var full bytes.Buffer
	if _, err := src.WriteTo(&full); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "dst.ckpt")
	if _, err := ImportCheckpoint(path, CheckpointKindEnumerate, bytes.NewReader(full.Bytes())); err != nil {
		t.Fatal(err)
	}

	// A stale, shorter transfer of the same campaign arrives late: the
	// resident (longer) journal wins.
	short := NewTransferCheckpoint(CheckpointKindEnumerate, fp, src.Entries()[:1])
	var shortBuf bytes.Buffer
	if _, err := short.WriteTo(&shortBuf); err != nil {
		t.Fatal(err)
	}
	got, err := ImportCheckpoint(path, CheckpointKindEnumerate, &shortBuf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Entries()) != 3 {
		t.Fatalf("late short import truncated the journal to %d entries, want 3 kept", len(got.Entries()))
	}
}
