package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"scadaver/internal/core"
	"scadaver/internal/powergrid"
	"scadaver/internal/scadanet"
	"scadaver/internal/synth"
)

func testConfig(t testing.TB) *scadanet.Config {
	t.Helper()
	cfg, err := synth.Generate(synth.Params{Bus: powergrid.Case5(), Seed: 7, Hierarchy: 2, SecureFraction: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

// newTestServer boots a small service over one synthetic config named
// "grid" and returns it with an httptest frontend. The cleanup closes
// the frontend, then drains the service.
func newTestServer(t testing.TB, mutate func(*Options)) (*Server, *httptest.Server) {
	t.Helper()
	opts := Options{
		Configs:        map[string]*scadanet.Config{"grid": testConfig(t)},
		QueueDepth:     8,
		Workers:        4,
		DefaultBudget:  core.QueryBudget{Deadline: 5 * time.Second},
		MaxBudget:      core.QueryBudget{Deadline: 10 * time.Second, Retries: 1},
		RequestTimeout: 30 * time.Second,
		ErrorLog:       log.New(io.Discard, "", 0),
	}
	if mutate != nil {
		mutate(&opts)
	}
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Drain(ctx) //nolint:errcheck // best-effort teardown
	})
	return s, ts
}

func postJSON(t testing.TB, url string, body any) *http.Response {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeBody[T any](t testing.TB, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

func TestVerifyEndpoint(t *testing.T) {
	_, ts := newTestServer(t, nil)
	q := core.Query{Property: core.Observability, Combined: true, K: 0}

	resp := postJSON(t, ts.URL+"/v1/verify", VerifyRequest{Config: "grid", Query: q})
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	got := decodeBody[VerifyResponse](t, resp)
	if got.Result == nil {
		t.Fatal("response has no result")
	}

	a, err := core.NewAnalyzer(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	want, err := a.Verify(q)
	if err != nil {
		t.Fatal(err)
	}
	if got.Result.Status != want.Status || got.Resilient != want.Resilient() {
		t.Fatalf("served verdict (%v, resilient=%v) != direct verdict (%v, resilient=%v)",
			got.Result.Status, got.Resilient, want.Status, want.Resilient())
	}
}

func TestVerifyRejectsBadInput(t *testing.T) {
	_, ts := newTestServer(t, nil)
	q := core.Query{Property: core.Observability, Combined: true, K: 0}

	cases := []struct {
		name string
		body any
		raw  string
		code int
	}{
		{name: "unknown config", body: VerifyRequest{Config: "nope", Query: q}, code: http.StatusNotFound},
		{name: "malformed JSON", raw: `{"config": "grid",`, code: http.StatusBadRequest},
		{name: "unknown field", raw: `{"config": "grid", "querry": {}}`, code: http.StatusBadRequest},
		{name: "negative budget deadline", body: VerifyRequest{Config: "grid", Query: q,
			Budget: BudgetSpec{DeadlineMS: -5}}, code: http.StatusBadRequest},
		{name: "negative budget retries", body: VerifyRequest{Config: "grid", Query: q,
			Budget: BudgetSpec{DeadlineMS: 100, Retries: -1}}, code: http.StatusBadRequest},
		{name: "invalid query", body: VerifyRequest{Config: "grid",
			Query: core.Query{Property: core.Observability, Combined: true, K: -1}}, code: http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var resp *http.Response
			if tc.raw != "" {
				var err error
				resp, err = http.Post(ts.URL+"/v1/verify", "application/json", strings.NewReader(tc.raw))
				if err != nil {
					t.Fatal(err)
				}
			} else {
				resp = postJSON(t, ts.URL+"/v1/verify", tc.body)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tc.code {
				body, _ := io.ReadAll(resp.Body)
				t.Fatalf("status = %d, want %d; body %s", resp.StatusCode, tc.code, body)
			}
			var e errorBody
			if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e.Error == "" {
				t.Fatalf("error envelope missing (err=%v, body=%+v)", err, e)
			}
		})
	}
}

func TestSweepEndpoint(t *testing.T) {
	_, ts := newTestServer(t, nil)
	const maxK = 2

	resp := postJSON(t, ts.URL+"/v1/sweep", SweepRequest{
		Config: "grid", Property: core.Observability, MaxK: maxK,
	})
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	got := decodeBody[SweepResponse](t, resp)
	if len(got.Results) != maxK+1 {
		t.Fatalf("results = %d, want %d", len(got.Results), maxK+1)
	}

	a, err := core.NewAnalyzer(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	sw, err := a.NewSweep(core.Observability, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	want, err := sw.VerifyRange(maxK, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k := range want {
		if got.Results[k].Status != want[k].Status {
			t.Fatalf("k=%d: served status %v != direct %v", k, got.Results[k].Status, want[k].Status)
		}
	}
}

func TestSweepRejectsOutOfRangeK(t *testing.T) {
	s, ts := newTestServer(t, nil)
	resp := postJSON(t, ts.URL+"/v1/sweep", SweepRequest{
		Config: "grid", Property: core.Observability, MaxK: s.opts.MaxSweepK + 1,
	})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
}

// readStream splits an enumerate response into threat-vector lines and
// the trailer (nil when the stream was truncated).
func readStream(t testing.TB, resp *http.Response) ([]core.ThreatVector, *EnumerateTrailer) {
	t.Helper()
	defer resp.Body.Close()
	var vectors []core.ThreatVector
	var trailer *EnumerateTrailer
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		if trailer != nil {
			t.Fatalf("line after trailer: %s", line)
		}
		var probe map[string]json.RawMessage
		if err := json.Unmarshal(line, &probe); err != nil {
			t.Fatalf("bad stream line %q: %v", line, err)
		}
		if _, isTrailer := probe["done"]; isTrailer {
			trailer = &EnumerateTrailer{}
			if err := json.Unmarshal(line, trailer); err != nil {
				t.Fatal(err)
			}
			continue
		}
		var v core.ThreatVector
		if err := json.Unmarshal(line, &v); err != nil {
			t.Fatal(err)
		}
		vectors = append(vectors, v)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return vectors, trailer
}

func vectorKeys(vs []core.ThreatVector) map[string]bool {
	keys := make(map[string]bool, len(vs))
	for _, v := range vs {
		raw, _ := json.Marshal(v)
		keys[string(raw)] = true
	}
	return keys
}

func TestEnumerateEndpointStreamsJSONL(t *testing.T) {
	_, ts := newTestServer(t, nil)
	q := core.Query{Property: core.Observability, Combined: true, K: 2}

	resp := postJSON(t, ts.URL+"/v1/enumerate", EnumerateRequest{Config: "grid", Query: q, Max: 16})
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q", ct)
	}
	vectors, trailer := readStream(t, resp)
	if trailer == nil {
		t.Fatal("stream has no trailer")
	}
	if !trailer.Done || trailer.Vectors != len(vectors) {
		t.Fatalf("trailer = %+v with %d streamed vectors", trailer, len(vectors))
	}

	a, err := core.NewAnalyzer(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	want, err := a.EnumerateThreats(q, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(vectors) != len(want) {
		t.Fatalf("streamed %d vectors, direct enumeration found %d", len(vectors), len(want))
	}
}

func TestHealthzAndReadyz(t *testing.T) {
	_, ts := newTestServer(t, nil)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	body := decodeBody[readyzBody](t, resp)
	if resp.StatusCode != http.StatusOK || !body.Ready || body.Draining || body.BreakerOpen {
		t.Fatalf("readyz = %d %+v", resp.StatusCode, body)
	}
	if len(body.Reasons) != 0 {
		t.Fatalf("ready probe carries unready reasons %v", body.Reasons)
	}
	if body.QueueCap != 8 {
		t.Fatalf("queueCap = %d, want 8", body.QueueCap)
	}
}

func TestMetricsEndpoints(t *testing.T) {
	_, ts := newTestServer(t, nil)
	q := core.Query{Property: core.Observability, Combined: true, K: 0}
	postJSON(t, ts.URL+"/v1/verify", VerifyRequest{Config: "grid", Query: q}).Body.Close()

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain; version=0.0.4") {
		t.Fatalf("/metrics Content-Type = %q", ct)
	}
	for _, want := range []string{"scadaver_http_requests_total", "scadaver_queue_depth", "scadaver_breaker_open"} {
		if !strings.Contains(string(raw), want) {
			t.Fatalf("/metrics missing %s:\n%s", want, raw)
		}
	}

	resp, err = http.Get(ts.URL + "/metrics.json")
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Fatalf("/metrics.json Content-Type = %q", ct)
	}
	var snap struct {
		Counters []json.RawMessage `json:"counters"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(snap.Counters) == 0 {
		t.Fatal("/metrics.json snapshot has no counters")
	}
}

func TestDrainShedsAndTurnsUnready(t *testing.T) {
	s, ts := newTestServer(t, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}

	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	body := decodeBody[readyzBody](t, resp)
	if resp.StatusCode != http.StatusServiceUnavailable || !body.Draining {
		t.Fatalf("readyz after drain = %d %+v", resp.StatusCode, body)
	}
	if len(body.Reasons) != 1 || body.Reasons[0] != "drain in progress" {
		t.Fatalf("draining readyz reasons = %v, want [drain in progress]", body.Reasons)
	}

	q := core.Query{Property: core.Observability, Combined: true, K: 0}
	resp = postJSON(t, ts.URL+"/v1/verify", VerifyRequest{Config: "grid", Query: q})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("verify after drain = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed response has no Retry-After")
	}

	// Liveness is unaffected: the process is healthy, just not ready.
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz during drain = %d", resp.StatusCode)
	}
}

func TestNewRejectsBadOptions(t *testing.T) {
	if _, err := New(Options{}); err == nil {
		t.Fatal("New accepted empty options (no configs)")
	}
	if _, err := New(Options{
		Configs:       map[string]*scadanet.Config{"grid": testConfig(t)},
		DefaultBudget: core.QueryBudget{Deadline: -time.Second},
	}); err == nil {
		t.Fatal("New accepted a negative default budget deadline")
	}
	if _, err := New(Options{
		Configs:   map[string]*scadanet.Config{"grid": testConfig(t)},
		MaxBudget: core.QueryBudget{Retries: -2},
	}); err == nil {
		t.Fatal("New accepted a negative max budget retry count")
	}
}

func TestDeriveBudgetClampsToServerCeiling(t *testing.T) {
	s, _ := newTestServer(t, nil)

	// Absent budget takes the default.
	b, err := s.deriveBudget(core.QueryBudget{})
	if err != nil {
		t.Fatal(err)
	}
	if b.Deadline != s.opts.DefaultBudget.Deadline {
		t.Fatalf("default deadline = %v, want %v", b.Deadline, s.opts.DefaultBudget.Deadline)
	}

	// A client budget above the ceiling is clamped down...
	b, err = s.deriveBudget(core.QueryBudget{Deadline: time.Hour, Retries: 50})
	if err != nil {
		t.Fatal(err)
	}
	if b.Deadline != s.opts.MaxBudget.Deadline || b.Retries != s.opts.MaxBudget.Retries {
		t.Fatalf("clamped budget = %+v, want ceiling %+v", b, s.opts.MaxBudget)
	}

	// ...and a tighter one passes through.
	b, err = s.deriveBudget(core.QueryBudget{Deadline: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if b.Deadline != time.Second {
		t.Fatalf("tight deadline = %v, want 1s", b.Deadline)
	}
}

func TestRequestDeadlineBounds(t *testing.T) {
	s, _ := newTestServer(t, nil)

	// Escalating attempts are summed, so the request deadline covers
	// every retry of an escalating budget.
	d := s.requestDeadline(core.QueryBudget{Deadline: time.Second, Retries: 1}, 1)
	if d < 3*time.Second { // 1s + 2s escalated, plus grace
		t.Fatalf("requestDeadline = %v, want >= 3s for 1s+retry", d)
	}
	// The whole-request ceiling always wins.
	if d := s.requestDeadline(core.QueryBudget{Deadline: time.Hour}, 10); d > s.opts.RequestTimeout {
		t.Fatalf("requestDeadline = %v exceeds RequestTimeout %v", d, s.opts.RequestTimeout)
	}
	// An unbounded budget falls back to the ceiling.
	if d := s.requestDeadline(core.QueryBudget{}, 1); d != s.opts.RequestTimeout {
		t.Fatalf("unbounded requestDeadline = %v, want %v", d, s.opts.RequestTimeout)
	}
}

// TestPortfolioWorkerAccounting pins the replica accounting: arming an
// N-replica portfolio divides the worker pool by N (never below one
// worker), so total solver concurrency stays at the configured level.
func TestPortfolioWorkerAccounting(t *testing.T) {
	cases := []struct {
		workers, portfolio, want int
	}{
		{8, 2, 4},
		{8, 4, 2},
		{4, 4, 1},
		{2, 8, 1}, // more replicas than workers: floor at one worker
		{8, 1, 8}, // <= 1 disables, pool untouched
		{8, 0, 8},
	}
	for _, tc := range cases {
		o := Options{Workers: tc.workers, Portfolio: tc.portfolio}.withDefaults()
		if o.Workers != tc.want {
			t.Fatalf("workers=%d portfolio=%d: pool %d, want %d",
				tc.workers, tc.portfolio, o.Workers, tc.want)
		}
	}
}
