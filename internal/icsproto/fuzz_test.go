package icsproto

import (
	"bytes"
	"testing"
)

// FuzzUnmarshal checks that arbitrary bytes never panic the frame
// parser and that accepted frames re-marshal to the same bytes.
func FuzzUnmarshal(f *testing.F) {
	good, _ := (&Frame{Src: 1, Dst: 2, Seq: 3, Payload: []Measurement{{ID: 4, Value: 5.5}}}).Marshal()
	f.Add(good)
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3})
	f.Add(bytes.Repeat([]byte{0xFF}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := Unmarshal(data)
		if err != nil {
			return
		}
		back, err := fr.Marshal()
		if err != nil {
			t.Fatalf("re-marshal of accepted frame failed: %v", err)
		}
		if !bytes.Equal(back, data) {
			t.Fatalf("round trip changed bytes:\n in  %x\n out %x", data, back)
		}
	})
}

// FuzzSessionOpen checks that arbitrary bytes never panic Open and are
// never accepted without a valid tag.
func FuzzSessionOpen(f *testing.F) {
	key := bytes.Repeat([]byte{7}, 32)
	tx, err := NewSession(key, nil)
	if err != nil {
		f.Fatal(err)
	}
	sealed, err := tx.Seal(&Frame{Src: 1, Dst: 2, Seq: 1})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(sealed)
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xAB}, 40))

	f.Fuzz(func(t *testing.T, data []byte) {
		rx, err := NewSession(key, nil)
		if err != nil {
			t.Fatal(err)
		}
		fr, err := rx.Open(data)
		if err != nil {
			return
		}
		// Anything Open accepts must carry a valid tag, i.e. it must be
		// byte-identical to something a legitimate sender sealed. The
		// only such input in this harness is `sealed` itself.
		if !bytes.Equal(data, sealed) {
			t.Fatalf("forged message accepted: %x -> %+v", data, fr)
		}
	})
}
