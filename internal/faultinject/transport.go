package faultinject

import (
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// Network-level faults, for chaos-testing the cluster coordinator's
// forwarding path: refused connections (a member process is gone), a
// static partition (every connection to one host fails), injected
// forward latency, and a partial-response cut (the member died while
// its response body was in flight). Like every other fault in the
// package they are deterministic and counter-based, armed on the same
// *Faults plan, and nil-is-off: Transport returns its input unchanged
// when no network fault is armed.

// netFaults holds the transport-fault state, separate from the embedded
// value fields so Transport can cheaply detect "nothing armed".
type netFaults struct {
	mu           sync.Mutex
	refusedHosts map[string]bool

	failConnect  map[uint64]bool // forward indices whose connect fails
	forwardDelay time.Duration
	cutAfter     int64 // partial-response cut: body bytes before the cut
	cutArmed     atomic.Bool

	forwardIdx atomic.Uint64
	refused    atomic.Uint64
	cuts       atomic.Uint64
}

func (f *Faults) net() *netFaults {
	f.netOnce.Do(func() { f.netState = &netFaults{} })
	return f.netState
}

// FailConnects arms counter-based connection failures: across every
// request sent through Transport, the forwards with the given global
// 0-based indices fail with ErrInjected before reaching the network —
// the coordinator sees a connection refused. Later forwards succeed
// again (transient, not latched).
func (f *Faults) FailConnects(indices ...uint64) *Faults {
	n := f.net()
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.failConnect == nil {
		n.failConnect = map[uint64]bool{}
	}
	for _, i := range indices {
		n.failConnect[i] = true
	}
	return f
}

// RefuseHost arms a partition: every request to the given host:port
// fails with ErrInjected until HealHost lifts it. This models a network
// partition between the coordinator and one member — the member is
// alive, the path to it is not.
func (f *Faults) RefuseHost(host string) *Faults {
	n := f.net()
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.refusedHosts == nil {
		n.refusedHosts = map[string]bool{}
	}
	n.refusedHosts[host] = true
	return f
}

// HealHost lifts a RefuseHost partition.
func (f *Faults) HealHost(host string) *Faults {
	n := f.net()
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.refusedHosts, host)
	return f
}

// DelayForwards arms injected forward latency: every request sent
// through Transport sleeps d before going out, modeling a slow or
// congested network path. 0 disarms.
func (f *Faults) DelayForwards(d time.Duration) *Faults {
	n := f.net()
	n.mu.Lock()
	defer n.mu.Unlock()
	n.forwardDelay = d
	return f
}

// CutResponseOnce arms a one-shot partial-response cut: the next
// response body read through Transport fails with ErrInjected once n
// bytes have been delivered, as if the sender died mid-response. The
// fault fires once — the retry (or the failover target) streams clean —
// which is exactly the shape a handoff chaos test wants.
func (f *Faults) CutResponseOnce(n int64) *Faults {
	nf := f.net()
	nf.mu.Lock()
	nf.cutAfter = n
	nf.mu.Unlock()
	nf.cutArmed.Store(true)
	return f
}

// Transport wraps base (nil = http.DefaultTransport) with the plan's
// network faults. With a nil plan the base transport is returned
// untouched, so the production path pays nothing.
func (f *Faults) Transport(base http.RoundTripper) http.RoundTripper {
	if base == nil {
		base = http.DefaultTransport
	}
	if f == nil {
		return base
	}
	return &faultyTransport{f: f, base: base}
}

type faultyTransport struct {
	f    *Faults
	base http.RoundTripper
}

func (ft *faultyTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	n := ft.f.net()
	idx := n.forwardIdx.Add(1) - 1

	n.mu.Lock()
	refused := n.refusedHosts[req.URL.Host] || n.failConnect[idx]
	delay := n.forwardDelay
	n.mu.Unlock()

	if delay > 0 {
		time.Sleep(delay)
	}
	if refused {
		n.refused.Add(1)
		return nil, fmt.Errorf("faultinject: connect %s: %w", req.URL.Host, ErrInjected)
	}
	resp, err := ft.base.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	if n.cutArmed.CompareAndSwap(true, false) {
		n.mu.Lock()
		after := n.cutAfter
		n.mu.Unlock()
		resp.Body = &cutBody{rc: resp.Body, remaining: after, counter: &n.cuts}
	}
	return resp, nil
}

// cutBody delivers at most remaining bytes, then fails the read with
// ErrInjected — the reader sees a connection that died mid-body, not a
// clean EOF.
type cutBody struct {
	rc        io.ReadCloser
	remaining int64
	counter   *atomic.Uint64
	cut       bool
}

func (c *cutBody) Read(p []byte) (int, error) {
	if c.cut {
		return 0, ErrInjected
	}
	if c.remaining <= 0 {
		c.cut = true
		c.counter.Add(1)
		return 0, ErrInjected
	}
	if int64(len(p)) > c.remaining {
		p = p[:c.remaining]
	}
	n, err := c.rc.Read(p)
	c.remaining -= int64(n)
	return n, err
}

func (c *cutBody) Close() error { return c.rc.Close() }
