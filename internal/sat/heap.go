package sat

// activityHeap is a binary max-heap of variables ordered by VSIDS activity.
// It maintains a position index so that arbitrary variables can be updated
// or removed in O(log n).
type activityHeap struct {
	heap []Var // heap of variables
	pos  []int // var -> index in heap, -1 if absent
	act  *[]float64
}

func newActivityHeap(act *[]float64) *activityHeap {
	return &activityHeap{act: act}
}

func (h *activityHeap) grow(n int) {
	for len(h.pos) < n {
		h.pos = append(h.pos, -1)
	}
}

func (h *activityHeap) less(i, j int) bool {
	return (*h.act)[h.heap[i]] > (*h.act)[h.heap[j]]
}

func (h *activityHeap) swap(i, j int) {
	h.heap[i], h.heap[j] = h.heap[j], h.heap[i]
	h.pos[h.heap[i]] = i
	h.pos[h.heap[j]] = j
}

func (h *activityHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *activityHeap) down(i int) {
	n := len(h.heap)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && h.less(l, smallest) {
			smallest = l
		}
		if r < n && h.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		h.swap(i, smallest)
		i = smallest
	}
}

func (h *activityHeap) contains(v Var) bool {
	return int(v) < len(h.pos) && h.pos[v] >= 0
}

func (h *activityHeap) push(v Var) {
	h.grow(int(v) + 1)
	if h.contains(v) {
		return
	}
	h.pos[v] = len(h.heap)
	h.heap = append(h.heap, v)
	h.up(h.pos[v])
}

func (h *activityHeap) pop() Var {
	v := h.heap[0]
	last := len(h.heap) - 1
	h.swap(0, last)
	h.heap = h.heap[:last]
	h.pos[v] = -1
	if last > 0 {
		h.down(0)
	}
	return v
}

func (h *activityHeap) empty() bool { return len(h.heap) == 0 }

// update restores heap order after v's activity increased.
func (h *activityHeap) update(v Var) {
	if h.contains(v) {
		h.up(h.pos[v])
	}
}

// rebuild re-heapifies after a global activity rescale.
func (h *activityHeap) rebuild() {
	for i := len(h.heap)/2 - 1; i >= 0; i-- {
		h.down(i)
	}
}
