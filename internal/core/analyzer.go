package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"scadaver/internal/faultinject"
	"scadaver/internal/logic"
	"scadaver/internal/obs"
	"scadaver/internal/sat"
	"scadaver/internal/scadanet"
	"scadaver/internal/secpolicy"
)

// Property selects which dependability property a query verifies.
type Property int

// The three resiliency specifications from the paper (Section III-A).
const (
	Observability Property = iota + 1
	SecuredObservability
	BadDataDetectability
)

// String implements fmt.Stringer.
func (p Property) String() string {
	switch p {
	case Observability:
		return "observability"
	case SecuredObservability:
		return "secured-observability"
	case BadDataDetectability:
		return "bad-data-detectability"
	}
	return "unknown"
}

// MarshalJSON renders the property as its name.
func (p Property) MarshalJSON() ([]byte, error) {
	return json.Marshal(p.String())
}

// UnmarshalJSON parses a property name.
func (p *Property) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	switch s {
	case "observability":
		*p = Observability
	case "secured-observability":
		*p = SecuredObservability
	case "bad-data-detectability":
		*p = BadDataDetectability
	default:
		return fmt.Errorf("core: unknown property %q", s)
	}
	return nil
}

// Query is one resiliency verification request.
type Query struct {
	Property Property `json:"property"`

	// Combined selects the paper's plain k-resiliency (a joint budget of
	// K failures over IEDs and RTUs); otherwise the split (K1, K2) form
	// is used: at most K1 IED and K2 RTU failures.
	Combined bool `json:"combined,omitempty"`
	K        int  `json:"k,omitempty"`
	K1       int  `json:"k1,omitempty"`
	K2       int  `json:"k2,omitempty"`

	// KL additionally allows up to KL communication-link failures (the
	// paper's failure model covers "a link failure toward the device";
	// 0 keeps links reliable).
	KL int `json:"kl,omitempty"`

	// R is the number of simultaneously corrupted measurements tolerated
	// (bad-data detectability only).
	R int `json:"r,omitempty"`
}

// String renders the query compactly, e.g. "(1,1)-resilient
// secured-observability".
func (q Query) String() string {
	if q.Property == BadDataDetectability {
		if q.Combined {
			return fmt.Sprintf("(%d,%d)-resilient %v", q.K, q.R, q.Property)
		}
		return fmt.Sprintf("(%d,%d;r=%d)-resilient %v", q.K1, q.K2, q.R, q.Property)
	}
	if q.Combined {
		return fmt.Sprintf("%d-resilient %v", q.K, q.Property)
	}
	return fmt.Sprintf("(%d,%d)-resilient %v", q.K1, q.K2, q.Property)
}

// ThreatVector is a set of device (and, under a link budget, link)
// failures that violates the queried property within the failure budget.
type ThreatVector struct {
	IEDs  []scadanet.DeviceID `json:"ieds,omitempty"`
	RTUs  []scadanet.DeviceID `json:"rtus,omitempty"`
	Links []scadanet.LinkID   `json:"links,omitempty"`
}

// Size returns the total number of failed elements.
func (v ThreatVector) Size() int { return len(v.IEDs) + len(v.RTUs) + len(v.Links) }

// Devices returns all failed devices, IEDs first, each list sorted.
func (v ThreatVector) Devices() []scadanet.DeviceID {
	out := make([]scadanet.DeviceID, 0, len(v.IEDs)+len(v.RTUs))
	out = append(out, v.IEDs...)
	out = append(out, v.RTUs...)
	return out
}

// String implements fmt.Stringer.
func (v ThreatVector) String() string {
	parts := make([]string, 0, v.Size())
	for _, id := range v.IEDs {
		parts = append(parts, fmt.Sprintf("IED %d", id))
	}
	for _, id := range v.RTUs {
		parts = append(parts, fmt.Sprintf("RTU %d", id))
	}
	for _, id := range v.Links {
		parts = append(parts, fmt.Sprintf("link %d", id))
	}
	if len(parts) == 0 {
		return "{}"
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// Key returns a canonical identity for the vector, for deduplication
// across streams: a resumed enumeration replays its checkpointed
// vectors, so a relay that stitches two streams (the cluster
// coordinator failing an enumeration over to a new owner) drops lines
// whose Key it has already forwarded.
func (v ThreatVector) Key() string { return v.String() }

// key returns a canonical identity for deduplication.
func (v ThreatVector) key() string { return v.Key() }

// PhaseTimes splits one verification into its pipeline phases: building
// the logical model (structure formulas), encoding the query-specific
// constraints to CNF, the SAT solve, and decoding/minimizing the threat
// vector out of a sat model. Phases that did not run (e.g. decode on an
// unsat query) are zero. The paper's evaluation is entirely about where
// this time goes; Result keeps the lump total for compatibility and
// adds this breakdown.
type PhaseTimes struct {
	Build  time.Duration `json:"buildNanos"`
	Encode time.Duration `json:"encodeNanos"`
	// Preprocess is the CNF simplification time (WithPresimplify); for
	// the query that builds a cache snapshot it is the snapshot's one-off
	// Simplify cost, split out of Build. Zero when preprocessing is off
	// or the snapshot came from the cache.
	Preprocess time.Duration `json:"preprocessNanos,omitempty"`
	Solve      time.Duration `json:"solveNanos"`
	Decode     time.Duration `json:"decodeNanos"`

	// Delta-cache accounting (delta-aware EncodingCache only; see
	// DESIGN.md §16). The first query to consume an evolved snapshot
	// claims the mutation's counters, mirroring how the builder query
	// carries the snapshot's one-off preprocessing cost: DeltaReuse
	// constraint groups survived the config delta verbatim,
	// DeltaReencoded were rebuilt inside the dirty cone, and
	// CarriedLearnts learnt clauses passed the RUP carryover gate.
	DeltaReuse     uint64 `json:"deltaReuse,omitempty"`
	DeltaReencoded uint64 `json:"deltaReencoded,omitempty"`
	CarriedLearnts uint64 `json:"carriedLearnts,omitempty"`
}

// Sum returns the total time attributed to phases; the gap to
// Result.Duration is per-query bookkeeping overhead.
func (p PhaseTimes) Sum() time.Duration {
	return p.Build + p.Encode + p.Preprocess + p.Solve + p.Decode
}

// String implements fmt.Stringer.
func (p PhaseTimes) String() string {
	msf := func(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
	s := fmt.Sprintf("build=%.2fms encode=%.2fms solve=%.2fms decode=%.2fms",
		msf(p.Build), msf(p.Encode), msf(p.Solve), msf(p.Decode))
	if p.Preprocess > 0 {
		s += fmt.Sprintf(" preprocess=%.2fms", msf(p.Preprocess))
	}
	if p.DeltaReuse > 0 || p.DeltaReencoded > 0 {
		s += fmt.Sprintf(" delta=%d/%d carried=%d",
			p.DeltaReuse, p.DeltaReuse+p.DeltaReencoded, p.CarriedLearnts)
	}
	return s
}

// Result is the outcome of one verification.
type Result struct {
	Query    Query         `json:"query"`
	Status   sat.Status    `json:"status"` // Sat: threat found; Unsat: resiliency certified
	Vector   *ThreatVector `json:"vector,omitempty"`
	Duration time.Duration `json:"durationNanos"` // total wall time (kept for JSON compatibility)
	Phases   PhaseTimes    `json:"phases"`        // per-phase breakdown of Duration
	Stats    sat.Stats     `json:"stats"`

	// Attempts is the number of solve attempts the query consumed
	// (> 1 when a QueryBudget retried with escalated budgets).
	Attempts int `json:"attempts,omitempty"`
	// FailureReason explains an Unsolved status (ReasonDeadline,
	// ReasonConflicts, ReasonInterrupted, ...); empty for decided
	// queries.
	FailureReason string `json:"failureReason,omitempty"`

	// Certification attestation (WithCertification; see certify.go).
	// Certified reports the verdict was independently checked: a Sat
	// model re-validated against a pristine re-encode and the direct
	// evaluator, an Unsat answer replayed through the DRAT proof
	// checker. Quarantined is set when the first audit diverged and the
	// pristine quarantine re-solve produced the reported verdict;
	// CertifyError then records the divergence (and the quarantine's
	// own failure, if any). ProofClauses counts derived clause
	// additions the checker accepted on this query's solver (cumulative
	// across a Sweep's shared solver); Audit is the certification
	// overhead, outside the solve phase.
	Certified    bool          `json:"certified,omitempty"`
	Quarantined  bool          `json:"quarantined,omitempty"`
	CertifyError string        `json:"certifyError,omitempty"`
	ProofClauses uint64        `json:"proofClauses,omitempty"`
	Audit        time.Duration `json:"auditNanos,omitempty"`
}

// Resilient reports whether the system satisfies the queried resiliency
// specification (i.e. the threat query is unsatisfiable).
func (r *Result) Resilient() bool { return r.Status == sat.Unsat }

// String summarizes the result.
func (r *Result) String() string {
	var s string
	switch r.Status {
	case sat.Sat:
		s = fmt.Sprintf("%v: VIOLATED — threat vector %v (%.2fms)",
			r.Query, r.Vector, float64(r.Duration.Microseconds())/1000)
	case sat.Unsat:
		s = fmt.Sprintf("%v: HOLDS (%v, %.2fms)",
			r.Query, r.Status, float64(r.Duration.Microseconds())/1000)
	default:
		reason := r.FailureReason
		if reason == "" {
			reason = "budget exhausted"
		}
		s = fmt.Sprintf("%v: UNSOLVED — %s after %d attempt(s) (%.2fms)",
			r.Query, reason, max(r.Attempts, 1), float64(r.Duration.Microseconds())/1000)
	}
	if r.Certified {
		s += " [certified]"
	}
	if r.Quarantined {
		s += " [quarantined]"
	}
	return s
}

// Option configures an Analyzer.
type Option func(*Analyzer)

// WithPolicy overrides the default security policy.
func WithPolicy(p *secpolicy.Policy) Option {
	return func(a *Analyzer) { a.policy = p }
}

// WithMaxPaths bounds per-IED path enumeration.
func WithMaxPaths(n int) Option {
	return func(a *Analyzer) { a.maxPaths = n }
}

// WithConflictBudget bounds SAT search per query (0 = unlimited); an
// exhausted budget yields Status Unsolved. The budget applies to every
// individual solve: each verification — and each iteration of threat
// enumeration — gets the full budget.
func WithConflictBudget(n uint64) Option {
	return func(a *Analyzer) { a.conflictBudget = n }
}

// WithFaults threads a deterministic fault-injection plan (see
// internal/faultinject) into every solver and campaign hook of this
// analyzer: solver stalls, solve delays, and — when the same options
// reach a Runner — worker panics. A nil plan (the default) injects
// nothing; the option exists so chaos tests exercise the exact
// production code paths, with no build tags.
func WithFaults(f *faultinject.Faults) Option {
	return func(a *Analyzer) { a.faults = f }
}

// WithInterrupt installs a cancellation hook polled by every solver this
// analyzer creates. When it returns true the in-flight solve unwinds and
// the verification reports Status Unsolved. Runner uses this to wire
// context cancellation into workers.
func WithInterrupt(f func() bool) Option {
	return func(a *Analyzer) { a.interrupt = f }
}

// WithTrace nests every verification of this analyzer under the given
// parent span: one "query" span per Verify / Sweep solve, with "build",
// "encode", "solve" and "decode" phase children, and periodic solver
// "progress" events on the solve span. A nil parent (the default)
// disables tracing at the cost of one nil-check per phase.
func WithTrace(parent *obs.Span) Option {
	return func(a *Analyzer) { a.trace = parent }
}

// WithMetrics records per-query counters and phase-duration histograms
// into the registry (see the scadaver_* metric families in README
// "Observability"). The registry is concurrency-safe, so one registry
// may aggregate across all Runner workers and Sweep iterations of a
// campaign. A nil registry (the default) disables metrics.
func WithMetrics(m *obs.Registry) Option {
	return func(a *Analyzer) { a.metrics = m }
}

// DefaultProgressEvery is the solver progress-probe interval (in
// conflicts) used by traced verifications when none is configured.
const DefaultProgressEvery = 4096

// WithProgressEvery sets how many solver conflicts pass between
// "progress" trace events during a solve (0 keeps
// DefaultProgressEvery). Progress events only fire when tracing is
// enabled via WithTrace.
func WithProgressEvery(n uint64) Option {
	return func(a *Analyzer) { a.progressEvery = n }
}

// Analyzer verifies resiliency specifications of one SCADA
// configuration. It is not safe for concurrent use; create one analyzer
// per goroutine (see Runner, which enforces exactly that ownership
// rule). The underlying configuration is only ever read, so any number
// of analyzers may share one Config concurrently.
type Analyzer struct {
	cfg            *scadanet.Config
	policy         *secpolicy.Policy
	maxPaths       int
	conflictBudget uint64
	interrupt      func() bool
	budget         QueryBudget
	faults         *faultinject.Faults

	// Portfolio escalation (see portfolio.go): replicas raced per hard
	// query, the clause-sharing ablation knob, and the escalation
	// threshold (0 = DefaultPortfolioThreshold; tests lower it to force
	// escalation on small instances). portfolioMaxConc caps concurrently
	// admitted replicas (0 = GOMAXPROCS, <0 = all; chaos tests saturate
	// it so every replica genuinely races on a single-CPU host).
	portfolio        int
	portfolioNoShare bool
	portfolioAfter   uint64
	portfolioMaxConc int

	// Formula preprocessing and the cross-query encoding cache (see
	// codecache.go). encFP memoizes the analyzer's share of the cache
	// key; it is derived state, not configuration.
	presimplify bool
	cache       *EncodingCache
	encFP       string

	// Verdict certification (see certify.go). proofSink is the pending
	// proof writer the next newEncoder call arms on its fresh solver;
	// it is transient per-solve state (analyzers are single-goroutine),
	// not configuration.
	certify   bool
	proofSink sat.ProofWriter

	// Observability (all optional; nil = disabled). qs is the live
	// registry entry of the query currently being verified (analyzers
	// are single-goroutine, so one slot suffices); see flight.go.
	trace         *obs.Span
	metrics       *obs.Registry
	queries       *obs.QueryRegistry
	qs            *obs.QueryState
	progressEvery uint64

	// Derived, computed once.
	fieldIEDs []*scadanet.Device
	fieldRTUs []*scadanet.Device
	stateSets [][]int
	groups    [][]int
	senders   map[int][]scadanet.DeviceID // measurement (1-based) -> IEDs
}

// Verification errors.
var (
	ErrNoFieldDevices = errors.New("core: configuration has no field devices")
	ErrBadQuery       = errors.New("core: invalid query")
)

// NewAnalyzer builds an analyzer over a validated configuration.
func NewAnalyzer(cfg *scadanet.Config, opts ...Option) (*Analyzer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	a := &Analyzer{
		cfg:      cfg,
		policy:   secpolicy.Default(),
		maxPaths: scadanet.DefaultMaxPaths,
	}
	for _, o := range opts {
		o(a)
	}
	if err := a.budget.Validate(); err != nil {
		return nil, err
	}
	a.fieldIEDs = cfg.Net.DevicesOfKind(scadanet.IED)
	a.fieldRTUs = cfg.Net.DevicesOfKind(scadanet.RTU)
	if len(a.fieldIEDs)+len(a.fieldRTUs) == 0 {
		return nil, ErrNoFieldDevices
	}
	a.stateSets = cfg.Msrs.StateSets()
	a.groups = cfg.Msrs.UniqueGroups()
	a.senders = make(map[int][]scadanet.DeviceID)
	for _, d := range a.fieldIEDs {
		for _, z := range cfg.Net.MeasurementsOf(d.ID) {
			a.senders[z] = append(a.senders[z], d.ID)
		}
	}
	return a, nil
}

// Config returns the analyzed configuration.
func (a *Analyzer) Config() *scadanet.Config { return a.cfg }

// Policy returns the active security policy.
func (a *Analyzer) Policy() *secpolicy.Policy { return a.policy }

func validateQuery(q Query) error {
	switch q.Property {
	case Observability, SecuredObservability, BadDataDetectability:
	default:
		return fmt.Errorf("%w: unknown property %d", ErrBadQuery, int(q.Property))
	}
	if q.Combined && q.K < 0 {
		return fmt.Errorf("%w: negative K", ErrBadQuery)
	}
	if !q.Combined && (q.K1 < 0 || q.K2 < 0) {
		return fmt.Errorf("%w: negative K1/K2", ErrBadQuery)
	}
	if q.KL < 0 {
		return fmt.Errorf("%w: negative KL", ErrBadQuery)
	}
	if q.Property == BadDataDetectability && q.R < 0 {
		return fmt.Errorf("%w: negative R", ErrBadQuery)
	}
	return nil
}

// Verify runs one threat query: it searches for a failure set within the
// budget that violates the property. Sat means the specification is
// violated and Result.Vector holds a minimized threat vector; Unsat
// certifies the specification.
//
// The verification is split into four observed phases — build (the
// structural model: configuration constraints and delivery
// definitions), encode (the query-specific budget and negated-property
// constraints), solve, and decode (threat-vector extraction and
// minimization) — reported in Result.Phases and, when tracing is on,
// as child spans of the query span. A cancelled solve (interrupt hook)
// still closes every span on the normal return path.
func (a *Analyzer) Verify(q Query) (*Result, error) {
	if err := validateQuery(q); err != nil {
		return nil, err
	}
	start := time.Now()
	qspan := a.startQuerySpan(q)
	defer qspan.End()
	qs := a.beginQuery(q, "build")
	defer func() {
		if r := recover(); r != nil {
			a.panicQuery(qs, r)
			panic(r)
		}
	}()

	var ph PhaseTimes
	var enc *logic.Encoder
	var built bool
	var entry *encodingEntry
	var sp *obs.Span
	var assumptions []*logic.Formula
	var cert *certState
	// Certification takes the fresh-encoder path even with a cache
	// configured: the proof must start at clause one of this query's
	// formula, not mid-life of a shared snapshot.
	if a.cache != nil && !a.certify {
		// Cached path: clone the shared structural snapshot (built and,
		// under presimplify, simplified exactly once per structure) and
		// solve with the failure budget as an assumption on the private
		// clone, mirroring how Sweep layers budgets over one encoding.
		// Verdicts are unaffected, but the clone explores the search
		// space in a different order than a from-scratch encoding, so a
		// SAT query may surface a different (equally minimal) witness.
		sp = qspan.Start("build")
		t0 := time.Now()
		var err error
		enc, built, entry, err = a.snapshot(q)
		if err != nil {
			sp.End()
			a.completeQuery(qs, qspan, "error", err.Error())
			return nil, err
		}
		ph.Build = time.Since(t0)
		if built {
			preprocessPhase(&ph, entry.pre)
		}
		sp.End()

		qs.SetPhase("encode")
		sp = qspan.Start("encode")
		t0 = time.Now()
		budget := a.budgetFormula(q)
		if a.presimplify && entry != nil && entry.delta.Load() != nil {
			// Delta snapshot: the clone is private, so the budget can be
			// ASSERTED rather than assumed — and that is what makes the
			// cheap preprocessing below possible. Under an assumption the
			// budget's clauses stay guarded and root probing cannot fire
			// them; asserted, specializing and probing the combined
			// formula derives the same interface facts a cold
			// presimplified encode gets from its full Simplify, which is
			// what lets the solve finish at propagation depth.
			enc.Assert(budget)
			ph.Encode = time.Since(t0)
			sp.End()
			qs.SetPhase("preprocess")
			sp = qspan.Start("preprocess")
			t0 = time.Now()
			enc.Solver().ReduceRoot()
			enc.Solver().ProbeRoot(queryProbeLimit)
			ph.Preprocess = time.Since(t0)
			sp.End()
		} else {
			assumptions = append(assumptions, budget)
			ph.Encode = time.Since(t0)
			sp.End()
		}
	} else {
		sp = qspan.Start("build")
		t0 := time.Now()
		cert = a.beginCertify()
		var delivered []*logic.Formula
		enc, delivered = a.encodeStructure(q)
		a.proofSink = nil
		ph.Build = time.Since(t0)
		sp.End()

		qs.SetPhase("encode")
		sp = qspan.Start("encode")
		t0 = time.Now()
		enc.Assert(a.budgetFormula(q))
		enc.Assert(a.violationFormula(q, delivered))
		ph.Encode = time.Since(t0)
		sp.End()

		if a.presimplify {
			qs.SetPhase("preprocess")
			sp = qspan.Start("preprocess")
			t0 = time.Now()
			enc.Simplify()
			ph.Preprocess = time.Since(t0)
			sp.End()
		}
	}

	qs.SetPhase("solve")
	sp = qspan.Start("solve")
	a.armProgress(enc, sp)
	t0 := time.Now()
	out := a.solveBudgeted(q, enc, sp, assumptions...)
	status := a.corruptStatus(out.status)
	ph.Solve = time.Since(t0)
	a.disarmProgress(enc)
	stats := enc.Solver().Stats()
	if built {
		// The builder query carries the snapshot's one-time preprocessing
		// counters so campaign sums account for the work exactly once.
		addPreprocessStats(&stats, entry.pre)
	}
	if entry != nil {
		if st := entry.delta.Load(); st != nil {
			// Feed this solve's learnt clauses back into the lineage's
			// carryover stash (bounded to the snapshot's own variables so a
			// budget-counter auxiliary never leaks across generations) and
			// let the first query on an evolved snapshot claim the
			// mutation's accounting.
			st.harvest(enc, entry.harvestMax)
		}
		if ms, ok := entry.claimDelta(); ok {
			ph.DeltaReuse += ms.DeltaReuse
			ph.DeltaReencoded += ms.DeltaReencoded
			ph.CarriedLearnts += ms.CarriedLearnts
		}
	}
	sp.Annotate(obs.A("status", status.String()), obs.A("conflicts", stats.Conflicts),
		obs.A("attempts", out.attempts))
	sp.End()

	res := &Result{
		Query:         q,
		Status:        status,
		Stats:         stats,
		Attempts:      out.attempts,
		FailureReason: out.reason,
	}
	if status == sat.Sat {
		qs.SetPhase("decode")
		sp = qspan.Start("decode")
		t0 = time.Now()
		v := a.extractVector(q, enc)
		v = a.minimizeVector(q, v)
		if a.faults.CorruptModelNow() {
			a.corruptVector(&v)
		}
		ph.Decode = time.Since(t0)
		sp.End()
		res.Vector = &v
	}
	if cert != nil {
		qs.SetPhase("certify")
		sp = qspan.Start("certify")
		a.certifyResult(q, enc, cert, nil, res)
		sp.Annotate(obs.A("certified", res.Certified))
		sp.End()
	}
	res.Phases = ph
	res.Duration = time.Since(start)
	qspan.Annotate(obs.A("status", res.Status.String()))
	a.recordMetrics(res)
	a.completeQuery(qs, qspan, res.Status.String(), res.FailureReason)
	return res, nil
}

// budgetLabel renders the failure budget for span attributes and metric
// labels: "k=2" for combined budgets, "k1=1,k2=1" for split ones, with
// the link and corrupted-measurement budgets appended when set.
func budgetLabel(q Query) string {
	var s string
	if q.Combined {
		s = fmt.Sprintf("k=%d", q.K)
	} else {
		s = fmt.Sprintf("k1=%d,k2=%d", q.K1, q.K2)
	}
	if q.KL > 0 {
		s += fmt.Sprintf(",kl=%d", q.KL)
	}
	if q.Property == BadDataDetectability {
		s += fmt.Sprintf(",r=%d", q.R)
	}
	return s
}

// startQuerySpan opens the per-verification span (nil when tracing is
// disabled; all span operations then no-op).
func (a *Analyzer) startQuerySpan(q Query) *obs.Span {
	if a.trace == nil {
		return nil
	}
	return a.trace.Start("query",
		obs.A("property", q.Property.String()),
		obs.A("budget", budgetLabel(q)))
}

// armProgress wires the solver's progress probe to "progress" events on
// the given solve span and to the live query registry entry, so long
// searches report conflicts/decisions/propagations/restarts and the
// learnt-DB size while they run. With a registry armed it also installs
// the solver event hook feeding the flight recorder (restarts, DB
// reductions). Callers must clear both via disarmProgress after the
// solve so a probe never outlives its span on a reused solver. With
// neither tracing nor a registry armed nothing is installed, keeping
// the disabled cost at the solver's usual nil-checks.
func (a *Analyzer) armProgress(enc *logic.Encoder, solveSpan *obs.Span) {
	qs := a.qs
	if solveSpan == nil && qs == nil {
		return
	}
	every := a.progressEvery
	if every == 0 {
		every = DefaultProgressEvery
	}
	enc.Solver().SetProgress(every, func(p sat.Progress) {
		qs.Progress(p.Conflicts, p.Decisions, p.Propagations, p.Restarts, p.Reduces, p.LearntDB)
		if solveSpan == nil {
			return
		}
		solveSpan.Event("progress",
			obs.A("conflicts", p.Conflicts),
			obs.A("decisions", p.Decisions),
			obs.A("propagations", p.Propagations),
			obs.A("restarts", p.Restarts),
			obs.A("learntDB", p.LearntDB))
	})
	if qs != nil {
		enc.Solver().SetEventHook(func(e sat.Event) {
			// Restarts fire far more often than the progress probe's
			// cadence, so piggyback the hot counters on each event: the
			// live view then tracks conflicts at restart granularity
			// even when the probe cadence is coarse.
			qs.Progress(e.Conflicts, e.Decisions, e.Propagations, e.Restarts, e.Reduces, e.LearntDB)
			qs.Record(e.Kind.String(), fmt.Sprintf("learnt=%d", e.LearntDB), e.Conflicts)
		})
	}
}

// disarmProgress clears the probe and event hook armed by armProgress.
func (a *Analyzer) disarmProgress(enc *logic.Encoder) {
	enc.Solver().SetProgress(0, nil)
	enc.Solver().SetEventHook(nil)
}

// recordMetrics aggregates one finished verification into the metrics
// registry. Result.Stats is per-solve for both the fresh-encoder path
// (Verify) and the incremental path (Sweep, which stores deltas), so
// the solver counters stay attributable to individual queries.
func (a *Analyzer) recordMetrics(res *Result) {
	m := a.metrics
	if m == nil {
		return
	}
	prop := res.Query.Property.String()
	m.Inc("scadaver_queries_total", map[string]string{
		"property": prop,
		"k":        budgetLabel(res.Query),
		"status":   res.Status.String(),
	})
	for _, phase := range []struct {
		name string
		d    time.Duration
	}{
		{"build", res.Phases.Build},
		{"encode", res.Phases.Encode},
		{"solve", res.Phases.Solve},
		{"decode", res.Phases.Decode},
	} {
		m.ObserveDuration("scadaver_phase_seconds",
			map[string]string{"phase": phase.name, "property": prop}, phase.d)
	}
	pl := map[string]string{"property": prop}
	m.Add("scadaver_solver_conflicts_total", pl, float64(res.Stats.Conflicts))
	m.Add("scadaver_solver_decisions_total", pl, float64(res.Stats.Decisions))
	m.Add("scadaver_solver_propagations_total", pl, float64(res.Stats.Propagations))
	// Preprocessing series only appear on queries that actually ran (or
	// built) a Simplify pass, so dashboards of non-preprocessing
	// deployments stay unchanged.
	if res.Phases.Preprocess > 0 {
		m.ObserveDuration("scadaver_phase_seconds",
			map[string]string{"phase": "preprocess", "property": prop}, res.Phases.Preprocess)
	}
	if res.Stats.SimplifyTime > 0 {
		m.Add("scadaver_sat_elim_vars_total", pl, float64(res.Stats.ElimVars))
		m.ObserveDuration("scadaver_sat_simplify_seconds", pl, res.Stats.SimplifyTime)
	}
}

// nodeVar names the availability term of a field device.
func nodeVar(id scadanet.DeviceID) *logic.Formula { return logic.Vf("Node_%d", id) }

// linkVar names the status term of a link.
func linkVar(id scadanet.LinkID) *logic.Formula { return logic.Vf("Link_%d", id) }

// pairVar names the protocol/crypto pairing judgement of a link.
func pairVar(id scadanet.LinkID) *logic.Formula { return logic.Vf("Pair_%d", id) }

// secVar names the Authenticated ∧ IntegrityProtected judgement of a
// link (secured properties only).
func secVar(id scadanet.LinkID) *logic.Formula { return logic.Vf("Sec_%d", id) }

// encode builds the full SMT-style model of the query: configuration
// constraints, the delivery/observability definitions, the failure
// budget, and the negated property as the goal.
func (a *Analyzer) encode(q Query) *logic.Encoder {
	enc, delivered := a.encodeStructure(q)
	enc.Assert(a.budgetFormula(q))
	enc.Assert(a.violationFormula(q, delivered))
	return enc
}

// encodeStructure builds the query-independent part of the model — the
// configuration constraints and the delivery definitions — and returns
// the encoder together with the per-measurement delivered terms. Only
// the property family (plain vs secured) and the link budget of q are
// consulted; the failure budget and the goal are NOT asserted, which is
// what lets Sweep reuse one structural encoding across a whole k-sweep.
func (a *Analyzer) encodeStructure(q Query) (*logic.Encoder, []*logic.Formula) {
	enc := a.newEncoder()
	secured := q.Property != Observability

	// Device availability: statically down devices are fixed; the MTU
	// and routers are assumed available (the paper's failure model
	// covers IEDs and RTUs).
	for _, d := range append(append([]*scadanet.Device(nil), a.fieldIEDs...), a.fieldRTUs...) {
		if d.Down {
			enc.Assert(logic.Not(nodeVar(d.ID)))
		}
	}
	// Link status. Under a link-failure budget (KL > 0) healthy links
	// are left free and their failures counted; otherwise they are
	// fixed up.
	var linkFailures []*logic.Formula
	for _, l := range a.cfg.Net.Links() {
		switch {
		case l.Down:
			enc.Assert(logic.Not(linkVar(l.ID)))
		case q.KL > 0:
			linkFailures = append(linkFailures, logic.Not(linkVar(l.ID)))
		default:
			enc.Assert(linkVar(l.ID))
		}
	}
	if q.KL > 0 {
		enc.Assert(logic.AtMost(q.KL, linkFailures...))
	}

	// Static per-hop configuration judgements are encoded as named
	// terms fixed to their configured truth values, as in the paper's
	// model (CommProtoPairing/CryptoPropPairing, and for the secured
	// properties Authenticated/IntegrityProtected). This keeps the
	// secured model strictly larger than the plain one — the effect the
	// paper observes in Fig. 5(b).
	for _, l := range a.cfg.Net.Links() {
		protoOK, cryptoOK := a.cfg.Net.HopPairing(l)
		enc.Assert(logic.Iff(pairVar(l.ID), logic.Const(protoOK && cryptoOK)))
		if secured {
			caps := a.cfg.Net.HopCaps(l, a.policy)
			ok := caps.Has(secpolicy.Authenticates | secpolicy.IntegrityProtects)
			enc.Assert(logic.Iff(secVar(l.ID), logic.Const(ok)))
		}
	}

	// Delivery definitions per IED.
	delivery := make(map[scadanet.DeviceID]*logic.Formula, len(a.fieldIEDs))
	for _, d := range a.fieldIEDs {
		delivery[d.ID] = a.deliveryFormula(d.ID, secured)
	}

	// D_Z / S_Z: measurement Z delivered (securely, for secured
	// properties) by at least one transmitting IED.
	delivered := make([]*logic.Formula, a.cfg.Msrs.Len()+1)
	for z := 1; z <= a.cfg.Msrs.Len(); z++ {
		var alts []*logic.Formula
		for _, ied := range a.senders[z] {
			alts = append(alts, delivery[ied])
		}
		delivered[z] = logic.Or(alts...) // False when unassigned
	}
	return enc, delivered
}

// deliveryFormula builds AssuredDelivery_I (or SecuredDelivery_I): the
// IED is available and some enumerated path to the MTU has all links up,
// all intermediate field devices available, and every hop statically
// satisfying the pairing (and, if secured, the authentication and
// integrity) requirements.
func (a *Analyzer) deliveryFormula(ied scadanet.DeviceID, secured bool) *logic.Formula {
	paths := a.cfg.Net.Paths(ied, a.maxPaths)
	alts := make([]*logic.Formula, 0, len(paths))
	for _, path := range paths {
		var conj []*logic.Formula
		at := ied
		for _, l := range path {
			conj = append(conj, linkVar(l.ID), pairVar(l.ID))
			if secured {
				conj = append(conj, secVar(l.ID))
			}
			next := l.Other(at)
			if d := a.cfg.Net.Device(next); d != nil && d.FieldDevice() {
				conj = append(conj, nodeVar(next))
			}
			at = next
		}
		alts = append(alts, logic.And(conj...))
	}
	return logic.And(nodeVar(ied), logic.Or(alts...))
}

// budgetFormula encodes the failure budget: the number of additionally
// unavailable devices stays within the specification. Devices already
// marked Down in the configuration are existing contingencies and do not
// consume budget.
func (a *Analyzer) budgetFormula(q Query) *logic.Formula {
	notNode := func(devs []*scadanet.Device) []*logic.Formula {
		out := make([]*logic.Formula, 0, len(devs))
		for _, d := range devs {
			if d.Down {
				continue
			}
			out = append(out, logic.Not(nodeVar(d.ID)))
		}
		return out
	}
	if q.Combined {
		all := append(notNode(a.fieldIEDs), notNode(a.fieldRTUs)...)
		return logic.AtMost(q.K, all...)
	}
	return logic.And(
		logic.AtMost(q.K1, notNode(a.fieldIEDs)...),
		logic.AtMost(q.K2, notNode(a.fieldRTUs)...),
	)
}

// violationFormula encodes the negated property over the delivered-
// measurement terms (1-based index).
func (a *Analyzer) violationFormula(q Query, delivered []*logic.Formula) *logic.Formula {
	n := a.cfg.Msrs.NStates
	switch q.Property {
	case Observability, SecuredObservability:
		// ¬Obs: some state uncovered, or fewer than n unique delivered
		// measurements.
		var uncovered []*logic.Formula
		for x := 0; x < n; x++ {
			var covers []*logic.Formula
			for z := 1; z <= a.cfg.Msrs.Len(); z++ {
				if containsInt(a.stateSets[z-1], x) {
					covers = append(covers, delivered[z])
				}
			}
			uncovered = append(uncovered, logic.Not(logic.Or(covers...)))
		}
		unique := make([]*logic.Formula, len(a.groups))
		for e, group := range a.groups {
			var any []*logic.Formula
			for _, z0 := range group {
				any = append(any, delivered[z0+1])
			}
			unique[e] = logic.Or(any...)
		}
		return logic.Or(logic.Or(uncovered...), logic.AtMost(n-1, unique...))
	case BadDataDetectability:
		// ¬Detectable: some state is securely covered by at most R
		// measurements (fewer than R+1), so R corrupted measurements can
		// hide bad data on it.
		var weak []*logic.Formula
		for x := 0; x < n; x++ {
			var covers []*logic.Formula
			for z := 1; z <= a.cfg.Msrs.Len(); z++ {
				if containsInt(a.stateSets[z-1], x) {
					covers = append(covers, delivered[z])
				}
			}
			weak = append(weak, logic.AtMost(q.R, covers...))
		}
		return logic.Or(weak...)
	}
	return logic.False()
}

func containsInt(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// extractVector reads the failed devices and links out of a sat model.
func (a *Analyzer) extractVector(q Query, enc *logic.Encoder) ThreatVector {
	var v ThreatVector
	for _, d := range a.fieldIEDs {
		if enc.Value(fmt.Sprintf("Node_%d", d.ID)) == sat.False {
			v.IEDs = append(v.IEDs, d.ID)
		}
	}
	for _, d := range a.fieldRTUs {
		if enc.Value(fmt.Sprintf("Node_%d", d.ID)) == sat.False {
			v.RTUs = append(v.RTUs, d.ID)
		}
	}
	if q.KL > 0 {
		for _, l := range a.cfg.Net.Links() {
			if l.Down {
				continue // an existing contingency, not part of the vector
			}
			if enc.Value(fmt.Sprintf("Link_%d", l.ID)) == sat.False {
				v.Links = append(v.Links, l.ID)
			}
		}
	}
	sortIDs(v.IEDs)
	sortIDs(v.RTUs)
	sortLinkIDs(v.Links)
	return v
}

// minimizeVector greedily removes failures that are not needed for the
// violation, using the direct evaluator, so reported vectors are
// (inclusion-)minimal and easier to act on.
func (a *Analyzer) minimizeVector(q Query, v ThreatVector) ThreatVector {
	f := Failures{
		Devices: map[scadanet.DeviceID]bool{},
		Links:   map[scadanet.LinkID]bool{},
	}
	for _, id := range v.Devices() {
		f.Devices[id] = true
	}
	for _, id := range v.Links {
		f.Links[id] = true
	}
	for _, id := range v.Devices() {
		f.Devices[id] = false
		if a.violatedUnder(q, f) {
			delete(f.Devices, id) // not needed
		} else {
			f.Devices[id] = true // needed
		}
	}
	for _, id := range v.Links {
		f.Links[id] = false
		if a.violatedUnder(q, f) {
			delete(f.Links, id)
		} else {
			f.Links[id] = true
		}
	}
	var out ThreatVector
	for _, d := range a.fieldIEDs {
		if f.Devices[d.ID] {
			out.IEDs = append(out.IEDs, d.ID)
		}
	}
	for _, d := range a.fieldRTUs {
		if f.Devices[d.ID] {
			out.RTUs = append(out.RTUs, d.ID)
		}
	}
	for _, id := range v.Links {
		if f.Links[id] {
			out.Links = append(out.Links, id)
		}
	}
	sortIDs(out.IEDs)
	sortIDs(out.RTUs)
	sortLinkIDs(out.Links)
	return out
}

// violatedUnder evaluates the property directly (no SAT) under a
// concrete failure set.
func (a *Analyzer) violatedUnder(q Query, f Failures) bool {
	switch q.Property {
	case Observability:
		return !a.EvalObservabilityUnder(f, false)
	case SecuredObservability:
		return !a.EvalObservabilityUnder(f, true)
	case BadDataDetectability:
		return !a.EvalBadDataDetectabilityUnder(f, q.R)
	}
	return false
}

func sortLinkIDs(ids []scadanet.LinkID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}

func sortIDs(ids []scadanet.DeviceID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}
