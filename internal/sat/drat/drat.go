// Package drat checks the DRAT-style proofs emitted by internal/sat's
// proof hook (sat.ProofWriter). The Checker verifies forward and in
// process: every ProofAdd step must be a reverse-unit-propagation (RUP)
// consequence of the clauses alive at that point, with a RAT check on
// the first literal as the fallback DRAT allows. Memory stays bounded
// by the solver's own database: ProofDelete steps really remove clauses
// from the checker (with the standard leniency — unmatched deletes are
// ignored, and clauses that currently have at most one unfalsified
// literal are retained so root-level units never lose their
// justification), and clauses satisfied at the root are never stored.
//
// A verdict is certified via VerifyUnsat: either the proof derived the
// empty clause, or — for UNSAT-under-assumptions verdicts, where the
// solver stops as soon as an assumption is falsified instead of
// deriving ⊥ — the clause consisting of the negated assumptions must be
// RUP over the final database. The latter is sound by monotonicity:
// assuming all assumptions at once propagates at least as much as the
// solver's level-by-level descent, so the solver's terminal conflict
// reappears.
//
// Dump (dump.go) is the escape hatch for external checkers: it buffers
// the input formula as DIMACS and the derivation as DRAT text, the
// format drat-trim and friends consume.
package drat

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"scadaver/internal/sat"
)

// cclause is one live checker clause. The first two literals are the
// watched ones (the propagation invariant, as in the solver).
type cclause struct {
	lits    []sat.Lit
	deleted bool
}

// Checker is a forward RUP/RAT proof checker implementing
// sat.ProofWriter. Feed it the solver's proof stream via Step (arm it
// with Solver.SetProofHook before the first AddClause), then ask Err
// for the first malformed step and VerifyUnsat for the final verdict
// certificate. A Checker is not safe for concurrent use.
type Checker struct {
	clauses map[string][]*cclause // canonical key -> live instances
	watches [][]*cclause          // lit -> clauses watching lit
	assigns []int8                // var -> +1 true, -1 false, 0 unassigned
	trail   []sat.Lit
	qhead   int

	empty bool // empty clause derived (the formula is refuted)
	err   error
	steps int
	adds  int
	live  int
	tmp   []sat.Lit // normalization scratch
}

// New returns an empty checker.
func New() *Checker {
	return &Checker{clauses: make(map[string][]*cclause)}
}

// Err returns the first error encountered in the step stream (nil if
// every step checked). Once a step fails, later steps are ignored.
func (c *Checker) Err() error { return c.err }

// Empty reports whether the proof derived the empty clause.
func (c *Checker) Empty() bool { return c.empty }

// Steps returns the number of proof steps consumed.
func (c *Checker) Steps() int { return c.steps }

// Additions returns the number of derived-clause (ProofAdd) steps
// consumed — the size of the checked derivation.
func (c *Checker) Additions() int { return c.adds }

// Live returns the number of clauses currently held, the checker's
// memory bound.
func (c *Checker) Live() int { return c.live }

// Step implements sat.ProofWriter.
func (c *Checker) Step(op sat.ProofOp, lits []sat.Lit) {
	if c.err != nil {
		return
	}
	c.steps++
	switch op {
	case sat.ProofInput:
		c.addClause(lits)
	case sat.ProofAdd:
		c.adds++
		if c.empty {
			return // refutation complete; anything follows
		}
		if !c.rup(lits) && !c.rat(lits) {
			c.err = fmt.Errorf("drat: step %d: clause (%s) is neither RUP nor RAT", c.steps, clauseString(lits))
			return
		}
		c.addClause(lits)
	case sat.ProofDelete:
		c.deleteClause(lits)
	default:
		c.err = fmt.Errorf("drat: step %d: unknown op %d", c.steps, op)
	}
}

// CheckClause reports whether lits is RUP or RAT over the current
// database without adding it. This is how UNSAT-under-assumptions
// verdicts are certified (see VerifyUnsat).
func (c *Checker) CheckClause(lits []sat.Lit) error {
	if c.err != nil {
		return c.err
	}
	if c.rup(lits) || c.rat(lits) {
		return nil
	}
	return fmt.Errorf("drat: clause (%s) is neither RUP nor RAT", clauseString(lits))
}

// VerifyUnsat certifies an Unsat verdict. With no assumptions the proof
// must have derived the empty clause; under assumptions it suffices
// that the clause of negated assumptions is RUP/RAT over the final
// database (the solver's terminal conflict, replayed all at once).
func (c *Checker) VerifyUnsat(assumptions ...sat.Lit) error {
	if c.err != nil {
		return c.err
	}
	if c.empty {
		return nil
	}
	if len(assumptions) == 0 {
		return errors.New("drat: proof did not derive the empty clause")
	}
	neg := make([]sat.Lit, len(assumptions))
	for i, a := range assumptions {
		neg[i] = a.Neg()
	}
	if err := c.CheckClause(neg); err != nil {
		return fmt.Errorf("drat: assumption clause not implied: %w", err)
	}
	return nil
}

func (c *Checker) ensure(lits []sat.Lit) {
	max := -1
	for _, l := range lits {
		if v := int(l.Var()); v > max {
			max = v
		}
	}
	for len(c.assigns) <= max {
		c.assigns = append(c.assigns, 0)
		c.watches = append(c.watches, nil, nil)
	}
}

func (c *Checker) value(l sat.Lit) int8 {
	v := c.assigns[l.Var()]
	if l.Sign() {
		return -v
	}
	return v
}

func (c *Checker) enqueue(l sat.Lit) {
	if l.Sign() {
		c.assigns[l.Var()] = -1
	} else {
		c.assigns[l.Var()] = 1
	}
	c.trail = append(c.trail, l)
}

// undo pops probe assignments back to the trail mark.
func (c *Checker) undo(mark int) {
	for i := len(c.trail) - 1; i >= mark; i-- {
		c.assigns[c.trail[i].Var()] = 0
	}
	c.trail = c.trail[:mark]
	c.qhead = mark
}

// propagate runs unit propagation from the queue head; it reports true
// on conflict. Watch lists purge deleted clauses lazily as they scan.
func (c *Checker) propagate() bool {
	for c.qhead < len(c.trail) {
		p := c.trail[c.qhead]
		c.qhead++
		fl := p.Neg() // literal that just became false
		ws := c.watches[fl]
		kept := ws[:0]
		conflict := false
		for wi := 0; wi < len(ws); wi++ {
			cl := ws[wi]
			if cl.deleted {
				continue
			}
			if conflict {
				kept = append(kept, ws[wi:]...)
				break
			}
			if cl.lits[0] == fl {
				cl.lits[0], cl.lits[1] = cl.lits[1], cl.lits[0]
			}
			first := cl.lits[0]
			if c.value(first) == 1 {
				kept = append(kept, cl)
				continue
			}
			moved := false
			for k := 2; k < len(cl.lits); k++ {
				if c.value(cl.lits[k]) >= 0 {
					cl.lits[1], cl.lits[k] = cl.lits[k], cl.lits[1]
					c.watches[cl.lits[1]] = append(c.watches[cl.lits[1]], cl)
					moved = true
					break
				}
			}
			if moved {
				continue
			}
			kept = append(kept, cl)
			if c.value(first) == -1 {
				conflict = true
				c.qhead = len(c.trail)
				continue
			}
			c.enqueue(first)
		}
		for j := len(kept); j < len(ws); j++ {
			ws[j] = nil
		}
		c.watches[fl] = kept
		if conflict {
			return true
		}
	}
	return false
}

// normalize sorts and dedupes lits into the scratch buffer; ok is false
// for tautologies.
func (c *Checker) normalize(lits []sat.Lit) (out []sat.Lit, ok bool) {
	c.tmp = append(c.tmp[:0], lits...)
	sort.Slice(c.tmp, func(i, j int) bool { return c.tmp[i] < c.tmp[j] })
	w := 0
	for i, l := range c.tmp {
		if w > 0 && l == c.tmp[w-1] {
			continue
		}
		if w > 0 && l == c.tmp[w-1].Neg() {
			return nil, false
		}
		c.tmp[w] = c.tmp[i]
		w++
	}
	return c.tmp[:w], true
}

func key(sorted []sat.Lit) string {
	var b strings.Builder
	b.Grow(4 * len(sorted))
	for _, l := range sorted {
		b.WriteByte(byte(l))
		b.WriteByte(byte(l >> 8))
		b.WriteByte(byte(l >> 16))
		b.WriteByte(byte(l >> 24))
	}
	return b.String()
}

// addClause installs a (verified or input) clause: root-satisfied
// clauses and tautologies are not stored, unit consequences go straight
// to the root trail, and a root conflict records the refutation.
func (c *Checker) addClause(lits []sat.Lit) {
	c.ensure(lits)
	norm, ok := c.normalize(lits)
	if !ok {
		return // tautology: permanently satisfied
	}
	if len(norm) == 0 {
		c.empty = true
		return
	}
	// Find up to two unfalsified literals to watch, noting satisfaction.
	w0, w1 := -1, -1
	for i, l := range norm {
		switch c.value(l) {
		case 1:
			return // satisfied at root: dead weight forever
		case 0:
			if w0 < 0 {
				w0 = i
			} else if w1 < 0 {
				w1 = i
			}
		}
	}
	switch {
	case w0 < 0:
		c.empty = true // all literals false at root
	case w1 < 0:
		// Unit under the root assignment: the fact outlives the clause.
		c.enqueue(norm[w0])
		if c.propagate() {
			c.empty = true
		}
	default:
		cl := &cclause{lits: append([]sat.Lit(nil), norm...)}
		cl.lits[0], cl.lits[w0] = cl.lits[w0], cl.lits[0]
		if w1 == 0 {
			w1 = w0
		}
		cl.lits[1], cl.lits[w1] = cl.lits[w1], cl.lits[1]
		c.watches[cl.lits[0]] = append(c.watches[cl.lits[0]], cl)
		c.watches[cl.lits[1]] = append(c.watches[cl.lits[1]], cl)
		c.clauses[key(norm)] = append(c.clauses[key(norm)], cl)
		c.live++
	}
}

// deleteClause removes one instance of the clause, leniently: unmatched
// deletes are ignored (the solver may know a clause in root-filtered
// form), and clauses that are currently unit-or-conflicting under the
// root assignment are retained so derived root facts stay justified.
func (c *Checker) deleteClause(lits []sat.Lit) {
	c.ensure(lits)
	norm, ok := c.normalize(lits)
	if !ok {
		return
	}
	bucket := c.clauses[key(norm)]
	for i, cl := range bucket {
		if cl.deleted {
			continue
		}
		nonFalse, satisfied := 0, false
		for _, l := range cl.lits {
			switch c.value(l) {
			case 1:
				satisfied = true
			case 0:
				nonFalse++
			}
		}
		if !satisfied && nonFalse <= 1 {
			return // effectively unit: keep (standard DRAT leniency)
		}
		cl.deleted = true // watch lists purge lazily
		c.live--
		bucket[i] = bucket[len(bucket)-1]
		bucket = bucket[:len(bucket)-1]
		k := key(norm)
		if len(bucket) == 0 {
			delete(c.clauses, k)
		} else {
			c.clauses[k] = bucket
		}
		return
	}
}

// rup checks reverse unit propagation: assuming the negation of every
// literal must propagate to a conflict. A literal already true at the
// root (or a tautological pair) makes the clause trivially implied.
func (c *Checker) rup(lits []sat.Lit) bool {
	if c.empty {
		return true
	}
	c.ensure(lits)
	mark := len(c.trail)
	for _, l := range lits {
		switch c.value(l) {
		case 1:
			c.undo(mark)
			return true
		case 0:
			c.enqueue(l.Neg())
		}
	}
	conflict := c.propagate()
	c.undo(mark)
	return conflict
}

// rat checks the resolution-asymmetric-tautology fallback on the first
// literal (the DRAT pivot convention): every resolvent with a clause
// containing the pivot's negation must itself be RUP. The solver's own
// emissions are RUP by construction, so this path is cold — it scans
// the whole database rather than keeping occurrence lists.
func (c *Checker) rat(lits []sat.Lit) bool {
	if len(lits) == 0 {
		return false
	}
	pivot := lits[0]
	np := pivot.Neg()
	for _, bucket := range c.clauses {
		for _, cl := range bucket {
			if cl.deleted {
				continue
			}
			contains := false
			for _, l := range cl.lits {
				if l == np {
					contains = true
					break
				}
			}
			if !contains {
				continue
			}
			res := append([]sat.Lit(nil), lits...)
			for _, l := range cl.lits {
				if l != np {
					res = append(res, l)
				}
			}
			if !c.rup(res) {
				return false
			}
		}
	}
	return true
}

func clauseString(lits []sat.Lit) string {
	parts := make([]string, len(lits))
	for i, l := range lits {
		parts[i] = l.String()
	}
	return strings.Join(parts, " ")
}
