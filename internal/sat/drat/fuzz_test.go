package drat

import (
	"testing"

	"scadaver/internal/sat"
)

// cnfFromBytes decodes fuzz input into a small CNF: the first byte
// picks the variable count (3..10), each following byte is either a
// literal (mod 2*nv) or a clause terminator. Clause and width caps keep
// brute-force ground truth affordable.
func cnfFromBytes(data []byte) (nv int, cnf [][]int) {
	if len(data) < 2 {
		return 0, nil
	}
	nv = 3 + int(data[0])%8
	mod := 2*nv + 1
	var cl []int
	flush := func() {
		if len(cl) > 0 && len(cnf) < 64 {
			cnf = append(cnf, cl)
		}
		cl = nil
	}
	for _, b := range data[1:] {
		code := int(b) % mod
		if code == 2*nv {
			flush()
			continue
		}
		lit := code/2 + 1
		if code%2 == 1 {
			lit = -lit
		}
		if len(cl) < 5 {
			cl = append(cl, lit)
		}
	}
	flush()
	return nv, cnf
}

// FuzzDRATCheck cross-checks the proof pipeline on fuzz-shaped CNFs:
//
//  1. Completeness — every proof the solver emits (plain, simplified,
//     or inprocessed pipeline, chosen by an input byte) must check, and
//     an Unsat verdict must be certifiable via VerifyUnsat.
//  2. Verdict soundness — solver answers must match brute force.
//  3. Checker soundness — weakening the logged input formula (dropping
//     or literal-flipping an input clause) while replaying the
//     unchanged derivation must be rejected whenever the weakened
//     formula is in fact satisfiable; accepting it would certify a
//     wrong unsat answer, the exact failure certification exists to
//     catch.
//  4. Mutation detection — dropping the final derivation step must
//     leave the refutation uncertified (unless an earlier step already
//     derived the empty clause).
func FuzzDRATCheck(f *testing.F) {
	f.Add([]byte{0, 1, 16, 3, 16, 5, 16})
	f.Add([]byte{3, 0, 2, 16, 1, 3, 16, 5, 4, 16, 2, 7, 16})
	f.Add([]byte{7, 0, 16, 1, 16}) // x and ¬x: unsat at the root
	f.Add([]byte{1, 0, 2, 4, 16, 1, 3, 16, 5, 16, 0, 3, 5, 16, 2, 16, 4, 1, 16})
	f.Fuzz(func(t *testing.T, data []byte) {
		nv, cnf := cnfFromBytes(data)
		if len(cnf) == 0 {
			return
		}
		rec := &stream{}
		s := sat.New()
		s.SetProofHook(rec)
		for i := 0; i < nv; i++ {
			s.NewVar()
		}
		for _, cl := range cnf {
			if err := s.AddClause(toLits(cl)...); err != nil {
				t.Fatalf("AddClause(%v): %v", cl, err)
			}
		}
		switch data[len(data)-1] % 3 {
		case 1:
			s.Simplify()
		case 2:
			s.SetInprocess(true)
		}
		st := s.Solve()
		want := bruteForceSat(nv, cnf)

		if st == sat.Sat {
			if !want {
				t.Fatalf("solver sat, brute force unsat: %v", cnf)
			}
			m := s.Model()
			for _, cl := range cnf {
				ok := false
				for _, n := range cl {
					v := n
					if v < 0 {
						v = -v
					}
					if (n > 0) == m[v-1] {
						ok = true
						break
					}
				}
				if !ok {
					t.Fatalf("model falsifies clause %v", cl)
				}
			}
			return
		}
		if st != sat.Unsat {
			t.Fatalf("unexpected status %v", st)
		}
		if want {
			t.Fatalf("solver unsat, brute force sat: %v", cnf)
		}

		// (1) The genuine proof must check.
		ck := replayInto(rec.steps)
		if err := ck.Err(); err != nil {
			t.Fatalf("proof step rejected: %v", err)
		}
		if err := ck.VerifyUnsat(); err != nil {
			t.Fatalf("unsat not certified: %v", err)
		}

		// (3) Weakened-input replays must not certify satisfiable
		// formulas. The logged Input steps ARE the formula the proof is
		// about, so the weakened ground truth is computed from them.
		var inputs [][]int
		for _, step := range rec.steps {
			if step.op == sat.ProofInput {
				inputs = append(inputs, fromLits(step.lits))
			}
		}
		ordinal := -1
		for i, step := range rec.steps {
			if step.op != sat.ProofInput {
				continue
			}
			ordinal++
			mut := append([]streamStep(nil), rec.steps[:i]...)
			mut = append(mut, rec.steps[i+1:]...)
			weaker := append(append([][]int(nil), inputs[:ordinal]...), inputs[ordinal+1:]...)
			if bruteForceSat(nv, weaker) {
				if mck := replayInto(mut); mck.Err() == nil && mck.VerifyUnsat() == nil {
					t.Fatalf("checker certified unsat for a satisfiable weakening (dropped input %d)", ordinal)
				}
			}
		}

		// (4) Dropping the final derivation step must leave the
		// refutation uncertified unless redundancy covers it.
		last := -1
		for i, step := range rec.steps {
			if step.op == sat.ProofAdd {
				last = i
			}
		}
		if last >= 0 {
			mut := append([]streamStep(nil), rec.steps[:last]...)
			mut = append(mut, rec.steps[last+1:]...)
			mck := replayInto(mut)
			if !mck.Empty() && mck.VerifyUnsat() == nil {
				t.Fatal("dropped final step still certified")
			}
		}
	})
}

// fromLits converts sat literals back to 1-based DIMACS-style ints.
func fromLits(lits []sat.Lit) []int {
	out := make([]int, len(lits))
	for i, l := range lits {
		n := int(l.Var()) + 1
		if l.Sign() {
			n = -n
		}
		out[i] = n
	}
	return out
}
