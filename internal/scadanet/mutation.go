package scadanet

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"scadaver/internal/secpolicy"
)

// Mutation errors. ErrBadDelta covers structurally invalid deltas (an
// op missing its operands, an op on a device kind it cannot apply to);
// ErrUnknownLink covers deltas naming a link the configuration does not
// have. Both are wrapped with %w by Apply so callers classify them with
// errors.Is, exactly like the parser sentinels.
var (
	ErrBadDelta    = errors.New("scadanet: bad mutation delta")
	ErrUnknownLink = errors.New("scadanet: delta references unknown link")
)

// OpKind names one typed mutation operation.
type OpKind string

// The supported mutation operations.
const (
	OpDeviceUp      OpKind = "device-up"
	OpDeviceDown    OpKind = "device-down"
	OpLinkAdd       OpKind = "link-add"
	OpLinkRemove    OpKind = "link-remove"
	OpLinkReprofile OpKind = "link-reprofile"
	OpKeyRotate     OpKind = "key-rotate"
)

// Op is one typed mutation: which operation, and the operands it needs.
// Unused operands stay zero. Profiles uses the textual token format of
// the [security] section ("algo bits algo bits ...").
type Op struct {
	Kind     OpKind   `json:"kind"`
	Device   DeviceID `json:"device,omitempty"`   // device-up / device-down
	Link     LinkID   `json:"link,omitempty"`     // link-remove / link-reprofile / key-rotate
	A        DeviceID `json:"a,omitempty"`        // link-add endpoint
	B        DeviceID `json:"b,omitempty"`        // link-add endpoint
	Profiles []string `json:"profiles,omitempty"` // link-add / link-reprofile: "algo bits ..." tokens
	KeyBits  int      `json:"keyBits,omitempty"`  // key-rotate: new key length
}

func (o Op) String() string {
	switch o.Kind {
	case OpDeviceUp, OpDeviceDown:
		return fmt.Sprintf("%s %d", o.Kind, o.Device)
	case OpLinkAdd:
		s := fmt.Sprintf("%s %d %d", o.Kind, o.A, o.B)
		if len(o.Profiles) > 0 {
			s += " " + strings.Join(o.Profiles, " ")
		}
		return s
	case OpLinkReprofile:
		return fmt.Sprintf("%s %d %s", o.Kind, o.Link, strings.Join(o.Profiles, " "))
	case OpKeyRotate:
		return fmt.Sprintf("%s %d %d", o.Kind, o.Link, o.KeyBits)
	default:
		return fmt.Sprintf("%s %d", o.Kind, o.Link)
	}
}

// Delta is an ordered batch of mutation ops applied atomically: either
// every op applies and the mutated configuration validates, or the
// original configuration is untouched.
type Delta struct {
	Ops []Op `json:"ops"`
}

func (d Delta) String() string {
	parts := make([]string, len(d.Ops))
	for i, op := range d.Ops {
		parts[i] = op.String()
	}
	return strings.Join(parts, "; ")
}

// Dirty is the cone of a delta: the devices and links whose constraints
// a delta-aware encoder must re-encode. Topology reports whether link
// endpoints changed (link-add / link-remove), which additionally
// invalidates delivery-path constraints downstream of the touched
// links.
type Dirty struct {
	Devices  []DeviceID `json:"devices,omitempty"`
	Links    []LinkID   `json:"links,omitempty"`
	Topology bool       `json:"topology,omitempty"`
}

func (d *Dirty) device(id DeviceID) {
	for _, have := range d.Devices {
		if have == id {
			return
		}
	}
	d.Devices = append(d.Devices, id)
}

func (d *Dirty) link(id LinkID) {
	for _, have := range d.Links {
		if have == id {
			return
		}
	}
	d.Links = append(d.Links, id)
}

// Apply applies the delta to a deep clone of the configuration and
// returns the mutated clone plus the dirty device/link set; the
// receiver is never modified. Errors wrap the relevant sentinel
// (ErrBadDelta, ErrUnknownDevice, ErrUnknownLink, or a validation
// sentinel such as ErrNoMTU) with the index of the offending op, and
// leave the receiver as the only valid configuration.
func (c *Config) Apply(d Delta) (*Config, Dirty, error) {
	var dirty Dirty
	if len(d.Ops) == 0 {
		return nil, dirty, fmt.Errorf("%w: empty delta", ErrBadDelta)
	}
	next := c.Clone()
	for i, op := range d.Ops {
		if err := next.apply(op, &dirty); err != nil {
			return nil, Dirty{}, fmt.Errorf("delta op %d (%s): %w", i, op.Kind, err)
		}
	}
	if err := next.Validate(); err != nil {
		return nil, Dirty{}, fmt.Errorf("delta result invalid: %w", err)
	}
	return next, dirty, nil
}

func (c *Config) apply(op Op, dirty *Dirty) error {
	switch op.Kind {
	case OpDeviceUp, OpDeviceDown:
		dev := c.Net.Device(op.Device)
		if dev == nil {
			return fmt.Errorf("%w: %d", ErrUnknownDevice, op.Device)
		}
		if !dev.FieldDevice() {
			return fmt.Errorf("%w: %s on %v %d (only field devices fail)",
				ErrBadDelta, op.Kind, dev.Kind, dev.ID)
		}
		dev.Down = op.Kind == OpDeviceDown
		dirty.device(dev.ID)
		return nil

	case OpLinkAdd:
		profiles, err := parseOpProfiles(op.Profiles)
		if err != nil {
			return err
		}
		l, err := c.Net.AddLink(op.A, op.B, profiles...)
		if err != nil {
			return err
		}
		dirty.link(l.ID)
		dirty.Topology = true
		return nil

	case OpLinkRemove:
		if !c.Net.RemoveLink(op.Link) {
			return fmt.Errorf("%w: %d", ErrUnknownLink, op.Link)
		}
		dirty.link(op.Link)
		dirty.Topology = true
		return nil

	case OpLinkReprofile:
		l := c.Net.Link(op.Link)
		if l == nil {
			return fmt.Errorf("%w: %d", ErrUnknownLink, op.Link)
		}
		profiles, err := parseOpProfiles(op.Profiles)
		if err != nil {
			return err
		}
		if len(profiles) == 0 {
			return fmt.Errorf("%w: link-reprofile %d without profiles", ErrBadDelta, op.Link)
		}
		l.Profiles = profiles
		dirty.link(l.ID)
		return nil

	case OpKeyRotate:
		l := c.Net.Link(op.Link)
		if l == nil {
			return fmt.Errorf("%w: %d", ErrUnknownLink, op.Link)
		}
		if len(l.Profiles) == 0 {
			return fmt.Errorf("%w: key-rotate %d on a link with no pairwise profiles", ErrBadDelta, op.Link)
		}
		if op.KeyBits <= 0 {
			return fmt.Errorf("%w: key-rotate %d wants positive key bits, got %d", ErrBadDelta, op.Link, op.KeyBits)
		}
		for i := range l.Profiles {
			l.Profiles[i].KeyBits = op.KeyBits
		}
		dirty.link(l.ID)
		return nil

	default:
		return fmt.Errorf("%w: unknown op kind %q", ErrBadDelta, op.Kind)
	}
}

func parseOpProfiles(tokens []string) ([]secpolicy.Profile, error) {
	if len(tokens) == 0 {
		return nil, nil
	}
	profiles, err := secpolicy.ParseProfiles(tokens)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadDelta, err)
	}
	return profiles, nil
}

// ParseDelta reads the textual delta form used by the CLIs: ops
// separated by semicolons, each in its Op.String() grammar, e.g.
//
//	link-remove 7; device-down 3; link-add 2 9 hmac 128; key-rotate 4 256
func ParseDelta(s string) (Delta, error) {
	var d Delta
	for _, part := range strings.Split(s, ";") {
		fields := strings.Fields(part)
		if len(fields) == 0 {
			continue
		}
		op := Op{Kind: OpKind(strings.ToLower(fields[0]))}
		args := fields[1:]
		atoi := func(what, f string) (int, error) {
			v, err := strconv.Atoi(f)
			if err != nil {
				return 0, fmt.Errorf("%w: bad %s %q in %q", ErrBadDelta, what, f, strings.TrimSpace(part))
			}
			return v, nil
		}
		switch op.Kind {
		case OpDeviceUp, OpDeviceDown:
			if len(args) != 1 {
				return Delta{}, fmt.Errorf("%w: %s wants 'ID', got %q", ErrBadDelta, op.Kind, strings.TrimSpace(part))
			}
			id, err := atoi("device ID", args[0])
			if err != nil {
				return Delta{}, err
			}
			op.Device = DeviceID(id)
		case OpLinkAdd:
			if len(args) < 2 {
				return Delta{}, fmt.Errorf("%w: link-add wants 'A B [algo bits ...]', got %q", ErrBadDelta, strings.TrimSpace(part))
			}
			a, err := atoi("endpoint", args[0])
			if err != nil {
				return Delta{}, err
			}
			b, err := atoi("endpoint", args[1])
			if err != nil {
				return Delta{}, err
			}
			op.A, op.B = DeviceID(a), DeviceID(b)
			op.Profiles = args[2:]
		case OpLinkRemove:
			if len(args) != 1 {
				return Delta{}, fmt.Errorf("%w: link-remove wants 'LINK', got %q", ErrBadDelta, strings.TrimSpace(part))
			}
			id, err := atoi("link ID", args[0])
			if err != nil {
				return Delta{}, err
			}
			op.Link = LinkID(id)
		case OpLinkReprofile:
			if len(args) < 3 {
				return Delta{}, fmt.Errorf("%w: link-reprofile wants 'LINK algo bits ...', got %q", ErrBadDelta, strings.TrimSpace(part))
			}
			id, err := atoi("link ID", args[0])
			if err != nil {
				return Delta{}, err
			}
			op.Link = LinkID(id)
			op.Profiles = args[1:]
		case OpKeyRotate:
			if len(args) != 2 {
				return Delta{}, fmt.Errorf("%w: key-rotate wants 'LINK BITS', got %q", ErrBadDelta, strings.TrimSpace(part))
			}
			id, err := atoi("link ID", args[0])
			if err != nil {
				return Delta{}, err
			}
			bits, err := atoi("key bits", args[1])
			if err != nil {
				return Delta{}, err
			}
			op.Link, op.KeyBits = LinkID(id), bits
		default:
			return Delta{}, fmt.Errorf("%w: unknown op kind %q", ErrBadDelta, fields[0])
		}
		d.Ops = append(d.Ops, op)
	}
	if len(d.Ops) == 0 {
		return Delta{}, fmt.Errorf("%w: empty delta", ErrBadDelta)
	}
	return d, nil
}
