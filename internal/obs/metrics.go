package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// DefBuckets are the default histogram bucket upper bounds in seconds,
// spanning sub-millisecond encodes to multi-second unsat proofs. An
// implicit +Inf bucket always follows.
var DefBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Registry is a concurrency-safe metrics store: monotonic counters,
// last-write-wins gauges, and duration histograms, each keyed by a
// metric name plus a small label set (property, budget, phase, ...).
// One registry aggregates across all Runner workers and Sweep
// iterations of a campaign; export it once at the end with
// WritePrometheus or WriteJSON, or serve it live with Handler.
//
// The nil *Registry is a valid disabled registry: Add, SetGauge and
// Observe return immediately.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*counterSeries
	gauges   map[string]*counterSeries
	hists    map[string]*histSeries
}

type counterSeries struct {
	name   string
	labels map[string]string
	value  float64
}

type histSeries struct {
	name    string
	labels  map[string]string
	count   uint64
	sum     float64
	buckets []uint64 // len(DefBuckets)+1; last is +Inf
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*counterSeries),
		gauges:   make(map[string]*counterSeries),
		hists:    make(map[string]*histSeries),
	}
}

// seriesKey canonicalizes a (name, labels) pair.
func seriesKey(name string, labels map[string]string) string {
	if len(labels) == 0 {
		return name
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(labels[k])
	}
	b.WriteByte('}')
	return b.String()
}

func copyLabels(labels map[string]string) map[string]string {
	if len(labels) == 0 {
		return nil
	}
	out := make(map[string]string, len(labels))
	for k, v := range labels {
		out[k] = v
	}
	return out
}

// Add increments the counter series by delta (which must be >= 0).
func (r *Registry) Add(name string, labels map[string]string, delta float64) {
	if r == nil {
		return
	}
	key := seriesKey(name, labels)
	r.mu.Lock()
	c, ok := r.counters[key]
	if !ok {
		c = &counterSeries{name: name, labels: copyLabels(labels)}
		r.counters[key] = c
	}
	c.value += delta
	r.mu.Unlock()
}

// Inc increments the counter series by one.
func (r *Registry) Inc(name string, labels map[string]string) { r.Add(name, labels, 1) }

// SetGauge sets the gauge series to v (last write wins). Gauges model
// instantaneous levels — queue depth, in-flight solves, breaker state —
// where counters model monotonic totals.
func (r *Registry) SetGauge(name string, labels map[string]string, v float64) {
	if r == nil {
		return
	}
	key := seriesKey(name, labels)
	r.mu.Lock()
	g, ok := r.gauges[key]
	if !ok {
		g = &counterSeries{name: name, labels: copyLabels(labels)}
		r.gauges[key] = g
	}
	g.value = v
	r.mu.Unlock()
}

// Gauge returns the current value of one gauge series (0 when the
// series does not exist). Intended for tests and readiness checks.
func (r *Registry) Gauge(name string, labels map[string]string) float64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[seriesKey(name, labels)]; ok {
		return g.value
	}
	return 0
}

// Observe records one value (in seconds) into the histogram series.
func (r *Registry) Observe(name string, labels map[string]string, v float64) {
	if r == nil {
		return
	}
	key := seriesKey(name, labels)
	r.mu.Lock()
	h, ok := r.hists[key]
	if !ok {
		h = &histSeries{
			name:    name,
			labels:  copyLabels(labels),
			buckets: make([]uint64, len(DefBuckets)+1),
		}
		r.hists[key] = h
	}
	h.count++
	h.sum += v
	h.buckets[sort.SearchFloat64s(DefBuckets, v)]++
	r.mu.Unlock()
}

// ObserveDuration records a duration into the histogram series.
func (r *Registry) ObserveDuration(name string, labels map[string]string, d time.Duration) {
	r.Observe(name, labels, d.Seconds())
}

// CounterSnapshot is one exported counter series.
type CounterSnapshot struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Value  float64           `json:"value"`
}

// HistogramBucket is one cumulative histogram bucket with a finite
// upper bound in seconds; the +Inf count equals the series Count.
type HistogramBucket struct {
	LE    float64 `json:"le"`
	Count uint64  `json:"cumulativeCount"`
}

// HistogramSnapshot is one exported histogram series.
type HistogramSnapshot struct {
	Name    string            `json:"name"`
	Labels  map[string]string `json:"labels,omitempty"`
	Count   uint64            `json:"count"`
	Sum     float64           `json:"sumSeconds"`
	Buckets []HistogramBucket `json:"buckets"`
}

// Snapshot is a point-in-time copy of the whole registry, sorted by
// metric name then label set so exports are deterministic.
type Snapshot struct {
	Counters   []CounterSnapshot   `json:"counters"`
	Gauges     []CounterSnapshot   `json:"gauges,omitempty"`
	Histograms []HistogramSnapshot `json:"histograms"`
}

// Snapshot copies the registry's current state.
func (r *Registry) Snapshot() Snapshot {
	var snap Snapshot
	if r == nil {
		return snap
	}
	r.mu.Lock()
	defer r.mu.Unlock()

	snapshotSeries := func(m map[string]*counterSeries) []CounterSnapshot {
		if len(m) == 0 {
			return nil
		}
		keys := make([]string, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		out := make([]CounterSnapshot, 0, len(keys))
		for _, k := range keys {
			c := m[k]
			out = append(out, CounterSnapshot{
				Name: c.name, Labels: copyLabels(c.labels), Value: c.value,
			})
		}
		return out
	}
	snap.Counters = snapshotSeries(r.counters)
	snap.Gauges = snapshotSeries(r.gauges)

	hkeys := make([]string, 0, len(r.hists))
	for k := range r.hists {
		hkeys = append(hkeys, k)
	}
	sort.Strings(hkeys)
	for _, k := range hkeys {
		h := r.hists[k]
		hs := HistogramSnapshot{
			Name: h.name, Labels: copyLabels(h.labels),
			Count: h.count, Sum: h.sum,
		}
		var cum uint64
		for i, le := range DefBuckets {
			cum += h.buckets[i]
			hs.Buckets = append(hs.Buckets, HistogramBucket{LE: le, Count: cum})
		}
		snap.Histograms = append(snap.Histograms, hs)
	}
	return snap
}

// Counter returns the current value of one counter series (0 when the
// series does not exist). Intended for tests and CLI summaries.
func (r *Registry) Counter(name string, labels map[string]string) float64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[seriesKey(name, labels)]; ok {
		return c.value
	}
	return 0
}

// WriteJSON exports the registry as one indented JSON document.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// WritePrometheus exports the registry in the Prometheus text exposition
// format (counters and histograms, with a # TYPE line per metric).
func (r *Registry) WritePrometheus(w io.Writer) error {
	snap := r.Snapshot()
	var b strings.Builder
	// Dedupe # TYPE lines by (name, kind), not name alone: a gauge that
	// shares its name with the preceding counter still needs its own
	// "# TYPE ... gauge" line under the promtext rules.
	lastType := ""
	typeLine := func(name, kind string) {
		if key := name + " " + kind; key != lastType {
			fmt.Fprintf(&b, "# TYPE %s %s\n", name, kind)
			lastType = key
		}
	}
	for _, c := range snap.Counters {
		typeLine(c.Name, "counter")
		fmt.Fprintf(&b, "%s%s %s\n", c.Name, promLabels(c.Labels, "", 0), promFloat(c.Value))
	}
	for _, g := range snap.Gauges {
		typeLine(g.Name, "gauge")
		fmt.Fprintf(&b, "%s%s %s\n", g.Name, promLabels(g.Labels, "", 0), promFloat(g.Value))
	}
	for _, h := range snap.Histograms {
		typeLine(h.Name, "histogram")
		for _, bk := range h.Buckets {
			fmt.Fprintf(&b, "%s_bucket%s %d\n", h.Name, promLabels(h.Labels, "le", bk.LE), bk.Count)
		}
		fmt.Fprintf(&b, "%s_bucket%s %d\n", h.Name, promLabelsInf(h.Labels), h.Count)
		fmt.Fprintf(&b, "%s_sum%s %s\n", h.Name, promLabels(h.Labels, "", 0), promFloat(h.Sum))
		fmt.Fprintf(&b, "%s_count%s %d\n", h.Name, promLabels(h.Labels, "", 0), h.Count)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func promFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func promEscape(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// promLabels renders a sorted label set, optionally with a trailing
// numeric "le" label (pass leKey = "" for none).
func promLabels(labels map[string]string, leKey string, le float64) string {
	return promLabelSet(labels, leKey, promFloat(le))
}

func promLabelsInf(labels map[string]string) string {
	return promLabelSet(labels, "le", "+Inf")
}

func promLabelSet(labels map[string]string, extraKey, extraVal string) string {
	if len(labels) == 0 && extraKey == "" {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	// Label values are escaped by promEscape alone; %q would re-escape
	// the backslashes it introduces (`\n` becoming `\\n`), which the
	// promtext parser reads as a literal backslash + n.
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(promEscape(labels[k]))
		b.WriteByte('"')
	}
	if extraKey != "" {
		if len(keys) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraKey)
		b.WriteString(`="`)
		b.WriteString(extraVal)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}
