package sat

// Inprocessing between restarts: root-level clause-database cleaning
// (simplifyRoots) and clause vivification (vivifyRound). Both run at
// decision level 0, typically from a portfolio replica's restart hook,
// and only ever remove clauses or literals that are redundant with
// respect to the current clause database — the formula's models are
// preserved exactly, so inprocessed replicas stay interchangeable with
// serial solving.

// inprocessEvery is how many restarts pass between inprocessing rounds
// in a portfolio replica: frequent enough that long solves keep
// shrinking their clause DB, rare enough that short solves pay nothing.
const inprocessEvery = 4

// vivifyClausesPerRound bounds how many learned clauses one vivifyRound
// probes. Each probe costs a handful of propagations, so the bound keeps
// the pause between restarts small; the rotating cursor (vivifyNext)
// ensures successive rounds cover the whole database anyway.
const vivifyClausesPerRound = 48

// simplifyRoots removes clauses satisfied at the root level from both
// the problem and the learned database (MiniSat's simplifyDB). Sound at
// decision level 0: a root-satisfied clause stays satisfied in every
// extension. Clauses currently acting as (root) reasons are kept so
// reason pointers never dangle.
func (s *Solver) simplifyRoots() {
	if s.decisionLevel() != 0 || s.rootUnsat {
		return
	}
	removed := false
	for _, db := range [2][]*clause{s.clauses, s.learned} {
		for _, c := range db {
			if c.deleted || s.isReason(c) {
				continue
			}
			for _, l := range c.lits {
				if s.value(l) == True {
					c.deleted = true
					removed = true
					s.proofStep(ProofDelete, c.lits)
					break
				}
			}
		}
	}
	if !removed {
		return
	}
	for _, dbp := range [2]*[]*clause{&s.clauses, &s.learned} {
		db := *dbp
		kept := db[:0]
		for _, c := range db {
			if !c.deleted {
				kept = append(kept, c)
			}
		}
		for i := len(kept); i < len(db); i++ {
			db[i] = nil
		}
		*dbp = kept
	}
	s.cleanWatches()
}

// vivifyRound strengthens up to budget learned clauses by distillation
// (clause vivification): for each clause it assumes the negation of its
// literals one by one and lets unit propagation prove literals redundant
// or the remaining suffix implied. The cursor s.vivifyNext rotates the
// starting point so successive rounds examine different clauses.
func (s *Solver) vivifyRound(budget int) {
	if s.decisionLevel() != 0 || s.rootUnsat || len(s.learned) == 0 {
		return
	}
	examined := 0
	for scanned := 0; scanned < len(s.learned) && examined < budget; scanned++ {
		if s.vivifyNext >= len(s.learned) {
			s.vivifyNext = 0
		}
		c := s.learned[s.vivifyNext]
		s.vivifyNext++
		if c.deleted || len(c.lits) < 3 || s.isReason(c) {
			continue
		}
		examined++
		s.vivifyClause(c)
		if s.rootUnsat {
			return
		}
	}
}

// detach removes c's two watchers. The watched literals are always at
// positions 0 and 1 (the propagation invariant); a watcher already
// dropped by lazy deletion is simply not found, which is fine.
func (s *Solver) detach(c *clause) {
	for _, w := range [2]Lit{c.lits[0], c.lits[1]} {
		ws := s.watches[w.Neg()]
		for i := range ws {
			if ws[i].c == c {
				ws[i] = ws[len(ws)-1]
				ws[len(ws)-1] = watcher{}
				s.watches[w.Neg()] = ws[:len(ws)-1]
				break
			}
		}
	}
}

// vivifyClause distills a single learned clause at the root level. The
// clause is explicitly detached before probing — probe propagation may
// permute other watch lists, and a lazily-deleted watcher restored
// afterwards could leave the clause unwatched, which is unsound.
//
// Soundness: with the clause detached, every probe propagates only over
// the remaining database D (all implied by the formula F). If assuming
// ¬l1..¬lk makes l true under D, then {l1..lk, l} is a consequence of F;
// if it yields a conflict, {l1..lk} already is. Dropped literals are
// false in every model falsifying the kept prefix, so removing them
// preserves the clause's models.
func (s *Solver) vivifyClause(c *clause) {
	// Proof: a successful vivification logs the shortened clause before
	// deleting the original (Add-before-Delete keeps the Add RUP); the
	// original is snapshotted because the default case below overwrites
	// c.lits in place.
	var orig []Lit
	if s.proof != nil {
		orig = append([]Lit(nil), c.lits...)
	}
	// Resolve root-assigned literals first: a root-true literal makes the
	// clause permanently satisfied, root-false literals are stripped.
	lits := make([]Lit, 0, len(c.lits))
	for _, l := range c.lits {
		switch s.value(l) {
		case True:
			s.detach(c)
			c.deleted = true
			s.proofStep(ProofDelete, orig)
			return
		case False:
			// strip
		default:
			lits = append(lits, l)
		}
	}
	s.detach(c)
	kept := make([]Lit, 0, len(lits))
	for _, l := range lits {
		if v := s.value(l); v == True {
			// ¬(kept) forces l: the clause shortens to kept + {l}.
			kept = append(kept, l)
			break
		} else if v == False {
			// ¬(kept) forces ¬l: l is redundant, drop it.
			continue
		}
		s.trailLim = append(s.trailLim, len(s.trail))
		s.uncheckedEnqueue(l.Neg(), nil)
		kept = append(kept, l)
		if s.propagate() != nil {
			// ¬(kept) is contradictory: kept alone is implied.
			break
		}
	}
	s.cancelUntil(0)
	if len(kept) == len(c.lits) {
		s.attach(c) // nothing removed; restore as-is
		return
	}
	s.stats.VivifiedClauses++
	switch len(kept) {
	case 0:
		c.deleted = true
		s.markRootUnsat()
	case 1:
		// kept[0] was unassigned at the root when probing began, so it is
		// still unassigned here: enqueue it as a root unit.
		if s.proof != nil {
			s.proofStep(ProofAdd, kept)
			s.proofStep(ProofDelete, orig)
		}
		c.deleted = true
		s.uncheckedEnqueue(kept[0], nil)
		if s.propagate() != nil {
			s.markRootUnsat()
		}
	default:
		if s.proof != nil {
			s.proofStep(ProofAdd, kept)
			s.proofStep(ProofDelete, orig)
		}
		c.lits = kept
		if int32(len(kept)) < c.lbd {
			c.lbd = int32(len(kept))
		}
		s.attach(c)
	}
}
