package scadanet

import (
	"testing"

	"scadaver/internal/secpolicy"
)

func TestLinkMinCutChain(t *testing.T) {
	// IED -> RTU -> MTU: cut = 1.
	n := NewNetwork()
	for _, d := range []Device{
		{ID: 1, Kind: IED}, {ID: 2, Kind: RTU}, {ID: 3, Kind: MTU},
	} {
		if _, err := n.AddDevice(d); err != nil {
			t.Fatal(err)
		}
	}
	mustAddLink(t, n, 1, 2)
	mustAddLink(t, n, 2, 3)
	if got := n.LinkMinCut(1, nil); got != 1 {
		t.Fatalf("chain min-cut = %d, want 1", got)
	}
}

func mustAddLink(t *testing.T, n *Network, a, b DeviceID) *Link {
	t.Helper()
	l, err := n.AddLink(a, b)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestLinkMinCutParallelRoutes(t *testing.T) {
	// IED with two fully disjoint RTU routes: cut = min(2, uplinks).
	n := NewNetwork()
	for _, d := range []Device{
		{ID: 1, Kind: IED}, {ID: 2, Kind: RTU}, {ID: 3, Kind: RTU}, {ID: 4, Kind: MTU},
	} {
		if _, err := n.AddDevice(d); err != nil {
			t.Fatal(err)
		}
	}
	mustAddLink(t, n, 1, 2)
	mustAddLink(t, n, 1, 3)
	mustAddLink(t, n, 2, 4)
	mustAddLink(t, n, 3, 4)
	if got := n.LinkMinCut(1, nil); got != 2 {
		t.Fatalf("parallel min-cut = %d, want 2", got)
	}
	// A cross link between the RTUs does not raise the cut (the two
	// uplinks still bound it).
	mustAddLink(t, n, 2, 3)
	if got := n.LinkMinCut(1, nil); got != 2 {
		t.Fatalf("with cross link: %d, want 2", got)
	}
}

func TestLinkMinCutNeedsResiduals(t *testing.T) {
	// Classic instance where greedy path packing without residual edges
	// undercounts: two disjoint paths exist, but the shortest path uses
	// the middle cross link and blocks both if flow cannot cancel.
	//
	//   IED - a - b - MTU
	//          \ /
	//           X  (cross links a-d, c-b)
	//          / \
	//   IED - c - d - MTU   (same IED at both left ends)
	n := NewNetwork()
	for _, d := range []Device{
		{ID: 1, Kind: IED},
		{ID: 2, Kind: RTU}, {ID: 3, Kind: RTU}, {ID: 4, Kind: RTU}, {ID: 5, Kind: RTU},
		{ID: 6, Kind: MTU},
	} {
		if _, err := n.AddDevice(d); err != nil {
			t.Fatal(err)
		}
	}
	// a=2 b=3 c=4 d=5.
	mustAddLink(t, n, 1, 2) // IED-a
	mustAddLink(t, n, 1, 4) // IED-c
	mustAddLink(t, n, 2, 5) // a-d (cross: the tempting shortcut)
	mustAddLink(t, n, 2, 3) // a-b
	mustAddLink(t, n, 4, 5) // c-d
	mustAddLink(t, n, 3, 6) // b-MTU
	mustAddLink(t, n, 5, 6) // d-MTU
	if got := n.LinkMinCut(1, nil); got != 2 {
		t.Fatalf("residual case min-cut = %d, want 2", got)
	}
}

func TestLinkMinCutRespectsJudgeAndPairing(t *testing.T) {
	n := NewNetwork()
	for _, d := range []Device{
		{ID: 1, Kind: IED}, {ID: 2, Kind: RTU}, {ID: 3, Kind: RTU}, {ID: 4, Kind: MTU},
	} {
		if _, err := n.AddDevice(d); err != nil {
			t.Fatal(err)
		}
	}
	secureUp := mustAddLink(t, n, 1, 2)
	secureUp.Profiles = []secpolicy.Profile{{Algo: secpolicy.CHAP, KeyBits: 64}, {Algo: secpolicy.SHA2, KeyBits: 256}}
	insecureUp := mustAddLink(t, n, 1, 3)
	_ = insecureUp
	mustAddLink(t, n, 2, 4)
	mustAddLink(t, n, 3, 4)

	if got := n.LinkMinCut(1, nil); got != 2 {
		t.Fatalf("unjudged min-cut = %d, want 2", got)
	}
	pol := secpolicy.Default()
	securedOnly := func(l *Link) bool {
		return n.HopCaps(l, pol).Has(secpolicy.Authenticates | secpolicy.IntegrityProtects)
	}
	// Only the 1-2 uplink is secured; the 2-4 backbone has no profile,
	// so the secured min-cut collapses to 0.
	if got := n.LinkMinCut(1, securedOnly); got != 0 {
		t.Fatalf("secured min-cut = %d, want 0", got)
	}
}

func TestLinkMinCutEdgeCases(t *testing.T) {
	n := buildTiny(t)
	if n.LinkMinCut(99, nil) != 0 {
		t.Fatal("unknown IED")
	}
	if n.LinkMinCut(10, nil) != 0 {
		t.Fatal("non-IED")
	}
	// Down links are unusable.
	for _, l := range n.Links() {
		l.Down = true
	}
	if got := n.LinkMinCut(1, nil); got != 0 {
		t.Fatalf("all links down: %d", got)
	}
}

// TestLinkMinCutAgreesWithDirectCutSearch cross-validates Menger's
// bound against exhaustive link-subset removal on the case study: no
// (c-1)-subset disconnects the IED, and some c-subset does.
func TestLinkMinCutAgreesWithDirectCutSearch(t *testing.T) {
	cfg, err := CaseStudyConfig(false)
	if err != nil {
		t.Fatal(err)
	}
	n := cfg.Net
	links := n.Links()

	reachable := func(ied DeviceID, removed map[LinkID]bool) bool {
		paths := n.Paths(ied, 0)
		for _, p := range paths {
			ok := true
			for _, l := range p {
				if removed[l.ID] {
					ok = false
					break
				}
			}
			if ok {
				return true
			}
		}
		return false
	}
	existsCut := func(ied DeviceID, size int) bool {
		removed := map[LinkID]bool{}
		var rec func(start, left int) bool
		rec = func(start, left int) bool {
			if left == 0 {
				return !reachable(ied, removed)
			}
			for i := start; i <= len(links)-left; i++ {
				removed[links[i].ID] = true
				if rec(i+1, left-1) {
					return true
				}
				delete(removed, links[i].ID)
			}
			return false
		}
		return rec(0, size)
	}

	for _, d := range n.DevicesOfKind(IED) {
		c := n.LinkMinCut(d.ID, nil)
		if c < 1 {
			t.Fatalf("IED %d min-cut %d", d.ID, c)
		}
		if c > 1 && existsCut(d.ID, c-1) {
			t.Fatalf("IED %d: %d-cut exists below min-cut %d", d.ID, c-1, c)
		}
		if !existsCut(d.ID, c) {
			t.Fatalf("IED %d: no %d-cut found at claimed min-cut", d.ID, c)
		}
	}
}
