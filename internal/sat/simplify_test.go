package sat

import (
	"math/rand"
	"testing"
)

// randomSeededCNF adds a seeded random k-CNF over nv fresh variables and
// returns the clauses (as literal slices) alongside the variables, so
// tests can re-evaluate models against the original formula.
func randomSeededCNF(t *testing.T, s *Solver, rng *rand.Rand, nv, clauses, width int) ([]Var, [][]Lit) {
	t.Helper()
	vars := newVars(s, nv)
	var added [][]Lit
	for i := 0; i < clauses; i++ {
		k := 1 + rng.Intn(width)
		lits := make([]Lit, 0, k)
		seen := map[Var]bool{}
		for len(lits) < k {
			v := vars[rng.Intn(nv)]
			if seen[v] {
				continue
			}
			seen[v] = true
			lits = append(lits, MkLit(v, rng.Intn(2) == 1))
		}
		mustAdd(t, s, lits...)
		added = append(added, lits)
	}
	return vars, added
}

// modelSatisfies evaluates the original clauses under the solver's
// current model (Model semantics: unassigned reads false).
func modelSatisfies(s *Solver, clauses [][]Lit) bool {
	for _, cl := range clauses {
		ok := false
		for _, l := range cl {
			if s.litModelTrue(l) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// TestSimplifyEquivalence is the core soundness property: on seeded
// random CNFs, solving with and without Simplify must agree on
// sat/unsat, and after Simplify the reconstructed model (eliminated
// variables included) must satisfy every original clause.
func TestSimplifyEquivalence(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		nv := 8 + rng.Intn(25)
		nc := 5 + rng.Intn(4*nv)
		width := 2 + rng.Intn(3)

		plain := New()
		_, clauses := randomSeededCNF(t, plain, rand.New(rand.NewSource(seed)), nv, nc, width)
		want := plain.Solve()

		pre := New()
		randomSeededCNF(t, pre, rand.New(rand.NewSource(seed)), nv, nc, width)
		ok := pre.Simplify()
		got := pre.Solve()
		if got != want {
			t.Fatalf("seed %d (nv=%d nc=%d): plain=%v simplified=%v", seed, nv, nc, want, got)
		}
		if !ok && want == Sat {
			t.Fatalf("seed %d: Simplify claimed unsat on a satisfiable instance", seed)
		}
		if got == Sat && !modelSatisfies(pre, clauses) {
			t.Fatalf("seed %d: reconstructed model does not satisfy the original clauses", seed)
		}
	}
}

// TestSimplifyFrozenIncremental checks the incremental contract: frozen
// variables survive elimination and can carry assumptions and new
// clauses after Simplify, with models still satisfying everything.
func TestSimplifyFrozenIncremental(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(1000 + seed))
		nv := 10 + rng.Intn(20)
		nc := 5 + rng.Intn(3*nv)

		build := func() (*Solver, []Var, [][]Lit) {
			s := New()
			vars, clauses := randomSeededCNF(t, s, rand.New(rand.NewSource(2000+seed)), nv, nc, 3)
			return s, vars, clauses
		}

		plain, pvars, _ := build()
		pre, vars, clauses := build()
		// Freeze the first few variables; they will be assumed and extended.
		frozen := vars[:4]
		for _, v := range frozen {
			pre.Freeze(v)
		}
		pre.Simplify()
		for _, v := range frozen {
			if pre.Eliminated(v) {
				t.Fatalf("seed %d: frozen var %v was eliminated", seed, v)
			}
		}

		// Same assumptions against both solvers must agree.
		assume := []Lit{PosLit(frozen[0]), NegLit(frozen[1])}
		plainAssume := []Lit{PosLit(pvars[0]), NegLit(pvars[1])}
		want := plain.Solve(plainAssume...)
		got := pre.Solve(assume...)
		if got != want {
			t.Fatalf("seed %d under assumptions: plain=%v simplified=%v", seed, want, got)
		}
		if got == Sat && !modelSatisfies(pre, clauses) {
			t.Fatalf("seed %d: model after assumptions violates original clauses", seed)
		}

		// New clauses over frozen variables keep both solvers aligned.
		if err := pre.AddClause(NegLit(frozen[2]), NegLit(frozen[3])); err != nil {
			t.Fatalf("seed %d: AddClause over frozen vars: %v", seed, err)
		}
		if err := plain.AddClause(NegLit(pvars[2]), NegLit(pvars[3])); err != nil {
			t.Fatal(err)
		}
		want = plain.Solve()
		got = pre.Solve()
		if got != want {
			t.Fatalf("seed %d after added clause: plain=%v simplified=%v", seed, want, got)
		}
		if got == Sat && !modelSatisfies(pre, clauses) {
			t.Fatalf("seed %d: model after added clause violates original clauses", seed)
		}
	}
}

// TestSimplifyRejectsEliminatedVars: referring to an eliminated variable
// in a new clause is a caller bug and must fail loudly, not corrupt the
// instance.
func TestSimplifyRejectsEliminatedVars(t *testing.T) {
	s := New()
	vs := newVars(s, 4)
	// v0 is a Tseitin-style definition over v1,v2: occurs in 3 clauses.
	mustAdd(t, s, NegLit(vs[0]), PosLit(vs[1]))
	mustAdd(t, s, NegLit(vs[0]), PosLit(vs[2]))
	mustAdd(t, s, PosLit(vs[0]), NegLit(vs[1]), NegLit(vs[2]))
	mustAdd(t, s, PosLit(vs[1]), PosLit(vs[3]))
	for _, v := range vs[1:] {
		s.Freeze(v)
	}
	s.Simplify()
	if !s.Eliminated(vs[0]) {
		t.Skip("v0 not eliminated under current bounds")
	}
	if err := s.AddClause(PosLit(vs[0])); err == nil {
		t.Fatal("AddClause over an eliminated variable succeeded")
	}
}

// TestSimplifyStats: preprocessing work shows up in the counters, and
// pure/unused variables are eliminated.
func TestSimplifyStats(t *testing.T) {
	s := New()
	vs := newVars(s, 9)
	// Subsumption pair: (v0 ∨ v1) subsumes (v0 ∨ v1 ∨ v2). Probing either
	// polarity of v0/v1 propagates without conflict, so the pair survives
	// to the subsumption phase.
	mustAdd(t, s, PosLit(vs[0]), PosLit(vs[1]))
	mustAdd(t, s, PosLit(vs[0]), PosLit(vs[1]), PosLit(vs[2]))
	// Self-subsumption: (v2 ∨ ¬v3) strengthens (v2 ∨ v3 ∨ v4) to (v2 ∨ v4).
	mustAdd(t, s, PosLit(vs[2]), NegLit(vs[3]))
	mustAdd(t, s, PosLit(vs[2]), PosLit(vs[3]), PosLit(vs[4]))
	// v5 occurs only positively (pure), v6 not at all: both eliminable.
	mustAdd(t, s, PosLit(vs[5]), PosLit(vs[4]))
	// Failed literal: ¬v7 propagates v8 and ¬v8, so v7 is forced true.
	mustAdd(t, s, PosLit(vs[7]), PosLit(vs[8]))
	mustAdd(t, s, PosLit(vs[7]), NegLit(vs[8]))
	for _, v := range vs[:5] {
		s.Freeze(v)
	}
	if !s.Simplify() {
		t.Fatal("satisfiable instance simplified to unsat")
	}
	st := s.Stats()
	if st.SubsumedClauses == 0 {
		t.Errorf("SubsumedClauses = 0, want > 0")
	}
	if st.StrengthenedClauses == 0 {
		t.Errorf("StrengthenedClauses = 0, want > 0")
	}
	if st.ElimVars == 0 {
		t.Errorf("ElimVars = 0, want > 0 (pure/unused vars present)")
	}
	if st.FailedLits == 0 {
		t.Errorf("FailedLits = 0, want > 0")
	}
	if st.SimplifyTime <= 0 {
		t.Errorf("SimplifyTime = %v, want > 0", st.SimplifyTime)
	}
	if s.Solve() != Sat {
		t.Fatal("want sat")
	}
}

// TestSimplifyUnsatAtRoot: preprocessing alone can refute instances.
func TestSimplifyUnsatAtRoot(t *testing.T) {
	s := New()
	vs := newVars(s, 2)
	mustAdd(t, s, PosLit(vs[0]), PosLit(vs[1]))
	mustAdd(t, s, PosLit(vs[0]), NegLit(vs[1]))
	mustAdd(t, s, NegLit(vs[0]), PosLit(vs[1]))
	mustAdd(t, s, NegLit(vs[0]), NegLit(vs[1]))
	if s.Simplify() {
		t.Fatal("Simplify should refute the complete binary contradiction")
	}
	if s.Solve() != Unsat {
		t.Fatal("want unsat after refuting Simplify")
	}
}

// TestCloneIndependence: a clone answers queries identically and
// mutations of the clone never leak back into the original.
func TestCloneIndependence(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		base := New()
		_, clauses := randomSeededCNF(t, base, rand.New(rand.NewSource(3000+seed)), 20, 50, 3)
		base.Simplify()

		c1 := base.Clone()
		c2 := base.Clone()
		want := c1.Solve()
		if got := c2.Solve(); got != want {
			t.Fatalf("seed %d: clones disagree: %v vs %v", seed, want, got)
		}
		if want == Sat && !modelSatisfies(c1, clauses) {
			t.Fatalf("seed %d: clone model violates original clauses", seed)
		}
		// The base must be untouched by clone solving: its own solve
		// agrees and its stats never moved.
		if base.Stats().Solves != 0 {
			t.Fatalf("seed %d: clone solving mutated base stats", seed)
		}
		if got := base.Solve(); got != want {
			t.Fatalf("seed %d: base=%v clones=%v", seed, got, want)
		}
	}
}

// TestCloneConcurrent solves many clones of one simplified base in
// parallel; under -race this proves Clone shares no mutable state.
func TestCloneConcurrent(t *testing.T) {
	base := New()
	randomSeededCNF(t, base, rand.New(rand.NewSource(77)), 30, 90, 3)
	base.Simplify()
	want := base.Clone().Solve()

	done := make(chan Status, 8)
	for i := 0; i < 8; i++ {
		go func() { done <- base.Clone().Solve() }()
	}
	for i := 0; i < 8; i++ {
		if got := <-done; got != want {
			t.Fatalf("concurrent clone disagrees: %v vs %v", got, want)
		}
	}
}
