package scadanet

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"scadaver/internal/powergrid"
)

// mutationTestConfig builds a small valid config: MTU 1, RTU 2, IEDs
// 3-4, links 1-2, 2-3, 2-4, IED 3 → z1, IED 4 → z2.
func mutationTestConfig(t *testing.T) *Config {
	t.Helper()
	net := NewNetwork()
	for _, d := range []Device{
		{ID: 1, Kind: MTU}, {ID: 2, Kind: RTU}, {ID: 3, Kind: IED}, {ID: 4, Kind: IED},
	} {
		if _, err := net.AddDevice(d); err != nil {
			t.Fatal(err)
		}
	}
	for _, pair := range [][2]DeviceID{{1, 2}, {2, 3}, {2, 4}} {
		if _, err := net.AddLink(pair[0], pair[1]); err != nil {
			t.Fatal(err)
		}
	}
	if err := net.AssignMeasurements(3, 1); err != nil {
		t.Fatal(err)
	}
	if err := net.AssignMeasurements(4, 2); err != nil {
		t.Fatal(err)
	}
	ms, err := powergrid.FromJacobian([][]float64{{1, 0}, {0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	cfg := &Config{Msrs: ms, Net: net, K1: 1, K2: 1, R: 1}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	return cfg
}

func TestApplyDeviceDownUp(t *testing.T) {
	cfg := mutationTestConfig(t)
	next, dirty, err := cfg.Apply(Delta{Ops: []Op{{Kind: OpDeviceDown, Device: 3}}})
	if err != nil {
		t.Fatal(err)
	}
	if !next.Net.Device(3).Down {
		t.Fatal("device 3 not down in mutated config")
	}
	if cfg.Net.Device(3).Down {
		t.Fatal("Apply mutated the receiver")
	}
	if len(dirty.Devices) != 1 || dirty.Devices[0] != 3 || dirty.Topology {
		t.Fatalf("dirty = %+v, want device 3 only", dirty)
	}
	up, _, err := next.Apply(Delta{Ops: []Op{{Kind: OpDeviceUp, Device: 3}}})
	if err != nil {
		t.Fatal(err)
	}
	if up.Net.Device(3).Down {
		t.Fatal("device 3 still down after device-up")
	}
}

func TestApplyDeviceDownOnMTU(t *testing.T) {
	cfg := mutationTestConfig(t)
	if _, _, err := cfg.Apply(Delta{Ops: []Op{{Kind: OpDeviceDown, Device: 1}}}); !errors.Is(err, ErrBadDelta) {
		t.Fatalf("device-down on MTU: got %v, want ErrBadDelta", err)
	}
}

func TestApplyLinkAddRemove(t *testing.T) {
	cfg := mutationTestConfig(t)
	next, dirty, err := cfg.Apply(Delta{Ops: []Op{{Kind: OpLinkAdd, A: 1, B: 3, Profiles: []string{"hmac", "128"}}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(next.Net.Links()) != 4 || len(cfg.Net.Links()) != 3 {
		t.Fatalf("links: next %d (want 4), receiver %d (want 3)",
			len(next.Net.Links()), len(cfg.Net.Links()))
	}
	if !dirty.Topology || len(dirty.Links) != 1 {
		t.Fatalf("dirty = %+v, want one topology-dirty link", dirty)
	}
	added := next.Net.Link(dirty.Links[0])
	if added == nil || len(added.Profiles) != 1 {
		t.Fatalf("added link %v missing its profile", added)
	}

	removed, dirty, err := next.Apply(Delta{Ops: []Op{{Kind: OpLinkRemove, Link: dirty.Links[0]}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(removed.Net.Links()) != 3 || !dirty.Topology {
		t.Fatalf("after remove: %d links, dirty %+v", len(removed.Net.Links()), dirty)
	}
	if _, _, err := cfg.Apply(Delta{Ops: []Op{{Kind: OpLinkRemove, Link: 99}}}); !errors.Is(err, ErrUnknownLink) {
		t.Fatalf("removing unknown link: got %v, want ErrUnknownLink", err)
	}
}

func TestApplyKeyRotateAndReprofile(t *testing.T) {
	cfg := mutationTestConfig(t)
	l := cfg.Net.Links()[1] // 2-3
	if _, _, err := cfg.Apply(Delta{Ops: []Op{{Kind: OpKeyRotate, Link: l.ID, KeyBits: 256}}}); !errors.Is(err, ErrBadDelta) {
		t.Fatalf("key-rotate on profile-less link: got %v, want ErrBadDelta", err)
	}
	prof, _, err := cfg.Apply(Delta{Ops: []Op{{Kind: OpLinkReprofile, Link: l.ID, Profiles: []string{"hmac", "64"}}}})
	if err != nil {
		t.Fatal(err)
	}
	rotated, dirty, err := prof.Apply(Delta{Ops: []Op{{Kind: OpKeyRotate, Link: l.ID, KeyBits: 256}}})
	if err != nil {
		t.Fatal(err)
	}
	if got := rotated.Net.Link(l.ID).Profiles[0].KeyBits; got != 256 {
		t.Fatalf("rotated key bits = %d, want 256", got)
	}
	if len(dirty.Links) != 1 || dirty.Links[0] != l.ID || dirty.Topology {
		t.Fatalf("dirty = %+v, want link %d only", dirty, l.ID)
	}
}

func TestApplyAtomicOnInvalidResult(t *testing.T) {
	cfg := mutationTestConfig(t)
	// Removing link 1-2 orphans the field side from the MTU but stays
	// valid; a dangling link-add must fail atomically instead.
	_, _, err := cfg.Apply(Delta{Ops: []Op{
		{Kind: OpDeviceDown, Device: 3},
		{Kind: OpLinkAdd, A: 2, B: 42},
	}})
	if !errors.Is(err, ErrUnknownDevice) {
		t.Fatalf("got %v, want ErrUnknownDevice", err)
	}
	if cfg.Net.Device(3).Down {
		t.Fatal("failed delta leaked its first op into the receiver")
	}
}

func TestParseDeltaRoundTrip(t *testing.T) {
	in := "link-remove 2; device-down 3; link-add 1 4 hmac 128; key-rotate 1 256; link-reprofile 3 aes 192; device-up 4"
	d, err := ParseDelta(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Ops) != 6 {
		t.Fatalf("parsed %d ops, want 6", len(d.Ops))
	}
	if d.String() != in {
		t.Fatalf("round trip:\n got %q\nwant %q", d.String(), in)
	}
	for _, bad := range []string{"", "frobnicate 3", "link-add 1", "key-rotate 1 many", "device-down"} {
		if _, err := ParseDelta(bad); !errors.Is(err, ErrBadDelta) {
			t.Fatalf("ParseDelta(%q): got %v, want ErrBadDelta", bad, err)
		}
	}
}

func TestDownSectionRoundTrip(t *testing.T) {
	cfg := mutationTestConfig(t)
	next, _, err := cfg.Apply(Delta{Ops: []Op{{Kind: OpDeviceDown, Device: 4}}})
	if err != nil {
		t.Fatal(err)
	}
	next.Net.Links()[0].Down = true

	var buf bytes.Buffer
	if err := WriteConfig(&buf, next); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if !strings.Contains(text, "[down]") || !strings.Contains(text, "device 4") || !strings.Contains(text, "link 1 2") {
		t.Fatalf("serialized config missing down marks:\n%s", text)
	}
	parsed, err := ParseConfig(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !parsed.Net.Device(4).Down {
		t.Fatal("parsed config lost device down mark")
	}
	if !parsed.Net.LinkBetween(1, 2).Down {
		t.Fatal("parsed config lost link down mark")
	}

	// A config with nothing down keeps its canonical text (and thereby
	// its campaign fingerprint) free of the [down] section.
	buf.Reset()
	if err := WriteConfig(&buf, cfg); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "[down]") {
		t.Fatal("healthy config serialized a [down] section")
	}
}
