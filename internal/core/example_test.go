package core_test

import (
	"fmt"

	"scadaver/internal/core"
	"scadaver/internal/powergrid"
	"scadaver/internal/synth"
)

// Example_portfolioVerification verifies a resiliency property with
// portfolio escalation armed: queries that exceed the escalation
// threshold race diversified solver replicas with clause sharing, while
// easy queries never pay for the clones. Certification verdicts (UNSAT:
// "the property holds under every k-failure") are identical to serial
// verification, so the portfolio is safe to arm campaign-wide; only
// SAT witness vectors may differ between runs.
func Example_portfolioVerification() {
	cfg, err := synth.Generate(synth.Params{
		Bus: powergrid.IEEE14(), Seed: 41, Hierarchy: 2, SecureFraction: 0.9,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	a, err := core.NewAnalyzer(cfg, core.WithPortfolio(2))
	if err != nil {
		fmt.Println(err)
		return
	}
	q := core.Query{Property: core.Observability, Combined: true, K: 1}
	res, err := a.Verify(q)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("%v: %v\n", q, res.Status)
	// Output: 1-resilient observability: unsat
}
