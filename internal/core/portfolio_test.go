package core

import (
	"fmt"
	"runtime"
	"sort"
	"testing"
	"time"

	"scadaver/internal/faultinject"
	"scadaver/internal/obs"
	"scadaver/internal/powergrid"
	"scadaver/internal/sat"
	"scadaver/internal/scadanet"
)

// vectorFailures converts a threat vector into the evaluator's failure
// set, so portfolio witnesses can be validated against the ground-truth
// graph evaluation rather than against the serial solver's witness.
func vectorFailures(v ThreatVector) Failures {
	f := Failures{Devices: map[scadanet.DeviceID]bool{}, Links: map[scadanet.LinkID]bool{}}
	for _, id := range v.IEDs {
		f.Devices[id] = true
	}
	for _, id := range v.RTUs {
		f.Devices[id] = true
	}
	for _, id := range v.Links {
		f.Links[id] = true
	}
	return f
}

// checkNoGoroutineLeakCore fails the test if the goroutine count stays
// above the baseline once replicas should have unwound.
func checkNoGoroutineLeakCore(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if runtime.NumGoroutine() <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestPortfolioVerifyMatchesSerial pins the determinism contract at the
// analyzer level: with the escalation threshold forced down so every
// conflicting query races replicas, Unsat/bound verdicts are identical
// to serial verification, and Sat verdicts carry a witness that the
// ground-truth evaluator confirms violates the property (it need not be
// the serial witness).
func TestPortfolioVerifyMatchesSerial(t *testing.T) {
	cfg := synthConfig(t, powergrid.IEEE14(), 41, 2)
	serial, err := NewAnalyzer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	port, err := NewAnalyzer(cfg, WithPortfolio(3), WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	port.portfolioAfter = 1    // escalate every query that conflicts at all
	port.portfolioMaxConc = -1 // saturate: genuinely race replicas even on one CPU

	for _, q := range campaignQueries(3) {
		want, err := serial.Verify(q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := port.Verify(q)
		if err != nil {
			t.Fatal(err)
		}
		if got.Status != want.Status {
			t.Fatalf("%v: portfolio %v != serial %v", q, got.Status, want.Status)
		}
		switch got.Status {
		case sat.Unsat:
			if got.Vector != nil {
				t.Fatalf("%v: Unsat verdict carries a vector: %v", q, got.Vector)
			}
		case sat.Sat:
			if got.Vector == nil {
				t.Fatalf("%v: Sat verdict without vector", q)
			}
			if !port.violatedUnder(q, vectorFailures(*got.Vector)) {
				t.Fatalf("%v: portfolio witness %v does not violate the property", q, got.Vector)
			}
		}
	}
	if counterTotal(reg, "scadaver_portfolio_escalations_total") == 0 {
		t.Fatal("no query escalated to the portfolio: the test exercised nothing")
	}
	if counterTotal(reg, "scadaver_portfolio_wins_total") == 0 {
		t.Fatal("no portfolio win recorded despite escalations")
	}
}

// TestPortfolioEnumerationEqualsSerial pins the enumeration set
// contract on IEEE-14 and IEEE-30: the portfolio may discover minimal
// vectors in a different order, but a full enumeration must yield
// exactly the serial set.
func TestPortfolioEnumerationEqualsSerial(t *testing.T) {
	cases := []struct {
		sys  *powergrid.BusSystem
		seed int64
		q    Query
	}{
		{powergrid.IEEE14(), 41, Query{Property: Observability, Combined: true, K: 2}},
		{powergrid.IEEE30(), 43, Query{Property: Observability, Combined: true, K: 2}},
	}
	for _, tc := range cases {
		cfg := synthConfig(t, tc.sys, tc.seed, 2)
		key := func(vs []ThreatVector) []string {
			out := make([]string, len(vs))
			for i, v := range vs {
				out[i] = fmt.Sprint(v)
			}
			sort.Strings(out)
			return out
		}
		serial, err := NewAnalyzer(cfg)
		if err != nil {
			t.Fatal(err)
		}
		want, err := serial.EnumerateThreats(tc.q, 0)
		if err != nil {
			t.Fatal(err)
		}
		port, err := NewAnalyzer(cfg, WithPortfolio(3))
		if err != nil {
			t.Fatal(err)
		}
		port.portfolioAfter = 1
		got, err := port.EnumerateThreats(tc.q, 0)
		if err != nil {
			t.Fatal(err)
		}
		wk, gk := key(want), key(got)
		if len(wk) == 0 {
			t.Fatalf("%s: serial enumeration found no vectors; pick a harder query", tc.sys.Name)
		}
		if fmt.Sprint(wk) != fmt.Sprint(gk) {
			t.Fatalf("%s: portfolio set %v != serial set %v", tc.sys.Name, gk, wk)
		}
	}
}

// TestPortfolioChaosReplicaPanic arms the replica-panic fault: one
// replica dies at the start of every race, and verdicts must still
// match serial verification, with the panics isolated and counted.
func TestPortfolioChaosReplicaPanic(t *testing.T) {
	cfg := synthConfig(t, powergrid.IEEE14(), 41, 2)
	serial, err := NewAnalyzer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	faults := faultinject.New(7).PanicOnReplica(1)
	reg := obs.NewRegistry()
	port, err := NewAnalyzer(cfg, WithPortfolio(3), WithFaults(faults), WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	port.portfolioAfter = 1
	port.portfolioMaxConc = -1

	before := runtime.NumGoroutine()
	for _, q := range campaignQueries(2) {
		want, err := serial.Verify(q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := port.Verify(q)
		if err != nil {
			t.Fatal(err)
		}
		if got.Status != want.Status {
			t.Fatalf("%v: degraded portfolio %v != serial %v", q, got.Status, want.Status)
		}
		if got.Status == sat.Sat && !port.violatedUnder(q, vectorFailures(*got.Vector)) {
			t.Fatalf("%v: witness %v invalid under replica panic", q, got.Vector)
		}
	}
	if faults.Counts().Panics == 0 {
		t.Fatal("replica-panic fault never fired: no query escalated")
	}
	if counterTotal(reg, "scadaver_portfolio_replica_panics_total") == 0 {
		t.Fatal("replica panics not recorded in metrics")
	}
	checkNoGoroutineLeakCore(t, before)
}

// TestPortfolioChaosStallSuppressesEscalation pins the escalation
// guard: when the serial prelude gave up because of an injected stall
// (not a genuine conflict-budget exhaustion), racing replicas would
// just stall the same way N times over — the query must degrade to
// Unsolved with the stall reason and no escalation.
func TestPortfolioChaosStallSuppressesEscalation(t *testing.T) {
	cfg := synthConfig(t, powergrid.IEEE14(), 41, 2)
	// The stall must fire strictly before the prelude's conflict budget
	// (4) so the guard can tell "injected stall" from "budget spent": a
	// stall that coincides with budget exhaustion is indistinguishable
	// from it, and the query escalates (replicas other than 0 do not
	// carry the conflict hook and will rescue the verdict — also fine,
	// but not what this test pins).
	faults := faultinject.New(1).StallSolverAfter(2)
	reg := obs.NewRegistry()
	port, err := NewAnalyzer(cfg, WithPortfolio(3), WithFaults(faults), WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	port.portfolioAfter = 4

	sawStall := false
	for _, q := range campaignQueries(3) {
		res, err := port.Verify(q)
		if err != nil {
			t.Fatal(err)
		}
		// Zero-conflict queries legitimately decide before the stall can
		// bite; every query the stall does kill must degrade with the
		// stall reason, never escalate.
		if res.Status == sat.Unsolved {
			sawStall = true
			if res.FailureReason != ReasonInjectedStall {
				t.Fatalf("%v: reason %q, want %q", q, res.FailureReason, ReasonInjectedStall)
			}
		}
	}
	if !sawStall {
		t.Fatal("stall fault never bit: campaign has no conflict-requiring query")
	}
	if n := counterTotal(reg, "scadaver_portfolio_escalations_total"); n != 0 {
		t.Fatalf("stalled preludes escalated %v times, want 0", n)
	}
}
