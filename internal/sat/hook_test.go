package sat

import "testing"

// pigeonholeSolver builds the unsat PHP(n+1, n) instance — a reliable
// conflict generator for exercising the per-conflict seams.
func pigeonholeSolver(t *testing.T, n int) *Solver {
	t.Helper()
	s := New()
	p := make([][]Var, n+1)
	for i := range p {
		p[i] = newVars(s, n)
	}
	for i := 0; i <= n; i++ {
		lits := make([]Lit, n)
		for j := 0; j < n; j++ {
			lits[j] = PosLit(p[i][j])
		}
		mustAdd(t, s, lits...)
	}
	for j := 0; j < n; j++ {
		for i1 := 0; i1 <= n; i1++ {
			for i2 := i1 + 1; i2 <= n; i2++ {
				mustAdd(t, s, NegLit(p[i1][j]), NegLit(p[i2][j]))
			}
		}
	}
	return s
}

// TestConflictHookAborts pins the fault-injection seam: the hook sees
// the per-call conflict count after every conflict and a true return
// yields Unsolved at exactly that point.
func TestConflictHookAborts(t *testing.T) {
	s := pigeonholeSolver(t, 6)
	var calls []uint64
	s.SetConflictHook(func(c uint64) bool {
		calls = append(calls, c)
		return c >= 10
	})
	if got := s.Solve(); got != Unsolved {
		t.Fatalf("Solve = %v, want Unsolved", got)
	}
	if len(calls) != 10 {
		t.Fatalf("hook called %d times, want 10", len(calls))
	}
	for i, c := range calls {
		if c != uint64(i+1) {
			t.Fatalf("call %d saw conflict count %d, want %d", i, c, i+1)
		}
	}
	// The seam is per-call and the solver stays usable: clearing the
	// hook lets the same instance finish.
	s.SetConflictHook(nil)
	if got := s.Solve(); got != Unsat {
		t.Fatalf("after clearing hook: Solve = %v, want Unsat", got)
	}
}

// TestConflictHookCountsPerCall checks the hook's count restarts at
// every Solve call, mirroring the per-call conflict-budget contract.
func TestConflictHookCountsPerCall(t *testing.T) {
	s := pigeonholeSolver(t, 6)
	var first uint64
	s.SetConflictHook(func(c uint64) bool {
		first = c
		return true
	})
	if got := s.Solve(); got != Unsolved {
		t.Fatalf("Solve = %v, want Unsolved", got)
	}
	if first != 1 {
		t.Fatalf("first call saw count %d, want 1", first)
	}
	first = 0
	if got := s.Solve(); got != Unsolved {
		t.Fatalf("second Solve = %v, want Unsolved", got)
	}
	if first != 1 {
		t.Fatalf("second call's first count = %d, want 1 (must reset per call)", first)
	}
}
