package sat

import "testing"

// carryProblem builds a solver over n fresh variables with the given
// clauses asserted.
func carryProblem(t *testing.T, n int, clauses [][]Lit) *Solver {
	t.Helper()
	s := New()
	vars := make([]Var, n)
	for i := range vars {
		vars[i] = s.NewVar()
	}
	for _, c := range clauses {
		if err := s.AddClause(c...); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func lit(v int, neg bool) Lit { return MkLit(Var(v), neg) }

func TestHarvestLearnts(t *testing.T) {
	// x0=x1, x1=x2, and a chain that forces learning when x0 != x2 is
	// probed; simplest is to solve an unsat-under-assumption instance so
	// learned clauses appear.
	s := carryProblem(t, 3, [][]Lit{
		{lit(0, true), lit(1, false)},
		{lit(1, true), lit(2, false)},
		{lit(0, false), lit(1, true)},
		{lit(1, false), lit(2, true)},
	})
	if st := s.Solve(lit(0, false), lit(2, true)); st != Unsat {
		t.Fatalf("chain with x0 ∧ ¬x2: got %v, want Unsat", st)
	}
	s.learned = append(s.learned,
		&clause{lits: []Lit{lit(0, true), lit(2, false)}, learned: true},
		&clause{lits: []Lit{lit(0, true), lit(1, false), lit(2, false)}, learned: true, deleted: true},
	)
	all := s.HarvestLearnts(0, 0, 100)
	for _, c := range all {
		if len(c) == 0 {
			t.Fatal("harvested an empty clause")
		}
	}
	if len(s.HarvestLearnts(1, 0, 100)) != 0 {
		t.Fatal("maxVar=1 must exclude clauses mentioning x1/x2")
	}
	if got := s.HarvestLearnts(0, 0, 1); len(got) > 1 {
		t.Fatalf("limit=1 returned %d clauses", len(got))
	}
	for _, c := range all {
		if len(c) == 3 {
			t.Fatal("harvest returned a deleted clause")
		}
	}
}

func TestImportLearntsRUPGate(t *testing.T) {
	// Successor database: x0 → x1 → x2. The clause (¬x0 ∨ x2) is RUP
	// here; the clause (x0 ∨ x2) is not implied and must be dropped.
	s := carryProblem(t, 3, [][]Lit{
		{lit(0, true), lit(1, false)},
		{lit(1, true), lit(2, false)},
	})
	n := s.ImportLearnts([][]Lit{
		{lit(0, true), lit(2, false)},  // implied: accepted
		{lit(0, false), lit(2, false)}, // not implied: dropped
	})
	if n != 1 {
		t.Fatalf("imported %d clauses, want 1 (RUP gate must drop the unimplied one)", n)
	}
	if st := s.Solve(lit(0, true), lit(2, true)); st != Sat {
		t.Fatalf("¬x0 ∧ ¬x2 must stay satisfiable after import, got %v", st)
	}
}

func TestImportLearntsUnitAndRootFiltering(t *testing.T) {
	// Database already forces x0 at the root; importing (x0) is
	// root-satisfied, skipped by the value filter but still counted only
	// if RUP — here it IS RUP (root-true literal) yet root-satisfied,
	// so the clause body is skipped entirely.
	s := carryProblem(t, 2, [][]Lit{{lit(0, false)}})
	if n := s.ImportLearnts([][]Lit{{lit(0, false)}}); n != 0 {
		t.Fatalf("root-satisfied import accepted (%d), want skip", n)
	}
	// (¬x0 ∨ x1) with x0 root-true strips to the unit (x1): the import
	// must enqueue it — but only if RUP, which it is not here (x1 is
	// unconstrained), so it is dropped.
	if n := s.ImportLearnts([][]Lit{{lit(0, true), lit(1, false)}}); n != 0 {
		t.Fatalf("unimplied stripped unit accepted (%d), want drop", n)
	}
	// Now make it implied: add (¬x0 ∨ x1) as a problem clause; x1 is a
	// root fact, and re-importing the same clause is root-satisfied.
	if err := s.AddClause(lit(0, true), lit(1, false)); err != nil {
		t.Fatal(err)
	}
	if s.Value(Var(1)) != True {
		t.Fatal("x1 not propagated at root")
	}
}

func TestImportLearntsSkipsEliminatedVars(t *testing.T) {
	s := carryProblem(t, 4, [][]Lit{
		{lit(0, false), lit(1, false)},
		{lit(0, true), lit(1, false), lit(2, false)},
		{lit(2, true), lit(3, false)},
	})
	s.Freeze(Var(0))
	if !s.Simplify() {
		t.Fatal("simplify found the problem unsat")
	}
	var victim Var = -1
	for v := 0; v < s.NumVars(); v++ {
		if s.eliminated[v] {
			victim = Var(v)
			break
		}
	}
	if victim < 0 {
		t.Skip("simplify eliminated nothing; filter untestable here")
	}
	if n := s.ImportLearnts([][]Lit{{MkLit(victim, false)}}); n != 0 {
		t.Fatalf("clause over eliminated var imported (%d), want skip", n)
	}
}
