package lint

import (
	"strings"
	"testing"

	"scadaver/internal/powergrid"
	"scadaver/internal/scadanet"
	"scadaver/internal/secpolicy"
)

func cleanConfig(t *testing.T) *scadanet.Config {
	t.Helper()
	net := scadanet.NewNetwork()
	strong := []secpolicy.Profile{
		{Algo: secpolicy.CHAP, KeyBits: 64},
		{Algo: secpolicy.SHA2, KeyBits: 256},
	}
	for _, d := range []scadanet.Device{
		{ID: 1, Kind: scadanet.IED},
		{ID: 2, Kind: scadanet.IED},
		{ID: 3, Kind: scadanet.RTU},
		{ID: 4, Kind: scadanet.RTU},
		{ID: 5, Kind: scadanet.MTU},
	} {
		if _, err := net.AddDevice(d); err != nil {
			t.Fatal(err)
		}
	}
	for _, pair := range [][2]scadanet.DeviceID{{1, 3}, {2, 4}, {1, 4}, {2, 3}, {3, 5}, {4, 5}} {
		if _, err := net.AddLink(pair[0], pair[1], strong...); err != nil {
			t.Fatal(err)
		}
	}
	// 2 states, 3 measurements: both states doubly covered.
	ms, err := powergrid.FromJacobian([][]float64{{1, -1}, {-1, 1}, {0, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if err := net.AssignMeasurements(1, 1, 3); err != nil {
		t.Fatal(err)
	}
	if err := net.AssignMeasurements(2, 2); err != nil {
		t.Fatal(err)
	}
	return &scadanet.Config{Msrs: ms, Net: net}
}

func TestCleanConfigNoFindings(t *testing.T) {
	rep := Check(cleanConfig(t), nil)
	if len(rep.Findings) != 0 {
		t.Fatalf("clean config has findings:\n%v", rep)
	}
	if rep.HasErrors() {
		t.Fatal("HasErrors on empty report")
	}
	if !strings.Contains(rep.String(), "no findings") {
		t.Fatalf("String = %q", rep.String())
	}
}

func TestProtocolMismatch(t *testing.T) {
	cfg := cleanConfig(t)
	cfg.Net.Device(1).Protocols = []scadanet.Protocol{scadanet.DNP3}
	cfg.Net.Device(3).Protocols = []scadanet.Protocol{scadanet.Modbus}
	rep := Check(cfg, nil)
	if got := rep.ByCode(CodeProtocolMismatch); len(got) != 1 {
		t.Fatalf("protocol findings = %v", rep)
	}
	if !rep.HasErrors() {
		t.Fatal("protocol mismatch must be an error")
	}
}

func TestCryptoMismatchAndBroken(t *testing.T) {
	cfg := cleanConfig(t)
	// One-sided crypto on a device pair (device-level profiles, link
	// without explicit profile).
	l, err := cfg.Net.AddLink(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	_ = l
	cfg.Net.Device(1).Profiles = []secpolicy.Profile{{Algo: secpolicy.HMAC, KeyBits: 128}}
	rep := Check(cfg, nil)
	if got := rep.ByCode(CodeCryptoMismatch); len(got) == 0 {
		t.Fatalf("missing crypto-mismatch finding:\n%v", rep)
	}

	cfg2 := cleanConfig(t)
	cfg2.Net.Links()[0].Profiles = []secpolicy.Profile{{Algo: secpolicy.DES, KeyBits: 56}}
	rep2 := Check(cfg2, nil)
	if got := rep2.ByCode(CodeBrokenCrypto); len(got) != 1 {
		t.Fatalf("broken-crypto findings:\n%v", rep2)
	}
}

func TestWeakCryptoAndNoIntegrity(t *testing.T) {
	cfg := cleanConfig(t)
	cfg.Net.Links()[0].Profiles = []secpolicy.Profile{{Algo: secpolicy.HMAC, KeyBits: 64}}
	rep := Check(cfg, nil)
	if got := rep.ByCode(CodeWeakCrypto); len(got) != 1 {
		t.Fatalf("weak-crypto findings:\n%v", rep)
	}
	if got := rep.ByCode(CodeNoIntegrity); len(got) != 1 {
		t.Fatalf("no-integrity findings:\n%v", rep)
	}
}

func TestUnreachableAndIdleIED(t *testing.T) {
	cfg := cleanConfig(t)
	if _, err := cfg.Net.AddDevice(scadanet.Device{ID: 9, Kind: scadanet.IED}); err != nil {
		t.Fatal(err)
	}
	rep := Check(cfg, nil)
	if got := rep.ByCode(CodeUnreachableIED); len(got) != 1 {
		t.Fatalf("unreachable findings:\n%v", rep)
	}
	if got := rep.ByCode(CodeIdleIED); len(got) != 1 {
		t.Fatalf("idle findings:\n%v", rep)
	}
}

func TestMeasurementAssignments(t *testing.T) {
	cfg := cleanConfig(t)
	// Unassign z2 by reassigning IED2 to z1 (now duplicate with IED1).
	net := cfg.Net
	// Rebuild assignments: easiest is a new config.
	cfg2 := cleanConfig(t)
	_ = net
	if err := cfg2.Net.AssignMeasurements(2, 1); err != nil {
		t.Fatal(err)
	}
	rep := Check(cfg2, nil)
	if got := rep.ByCode(CodeDuplicateMsr); len(got) != 1 {
		t.Fatalf("duplicate findings:\n%v", rep)
	}
}

func TestSinglePointRTU(t *testing.T) {
	cfg := cleanConfig(t)
	// Remove the cross links so IED1 depends solely on RTU3.
	cfg.Net.RemoveLink(cfg.Net.LinkBetween(1, 4).ID)
	cfg.Net.RemoveLink(cfg.Net.LinkBetween(2, 3).ID)
	rep := Check(cfg, nil)
	if got := rep.ByCode(CodeSinglePointRTU); len(got) != 2 {
		t.Fatalf("single-point findings:\n%v", rep)
	}
}

func TestCriticalMeasurement(t *testing.T) {
	net := scadanet.NewNetwork()
	for _, d := range []scadanet.Device{
		{ID: 1, Kind: scadanet.IED},
		{ID: 2, Kind: scadanet.RTU},
		{ID: 3, Kind: scadanet.MTU},
	} {
		if _, err := net.AddDevice(d); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := net.AddLink(1, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := net.AddLink(2, 3); err != nil {
		t.Fatal(err)
	}
	ms, err := powergrid.FromJacobian([][]float64{{1}})
	if err != nil {
		t.Fatal(err)
	}
	if err := net.AssignMeasurements(1, 1); err != nil {
		t.Fatal(err)
	}
	rep := Check(&scadanet.Config{Msrs: ms, Net: net}, nil)
	if got := rep.ByCode(CodeCriticalMsr); len(got) != 1 {
		t.Fatalf("critical findings:\n%v", rep)
	}
	// The single RTU is also a single point of failure.
	if got := rep.ByCode(CodeSinglePointRTU); len(got) != 1 {
		t.Fatalf("single-point findings:\n%v", rep)
	}
}

func TestDownFlags(t *testing.T) {
	cfg := cleanConfig(t)
	cfg.Net.Device(3).Down = true
	cfg.Net.Links()[0].Down = true
	rep := Check(cfg, nil)
	if len(rep.ByCode(CodeDeviceDown)) != 1 || len(rep.ByCode(CodeLinkDown)) != 1 {
		t.Fatalf("down findings:\n%v", rep)
	}
}

func TestCaseStudyLint(t *testing.T) {
	cfg, err := scadanet.CaseStudyConfig(false)
	if err != nil {
		t.Fatal(err)
	}
	rep := Check(cfg, nil)
	// The case study has known weak spots: hmac-only links (no
	// integrity) and the bare 4-10 link; RTUs are single points for
	// their IEDs; no hard errors.
	if rep.HasErrors() {
		t.Fatalf("case study should have no errors:\n%v", rep)
	}
	if len(rep.ByCode(CodeNoIntegrity)) < 2 {
		t.Fatalf("expected no-integrity findings for hmac links:\n%v", rep)
	}
	if len(rep.ByCode(CodeSinglePointRTU)) == 0 {
		t.Fatalf("expected single-point RTU findings:\n%v", rep)
	}
	// Findings are sorted most-severe first.
	for i := 1; i < len(rep.Findings); i++ {
		if rep.Findings[i].Severity > rep.Findings[i-1].Severity {
			t.Fatal("findings not sorted by severity")
		}
	}
}

func TestSeverityString(t *testing.T) {
	if Info.String() != "info" || Warning.String() != "warning" || Error.String() != "error" || Severity(0).String() != "unknown" {
		t.Fatal("Severity.String broken")
	}
}

func TestSingleLinkCutFinding(t *testing.T) {
	cfg, err := scadanet.CaseStudyConfig(false)
	if err != nil {
		t.Fatal(err)
	}
	rep := Check(cfg, nil)
	// Every case-study IED has exactly one uplink: all eight are
	// single-link-cut.
	if got := rep.ByCode(CodeSingleLinkCut); len(got) != 8 {
		t.Fatalf("single-link-cut findings = %d, want 8:\n%v", len(got), rep)
	}
}
