package scadanet

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"scadaver/internal/powergrid"
	"scadaver/internal/secpolicy"
)

// Config is a complete verifier input: the measurement model (Jacobian),
// the SCADA network, and the resiliency specification — the paper's
// Table II input.
type Config struct {
	Msrs *powergrid.MeasurementSet
	Net  *Network
	K1   int // tolerated IED failures
	K2   int // tolerated RTU failures
	R    int // tolerated corrupted measurements (bad-data analyses)
}

// ParseConfig reads the textual configuration format (see WriteConfig
// for the grammar, modeled on the paper's Table II input).
func ParseConfig(r io.Reader) (*Config, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)

	cfg := &Config{Net: NewNetwork(), K1: 1, K2: 1, R: 1}
	var jrows [][]float64
	section := ""
	lineNo := 0

	// %w in format is preserved, so sentinel errors from the network
	// builder (ErrDuplicateDevice, ErrUnknownDevice, ...) stay visible
	// to errors.Is through the line-number prefix.
	fail := func(format string, args ...any) error {
		return fmt.Errorf("config line %d: "+format, append([]any{lineNo}, args...)...)
	}

	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if strings.HasPrefix(line, "[") && strings.HasSuffix(line, "]") {
			section = strings.ToLower(strings.Trim(line, "[]"))
			continue
		}
		fields := strings.Fields(line)
		switch section {
		case "jacobian":
			row := make([]float64, 0, len(fields))
			for _, f := range fields {
				v, err := strconv.ParseFloat(f, 64)
				if err != nil {
					return nil, fail("bad Jacobian entry %q: %v", f, err)
				}
				row = append(row, v)
			}
			jrows = append(jrows, row)
		case "devices":
			if len(fields) != 3 && len(fields) != 2 {
				return nil, fail("device line wants 'kind lo [hi]', got %q", line)
			}
			kind, err := ParseDeviceKind(strings.ToLower(fields[0]))
			if err != nil {
				return nil, fail("%w", err)
			}
			lo, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fail("bad device ID %q", fields[1])
			}
			hi := lo
			if len(fields) == 3 {
				if hi, err = strconv.Atoi(fields[2]); err != nil {
					return nil, fail("bad device ID %q", fields[2])
				}
			}
			for id := lo; id <= hi; id++ {
				if _, err := cfg.Net.AddDevice(Device{ID: DeviceID(id), Kind: kind}); err != nil {
					return nil, fail("%w", err)
				}
			}
		case "links":
			if len(fields) != 2 {
				return nil, fail("link line wants 'a b', got %q", line)
			}
			a, err1 := strconv.Atoi(fields[0])
			b, err2 := strconv.Atoi(fields[1])
			if err1 != nil || err2 != nil {
				return nil, fail("bad link endpoints %q", line)
			}
			if _, err := cfg.Net.AddLink(DeviceID(a), DeviceID(b)); err != nil {
				return nil, fail("%w", err)
			}
		case "measurements":
			if len(fields) < 2 {
				return nil, fail("measurement line wants 'ied z...', got %q", line)
			}
			ied, err := strconv.Atoi(fields[0])
			if err != nil {
				return nil, fail("bad IED ID %q", fields[0])
			}
			ids := make([]int, 0, len(fields)-1)
			for _, f := range fields[1:] {
				z, err := strconv.Atoi(f)
				if err != nil {
					return nil, fail("bad measurement ID %q", f)
				}
				ids = append(ids, z)
			}
			if err := cfg.Net.AssignMeasurements(DeviceID(ied), ids...); err != nil {
				return nil, fail("%w", err)
			}
		case "protocols":
			if len(fields) < 2 {
				return nil, fail("protocol line wants 'device proto...', got %q", line)
			}
			id, err := strconv.Atoi(fields[0])
			if err != nil {
				return nil, fail("bad device ID %q", fields[0])
			}
			d := cfg.Net.Device(DeviceID(id))
			if d == nil {
				return nil, fail("unknown device %d", id)
			}
			for _, p := range fields[1:] {
				d.Protocols = append(d.Protocols, Protocol(strings.ToLower(p)))
			}
		case "security":
			if len(fields) < 4 {
				return nil, fail("security line wants 'a b algo bits ...', got %q", line)
			}
			a, err1 := strconv.Atoi(fields[0])
			b, err2 := strconv.Atoi(fields[1])
			if err1 != nil || err2 != nil {
				return nil, fail("bad endpoints %q", line)
			}
			profiles, err := secpolicy.ParseProfiles(fields[2:])
			if err != nil {
				return nil, fail("%w", err)
			}
			l := cfg.Net.LinkBetween(DeviceID(a), DeviceID(b))
			if l == nil {
				return nil, fail("security profile for nonexistent link %d-%d", a, b)
			}
			l.Profiles = append(l.Profiles, profiles...)
		case "down":
			// Out-of-service marks written by mutated configurations
			// (device-down ops). Omitted entirely when nothing is down, so
			// pre-mutation configs keep their canonical text (and thereby
			// their campaign fingerprints) byte-for-byte.
			switch {
			case len(fields) == 2 && fields[0] == "device":
				id, err := strconv.Atoi(fields[1])
				if err != nil {
					return nil, fail("bad device ID %q", fields[1])
				}
				d := cfg.Net.Device(DeviceID(id))
				if d == nil {
					return nil, fail("down mark for unknown device %d", id)
				}
				d.Down = true
			case len(fields) == 3 && fields[0] == "link":
				a, err1 := strconv.Atoi(fields[1])
				b, err2 := strconv.Atoi(fields[2])
				if err1 != nil || err2 != nil {
					return nil, fail("bad link endpoints %q", line)
				}
				l := cfg.Net.LinkBetween(DeviceID(a), DeviceID(b))
				if l == nil {
					return nil, fail("down mark for nonexistent link %d-%d", a, b)
				}
				l.Down = true
			default:
				return nil, fail("down line wants 'device ID' or 'link A B', got %q", line)
			}
		case "resiliency":
			if len(fields) < 2 || len(fields) > 3 {
				return nil, fail("resiliency wants 'k1 k2 [r]', got %q", line)
			}
			k1, err1 := strconv.Atoi(fields[0])
			k2, err2 := strconv.Atoi(fields[1])
			if err1 != nil || err2 != nil {
				return nil, fail("bad resiliency spec %q", line)
			}
			cfg.K1, cfg.K2 = k1, k2
			if len(fields) == 3 {
				r, err := strconv.Atoi(fields[2])
				if err != nil {
					return nil, fail("bad r %q", fields[2])
				}
				cfg.R = r
			}
		case "":
			return nil, fail("content before any [section] header: %q", line)
		default:
			return nil, fail("unknown section %q", section)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("config read: %w", err)
	}
	if len(jrows) == 0 {
		return nil, fmt.Errorf("config: missing [jacobian] section")
	}
	ms, err := powergrid.FromJacobian(jrows)
	if err != nil {
		return nil, fmt.Errorf("config: %w", err)
	}
	cfg.Msrs = ms
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return cfg, nil
}

// Validate checks cross-references between the network and the
// measurement model.
func (c *Config) Validate() error {
	if err := c.Net.Validate(); err != nil {
		return err
	}
	for _, d := range c.Net.DevicesOfKind(IED) {
		for _, z := range c.Net.MeasurementsOf(d.ID) {
			if z < 1 || z > c.Msrs.Len() {
				return fmt.Errorf("scadanet: IED %d transmits unknown measurement %d (have %d)",
					d.ID, z, c.Msrs.Len())
			}
		}
	}
	if c.K1 < 0 || c.K2 < 0 || c.R < 0 {
		return fmt.Errorf("scadanet: negative resiliency specification (%d,%d,%d)", c.K1, c.K2, c.R)
	}
	return nil
}

// Clone returns a deep copy of the configuration (the measurement model
// is shared structurally but its rows are copied; the network is fully
// duplicated). Mutating the clone never affects the original.
func (c *Config) Clone() *Config {
	msrs := &powergrid.MeasurementSet{
		System:  c.Msrs.System,
		NStates: c.Msrs.NStates,
		Msrs:    make([]powergrid.Measurement, len(c.Msrs.Msrs)),
	}
	for i, m := range c.Msrs.Msrs {
		m.Row = append([]float64(nil), m.Row...)
		msrs.Msrs[i] = m
	}
	return &Config{
		Msrs: msrs,
		Net:  c.Net.Clone(),
		K1:   c.K1,
		K2:   c.K2,
		R:    c.R,
	}
}

// WriteConfig serializes a Config in the textual format ParseConfig
// reads:
//
//	[jacobian]       one row of floats per measurement
//	[devices]        kind lo [hi]        (ID ranges per device kind)
//	[links]          a b                 (one link per line)
//	[measurements]   ied z1 z2 ...       (IED → measurement IDs)
//	[protocols]      device proto ...    (optional)
//	[security]       a b algo bits ...   (pairwise profiles, optional)
//	[down]           device ID | link a b (out-of-service marks, optional)
//	[resiliency]     k1 k2 [r]
func WriteConfig(w io.Writer, c *Config) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# scadaver configuration: %d states, %d measurements\n", c.Msrs.NStates, c.Msrs.Len())

	fmt.Fprintln(bw, "[jacobian]")
	for _, m := range c.Msrs.Msrs {
		for i, v := range m.Row {
			if i > 0 {
				bw.WriteByte(' ')
			}
			fmt.Fprintf(bw, "%g", v)
		}
		bw.WriteByte('\n')
	}

	fmt.Fprintln(bw, "[devices]")
	for _, kind := range []DeviceKind{IED, RTU, MTU, Router} {
		ids := []int{}
		for _, d := range c.Net.DevicesOfKind(kind) {
			ids = append(ids, int(d.ID))
		}
		sort.Ints(ids)
		// Emit contiguous ranges.
		for i := 0; i < len(ids); {
			j := i
			for j+1 < len(ids) && ids[j+1] == ids[j]+1 {
				j++
			}
			if i == j {
				fmt.Fprintf(bw, "%v %d\n", kind, ids[i])
			} else {
				fmt.Fprintf(bw, "%v %d %d\n", kind, ids[i], ids[j])
			}
			i = j + 1
		}
	}

	fmt.Fprintln(bw, "[links]")
	for _, l := range c.Net.Links() {
		fmt.Fprintf(bw, "%d %d\n", l.A, l.B)
	}

	fmt.Fprintln(bw, "[measurements]")
	for _, d := range c.Net.DevicesOfKind(IED) {
		zs := c.Net.MeasurementsOf(d.ID)
		if len(zs) == 0 {
			continue
		}
		fmt.Fprintf(bw, "%d", d.ID)
		for _, z := range zs {
			fmt.Fprintf(bw, " %d", z)
		}
		bw.WriteByte('\n')
	}

	wroteProto := false
	for _, d := range c.Net.Devices() {
		if len(d.Protocols) == 0 {
			continue
		}
		if !wroteProto {
			fmt.Fprintln(bw, "[protocols]")
			wroteProto = true
		}
		fmt.Fprintf(bw, "%d", d.ID)
		for _, p := range d.Protocols {
			fmt.Fprintf(bw, " %s", p)
		}
		bw.WriteByte('\n')
	}

	wroteSec := false
	for _, l := range c.Net.Links() {
		if len(l.Profiles) == 0 {
			continue
		}
		if !wroteSec {
			fmt.Fprintln(bw, "[security]")
			wroteSec = true
		}
		fmt.Fprintf(bw, "%d %d %s\n", l.A, l.B, secpolicy.FormatProfiles(l.Profiles))
	}

	// Down marks distinguish a mutated configuration from its healthy
	// twin in the canonical text — without them, configurations that
	// differ only in out-of-service state would alias to one campaign
	// fingerprint. The section is omitted when everything is up, keeping
	// the canonical text of unmutated configs unchanged.
	wroteDown := false
	down := func() {
		if !wroteDown {
			fmt.Fprintln(bw, "[down]")
			wroteDown = true
		}
	}
	ids := []int{}
	for _, d := range c.Net.Devices() {
		if d.Down {
			ids = append(ids, int(d.ID))
		}
	}
	sort.Ints(ids)
	for _, id := range ids {
		down()
		fmt.Fprintf(bw, "device %d\n", id)
	}
	for _, l := range c.Net.Links() {
		if l.Down {
			down()
			fmt.Fprintf(bw, "link %d %d\n", l.A, l.B)
		}
	}

	fmt.Fprintln(bw, "[resiliency]")
	fmt.Fprintf(bw, "%d %d %d\n", c.K1, c.K2, c.R)
	return bw.Flush()
}
