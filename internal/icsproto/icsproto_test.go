package icsproto

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func sampleFrame() *Frame {
	return &Frame{
		Src: 7, Dst: 13, Seq: 42,
		Payload: []Measurement{
			{ID: 1, Value: 16.9, Quality: 0},
			{ID: 8, Value: -5.05, Quality: 0},
			{ID: 14, Value: 0, Quality: 2},
		},
	}
}

func TestFrameRoundTrip(t *testing.T) {
	f := sampleFrame()
	data, err := f.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Src != f.Src || back.Dst != f.Dst || back.Seq != f.Seq {
		t.Fatalf("header changed: %+v", back)
	}
	if len(back.Payload) != len(f.Payload) {
		t.Fatalf("payload length %d", len(back.Payload))
	}
	for i := range f.Payload {
		if back.Payload[i] != f.Payload[i] {
			t.Fatalf("measurement %d: %+v vs %+v", i, back.Payload[i], f.Payload[i])
		}
	}
}

func TestFrameEmptyPayload(t *testing.T) {
	f := &Frame{Src: 1, Dst: 2, Seq: 1}
	data, err := f.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Payload) != 0 {
		t.Fatalf("payload = %v", back.Payload)
	}
}

func TestFrameCorruptionDetected(t *testing.T) {
	data, err := sampleFrame().Marshal()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		corrupted := append([]byte(nil), data...)
		corrupted[rng.Intn(len(corrupted))] ^= 1 << uint(rng.Intn(8))
		if _, err := Unmarshal(corrupted); err == nil {
			t.Fatalf("trial %d: single bit flip not detected", trial)
		}
	}
}

func TestFrameTruncated(t *testing.T) {
	data, err := sampleFrame().Marshal()
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{0, 3, headerLen, len(data) - 3} {
		if _, err := Unmarshal(data[:n]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", n)
		}
	}
}

func TestFrameTooLarge(t *testing.T) {
	f := &Frame{Payload: make([]Measurement, MaxMeasurements+1)}
	if _, err := f.Marshal(); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("want ErrTooLarge, got %v", err)
	}
}

func TestFrameBadVersion(t *testing.T) {
	data, err := sampleFrame().Marshal()
	if err != nil {
		t.Fatal(err)
	}
	data[0] = 99
	// Fix up the CRC so only the version check can object.
	body := data[:len(data)-2]
	binary.BigEndian.PutUint16(data[len(data)-2:], CRC16DNP(body))
	if _, err := Unmarshal(data); !errors.Is(err, ErrVersion) {
		t.Fatalf("want ErrVersion, got %v", err)
	}
}

func TestCRC16DNPKnownVector(t *testing.T) {
	// Standard check value for CRC-16/DNP: "123456789" -> 0xEA82.
	if got := CRC16DNP([]byte("123456789")); got != 0xEA82 {
		t.Fatalf("CRC16DNP check = %#x, want 0xEA82", got)
	}
}

func TestQuickFrameRoundTrip(t *testing.T) {
	f := func(src, dst uint16, seq uint32, n uint8, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		fr := &Frame{Src: src, Dst: dst, Seq: seq}
		for i := 0; i < int(n)%20; i++ {
			fr.Payload = append(fr.Payload, Measurement{
				ID:      uint16(rng.Intn(500)),
				Value:   rng.NormFloat64() * 100,
				Quality: uint8(rng.Intn(4)),
			})
		}
		data, err := fr.Marshal()
		if err != nil {
			return false
		}
		back, err := Unmarshal(data)
		if err != nil {
			return false
		}
		if back.Src != fr.Src || back.Dst != fr.Dst || back.Seq != fr.Seq || len(back.Payload) != len(fr.Payload) {
			return false
		}
		for i := range fr.Payload {
			if back.Payload[i].ID != fr.Payload[i].ID ||
				back.Payload[i].Quality != fr.Payload[i].Quality ||
				math.Float64bits(back.Payload[i].Value) != math.Float64bits(fr.Payload[i].Value) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func newPair(t *testing.T, encrypted bool) (*Session, *Session) {
	t.Helper()
	authKey := bytes.Repeat([]byte{0xA5}, 32)
	var encKey []byte
	if encrypted {
		encKey = bytes.Repeat([]byte{0x3C}, 32)
	}
	tx, err := NewSession(authKey, encKey)
	if err != nil {
		t.Fatal(err)
	}
	rx, err := NewSession(authKey, encKey)
	if err != nil {
		t.Fatal(err)
	}
	return tx, rx
}

func TestSessionRoundTrip(t *testing.T) {
	for _, encrypted := range []bool{false, true} {
		tx, rx := newPair(t, encrypted)
		if tx.Encrypted() != encrypted {
			t.Fatal("Encrypted() wrong")
		}
		for i := 0; i < 5; i++ {
			f := sampleFrame()
			f.Seq = uint32(i)
			sealed, err := tx.Seal(f)
			if err != nil {
				t.Fatal(err)
			}
			back, err := rx.Open(sealed)
			if err != nil {
				t.Fatalf("encrypted=%v msg %d: %v", encrypted, i, err)
			}
			if back.Seq != f.Seq || len(back.Payload) != len(f.Payload) {
				t.Fatalf("frame changed: %+v", back)
			}
		}
	}
}

func TestSessionTamperDetected(t *testing.T) {
	for _, encrypted := range []bool{false, true} {
		tx, rx := newPair(t, encrypted)
		sealed, err := tx.Seal(sampleFrame())
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(11))
		for trial := 0; trial < 50; trial++ {
			tampered := append([]byte(nil), sealed...)
			tampered[rng.Intn(len(tampered))] ^= 1 << uint(rng.Intn(8))
			if _, err := rx.Open(tampered); err == nil {
				t.Fatalf("encrypted=%v trial %d: tampering accepted", encrypted, trial)
			}
		}
		// The untampered message still opens (tamper attempts must not
		// advance the replay window).
		if _, err := rx.Open(sealed); err != nil {
			t.Fatalf("original rejected after tamper attempts: %v", err)
		}
	}
}

func TestSessionReplayRejected(t *testing.T) {
	tx, rx := newPair(t, false)
	sealed, err := tx.Seal(sampleFrame())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rx.Open(sealed); err != nil {
		t.Fatal(err)
	}
	if _, err := rx.Open(sealed); !errors.Is(err, ErrReplay) {
		t.Fatalf("replay: want ErrReplay, got %v", err)
	}
	// Out-of-order (older seq) also rejected.
	first, err := tx.Seal(sampleFrame())
	if err != nil {
		t.Fatal(err)
	}
	second, err := tx.Seal(sampleFrame())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rx.Open(second); err != nil {
		t.Fatal(err)
	}
	if _, err := rx.Open(first); !errors.Is(err, ErrReplay) {
		t.Fatalf("reorder: want ErrReplay, got %v", err)
	}
}

func TestSessionWrongKeyRejected(t *testing.T) {
	tx, _ := newPair(t, false)
	other, err := NewSession(bytes.Repeat([]byte{0x77}, 32), nil)
	if err != nil {
		t.Fatal(err)
	}
	sealed, err := tx.Seal(sampleFrame())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := other.Open(sealed); !errors.Is(err, ErrTag) {
		t.Fatalf("want ErrTag, got %v", err)
	}
}

func TestSessionEncryptionHidesPayload(t *testing.T) {
	tx, _ := newPair(t, true)
	f := sampleFrame()
	plain, err := f.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	sealed, err := tx.Seal(f)
	if err != nil {
		t.Fatal(err)
	}
	// The plaintext frame bytes must not appear in the sealed message.
	if bytes.Contains(sealed, plain[:len(plain)-2]) {
		t.Fatal("sealed message leaks plaintext")
	}
}

func TestSessionKeyValidation(t *testing.T) {
	if _, err := NewSession([]byte("short"), nil); !errors.Is(err, ErrKeySize) {
		t.Fatalf("want ErrKeySize, got %v", err)
	}
	if _, err := NewSession(bytes.Repeat([]byte{1}, 32), []byte("short")); !errors.Is(err, ErrKeySize) {
		t.Fatalf("want ErrKeySize, got %v", err)
	}
}

func TestSessionMalformed(t *testing.T) {
	_, rx := newPair(t, false)
	if _, err := rx.Open([]byte{1, 2, 3}); !errors.Is(err, ErrSealed) {
		t.Fatalf("want ErrSealed, got %v", err)
	}
}
