package stateest

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"scadaver/internal/powergrid"
)

// fullACSet builds a rich AC measurement set on a bus system: P/Q flows
// in both directions, P/Q injections at every bus, and one voltage
// reading per bus.
func fullACSet(sys *powergrid.BusSystem, sigma float64) []ACMeasurement {
	var out []ACMeasurement
	for _, br := range sys.Branches {
		out = append(out,
			ACMeasurement{Kind: ACFlowP, From: br.From, To: br.To, Sigma: sigma},
			ACMeasurement{Kind: ACFlowP, From: br.To, To: br.From, Sigma: sigma},
			ACMeasurement{Kind: ACFlowQ, From: br.From, To: br.To, Sigma: sigma},
		)
	}
	for bus := 1; bus <= sys.NBuses; bus++ {
		out = append(out,
			ACMeasurement{Kind: ACInjP, From: bus, Sigma: sigma},
			ACMeasurement{Kind: ACInjQ, From: bus, Sigma: sigma},
			ACMeasurement{Kind: ACVoltage, From: bus, Sigma: sigma},
		)
	}
	return out
}

func acTruth(n int) ACState {
	st := ACState{Angles: make([]float64, n), Voltages: make([]float64, n)}
	for i := 0; i < n; i++ {
		st.Angles[i] = -0.02 * float64(i)
		st.Voltages[i] = 1.0 + 0.01*float64(i%3)
	}
	return st
}

func TestACEstimateRecoversTruthNoiseless(t *testing.T) {
	sys := powergrid.Case5()
	e, err := NewAC(sys, 1)
	if err != nil {
		t.Fatal(err)
	}
	truth := acTruth(sys.NBuses)
	msrs, err := e.MeasureAC(fullACSet(sys, 0.01), truth, nil)
	if err != nil {
		t.Fatal(err)
	}
	st, chi, err := e.EstimateAC(msrs)
	if err != nil {
		t.Fatal(err)
	}
	if chi > 1e-10 {
		t.Fatalf("noiseless chi = %v", chi)
	}
	for i := range truth.Angles {
		wantAngle := truth.Angles[i] - truth.Angles[0] // ref shift
		if math.Abs(st.Angles[i]-wantAngle) > 1e-6 {
			t.Fatalf("angle %d = %v, want %v", i, st.Angles[i], wantAngle)
		}
		if math.Abs(st.Voltages[i]-truth.Voltages[i]) > 1e-6 {
			t.Fatalf("voltage %d = %v, want %v", i, st.Voltages[i], truth.Voltages[i])
		}
	}
}

func TestACEstimateWithNoise(t *testing.T) {
	sys := powergrid.IEEE14()
	e, err := NewAC(sys, 1)
	if err != nil {
		t.Fatal(err)
	}
	truth := acTruth(sys.NBuses)
	msrs, err := e.MeasureAC(fullACSet(sys, 0.02), truth, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	st, _, err := e.EstimateAC(msrs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range truth.Voltages {
		if math.Abs(st.Voltages[i]-truth.Voltages[i]) > 0.05 {
			t.Fatalf("voltage %d = %v, want ≈%v", i, st.Voltages[i], truth.Voltages[i])
		}
	}
}

// TestACMatchesDCInSmallAngleLimit: with flat voltages and small
// angles, AC real-power flows approach the DC model b·(θi−θj).
func TestACMatchesDCInSmallAngleLimit(t *testing.T) {
	sys := powergrid.Case5()
	e, err := NewAC(sys, 1)
	if err != nil {
		t.Fatal(err)
	}
	st := e.FlatState()
	for i := range st.Angles {
		st.Angles[i] = -0.001 * float64(i)
	}
	for _, br := range sys.Branches {
		m := ACMeasurement{Kind: ACFlowP, From: br.From, To: br.To}
		got, err := e.evalOne(m, st)
		if err != nil {
			t.Fatal(err)
		}
		d := st.Angles[br.From-1] - st.Angles[br.To-1]
		dc := br.Susceptance * d
		// |sin x − x| ≤ |x|³/6: the AC value may differ from DC by the
		// cubic linearization error.
		bound := br.Susceptance*math.Abs(d*d*d)/6 + 1e-12
		if math.Abs(got-dc) > bound {
			t.Fatalf("branch %d-%d: AC %v vs DC %v (bound %v)", br.From, br.To, got, dc, bound)
		}
	}
}

// TestACJacobianMatchesFiniteDifferences validates the analytic
// derivatives against central differences at a random-ish state.
func TestACJacobianMatchesFiniteDifferences(t *testing.T) {
	sys := powergrid.Case5()
	e, err := NewAC(sys, 1)
	if err != nil {
		t.Fatal(err)
	}
	st := acTruth(sys.NBuses)
	msrs := fullACSet(sys, 0)

	n := sys.NBuses
	angleIdx := make([]int, n)
	idx := 0
	for bus := 1; bus <= n; bus++ {
		if bus == 1 {
			angleIdx[bus-1] = -1
			continue
		}
		angleIdx[bus-1] = idx
		idx++
	}
	nState := idx + n

	const h = 1e-6
	perturb := func(base ACState, j int, delta float64) ACState {
		out := ACState{
			Angles:   append([]float64(nil), base.Angles...),
			Voltages: append([]float64(nil), base.Voltages...),
		}
		if j < idx {
			for bus := 1; bus <= n; bus++ {
				if angleIdx[bus-1] == j {
					out.Angles[bus-1] += delta
				}
			}
		} else {
			out.Voltages[j-idx] += delta
		}
		return out
	}

	for _, m := range msrs {
		row := make([]float64, nState)
		if err := e.jacobianRow(m, st, row, angleIdx); err != nil {
			t.Fatal(err)
		}
		for j := 0; j < nState; j++ {
			plus, err := e.evalOne(m, perturb(st, j, h))
			if err != nil {
				t.Fatal(err)
			}
			minus, err := e.evalOne(m, perturb(st, j, -h))
			if err != nil {
				t.Fatal(err)
			}
			fd := (plus - minus) / (2 * h)
			if math.Abs(fd-row[j]) > 1e-4*(1+math.Abs(fd)) {
				t.Fatalf("%v d/dx%d: analytic %v, finite-diff %v", m.Kind, j, row[j], fd)
			}
		}
	}
}

func TestACUnsolvableWithoutVoltageAnchor(t *testing.T) {
	// Pure P-flow measurements cannot fix the voltage magnitudes.
	sys := powergrid.Case5()
	e, err := NewAC(sys, 1)
	if err != nil {
		t.Fatal(err)
	}
	var msrs []ACMeasurement
	for _, br := range sys.Branches {
		msrs = append(msrs, ACMeasurement{Kind: ACFlowP, From: br.From, To: br.To})
	}
	truth := acTruth(sys.NBuses)
	msrs, err = e.MeasureAC(msrs, truth, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.EstimateAC(msrs); !errors.Is(err, ErrACUnsolvable) {
		t.Fatalf("want ErrACUnsolvable, got %v", err)
	}
}

func TestACInputValidation(t *testing.T) {
	sys := powergrid.Case5()
	if _, err := NewAC(sys, 0); !errors.Is(err, ErrACBadInput) {
		t.Fatal("bad ref accepted")
	}
	e, err := NewAC(sys, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.EstimateAC(nil); !errors.Is(err, ErrACBadInput) {
		t.Fatal("empty measurement set accepted")
	}
	// Flow on a nonexistent branch.
	bad := []ACMeasurement{{Kind: ACFlowP, From: 1, To: 4}}
	if _, err := e.Evaluate(bad, e.FlatState()); !errors.Is(err, ErrACBadInput) {
		t.Fatal("nonexistent branch accepted")
	}
	// Wrong state dims.
	if _, err := e.Evaluate(nil, ACState{}); !errors.Is(err, ErrACBadInput) {
		t.Fatal("bad state accepted")
	}
}

func TestACKindString(t *testing.T) {
	kinds := map[ACMsrKind]string{
		ACFlowP: "P-flow", ACFlowQ: "Q-flow", ACInjP: "P-injection",
		ACInjQ: "Q-injection", ACVoltage: "V-magnitude", ACMsrKind(0): "unknown",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Fatalf("%d.String() = %q", k, k.String())
		}
	}
}

func TestACDetectsGrossErrorViaChi(t *testing.T) {
	sys := powergrid.Case5()
	e, err := NewAC(sys, 1)
	if err != nil {
		t.Fatal(err)
	}
	truth := acTruth(sys.NBuses)
	msrs, err := e.MeasureAC(fullACSet(sys, 0.01), truth, rand.New(rand.NewSource(8)))
	if err != nil {
		t.Fatal(err)
	}
	_, cleanChi, err := e.EstimateAC(msrs)
	if err != nil {
		t.Fatal(err)
	}
	msrs[0].Value += 5
	_, dirtyChi, err := e.EstimateAC(msrs)
	if err != nil {
		t.Fatal(err)
	}
	if dirtyChi < 10*cleanChi {
		t.Fatalf("gross error not visible: clean %v dirty %v", cleanChi, dirtyChi)
	}
}
