package sat

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ParseDIMACS reads a CNF formula in DIMACS format into a fresh solver.
// The "p cnf" header is honored for pre-allocating variables; variables
// referenced beyond the header count are created on demand.
func ParseDIMACS(r io.Reader) (*Solver, error) {
	s := New()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	var pending []Lit
	lineNo := 0
	ensure := func(v int) {
		for s.NumVars() < v {
			s.NewVar()
		}
	}
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "c") {
			continue
		}
		if strings.HasPrefix(line, "p") {
			fields := strings.Fields(line)
			if len(fields) >= 3 {
				if n, err := strconv.Atoi(fields[2]); err == nil {
					ensure(n)
				}
			}
			continue
		}
		for _, tok := range strings.Fields(line) {
			n, err := strconv.Atoi(tok)
			if err != nil {
				return nil, fmt.Errorf("dimacs line %d: bad token %q: %w", lineNo, tok, err)
			}
			if n == 0 {
				if err := s.AddClause(pending...); err != nil {
					return nil, fmt.Errorf("dimacs line %d: %w", lineNo, err)
				}
				pending = pending[:0]
				continue
			}
			v := n
			if v < 0 {
				v = -v
			}
			ensure(v)
			pending = append(pending, MkLit(Var(v-1), n < 0))
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dimacs read: %w", err)
	}
	if len(pending) > 0 {
		if err := s.AddClause(pending...); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// WriteDIMACS serializes the solver's problem clauses (not learned
// clauses) in DIMACS format.
func (s *Solver) WriteDIMACS(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "p cnf %d %d\n", s.NumVars(), len(s.clauses)); err != nil {
		return err
	}
	for _, c := range s.clauses {
		for _, l := range c.lits {
			if _, err := bw.WriteString(l.String()); err != nil {
				return err
			}
			if err := bw.WriteByte(' '); err != nil {
				return err
			}
		}
		if _, err := bw.WriteString("0\n"); err != nil {
			return err
		}
	}
	return bw.Flush()
}
