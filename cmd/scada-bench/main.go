// Command scada-bench regenerates the paper's evaluation artifacts: one
// subcommand per figure of Section V plus the Section IV case study,
// and a parallel k-sweep campaign (-fig sweep) for measuring the
// worker-pool speedup.
//
// Usage:
//
//	scada-bench -fig 5a [-inputs 3] [-runs 5] [-workers N]
//	scada-bench -fig all
//	scada-bench -fig sweep [-bus ieee57] [-maxk 8] [-workers N]
//	scada-bench -fig mutate [-bus ieee57] [-steps 10]
//	scada-bench -record BENCH_pr2.json [-maxk 4]
//
// -record FILE runs the recorded benchmark campaign (boundary + k-sweep
// over IEEE 14/30/57) and writes the machine-readable per-figure wall
// time, solve time and solver conflicts to FILE, atomically (the file
// is replaced only once the campaign finished writing it). -trace,
// -metrics and -pprof mirror scada-analyzer's observability flags.
//
// Fault tolerance (see DESIGN.md §9): -deadline and -retries bound each
// individual verification, degrading exhausted queries to UNSOLVED rows
// instead of failing the campaign; -keep-going (default) isolates
// per-query errors in the sweep campaign; -checkpoint FILE makes -fig
// sweep resumable across interruptions.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"scadaver/internal/atomicio"
	"scadaver/internal/core"
	"scadaver/internal/experiments"
	"scadaver/internal/obs"
	"scadaver/internal/version"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "scada-bench:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) (retErr error) {
	fs := flag.NewFlagSet("scada-bench", flag.ContinueOnError)
	var (
		fig        = fs.String("fig", "all", "figure: 5a | 5b | 6a | 6b | 7a | 7b | case | all | sweep | mutate")
		inputs     = fs.Int("inputs", 3, "random inputs per point")
		runs       = fs.Int("runs", 5, "timed runs per input")
		workers    = fs.Int("workers", 0, "verification worker-pool size (0 = GOMAXPROCS)")
		bus        = fs.String("bus", "ieee57", "bus system for -fig sweep and -fig mutate")
		steps      = fs.Int("steps", 10, "random single-link deltas for -fig mutate")
		maxK       = fs.Int("maxk", 8, "largest failure budget for -fig sweep and -record")
		record     = fs.String("record", "", "run the recorded benchmark campaign and write BENCH JSON to this file")
		systems    = fs.String("systems", "", "for -record: comma-separated bus systems (empty = ieee14,ieee30,ieee57 plus an ieee118 boundary-only row)")
		traceFile  = fs.String("trace", "", "write a JSONL phase trace of every verification to this file")
		metricsOut = fs.String("metrics", "", "write campaign metrics to this file (.json extension = JSON, otherwise Prometheus text)")
		pprofAddr  = fs.String("pprof", "", "serve net/http/pprof on this address while running")
		deadline   = fs.Duration("deadline", 0, "per-query wall-clock deadline; exhausted queries degrade to UNSOLVED (0 = none)")
		retries    = fs.Int("retries", 0, "extra attempts per query after a budget-exhausted solve, with escalating budgets")
		checkpoint = fs.String("checkpoint", "", "for -fig sweep: stream finished queries to this resumable checkpoint file")
		keepGoing  = fs.Bool("keep-going", true, "for -fig sweep: isolate per-query failures instead of aborting the campaign")
		presimp    = fs.Bool("presimplify", false, "preprocess each structural CNF before search (amortized via the encoding cache)")
		certify    = fs.Bool("certify", false, "certify every verdict (proof-logged solves, in-process DRAT checking, sat-model audits); the §R3 overhead ablation")
		noCache    = fs.Bool("no-cache", false, "disable the per-campaign encoding cache (re-encode the structure per query)")
		portfolio  = fs.Int("portfolio", 0, "race N diversified solver replicas per hard query (0/1 = serial)")
		noShare    = fs.Bool("portfolio-noshare", false, "disable the learnt-clause exchange between portfolio replicas (ablation)")
		watch      = fs.Duration("watch", 0, "print a live progress line per in-flight query to stderr every interval (0 = off)")
		showVer    = fs.Bool("version", false, "print version and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *showVer {
		fmt.Fprintln(w, version.String())
		return nil
	}

	root, reg, closeObs, err := obs.Setup("scada-bench", *traceFile, *metricsOut, *pprofAddr)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := closeObs(); cerr != nil && retErr == nil {
			retErr = cerr
		}
	}()
	opt := experiments.Options{
		Inputs: *inputs, Runs: *runs, Workers: *workers,
		Trace: root, Metrics: reg,
		Budget:      core.QueryBudget{Deadline: *deadline, Retries: *retries},
		Presimplify: *presimp, NoCache: *noCache, Certify: *certify,
		Portfolio: *portfolio, PortfolioNoShare: *noShare,
	}
	if *watch > 0 {
		opt.Queries = obs.NewQueryRegistry(0, 0)
		stopWatch := obs.WatchProgress(os.Stderr, opt.Queries, *watch)
		defer stopWatch()
	}

	if *record != "" {
		opt.MaxK = *maxK
		if *systems != "" {
			opt.Systems = strings.Split(*systems, ",")
		}
		run, err := experiments.BenchRecord(opt)
		if err != nil {
			return err
		}
		if err := atomicio.WriteFile(*record, func(bw *bufio.Writer) error {
			return experiments.WriteBenchRun(bw, run)
		}); err != nil {
			return err
		}
		fmt.Fprintf(w, "benchmark record (%d figures, %.2f ms total) written to %s\n",
			len(run.Figures), run.TotalWallMs, *record)
		return nil
	}

	want := func(name string) bool { return *fig == name || *fig == "all" }
	ran := false

	// Like the sweep, the mutation storm is a performance campaign, not
	// a paper figure, so "all" does not include it.
	if *fig == "mutate" {
		mr, err := experiments.MutationStorm(*bus, *steps, opt)
		if err != nil {
			return err
		}
		experiments.PrintMutationStorm(w, mr)
		return nil
	}

	// The sweep is a performance campaign, not a paper figure, so "all"
	// does not include it.
	if *fig == "sweep" {
		sr, err := experiments.KSweepCampaign(*bus, *maxK, *workers, *checkpoint, *keepGoing, opt.CoreOptions()...)
		if err != nil {
			return err
		}
		experiments.PrintSweep(w, sr)
		if n := sr.Failed(); n > 0 {
			return fmt.Errorf("%d of %d queries failed (results above are partial)", n, len(sr.Queries))
		}
		return nil
	}

	if want("case") {
		ran = true
		if err := experiments.CaseStudy(w); err != nil {
			return err
		}
	}
	if want("5a") {
		ran = true
		pts, err := experiments.Fig5(core.Observability, opt)
		if err != nil {
			return err
		}
		experiments.PrintScale(w, "Fig 5(a): k-resilient observability time vs bus size", pts)
	}
	if want("5b") {
		ran = true
		pts, err := experiments.Fig5(core.SecuredObservability, opt)
		if err != nil {
			return err
		}
		experiments.PrintScale(w, "Fig 5(b): k-resilient secured observability time vs bus size", pts)
	}
	if want("6a") {
		ran = true
		pts, err := experiments.Fig6("ieee14", core.Observability, opt)
		if err != nil {
			return err
		}
		experiments.PrintScale(w, "Fig 6(a): time vs hierarchy level (ieee14)", pts)
	}
	if want("6b") {
		ran = true
		pts, err := experiments.Fig6("ieee57", core.Observability, opt)
		if err != nil {
			return err
		}
		experiments.PrintScale(w, "Fig 6(b): time vs hierarchy level (ieee57)", pts)
	}
	if want("7a") {
		ran = true
		pts, err := experiments.Fig7a(opt)
		if err != nil {
			return err
		}
		experiments.PrintResiliency(w, pts)
	}
	if want("7b") {
		ran = true
		pts, err := experiments.Fig7b(opt)
		if err != nil {
			return err
		}
		experiments.PrintThreatSpace(w, pts)
	}
	if !ran {
		return fmt.Errorf("unknown figure %q", *fig)
	}
	return nil
}
