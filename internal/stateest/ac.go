package stateest

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"scadaver/internal/matrix"
	"scadaver/internal/powergrid"
)

// AC (lossless) state estimation. The DC estimator in this package is
// the linearization SCADA state estimation textbooks start from; the AC
// estimator here solves the underlying nonlinear weighted-least-squares
// problem with Gauss-Newton iterations over bus voltage angles and
// magnitudes, for the lossless line model (series reactance only,
// G = 0):
//
//	P_ij = V_i V_j b_ij sin(θ_i − θ_j)
//	Q_ij = b_ij V_i² − b_ij V_i V_j cos(θ_i − θ_j)
//	P_i  = Σ_j P_ij,   Q_i = Σ_j Q_ij,   plus direct V_i readings.

// ACMsrKind classifies AC measurements.
type ACMsrKind int

// The AC measurement kinds.
const (
	ACFlowP   ACMsrKind = iota + 1 // real power flow From→To
	ACFlowQ                        // reactive power flow From→To
	ACInjP                         // real power injection at From
	ACInjQ                         // reactive power injection at From
	ACVoltage                      // voltage magnitude at From
)

// String implements fmt.Stringer.
func (k ACMsrKind) String() string {
	switch k {
	case ACFlowP:
		return "P-flow"
	case ACFlowQ:
		return "Q-flow"
	case ACInjP:
		return "P-injection"
	case ACInjQ:
		return "Q-injection"
	case ACVoltage:
		return "V-magnitude"
	}
	return "unknown"
}

// ACMeasurement is one nonlinear measurement.
type ACMeasurement struct {
	Kind     ACMsrKind
	From, To int     // 1-based buses; To used by flows
	Value    float64 // measured value
	Sigma    float64 // standard deviation (<=0 → 1.0)
}

// ACState is a full AC operating point.
type ACState struct {
	Angles   []float64 // radians, per bus
	Voltages []float64 // per-unit magnitudes, per bus
}

// ACEstimator solves the nonlinear WLS problem on a bus system.
type ACEstimator struct {
	sys    *powergrid.BusSystem
	refBus int

	// Convergence controls.
	MaxIterations int     // default 25
	Tolerance     float64 // max |Δx| to declare convergence; default 1e-8
}

// AC estimation errors.
var (
	ErrNotConverged = errors.New("stateest: Gauss-Newton iteration did not converge")
	ErrACUnsolvable = errors.New("stateest: AC gain matrix singular (measurement set insufficient)")
	ErrACBadInput   = errors.New("stateest: invalid AC input")
)

// NewAC builds an AC estimator with the given reference bus.
func NewAC(sys *powergrid.BusSystem, refBus int) (*ACEstimator, error) {
	if refBus < 1 || refBus > sys.NBuses {
		return nil, fmt.Errorf("%w: reference bus %d of %d", ErrACBadInput, refBus, sys.NBuses)
	}
	return &ACEstimator{sys: sys, refBus: refBus, MaxIterations: 25, Tolerance: 1e-8}, nil
}

// FlatState returns the flat start: all angles 0, all voltages 1 pu.
func (e *ACEstimator) FlatState() ACState {
	n := e.sys.NBuses
	st := ACState{Angles: make([]float64, n), Voltages: make([]float64, n)}
	for i := range st.Voltages {
		st.Voltages[i] = 1
	}
	return st
}

// susceptances returns the per-branch b and an adjacency index.
func (e *ACEstimator) branches() []powergrid.Branch { return e.sys.Branches }

// evalOne computes h(x) for one measurement.
func (e *ACEstimator) evalOne(m ACMeasurement, st ACState) (float64, error) {
	theta := st.Angles
	v := st.Voltages
	flow := func(i, j int, b float64) (p, q float64) {
		d := theta[i-1] - theta[j-1]
		p = v[i-1] * v[j-1] * b * math.Sin(d)
		q = b*v[i-1]*v[i-1] - b*v[i-1]*v[j-1]*math.Cos(d)
		return p, q
	}
	switch m.Kind {
	case ACFlowP, ACFlowQ:
		for _, br := range e.branches() {
			var b float64
			switch {
			case br.From == m.From && br.To == m.To:
				b = br.Susceptance
			case br.To == m.From && br.From == m.To:
				b = br.Susceptance
			default:
				continue
			}
			p, q := flow(m.From, m.To, b)
			if m.Kind == ACFlowP {
				return p, nil
			}
			return q, nil
		}
		return 0, fmt.Errorf("%w: no branch %d-%d", ErrACBadInput, m.From, m.To)
	case ACInjP, ACInjQ:
		sumP, sumQ := 0.0, 0.0
		for _, br := range e.branches() {
			var other int
			switch m.From {
			case br.From:
				other = br.To
			case br.To:
				other = br.From
			default:
				continue
			}
			p, q := flow(m.From, other, br.Susceptance)
			sumP += p
			sumQ += q
		}
		if m.Kind == ACInjP {
			return sumP, nil
		}
		return sumQ, nil
	case ACVoltage:
		return v[m.From-1], nil
	}
	return 0, fmt.Errorf("%w: unknown kind %d", ErrACBadInput, int(m.Kind))
}

// Evaluate computes h(x) for all measurements at a state (useful for
// synthesizing readings; add noise with MeasureAC).
func (e *ACEstimator) Evaluate(msrs []ACMeasurement, st ACState) ([]float64, error) {
	if err := e.checkState(st); err != nil {
		return nil, err
	}
	out := make([]float64, len(msrs))
	for i, m := range msrs {
		v, err := e.evalOne(m, st)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// MeasureAC fills in measurement Values from a true state with Gaussian
// noise of each measurement's Sigma (rng nil = noiseless). It returns a
// copy; the input slice is not modified.
func (e *ACEstimator) MeasureAC(msrs []ACMeasurement, truth ACState, rng *rand.Rand) ([]ACMeasurement, error) {
	vals, err := e.Evaluate(msrs, truth)
	if err != nil {
		return nil, err
	}
	out := make([]ACMeasurement, len(msrs))
	copy(out, msrs)
	for i := range out {
		out[i].Value = vals[i]
		if rng != nil && out[i].Sigma > 0 {
			out[i].Value += rng.NormFloat64() * out[i].Sigma
		}
	}
	return out, nil
}

func (e *ACEstimator) checkState(st ACState) error {
	if len(st.Angles) != e.sys.NBuses || len(st.Voltages) != e.sys.NBuses {
		return fmt.Errorf("%w: state dimensions %d/%d for %d buses",
			ErrACBadInput, len(st.Angles), len(st.Voltages), e.sys.NBuses)
	}
	return nil
}

// jacobianRow fills the row of ∂h_m/∂x at state st. The state vector
// layout is [θ (all buses except ref) | V (all buses)].
func (e *ACEstimator) jacobianRow(m ACMeasurement, st ACState, row []float64, angleIdx []int) error {
	theta := st.Angles
	v := st.Voltages
	// Partial derivatives for the lossless flow From→To over branch b:
	//  ∂P/∂θi =  Vi Vj b cos(θij)    ∂P/∂θj = −Vi Vj b cos(θij)
	//  ∂P/∂Vi =  Vj b sin(θij)       ∂P/∂Vj =  Vi b sin(θij)
	//  ∂Q/∂θi =  Vi Vj b sin(θij)    ∂Q/∂θj = −Vi Vj b sin(θij)
	//  ∂Q/∂Vi =  2 Vi b − Vj b cos   ∂Q/∂Vj = −Vi b cos(θij)
	// The state vector is [θ reduced (one ref bus dropped) | V (all
	// buses)]: the voltage block starts after the reduced angle block.
	nA := 0
	for _, ai := range angleIdx {
		if ai >= 0 {
			nA++
		}
	}
	addFlow := func(i, j int, b float64, wantP bool, sign float64) {
		d := theta[i-1] - theta[j-1]
		sin, cos := math.Sin(d), math.Cos(d)
		if wantP {
			if ai := angleIdx[i-1]; ai >= 0 {
				row[ai] += sign * v[i-1] * v[j-1] * b * cos
			}
			if aj := angleIdx[j-1]; aj >= 0 {
				row[aj] -= sign * v[i-1] * v[j-1] * b * cos
			}
			row[nA+i-1] += sign * v[j-1] * b * sin
			row[nA+j-1] += sign * v[i-1] * b * sin
			return
		}
		if ai := angleIdx[i-1]; ai >= 0 {
			row[ai] += sign * v[i-1] * v[j-1] * b * sin
		}
		if aj := angleIdx[j-1]; aj >= 0 {
			row[aj] -= sign * v[i-1] * v[j-1] * b * sin
		}
		row[nA+i-1] += sign * (2*v[i-1]*b - v[j-1]*b*cos)
		row[nA+j-1] += sign * (-v[i-1] * b * cos)
	}

	switch m.Kind {
	case ACFlowP, ACFlowQ:
		for _, br := range e.branches() {
			if (br.From == m.From && br.To == m.To) || (br.To == m.From && br.From == m.To) {
				addFlow(m.From, m.To, br.Susceptance, m.Kind == ACFlowP, 1)
				return nil
			}
		}
		return fmt.Errorf("%w: no branch %d-%d", ErrACBadInput, m.From, m.To)
	case ACInjP, ACInjQ:
		for _, br := range e.branches() {
			var other int
			switch m.From {
			case br.From:
				other = br.To
			case br.To:
				other = br.From
			default:
				continue
			}
			addFlow(m.From, other, br.Susceptance, m.Kind == ACInjP, 1)
		}
		return nil
	case ACVoltage:
		row[nA+m.From-1] = 1
		return nil
	}
	return fmt.Errorf("%w: unknown kind %d", ErrACBadInput, int(m.Kind))
}

// EstimateAC runs Gauss-Newton WLS from the flat start and returns the
// estimated state together with the final weighted residual sum.
func (e *ACEstimator) EstimateAC(msrs []ACMeasurement) (ACState, float64, error) {
	n := e.sys.NBuses
	if len(msrs) == 0 {
		return ACState{}, 0, fmt.Errorf("%w: no measurements", ErrACBadInput)
	}
	// State indexing: angles of all buses except ref, then all voltages.
	angleIdx := make([]int, n)
	idx := 0
	for bus := 1; bus <= n; bus++ {
		if bus == e.refBus {
			angleIdx[bus-1] = -1
			continue
		}
		angleIdx[bus-1] = idx
		idx++
	}
	nState := idx + n

	st := e.FlatState()
	weights := make([]float64, len(msrs))
	for i, m := range msrs {
		s := m.Sigma
		if s <= 0 {
			s = 1
		}
		weights[i] = 1 / (s * s)
	}

	for iter := 0; iter < e.MaxIterations; iter++ {
		h := matrix.New(len(msrs), nState)
		residual := make([]float64, len(msrs))
		rowBuf := make([]float64, nState)
		for i, m := range msrs {
			hi, err := e.evalOne(m, st)
			if err != nil {
				return ACState{}, 0, err
			}
			residual[i] = m.Value - hi
			for j := range rowBuf {
				rowBuf[j] = 0
			}
			if err := e.jacobianRow(m, st, rowBuf, angleIdx); err != nil {
				return ACState{}, 0, err
			}
			for j, v := range rowBuf {
				h.Set(i, j, v)
			}
		}
		dx, err := h.SolveLSQ(residual, weights)
		if err != nil {
			return ACState{}, 0, fmt.Errorf("%w: %v", ErrACUnsolvable, err)
		}
		maxStep := 0.0
		for bus := 1; bus <= n; bus++ {
			if ai := angleIdx[bus-1]; ai >= 0 {
				st.Angles[bus-1] += dx[ai]
				maxStep = math.Max(maxStep, math.Abs(dx[ai]))
			}
			st.Voltages[bus-1] += dx[idx+bus-1]
			maxStep = math.Max(maxStep, math.Abs(dx[idx+bus-1]))
		}
		if maxStep < e.Tolerance {
			chi := 0.0
			for i, m := range msrs {
				hi, err := e.evalOne(m, st)
				if err != nil {
					return ACState{}, 0, err
				}
				r := m.Value - hi
				chi += weights[i] * r * r
			}
			return st, chi, nil
		}
	}
	return ACState{}, 0, ErrNotConverged
}
