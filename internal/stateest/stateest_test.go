package stateest

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"scadaver/internal/powergrid"
)

func setupCase5(t *testing.T) (*powergrid.MeasurementSet, *Estimator) {
	t.Helper()
	ms := powergrid.FullMeasurementSet(powergrid.Case5())
	e, err := New(ms, 1)
	if err != nil {
		t.Fatal(err)
	}
	return ms, e
}

func allIdx(ms *powergrid.MeasurementSet) []int {
	out := make([]int, ms.Len())
	for i := range out {
		out[i] = i
	}
	return out
}

func TestNewValidation(t *testing.T) {
	ms := powergrid.FullMeasurementSet(powergrid.Case5())
	if _, err := New(ms, 0); !errors.Is(err, ErrBadInput) {
		t.Fatalf("ref 0: %v", err)
	}
	if _, err := New(ms, 6); !errors.Is(err, ErrBadInput) {
		t.Fatalf("ref 6: %v", err)
	}
}

func TestObservable(t *testing.T) {
	ms, e := setupCase5(t)
	if !e.Observable(allIdx(ms)) {
		t.Fatal("full set must be observable")
	}
	// A single flow measurement cannot observe 4 reduced states.
	if e.Observable([]int{0}) {
		t.Fatal("one measurement cannot observe")
	}
	// Injection at bus 2 (touches everything) plus flows along a
	// spanning structure observes; flows on one line only do not.
	if e.Observable([]int{0, 1}) { // fwd+bwd on same line
		t.Fatal("redundant pair cannot observe")
	}
}

func TestEstimateRecoversTruth(t *testing.T) {
	ms, e := setupCase5(t)
	truth := []float64{0, -0.05, -0.12, -0.10, -0.08}
	sel := allIdx(ms)
	z, err := e.Measure(truth, sel, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Estimate(z, nil, sel)
	if err != nil {
		t.Fatal(err)
	}
	for x := range truth {
		want := truth[x] - truth[0]
		if math.Abs(res.Angles[x]-want) > 1e-9 {
			t.Fatalf("angle %d = %v, want %v", x, res.Angles[x], want)
		}
	}
	if res.ChiSquare > 1e-12 {
		t.Fatalf("noiseless chi-square = %v", res.ChiSquare)
	}
}

func TestEstimateWithNoise(t *testing.T) {
	ms, e := setupCase5(t)
	truth := []float64{0, -0.05, -0.12, -0.10, -0.08}
	sel := allIdx(ms)
	rng := rand.New(rand.NewSource(2))
	sigma := make([]float64, len(sel))
	for i := range sigma {
		sigma[i] = 0.01
	}
	z, err := e.Measure(truth, sel, 0.01, rng)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Estimate(z, sigma, sel)
	if err != nil {
		t.Fatal(err)
	}
	for x := range truth {
		if math.Abs(res.Angles[x]-truth[x]) > 0.01 {
			t.Fatalf("angle %d = %v, want ≈%v", x, res.Angles[x], truth[x])
		}
	}
	// Chi-square should be around m - (n-1) = 19-4 = 15, certainly below
	// a generous 40 threshold.
	if res.ChiSquare > 40 {
		t.Fatalf("chi-square = %v for clean noise", res.ChiSquare)
	}
}

func TestEstimateUnobservable(t *testing.T) {
	_, e := setupCase5(t)
	if _, err := e.Estimate([]float64{1}, nil, []int{0}); !errors.Is(err, ErrUnobservable) {
		t.Fatalf("want ErrUnobservable, got %v", err)
	}
}

func TestEstimateInputErrors(t *testing.T) {
	ms, e := setupCase5(t)
	sel := allIdx(ms)
	if _, err := e.Estimate([]float64{1, 2}, nil, sel); !errors.Is(err, ErrBadInput) {
		t.Fatalf("want ErrBadInput, got %v", err)
	}
	z := make([]float64, len(sel))
	if _, err := e.Estimate(z, []float64{1}, sel); !errors.Is(err, ErrBadInput) {
		t.Fatalf("sigma mismatch: %v", err)
	}
	bad := make([]float64, len(sel))
	if _, err := e.Estimate(z, bad, sel); !errors.Is(err, ErrBadInput) {
		t.Fatalf("zero sigma: %v", err)
	}
	if _, err := e.Measure([]float64{0, 0}, sel, 0, nil); !errors.Is(err, ErrBadInput) {
		t.Fatalf("bad angles: %v", err)
	}
}

func TestChiSquareFlagsInjectedBadData(t *testing.T) {
	ms, e := setupCase5(t)
	truth := []float64{0, -0.05, -0.12, -0.10, -0.08}
	sel := allIdx(ms)
	sigma := make([]float64, len(sel))
	for i := range sigma {
		sigma[i] = 0.01
	}
	z, err := e.Measure(truth, sel, 0.005, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	clean, err := e.Estimate(z, sigma, sel)
	if err != nil {
		t.Fatal(err)
	}
	// Inject gross error into measurement 8 (injection at bus 2).
	z[7] += 5.0
	dirty, err := e.Estimate(z, sigma, sel)
	if err != nil {
		t.Fatal(err)
	}
	if dirty.ChiSquare < 10*clean.ChiSquare {
		t.Fatalf("chi-square barely moved: %v -> %v", clean.ChiSquare, dirty.ChiSquare)
	}
}

func TestDetectBadDataFlagsTheCulprit(t *testing.T) {
	ms, e := setupCase5(t)
	truth := []float64{0, -0.05, -0.12, -0.10, -0.08}
	sel := allIdx(ms)
	sigma := make([]float64, len(sel))
	for i := range sigma {
		sigma[i] = 0.01
	}
	z, err := e.Measure(truth, sel, 0.005, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	z[4] += 3.0 // corrupt measurement index 4 (flow 1→2)
	flagged, err := e.DetectBadData(z, sigma, sel, 40, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(flagged) == 0 {
		t.Fatal("bad data not detected")
	}
	if flagged[0] != 4 {
		t.Fatalf("flagged %v, want measurement 4 first", flagged)
	}
	// After removal the remaining set passes: only one flag.
	if len(flagged) != 1 {
		t.Fatalf("flagged %v, want exactly one", flagged)
	}
}

func TestDetectBadDataCleanPasses(t *testing.T) {
	ms, e := setupCase5(t)
	truth := []float64{0, -0.05, -0.12, -0.10, -0.08}
	sel := allIdx(ms)
	sigma := make([]float64, len(sel))
	for i := range sigma {
		sigma[i] = 0.01
	}
	z, err := e.Measure(truth, sel, 0.005, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	flagged, err := e.DetectBadData(z, sigma, sel, 40, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(flagged) != 0 {
		t.Fatalf("clean data flagged: %v", flagged)
	}
}

// TestCriticalMeasurementUndetectable demonstrates the property the
// paper's r-bad-data detectability captures: with a minimal (just
// observable) measurement set, residuals are structurally zero and bad
// data cannot be detected.
func TestCriticalMeasurementUndetectable(t *testing.T) {
	ms, e := setupCase5(t)
	truth := []float64{0, -0.05, -0.12, -0.10, -0.08}
	// Spanning-tree flows: lines 1-2, 2-3, 2-4, 4-5 (forward indices).
	var sel []int
	want := map[[2]int]bool{{1, 2}: true, {2, 3}: true, {2, 4}: true, {4, 5}: true}
	for i, m := range ms.Msrs {
		if m.Kind == powergrid.FlowForward && want[[2]int{m.From, m.To}] {
			sel = append(sel, i)
		}
	}
	if len(sel) != 4 {
		t.Fatalf("selected %d measurements, want 4", len(sel))
	}
	if !e.Observable(sel) {
		t.Fatal("spanning flows must observe")
	}
	z, err := e.Measure(truth, sel, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	z[2] += 10 // gross corruption
	res, err := e.Estimate(z, nil, sel)
	if err != nil {
		t.Fatal(err)
	}
	// With m = n-1 the fit is exact: residuals are all ~0 and the
	// corruption is silently absorbed into the state estimate.
	if res.ChiSquare > 1e-9 {
		t.Fatalf("chi-square = %v, expected structural zero", res.ChiSquare)
	}
	flagged, err := e.DetectBadData(z, nil, sel, 1e-6, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(flagged) != 0 {
		t.Fatalf("critical bad data should be undetectable, flagged %v", flagged)
	}
}

func TestMeasureShiftInvariance(t *testing.T) {
	ms, e := setupCase5(t)
	sel := allIdx(ms)
	a, err := e.Measure([]float64{0, 1, 2, 3, 4}, sel, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Measure([]float64{10, 11, 12, 13, 14}, sel, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-9 {
			t.Fatalf("measurement %d not shift invariant: %v vs %v", i, a[i], b[i])
		}
	}
}
