package core

import (
	"scadaver/internal/scadanet"
	"scadaver/internal/secpolicy"
)

// This file provides a direct (non-SAT) evaluator of the modeled
// properties under a concrete failure set. It is used to minimize threat
// vectors and serves as a second implementation cross-checked against
// the formal encoding in tests.

// Failures is a concrete contingency: unavailable devices and failed
// links (elements mapped to true are down).
type Failures struct {
	Devices map[scadanet.DeviceID]bool
	Links   map[scadanet.LinkID]bool
}

// DeliveredMeasurements returns the set of 1-based measurement IDs that
// reach the MTU under the device failure set `down` (devices mapped to
// true are unavailable). With secured=true every hop must additionally
// be authenticated and integrity-protected under the analyzer's policy
// (SecuredDelivery); otherwise plain AssuredDelivery is evaluated.
func (a *Analyzer) DeliveredMeasurements(down map[scadanet.DeviceID]bool, secured bool) map[int]bool {
	return a.DeliveredMeasurementsUnder(Failures{Devices: down}, secured)
}

// DeliveredMeasurementsUnder generalizes DeliveredMeasurements to
// contingencies that include link failures.
func (a *Analyzer) DeliveredMeasurementsUnder(f Failures, secured bool) map[int]bool {
	out := make(map[int]bool)
	for _, d := range a.fieldIEDs {
		if !a.delivers(d, f, secured) {
			continue
		}
		for _, z := range a.cfg.Net.MeasurementsOf(d.ID) {
			out[z] = true
		}
	}
	return out
}

func (a *Analyzer) delivers(d *scadanet.Device, f Failures, secured bool) bool {
	if d.Down || f.Devices[d.ID] {
		return false
	}
	for _, path := range a.cfg.Net.Paths(d.ID, a.maxPaths) {
		if a.pathAlive(d.ID, path, f, secured) {
			return true
		}
	}
	return false
}

func (a *Analyzer) pathAlive(from scadanet.DeviceID, path []*scadanet.Link, f Failures, secured bool) bool {
	at := from
	for _, l := range path {
		if l.Down || f.Links[l.ID] {
			return false
		}
		protoOK, cryptoOK := a.cfg.Net.HopPairing(l)
		if !protoOK || !cryptoOK {
			return false
		}
		if secured {
			caps := a.cfg.Net.HopCaps(l, a.policy)
			if !caps.Has(secpolicy.Authenticates | secpolicy.IntegrityProtects) {
				return false
			}
		}
		next := l.Other(at)
		nd := a.cfg.Net.Device(next)
		if nd.FieldDevice() && (nd.Down || f.Devices[next]) {
			return false
		}
		at = next
	}
	return true
}

// EvalObservability evaluates the paper's observability condition under
// a concrete device failure set: the delivered (or securely delivered)
// measurements cover every state, and the number of unique delivered
// measurements (one per UMsrSet_E group) is at least the number of
// states.
func (a *Analyzer) EvalObservability(down map[scadanet.DeviceID]bool, secured bool) bool {
	return a.EvalObservabilityUnder(Failures{Devices: down}, secured)
}

// EvalObservabilityUnder generalizes EvalObservability to contingencies
// that include link failures.
func (a *Analyzer) EvalObservabilityUnder(f Failures, secured bool) bool {
	delivered := a.DeliveredMeasurementsUnder(f, secured)
	n := a.cfg.Msrs.NStates

	covered := make([]bool, n)
	for z := range delivered {
		for _, x := range a.stateSets[z-1] {
			covered[x] = true
		}
	}
	for _, c := range covered {
		if !c {
			return false
		}
	}

	unique := 0
	for _, group := range a.groups {
		for _, z0 := range group {
			if delivered[z0+1] {
				unique++
				break
			}
		}
	}
	return unique >= n
}

// EvalBadDataDetectability evaluates r-bad-data detectability under a
// concrete device failure set: every state must be covered by at least
// r+1 securely delivered measurements (only secured measurements are
// trusted for bad-data detection).
func (a *Analyzer) EvalBadDataDetectability(down map[scadanet.DeviceID]bool, r int) bool {
	return a.EvalBadDataDetectabilityUnder(Failures{Devices: down}, r)
}

// EvalBadDataDetectabilityUnder generalizes EvalBadDataDetectability to
// contingencies that include link failures.
func (a *Analyzer) EvalBadDataDetectabilityUnder(f Failures, r int) bool {
	delivered := a.DeliveredMeasurementsUnder(f, true)
	n := a.cfg.Msrs.NStates
	counts := make([]int, n)
	for z := range delivered {
		for _, x := range a.stateSets[z-1] {
			counts[x]++
		}
	}
	for _, c := range counts {
		if c < r+1 {
			return false
		}
	}
	return true
}
