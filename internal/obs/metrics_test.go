package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func assertFileContains(t *testing.T, path, want string) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), want) {
		t.Fatalf("%s missing %q:\n%s", path, want, data)
	}
}

func TestRegistryCounters(t *testing.T) {
	r := NewRegistry()
	labels := map[string]string{"property": "observability", "status": "unsat"}
	r.Inc("queries_total", labels)
	r.Add("queries_total", labels, 2)
	r.Inc("queries_total", map[string]string{"property": "observability", "status": "sat"})
	if got := r.Counter("queries_total", labels); got != 3 {
		t.Fatalf("counter = %v, want 3", got)
	}
	// Label order must not matter for series identity.
	if got := r.Counter("queries_total", map[string]string{"status": "unsat", "property": "observability"}); got != 3 {
		t.Fatalf("label-order-sensitive series: %v", got)
	}
	if got := r.Counter("missing", nil); got != 0 {
		t.Fatalf("missing series = %v", got)
	}
}

func TestRegistryHistogram(t *testing.T) {
	r := NewRegistry()
	labels := map[string]string{"phase": "solve"}
	r.ObserveDuration("phase_seconds", labels, 2*time.Millisecond)  // le=0.0025
	r.ObserveDuration("phase_seconds", labels, 40*time.Millisecond) // le=0.05
	r.Observe("phase_seconds", labels, 100)                         // +Inf

	snap := r.Snapshot()
	if len(snap.Histograms) != 1 {
		t.Fatalf("histograms = %d, want 1", len(snap.Histograms))
	}
	h := snap.Histograms[0]
	if h.Count != 3 {
		t.Fatalf("count = %d, want 3", h.Count)
	}
	if want := 0.002 + 0.04 + 100; h.Sum < want-1e-9 || h.Sum > want+1e-9 {
		t.Fatalf("sum = %v, want %v", h.Sum, want)
	}
	// Buckets are cumulative and cover only finite bounds.
	if len(h.Buckets) != len(DefBuckets) {
		t.Fatalf("buckets = %d, want %d", len(h.Buckets), len(DefBuckets))
	}
	cum := map[float64]uint64{}
	for _, b := range h.Buckets {
		cum[b.LE] = b.Count
	}
	if cum[0.001] != 0 || cum[0.0025] != 1 || cum[0.05] != 2 || cum[10] != 2 {
		t.Fatalf("cumulative buckets wrong: %+v", h.Buckets)
	}
}

func TestRegistryPrometheusText(t *testing.T) {
	r := NewRegistry()
	r.Add("scadaver_queries_total", map[string]string{"property": "observability", "k": "2"}, 4)
	r.Observe("scadaver_phase_seconds", map[string]string{"phase": "solve"}, 0.002)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE scadaver_queries_total counter",
		`scadaver_queries_total{k="2",property="observability"} 4`,
		"# TYPE scadaver_phase_seconds histogram",
		`scadaver_phase_seconds_bucket{phase="solve",le="0.0025"} 1`,
		`scadaver_phase_seconds_bucket{phase="solve",le="+Inf"} 1`,
		`scadaver_phase_seconds_sum{phase="solve"} 0.002`,
		`scadaver_phase_seconds_count{phase="solve"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestRegistryJSON(t *testing.T) {
	r := NewRegistry()
	r.Inc("a_total", map[string]string{"x": "1"})
	r.Observe("b_seconds", nil, 0.5)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if len(snap.Counters) != 1 || snap.Counters[0].Value != 1 {
		t.Fatalf("counters: %+v", snap.Counters)
	}
	if len(snap.Histograms) != 1 || snap.Histograms[0].Count != 1 {
		t.Fatalf("histograms: %+v", snap.Histograms)
	}
}

// TestRegistryConcurrent hammers one registry from many goroutines; the
// final counts must equal the serial sum (run under -race in CI).
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	const goroutines, per = 16, 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r.Inc("hits_total", map[string]string{"shard": "s"})
				r.Observe("lat_seconds", nil, 0.001)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("hits_total", map[string]string{"shard": "s"}); got != goroutines*per {
		t.Fatalf("counter = %v, want %d", got, goroutines*per)
	}
	snap := r.Snapshot()
	if snap.Histograms[0].Count != goroutines*per {
		t.Fatalf("histogram count = %d, want %d", snap.Histograms[0].Count, goroutines*per)
	}
}

func TestNilRegistryIsNoOp(t *testing.T) {
	var r *Registry
	r.Inc("x", nil)
	r.Add("x", nil, 2)
	r.Observe("y", nil, 1)
	r.ObserveDuration("y", nil, time.Second)
	if got := r.Counter("x", nil); got != 0 {
		t.Fatal("nil registry returned data")
	}
	if snap := r.Snapshot(); len(snap.Counters) != 0 || len(snap.Histograms) != 0 {
		t.Fatal("nil registry snapshot not empty")
	}
}

func TestSetupEndpoints(t *testing.T) {
	dir := t.TempDir()
	traceFile := filepath.Join(dir, "trace.jsonl")
	metricsFile := filepath.Join(dir, "metrics.json")
	root, reg, closeObs, err := Setup("test-run", traceFile, metricsFile, "")
	if err != nil {
		t.Fatal(err)
	}
	if root == nil || reg == nil {
		t.Fatal("enabled endpoints returned nil")
	}
	sp := root.Start("op")
	reg.Inc("ops_total", nil)
	sp.End()
	if err := closeObs(); err != nil {
		t.Fatal(err)
	}

	assertFileContains(t, traceFile, `"name":"test-run"`)
	assertFileContains(t, metricsFile, `"ops_total"`)

	// All endpoints disabled: everything nil, close is a no-op.
	root, reg, closeObs, err = Setup("x", "", "", "")
	if err != nil {
		t.Fatal(err)
	}
	if root != nil || reg != nil {
		t.Fatal("disabled endpoints must be nil")
	}
	if err := closeObs(); err != nil {
		t.Fatal(err)
	}
}

// TestCertifyCountersDeterministicRender populates the certification
// counters the analyzer emits (insertion order deliberately scrambled
// across properties) and asserts both exposition formats are
// deterministic — repeated renders are byte-identical, series come out
// sorted — and that the JSON snapshot carries exactly the values the
// Prometheus text shows, so an attestation dashboard and a scraped
// endpoint can never disagree.
func TestCertifyCountersDeterministicRender(t *testing.T) {
	names := []string{
		"scadaver_certify_checked_total",
		"scadaver_certify_failed_total",
		"scadaver_certify_divergence_total",
		"scadaver_certify_quarantine_total",
	}
	r := NewRegistry()
	// Scrambled insertion: later property first, counters interleaved.
	for i, prop := range []string{"secured-observability", "observability", "bad-data-detectability"} {
		for j, name := range names {
			r.Add(name, map[string]string{"property": prop}, float64(1+i+j))
		}
	}

	render := func() (prom, js string) {
		var pb, jb bytes.Buffer
		if err := r.WritePrometheus(&pb); err != nil {
			t.Fatal(err)
		}
		if err := r.WriteJSON(&jb); err != nil {
			t.Fatal(err)
		}
		return pb.String(), jb.String()
	}
	prom1, js1 := render()
	prom2, js2 := render()
	if prom1 != prom2 {
		t.Fatal("Prometheus rendering is not deterministic across calls")
	}
	if js1 != js2 {
		t.Fatal("JSON rendering is not deterministic across calls")
	}

	var snap Snapshot
	if err := json.Unmarshal([]byte(js1), &snap); err != nil {
		t.Fatal(err)
	}
	if got := len(snap.Counters); got != len(names)*3 {
		t.Fatalf("snapshot has %d counter series, want %d", got, len(names)*3)
	}
	for i := 1; i < len(snap.Counters); i++ {
		a, b := snap.Counters[i-1], snap.Counters[i]
		if a.Name > b.Name || (a.Name == b.Name && a.Labels["property"] > b.Labels["property"]) {
			t.Fatalf("snapshot series out of order: %s%v before %s%v", a.Name, a.Labels, b.Name, b.Labels)
		}
	}
	// Every JSON series must appear verbatim in the Prometheus text with
	// the same value.
	for _, c := range snap.Counters {
		line := fmt.Sprintf("%s{property=%q} %v", c.Name, c.Labels["property"], c.Value)
		if !strings.Contains(prom1, line) {
			t.Fatalf("prometheus output missing %q:\n%s", line, prom1)
		}
	}
}
