package sat

import (
	"fmt"
	"reflect"
	"strconv"
	"time"
)

// Var identifies a propositional variable. Valid variables are created by
// Solver.NewVar and are numbered from 0.
type Var int

// Lit is a literal: a variable or its negation. The encoding is the usual
// one (lit = 2*var, or 2*var+1 for the negation) so that negation is a
// single XOR and literals index arrays directly.
type Lit int

// LitUndef is the sentinel "no literal" value.
const LitUndef Lit = -1

// VarUndef is the sentinel "no variable" value.
const VarUndef Var = -1

// PosLit returns the positive literal of v.
func PosLit(v Var) Lit { return Lit(v << 1) }

// NegLit returns the negative literal of v.
func NegLit(v Var) Lit { return Lit(v<<1) | 1 }

// MkLit returns the literal of v with the given sign (true = negated).
func MkLit(v Var, neg bool) Lit {
	if neg {
		return NegLit(v)
	}
	return PosLit(v)
}

// Var returns the variable underlying l.
func (l Lit) Var() Var { return Var(l >> 1) }

// Neg returns the negation of l.
func (l Lit) Neg() Lit { return l ^ 1 }

// Sign reports whether l is a negated literal.
func (l Lit) Sign() bool { return l&1 == 1 }

// String renders the literal in DIMACS-like form ("3", "-7").
func (l Lit) String() string {
	if l == LitUndef {
		return "undef"
	}
	n := int(l.Var()) + 1
	if l.Sign() {
		n = -n
	}
	return strconv.Itoa(n)
}

// Tribool is a three-valued truth assignment.
type Tribool int8

// The three truth values. Unknown is the zero value so fresh assignment
// arrays start unassigned.
const (
	Unknown Tribool = 0
	True    Tribool = 1
	False   Tribool = -1
)

// Not negates a Tribool (Unknown stays Unknown).
func (t Tribool) Not() Tribool { return -t }

// String implements fmt.Stringer.
func (t Tribool) String() string {
	switch t {
	case True:
		return "true"
	case False:
		return "false"
	default:
		return "unknown"
	}
}

// Status is the result of a Solve call.
type Status int

// Solve outcomes. Unsolved is returned only on budget exhaustion
// (see Solver.SetConflictBudget).
const (
	Unsolved Status = iota
	Sat
	Unsat
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case Sat:
		return "sat"
	case Unsat:
		return "unsat"
	default:
		return "unsolved"
	}
}

// MarshalJSON renders the status as its name.
func (s Status) MarshalJSON() ([]byte, error) {
	return []byte(strconv.Quote(s.String())), nil
}

// UnmarshalJSON parses a status name.
func (s *Status) UnmarshalJSON(data []byte) error {
	name, err := strconv.Unquote(string(data))
	if err != nil {
		return fmt.Errorf("sat: bad status %s: %w", data, err)
	}
	switch name {
	case "sat":
		*s = Sat
	case "unsat":
		*s = Unsat
	case "unsolved":
		*s = Unsolved
	default:
		return fmt.Errorf("sat: unknown status %q", name)
	}
	return nil
}

// clause is the internal clause representation. Learned clauses carry an
// activity and an LBD ("glue") score used by database reduction.
type clause struct {
	lits    []Lit
	act     float64
	lbd     int32
	learned bool
	deleted bool
}

func (c *clause) String() string {
	s := "("
	for i, l := range c.lits {
		if i > 0 {
			s += " "
		}
		s += l.String()
	}
	return s + ")"
}

// watcher pairs a watched clause with a blocker literal: if the blocker is
// already true the clause is satisfied and need not be inspected.
type watcher struct {
	c       *clause
	blocker Lit
}

// Stats aggregates solver counters, exposed for the evaluation harness.
// Counters are cumulative over the solver's lifetime; use Sub to obtain
// the per-solve delta between two snapshots when a solver is reused
// incrementally (k-sweeps, threat enumeration).
type Stats struct {
	Conflicts    uint64
	Decisions    uint64
	Propagations uint64
	Restarts     uint64
	Learned      uint64
	Removed      uint64        // learned clauses deleted by DB reduction
	Reduces      uint64        // learned-DB reduction sweeps (reduceDB calls)
	Solves       uint64        // completed Solve calls
	SolveTime    time.Duration // wall time spent inside Solve
	// Preprocessing counters (Solver.Simplify).
	ElimVars            uint64        // variables removed by bounded variable elimination
	SubsumedClauses     uint64        // clauses deleted by (backward) subsumption
	StrengthenedClauses uint64        // literals removed by self-subsuming resolution
	FailedLits          uint64        // literals fixed by failed-literal probing
	SimplifyTime        time.Duration // wall time spent inside Simplify
	// Portfolio and inprocessing counters (Solver.SolvePortfolio).
	VivifiedClauses uint64 // learned clauses strengthened by vivification
	ImportedClauses uint64 // shared clauses imported from the exchange ring
	ExportedClauses uint64 // learned clauses exported to the exchange ring
	MaxVars         int
	Clauses         int
}

// Progress is the point-in-time search snapshot delivered to the
// progress probe (Solver.SetProgress) every N conflicts. The cumulative
// counters mirror Stats; LearntDB and Level describe the current state
// of the search rather than totals.
type Progress struct {
	Conflicts    uint64
	Decisions    uint64
	Propagations uint64
	Restarts     uint64
	Reduces      uint64
	LearntDB     int // current learned-clause database size
	Level        int // current decision level
}

// EventKind classifies a coarse solver event delivered to the event
// hook (Solver.SetEventHook).
type EventKind uint8

// The event kinds: a search restart and a learned-DB reduction sweep.
const (
	EventRestart EventKind = iota + 1
	EventReduce
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case EventRestart:
		return "restart"
	case EventReduce:
		return "reduce"
	default:
		return "unknown"
	}
}

// Event is a coarse solver event (restart, DB reduction) delivered to
// the event hook with the cumulative counters at the point it fired.
// Unlike the per-N-conflicts Progress probe, events are rare and mark
// qualitative search transitions, which makes them the right grain for
// a bounded flight recorder.
type Event struct {
	Kind         EventKind
	Conflicts    uint64
	Decisions    uint64
	Propagations uint64
	Restarts     uint64
	Reduces      uint64
	LearntDB     int // learned-DB size after the event
}

// Sub returns the counter difference st - prev: the work performed
// between the two snapshots. The absolute instance-size fields (MaxVars,
// Clauses) keep their current values rather than being subtracted.
// Every cumulative counter added to Stats MUST be subtracted here and
// rendered by String — TestStatsCountersComplete enforces this by
// reflection, so per-solve deltas never silently lose a counter.
func (st Stats) Sub(prev Stats) Stats {
	return Stats{
		Conflicts:           st.Conflicts - prev.Conflicts,
		Decisions:           st.Decisions - prev.Decisions,
		Propagations:        st.Propagations - prev.Propagations,
		Restarts:            st.Restarts - prev.Restarts,
		Learned:             st.Learned - prev.Learned,
		Removed:             st.Removed - prev.Removed,
		Reduces:             st.Reduces - prev.Reduces,
		Solves:              st.Solves - prev.Solves,
		SolveTime:           st.SolveTime - prev.SolveTime,
		ElimVars:            st.ElimVars - prev.ElimVars,
		SubsumedClauses:     st.SubsumedClauses - prev.SubsumedClauses,
		StrengthenedClauses: st.StrengthenedClauses - prev.StrengthenedClauses,
		FailedLits:          st.FailedLits - prev.FailedLits,
		SimplifyTime:        st.SimplifyTime - prev.SimplifyTime,
		VivifiedClauses:     st.VivifiedClauses - prev.VivifiedClauses,
		ImportedClauses:     st.ImportedClauses - prev.ImportedClauses,
		ExportedClauses:     st.ExportedClauses - prev.ExportedClauses,
		MaxVars:             st.MaxVars,
		Clauses:             st.Clauses,
	}
}

// add returns the counterwise sum st + d. It folds a portfolio replica's
// statistics (replicas are fresh clones, so their counters are already
// per-race deltas) into the adopting solver's cumulative totals. The
// reflection walk mirrors the completeness contract of Sub: uint64
// counters and durations are summed, while the absolute instance-size
// fields (int kind: MaxVars, Clauses) take the replica's current view.
func (st Stats) add(d Stats) Stats {
	sv := reflect.ValueOf(&st).Elem()
	dv := reflect.ValueOf(d)
	for i := 0; i < sv.NumField(); i++ {
		f := sv.Field(i)
		switch f.Kind() {
		case reflect.Uint64:
			f.SetUint(f.Uint() + dv.Field(i).Uint())
		case reflect.Int64: // time.Duration
			f.SetInt(f.Int() + dv.Field(i).Int())
		case reflect.Int:
			f.SetInt(dv.Field(i).Int())
		}
	}
	return st
}

// String implements fmt.Stringer.
func (st Stats) String() string {
	return fmt.Sprintf(
		"vars=%d clauses=%d conflicts=%d decisions=%d propagations=%d restarts=%d learned=%d removed=%d reduces=%d solves=%d solve_ms=%.2f elim_vars=%d subsumed=%d strengthened=%d failed_lits=%d simplify_ms=%.2f vivified=%d imported=%d exported=%d",
		st.MaxVars, st.Clauses, st.Conflicts, st.Decisions, st.Propagations, st.Restarts, st.Learned, st.Removed,
		st.Reduces, st.Solves, float64(st.SolveTime.Microseconds())/1000,
		st.ElimVars, st.SubsumedClauses, st.StrengthenedClauses, st.FailedLits,
		float64(st.SimplifyTime.Microseconds())/1000,
		st.VivifiedClauses, st.ImportedClauses, st.ExportedClauses)
}
