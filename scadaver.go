// Package scadaver is a formal security and resiliency verifier for
// SCADA systems in smart grids, reproducing "Formal Analysis for
// Dependable Supervisory Control and Data Acquisition in Smart Grids"
// (DSN 2016).
//
// The verifier takes a SCADA configuration — the power-system
// measurement Jacobian, the communication topology of IEDs, RTUs,
// routers and the MTU, per-link protocol and cryptographic profiles —
// plus a resiliency specification, encodes the analysis as a
// constraint-satisfaction problem, and decides it with the built-in
// CDCL SAT engine: a satisfiable query yields a threat vector (a set of
// device failures that breaks the property), an unsatisfiable one
// certifies the specification. Three properties are supported:
// k-resilient observability, k-resilient secured observability, and
// (k,r)-resilient bad-data detectability.
//
// This package is the public facade; it re-exports the library's
// primary API from the internal packages. Typical use:
//
//	cfg, err := scadaver.ParseConfigFile("system.scada")
//	analyzer, err := scadaver.NewAnalyzer(cfg)
//	res, err := analyzer.Verify(scadaver.Query{
//		Property: scadaver.Observability, K1: 1, K2: 1,
//	})
//	if !res.Resilient() {
//		fmt.Println("threat vector:", res.Vector)
//	}
package scadaver

import (
	"io"
	"os"

	"scadaver/internal/core"
	"scadaver/internal/faultinject"
	"scadaver/internal/hardening"
	"scadaver/internal/lint"
	"scadaver/internal/obs"
	"scadaver/internal/powergrid"
	"scadaver/internal/sat"
	"scadaver/internal/scadanet"
	"scadaver/internal/secpolicy"
	"scadaver/internal/synth"
)

// Core verification API.
type (
	// Analyzer verifies resiliency specifications of one configuration.
	Analyzer = core.Analyzer
	// Query selects a property and a failure budget.
	Query = core.Query
	// Result is one verification outcome.
	Result = core.Result
	// ThreatVector is a violating set of device failures.
	ThreatVector = core.ThreatVector
	// Property selects the verified dependability property.
	Property = core.Property
	// Option configures an Analyzer.
	Option = core.Option
	// Runner fans independent verifications across a worker pool; each
	// worker owns a private solver, results come back in input order.
	Runner = core.Runner
	// Sweep reuses one structural encoding across a failure-budget
	// sweep, rebuilding only the cardinality constraint per budget.
	Sweep = core.Sweep
	// SolverStats are per-solve SAT statistics (decisions, conflicts,
	// propagations, learned clauses, solve time).
	SolverStats = sat.Stats
	// SolverProgress is one solver progress report (see WithProgressEvery).
	SolverProgress = sat.Progress
	// PhaseTimes is the per-phase time breakdown of one verification
	// (build / encode / preprocess / solve / decode).
	PhaseTimes = core.PhaseTimes
	// EncodingCache shares content-addressed, pre-encoded (and
	// optionally pre-simplified) solver snapshots across analyzers; see
	// WithEncodingCache.
	EncodingCache = core.EncodingCache
)

// EncodingVersion identifies the structural CNF encoding scheme; cache
// keys and service enumeration checkpoints embed it so artifacts from
// an older encoding are rejected rather than silently reused.
const EncodingVersion = core.EncodingVersion

// Observability: phase tracing and metrics (see internal/obs).
type (
	// Tracer writes hierarchical spans as JSONL records.
	Tracer = obs.Tracer
	// TraceSpan is one span of a trace; nil spans no-op safely.
	TraceSpan = obs.Span
	// TraceAttr is one key/value annotation on a span or event.
	TraceAttr = obs.Attr
	// MetricsRegistry aggregates counters and duration histograms and
	// exports them as Prometheus text or JSON.
	MetricsRegistry = obs.Registry
)

// NewTracer starts a trace writing JSONL records to w.
func NewTracer(w io.Writer) *Tracer { return obs.NewTracer(w) }

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// TraceA builds a span attribute.
func TraceA(key string, value any) TraceAttr { return obs.A(key, value) }

// WithTrace records every verification as a span tree (query →
// build/encode/solve/decode) under the given parent span.
func WithTrace(parent *TraceSpan) Option { return core.WithTrace(parent) }

// WithMetrics records per-query counters and phase-duration histograms
// into the registry; safe to share across Runner workers.
func WithMetrics(m *MetricsRegistry) Option { return core.WithMetrics(m) }

// WithProgressEvery sets the solver progress-probe interval in
// conflicts for traced solves (0 restores the default).
func WithProgressEvery(n uint64) Option { return core.WithProgressEvery(n) }

// The verified properties.
const (
	Observability        = core.Observability
	SecuredObservability = core.SecuredObservability
	BadDataDetectability = core.BadDataDetectability
)

// Configuration model.
type (
	// Config is a complete verifier input.
	Config = scadanet.Config
	// Network is the SCADA communication topology.
	Network = scadanet.Network
	// Device is one SCADA device.
	Device = scadanet.Device
	// DeviceID identifies a device.
	DeviceID = scadanet.DeviceID
	// Link is a communication link.
	Link = scadanet.Link
	// BusSystem is a transmission network.
	BusSystem = powergrid.BusSystem
	// MeasurementSet is the measurement model over a bus system.
	MeasurementSet = powergrid.MeasurementSet
	// SecurityPolicy judges cryptographic profiles.
	SecurityPolicy = secpolicy.Policy
	// SynthParams configures synthetic system generation.
	SynthParams = synth.Params
)

// Device kinds.
const (
	IED    = scadanet.IED
	RTU    = scadanet.RTU
	MTU    = scadanet.MTU
	Router = scadanet.Router
)

// NewAnalyzer builds an analyzer over a validated configuration.
func NewAnalyzer(cfg *Config, opts ...Option) (*Analyzer, error) {
	return core.NewAnalyzer(cfg, opts...)
}

// NewRunner returns a parallel verification pool of the given size;
// workers <= 0 selects runtime.GOMAXPROCS(0). The options are applied
// to every analyzer the runner builds.
func NewRunner(workers int, opts ...Option) *Runner { return core.NewRunner(workers, opts...) }

// WithPolicy overrides the default security policy.
func WithPolicy(p *SecurityPolicy) Option { return core.WithPolicy(p) }

// WithConflictBudget bounds every individual solve to n conflicts;
// exceeding it yields an Unsolved result for that query.
func WithConflictBudget(n uint64) Option { return core.WithConflictBudget(n) }

// WithInterrupt installs a cooperative cancellation hook, polled
// periodically during SAT search; returning true abandons the solve.
func WithInterrupt(f func() bool) Option { return core.WithInterrupt(f) }

// NewEncodingCache returns an empty cross-query encoding cache, safe to
// share across analyzers and goroutines.
func NewEncodingCache() *EncodingCache { return core.NewEncodingCache() }

// WithEncodingCache makes the analyzer clone pre-encoded structural
// snapshots from the shared cache instead of re-encoding per query.
func WithEncodingCache(c *EncodingCache) Option { return core.WithEncodingCache(c) }

// WithPresimplify preprocesses each CNF before search: unit propagation
// to fixpoint, failed-literal probing, subsumption and bounded variable
// elimination. Verdicts are unchanged; searches start smaller.
func WithPresimplify(on bool) Option { return core.WithPresimplify(on) }

// WithPortfolio arms portfolio escalation: a query that survives a
// serial prelude is re-run as a race of n diversified solver replicas
// with clause sharing (n <= 1 keeps solving serial). Unsat and bound
// verdicts match serial solving exactly; a sat witness may be a
// different, equally valid, minimal vector.
func WithPortfolio(n int) Option { return core.WithPortfolio(n) }

// WithPortfolioNoShare disables the learnt-clause exchange between
// portfolio replicas (the benchmark ablation knob).
func WithPortfolioNoShare(v bool) Option { return core.WithPortfolioNoShare(v) }

// DefaultPolicy returns the paper's Section III-D security policy.
func DefaultPolicy() *SecurityPolicy { return secpolicy.Default() }

// NewNetwork returns an empty SCADA network.
func NewNetwork() *Network { return scadanet.NewNetwork() }

// ParseConfig reads a configuration in the .scada text format.
func ParseConfig(r io.Reader) (*Config, error) { return scadanet.ParseConfig(r) }

// ParseConfigFile reads a .scada configuration from a file.
func ParseConfigFile(path string) (*Config, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return scadanet.ParseConfig(f)
}

// WriteConfig serializes a configuration in the .scada text format.
func WriteConfig(w io.Writer, cfg *Config) error { return scadanet.WriteConfig(w, cfg) }

// CaseStudyConfig builds the paper's Section IV 5-bus case study; fig4
// selects the rewired topology variant.
func CaseStudyConfig(fig4 bool) (*Config, error) { return scadanet.CaseStudyConfig(fig4) }

// BusSystemByName returns an embedded test system: "ieee14", "ieee30",
// "ieee57", "ieee118", or "case5".
func BusSystemByName(name string) (*BusSystem, error) { return powergrid.ByName(name) }

// FullMeasurementSet builds the maximum measurement set of a bus system.
func FullMeasurementSet(sys *BusSystem) *MeasurementSet {
	return powergrid.FullMeasurementSet(sys)
}

// GenerateSCADA builds a synthetic SCADA configuration per the paper's
// evaluation methodology.
func GenerateSCADA(p SynthParams) (*Config, error) { return synth.Generate(p) }

// Hardening synthesis (the paper's future-work direction).
type (
	// HardeningPlan is a synthesized remediation sequence.
	HardeningPlan = hardening.Plan
	// HardeningAction is one remediation step.
	HardeningAction = hardening.Action
	// HardeningOptions tunes the planner.
	HardeningOptions = hardening.Options
)

// Harden synthesizes configuration changes (security-profile upgrades,
// redundant links) that make cfg satisfy the query. The input is not
// modified; the hardened copy is in the returned plan.
func Harden(cfg *Config, q Query, opt HardeningOptions) (*HardeningPlan, error) {
	return hardening.Synthesize(cfg, q, opt)
}

// Misconfiguration linting.
type (
	// LintReport is the result of a configuration lint.
	LintReport = lint.Report
	// LintFinding is one diagnostic.
	LintFinding = lint.Finding
)

// Lint statically checks a configuration for the misconfiguration
// classes the paper identifies (protocol/crypto inconsistencies,
// unreachable devices, missing redundancy). nil policy uses the default.
func Lint(cfg *Config, policy *SecurityPolicy) *LintReport {
	return lint.Check(cfg, policy)
}

// Failures is a concrete contingency for direct evaluation.
type Failures = core.Failures

// Fault tolerance: per-query budgets, partial-results campaigns, panic
// isolation, checkpoint/resume, and deterministic fault injection (see
// DESIGN.md §9).
type (
	// QueryBudget bounds one verification by wall-clock deadline and
	// conflict count, with optional retries under escalating budgets;
	// exhaustion degrades the query to an Unsolved result.
	QueryBudget = core.QueryBudget
	// Outcome pairs a query's result with its isolated error in
	// collect-mode campaigns.
	Outcome = core.Outcome
	// PanicError wraps a panic recovered from a campaign worker,
	// carrying the task index and the worker's stack trace.
	PanicError = core.PanicError
	// Checkpoint is a resumable JSONL campaign journal with atomic
	// flushes and a campaign fingerprint in its header.
	Checkpoint = core.Checkpoint
	// FaultPlan is a deterministic fault-injection plan for
	// chaos-testing campaigns (nil injects nothing).
	FaultPlan = faultinject.Faults
)

// Failure reasons reported on unsolved results.
const (
	ReasonDeadline    = core.ReasonDeadline
	ReasonConflicts   = core.ReasonConflicts
	ReasonInterrupted = core.ReasonInterrupted
)

// Checkpoint kinds.
const (
	CheckpointKindCampaign  = core.CheckpointKindCampaign
	CheckpointKindEnumerate = core.CheckpointKindEnumerate
)

// ErrCheckpointMismatch reports a checkpoint written by a different
// campaign (schema, kind, or fingerprint differs).
var ErrCheckpointMismatch = core.ErrCheckpointMismatch

// ErrBadBudget reports a nonsensical query budget (negative deadline,
// retry count, or escalation factor), rejected at analyzer construction.
var ErrBadBudget = core.ErrBadBudget

// WithBudget bounds every query of the analyzer by the given budget.
func WithBudget(b QueryBudget) Option { return core.WithBudget(b) }

// WithFaults threads a deterministic fault-injection plan through the
// analyzer's solver and campaign hooks; nil is a no-op.
func WithFaults(f *FaultPlan) Option { return core.WithFaults(f) }

// NewFaultPlan returns an empty fault-injection plan derived from seed;
// arm individual faults with its chainable setters.
func NewFaultPlan(seed int64) *FaultPlan { return faultinject.New(seed) }

// OpenCheckpoint opens (or creates) a resumable campaign checkpoint,
// rejecting files whose header does not match kind and fingerprint.
func OpenCheckpoint(path, kind, fingerprint string) (*Checkpoint, error) {
	return core.OpenCheckpoint(path, kind, fingerprint)
}

// CampaignFingerprint derives the checkpoint fingerprint of a campaign
// from its configuration, checkpoint kind, and any extra JSON-encodable
// campaign parameters (for example the query list).
func CampaignFingerprint(cfg *Config, kind string, extra ...any) (string, error) {
	return core.CampaignFingerprint(cfg, kind, extra...)
}
