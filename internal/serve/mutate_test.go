package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"scadaver/internal/core"
	"scadaver/internal/obs"
	"scadaver/internal/scadanet"
)

func patchJSON(t testing.TB, url string, body any) *http.Response {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPatch, url, bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestPatchConfigReverifiesAndPublishes exercises the whole PATCH
// pipeline: the delta applies, the delta-aware cache evolves instead of
// cold re-encoding (DeltaReuse > 0), the verdicts match an independent
// cold analysis of the mutated configuration, and later requests verify
// against the published new version.
func TestPatchConfigReverifiesAndPublishes(t *testing.T) {
	_, ts := newTestServer(t, nil)
	cfg := testConfig(t) // same deterministic synth config the server serves as "grid"
	victim := cfg.Net.Links()[0].ID

	// Warm the cache so the mutation has a lineage to evolve.
	warm := postJSON(t, ts.URL+"/v1/verify", VerifyRequest{
		Config: "grid",
		Query:  core.Query{Property: core.Observability, Combined: true, K: 1},
	})
	io.Copy(io.Discard, warm.Body) //nolint:errcheck
	warm.Body.Close()

	resp := patchJSON(t, ts.URL+"/v1/configs/grid", PatchRequest{
		Delta: fmt.Sprintf("link-remove %d", victim),
		K:     1,
	})
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("PATCH status = %d, body %s", resp.StatusCode, body)
	}
	ev := decodeBody[MutationEvent](t, resp)
	if ev.Version != 2 {
		t.Fatalf("published version = %d, want 2", ev.Version)
	}
	if len(ev.Verdicts) != 3 {
		t.Fatalf("got %d verdicts, want 3", len(ev.Verdicts))
	}
	if ev.Mutation.DeltaReuse == 0 {
		t.Fatalf("mutation reused no groups: %+v", ev.Mutation)
	}
	if len(ev.Dirty.Links) != 1 || ev.Dirty.Links[0] != victim {
		t.Fatalf("dirty cone = %+v, want link %d", ev.Dirty, victim)
	}

	// Cold re-analysis of the same mutated configuration must agree.
	mutated, _, err := cfg.Apply(scadanet.Delta{Ops: []scadanet.Op{
		{Kind: scadanet.OpLinkRemove, Link: victim},
	}})
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.NewAnalyzer(mutated)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range ev.Verdicts {
		want, err := a.Verify(v.Query)
		if err != nil {
			t.Fatal(err)
		}
		if v.Status != want.Status || v.Resilient != want.Resilient() {
			t.Fatalf("%s: served verdict (%v, resilient=%v) != cold verdict (%v, resilient=%v)",
				v.Property, v.Status, v.Resilient, want.Status, want.Resilient())
		}
	}

	// The new version is live: a plain verify now sees the mutated grid.
	q := core.Query{Property: core.Observability, Combined: true, K: 1}
	after := postJSON(t, ts.URL+"/v1/verify", VerifyRequest{Config: "grid", Query: q})
	if after.StatusCode != http.StatusOK {
		t.Fatalf("verify after PATCH: status %d", after.StatusCode)
	}
	got := decodeBody[VerifyResponse](t, after)
	want, err := a.Verify(q)
	if err != nil {
		t.Fatal(err)
	}
	if got.Result.Status != want.Status || got.Resilient != want.Resilient() {
		t.Fatalf("post-PATCH verify (%v, resilient=%v) != mutated-config verdict (%v, resilient=%v)",
			got.Result.Status, got.Resilient, want.Status, want.Resilient())
	}
}

// TestPatchInvalidDeltaKeepsPriorVersion drives the delta analogs of
// the testdata/configs/bad corpus through PATCH: every defect class
// must yield 422 with the loader's sentinel wrapped in the body, and
// the prior configuration version must stay live throughout.
func TestPatchInvalidDeltaKeepsPriorVersion(t *testing.T) {
	_, ts := newTestServer(t, nil)
	realLink := testConfig(t).Net.Links()[0].ID
	cases := []struct {
		name string
		req  PatchRequest
		want string // sentinel text expected in the error body
	}{
		{
			// dangling-link.scada analog: an op naming a device the
			// configuration does not have.
			name: "unknown device",
			req:  PatchRequest{Ops: []scadanet.Op{{Kind: scadanet.OpDeviceDown, Device: 9999}}},
			want: "unknown device",
		},
		{
			name: "unknown link",
			req:  PatchRequest{Ops: []scadanet.Op{{Kind: scadanet.OpLinkRemove, Link: 9999}}},
			want: "unknown link",
		},
		{
			// nan-key-bits.scada analog: a rotation to a nonsensical key
			// length.
			name: "bad key bits",
			req:  PatchRequest{Ops: []scadanet.Op{{Kind: scadanet.OpKeyRotate, Link: realLink, KeyBits: -5}}},
			want: "bad mutation delta",
		},
		{
			name: "empty delta",
			req:  PatchRequest{},
			want: "empty delta",
		},
		{
			name: "unparseable textual delta",
			req:  PatchRequest{Delta: "key-rotate 0 nan"},
			want: "bad mutation delta",
		},
	}
	for _, tc := range cases {
		resp := patchJSON(t, ts.URL+"/v1/configs/grid", tc.req)
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusUnprocessableEntity {
			t.Fatalf("%s: status = %d, want 422 (body %s)", tc.name, resp.StatusCode, body)
		}
		if !strings.Contains(string(body), tc.want) {
			t.Fatalf("%s: body %q does not wrap sentinel %q", tc.name, body, tc.want)
		}
	}

	// No version was published: the subscribe greeting still reports the
	// boot version, and the original configuration still verifies.
	resp, err := http.Get(ts.URL + "/v1/subscribe?config=grid")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var hello MutationEvent
	if err := json.NewDecoder(bufio.NewReader(resp.Body)).Decode(&hello); err != nil {
		t.Fatal(err)
	}
	if hello.Version != 1 {
		t.Fatalf("after invalid PATCHes version = %d, want 1 (prior version must stay live)", hello.Version)
	}
	verify := postJSON(t, ts.URL+"/v1/verify", VerifyRequest{
		Config: "grid",
		Query:  core.Query{Property: core.Observability, Combined: true, K: 0},
	})
	defer verify.Body.Close()
	if verify.StatusCode != http.StatusOK {
		t.Fatalf("verify after invalid PATCHes: status %d", verify.StatusCode)
	}

	// PATCH against a config that does not exist is 404, not 422.
	missing := patchJSON(t, ts.URL+"/v1/configs/nope", cases[0].req)
	io.Copy(io.Discard, missing.Body) //nolint:errcheck
	missing.Body.Close()
	if missing.StatusCode != http.StatusNotFound {
		t.Fatalf("PATCH unknown config: status = %d, want 404", missing.StatusCode)
	}
}

// TestSubscribeStreamsMutationEvents opens a watcher, mutates the
// configuration, and asserts the re-verification verdicts arrive on the
// stream as JSONL.
func TestSubscribeStreamsMutationEvents(t *testing.T) {
	_, ts := newTestServer(t, nil)

	resp, err := http.Get(ts.URL + "/v1/subscribe?config=grid")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("subscribe status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("subscribe Content-Type = %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	if !sc.Scan() {
		t.Fatalf("no greeting line: %v", sc.Err())
	}
	var hello MutationEvent
	if err := json.Unmarshal(sc.Bytes(), &hello); err != nil {
		t.Fatal(err)
	}
	if hello.Config != "grid" || hello.Version != 1 {
		t.Fatalf("greeting = %+v, want grid v1", hello)
	}

	victim := testConfig(t).Net.Links()[0].ID
	patch := patchJSON(t, ts.URL+"/v1/configs/grid", PatchRequest{
		Delta: fmt.Sprintf("link-remove %d", victim),
	})
	io.Copy(io.Discard, patch.Body) //nolint:errcheck
	patch.Body.Close()
	if patch.StatusCode != http.StatusOK {
		t.Fatalf("PATCH status = %d", patch.StatusCode)
	}

	if !sc.Scan() {
		t.Fatalf("no mutation event after PATCH: %v", sc.Err())
	}
	var ev MutationEvent
	if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
		t.Fatal(err)
	}
	if ev.Version != 2 || len(ev.Verdicts) != 3 || ev.Delta == "" {
		t.Fatalf("streamed event = %+v, want v2 with 3 verdicts and a delta", ev)
	}

	// Unknown config: 404 before any stream is committed.
	bad, err := http.Get(ts.URL + "/v1/subscribe?config=nope")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, bad.Body) //nolint:errcheck
	bad.Body.Close()
	if bad.StatusCode != http.StatusNotFound {
		t.Fatalf("subscribe unknown config: status = %d, want 404", bad.StatusCode)
	}
}

// TestSubscribeCapSheds asserts the per-config subscriber bound: one
// watcher fits, the second is shed with 503 and a Retry-After hint.
func TestSubscribeCapSheds(t *testing.T) {
	_, ts := newTestServer(t, func(o *Options) { o.MaxSubscribers = 1 })

	first, err := http.Get(ts.URL + "/v1/subscribe?config=grid")
	if err != nil {
		t.Fatal(err)
	}
	defer first.Body.Close()
	// Read the greeting so the subscription is fully established.
	if !bufio.NewScanner(first.Body).Scan() {
		t.Fatal("no greeting on first subscriber")
	}

	second, err := http.Get(ts.URL + "/v1/subscribe?config=grid")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, second.Body) //nolint:errcheck
	second.Body.Close()
	if second.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("second subscriber: status = %d, want 503", second.StatusCode)
	}
	if second.Header.Get("Retry-After") == "" {
		t.Fatal("shed subscriber carries no Retry-After hint")
	}
}

// TestMutationHubDropOldest exercises the bounded fan-out directly: a
// subscriber that never reads keeps only the newest subscriberBuffer
// events, the oldest are dropped and counted, and publishing never
// blocks.
func TestMutationHubDropOldest(t *testing.T) {
	reg := obs.NewRegistry()
	h := newMutationHub("grid", 4, reg)
	_, ch, err := h.subscribe()
	if err != nil {
		t.Fatal(err)
	}
	const published = subscriberBuffer + 5
	for i := 1; i <= published; i++ {
		h.publish(MutationEvent{Config: "grid", Version: i})
	}
	if got := len(ch); got != subscriberBuffer {
		t.Fatalf("backlog = %d, want %d", got, subscriberBuffer)
	}
	dropped := reg.Counter("scadaver_subscribe_dropped_total", map[string]string{"config": "grid"})
	if dropped != float64(published-subscriberBuffer) {
		t.Fatalf("dropped counter = %v, want %d", dropped, published-subscriberBuffer)
	}
	// The survivors are the newest events, in order.
	first := <-ch
	if first.Version != published-subscriberBuffer+1 {
		t.Fatalf("oldest surviving event = v%d, want v%d (drop-oldest)", first.Version, published-subscriberBuffer+1)
	}
}
