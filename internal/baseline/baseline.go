// Package baseline provides an independent, enumeration-based
// implementation of the paper's resiliency checks, used to
// cross-validate the SAT-based verifier and as the comparison point in
// the benchmark harness. Where the verifier encodes delivery as a
// disjunction over enumerated paths, this package decides reachability
// by breadth-first search over the surviving topology, and decides
// k-resiliency by exhaustively enumerating failure combinations.
package baseline

import (
	"math"

	"scadaver/internal/scadanet"
	"scadaver/internal/secpolicy"
)

// Checker evaluates properties of one configuration under concrete
// failure sets.
type Checker struct {
	cfg    *scadanet.Config
	policy *secpolicy.Policy

	stateSets [][]int
	groups    [][]int
}

// New builds a checker with the given policy (nil = default policy).
func New(cfg *scadanet.Config, policy *secpolicy.Policy) *Checker {
	if policy == nil {
		policy = secpolicy.Default()
	}
	return &Checker{
		cfg:       cfg,
		policy:    policy,
		stateSets: cfg.Msrs.StateSets(),
		groups:    cfg.Msrs.UniqueGroups(),
	}
}

// reaches decides, by BFS over alive devices and usable links, whether
// the IED can reach the MTU. A link is usable when it is up, both
// pairings hold, and (for secured delivery) its hop capabilities include
// authentication and integrity protection.
func (c *Checker) reaches(ied scadanet.DeviceID, down map[scadanet.DeviceID]bool, secured bool) bool {
	start := c.cfg.Net.Device(ied)
	if start == nil || start.Down || down[ied] {
		return false
	}
	mtu := c.cfg.Net.MTUID()
	adj := map[scadanet.DeviceID][]*scadanet.Link{}
	for _, l := range c.cfg.Net.Links() {
		adj[l.A] = append(adj[l.A], l)
		adj[l.B] = append(adj[l.B], l)
	}
	visited := map[scadanet.DeviceID]bool{ied: true}
	queue := []scadanet.DeviceID{ied}
	for len(queue) > 0 {
		at := queue[0]
		queue = queue[1:]
		if at == mtu {
			return true
		}
		for _, l := range adj[at] {
			if l.Down {
				continue
			}
			protoOK, cryptoOK := c.cfg.Net.HopPairing(l)
			if !protoOK || !cryptoOK {
				continue
			}
			if secured {
				caps := c.cfg.Net.HopCaps(l, c.policy)
				if !caps.Has(secpolicy.Authenticates | secpolicy.IntegrityProtects) {
					continue
				}
			}
			next := l.Other(at)
			if visited[next] {
				continue
			}
			nd := c.cfg.Net.Device(next)
			// Forwarding goes through RTUs and routers only.
			if next != mtu && nd.Kind != scadanet.RTU && nd.Kind != scadanet.Router {
				continue
			}
			if nd.FieldDevice() && (nd.Down || down[next]) {
				continue
			}
			visited[next] = true
			queue = append(queue, next)
		}
	}
	return false
}

// Delivered returns the 1-based measurement IDs that reach the MTU under
// the failure set.
func (c *Checker) Delivered(down map[scadanet.DeviceID]bool, secured bool) map[int]bool {
	out := map[int]bool{}
	for _, d := range c.cfg.Net.DevicesOfKind(scadanet.IED) {
		if !c.reaches(d.ID, down, secured) {
			continue
		}
		for _, z := range c.cfg.Net.MeasurementsOf(d.ID) {
			out[z] = true
		}
	}
	return out
}

// Observable evaluates the paper's observability condition under the
// failure set.
func (c *Checker) Observable(down map[scadanet.DeviceID]bool, secured bool) bool {
	delivered := c.Delivered(down, secured)
	n := c.cfg.Msrs.NStates
	covered := make([]bool, n)
	for z := range delivered {
		for _, x := range c.stateSets[z-1] {
			covered[x] = true
		}
	}
	for _, ok := range covered {
		if !ok {
			return false
		}
	}
	unique := 0
	for _, g := range c.groups {
		for _, z0 := range g {
			if delivered[z0+1] {
				unique++
				break
			}
		}
	}
	return unique >= n
}

// BadDataDetectable evaluates r-bad-data detectability (every state
// covered by at least r+1 secured measurements).
func (c *Checker) BadDataDetectable(down map[scadanet.DeviceID]bool, r int) bool {
	delivered := c.Delivered(down, true)
	counts := make([]int, c.cfg.Msrs.NStates)
	for z := range delivered {
		for _, x := range c.stateSets[z-1] {
			counts[x]++
		}
	}
	for _, cnt := range counts {
		if cnt < r+1 {
			return false
		}
	}
	return true
}

// PropertyFn is a property evaluated under a failure set; it returns
// true when the property holds.
type PropertyFn func(down map[scadanet.DeviceID]bool) bool

// FindViolation exhaustively enumerates failure sets with at most k1
// failed IEDs and k2 failed RTUs and returns the first set violating the
// property (nil if the property is (k1,k2)-resilient). The search
// examines smaller failure sets first, so the returned violation is of
// minimal size. Cost is combinatorial; intended for small systems and
// cross-validation.
func (c *Checker) FindViolation(k1, k2 int, holds PropertyFn) []scadanet.DeviceID {
	ieds := deviceIDs(c.cfg.Net.DevicesOfKind(scadanet.IED))
	rtus := deviceIDs(c.cfg.Net.DevicesOfKind(scadanet.RTU))
	if k1 > len(ieds) {
		k1 = len(ieds)
	}
	if k2 > len(rtus) {
		k2 = len(rtus)
	}
	for size := 0; size <= k1+k2; size++ {
		for n1 := 0; n1 <= minInt(size, k1); n1++ {
			n2 := size - n1
			if n2 > k2 {
				continue
			}
			if v, ok := c.searchCombos(ieds, rtus, n1, n2, holds); ok {
				return v
			}
		}
	}
	return nil
}

// searchCombos returns (violating set, true) when some combination of
// exactly n1 IEDs and n2 RTUs violates the property; the set is empty —
// but ok is still true — for a zero-failure violation.
func (c *Checker) searchCombos(ieds, rtus []scadanet.DeviceID, n1, n2 int, holds PropertyFn) ([]scadanet.DeviceID, bool) {
	found := []scadanet.DeviceID{}
	down := map[scadanet.DeviceID]bool{}
	var chooseRTU func(start, left int) bool
	var chooseIED func(start, left int) bool
	chooseRTU = func(start, left int) bool {
		if left == 0 {
			if !holds(down) {
				for id, d := range down {
					if d {
						found = append(found, id)
					}
				}
				return true
			}
			return false
		}
		for i := start; i <= len(rtus)-left; i++ {
			down[rtus[i]] = true
			if chooseRTU(i+1, left-1) {
				return true
			}
			delete(down, rtus[i])
		}
		return false
	}
	chooseIED = func(start, left int) bool {
		if left == 0 {
			return chooseRTU(0, n2)
		}
		for i := start; i <= len(ieds)-left; i++ {
			down[ieds[i]] = true
			if chooseIED(i+1, left-1) {
				return true
			}
			delete(down, ieds[i])
		}
		return false
	}
	if chooseIED(0, n1) {
		return found, true
	}
	return nil, false
}

// MaxResiliency computes, by exhaustive enumeration, the maximum k with
// no violating failure set of ≤k devices of the varied class.
func (c *Checker) MaxResiliency(secured bool, varyIEDs bool) int {
	holds := func(down map[scadanet.DeviceID]bool) bool { return c.Observable(down, secured) }
	limit := len(c.cfg.Net.DevicesOfKind(scadanet.IED))
	if !varyIEDs {
		limit = len(c.cfg.Net.DevicesOfKind(scadanet.RTU))
	}
	maxK := -1
	for k := 0; k <= limit; k++ {
		k1, k2 := k, 0
		if !varyIEDs {
			k1, k2 = 0, k
		}
		if c.FindViolation(k1, k2, holds) != nil {
			break
		}
		maxK = k
	}
	return maxK
}

// SearchSpace returns the number of failure combinations FindViolation
// would enumerate for (k1,k2) — the brute-force cost the SAT approach
// avoids.
func (c *Checker) SearchSpace(k1, k2 int) float64 {
	nI := len(c.cfg.Net.DevicesOfKind(scadanet.IED))
	nR := len(c.cfg.Net.DevicesOfKind(scadanet.RTU))
	total := 0.0
	for a := 0; a <= k1 && a <= nI; a++ {
		for b := 0; b <= k2 && b <= nR; b++ {
			total += binom(nI, a) * binom(nR, b)
		}
	}
	return total
}

func binom(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	out := 1.0
	for i := 0; i < k; i++ {
		out = out * float64(n-i) / float64(i+1)
	}
	return math.Round(out)
}

func deviceIDs(devs []*scadanet.Device) []scadanet.DeviceID {
	out := make([]scadanet.DeviceID, len(devs))
	for i, d := range devs {
		out[i] = d.ID
	}
	return out
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
