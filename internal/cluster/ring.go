package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
	"sync"
)

// Ring is a consistent-hash ring with virtual nodes. Each member is
// hashed onto the ring at vnodes points; a key is owned by the first
// member point at or after the key's hash. Membership changes move only
// the keys adjacent to the changed member's points — on average 1/n of
// the keyspace — which is what makes failover cheap: a dying member's
// campaigns land on its ring successors and everyone else's routing is
// untouched.
type Ring struct {
	mu      sync.RWMutex
	vnodes  int
	points  []ringPoint // sorted by hash
	members map[string]bool
}

type ringPoint struct {
	hash   uint64
	member string
}

// NewRing returns an empty ring placing each member at vnodes points
// (default 64; higher smooths the load split at the cost of a larger
// sorted index).
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = 64
	}
	return &Ring{vnodes: vnodes, members: map[string]bool{}}
}

// ringHash is the ring's point function. sha256 rather than a cheap
// mixer: placement happens once per membership change, and an even
// split matters more than hashing speed.
func ringHash(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// Add places a member on the ring; it reports false if the member was
// already present.
func (r *Ring) Add(member string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.members[member] {
		return false
	}
	r.members[member] = true
	for i := 0; i < r.vnodes; i++ {
		var buf [8]byte
		binary.BigEndian.PutUint64(buf[:], uint64(i))
		r.points = append(r.points, ringPoint{
			hash:   ringHash(member + "#" + string(buf[:])),
			member: member,
		})
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
	return true
}

// Remove takes a member off the ring; it reports false if the member
// was not present.
func (r *Ring) Remove(member string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.members[member] {
		return false
	}
	delete(r.members, member)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.member != member {
			kept = append(kept, p)
		}
	}
	r.points = kept
	return true
}

// Size returns the member count.
func (r *Ring) Size() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.members)
}

// Members returns the membership in sorted order.
func (r *Ring) Members() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.members))
	for m := range r.members {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// Owner returns the member owning key, or "" on an empty ring.
func (r *Ring) Owner(key string) string {
	owners := r.Owners(key, 1)
	if len(owners) == 0 {
		return ""
	}
	return owners[0]
}

// Owners walks the ring clockwise from the key's hash and returns up to
// n distinct members in replica order: the first is the key's owner,
// the rest are its failover successors. The order is deterministic for
// a given membership, so every coordinator decision — and every retry —
// agrees on where a campaign lives and where it fails over to.
func (r *Ring) Owners(key string, n int) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.members) {
		n = len(r.members)
	}
	h := ringHash(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if seen[p.member] {
			continue
		}
		seen[p.member] = true
		out = append(out, p.member)
	}
	return out
}
