package core

import (
	"testing"

	"scadaver/internal/sat"
	"scadaver/internal/scadanet"
)

// TestLinkBudgetTiny: on the 1-IED chain, a single link failure breaks
// observability exactly like a device failure.
func TestLinkBudgetTiny(t *testing.T) {
	a, err := NewAnalyzer(tinyConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	// No device failures allowed, but one link may fail.
	res, err := a.Verify(Query{Property: Observability, K1: 0, K2: 0, KL: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Resilient() {
		t.Fatalf("link failure must break the chain: %v", res)
	}
	if len(res.Vector.Links) != 1 || res.Vector.Size() != 1 {
		t.Fatalf("vector = %v, want a single link", res.Vector)
	}
	// KL=0 keeps links reliable: resilient at (0,0).
	res, err = a.Verify(Query{Property: Observability, K1: 0, K2: 0, KL: 0})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Resilient() {
		t.Fatalf("(0,0,KL=0) must hold: %v", res)
	}
}

// TestLinkBudgetCaseStudy cross-validates the SAT verdict under a link
// budget against exhaustive direct evaluation of all single- and
// double-link failures.
func TestLinkBudgetCaseStudy(t *testing.T) {
	cfg, err := scadanet.CaseStudyConfig(false)
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewAnalyzer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	links := cfg.Net.Links()

	bruteLinkViolation := func(kl int, secured bool) bool {
		var rec func(start, left int, f Failures) bool
		rec = func(start, left int, f Failures) bool {
			if !a.EvalObservabilityUnder(f, secured) {
				return true
			}
			if left == 0 {
				return false
			}
			for i := start; i < len(links); i++ {
				f.Links[links[i].ID] = true
				if rec(i+1, left-1, f) {
					return true
				}
				delete(f.Links, links[i].ID)
			}
			return false
		}
		return rec(0, kl, Failures{Devices: map[scadanet.DeviceID]bool{}, Links: map[scadanet.LinkID]bool{}})
	}

	for kl := 0; kl <= 2; kl++ {
		for _, secured := range []bool{false, true} {
			prop := Observability
			if secured {
				prop = SecuredObservability
			}
			res, err := a.Verify(Query{Property: prop, K1: 0, K2: 0, KL: kl})
			if err != nil {
				t.Fatal(err)
			}
			want := bruteLinkViolation(kl, secured)
			if (res.Status == sat.Sat) != want {
				t.Fatalf("secured=%v KL=%d: sat=%v brute=%v", secured, kl, res.Status, want)
			}
			if res.Status == sat.Sat {
				// The reported vector must be links only and actually
				// violate the property.
				if len(res.Vector.Devices()) != 0 {
					t.Fatalf("device failures with zero device budget: %v", res.Vector)
				}
				f := Failures{Devices: map[scadanet.DeviceID]bool{}, Links: map[scadanet.LinkID]bool{}}
				for _, id := range res.Vector.Links {
					f.Links[id] = true
				}
				if a.EvalObservabilityUnder(f, secured) {
					t.Fatalf("vector %v does not violate", res.Vector)
				}
			}
		}
	}
}

// TestLinkBudgetEnumeration enumerates mixed device+link vectors.
func TestLinkBudgetEnumeration(t *testing.T) {
	cfg, err := scadanet.CaseStudyConfig(false)
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewAnalyzer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	q := Query{Property: SecuredObservability, K1: 1, K2: 0, KL: 1}
	vectors, err := a.EnumerateThreats(q, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(vectors) == 0 {
		t.Fatal("expected mixed threat vectors")
	}
	sawLink := false
	for _, v := range vectors {
		if len(v.Links) > 1 || len(v.IEDs) > 1 || len(v.RTUs) > 0 {
			t.Fatalf("vector out of budget: %v", v)
		}
		if len(v.Links) > 0 {
			sawLink = true
		}
		f := Failures{Devices: map[scadanet.DeviceID]bool{}, Links: map[scadanet.LinkID]bool{}}
		for _, id := range v.Devices() {
			f.Devices[id] = true
		}
		for _, id := range v.Links {
			f.Links[id] = true
		}
		if a.EvalObservabilityUnder(f, true) {
			t.Fatalf("vector %v does not violate secured observability", v)
		}
	}
	if !sawLink {
		t.Fatal("no vector involved a link failure")
	}
}

// TestLinkBudgetValidation rejects negative KL.
func TestLinkBudgetValidation(t *testing.T) {
	a, err := NewAnalyzer(tinyConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Verify(Query{Property: Observability, KL: -1}); err == nil {
		t.Fatal("negative KL must be rejected")
	}
}

// TestSecuredModelIsLarger checks the paper's Fig. 5(b) observation:
// the secured-observability model has more variables than the plain
// observability model on the same configuration.
func TestSecuredModelIsLarger(t *testing.T) {
	cfg, err := scadanet.CaseStudyConfig(false)
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewAnalyzer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := a.Verify(Query{Property: Observability, K1: 1, K2: 1})
	if err != nil {
		t.Fatal(err)
	}
	secured, err := a.Verify(Query{Property: SecuredObservability, K1: 1, K2: 1})
	if err != nil {
		t.Fatal(err)
	}
	if secured.Stats.MaxVars <= plain.Stats.MaxVars {
		t.Fatalf("secured model (%d vars) not larger than plain (%d vars)",
			secured.Stats.MaxVars, plain.Stats.MaxVars)
	}
}
