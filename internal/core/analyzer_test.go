package core

import (
	"errors"
	"strings"
	"testing"

	"scadaver/internal/scadanet"
	"scadaver/internal/secpolicy"
)

// tinyConfig builds a 1-state system: IED 1 → RTU 2 → MTU 3, one
// measurement.
func tinyConfig(t *testing.T) *scadanet.Config {
	t.Helper()
	net := scadanet.NewNetwork()
	for _, d := range []scadanet.Device{
		{ID: 1, Kind: scadanet.IED},
		{ID: 2, Kind: scadanet.RTU},
		{ID: 3, Kind: scadanet.MTU},
	} {
		if _, err := net.AddDevice(d); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := net.AddLink(1, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := net.AddLink(2, 3); err != nil {
		t.Fatal(err)
	}
	if err := net.AssignMeasurements(1, 1); err != nil {
		t.Fatal(err)
	}
	ms, err := powergridFromRows([][]float64{{1}})
	if err != nil {
		t.Fatal(err)
	}
	return &scadanet.Config{Msrs: ms, Net: net, K1: 0, K2: 0, R: 0}
}

func TestTinySystemObservability(t *testing.T) {
	a, err := NewAnalyzer(tinyConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	// Zero failures: observable, so the (0,0) threat query is unsat.
	res, err := a.Verify(Query{Property: Observability, K1: 0, K2: 0})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Resilient() {
		t.Fatalf("(0,0): %v", res)
	}
	// One IED failure kills the only measurement.
	res, err = a.Verify(Query{Property: Observability, K1: 1, K2: 0})
	if err != nil {
		t.Fatal(err)
	}
	if res.Resilient() {
		t.Fatalf("(1,0): %v", res)
	}
	if res.Vector == nil || len(res.Vector.IEDs) != 1 || res.Vector.IEDs[0] != 1 {
		t.Fatalf("vector = %v", res.Vector)
	}
	// One RTU failure severs the path.
	res, err = a.Verify(Query{Property: Observability, K1: 0, K2: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Resilient() {
		t.Fatalf("(0,1): %v", res)
	}
	if res.Vector == nil || len(res.Vector.RTUs) != 1 || res.Vector.RTUs[0] != 2 {
		t.Fatalf("vector = %v", res.Vector)
	}
	// Combined budget form.
	res, err = a.Verify(Query{Property: Observability, Combined: true, K: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Resilient() {
		t.Fatalf("combined k=1: %v", res)
	}
	if res.Vector.Size() != 1 {
		t.Fatalf("combined vector = %v", res.Vector)
	}
}

func TestTinySystemSecuredNeedsCrypto(t *testing.T) {
	cfg := tinyConfig(t)
	a, err := NewAnalyzer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// No crypto anywhere: secured observability fails with zero
	// failures.
	res, err := a.Verify(Query{Property: SecuredObservability, K1: 0, K2: 0})
	if err != nil {
		t.Fatal(err)
	}
	if res.Resilient() {
		t.Fatal("secured observability should fail without crypto")
	}
	if res.Vector == nil || res.Vector.Size() != 0 {
		t.Fatalf("zero-failure violation should have empty vector, got %v", res.Vector)
	}

	// Secure both hops: now it holds at (0,0).
	for _, l := range cfg.Net.Links() {
		l.Profiles = []secpolicy.Profile{
			{Algo: secpolicy.CHAP, KeyBits: 64},
			{Algo: secpolicy.SHA2, KeyBits: 256},
		}
	}
	a2, err := NewAnalyzer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err = a2.Verify(Query{Property: SecuredObservability, K1: 0, K2: 0})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Resilient() {
		t.Fatalf("secured hops: %v", res)
	}
}

func TestProtocolMismatchBreaksDelivery(t *testing.T) {
	cfg := tinyConfig(t)
	cfg.Net.Device(1).Protocols = []scadanet.Protocol{scadanet.DNP3}
	cfg.Net.Device(2).Protocols = []scadanet.Protocol{scadanet.Modbus}
	a, err := NewAnalyzer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := a.Verify(Query{Property: Observability, K1: 0, K2: 0})
	if err != nil {
		t.Fatal(err)
	}
	if res.Resilient() {
		t.Fatal("protocol mismatch must break assured delivery")
	}
}

func TestStaticallyDownDevice(t *testing.T) {
	cfg := tinyConfig(t)
	cfg.Net.Device(2).Down = true
	a, err := NewAnalyzer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := a.Verify(Query{Property: Observability, K1: 0, K2: 0})
	if err != nil {
		t.Fatal(err)
	}
	if res.Resilient() {
		t.Fatal("down RTU must break observability with zero further failures")
	}
}

func TestDownLink(t *testing.T) {
	cfg := tinyConfig(t)
	cfg.Net.Links()[0].Down = true
	a, err := NewAnalyzer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := a.Verify(Query{Property: Observability, K1: 0, K2: 0})
	if err != nil {
		t.Fatal(err)
	}
	if res.Resilient() {
		t.Fatal("down link must break observability")
	}
}

func TestQueryValidation(t *testing.T) {
	a, err := NewAnalyzer(tinyConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	bad := []Query{
		{Property: 0},
		{Property: Observability, K1: -1},
		{Property: Observability, Combined: true, K: -2},
		{Property: BadDataDetectability, R: -1},
	}
	for i, q := range bad {
		if _, err := a.Verify(q); !errors.Is(err, ErrBadQuery) {
			t.Errorf("case %d: want ErrBadQuery, got %v", i, err)
		}
	}
	if _, err := a.EnumerateThreats(Query{Property: 0}, 1); !errors.Is(err, ErrBadQuery) {
		t.Errorf("enumerate: want ErrBadQuery, got %v", err)
	}
	if _, err := a.MaxResiliency(Observability, 0, false, false); !errors.Is(err, ErrBadQuery) {
		t.Errorf("max resiliency: want ErrBadQuery, got %v", err)
	}
}

func TestQueryString(t *testing.T) {
	cases := map[string]Query{
		"2-resilient observability":                  {Property: Observability, Combined: true, K: 2},
		"(1,1)-resilient secured-observability":      {Property: SecuredObservability, K1: 1, K2: 1},
		"(2,1)-resilient bad-data-detectability":     {Property: BadDataDetectability, Combined: true, K: 2, R: 1},
		"(1,0;r=2)-resilient bad-data-detectability": {Property: BadDataDetectability, K1: 1, K2: 0, R: 2},
	}
	for want, q := range cases {
		if got := q.String(); got != want {
			t.Errorf("%+v.String() = %q, want %q", q, got, want)
		}
	}
	if Property(99).String() != "unknown" {
		t.Error("unknown property string")
	}
}

func TestThreatVectorHelpers(t *testing.T) {
	v := ThreatVector{IEDs: []scadanet.DeviceID{3, 1}, RTUs: []scadanet.DeviceID{9}}
	if v.Size() != 3 {
		t.Fatal("Size broken")
	}
	if got := v.String(); !strings.Contains(got, "IED 3") || !strings.Contains(got, "RTU 9") {
		t.Fatalf("String = %q", got)
	}
	empty := ThreatVector{}
	if empty.String() != "{}" {
		t.Fatalf("empty String = %q", empty.String())
	}
	if len(v.Devices()) != 3 {
		t.Fatal("Devices broken")
	}
}

func TestResultString(t *testing.T) {
	a, err := NewAnalyzer(tinyConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	res, err := a.Verify(Query{Property: Observability, K1: 1, K2: 0})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.String(), "VIOLATED") {
		t.Fatalf("String = %q", res.String())
	}
	res, err = a.Verify(Query{Property: Observability, K1: 0, K2: 0})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.String(), "HOLDS") {
		t.Fatalf("String = %q", res.String())
	}
	if res.Stats.MaxVars == 0 {
		t.Fatal("stats not captured")
	}
}

func TestVerifyWithFailures(t *testing.T) {
	a, err := NewAnalyzer(tinyConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	if !a.VerifyWithFailures(Observability, 0, nil) {
		t.Fatal("no failures: must be observable")
	}
	if a.VerifyWithFailures(Observability, 0, []scadanet.DeviceID{1}) {
		t.Fatal("IED down: must be unobservable")
	}
	if a.VerifyWithFailures(Observability, 0, []scadanet.DeviceID{2}) {
		t.Fatal("RTU down: must be unobservable")
	}
	if a.VerifyWithFailures(SecuredObservability, 0, nil) {
		t.Fatal("no crypto: secured must fail")
	}
	if a.VerifyWithFailures(BadDataDetectability, 1, nil) {
		t.Fatal("single measurement cannot be 1-bad-data detectable")
	}
	if a.VerifyWithFailures(Property(99), 0, nil) {
		t.Fatal("unknown property must be false")
	}
}

func TestAnalyzeReport(t *testing.T) {
	cfg := tinyConfig(t)
	cfg.K1, cfg.K2 = 1, 0
	a, err := NewAnalyzer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := a.Analyze(Observability, 10)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Result.Resilient() {
		t.Fatal("tiny system cannot be (1,0)-resilient")
	}
	if len(rep.Threats) != 1 {
		t.Fatalf("threats = %v", rep.Threats)
	}
	if rep.Elapsed <= 0 {
		t.Fatal("elapsed not recorded")
	}
}

func TestNoFieldDevices(t *testing.T) {
	net := scadanet.NewNetwork()
	if _, err := net.AddDevice(scadanet.Device{ID: 1, Kind: scadanet.MTU}); err != nil {
		t.Fatal(err)
	}
	ms, err := powergridFromRows([][]float64{{1}})
	if err != nil {
		t.Fatal(err)
	}
	cfg := &scadanet.Config{Msrs: ms, Net: net}
	if _, err := NewAnalyzer(cfg); !errors.Is(err, ErrNoFieldDevices) {
		t.Fatalf("want ErrNoFieldDevices, got %v", err)
	}
}

func TestInvalidConfigRejected(t *testing.T) {
	cfg := tinyConfig(t)
	cfg.K1 = -5
	if _, err := NewAnalyzer(cfg); err == nil {
		t.Fatal("expected validation error")
	}
}
