package sat

import (
	"math/rand"
	"testing"
)

// TestSimplifyModelReconstructionRandomized is the regression net for
// eliminated-variable model reconstruction (extendModel): on randomized
// satisfiable instances that Simplify is free to eliminate from (no
// frozen variables), the Model()/Value() view after a Sat answer must
// satisfy the ORIGINAL clause set — including every clause whose
// variables were resolved away by bounded variable elimination. Planted
// solutions keep the instances satisfiable; the cumulative ElimVars
// assertion proves the scenario actually exercises BVE rather than
// passing vacuously.
func TestSimplifyModelReconstructionRandomized(t *testing.T) {
	var eliminated uint64
	for seed := int64(0); seed < 120; seed++ {
		rng := rand.New(rand.NewSource(seed))
		nv := 8 + rng.Intn(13)
		planted := make([]bool, nv)
		for v := range planted {
			planted[v] = rng.Intn(2) == 0
		}
		nc := nv + rng.Intn(2*nv)
		cnf := make([][]Lit, 0, nc)
		for i := 0; i < nc; i++ {
			w := 2 + rng.Intn(2)
			cl := make([]Lit, 0, w)
			// One literal is made true under the planted assignment so
			// the instance stays satisfiable; the rest are random.
			anchor := Var(rng.Intn(nv))
			cl = append(cl, MkLit(anchor, !planted[anchor]))
			for len(cl) < w {
				v := Var(rng.Intn(nv))
				cl = append(cl, MkLit(v, rng.Intn(2) == 1))
			}
			cnf = append(cnf, cl)
		}

		s := New()
		for i := 0; i < nv; i++ {
			s.NewVar()
		}
		for _, cl := range cnf {
			if err := s.AddClause(cl...); err != nil {
				t.Fatalf("seed %d: AddClause: %v", seed, err)
			}
		}
		if !s.Simplify() {
			t.Fatalf("seed %d: planted-satisfiable instance refuted by Simplify", seed)
		}
		eliminated += s.Stats().ElimVars
		if st := s.Solve(); st != Sat {
			t.Fatalf("seed %d: got %v, want sat", seed, st)
		}

		m := s.Model()
		if len(m) != nv {
			t.Fatalf("seed %d: model has %d vars, want %d", seed, len(m), nv)
		}
		for _, cl := range cnf {
			ok := false
			for _, l := range cl {
				if m[l.Var()] != l.Sign() {
					ok = true
					break
				}
			}
			if !ok {
				t.Fatalf("seed %d: model falsifies original clause %v", seed, cl)
			}
		}
		// Value must agree with Model for every variable, eliminated
		// ones included (both go through the reconstructed assignment).
		for v := Var(0); int(v) < nv; v++ {
			want := False
			if m[v] {
				want = True
			}
			if got := s.Value(v); got != want {
				t.Fatalf("seed %d: Value(%d)=%v disagrees with Model()=%v (eliminated=%v)",
					seed, v, got, m[v], s.Eliminated(v))
			}
		}
	}
	if eliminated == 0 {
		t.Fatal("no variable was ever eliminated: the regression test is not exercising BVE")
	}
}
