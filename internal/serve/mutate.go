package serve

// Live configuration mutation (DESIGN.md §16): PATCH /v1/configs/{name}
// applies a typed delta to a served configuration under the admission
// pipeline, evolves the delta-aware encoding cache instead of discarding
// it, re-verifies the core properties on warm snapshots, and atomically
// publishes the new version. GET /v1/subscribe streams the resulting
// re-verification verdicts as JSONL to any number of watchers, with
// bounded fan-out: a slow subscriber loses the oldest undelivered event
// (counted in scadaver_subscribe_dropped_total), never the stream; a
// subscriber beyond the cap is shed with 503.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"scadaver/internal/core"
	"scadaver/internal/obs"
	"scadaver/internal/sat"
	"scadaver/internal/scadanet"
)

// servedConfig is one named configuration's versioned slot: the current
// immutable version (atomically swapped by PATCH), the per-config patch
// mutex that serializes mutations, and the subscriber hub.
type servedConfig struct {
	name    string
	patchMu sync.Mutex // serializes PATCHes; queries never take it
	cur     atomic.Pointer[configVersion]
	hub     *mutationHub
}

// configVersion is one immutable published configuration version.
type configVersion struct {
	cfg     *scadanet.Config
	version int
}

// PatchRequest is the body of PATCH /v1/configs/{name}: the typed
// mutation ops (and/or the CLI's textual delta grammar), the failure
// budget k and bad-data resiliency r the re-verification runs at, and a
// per-request solve budget.
type PatchRequest struct {
	Ops    []scadanet.Op `json:"ops,omitempty"`
	Delta  string        `json:"delta,omitempty"` // textual alternative: "link-remove 7; device-down 3"
	K      int           `json:"k,omitempty"`     // re-verify device budget (default 1)
	R      int           `json:"r,omitempty"`     // bad-data resiliency (default 1)
	Budget BudgetSpec    `json:"budget"`
}

// MutationVerdict is one property's re-verification outcome after a
// mutation.
type MutationVerdict struct {
	Property  core.Property `json:"property"`
	Query     core.Query    `json:"query"`
	Resilient bool          `json:"resilient"`
	Status    sat.Status    `json:"status"`
	Result    *core.Result  `json:"result,omitempty"`
}

// MutationEvent is both the PATCH response body and the JSONL event
// streamed to /v1/subscribe watchers: which version the mutation
// published, the delta and its dirty cone, what the delta-aware cache
// reused versus re-encoded, and the fresh verdicts. The subscribe
// stream's greeting line is the same shape with only Config and Version
// set.
type MutationEvent struct {
	Config   string             `json:"config"`
	Version  int                `json:"version"`
	Delta    string             `json:"delta,omitempty"`
	Dirty    scadanet.Dirty     `json:"dirty,omitempty"`
	Mutation core.MutationStats `json:"mutation"`
	Verdicts []MutationVerdict  `json:"verdicts,omitempty"`
}

// mutationHub fans one configuration's mutation events out to its
// subscribers. Publishing never blocks on a slow consumer: each
// subscriber has a small buffer, and overflow drops that subscriber's
// oldest undelivered event.
type mutationHub struct {
	config string
	max    int
	reg    *obs.Registry

	mu   sync.Mutex
	subs map[int64]chan MutationEvent
	next int64
}

func newMutationHub(config string, max int, reg *obs.Registry) *mutationHub {
	return &mutationHub{config: config, max: max, reg: reg, subs: make(map[int64]chan MutationEvent)}
}

// subscriberBuffer is the per-subscriber event backlog; beyond it the
// oldest event is dropped for that subscriber.
const subscriberBuffer = 16

func (h *mutationHub) subscribe() (int64, chan MutationEvent, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.subs) >= h.max {
		return 0, nil, fmt.Errorf("subscriber cap %d reached for config %q", h.max, h.config)
	}
	h.next++
	id := h.next
	ch := make(chan MutationEvent, subscriberBuffer)
	h.subs[id] = ch
	h.reg.SetGauge("scadaver_subscribers", map[string]string{"config": h.config}, float64(len(h.subs)))
	return id, ch, nil
}

func (h *mutationHub) unsubscribe(id int64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	delete(h.subs, id)
	h.reg.SetGauge("scadaver_subscribers", map[string]string{"config": h.config}, float64(len(h.subs)))
}

// publish delivers the event to every subscriber, dropping each
// laggard's oldest undelivered event to make room — the stream stays
// live and bounded; completeness is the price a slow client pays.
func (h *mutationHub) publish(ev MutationEvent) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, ch := range h.subs {
		select {
		case ch <- ev:
			continue
		default:
		}
		select {
		case <-ch:
			h.reg.Inc("scadaver_subscribe_dropped_total", map[string]string{"config": h.config})
		default:
		}
		select {
		case ch <- ev:
		default:
		}
	}
}

// reverifyQueries is the battery a successful PATCH re-verifies on the
// mutated configuration: the three core properties at the requested
// device budget (and bad-data resiliency).
func reverifyQueries(k, r int) []core.Query {
	return []core.Query{
		{Property: core.Observability, Combined: true, K: k},
		{Property: core.SecuredObservability, Combined: true, K: k},
		{Property: core.BadDataDetectability, Combined: true, K: k, R: r},
	}
}

func (s *Server) handlePatchConfig(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	const route = "patch"
	sc := s.configs[r.PathValue("name")]
	if sc == nil {
		s.respond(w, route, start, http.StatusNotFound,
			fmt.Errorf("unknown config %q", r.PathValue("name")))
		return
	}
	var req PatchRequest
	if err := decode(r, &req); err != nil {
		s.respond(w, route, start, http.StatusBadRequest, fmt.Errorf("bad request: %w", err))
		return
	}
	delta := scadanet.Delta{Ops: req.Ops}
	if req.Delta != "" {
		parsed, err := scadanet.ParseDelta(req.Delta)
		if err != nil {
			s.respond(w, route, start, http.StatusUnprocessableEntity, err)
			return
		}
		delta.Ops = append(delta.Ops, parsed.Ops...)
	}
	if req.K < 0 || req.R < 0 {
		s.respond(w, route, start, http.StatusBadRequest,
			fmt.Errorf("negative re-verification budget (k=%d, r=%d)", req.K, req.R))
		return
	}
	k, rr := req.K, req.R
	if k == 0 {
		k = 1
	}
	if rr == 0 {
		rr = 1
	}
	budget, err := s.deriveBudget(req.Budget.toBudget())
	if err != nil {
		s.respond(w, route, start, http.StatusBadRequest, err)
		return
	}

	var ev MutationEvent
	run := func(ctx context.Context) error {
		// One mutation at a time per config: the apply → cache evolve →
		// re-verify → publish pipeline is atomic with respect to other
		// PATCHes. Queries are lock-free throughout — they keep cloning
		// the current version's snapshots until the swap below.
		sc.patchMu.Lock()
		defer sc.patchMu.Unlock()
		cur := sc.cur.Load()
		next, dirty, err := cur.cfg.Apply(delta)
		if err != nil {
			return err
		}
		var ms core.MutationStats
		if s.cache != nil {
			if ms, err = s.cache.Mutate(cur.cfg, next, s.analyzerOptions(budget)...); err != nil {
				return err
			}
		}
		queries := reverifyQueries(k, rr)
		runner := core.NewRunner(1, s.analyzerOptions(budget)...)
		outs, err := runner.VerifyAllCollect(ctx, next, queries)
		if err != nil {
			return err
		}
		verdicts := make([]MutationVerdict, 0, len(outs))
		for i, out := range outs {
			if out.Err != nil {
				return out.Err
			}
			if out.Result == nil {
				if err := ctx.Err(); err != nil {
					return err
				}
				return context.Canceled
			}
			verdicts = append(verdicts, MutationVerdict{
				Property:  queries[i].Property,
				Query:     queries[i],
				Resilient: out.Result.Resilient(),
				Status:    out.Result.Status,
				Result:    out.Result,
			})
		}
		// Publish: the version swap is the commit point. A failure
		// anywhere above leaves the prior version live and the cache
		// lineage already evolved under the new fingerprint — harmless,
		// since entries are content-addressed.
		nv := &configVersion{cfg: next, version: cur.version + 1}
		sc.cur.Store(nv)
		ev = MutationEvent{
			Config:   sc.name,
			Version:  nv.version,
			Delta:    delta.String(),
			Dirty:    dirty,
			Mutation: ms,
			Verdicts: verdicts,
		}
		s.reg.Inc("scadaver_mutations_total", map[string]string{"config": sc.name})
		sc.hub.publish(ev)
		return nil
	}
	j, release, ok := s.admit(w, r, route, s.requestDeadline(budget, len(reverifyQueries(k, rr))), run)
	if !ok {
		return
	}
	defer release()
	<-j.done

	if code, err := s.classify(j); err != nil {
		s.respond(w, route, start, code, err)
		return
	}
	s.brk.Record(false)
	s.respond(w, route, start, http.StatusOK, ev)
}

// handleSubscribe streams a configuration's mutation events as JSONL.
// Like the introspection routes it bypasses admission — a watcher must
// be able to observe re-verification exactly when the service is busy —
// but unlike them it is capped (MaxSubscribers per config, 503 beyond)
// and individually bounded (drop-oldest on a slow consumer). The first
// line is a greeting carrying the currently published version; every
// later line is one MutationEvent.
func (s *Server) handleSubscribe(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	const route = "subscribe"
	name := r.URL.Query().Get("config")
	sc := s.configs[name]
	if sc == nil {
		s.respond(w, route, start, http.StatusNotFound, fmt.Errorf("unknown config %q", name))
		return
	}
	id, ch, err := sc.hub.subscribe()
	if err != nil {
		s.reg.Inc("scadaver_shed_total", map[string]string{"reason": "subscribers"})
		w.Header().Set("Retry-After", fmt.Sprint(s.retryAfterSeconds()))
		s.respond(w, route, start, http.StatusServiceUnavailable, err)
		return
	}
	defer sc.hub.unsubscribe(id)

	flusher, _ := w.(http.Flusher)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	emit := func(ev MutationEvent) error {
		if err := s.opts.Faults.BeforeStreamItem(); err != nil {
			return err
		}
		if err := enc.Encode(ev); err != nil {
			return err
		}
		if flusher != nil {
			flusher.Flush()
		}
		return nil
	}
	if err := emit(MutationEvent{Config: sc.name, Version: sc.cur.Load().version}); err != nil {
		s.account(route, start, "499-truncated")
		return
	}
	for {
		select {
		case ev := <-ch:
			if err := emit(ev); err != nil {
				s.account(route, start, "499-truncated")
				return
			}
		case <-r.Context().Done():
			s.account(route, start, "200")
			return
		case <-s.baseCtx.Done():
			// Drain: end the stream cleanly; the client reconnects to a
			// healthy node.
			s.account(route, start, "200")
			return
		}
	}
}
