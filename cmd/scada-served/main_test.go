package main

import (
	"bytes"
	"net/http"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"
)

func TestVersionFlag(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-version"}, &out, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "scadaver") {
		t.Fatalf("version output %q does not name the module", out.String())
	}
}

func TestRequiresConfig(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, &out, nil); err == nil {
		t.Fatal("run without -config succeeded")
	}
}

func TestRejectsBadConfigSpec(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-config", "=oops"}, &out, nil); err == nil {
		t.Fatal("run accepted an empty config name")
	}
	if err := run([]string{"-config", "grid=/does/not/exist.scada"}, &out, nil); err == nil {
		t.Fatal("run accepted a missing config file")
	}
}

// TestServeAndGracefulShutdown boots the real binary path end to end:
// parse a shipped configuration, serve on an ephemeral port, answer a
// verification request, then drain cleanly on SIGTERM.
func TestServeAndGracefulShutdown(t *testing.T) {
	var out bytes.Buffer
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-addr", "127.0.0.1:0",
			"-config", "grid=../../testdata/case5bus.scada",
			"-drain-timeout", "10s",
		}, &out, ready)
	}()

	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("server exited before ready: %v (output %q)", err, out.String())
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}
	base := "http://" + addr

	for _, path := range []string{"/healthz", "/readyz", "/metrics"} {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s = %d", path, resp.StatusCode)
		}
	}

	body := strings.NewReader(`{"config":"grid","query":{"property":"observability","combined":true,"k":0}}`)
	resp, err := http.Post(base+"/v1/verify", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/verify = %d", resp.StatusCode)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run after SIGTERM: %v (output %q)", err, out.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("server did not exit after SIGTERM")
	}
	if !strings.Contains(out.String(), "drained") {
		t.Fatalf("output %q does not report a drain", out.String())
	}
}
