// Package delivery is a discrete-event simulator of SCADA measurement
// delivery over the configured topology: IEDs emit their measurements,
// packets hop across links through RTUs and routers toward the MTU with
// per-hop latencies and per-device processing delays, and hops that
// violate protocol/crypto pairing drop traffic. It operationally
// validates the formal AssuredDelivery/SecuredDelivery judgements: a
// measurement arrives in simulation exactly when the verifier's model
// says it is deliverable.
package delivery

import (
	"container/heap"
	"sort"
	"time"

	"scadaver/internal/scadanet"
	"scadaver/internal/secpolicy"
)

// Params tunes the timing model.
type Params struct {
	LinkLatency     time.Duration // per-hop transmission latency
	DeviceDelay     time.Duration // per forwarding-device processing time
	SecuredOverhead time.Duration // extra per-hop cost of crypto processing
}

// DefaultParams returns timings typical of substation LAN/WAN hops.
func DefaultParams() Params {
	return Params{
		LinkLatency:     2 * time.Millisecond,
		DeviceDelay:     500 * time.Microsecond,
		SecuredOverhead: 300 * time.Microsecond,
	}
}

// Delivery records the fate of one measurement's packet.
type Delivery struct {
	MsrID     int
	IED       scadanet.DeviceID
	Delivered bool
	Secured   bool          // every hop authenticated + integrity protected
	At        time.Duration // arrival time at the MTU (when Delivered)
	Hops      int
}

// Simulator runs measurement-delivery rounds over one configuration.
type Simulator struct {
	cfg    *scadanet.Config
	policy *secpolicy.Policy
	params Params
}

// New builds a simulator (nil policy = default; zero params = defaults).
func New(cfg *scadanet.Config, policy *secpolicy.Policy, params Params) *Simulator {
	if policy == nil {
		policy = secpolicy.Default()
	}
	if params == (Params{}) {
		params = DefaultParams()
	}
	return &Simulator{cfg: cfg, policy: policy, params: params}
}

// event is one packet arrival at a device.
type event struct {
	at     time.Duration
	device scadanet.DeviceID
	pkt    int // packet index
	seq    int // tie-breaker for determinism
}

type eventQueue []event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(event)) }
func (q *eventQueue) Pop() any     { old := *q; n := len(old); e := old[n-1]; *q = old[:n-1]; return e }

type packet struct {
	msrID   int
	ied     scadanet.DeviceID
	route   []*scadanet.Link // precomputed hop sequence
	hop     int
	secured bool
}

// Run simulates one acquisition round under the given failure set and
// returns one Delivery per (IED, measurement), ordered by measurement
// ID.
func (s *Simulator) Run(down map[scadanet.DeviceID]bool) []Delivery {
	mtu := s.cfg.Net.MTUID()
	var packets []packet
	var results []Delivery

	for _, d := range s.cfg.Net.DevicesOfKind(scadanet.IED) {
		route, secured := s.route(d.ID, down)
		for _, z := range s.cfg.Net.MeasurementsOf(d.ID) {
			results = append(results, Delivery{MsrID: z, IED: d.ID})
			if route == nil || d.Down || down[d.ID] {
				packets = append(packets, packet{})
				continue
			}
			packets = append(packets, packet{msrID: z, ied: d.ID, route: route, secured: secured})
		}
	}

	q := &eventQueue{}
	heap.Init(q)
	seq := 0
	for i, p := range packets {
		if p.route == nil {
			continue
		}
		heap.Push(q, event{at: 0, device: p.ied, pkt: i, seq: seq})
		seq++
	}

	for q.Len() > 0 {
		ev, ok := heap.Pop(q).(event)
		if !ok {
			break
		}
		p := &packets[ev.pkt]
		if ev.device == mtu {
			// Arrived.
			for ri := range results {
				if results[ri].MsrID == p.msrID && results[ri].IED == p.ied {
					results[ri].Delivered = true
					results[ri].Secured = p.secured
					results[ri].At = ev.at
					results[ri].Hops = len(p.route)
				}
			}
			continue
		}
		if p.hop >= len(p.route) {
			continue // dead end (should not happen with valid routes)
		}
		l := p.route[p.hop]
		p.hop++
		next := l.Other(ev.device)
		cost := s.params.LinkLatency + s.params.DeviceDelay
		if s.hopSecured(l) {
			cost += s.params.SecuredOverhead
		}
		heap.Push(q, event{at: ev.at + cost, device: next, pkt: ev.pkt, seq: seq})
		seq++
	}

	sort.Slice(results, func(i, j int) bool {
		if results[i].MsrID != results[j].MsrID {
			return results[i].MsrID < results[j].MsrID
		}
		return results[i].IED < results[j].IED
	})
	return results
}

// route picks the shortest usable path (fewest hops) from the IED to the
// MTU under the failure set, and whether every hop on it is secured. It
// prefers fully secured routes when one exists.
func (s *Simulator) route(ied scadanet.DeviceID, down map[scadanet.DeviceID]bool) ([]*scadanet.Link, bool) {
	if r := s.bfs(ied, down, true); r != nil {
		return r, true
	}
	return s.bfs(ied, down, false), false
}

func (s *Simulator) bfs(ied scadanet.DeviceID, down map[scadanet.DeviceID]bool, securedOnly bool) []*scadanet.Link {
	mtu := s.cfg.Net.MTUID()
	adj := map[scadanet.DeviceID][]*scadanet.Link{}
	for _, l := range s.cfg.Net.Links() {
		adj[l.A] = append(adj[l.A], l)
		adj[l.B] = append(adj[l.B], l)
	}
	type hop struct {
		dev scadanet.DeviceID
		via *scadanet.Link
		prv scadanet.DeviceID
	}
	prev := map[scadanet.DeviceID]hop{}
	visited := map[scadanet.DeviceID]bool{ied: true}
	queue := []scadanet.DeviceID{ied}
	for len(queue) > 0 {
		at := queue[0]
		queue = queue[1:]
		if at == mtu {
			// Reconstruct.
			var route []*scadanet.Link
			for d := mtu; d != ied; d = prev[d].prv {
				route = append([]*scadanet.Link{prev[d].via}, route...)
			}
			return route
		}
		for _, l := range adj[at] {
			if !s.hopUsable(l, securedOnly) {
				continue
			}
			next := l.Other(at)
			if visited[next] {
				continue
			}
			nd := s.cfg.Net.Device(next)
			if next != mtu && nd.Kind != scadanet.RTU && nd.Kind != scadanet.Router {
				continue
			}
			if nd.FieldDevice() && (nd.Down || down[next]) {
				continue
			}
			visited[next] = true
			prev[next] = hop{dev: next, via: l, prv: at}
			queue = append(queue, next)
		}
	}
	return nil
}

func (s *Simulator) hopUsable(l *scadanet.Link, securedOnly bool) bool {
	if l.Down {
		return false
	}
	protoOK, cryptoOK := s.cfg.Net.HopPairing(l)
	if !protoOK || !cryptoOK {
		return false
	}
	if securedOnly && !s.hopSecured(l) {
		return false
	}
	return true
}

func (s *Simulator) hopSecured(l *scadanet.Link) bool {
	caps := s.cfg.Net.HopCaps(l, s.policy)
	return caps.Has(secpolicy.Authenticates | secpolicy.IntegrityProtects)
}

// DeliveredSet condenses a run into the set of delivered measurement
// IDs, optionally only those delivered securely — directly comparable to
// the verifier's judgements.
func DeliveredSet(results []Delivery, securedOnly bool) map[int]bool {
	out := map[int]bool{}
	for _, r := range results {
		if !r.Delivered {
			continue
		}
		if securedOnly && !r.Secured {
			continue
		}
		out[r.MsrID] = true
	}
	return out
}
