GO ?= go

.PHONY: all build vet test race lint bench bench-record chaos chaos-cluster verify

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Lint the checked-in case-study configuration with the repository's own
# misconfiguration analyzer (internal/lint via scada-analyzer -lint).
# Exits non-zero if the linter reports errors (warnings are expected:
# the paper's Table II input deliberately contains weak profiles).
lint:
	$(GO) run ./cmd/scada-analyzer -lint -config testdata/case5bus.scada

bench:
	$(GO) test -bench=. -benchmem

# Record the reference benchmark campaign (resiliency boundary plus
# parallel k-sweep over IEEE 14/30/57, and an IEEE-118 boundary-only
# row) as machine-readable JSON, so successive commits can be compared
# number-by-number. Recorded with preprocessing and the encoding cache;
# the portfolio is deliberately left off so the reference numbers stay
# comparable across hosts with different CPU counts (portfolio
# escalation only pays with real parallelism — see EXPERIMENTS.md §P3
# for the armed/ablated legs). -certify adds a ksweep-certify row per
# system (the §R3 certification-overhead ablation) while leaving the
# base rows uncertified and comparable to earlier records.
# The record also carries the mutation-storm rows (mutate-incremental
# vs mutate-cold on IEEE-57): the delta-aware re-verification headline.
# BENCH_pr2.json is the retained pre-preprocessing baseline,
# BENCH_pr5.json the pre-galloping-boundary-search one,
# BENCH_pr6.json the last pre-certification record, and
# BENCH_pr9.json the last record before the delta cache.
bench-record:
	$(GO) run ./cmd/scada-bench -record BENCH_pr10.json -inputs 1 -runs 2 -maxk 4 -presimplify -certify

# The chaos pass: the fault-tolerance suite (deterministic fault
# injection, budget degradation, checkpoint/resume, panic isolation)
# under the race detector, uncached so injected faults re-fire every
# run (see DESIGN.md §9), the portfolio chaos suite (replica panics,
# clause-exchange soundness, interrupt-safe cancellation; DESIGN.md
# §12), the verification-service chaos smoke (overload shedding,
# breaker, drain-resume; see DESIGN.md §10), plus the certification
# chaos suite (DESIGN.md §15): the TestChaos patterns below include
# TestChaosCertify* — injected verdict flips, corrupted witnesses and
# truncated proof streams must be caught, quarantined and corrected at
# the core, service and cluster boundaries.
chaos: chaos-cluster
	$(GO) test -race -count=1 ./internal/faultinject ./internal/atomicio ./internal/sat/drat
	$(GO) test -race -count=1 -run 'TestPortfolio|TestVivify|TestExchange' ./internal/sat
	$(GO) test -race -count=1 -run 'TestChaos|TestBudget|TestCheckpoint|TestSweepVerifyRange|TestIEEE57EnumerationResume|TestPortfolio|TestFlight|TestDelta' ./internal/core
	$(GO) test -race -count=1 -run 'TestSetup|TestTracer|TestFlight' ./internal/obs
	$(GO) test -race -count=1 -run 'TestChaos|TestBreaker|TestHandoff|TestRetryAfter' ./internal/serve
	$(GO) test -race -count=1 ./cmd/scada-served

# The multi-node chaos suite (DESIGN.md §14): a coordinator over real
# member nodes, race-enabled — a member killed mid-enumeration must
# yield the identical vector set via checkpoint-carrying handoff, and a
# partitioned member must not stop /v1/verify or breach queue bounds.
chaos-cluster:
	$(GO) test -race -count=1 ./internal/cluster

# The pre-merge gate: static checks, full build, race-enabled tests,
# the config lint, and the chaos pass. The observability layer and the
# verification service get explicit vet + race passes (their tests
# hammer the tracer, registry, and admission pipeline concurrently).
verify: vet build race lint chaos
	$(GO) vet ./internal/obs ./internal/serve
	$(GO) test -race -count=1 ./internal/obs ./internal/sat ./internal/serve
