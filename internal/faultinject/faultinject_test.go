package faultinject

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// TestNilPlanIsOff pins the "nil is off" contract production code
// relies on: every hook is callable on a nil *Faults and injects
// nothing.
func TestNilPlanIsOff(t *testing.T) {
	var f *Faults
	if h := f.SolverHook(); h != nil {
		t.Fatal("nil plan returned a solver hook")
	}
	f.BeforeSolve()
	f.CheckTask(0) // must not panic
	var buf bytes.Buffer
	w := f.WrapWriter(&buf)
	if w != io.Writer(&buf) {
		t.Fatal("nil plan wrapped the writer")
	}
	if got := f.Counts(); got != (Counts{}) {
		t.Fatalf("nil plan counts = %+v", got)
	}
	if f.Pick(10) != 0 {
		t.Fatal("nil plan Pick != 0")
	}
}

func TestSolverHook(t *testing.T) {
	f := New(1).StallSolverAfter(5)
	h := f.SolverHook()
	if h == nil {
		t.Fatal("armed plan returned nil hook")
	}
	for c := uint64(0); c < 5; c++ {
		if h(c) {
			t.Fatalf("hook fired at %d conflicts, limit 5", c)
		}
	}
	if !h(5) || !h(6) {
		t.Fatal("hook did not fire at the limit")
	}
	if got := f.Counts().SolverStalls; got != 2 {
		t.Fatalf("stalls = %d, want 2", got)
	}
}

func TestPanicOnTaskFiresOnce(t *testing.T) {
	f := New(2).PanicOnTask(3)
	f.CheckTask(2) // not the victim
	fired := func() (p any) {
		defer func() { p = recover() }()
		f.CheckTask(3)
		return nil
	}()
	if !errors.Is(fired.(error), ErrInjected) {
		t.Fatalf("panic value = %v, want ErrInjected", fired)
	}
	f.CheckTask(3) // one-shot: second hit must not panic
	if got := f.Counts().Panics; got != 1 {
		t.Fatalf("panics = %d, want 1", got)
	}
}

// TestWrapWriterTransient checks that exactly the armed write indices
// fail and that later writes on the same writer succeed again.
func TestWrapWriterTransient(t *testing.T) {
	f := New(3).FailWrites(1)
	var buf bytes.Buffer
	w := f.WrapWriter(&buf)
	writes := []string{"a", "b", "c"}
	var errs []error
	for _, s := range writes {
		_, err := io.WriteString(w, s)
		errs = append(errs, err)
	}
	if errs[0] != nil || errs[2] != nil {
		t.Fatalf("unexpected errors on healthy writes: %v", errs)
	}
	if !errors.Is(errs[1], ErrInjected) {
		t.Fatalf("write 1 error = %v, want ErrInjected", errs[1])
	}
	if buf.String() != "ac" {
		t.Fatalf("surviving bytes = %q, want %q", buf.String(), "ac")
	}
	if got := f.Counts().WriteFaults; got != 1 {
		t.Fatalf("write faults = %d, want 1", got)
	}
}

// TestPickDeterministic pins that the seeded generator replays the same
// victim sequence for the same seed and diverges across seeds.
func TestPickDeterministic(t *testing.T) {
	seq := func(seed int64) []int {
		f := New(seed)
		out := make([]int, 16)
		for i := range out {
			out[i] = f.Pick(1000)
		}
		return out
	}
	a, b := seq(42), seq(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %d != %d", i, a[i], b[i])
		}
	}
	c := seq(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical sequences")
	}
}
