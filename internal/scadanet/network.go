package scadanet

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"scadaver/internal/secpolicy"
)

// Network is a SCADA communication topology plus the IED→measurement
// assignment (MsrSet_I in the paper).
type Network struct {
	devices map[DeviceID]*Device
	links   []*Link
	msrOf   map[DeviceID][]int // IED -> 1-based measurement IDs
	nextLnk LinkID

	// Path-enumeration memos, guarded by pathMu and invalidated by the
	// link mutators. The delta cache re-derives every IED's path
	// signature per mutation, so without the memo each evolve rebuilds
	// the adjacency index and re-runs the DFS once per IED — the single
	// hottest non-solver cost of an incremental re-verify. Callers must
	// treat returned path slices as read-only (Paths already demanded
	// that implicitly: the inner link pointers are shared either way).
	pathMu   sync.Mutex
	adjMemo  map[DeviceID][]*Link
	pathMemo map[pathKey][][]*Link
}

// pathKey identifies one memoized Paths result.
type pathKey struct {
	ied      DeviceID
	maxPaths int
}

// Validation errors.
var (
	ErrDuplicateDevice = errors.New("scadanet: duplicate device ID")
	ErrUnknownDevice   = errors.New("scadanet: link references unknown device")
	ErrNoMTU           = errors.New("scadanet: network has no MTU")
	ErrMultipleMTU     = errors.New("scadanet: network has multiple MTUs")
	ErrNotIED          = errors.New("scadanet: measurement assignment to a non-IED")
)

// NewNetwork returns an empty network.
func NewNetwork() *Network {
	return &Network{
		devices: make(map[DeviceID]*Device),
		msrOf:   make(map[DeviceID][]int),
	}
}

// AddDevice registers a device. The ID must be unused.
func (n *Network) AddDevice(d Device) (*Device, error) {
	if _, ok := n.devices[d.ID]; ok {
		return nil, fmt.Errorf("%w: %d", ErrDuplicateDevice, d.ID)
	}
	cp := d
	cp.Protocols = append([]Protocol(nil), d.Protocols...)
	cp.Profiles = append([]secpolicy.Profile(nil), d.Profiles...)
	n.devices[d.ID] = &cp
	n.invalidatePaths()
	return &cp, nil
}

// invalidatePaths drops the path memos after a topology mutation.
func (n *Network) invalidatePaths() {
	n.pathMu.Lock()
	n.adjMemo, n.pathMemo = nil, nil
	n.pathMu.Unlock()
}

// AddLink registers a link between two existing devices and returns it.
func (n *Network) AddLink(a, b DeviceID, profiles ...secpolicy.Profile) (*Link, error) {
	if _, ok := n.devices[a]; !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownDevice, a)
	}
	if _, ok := n.devices[b]; !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownDevice, b)
	}
	n.nextLnk++
	l := &Link{ID: n.nextLnk, A: a, B: b, Profiles: append([]secpolicy.Profile(nil), profiles...)}
	n.links = append(n.links, l)
	n.invalidatePaths()
	return l, nil
}

// AssignMeasurements records that the given IED transmits the listed
// 1-based measurement IDs.
func (n *Network) AssignMeasurements(ied DeviceID, msrIDs ...int) error {
	d, ok := n.devices[ied]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownDevice, ied)
	}
	if d.Kind != IED {
		return fmt.Errorf("%w: device %d is %v", ErrNotIED, ied, d.Kind)
	}
	n.msrOf[ied] = append(n.msrOf[ied], msrIDs...)
	return nil
}

// Device returns the device with the given ID (nil if absent).
func (n *Network) Device(id DeviceID) *Device { return n.devices[id] }

// Devices returns all devices sorted by ID.
func (n *Network) Devices() []*Device {
	out := make([]*Device, 0, len(n.devices))
	for _, d := range n.devices {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// DevicesOfKind returns devices of one kind sorted by ID.
func (n *Network) DevicesOfKind(k DeviceKind) []*Device {
	var out []*Device
	for _, d := range n.Devices() {
		if d.Kind == k {
			out = append(out, d)
		}
	}
	return out
}

// Links returns the link list in insertion order. The returned slice
// must not be modified.
func (n *Network) Links() []*Link { return n.links }

// LinkBetween returns the first link joining a and b, or nil.
func (n *Network) LinkBetween(a, b DeviceID) *Link {
	for _, l := range n.links {
		if l.Connects(a, b) {
			return l
		}
	}
	return nil
}

// Link returns the link with the given ID, or nil.
func (n *Network) Link(id LinkID) *Link {
	for _, l := range n.links {
		if l.ID == id {
			return l
		}
	}
	return nil
}

// RemoveLink deletes the identified link (used by the hardening example
// and topology rewires such as the paper's Fig. 4 variant).
func (n *Network) RemoveLink(id LinkID) bool {
	for i, l := range n.links {
		if l.ID == id {
			n.links = append(n.links[:i], n.links[i+1:]...)
			n.invalidatePaths()
			return true
		}
	}
	return false
}

// MeasurementsOf returns the measurement IDs transmitted by an IED.
func (n *Network) MeasurementsOf(ied DeviceID) []int {
	return append([]int(nil), n.msrOf[ied]...)
}

// MTUID returns the MTU device ID (0 if absent).
func (n *Network) MTUID() DeviceID {
	for _, d := range n.devices {
		if d.Kind == MTU {
			return d.ID
		}
	}
	return 0
}

// Validate checks structural sanity: exactly one MTU, links reference
// known devices, and measurement assignments target IEDs.
func (n *Network) Validate() error {
	mtus := 0
	for _, d := range n.devices {
		if d.Kind == MTU {
			mtus++
		}
	}
	if mtus == 0 {
		return ErrNoMTU
	}
	if mtus > 1 {
		return ErrMultipleMTU
	}
	for _, l := range n.links {
		if n.devices[l.A] == nil || n.devices[l.B] == nil {
			return fmt.Errorf("%w: link %d (%d-%d)", ErrUnknownDevice, l.ID, l.A, l.B)
		}
	}
	for id := range n.msrOf {
		d := n.devices[id]
		if d == nil {
			return fmt.Errorf("%w: %d", ErrUnknownDevice, id)
		}
		if d.Kind != IED {
			return fmt.Errorf("%w: device %d is %v", ErrNotIED, id, d.Kind)
		}
	}
	return nil
}

// Clone returns a deep copy of the network: devices, links (including
// security profiles) and measurement assignments are all duplicated.
func (n *Network) Clone() *Network {
	out := NewNetwork()
	out.nextLnk = n.nextLnk
	for id, d := range n.devices {
		cp := *d
		cp.Protocols = append([]Protocol(nil), d.Protocols...)
		cp.Profiles = append([]secpolicy.Profile(nil), d.Profiles...)
		out.devices[id] = &cp
	}
	for _, l := range n.links {
		cp := *l
		cp.Profiles = append([]secpolicy.Profile(nil), l.Profiles...)
		out.links = append(out.links, &cp)
	}
	for id, zs := range n.msrOf {
		out.msrOf[id] = append([]int(nil), zs...)
	}
	return out
}

// HopCaps returns the security capabilities of the hop over link l under
// a policy: the link's own pairwise profile when present, otherwise the
// judged intersection of the endpoint devices' profiles.
func (n *Network) HopCaps(l *Link, pol *secpolicy.Policy) secpolicy.Capability {
	if len(l.Profiles) > 0 {
		return pol.Judge(l.Profiles)
	}
	return pol.PairCaps(n.devices[l.A].Profiles, n.devices[l.B].Profiles)
}

// HopPairing reports the paper's AssuredDelivery hop conditions that are
// static configuration facts: CommProtoPairing (shared protocol) and
// CryptoPropPairing (crypto handshake possible).
func (n *Network) HopPairing(l *Link) (protoOK, cryptoOK bool) {
	a, b := n.devices[l.A], n.devices[l.B]
	protoOK = a.SharesProtocol(b)
	if len(l.Profiles) > 0 {
		// An explicit pairwise profile means the pair has already agreed
		// on crypto parameters.
		cryptoOK = true
	} else {
		cryptoOK = secpolicy.CanPair(a.Profiles, b.Profiles)
	}
	return protoOK, cryptoOK
}

// Paths enumerates simple communication paths from the given IED to the
// MTU as link sequences. Intermediate nodes must be RTUs or routers.
// maxPaths bounds the enumeration (0 means DefaultMaxPaths). Results
// (and the adjacency index behind them) are memoized until the next
// topology mutation; callers must treat them as read-only.
func (n *Network) Paths(ied DeviceID, maxPaths int) [][]*Link {
	if maxPaths <= 0 {
		maxPaths = DefaultMaxPaths
	}
	mtu := n.MTUID()
	if mtu == 0 {
		return nil
	}
	start := n.devices[ied]
	if start == nil || start.Kind != IED {
		return nil
	}
	key := pathKey{ied: ied, maxPaths: maxPaths}
	n.pathMu.Lock()
	if paths, ok := n.pathMemo[key]; ok {
		n.pathMu.Unlock()
		return paths
	}
	if n.adjMemo == nil {
		adj := make(map[DeviceID][]*Link, len(n.devices))
		for _, l := range n.links {
			adj[l.A] = append(adj[l.A], l)
			adj[l.B] = append(adj[l.B], l)
		}
		n.adjMemo = adj
	}
	adj := n.adjMemo
	n.pathMu.Unlock()

	var out [][]*Link
	visited := map[DeviceID]bool{ied: true}
	var path []*Link
	var dfs func(at DeviceID)
	dfs = func(at DeviceID) {
		if len(out) >= maxPaths {
			return
		}
		if at == mtu {
			out = append(out, append([]*Link(nil), path...))
			return
		}
		for _, l := range adj[at] {
			next := l.Other(at)
			if visited[next] {
				continue
			}
			nd := n.devices[next]
			// Intermediate hops go through RTUs and routers only; other
			// IEDs do not forward traffic.
			if next != mtu && nd.Kind != RTU && nd.Kind != Router {
				continue
			}
			visited[next] = true
			path = append(path, l)
			dfs(next)
			path = path[:len(path)-1]
			visited[next] = false
		}
	}
	dfs(ied)
	n.pathMu.Lock()
	if n.pathMemo == nil {
		n.pathMemo = make(map[pathKey][][]*Link)
	}
	n.pathMemo[key] = out
	n.pathMu.Unlock()
	return out
}

// DefaultMaxPaths caps per-IED path enumeration. SCADA topologies are
// tree-like with a handful of cross links, so this is generous.
const DefaultMaxPaths = 256
