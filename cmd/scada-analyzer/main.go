// Command scada-analyzer is the paper's SCADA Analyzer tool: it loads a
// SCADA configuration, verifies a resiliency specification, and reports
// either the certified resiliency (unsat) or the threat vectors that
// violate it (sat).
//
// Usage:
//
//	scada-analyzer -config system.scada [-property observability] \
//	    [-k1 1 -k2 1] [-k 2] [-r 1] [-enumerate 10] [-max-resiliency]
//	scada-analyzer -config system.scada -sweep 6 [-workers 4] [-stats]
//
// -sweep K verifies the property for every combined budget k = 0..K;
// with -workers 1 (the default) a single solver is reused across the
// sweep, rebuilding only the cardinality constraint per budget, while
// -workers N > 1 fans the budgets out over a pool of independent
// solvers. -stats prints per-solve SAT statistics (decisions,
// conflicts, propagations, learned clauses, solve time) and the
// per-phase time breakdown (build/encode/solve/decode).
//
// Observability (see internal/obs and the README's Observability
// section): -trace FILE writes a JSONL span trace of every
// verification, -metrics FILE exports counters and phase histograms
// (Prometheus text, or JSON for .json files), -pprof ADDR serves
// net/http/pprof while the run lasts, and -progress N adds solver
// progress events to the trace every N conflicts.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"scadaver/internal/core"
	"scadaver/internal/hardening"
	"scadaver/internal/lint"
	"scadaver/internal/obs"
	"scadaver/internal/scadanet"
	"scadaver/internal/version"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "scada-analyzer:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) (retErr error) {
	fs := flag.NewFlagSet("scada-analyzer", flag.ContinueOnError)
	var (
		configPath = fs.String("config", "", "path to a .scada configuration (required; '-' for stdin)")
		property   = fs.String("property", "observability", "property: observability | secured | baddata")
		k1         = fs.Int("k1", -1, "IED failure budget (default: from config)")
		k2         = fs.Int("k2", -1, "RTU failure budget (default: from config)")
		k          = fs.Int("k", -1, "combined failure budget (overrides k1/k2)")
		r          = fs.Int("r", -1, "corrupted-measurement budget for baddata (default: from config)")
		enumerate  = fs.Int("enumerate", 10, "max threat vectors to enumerate when violated (0 = none)")
		maxRes     = fs.Bool("max-resiliency", false, "also report maximum IED-only and RTU-only resiliency")
		sweepK     = fs.Int("sweep", -1, "verify every combined budget k = 0..K (overrides -k/-k1/-k2)")
		workers    = fs.Int("workers", 1, "sweep pool size: 1 = incremental solver reuse, N > 1 = parallel pool, 0 = GOMAXPROCS")
		stats      = fs.Bool("stats", false, "print per-solve solver statistics")
		harden     = fs.Bool("harden", false, "when violated, synthesize a remediation plan")
		hardenOut  = fs.String("harden-out", "", "write the hardened configuration to this file")
		lintOnly   = fs.Bool("lint", false, "run the misconfiguration linter and exit")
		jsonOut    = fs.Bool("json", false, "emit the verification result as JSON")
		traceFile  = fs.String("trace", "", "write a JSONL phase trace of every verification to this file")
		metricsOut = fs.String("metrics", "", "write verification metrics to this file (.json extension = JSON, otherwise Prometheus text)")
		pprofAddr  = fs.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060) while running")
		progress   = fs.Uint64("progress", 0, "solver progress cadence in conflicts: trace events with -trace, live counter updates with -watch (0 = default)")
		watch      = fs.Duration("watch", 0, "print a live progress line per in-flight query to stderr every interval (0 = off)")
		deadline   = fs.Duration("deadline", 0, "per-query wall-clock deadline; exhausted queries degrade to UNSOLVED (0 = none)")
		retries    = fs.Int("retries", 0, "extra attempts per query after a budget-exhausted solve, with escalating budgets")
		checkpoint = fs.String("checkpoint", "", "resumable checkpoint file for -sweep campaigns and threat enumeration")
		keepGoing  = fs.Bool("keep-going", true, "for parallel -sweep: isolate per-query failures instead of aborting the campaign")
		presimp    = fs.Bool("presimplify", false, "preprocess the CNF before search (unit propagation, subsumption, variable elimination)")
		certify    = fs.Bool("certify", false, "certify every verdict: proof-log the solve and check it in-process (DRAT), audit sat models against a pristine re-encode, and quarantine+re-solve on divergence")
		noCache    = fs.Bool("no-cache", false, "disable the cross-query encoding cache (re-encode the structure per query)")
		mutateStr  = fs.String("mutate", "", "apply a mutation delta before verification (\"link-remove 7; device-down 3; key-rotate 4 256\"): the pre-mutation structure is verified first to warm the delta-aware encoding cache, then only the delta's dirty cone is re-encoded (see the delta/carried counters under -stats)")
		portfolio  = fs.Int("portfolio", 0, "race N diversified solver replicas (clause sharing, inprocessing) per hard query; 0/1 = serial. Ignored by -sweep: like the encoding cache, the portfolio may surface different (equally valid) witness vectors, and sweep output is contracted to be identical across worker counts")
		showVer    = fs.Bool("version", false, "print version and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *showVer {
		fmt.Fprintln(out, version.String())
		return nil
	}
	if *configPath == "" {
		fs.Usage()
		return fmt.Errorf("-config is required")
	}

	in := os.Stdin
	if *configPath != "-" {
		f, err := os.Open(*configPath)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	cfg, err := scadanet.ParseConfig(in)
	if err != nil {
		return err
	}

	if *lintOnly {
		rep := lint.Check(cfg, nil)
		fmt.Fprint(out, rep)
		if rep.HasErrors() {
			return fmt.Errorf("lint found configuration errors")
		}
		return nil
	}

	var prop core.Property
	switch *property {
	case "observability", "obs":
		prop = core.Observability
	case "secured", "secured-observability":
		prop = core.SecuredObservability
	case "baddata", "bad-data-detectability":
		prop = core.BadDataDetectability
	default:
		return fmt.Errorf("unknown property %q", *property)
	}

	q := core.Query{Property: prop, K1: cfg.K1, K2: cfg.K2, R: cfg.R}
	if *k1 >= 0 {
		q.K1 = *k1
	}
	if *k2 >= 0 {
		q.K2 = *k2
	}
	if *r >= 0 {
		q.R = *r
	}
	if *k >= 0 {
		q.Combined = true
		q.K = *k
	}

	root, reg, closeObs, err := obs.Setup("scada-analyzer", *traceFile, *metricsOut, *pprofAddr)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := closeObs(); cerr != nil && retErr == nil {
			retErr = cerr
		}
	}()
	var opts []core.Option
	if root != nil {
		opts = append(opts, core.WithTrace(root))
	}
	if reg != nil {
		opts = append(opts, core.WithMetrics(reg))
	}
	if *progress > 0 {
		opts = append(opts, core.WithProgressEvery(*progress))
	}
	if *watch > 0 {
		qreg := obs.NewQueryRegistry(0, 0)
		opts = append(opts, core.WithQueryRegistry(qreg))
		stopWatch := obs.WatchProgress(os.Stderr, qreg, *watch)
		defer stopWatch()
	}
	budget := core.QueryBudget{Deadline: *deadline, Retries: *retries}
	if budget.Enabled() {
		opts = append(opts, core.WithBudget(budget))
	}
	// The encoding cache stays off for -sweep campaigns: the incremental
	// single-solver path and the parallel pool are contracted to print
	// identical witness vectors (see TestRunSweep), and solving clones of
	// a shared snapshot explores the search space in a different order
	// than the from-scratch encodings that contract was defined over.
	// Everywhere else (single queries, enumeration, hardening) the cache
	// is on by default; -no-cache is the escape hatch.
	var dcache *core.EncodingCache
	if !*noCache && *sweepK < 0 {
		if *mutateStr != "" {
			// Delta-aware: -mutate evolves warm snapshots in place instead
			// of cold re-encoding the mutated structure.
			dcache = core.NewEncodingCache(core.CacheWithDelta())
		} else {
			dcache = core.NewEncodingCache()
		}
		opts = append(opts, core.WithEncodingCache(dcache))
	}
	if *presimp {
		opts = append(opts, core.WithPresimplify(true))
	}
	if *certify {
		opts = append(opts, core.WithCertification(true))
	}
	// The portfolio is gated off for -sweep for the same witness-stability
	// reason as the cache: UNSAT verdicts (and so resiliency indices) are
	// bit-identical either way, but a SAT race may adopt a different —
	// equally valid — model than serial search, and sweep output is
	// contracted to print identical witness vectors across worker counts.
	if *portfolio > 1 && *sweepK < 0 {
		opts = append(opts, core.WithPortfolio(*portfolio))
	}

	analyzer, err := core.NewAnalyzer(cfg, opts...)
	if err != nil {
		return err
	}

	if *mutateStr != "" {
		if *sweepK >= 0 {
			return fmt.Errorf("-mutate is incompatible with -sweep (sweep campaigns run uncached)")
		}
		delta, err := scadanet.ParseDelta(*mutateStr)
		if err != nil {
			return err
		}
		next, dirty, err := cfg.Apply(delta)
		if err != nil {
			return err
		}
		if dcache != nil {
			// Warm the delta-aware cache on the pre-mutation structure,
			// then evolve it: the mutated verification below re-encodes
			// only the dirty cone and carries root learnts over.
			pre, err := analyzer.Verify(q)
			if err != nil {
				return err
			}
			ms, err := dcache.Mutate(cfg, next, opts...)
			if err != nil {
				return err
			}
			if !*jsonOut {
				fmt.Fprintf(out, "pre-mutation: %v\n", pre)
				fmt.Fprintf(out, "mutation: %d groups reused, %d re-encoded, %d learnts carried\n",
					ms.DeltaReuse, ms.DeltaReencoded, ms.CarriedLearnts)
			}
		}
		if !*jsonOut {
			fmt.Fprintf(out, "delta: %s\n", delta)
			fmt.Fprintf(out, "dirty cone: devices=%v links=%v topology=%v\n",
				dirty.Devices, dirty.Links, dirty.Topology)
		}
		cfg = next
		if analyzer, err = core.NewAnalyzer(cfg, opts...); err != nil {
			return err
		}
	}

	if !*jsonOut {
		fmt.Fprintf(out, "system: %d states, %d measurements, %d IEDs, %d RTUs, %d links\n",
			cfg.Msrs.NStates, cfg.Msrs.Len(),
			len(cfg.Net.DevicesOfKind(scadanet.IED)),
			len(cfg.Net.DevicesOfKind(scadanet.RTU)),
			len(cfg.Net.Links()))
	}

	if *sweepK >= 0 {
		return runSweep(out, cfg, analyzer, prop, q.R, *sweepK, *workers, *stats, *jsonOut, *checkpoint, *keepGoing, opts)
	}

	res, err := analyzer.Verify(q)
	if err != nil {
		return err
	}
	var vectors []core.ThreatVector
	if !res.Resilient() && *enumerate > 0 {
		ck, err := openEnumerateCheckpoint(*checkpoint, cfg, q)
		if err != nil {
			return err
		}
		if vectors, err = analyzer.EnumerateThreatsResumable(q, *enumerate, ck); err != nil {
			return err
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(struct {
			Resilient bool                `json:"resilient"`
			Result    *core.Result        `json:"result"`
			Threats   []core.ThreatVector `json:"threats,omitempty"`
		}{res.Resilient(), res, vectors})
	}

	fmt.Fprintln(out, res)
	if *stats {
		fmt.Fprintln(out, "solver:", res.Stats)
		fmt.Fprintln(out, "phases:", res.Phases)
	}
	if vectors != nil {
		fmt.Fprintf(out, "threat vectors (%d):\n", len(vectors))
		for _, v := range vectors {
			fmt.Fprintf(out, "  %v\n", v)
		}
	}

	if !res.Resilient() && *harden {
		plan, err := hardening.Synthesize(cfg, q, hardening.Options{})
		if err != nil && !errors.Is(err, hardening.ErrNoProgress) {
			return err
		}
		fmt.Fprint(out, plan)
		if plan.Achieved && *hardenOut != "" {
			f, err := os.Create(*hardenOut)
			if err != nil {
				return err
			}
			defer f.Close()
			if err := scadanet.WriteConfig(f, plan.Config); err != nil {
				return err
			}
			fmt.Fprintf(out, "hardened configuration written to %s\n", *hardenOut)
		}
	}

	if *maxRes {
		mi, err := analyzer.MaxResiliency(prop, q.R, true, false)
		if err != nil {
			return err
		}
		mr, err := analyzer.MaxResiliency(prop, q.R, false, true)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "maximum resiliency: %d IED-only failures, %d RTU-only failures\n", mi, mr)
	}
	return nil
}

// openEnumerateCheckpoint opens (or disables, for an empty path) the
// threat-enumeration checkpoint, fingerprinted over the configuration
// and the query so a checkpoint from a different campaign is rejected.
func openEnumerateCheckpoint(path string, cfg *scadanet.Config, q core.Query) (*core.Checkpoint, error) {
	if path == "" {
		return nil, nil
	}
	fp, err := core.CampaignFingerprint(cfg, core.CheckpointKindEnumerate, q)
	if err != nil {
		return nil, err
	}
	return core.OpenCheckpoint(path, core.CheckpointKindEnumerate, fp)
}

// runSweep verifies the property under every combined budget k = 0..maxK.
// With one worker a single solver is reused incrementally across budgets
// (core.Sweep); with more, the budgets fan out over a core.Runner pool of
// independent solvers. Both paths report identical verdicts, share the
// same checkpoint format (entries keyed by k), and a checkpoint written
// under one worker count resumes under any other. In parallel keep-going
// mode (the default) per-query failures are isolated and reported at the
// end instead of aborting the campaign.
func runSweep(out io.Writer, cfg *scadanet.Config, analyzer *core.Analyzer, prop core.Property, r, maxK, workers int, stats, jsonOut bool, checkpointPath string, keepGoing bool, opts []core.Option) error {
	queries := make([]core.Query, 0, maxK+1)
	for k := 0; k <= maxK; k++ {
		queries = append(queries, core.Query{Property: prop, Combined: true, K: k, R: r})
	}

	var ck *core.Checkpoint
	if checkpointPath != "" {
		fp, err := core.CampaignFingerprint(cfg, core.CheckpointKindCampaign, queries)
		if err != nil {
			return err
		}
		if ck, err = core.OpenCheckpoint(checkpointPath, core.CheckpointKindCampaign, fp); err != nil {
			return err
		}
	}

	var results []*core.Result
	var errs []error
	if workers == 1 {
		sw, err := analyzer.NewSweep(prop, r, 0)
		if err != nil {
			return err
		}
		if results, err = sw.VerifyRange(maxK, ck); err != nil {
			return err
		}
	} else if keepGoing || ck != nil {
		outcomes, err := core.NewRunner(workers, opts...).VerifyAllResumable(context.Background(), cfg, queries, ck)
		if err != nil {
			return err
		}
		results = make([]*core.Result, len(outcomes))
		errs = make([]error, len(outcomes))
		for i, o := range outcomes {
			results[i], errs[i] = o.Result, o.Err
		}
	} else {
		var err error
		results, err = core.NewRunner(workers, opts...).VerifyAll(context.Background(), cfg, queries)
		if err != nil {
			return err
		}
	}

	if jsonOut {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(results)
	}
	failed := 0
	for i, res := range results {
		if res == nil {
			failed++
			if len(errs) > i && errs[i] != nil {
				fmt.Fprintf(out, "%v: ERROR — %v\n", queries[i], errs[i])
			} else {
				fmt.Fprintf(out, "%v: no result\n", queries[i])
			}
			continue
		}
		fmt.Fprintln(out, res)
		if stats {
			fmt.Fprintln(out, "  solver:", res.Stats)
			fmt.Fprintln(out, "  phases:", res.Phases)
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d sweep queries failed (results above are partial)", failed, len(queries))
	}
	return nil
}
