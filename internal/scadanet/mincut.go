package scadanet

// Link-redundancy analysis: the minimum number of link failures that
// disconnects a field device from the MTU (edge connectivity over the
// usable-forwarding subgraph). This is the graph-theoretic counterpart
// of the verifier's KL (link-failure) budget: an IED with min-cut c
// keeps delivering under any c-1 link failures and is cut by some set
// of c.

// LinkMinCut returns the minimum number of link removals that
// disconnect the IED from the MTU, considering only links whose
// protocol/crypto pairing permits communication (and, when secured,
// only hops that are authenticated and integrity protected under
// judge). Forwarding passes through RTUs and routers only, as in the
// delivery model. It returns 0 when the IED has no usable path at all.
//
// judge may be nil, in which case every up link with valid pairing is
// usable.
func (n *Network) LinkMinCut(ied DeviceID, judge func(*Link) bool) int {
	mtu := n.MTUID()
	src := n.Device(ied)
	if mtu == 0 || src == nil || src.Kind != IED {
		return 0
	}
	usable := func(l *Link) bool {
		if l.Down {
			return false
		}
		protoOK, cryptoOK := n.HopPairing(l)
		if !protoOK || !cryptoOK {
			return false
		}
		return judge == nil || judge(l)
	}

	// Max-flow (Edmonds-Karp) with unit capacity per link, both
	// directions sharing the capacity (undirected edge connectivity).
	type edge struct {
		to   DeviceID
		link LinkID
	}
	adj := map[DeviceID][]edge{}
	for _, l := range n.links {
		if !usable(l) {
			continue
		}
		adj[l.A] = append(adj[l.A], edge{to: l.B, link: l.ID})
		adj[l.B] = append(adj[l.B], edge{to: l.A, link: l.ID})
	}
	forwardable := func(d DeviceID) bool {
		if d == mtu || d == ied {
			return true
		}
		dev := n.Device(d)
		return dev != nil && (dev.Kind == RTU || dev.Kind == Router) && !dev.Down
	}

	// Edmonds-Karp with undirected unit capacities: per link track the
	// signed flow relative to the A→B orientation; a direction is
	// traversable while its net flow is below 1 (so augmenting against
	// existing flow cancels it, which plain greedy path packing cannot
	// do).
	linkByID := map[LinkID]*Link{}
	for _, l := range n.links {
		linkByID[l.ID] = l
	}
	flowAB := map[LinkID]int{}
	canTraverse := func(from DeviceID, id LinkID) bool {
		l := linkByID[id]
		if l.A == from {
			return flowAB[id] < 1
		}
		return flowAB[id] > -1
	}
	push := func(from DeviceID, id LinkID) {
		if linkByID[id].A == from {
			flowAB[id]++
		} else {
			flowAB[id]--
		}
	}

	total := 0
	for {
		type visit struct {
			prev DeviceID
			via  LinkID
		}
		prev := map[DeviceID]visit{}
		seen := map[DeviceID]bool{ied: true}
		queue := []DeviceID{ied}
		found := false
		for len(queue) > 0 && !found {
			at := queue[0]
			queue = queue[1:]
			for _, e := range adj[at] {
				if seen[e.to] || !forwardable(e.to) || !canTraverse(at, e.link) {
					continue
				}
				seen[e.to] = true
				prev[e.to] = visit{prev: at, via: e.link}
				if e.to == mtu {
					found = true
					break
				}
				queue = append(queue, e.to)
			}
		}
		if !found {
			return total
		}
		for d := mtu; d != ied; d = prev[d].prev {
			push(prev[d].prev, prev[d].via)
		}
		total++
	}
}

// The augmenting-path count equals the maximum number of link-disjoint
// IED→MTU paths, which by Menger's theorem equals the minimum link cut.
