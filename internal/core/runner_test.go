package core

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"scadaver/internal/powergrid"
	"scadaver/internal/sat"
	"scadaver/internal/scadanet"
	"scadaver/internal/synth"
)

// campaignQueries is a representative mixed campaign: every property,
// combined and split budgets, over one topology.
func campaignQueries(maxK int) []Query {
	var qs []Query
	for k := 0; k <= maxK; k++ {
		qs = append(qs,
			Query{Property: Observability, Combined: true, K: k},
			Query{Property: SecuredObservability, Combined: true, K: k},
			Query{Property: BadDataDetectability, Combined: true, K: k, R: 1},
			Query{Property: Observability, K1: k, K2: 1},
		)
	}
	return qs
}

func synthConfig(t testing.TB, sys *powergrid.BusSystem, seed int64, hierarchy int) *scadanet.Config {
	t.Helper()
	cfg, err := synth.Generate(synth.Params{Bus: sys, Seed: seed, Hierarchy: hierarchy, SecureFraction: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

// TestRunnerMatchesSerial asserts the determinism contract: a parallel
// campaign returns, index by index, exactly the results of the serial
// one — same status, same minimized threat vector.
func TestRunnerMatchesSerial(t *testing.T) {
	cfg := synthConfig(t, powergrid.IEEE14(), 41, 2)
	queries := campaignQueries(3)

	serial := make([]*Result, len(queries))
	a, err := NewAnalyzer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range queries {
		if serial[i], err = a.Verify(q); err != nil {
			t.Fatal(err)
		}
	}

	parallel, err := NewRunner(8).VerifyAll(context.Background(), cfg, queries)
	if err != nil {
		t.Fatal(err)
	}
	for i := range queries {
		if parallel[i] == nil {
			t.Fatalf("query %d: missing parallel result", i)
		}
		if parallel[i].Status != serial[i].Status {
			t.Fatalf("query %v: parallel %v != serial %v", queries[i], parallel[i].Status, serial[i].Status)
		}
		got, want := fmt.Sprint(parallel[i].Vector), fmt.Sprint(serial[i].Vector)
		if got != want {
			t.Fatalf("query %v: parallel vector %s != serial %s", queries[i], got, want)
		}
		if parallel[i].Stats.Solves == 0 {
			t.Fatalf("query %v: per-solve stats not populated: %+v", queries[i], parallel[i].Stats)
		}
	}
}

// TestRunnerSharedTopologyRace drives many concurrent workers over one
// shared Config; under -race this pins the ownership rule (solvers are
// private, the topology is read-only).
func TestRunnerSharedTopologyRace(t *testing.T) {
	cfg := synthConfig(t, powergrid.IEEE30(), 5, 2)
	queries := campaignQueries(2)
	results, err := NewRunner(16).VerifyAll(context.Background(), cfg, queries)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range results {
		if res == nil {
			t.Fatalf("query %d: nil result", i)
		}
		if res.Status == sat.Unsolved {
			t.Fatalf("query %v: unsolved without budget or cancellation", queries[i])
		}
	}
}

// TestRunnerCancellation cancels a long campaign mid-flight and expects
// a prompt return with the context error and nil entries for abandoned
// queries.
func TestRunnerCancellation(t *testing.T) {
	cfg := synthConfig(t, powergrid.IEEE57(), 57003, 3)
	queries := campaignQueries(8)

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	results, err := NewRunner(4).VerifyAll(ctx, cfg, queries)
	elapsed := time.Since(start)

	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Generous bound: an uninterrupted ieee57 campaign takes far longer.
	if elapsed > 10*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
	nils := 0
	for _, res := range results {
		if res == nil {
			nils++
		} else if res.Status == sat.Unsolved {
			t.Fatal("interrupted solves must be dropped, not reported as unsolved")
		}
	}
	if nils == 0 {
		t.Fatal("cancellation abandoned no queries; campaign finished before cancel")
	}
}

// TestRunnerPreCancelled asserts a cancelled context does no work.
func TestRunnerPreCancelled(t *testing.T) {
	cfg := synthConfig(t, powergrid.IEEE14(), 1, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results, err := NewRunner(2).VerifyAll(ctx, cfg, campaignQueries(1))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	for i, res := range results {
		if res != nil {
			t.Fatalf("query %d ran despite pre-cancelled context", i)
		}
	}
}

// TestRunnerErrorStopsCampaign asserts the first task error aborts the
// run and is returned.
func TestRunnerErrorStopsCampaign(t *testing.T) {
	cfg := synthConfig(t, powergrid.IEEE14(), 1, 1)
	queries := campaignQueries(2)
	queries[3] = Query{Property: Property(99)} // invalid
	_, err := NewRunner(4).VerifyAll(context.Background(), cfg, queries)
	if !errors.Is(err, ErrBadQuery) {
		t.Fatalf("err = %v, want ErrBadQuery", err)
	}
}

// TestRunnerRunEach checks the generic pool: per-worker setup runs once
// per worker and every index is processed exactly once.
func TestRunnerRunEach(t *testing.T) {
	const n = 100
	var setups, done atomic.Int64
	seen := make([]atomic.Int64, n)
	r := NewRunner(7)
	err := r.RunEach(context.Background(), n, func(context.Context) (func(int) error, error) {
		setups.Add(1)
		return func(i int) error {
			seen[i].Add(1)
			done.Add(1)
			return nil
		}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := done.Load(); got != n {
		t.Fatalf("tasks done = %d, want %d", got, n)
	}
	for i := range seen {
		if seen[i].Load() != 1 {
			t.Fatalf("index %d processed %d times", i, seen[i].Load())
		}
	}
	if s := setups.Load(); s < 1 || s > 7 {
		t.Fatalf("setups = %d, want 1..7", s)
	}
}
