package powergrid

import (
	"errors"
	"fmt"
)

// Branch is a transmission line between two buses (1-based IDs) with a
// DC susceptance (1/x).
type Branch struct {
	From, To    int
	Susceptance float64
}

// BusSystem is a transmission network: NBuses buses connected by
// Branches. Bus IDs are 1..NBuses.
type BusSystem struct {
	Name     string
	NBuses   int
	Branches []Branch
}

// Validation errors.
var (
	ErrNoBuses      = errors.New("powergrid: system has no buses")
	ErrBadBranch    = errors.New("powergrid: branch endpoint out of range")
	ErrSelfLoop     = errors.New("powergrid: branch connects a bus to itself")
	ErrDisconnected = errors.New("powergrid: bus system is not connected")
)

// Validate checks structural sanity: bus IDs in range, no self loops,
// and a connected network.
func (b *BusSystem) Validate() error {
	if b.NBuses <= 0 {
		return ErrNoBuses
	}
	for i, br := range b.Branches {
		if br.From < 1 || br.From > b.NBuses || br.To < 1 || br.To > b.NBuses {
			return fmt.Errorf("%w: branch %d (%d-%d) with %d buses", ErrBadBranch, i, br.From, br.To, b.NBuses)
		}
		if br.From == br.To {
			return fmt.Errorf("%w: branch %d (%d-%d)", ErrSelfLoop, i, br.From, br.To)
		}
	}
	if !b.connected() {
		return ErrDisconnected
	}
	return nil
}

func (b *BusSystem) connected() bool {
	if b.NBuses == 1 {
		return true
	}
	adj := b.Adjacency()
	seen := make([]bool, b.NBuses+1)
	stack := []int{1}
	seen[1] = true
	count := 1
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range adj[u] {
			if !seen[v] {
				seen[v] = true
				count++
				stack = append(stack, v)
			}
		}
	}
	return count == b.NBuses
}

// Adjacency returns the neighbor lists indexed by bus ID (entry 0 is
// unused).
func (b *BusSystem) Adjacency() [][]int {
	adj := make([][]int, b.NBuses+1)
	for _, br := range b.Branches {
		adj[br.From] = append(adj[br.From], br.To)
		adj[br.To] = append(adj[br.To], br.From)
	}
	return adj
}

// Degree returns the degree of each bus indexed by bus ID.
func (b *BusSystem) Degree() []int {
	deg := make([]int, b.NBuses+1)
	for _, br := range b.Branches {
		deg[br.From]++
		deg[br.To]++
	}
	return deg
}

// AverageDegree returns the mean bus degree (2L/N), which for real power
// grids sits near 3 regardless of size.
func (b *BusSystem) AverageDegree() float64 {
	if b.NBuses == 0 {
		return 0
	}
	return 2 * float64(len(b.Branches)) / float64(b.NBuses)
}

// MaxMeasurements returns the size of the full measurement set: one flow
// measurement per line end plus one injection per bus (2L + N).
func (b *BusSystem) MaxMeasurements() int {
	return 2*len(b.Branches) + b.NBuses
}
