package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"strings"
)

// Setup wires the standard CLI observability endpoints shared by
// scada-analyzer and scada-bench:
//
//   - traceFile != "": a JSONL span trace is written there; the
//     returned root span (named rootName) is the parent for all query
//     spans of the run.
//   - metricsFile != "": a Registry is created and exported to the file
//     on close — Prometheus text format, or JSON when the path ends in
//     ".json".
//   - pprofAddr != "": a net/http/pprof debug server is served on that
//     address for live CPU/heap/goroutine profiling of long campaigns.
//
// Disabled endpoints yield nil values, which downstream instrumentation
// treats as no-ops. The returned close function ends the root span,
// flushes and closes the files, stops the pprof listener, and returns
// the first error; call it exactly once after the traced work finishes.
func Setup(rootName, traceFile, metricsFile, pprofAddr string) (*Span, *Registry, func() error, error) {
	var closers []func() error
	closeAll := func() error {
		var first error
		for _, c := range closers {
			if err := c(); err != nil && first == nil {
				first = err
			}
		}
		closers = nil
		return first
	}

	var root *Span
	if traceFile != "" {
		f, err := os.Create(traceFile)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("obs: create trace file: %w", err)
		}
		tracer := NewTracer(f)
		root = tracer.Start(rootName)
		closers = append(closers, func() error {
			root.End()
			err := tracer.Err()
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			return err
		})
	}

	var reg *Registry
	if metricsFile != "" {
		reg = NewRegistry()
		RecordBuildInfo(reg)
		closers = append(closers, func() error {
			f, err := os.Create(metricsFile)
			if err != nil {
				return fmt.Errorf("obs: create metrics file: %w", err)
			}
			if strings.HasSuffix(metricsFile, ".json") {
				err = reg.WriteJSON(f)
			} else {
				err = reg.WritePrometheus(f)
			}
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			return err
		})
	}

	if pprofAddr != "" {
		ln, err := net.Listen("tcp", pprofAddr)
		if err != nil {
			closeAll()
			return nil, nil, nil, fmt.Errorf("obs: pprof listener: %w", err)
		}
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		srv := &http.Server{Handler: mux}
		go srv.Serve(ln) //nolint:errcheck // reported via Close below
		closers = append(closers, func() error {
			// Close (not Shutdown): profile scrapes should not delay
			// process exit once the campaign is done.
			return srv.Close()
		})
	}

	return root, reg, closeAll, nil
}
