package attacksim

import (
	"errors"
	"strings"
	"testing"
	"time"

	"scadaver/internal/core"
	"scadaver/internal/scadanet"
)

func newSim(t *testing.T) *Simulator {
	t.Helper()
	cfg, err := scadanet.CaseStudyConfig(false)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestQuietScenarioFullyAvailable(t *testing.T) {
	s := newSim(t)
	tl, err := s.Run(Scenario{Name: "quiet", Horizon: 10 * time.Second, Step: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if len(tl.Samples) != 11 {
		t.Fatalf("samples = %d", len(tl.Samples))
	}
	if got := tl.Availability(core.Observability); got != 1 {
		t.Fatalf("observability availability = %v", got)
	}
	if tl.WorstConcurrentFailures() != 0 {
		t.Fatal("quiet scenario has failures")
	}
	for _, smp := range tl.Samples {
		if smp.Delivered != 14 {
			t.Fatalf("delivered = %d at %v", smp.Delivered, smp.At)
		}
		if smp.Secured >= smp.Delivered {
			t.Fatalf("secured %d should be < delivered %d (IEDs 1 and 4 insecure)", smp.Secured, smp.Delivered)
		}
	}
}

func TestDoSBurstTimeline(t *testing.T) {
	s := newSim(t)
	// Take down RTU 9 from t=3s to t=6s.
	sc := DoSBurst("dos-rtu9", []scadanet.DeviceID{9}, 3*time.Second, 3*time.Second, 10*time.Second, time.Second)
	tl, err := s.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	for _, smp := range tl.Samples {
		inBurst := smp.At >= 3*time.Second && smp.At < 6*time.Second
		if inBurst {
			if len(smp.DownDevices) != 1 || smp.DownDevices[0] != 9 {
				t.Fatalf("at %v: down = %v", smp.At, smp.DownDevices)
			}
			if smp.Delivered != 14-4 { // IEDs 1,2,3 (msrs 1,2,3,5,11) lost? RTU 9 carries IEDs 1-3
				// IEDs 1,2,3 transmit 5 measurements (1,2,3,5,11).
				if smp.Delivered != 9 {
					t.Fatalf("at %v: delivered = %d", smp.At, smp.Delivered)
				}
			}
			// The case study tolerates any single RTU failure.
			if !smp.Observable {
				t.Fatalf("at %v: single RTU failure must keep observability", smp.At)
			}
		} else if len(smp.DownDevices) != 0 {
			t.Fatalf("at %v: unexpected failures %v", smp.At, smp.DownDevices)
		}
	}
	if got := tl.Availability(core.Observability); got != 1 {
		t.Fatalf("availability = %v", got)
	}
	if tl.WorstConcurrentFailures() != 1 {
		t.Fatalf("worst failures = %d", tl.WorstConcurrentFailures())
	}
}

// TestCertifiedResiliencyHoldsOnTimeline is the key soundness link: a
// (1,1)-certified property never drops while the campaign stays within
// one IED + one RTU down.
func TestCertifiedResiliencyHoldsOnTimeline(t *testing.T) {
	cfg, err := scadanet.CaseStudyConfig(false)
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.NewAnalyzer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := a.Verify(core.Query{Property: core.Observability, K1: 1, K2: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Resilient() {
		t.Fatal("precondition: (1,1)-resilient observable")
	}

	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Overlapping bursts: one IED and one RTU at a time, rolling.
	sc := Scenario{Name: "rolling", Horizon: 20 * time.Second, Step: time.Second}
	sc.Events = append(sc.Events,
		Event{At: 1 * time.Second, Kind: DeviceDown, Device: 7}, // IED
		Event{At: 5 * time.Second, Kind: DeviceUp, Device: 7},
		Event{At: 3 * time.Second, Kind: DeviceDown, Device: 11}, // RTU
		Event{At: 9 * time.Second, Kind: DeviceUp, Device: 11},
		Event{At: 10 * time.Second, Kind: DeviceDown, Device: 1},
		Event{At: 15 * time.Second, Kind: DeviceUp, Device: 1},
		Event{At: 12 * time.Second, Kind: DeviceDown, Device: 9},
		Event{At: 18 * time.Second, Kind: DeviceUp, Device: 9},
	)
	tl, err := s.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if got := tl.Availability(core.Observability); got != 1 {
		t.Fatalf("certified (1,1) resiliency violated on timeline: availability %v", got)
	}
}

func TestCascadeEventuallyBreaks(t *testing.T) {
	s := newSim(t)
	// Cascading RTU failures: after all RTUs are gone, nothing delivers.
	sc := Cascade("cascade", []scadanet.DeviceID{9, 10, 11, 12}, time.Second, time.Second, 10*time.Second, time.Second)
	tl, err := s.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	last := tl.Samples[len(tl.Samples)-1]
	if last.Delivered != 0 || last.Observable {
		t.Fatalf("all RTUs down: delivered=%d observable=%v", last.Delivered, last.Observable)
	}
	if got := tl.Availability(core.Observability); got >= 1 {
		t.Fatalf("availability = %v, expected loss", got)
	}
	if tl.WorstConcurrentFailures() != 4 {
		t.Fatalf("worst = %d", tl.WorstConcurrentFailures())
	}
	// Availability is monotonically... the samples after full cascade
	// are all unobservable.
	broken := false
	for _, smp := range tl.Samples {
		if !smp.Observable {
			broken = true
		} else if broken {
			t.Fatal("observability recovered without recovery events")
		}
	}
}

func TestLinkEvents(t *testing.T) {
	s := newSim(t)
	cfg, err := scadanet.CaseStudyConfig(false)
	if err != nil {
		t.Fatal(err)
	}
	l := cfg.Net.LinkBetween(14, 13) // router-MTU backbone
	sc := Scenario{
		Name:    "backbone-cut",
		Horizon: 4 * time.Second,
		Step:    time.Second,
		Events: []Event{
			{At: 1 * time.Second, Kind: LinkDown, Link: l.ID},
			{At: 3 * time.Second, Kind: LinkUp, Link: l.ID},
		},
	}
	tl, err := s.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	// With the backbone cut nothing reaches the MTU.
	cut := tl.Samples[1]
	if cut.Delivered != 0 || cut.Observable {
		t.Fatalf("backbone cut: delivered=%d observable=%v", cut.Delivered, cut.Observable)
	}
	// After recovery everything flows again.
	final := tl.Samples[len(tl.Samples)-1]
	if final.Delivered != 14 {
		t.Fatalf("after recovery: delivered=%d", final.Delivered)
	}
}

func TestScenarioValidation(t *testing.T) {
	s := newSim(t)
	if _, err := s.Run(Scenario{Step: time.Second}); !errors.Is(err, ErrNoHorizon) {
		t.Fatalf("want ErrNoHorizon, got %v", err)
	}
	if _, err := s.Run(Scenario{Horizon: time.Second}); !errors.Is(err, ErrNoStep) {
		t.Fatalf("want ErrNoStep, got %v", err)
	}
}

func TestEventStrings(t *testing.T) {
	e := Event{At: time.Second, Kind: DeviceDown, Device: 5}
	if !strings.Contains(e.String(), "device 5") {
		t.Fatalf("String = %q", e.String())
	}
	e2 := Event{At: time.Second, Kind: LinkUp, Link: 3}
	if !strings.Contains(e2.String(), "link 3") {
		t.Fatalf("String = %q", e2.String())
	}
	if EventKind(0).String() != "unknown" {
		t.Fatal("zero kind")
	}
}

func TestAvailabilityEmptyTimeline(t *testing.T) {
	tl := &Timeline{}
	if tl.Availability(core.Observability) != 0 {
		t.Fatal("empty timeline availability")
	}
}
