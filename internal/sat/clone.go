package sat

// Clone returns an independent deep copy of the solver at the root
// level: variables, root-level assignments, problem and learned clauses,
// watches, activities, saved phases, and the elimination stack of a
// previous Simplify all carry over; per-solve hooks (interrupt, conflict
// hook, progress probe, proof writer) and the cumulative statistics do
// not — portfolio replicas install their own recording proof hooks. The copy
// shares no mutable state with the original, so clones may be solved
// concurrently — this is what the encoding cache hands out per query.
//
// Clone must be taken at decision level 0 (any active search is unwound
// first). Root-level antecedents are dropped in the copy: conflict
// analysis never resolves on level-0 assignments, so reasons there are
// dead weight.
func (s *Solver) Clone() *Solver {
	s.cancelUntil(0)
	nv := len(s.assigns)
	n := &Solver{
		varInc:         s.varInc,
		varDecay:       s.varDecay,
		clauseInc:      s.clauseInc,
		clauseDecay:    s.clauseDecay,
		maxLearned:     s.maxLearned,
		restartBase:    s.restartBase,
		restartGeom:    s.restartGeom,
		inprocess:      s.inprocess,
		geomLimit:      s.geomLimit,
		lubyIdx:        s.lubyIdx,
		conflictBudget: s.conflictBudget,
		rootUnsat:      s.rootUnsat,
		levelSeen:      make(map[int]bool, 32),
		assigns:        append([]Tribool(nil), s.assigns...),
		level:          append([]int(nil), s.level...),
		reason:         make([]*clause, nv),
		trail:          append([]Lit(nil), s.trail...),
		activity:       append([]float64(nil), s.activity...),
		polarity:       append([]bool(nil), s.polarity...),
		seen:           make([]bool, nv),
		frozen:         append([]bool(nil), s.frozen...),
		eliminated:     append([]bool(nil), s.eliminated...),
		elimStack:      append([]elimRecord(nil), s.elimStack...),
		watches:        make([][]watcher, 2*nv),
	}
	n.qhead = len(n.trail)
	n.order = newActivityHeap(&n.activity)
	for v := Var(0); int(v) < nv; v++ {
		if n.assigns[v] == Unknown && !n.eliminated[v] {
			n.order.push(v)
		}
	}
	for _, c := range s.clauses {
		if c.deleted {
			continue
		}
		cc := &clause{lits: append([]Lit(nil), c.lits...), act: c.act, lbd: c.lbd}
		n.clauses = append(n.clauses, cc)
		n.attach(cc)
	}
	for _, c := range s.learned {
		if c.deleted {
			continue
		}
		cc := &clause{lits: append([]Lit(nil), c.lits...), act: c.act, lbd: c.lbd, learned: true}
		n.learned = append(n.learned, cc)
		n.attach(cc)
	}
	n.stats.MaxVars = nv
	return n
}
