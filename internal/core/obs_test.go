package core

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"testing"

	"scadaver/internal/obs"
	"scadaver/internal/powergrid"
	"scadaver/internal/sat"
	"scadaver/internal/scadanet"
	"scadaver/internal/synth"
)

// traceRec mirrors the obs JSONL record for assertions.
type traceRec struct {
	Ev     string         `json:"ev"`
	ID     uint64         `json:"id"`
	Parent uint64         `json:"parent"`
	Span   uint64         `json:"span"`
	Name   string         `json:"name"`
	T      int64          `json:"tNanos"`
	Dur    int64          `json:"durNanos"`
	Attrs  map[string]any `json:"attrs"`
}

func parseTrace(t *testing.T, buf *bytes.Buffer) []traceRec {
	t.Helper()
	var recs []traceRec
	sc := bufio.NewScanner(buf)
	for sc.Scan() {
		var r traceRec
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("invalid JSONL line %q: %v", sc.Text(), err)
		}
		recs = append(recs, r)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return recs
}

// assertSpansBalanced checks that every begun span has exactly one end
// record and that parents exist, and returns begin records by id.
func assertSpansBalanced(t *testing.T, recs []traceRec) map[uint64]traceRec {
	t.Helper()
	begins := map[uint64]traceRec{}
	ends := map[uint64]int{}
	for _, r := range recs {
		switch r.Ev {
		case "begin":
			if _, dup := begins[r.ID]; dup {
				t.Fatalf("duplicate begin for span %d", r.ID)
			}
			begins[r.ID] = r
		case "end":
			ends[r.ID]++
		}
	}
	for id, b := range begins {
		if ends[id] != 1 {
			t.Errorf("span %d (%s) has %d end records, want 1", id, b.Name, ends[id])
		}
		if b.Parent != 0 {
			if _, ok := begins[b.Parent]; !ok {
				t.Errorf("span %d (%s) has unknown parent %d", id, b.Name, b.Parent)
			}
		}
	}
	return begins
}

func TestVerifyPhaseTimes(t *testing.T) {
	cfg, err := scadanet.CaseStudyConfig(false)
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewAnalyzer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := a.Verify(Query{Property: SecuredObservability, K1: 1, K2: 1})
	if err != nil {
		t.Fatal(err)
	}
	ph := res.Phases
	if ph.Build <= 0 || ph.Encode <= 0 || ph.Solve <= 0 {
		t.Fatalf("phase times not populated: %v", ph)
	}
	if res.Status == sat.Sat && ph.Decode <= 0 {
		t.Fatalf("sat result without decode time: %v", ph)
	}
	if sum := ph.Sum(); sum > res.Duration {
		t.Fatalf("phases sum %v exceeds total %v", sum, res.Duration)
	}
}

// TestVerifyTraceNesting verifies the span tree of a traced
// verification: root → query → phase children, with phase durations
// bounded by (and in aggregate close to) the query span's duration.
func TestVerifyTraceNesting(t *testing.T) {
	var buf bytes.Buffer
	tracer := obs.NewTracer(&buf)
	root := tracer.Start("test")

	cfg, err := scadanet.CaseStudyConfig(false)
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewAnalyzer(cfg, WithTrace(root))
	if err != nil {
		t.Fatal(err)
	}
	res, err := a.Verify(Query{Property: Observability, K1: 2, K2: 1})
	if err != nil {
		t.Fatal(err)
	}
	root.End()
	if err := tracer.Err(); err != nil {
		t.Fatal(err)
	}

	recs := parseTrace(t, &buf)
	begins := assertSpansBalanced(t, recs)

	var rootID, queryID uint64
	for id, b := range begins {
		switch b.Name {
		case "test":
			rootID = id
		case "query":
			queryID = id
		}
	}
	if rootID == 0 || queryID == 0 {
		t.Fatalf("missing root/query spans in %v", begins)
	}
	if begins[queryID].Parent != rootID {
		t.Fatalf("query span parent = %d, want root %d", begins[queryID].Parent, rootID)
	}

	wantPhases := map[string]bool{"build": false, "encode": false, "solve": false}
	if res.Status == sat.Sat {
		wantPhases["decode"] = false
	}
	var queryDur, phaseSum int64
	for _, r := range recs {
		if r.Ev != "end" {
			continue
		}
		if r.ID == queryID {
			queryDur = r.Dur
		}
		if _, ok := wantPhases[r.Name]; ok {
			wantPhases[r.Name] = true
			phaseSum += r.Dur
			if begins[r.ID].Parent != queryID {
				t.Errorf("phase %s parent = %d, want query %d", r.Name, begins[r.ID].Parent, queryID)
			}
		}
	}
	for name, seen := range wantPhases {
		if !seen {
			t.Errorf("phase span %q missing from trace", name)
		}
	}
	if queryDur <= 0 {
		t.Fatal("query span has no duration")
	}
	if phaseSum > queryDur {
		t.Fatalf("phase durations (%d ns) exceed query span (%d ns)", phaseSum, queryDur)
	}
}

// TestTraceCancelledSolveClosesSpans interrupts a long solve via the
// cooperative cancellation hook and asserts the verification still
// returns through the normal path — status Unsolved — with every begun
// span closed. This is the trace-integrity guarantee for cancelled
// campaigns.
func TestTraceCancelledSolveClosesSpans(t *testing.T) {
	cfg, err := synth.Generate(synth.Params{
		Bus:            powergrid.IEEE57(),
		Seed:           3,
		Hierarchy:      2,
		SecureFraction: 0.9,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	tracer := obs.NewTracer(&buf)
	root := tracer.Start("cancelled-run")
	a, err := NewAnalyzer(cfg,
		WithTrace(root),
		WithInterrupt(func() bool { return true }))
	if err != nil {
		t.Fatal(err)
	}
	res, err := a.Verify(Query{Property: SecuredObservability, Combined: true, K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != sat.Unsolved {
		t.Fatalf("interrupted solve = %v, want unsolved", res.Status)
	}
	root.End()
	recs := parseTrace(t, &buf)
	begins := assertSpansBalanced(t, recs)
	found := false
	for _, b := range begins {
		if b.Name == "solve" {
			found = true
		}
	}
	if !found {
		t.Fatal("no solve span in cancelled trace")
	}
}

// TestSweepTraceAndMetrics checks the incremental path: sweep queries
// produce query spans with encode/solve children and per-solve metric
// deltas, all under one shared solver.
func TestSweepTraceAndMetrics(t *testing.T) {
	cfg, err := scadanet.CaseStudyConfig(false)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	tracer := obs.NewTracer(&buf)
	root := tracer.Start("sweep-run")
	reg := obs.NewRegistry()
	a, err := NewAnalyzer(cfg, WithTrace(root), WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	sw, err := a.NewSweep(Observability, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	const maxK = 3
	for k := 0; k <= maxK; k++ {
		res, err := sw.VerifyK(k)
		if err != nil {
			t.Fatal(err)
		}
		if res.Phases.Solve <= 0 {
			t.Fatalf("k=%d: no solve phase time", k)
		}
	}
	root.End()

	begins := assertSpansBalanced(t, parseTrace(t, &buf))
	queries := 0
	for _, b := range begins {
		if b.Name == "query" {
			queries++
		}
	}
	if queries != maxK+1 {
		t.Fatalf("traced %d query spans, want %d", queries, maxK+1)
	}

	var total float64
	for k := 0; k <= maxK; k++ {
		q := Query{Property: Observability, Combined: true, K: k}
		var status string
		if k <= 1 {
			status = "unsat" // case study is (1,1)-resilient
		} else {
			status = "sat"
		}
		total += reg.Counter("scadaver_queries_total", map[string]string{
			"property": "observability",
			"k":        budgetLabel(q),
			"status":   status,
		})
	}
	if total != float64(maxK+1) {
		t.Fatalf("metrics recorded %v sweep queries, want %d", total, maxK+1)
	}
}

// TestRunnerMetricsParallelMatchesSerial hammers one registry from all
// Runner workers and asserts every counter equals the serial run's —
// the aggregation across workers must lose nothing (run with -race).
func TestRunnerMetricsParallelMatchesSerial(t *testing.T) {
	cfg, err := scadanet.CaseStudyConfig(false)
	if err != nil {
		t.Fatal(err)
	}
	var queries []Query
	for k := 0; k <= 4; k++ {
		queries = append(queries,
			Query{Property: Observability, Combined: true, K: k},
			Query{Property: SecuredObservability, Combined: true, K: k},
			Query{Property: BadDataDetectability, Combined: true, K: k, R: 1},
		)
	}

	runWith := func(workers int) obs.Snapshot {
		reg := obs.NewRegistry()
		r := NewRunner(workers, WithMetrics(reg))
		if _, err := r.VerifyAll(context.Background(), cfg, queries); err != nil {
			t.Fatal(err)
		}
		return reg.Snapshot()
	}
	serial := runWith(1)
	parallel := runWith(8)

	key := func(c obs.CounterSnapshot) string { return fmt.Sprintf("%s%v", c.Name, c.Labels) }
	sc := map[string]float64{}
	for _, c := range serial.Counters {
		sc[key(c)] = c.Value
	}
	if len(parallel.Counters) != len(serial.Counters) {
		t.Fatalf("parallel run has %d counter series, serial %d", len(parallel.Counters), len(serial.Counters))
	}
	for _, c := range parallel.Counters {
		if want, ok := sc[key(c)]; !ok || c.Value != want {
			t.Errorf("counter %s = %v, serial run had %v", key(c), c.Value, want)
		}
	}
	// Histogram observation counts (not sums: timings differ) must match.
	hkey := func(h obs.HistogramSnapshot) string { return fmt.Sprintf("%s%v", h.Name, h.Labels) }
	sh := map[string]uint64{}
	for _, h := range serial.Histograms {
		sh[hkey(h)] = h.Count
	}
	for _, h := range parallel.Histograms {
		if want, ok := sh[hkey(h)]; !ok || h.Count != want {
			t.Errorf("histogram %s count = %d, serial run had %d", hkey(h), h.Count, want)
		}
	}
}

// TestEnumerateTraceSpan asserts enumeration is wrapped in one span
// annotated with the number of vectors found.
func TestEnumerateTraceSpan(t *testing.T) {
	cfg, err := scadanet.CaseStudyConfig(false)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	tracer := obs.NewTracer(&buf)
	root := tracer.Start("enum-run")
	a, err := NewAnalyzer(cfg, WithTrace(root))
	if err != nil {
		t.Fatal(err)
	}
	vs, err := a.EnumerateThreats(Query{Property: Observability, K1: 2, K2: 1}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) == 0 {
		t.Fatal("expected threat vectors")
	}
	root.End()
	recs := parseTrace(t, &buf)
	assertSpansBalanced(t, recs)
	for _, r := range recs {
		if r.Ev == "end" && r.Name == "enumerate" {
			if got, ok := r.Attrs["vectors"].(float64); !ok || int(got) != len(vs) {
				t.Fatalf("enumerate span vectors = %v, want %d", r.Attrs["vectors"], len(vs))
			}
			return
		}
	}
	t.Fatal("no enumerate span end record")
}
