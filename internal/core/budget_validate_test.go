package core

import (
	"errors"
	"testing"
	"time"

	"scadaver/internal/powergrid"
)

func TestBudgetValidate(t *testing.T) {
	cases := []struct {
		name   string
		budget QueryBudget
		ok     bool
	}{
		{name: "zero value", budget: QueryBudget{}, ok: true},
		{name: "sensible", budget: QueryBudget{Deadline: time.Second, Conflicts: 100, Retries: 2, Escalate: 1.5}, ok: true},
		{name: "escalate zero selects default", budget: QueryBudget{Deadline: time.Second}, ok: true},
		{name: "negative deadline", budget: QueryBudget{Deadline: -time.Millisecond}, ok: false},
		{name: "negative retries", budget: QueryBudget{Retries: -1}, ok: false},
		{name: "negative escalation", budget: QueryBudget{Escalate: -2}, ok: false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.budget.Validate()
			if tc.ok && err != nil {
				t.Fatalf("Validate(%+v) = %v, want nil", tc.budget, err)
			}
			if !tc.ok {
				if err == nil {
					t.Fatalf("Validate(%+v) = nil, want error", tc.budget)
				}
				if !errors.Is(err, ErrBadBudget) {
					t.Fatalf("Validate(%+v) = %v, does not wrap ErrBadBudget", tc.budget, err)
				}
			}
		})
	}
}

// TestNewAnalyzerRejectsBadBudget pins the regression: a nonsensical
// budget used to be accepted silently — a negative deadline produced an
// analyzer whose solves never expired. It must fail construction.
func TestNewAnalyzerRejectsBadBudget(t *testing.T) {
	cfg := synthConfig(t, powergrid.Case5(), 7, 1)

	for _, b := range []QueryBudget{
		{Deadline: -time.Second},
		{Retries: -3},
		{Deadline: time.Second, Escalate: -1},
	} {
		if _, err := NewAnalyzer(cfg, WithBudget(b)); !errors.Is(err, ErrBadBudget) {
			t.Fatalf("NewAnalyzer with budget %+v: err = %v, want ErrBadBudget", b, err)
		}
	}

	// A valid budget still constructs.
	if _, err := NewAnalyzer(cfg, WithBudget(QueryBudget{Deadline: time.Second, Retries: 1})); err != nil {
		t.Fatalf("NewAnalyzer with a valid budget: %v", err)
	}
}

func TestBudgetClamp(t *testing.T) {
	ceiling := QueryBudget{Deadline: 10 * time.Second, Conflicts: 1000, Retries: 2, Escalate: 2}

	// Unset unbounded fields (deadline, conflicts) inherit the
	// ceiling's bounds; unset retries stay zero — zero means "no
	// retries", and inheriting the ceiling's count would grant work the
	// caller never asked for.
	got := QueryBudget{}.Clamp(ceiling)
	if got.Deadline != ceiling.Deadline || got.Conflicts != ceiling.Conflicts ||
		got.Retries != 0 || got.Escalate != ceiling.Escalate {
		t.Fatalf("zero budget clamped to %+v, want bounds of %+v with zero retries", got, ceiling)
	}

	// Looser-than-ceiling values are pulled down.
	got = QueryBudget{Deadline: time.Hour, Conflicts: 1 << 30, Retries: 99}.Clamp(ceiling)
	if got.Deadline != ceiling.Deadline || got.Conflicts != ceiling.Conflicts || got.Retries != ceiling.Retries {
		t.Fatalf("loose budget clamped to %+v, want ceiling bounds %+v", got, ceiling)
	}

	// Tighter values pass through untouched.
	tight := QueryBudget{Deadline: time.Second, Conflicts: 10, Retries: 1, Escalate: 3}
	if got = tight.Clamp(ceiling); got != tight {
		t.Fatalf("tight budget clamped to %+v, want unchanged %+v", got, tight)
	}

	// A zero ceiling field imposes no bound.
	unbounded := QueryBudget{Deadline: time.Hour, Retries: 7}
	got = unbounded.Clamp(QueryBudget{})
	if got.Deadline != time.Hour || got.Retries != 7 {
		t.Fatalf("zero ceiling changed the budget: %+v", got)
	}
}
