package icsproto

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
)

// Secure-session errors.
var (
	ErrKeySize = errors.New("icsproto: bad key size")
	ErrTag     = errors.New("icsproto: integrity tag verification failed")
	ErrReplay  = errors.New("icsproto: replayed or reordered sequence number")
	ErrSealed  = errors.New("icsproto: sealed message malformed")
)

const (
	tagLen   = 32 // HMAC-SHA-256
	seqLen   = 4
	gcmNonce = 12
)

// Session is one directional secure channel between two SCADA devices,
// in the spirit of DNP3 Secure Authentication: every message carries a
// strictly increasing sequence number and an HMAC-SHA-256 tag over
// sequence plus frame; with an encryption key, the frame is additionally
// AES-256-GCM encrypted. The sender and the receiver each hold a
// Session constructed with the same keys.
type Session struct {
	authKey []byte
	aead    cipher.AEAD
	sendSeq uint32
	recvSeq uint32
}

// NewSession creates a session. authKey must be at least 16 bytes
// (128 bits — the policy threshold for HMAC in the paper's model).
// encKey is optional; when present it must be 32 bytes (AES-256).
func NewSession(authKey, encKey []byte) (*Session, error) {
	if len(authKey) < 16 {
		return nil, fmt.Errorf("%w: auth key %d bytes, want >= 16", ErrKeySize, len(authKey))
	}
	s := &Session{authKey: append([]byte(nil), authKey...)}
	if encKey != nil {
		if len(encKey) != 32 {
			return nil, fmt.Errorf("%w: enc key %d bytes, want 32", ErrKeySize, len(encKey))
		}
		block, err := aes.NewCipher(encKey)
		if err != nil {
			return nil, fmt.Errorf("icsproto: %w", err)
		}
		s.aead, err = cipher.NewGCM(block)
		if err != nil {
			return nil, fmt.Errorf("icsproto: %w", err)
		}
	}
	return s, nil
}

// Seal wraps a frame for transmission: [seq | body | hmac(seq|body)],
// where body is the plain frame bytes or, under encryption, the
// AES-GCM ciphertext (nonce-prefixed).
func (s *Session) Seal(f *Frame) ([]byte, error) {
	plain, err := f.Marshal()
	if err != nil {
		return nil, err
	}
	s.sendSeq++
	body := plain
	if s.aead != nil {
		nonce := make([]byte, gcmNonce)
		binary.BigEndian.PutUint32(nonce[gcmNonce-seqLen:], s.sendSeq)
		body = append(append([]byte(nil), nonce...), s.aead.Seal(nil, nonce, plain, nil)...)
	}
	out := make([]byte, 0, seqLen+len(body)+tagLen)
	out = binary.BigEndian.AppendUint32(out, s.sendSeq)
	out = append(out, body...)
	mac := hmac.New(sha256.New, s.authKey)
	mac.Write(out)
	return mac.Sum(out), nil
}

// Open verifies and unwraps a sealed message: the HMAC tag must match,
// the sequence number must exceed every previously accepted one, and
// (under encryption) the ciphertext must authenticate and decrypt.
func (s *Session) Open(data []byte) (*Frame, error) {
	if len(data) < seqLen+tagLen {
		return nil, ErrSealed
	}
	msg, tag := data[:len(data)-tagLen], data[len(data)-tagLen:]
	mac := hmac.New(sha256.New, s.authKey)
	mac.Write(msg)
	if !hmac.Equal(mac.Sum(nil), tag) {
		return nil, ErrTag
	}
	seq := binary.BigEndian.Uint32(msg[:seqLen])
	if seq <= s.recvSeq {
		return nil, fmt.Errorf("%w: got %d, last accepted %d", ErrReplay, seq, s.recvSeq)
	}
	body := msg[seqLen:]
	if s.aead != nil {
		if len(body) < gcmNonce {
			return nil, ErrSealed
		}
		plain, err := s.aead.Open(nil, body[:gcmNonce], body[gcmNonce:], nil)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrTag, err)
		}
		body = plain
	}
	f, err := Unmarshal(body)
	if err != nil {
		return nil, err
	}
	s.recvSeq = seq
	return f, nil
}

// Encrypted reports whether the session encrypts payloads.
func (s *Session) Encrypted() bool { return s.aead != nil }
