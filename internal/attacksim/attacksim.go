// Package attacksim replays attack campaigns and contingency timelines
// against a SCADA configuration: sequences of device/link outages and
// recoveries (DoS bursts, cascading failures, maintenance windows),
// evaluated round by round with the discrete-event delivery simulator
// and the direct property evaluator. The output is a dependability
// timeline — when the grid was observable, securely observable, and
// bad-data protected — plus aggregate availability metrics that can be
// compared with the verifier's worst-case guarantees: a configuration
// certified (k1,k2)-resilient never loses the property while at most
// that many devices are down.
package attacksim

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"scadaver/internal/core"
	"scadaver/internal/scadanet"
)

// EventKind says what an event does.
type EventKind int

// Event kinds.
const (
	DeviceDown EventKind = iota + 1
	DeviceUp
	LinkDown
	LinkUp
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case DeviceDown:
		return "device-down"
	case DeviceUp:
		return "device-up"
	case LinkDown:
		return "link-down"
	case LinkUp:
		return "link-up"
	}
	return "unknown"
}

// Event is one timeline entry.
type Event struct {
	At     time.Duration
	Kind   EventKind
	Device scadanet.DeviceID // device events
	Link   scadanet.LinkID   // link events
}

// String implements fmt.Stringer.
func (e Event) String() string {
	switch e.Kind {
	case DeviceDown, DeviceUp:
		return fmt.Sprintf("%v@%v device %d", e.Kind, e.At, e.Device)
	default:
		return fmt.Sprintf("%v@%v link %d", e.Kind, e.At, e.Link)
	}
}

// Scenario is an attack/contingency campaign: events applied over a
// horizon, sampled every Step.
type Scenario struct {
	Name    string
	Events  []Event
	Horizon time.Duration
	Step    time.Duration
}

// Sample is the system state at one sampled instant.
type Sample struct {
	At                 time.Duration
	DownDevices        []scadanet.DeviceID
	DownLinks          []scadanet.LinkID
	Delivered          int // measurements reaching the MTU
	Secured            int // measurements reaching it securely
	Observable         bool
	SecurelyObservable bool
	BadDataDetectable1 bool // r = 1
}

// Timeline is a scenario replay result.
type Timeline struct {
	Scenario string
	Samples  []Sample
}

// Availability returns the fraction of samples where the selected
// property held.
func (t *Timeline) Availability(p core.Property) float64 {
	if len(t.Samples) == 0 {
		return 0
	}
	n := 0
	for _, s := range t.Samples {
		switch p {
		case core.Observability:
			if s.Observable {
				n++
			}
		case core.SecuredObservability:
			if s.SecurelyObservable {
				n++
			}
		case core.BadDataDetectability:
			if s.BadDataDetectable1 {
				n++
			}
		}
	}
	return float64(n) / float64(len(t.Samples))
}

// WorstConcurrentFailures returns the maximum number of simultaneously
// failed field devices across the timeline — the k the campaign
// effectively exercised.
func (t *Timeline) WorstConcurrentFailures() int {
	worst := 0
	for _, s := range t.Samples {
		if n := len(s.DownDevices); n > worst {
			worst = n
		}
	}
	return worst
}

// Simulator replays scenarios against one configuration.
type Simulator struct {
	analyzer *core.Analyzer
}

// Scenario validation errors.
var (
	ErrNoHorizon = errors.New("attacksim: scenario horizon must be positive")
	ErrNoStep    = errors.New("attacksim: scenario step must be positive")
)

// New builds a scenario simulator.
func New(cfg *scadanet.Config, opts ...core.Option) (*Simulator, error) {
	a, err := core.NewAnalyzer(cfg, opts...)
	if err != nil {
		return nil, err
	}
	return &Simulator{analyzer: a}, nil
}

// Run replays the scenario and returns the sampled timeline.
func (s *Simulator) Run(sc Scenario) (*Timeline, error) {
	if sc.Horizon <= 0 {
		return nil, ErrNoHorizon
	}
	if sc.Step <= 0 {
		return nil, ErrNoStep
	}
	events := append([]Event(nil), sc.Events...)
	sort.SliceStable(events, func(i, j int) bool { return events[i].At < events[j].At })

	tl := &Timeline{Scenario: sc.Name}
	downDev := map[scadanet.DeviceID]bool{}
	downLnk := map[scadanet.LinkID]bool{}
	next := 0
	for at := time.Duration(0); at <= sc.Horizon; at += sc.Step {
		for next < len(events) && events[next].At <= at {
			ev := events[next]
			next++
			switch ev.Kind {
			case DeviceDown:
				downDev[ev.Device] = true
			case DeviceUp:
				delete(downDev, ev.Device)
			case LinkDown:
				downLnk[ev.Link] = true
			case LinkUp:
				delete(downLnk, ev.Link)
			}
		}
		f := core.Failures{Devices: copyDev(downDev), Links: copyLnk(downLnk)}
		delivered := s.analyzer.DeliveredMeasurementsUnder(f, false)
		secured := s.analyzer.DeliveredMeasurementsUnder(f, true)
		sample := Sample{
			At:                 at,
			DownDevices:        sortedDev(downDev),
			DownLinks:          sortedLnk(downLnk),
			Delivered:          len(delivered),
			Secured:            len(secured),
			Observable:         s.analyzer.EvalObservabilityUnder(f, false),
			SecurelyObservable: s.analyzer.EvalObservabilityUnder(f, true),
			BadDataDetectable1: s.analyzer.EvalBadDataDetectabilityUnder(f, 1),
		}
		tl.Samples = append(tl.Samples, sample)
	}
	return tl, nil
}

// DoSBurst builds a scenario taking the given devices down at `at` and
// recovering them after `outage`.
func DoSBurst(name string, targets []scadanet.DeviceID, at, outage, horizon, step time.Duration) Scenario {
	sc := Scenario{Name: name, Horizon: horizon, Step: step}
	for _, d := range targets {
		sc.Events = append(sc.Events,
			Event{At: at, Kind: DeviceDown, Device: d},
			Event{At: at + outage, Kind: DeviceUp, Device: d},
		)
	}
	return sc
}

// Cascade builds a scenario where the targets fail one by one at the
// given interval and never recover — a cascading-failure campaign.
func Cascade(name string, targets []scadanet.DeviceID, start, interval, horizon, step time.Duration) Scenario {
	sc := Scenario{Name: name, Horizon: horizon, Step: step}
	for i, d := range targets {
		sc.Events = append(sc.Events, Event{
			At: start + time.Duration(i)*interval, Kind: DeviceDown, Device: d,
		})
	}
	return sc
}

func copyDev(in map[scadanet.DeviceID]bool) map[scadanet.DeviceID]bool {
	out := make(map[scadanet.DeviceID]bool, len(in))
	for k, v := range in {
		out[k] = v
	}
	return out
}

func copyLnk(in map[scadanet.LinkID]bool) map[scadanet.LinkID]bool {
	out := make(map[scadanet.LinkID]bool, len(in))
	for k, v := range in {
		out[k] = v
	}
	return out
}

func sortedDev(in map[scadanet.DeviceID]bool) []scadanet.DeviceID {
	out := make([]scadanet.DeviceID, 0, len(in))
	for k := range in {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func sortedLnk(in map[scadanet.LinkID]bool) []scadanet.LinkID {
	out := make([]scadanet.LinkID, 0, len(in))
	for k := range in {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
