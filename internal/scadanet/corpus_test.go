package scadanet

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestBadConfigCorpusRejected pins the loader's behavior on the
// checked-in regression corpus of malformed configurations: every file
// under testdata/configs/bad must be rejected, with the expected error
// for the defect its name describes. New parser bugs found by fuzzing
// should land here as named corpus files.
func TestBadConfigCorpusRejected(t *testing.T) {
	want := map[string]struct {
		sentinel error  // errors.Is target, when the loader exposes one
		substr   string // otherwise a fragment of the message
	}{
		"dup-device-id.scada":       {sentinel: ErrDuplicateDevice},
		"dangling-link.scada":       {sentinel: ErrUnknownDevice},
		"nan-key-bits.scada":        {substr: "bad key length"},
		"unknown-measurement.scada": {substr: "unknown measurement"},
		"negative-resiliency.scada": {substr: "negative resiliency"},
	}

	dir := filepath.Join("..", "..", "testdata", "configs", "bad")
	files, err := filepath.Glob(filepath.Join(dir, "*.scada"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != len(want) {
		t.Fatalf("corpus has %d files, expectations cover %d — keep them in sync", len(files), len(want))
	}
	for _, path := range files {
		name := filepath.Base(path)
		t.Run(name, func(t *testing.T) {
			exp, ok := want[name]
			if !ok {
				t.Fatalf("no expectation for corpus file %s", name)
			}
			f, err := os.Open(path)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			cfg, err := ParseConfig(f)
			if err == nil {
				t.Fatalf("loader accepted %s: %+v", name, cfg)
			}
			if exp.sentinel != nil && !errors.Is(err, exp.sentinel) {
				t.Fatalf("error %v does not wrap %v", err, exp.sentinel)
			}
			if exp.substr != "" && !strings.Contains(err.Error(), exp.substr) {
				t.Fatalf("error %q missing %q", err, exp.substr)
			}
		})
	}
}
