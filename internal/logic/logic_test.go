package logic

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"scadaver/internal/sat"
)

func TestConstructorsFoldConstants(t *testing.T) {
	a := V("a")
	cases := []struct {
		name string
		f    *Formula
		want *Formula
	}{
		{"not true", Not(True()), False()},
		{"not false", Not(False()), True()},
		{"double neg", Not(Not(a)), a},
		{"and empty", And(), True()},
		{"and with false", And(a, False()), False()},
		{"and single", And(a), a},
		{"and drops true", And(True(), a), a},
		{"or empty", Or(), False()},
		{"or with true", Or(a, True()), True()},
		{"or single", Or(a), a},
		{"or drops false", Or(False(), a), a},
		{"atmost neg k", AtMost(-1, a), False()},
		{"atmost k>=n", AtMost(1, a), True()},
		{"atleast 0", AtLeast(0, a), True()},
		{"atleast k>n", AtLeast(2, a), False()},
	}
	for _, tc := range cases {
		if tc.f != tc.want {
			t.Errorf("%s: got %v, want %v", tc.name, tc.f, tc.want)
		}
	}
}

func TestEval(t *testing.T) {
	a, b, c := V("a"), V("b"), V("c")
	m := map[string]bool{"a": true, "b": false, "c": true}
	cases := []struct {
		f    *Formula
		want bool
	}{
		{True(), true},
		{False(), false},
		{a, true},
		{b, false},
		{Not(b), true},
		{And(a, c), true},
		{And(a, b), false},
		{Or(b, c), true},
		{Implies(a, b), false},
		{Implies(b, a), true},
		{Iff(a, c), true},
		{Iff(a, b), false},
		{AtMost(1, a, b, c), false},
		{AtMost(2, a, b, c), true},
		{AtLeast(2, a, b, c), true},
		{AtLeast(3, a, b, c), false},
		{Exactly(2, a, b, c), true},
		{Exactly(1, a, b, c), false},
	}
	for i, tc := range cases {
		if got := tc.f.Eval(m); got != tc.want {
			t.Errorf("case %d (%v): got %v, want %v", i, tc.f, got, tc.want)
		}
	}
}

func TestString(t *testing.T) {
	f := And(V("a"), Or(Not(V("b")), V("c")), AtMost(1, V("a"), V("b")))
	s := f.String()
	for _, want := range []string{"(and", "(or", "(not b)", "(atmost 1 a b)"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
	if True().String() != "true" || False().String() != "false" {
		t.Error("constant String broken")
	}
	if AtLeast(2, V("a"), V("b"), V("c")).String() != "(atleast 2 a b c)" {
		t.Errorf("atleast String = %q", AtLeast(2, V("a"), V("b"), V("c")).String())
	}
}

func TestVars(t *testing.T) {
	f := And(V("b"), Or(V("a"), Not(V("c"))), V("a"))
	got := f.Vars()
	want := []string{"a", "b", "c"}
	if len(got) != len(want) {
		t.Fatalf("Vars() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Vars() = %v, want %v", got, want)
		}
	}
}

func TestVf(t *testing.T) {
	f := Vf("Node_%d", 7)
	if f.String() != "Node_7" {
		t.Fatalf("Vf = %q", f.String())
	}
}

func solveOne(t *testing.T, f *Formula) (sat.Status, Model) {
	t.Helper()
	e := NewEncoder()
	e.Assert(f)
	st := e.Solve()
	if st == sat.Sat {
		return st, e.Model()
	}
	return st, nil
}

func TestEncoderBasics(t *testing.T) {
	a, b := V("a"), V("b")
	st, m := solveOne(t, And(a, Not(b)))
	if st != sat.Sat {
		t.Fatalf("got %v, want sat", st)
	}
	if !m["a"] || m["b"] {
		t.Fatalf("model = %v", m)
	}

	st, _ = solveOne(t, And(a, Not(a)))
	if st != sat.Unsat {
		t.Fatalf("contradiction: got %v, want unsat", st)
	}

	st, _ = solveOne(t, False())
	if st != sat.Unsat {
		t.Fatalf("assert false: got %v, want unsat", st)
	}

	st, _ = solveOne(t, True())
	if st != sat.Sat {
		t.Fatalf("assert true: got %v, want sat", st)
	}
}

func TestEncoderModelSatisfiesFormula(t *testing.T) {
	f := And(
		Or(V("x1"), V("x2"), V("x3")),
		Implies(V("x1"), V("x4")),
		Iff(V("x2"), Not(V("x4"))),
		AtMost(2, V("x1"), V("x2"), V("x3"), V("x4")),
	)
	st, m := solveOne(t, f)
	if st != sat.Sat {
		t.Fatalf("got %v, want sat", st)
	}
	if !f.Eval(map[string]bool(m)) {
		t.Fatalf("model %v does not satisfy %v", m, f)
	}
}

func TestCardinalityExact(t *testing.T) {
	// Exactly(k) over n vars has C(n,k) models; check model validity and
	// unsat boundaries for several (n, k).
	for n := 1; n <= 6; n++ {
		vars := make([]*Formula, n)
		for i := range vars {
			vars[i] = Vf("v%d", i)
		}
		for k := 0; k <= n; k++ {
			e := NewEncoder()
			e.Assert(Exactly(k, vars...))
			if st := e.Solve(); st != sat.Sat {
				t.Fatalf("Exactly(%d) over %d vars: got %v, want sat", k, n, st)
			}
			m := e.Model()
			count := 0
			for i := 0; i < n; i++ {
				if m[fmt.Sprintf("v%d", i)] {
					count++
				}
			}
			if count != k {
				t.Fatalf("Exactly(%d) over %d: model has %d true", k, n, count)
			}
		}
		// Conjunction of incompatible cardinalities must be unsat.
		e := NewEncoder()
		e.Assert(AtLeast(n, vars...))
		e.Assert(AtMost(n-1, vars...))
		if st := e.Solve(); st != sat.Unsat {
			t.Fatalf("n=%d incompatible cards: got %v, want unsat", n, st)
		}
	}
}

func TestCardinalityUnderNegation(t *testing.T) {
	// Not(AtMost(1, a, b, c)) should force at least two true.
	a, b, c := V("a"), V("b"), V("c")
	e := NewEncoder()
	e.Assert(Not(AtMost(1, a, b, c)))
	if st := e.Solve(); st != sat.Sat {
		t.Fatalf("got %v, want sat", st)
	}
	m := e.Model()
	n := 0
	for _, x := range []string{"a", "b", "c"} {
		if m[x] {
			n++
		}
	}
	if n < 2 {
		t.Fatalf("model %v has %d true, want >= 2", m, n)
	}
	// Adding AtMost(1) now contradicts.
	e.Assert(AtMost(1, a, b, c))
	if st := e.Solve(); st != sat.Unsat {
		t.Fatalf("after contradiction: got %v, want unsat", st)
	}
}

func TestCardinalityOverCompoundOperands(t *testing.T) {
	// Cardinality over non-variable operands.
	a, b, c, d := V("a"), V("b"), V("c"), V("d")
	f := And(
		AtLeast(2, And(a, b), Or(c, d), Not(a)),
		a,
	)
	st, m := solveOne(t, f)
	if st != sat.Sat {
		t.Fatalf("got %v, want sat", st)
	}
	if !f.Eval(map[string]bool(m)) {
		t.Fatalf("model %v does not satisfy %v", m, f)
	}
}

func TestAssumptions(t *testing.T) {
	e := NewEncoder()
	a, b := V("a"), V("b")
	e.Assert(Implies(a, b))
	if st := e.Solve(a, Not(b)); st != sat.Unsat {
		t.Fatalf("got %v, want unsat", st)
	}
	// Assumption-based query does not pollute the instance.
	if st := e.Solve(a); st != sat.Sat {
		t.Fatalf("got %v, want sat", st)
	}
	if e.Value("b") != sat.True {
		t.Fatalf("b = %v, want true", e.Value("b"))
	}
	if e.Value("never-used") != sat.Unknown {
		t.Fatal("unused name should be Unknown")
	}
}

func TestBlockEnumeratesAllModels(t *testing.T) {
	// Exactly(1) over 4 vars has exactly 4 models; Block should walk
	// them all.
	vars := []*Formula{V("a"), V("b"), V("c"), V("d")}
	names := []string{"a", "b", "c", "d"}
	e := NewEncoder()
	e.Assert(Exactly(1, vars...))
	found := map[string]bool{}
	for i := 0; i < 10; i++ {
		st := e.Solve()
		if st != sat.Sat {
			break
		}
		m := e.Model()
		key := ""
		blocking := map[string]bool{}
		for _, n := range names {
			blocking[n] = m[n]
			if m[n] {
				key += n
			}
		}
		if found[key] {
			t.Fatalf("model %q repeated", key)
		}
		found[key] = true
		e.Block(blocking)
	}
	if len(found) != 4 {
		t.Fatalf("enumerated %d models, want 4", len(found))
	}
}

// refFormula generates a random formula over nv variables for
// differential testing.
func refFormula(rng *rand.Rand, depth, nv int) *Formula {
	if depth == 0 || rng.Intn(4) == 0 {
		return Vf("x%d", rng.Intn(nv))
	}
	switch rng.Intn(6) {
	case 0:
		return Not(refFormula(rng, depth-1, nv))
	case 1, 2:
		n := 2 + rng.Intn(3)
		kids := make([]*Formula, n)
		for i := range kids {
			kids[i] = refFormula(rng, depth-1, nv)
		}
		if rng.Intn(2) == 0 {
			return And(kids...)
		}
		return Or(kids...)
	case 3:
		return Implies(refFormula(rng, depth-1, nv), refFormula(rng, depth-1, nv))
	case 4:
		n := 2 + rng.Intn(4)
		kids := make([]*Formula, n)
		for i := range kids {
			kids[i] = refFormula(rng, depth-1, nv)
		}
		return AtMost(rng.Intn(n+1), kids...)
	default:
		n := 2 + rng.Intn(4)
		kids := make([]*Formula, n)
		for i := range kids {
			kids[i] = refFormula(rng, depth-1, nv)
		}
		return AtLeast(rng.Intn(n+1), kids...)
	}
}

func bruteForceSatFormula(f *Formula, nv int) bool {
	names := make([]string, nv)
	for i := range names {
		names[i] = fmt.Sprintf("x%d", i)
	}
	for m := 0; m < 1<<nv; m++ {
		assign := map[string]bool{}
		for i, n := range names {
			assign[n] = m>>uint(i)&1 == 1
		}
		if f.Eval(assign) {
			return true
		}
	}
	return false
}

func TestEncoderAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 250; trial++ {
		nv := 2 + rng.Intn(5)
		f := refFormula(rng, 3, nv)
		want := bruteForceSatFormula(f, nv)
		e := NewEncoder()
		e.Assert(f)
		got := e.Solve()
		if (got == sat.Sat) != want {
			t.Fatalf("trial %d: formula %v: encoder=%v brute=%v", trial, f, got, want)
		}
		if got == sat.Sat {
			m := e.Model()
			// Ensure all formula variables appear (possibly false) and
			// the model satisfies f.
			assign := map[string]bool(m)
			if !f.Eval(assign) {
				t.Fatalf("trial %d: model %v does not satisfy %v", trial, m, f)
			}
		}
	}
}

func TestQuickEncoderSoundness(t *testing.T) {
	// Property: asserting f and Not(f) together is always unsat.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nv := 2 + rng.Intn(4)
		g := refFormula(rng, 3, nv)
		e := NewEncoder()
		e.Assert(g)
		e.AssertNot(g)
		return e.Solve() == sat.Unsat
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCardinalityEquivalence(t *testing.T) {
	// Property: AtLeast(k) == Not(AtMost(k-1)) over the same operands.
	f := func(seed int64, kRaw, nRaw uint8) bool {
		n := 1 + int(nRaw)%7
		k := int(kRaw) % (n + 2)
		vars := make([]*Formula, n)
		for i := range vars {
			vars[i] = Vf("x%d", i)
		}
		e := NewEncoder()
		e.Assert(Not(Iff(AtLeast(k, vars...), Not(AtMost(k-1, vars...)))))
		return e.Solve() == sat.Unsat
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestSharedSubformulaEncodedOnce(t *testing.T) {
	e := NewEncoder()
	shared := And(V("a"), V("b"), V("c"))
	e.Assert(Or(shared, V("d")))
	before := e.Solver().NumVars()
	e.Assert(Or(shared, V("e")))
	after := e.Solver().NumVars()
	// The second assert introduces only "e" and one OR gate.
	if after-before > 2 {
		t.Fatalf("shared subformula re-encoded: %d new vars", after-before)
	}
}
