package serve

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"scadaver/internal/core"
	"scadaver/internal/faultinject"
	"scadaver/internal/powergrid"
	"scadaver/internal/scadanet"
	"scadaver/internal/synth"
)

// TestRetryAfterJitterBounds pins the documented Retry-After contract:
// with RetryAfter = 4s the header is an integer in [4, 6], and across
// many shed responses more than one value occurs — synchronized shed
// clients must not all be told the same second.
func TestRetryAfterJitterBounds(t *testing.T) {
	s, _ := newTestServer(t, func(o *Options) { o.RetryAfter = 4 * time.Second })

	seen := map[int]bool{}
	for i := 0; i < 200; i++ {
		rec := httptest.NewRecorder()
		s.shed(rec, "verify", http.StatusTooManyRequests, "queue")
		raw := rec.Header().Get("Retry-After")
		v, err := strconv.Atoi(raw)
		if err != nil {
			t.Fatalf("Retry-After %q is not an integer: %v", raw, err)
		}
		if v < 4 || v > 6 {
			t.Fatalf("Retry-After = %d, documented bounds are [4, 6]", v)
		}
		seen[v] = true
	}
	if len(seen) < 2 {
		t.Fatalf("200 shed responses all carried the same Retry-After %v; jitter is dead", seen)
	}
}

// TestSweepCheckpointResume exercises the resumable sweep: a first
// request journals every budget, and a retry of the same requestId
// recovers them all (Resumed = maxK+1) instead of re-solving.
func TestSweepCheckpointResume(t *testing.T) {
	dir := t.TempDir()
	_, ts := newTestServer(t, func(o *Options) { o.CheckpointDir = dir })
	req := SweepRequest{Config: "grid", Property: core.Observability, MaxK: 3, RequestID: "sweep-1"}

	first := decodeBody[SweepResponse](t, postJSON(t, ts.URL+"/v1/sweep", req))
	if len(first.Results) != 4 || first.Resumed != 0 {
		t.Fatalf("first sweep: %d results, resumed %d; want 4, 0", len(first.Results), first.Resumed)
	}
	second := decodeBody[SweepResponse](t, postJSON(t, ts.URL+"/v1/sweep", req))
	if second.Resumed != 4 {
		t.Fatalf("retried sweep resumed %d budgets, want 4", second.Resumed)
	}
	for k, res := range second.Results {
		if res == nil || res.Status != first.Results[k].Status {
			t.Fatalf("budget %d: resumed status differs from the original", k)
		}
	}

	// The same ID for a different sweep shape is a conflict, not a
	// silent resume.
	req.MaxK = 2
	resp := postJSON(t, ts.URL+"/v1/sweep", req)
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("reshaped sweep with reused requestId = %d, want 409", resp.StatusCode)
	}
}

// exportCheckpoint fetches one node's journal for a request ID.
func exportCheckpoint(t testing.TB, base, id string) []byte {
	t.Helper()
	resp, err := http.Get(base + "/v1/checkpoints/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("checkpoint export = %d, body %s", resp.StatusCode, raw)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// importCheckpoint lands a journal on a node and returns the response.
func importCheckpoint(t testing.TB, base, id string, body []byte) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPut, base+"/v1/checkpoints/"+id, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestHandoffResumeAcrossWorkerCounts moves a partial enumeration
// journal from a 4-worker node to a 1-worker node over HTTP and asserts
// the receiving node resumes it to the identical full vector set.
func TestHandoffResumeAcrossWorkerCounts(t *testing.T) {
	q := core.Query{Property: core.Observability, Combined: true, K: 2}
	req := EnumerateRequest{Config: "grid", Query: q, Max: 32, RequestID: "handoff-wc"}

	a, err := core.NewAnalyzer(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	want, err := a.EnumerateThreats(q, 32)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) < 3 {
		t.Fatalf("test topology yields only %d vectors", len(want))
	}

	// Node A (4 workers): the stream drops after 2 vectors, leaving a
	// partial journal.
	dirA := t.TempDir()
	faults := faultinject.New(1).DropStreamAfter(2)
	_, tsA := newTestServer(t, func(o *Options) {
		o.CheckpointDir = dirA
		o.Workers = 4
		o.Faults = faults
	})
	if _, trailer := enumerateVectors(t, tsA.URL, req); trailer != nil {
		t.Fatalf("dropped stream still delivered a trailer %+v", trailer)
	}

	// Hand the journal to node B (1 worker) and resume there.
	dirB := t.TempDir()
	_, tsB := newTestServer(t, func(o *Options) {
		o.CheckpointDir = dirB
		o.Workers = 1
	})
	resp := importCheckpoint(t, tsB.URL, req.RequestID, exportCheckpoint(t, tsA.URL, req.RequestID))
	body := decodeBody[checkpointImportBody](t, resp)
	if resp.StatusCode != http.StatusOK || body.Entries == 0 {
		t.Fatalf("import = %d %+v, want 200 with entries", resp.StatusCode, body)
	}

	vectors, trailer := enumerateVectors(t, tsB.URL, req)
	if trailer == nil || !trailer.Done || trailer.Resumed == 0 {
		t.Fatalf("handed-off enumeration did not resume (trailer %+v)", trailer)
	}
	got, wantKeys := vectorKeys(vectors), vectorKeys(want)
	if len(got) != len(wantKeys) {
		t.Fatalf("resumed node streamed %d distinct vectors, want %d", len(got), len(wantKeys))
	}
	for k := range wantKeys {
		if !got[k] {
			t.Fatalf("resumed node is missing vector %s", k)
		}
	}
}

// TestHandoffForeignFingerprintConflicts lands a journal for a
// DIFFERENT configuration on a node, then asks that node to resume the
// requestId against its own config: the fingerprint mismatch must be a
// 409, never a silent resume of foreign work.
func TestHandoffForeignFingerprintConflicts(t *testing.T) {
	q := core.Query{Property: core.Observability, Combined: true, K: 2}
	req := EnumerateRequest{Config: "grid", Query: q, Max: 8, RequestID: "handoff-foreign"}

	// Node A serves a different topology, so its journal is fingerprinted
	// over a foreign campaign.
	otherCfg, err := synth.Generate(synth.Params{Bus: powergrid.IEEE14(), Seed: 3, Hierarchy: 2, SecureFraction: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	dirA := t.TempDir()
	_, tsA := newTestServer(t, func(o *Options) {
		o.Configs = map[string]*scadanet.Config{"grid": otherCfg}
		o.CheckpointDir = dirA
	})
	if _, trailer := enumerateVectors(t, tsA.URL, req); trailer == nil {
		t.Fatal("seed enumeration on node A did not finish")
	}

	dirB := t.TempDir()
	_, tsB := newTestServer(t, func(o *Options) { o.CheckpointDir = dirB })
	resp := importCheckpoint(t, tsB.URL, req.RequestID, exportCheckpoint(t, tsA.URL, req.RequestID))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("import of a foreign journal = %d; imports land, use conflicts", resp.StatusCode)
	}

	resp = postJSON(t, tsB.URL+"/v1/enumerate", req)
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("resume against a foreign-fingerprint journal = %d, want 409", resp.StatusCode)
	}
}

// TestHandoffTornTransferRecovers kills the transfer mid-line (the
// sending node died while the PUT body was in flight) and asserts the
// receiving node imports the complete prefix and resumes it to the full
// vector set.
func TestHandoffTornTransferRecovers(t *testing.T) {
	q := core.Query{Property: core.Observability, Combined: true, K: 2}
	req := EnumerateRequest{Config: "grid", Query: q, Max: 32, RequestID: "handoff-torn"}

	a, err := core.NewAnalyzer(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	want, err := a.EnumerateThreats(q, 32)
	if err != nil {
		t.Fatal(err)
	}

	dirA := t.TempDir()
	_, tsA := newTestServer(t, func(o *Options) { o.CheckpointDir = dirA })
	if _, trailer := enumerateVectors(t, tsA.URL, req); trailer == nil {
		t.Fatal("seed enumeration did not finish")
	}
	journal := exportCheckpoint(t, tsA.URL, req.RequestID)

	// Tear the journal mid-final-line, as a killed connection would.
	lines := strings.Count(string(journal), "\n")
	if lines < 3 {
		t.Fatalf("journal has only %d lines; need >= 3 to tear meaningfully", lines)
	}
	torn := journal[:len(journal)-5]

	dirB := t.TempDir()
	_, tsB := newTestServer(t, func(o *Options) { o.CheckpointDir = dirB })
	resp := importCheckpoint(t, tsB.URL, req.RequestID, torn)
	body := decodeBody[checkpointImportBody](t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("torn import = %d, want 200 with the complete prefix", resp.StatusCode)
	}
	if body.Entries != lines-2 { // header + torn final entry dropped
		t.Fatalf("torn import kept %d entries, want %d", body.Entries, lines-2)
	}

	vectors, trailer := enumerateVectors(t, tsB.URL, req)
	if trailer == nil || !trailer.Done {
		t.Fatalf("resume after torn import did not finish (trailer %+v)", trailer)
	}
	got, wantKeys := vectorKeys(vectors), vectorKeys(want)
	if len(got) != len(wantKeys) {
		t.Fatalf("torn-import resume streamed %d distinct vectors, want %d", len(got), len(wantKeys))
	}
}

// TestCheckpointTransferValidation pins the transfer endpoints' error
// contract: disabled checkpointing and unknown journals are 404, bad
// ids 400, bad kinds 400.
func TestCheckpointTransferValidation(t *testing.T) {
	_, tsOff := newTestServer(t, nil) // no CheckpointDir
	resp, err := http.Get(tsOff.URL + "/v1/checkpoints/x")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("export with checkpointing disabled = %d, want 404", resp.StatusCode)
	}

	_, ts := newTestServer(t, func(o *Options) { o.CheckpointDir = t.TempDir() })
	resp, err = http.Get(ts.URL + "/v1/checkpoints/absent")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("export of an absent journal = %d, want 404", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/v1/checkpoints/..%2Fevil")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("export with a traversal id = %d, want 400", resp.StatusCode)
	}

	r := importCheckpoint(t, ts.URL, "ok-id", []byte(`{"schema":"scadaver-checkpoint/1","kind":"enumerate","fingerprint":"aa"}`+"\n"))
	r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("minimal import = %d, want 200", r.StatusCode)
	}
	req, err := http.NewRequest(http.MethodPut, ts.URL+"/v1/checkpoints/ok-id?kind=bogus", strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	r, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusBadRequest {
		t.Fatalf("import with unknown kind = %d, want 400", r.StatusCode)
	}
}
