package core

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"scadaver/internal/faultinject"
	"scadaver/internal/sat"
	"scadaver/internal/scadanet"
)

// Runner fans independent verification work out across a pool of worker
// goroutines. The paper's evaluation — per-bus-system, per-property,
// per-budget queries — is embarrassingly parallel: every query is an
// independent SAT instance. The runner exploits that while enforcing the
// solver ownership rule: each worker builds and owns its own Analyzer
// (and therefore its own encoder and SAT solver); only the read-only
// Config is shared. Results come back in input order regardless of
// which worker finished first, so parallel campaigns produce results
// identical to serial ones.
//
// Cancellation is context-based: cancelling the context stops dispatch
// and interrupts in-flight solves through the solver's cooperative
// interrupt hook, so even a long unsat proof unwinds within a few
// hundred search steps.
type Runner struct {
	workers  int
	opts     []Option
	inflight atomic.Int64
}

// NewRunner returns a runner with the given pool size; workers <= 0
// selects runtime.GOMAXPROCS(0). The options are applied to every
// analyzer the runner builds (WithConflictBudget, WithPolicy, ...).
func NewRunner(workers int, opts ...Option) *Runner {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Runner{workers: workers, opts: opts}
}

// Workers returns the configured pool size.
func (r *Runner) Workers() int { return r.workers }

// Inflight reports how many tasks this runner's campaigns are executing
// at this instant, across all concurrent campaign calls. Long-running
// services (internal/serve) poll it for load introspection.
func (r *Runner) Inflight() int64 { return r.inflight.Load() }

// probe materializes the runner's options onto a blank analyzer so the
// runner itself can reach the cross-cutting hooks they carry — the
// metrics registry and the fault-injection plan — without widening the
// Option API. Options only set fields, so applying them to a zero
// Analyzer is safe.
func (r *Runner) probe() *Analyzer {
	a := &Analyzer{}
	for _, o := range r.opts {
		o(a)
	}
	return a
}

// PanicError reports a worker panic that a campaign isolated to the
// task (query index) that raised it, instead of letting it tear down
// the whole process. Stack is the panicking goroutine's stack at
// recovery time.
type PanicError struct {
	Index int
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("task %d panicked: %v", e.Index, e.Value)
}

// Unwrap exposes a panic value that was itself an error (as injected
// faults are), so errors.Is/As see through the panic wrapper.
func (e *PanicError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// Outcome is the per-query verdict of a collect-mode campaign: exactly
// one of Result and Err is set. Err is a *PanicError when the worker
// panicked on this query.
type Outcome struct {
	Result *Result `json:"result,omitempty"`
	Err    error   `json:"-"`
}

// analyzerOptions returns the runner's options plus an interrupt hook
// polling ctx, for analyzers that must abandon solves on cancellation.
func (r *Runner) analyzerOptions(ctx context.Context) []Option {
	done := ctx.Done()
	hook := WithInterrupt(func() bool {
		select {
		case <-done:
			return true
		default:
			return false
		}
	})
	return append(append([]Option(nil), r.opts...), hook)
}

// verifyTask builds one worker's verification task over a private
// Analyzer. Task errors are annotated with the query index and the
// query itself, so a campaign failure names the culprit.
func (r *Runner) verifyTask(ctx context.Context, cfg *scadanet.Config, queries []Query, record func(i int, res *Result)) (func(i int) error, error) {
	a, err := NewAnalyzer(cfg, r.analyzerOptions(ctx)...)
	if err != nil {
		return nil, err
	}
	return func(i int) error {
		res, err := a.Verify(queries[i])
		if err != nil {
			return fmt.Errorf("query %d (%v): %w", i, queries[i], err)
		}
		if res.Status == sat.Unsolved && res.FailureReason == ReasonInterrupted && ctx.Err() != nil {
			// The solve was interrupted by cancellation, not decided;
			// leave the slot empty like every other unfinished query.
			return nil
		}
		record(i, res)
		return nil
	}, nil
}

// VerifyAll verifies all queries against one shared configuration and
// returns results indexed like the input. Each worker owns a private
// Analyzer over cfg, which itself is only ever read.
//
// This is the strict (fail-fast) campaign: on context cancellation or
// the first verification error the remaining queries are abandoned —
// the returned slice holds nil at every unfinished index and the error
// (annotated with the failing query's index) is the context's,
// respectively the verification's. A nil error guarantees every entry
// is non-nil. Campaigns that should survive individual failures use
// VerifyAllCollect.
func (r *Runner) VerifyAll(ctx context.Context, cfg *scadanet.Config, queries []Query) ([]*Result, error) {
	results := make([]*Result, len(queries))
	err := r.RunEach(ctx, len(queries), func(ctx context.Context) (func(i int) error, error) {
		return r.verifyTask(ctx, cfg, queries, func(i int, res *Result) { results[i] = res })
	})
	return results, err
}

// VerifyAllCollect is the partial-results variant of VerifyAll: every
// query is attempted and the campaign never aborts on per-query
// failures. Each index of the returned slice holds either the query's
// Result (possibly Unsolved with a FailureReason, when budgets ran
// out) or the isolated error — including recovered worker panics as
// *PanicError — that prevented one. The returned error is reserved for
// campaign-level failures: analyzer construction and context
// cancellation (unfinished outcomes then have neither field set).
func (r *Runner) VerifyAllCollect(ctx context.Context, cfg *scadanet.Config, queries []Query) ([]Outcome, error) {
	return r.VerifyAllResumable(ctx, cfg, queries, nil)
}

// VerifyAllResumable is VerifyAllCollect with checkpointing: every
// finished result is appended to ck (kind CheckpointKindCampaign,
// entries keyed by query index), and results recovered from a prior
// interrupted run are returned as-is with their queries skipped.
// Entries are index-keyed, so a checkpoint resumes correctly under any
// worker count. A nil ck disables checkpointing; checkpoint write
// failures are survivable (counted in scadaver_checkpoint_errors_total,
// previous on-disk checkpoint stays valid, retried on the next write).
func (r *Runner) VerifyAllResumable(ctx context.Context, cfg *scadanet.Config, queries []Query, ck *Checkpoint) ([]Outcome, error) {
	outcomes := make([]Outcome, len(queries))
	done := make([]bool, len(queries))
	for n, raw := range ck.Entries() {
		var e campaignEntry
		if err := json.Unmarshal(raw, &e); err != nil {
			return nil, fmt.Errorf("checkpoint entry %d: %w", n, err)
		}
		if e.Index < 0 || e.Index >= len(queries) || e.Result == nil {
			return nil, fmt.Errorf("checkpoint entry %d: index %d out of range [0,%d)", n, e.Index, len(queries))
		}
		outcomes[e.Index].Result = e.Result
		done[e.Index] = true
	}
	metrics := r.probe().metrics
	err := r.runEach(ctx, len(queries), func(ctx context.Context) (func(i int) error, error) {
		task, err := r.verifyTask(ctx, cfg, queries, func(i int, res *Result) {
			outcomes[i].Result = res
			if cerr := ck.Add(campaignEntry{Index: i, Result: res}); cerr != nil {
				metrics.Inc("scadaver_checkpoint_errors_total", nil)
			}
		})
		if err != nil {
			return nil, err
		}
		return func(i int) error {
			if done[i] {
				return nil
			}
			return task(i)
		}, nil
	}, func(i int, err error) {
		outcomes[i].Err = err
	})
	return outcomes, err
}

// Run executes task(0) … task(n-1) on the worker pool, at most Workers
// at a time, and returns the first error (cancelling the rest). Tasks
// must be independent; they run on arbitrary workers in arbitrary
// order. Callers needing per-worker state (e.g. a private Analyzer
// reused across tasks) should use RunEach or VerifyAll.
func (r *Runner) Run(ctx context.Context, n int, task func(i int) error) error {
	return r.RunEach(ctx, n, func(context.Context) (func(i int) error, error) {
		return task, nil
	})
}

// RunEach is Run with per-worker setup: newTask runs once on each worker
// goroutine and returns that worker's task function, closing over any
// single-goroutine state (an Analyzer, a Sweep, scratch buffers). The
// context passed to newTask is cancelled as soon as any task errors or
// the caller's context is done — wire it into WithInterrupt (as
// VerifyAll does) to make in-flight solves abandonable.
func (r *Runner) RunEach(ctx context.Context, n int, newTask func(ctx context.Context) (func(i int) error, error)) error {
	return r.runEach(ctx, n, newTask, nil)
}

// runTask executes task(i) with panic isolation: a panic raised by the
// task — or injected before it by the fault plan — is recovered and
// converted into a *PanicError naming the task index, so one bad query
// (an encoder bug, a corrupted model) cannot tear down a campaign.
func runTask(task func(i int) error, faults *faultinject.Faults, i int) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &PanicError{Index: i, Value: v, Stack: debug.Stack()}
		}
	}()
	faults.CheckTask(i)
	return task(i)
}

// runEach is the engine behind RunEach and the collect-mode campaigns.
// With collect == nil it is strict: the first task error records as the
// campaign error and cancels everything in flight. With a collect
// callback, task errors (panics included) are handed to collect(i, err)
// and the campaign keeps going; only worker construction failures and
// context cancellation surface as the returned error. collect is called
// from worker goroutines, one call per failed index — distinct indices,
// so index-sliced writes need no locking.
func (r *Runner) runEach(ctx context.Context, n int, newTask func(ctx context.Context) (func(i int) error, error), collect func(i int, err error)) error {
	if n == 0 {
		return ctx.Err()
	}
	workers := r.workers
	if workers > n {
		workers = n
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		mu       sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		cancel()
	}

	probe := r.probe()
	faults, metrics := probe.faults, probe.metrics

	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			task, err := newTask(ctx)
			if err != nil {
				fail(err)
				return
			}
			for i := range jobs {
				r.inflight.Add(1)
				err := runTask(task, faults, i)
				r.inflight.Add(-1)
				if err != nil {
					var pe *PanicError
					if errors.As(err, &pe) {
						metrics.Inc("scadaver_worker_panics_total", nil)
					}
					if collect == nil {
						fail(err)
						return
					}
					collect(i, err)
				}
				if ctx.Err() != nil {
					return
				}
			}
		}()
	}

dispatch:
	for i := 0; i < n; i++ {
		select {
		case jobs <- i:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(jobs)
	wg.Wait()

	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}
