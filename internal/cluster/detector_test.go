package cluster

import (
	"testing"
	"time"
)

// fakeClock drives the detector deterministically.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newTestDetector(clk *fakeClock) *Detector {
	return NewDetector(DetectorOptions{
		Window:   16,
		Expected: time.Second,
		Now:      clk.now,
	})
}

func TestDetectorStaysAliveOnCadence(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	d := newTestDetector(clk)
	for i := 0; i < 20; i++ {
		clk.advance(time.Second)
		d.Heartbeat()
		if s := d.State(); s != StateAlive {
			t.Fatalf("beat %d: state = %s, want alive (phi %.2f)", i, s, d.Phi())
		}
	}
	// Right after a heartbeat, suspicion is zero.
	if phi := d.Phi(); phi != 0 {
		t.Fatalf("phi immediately after a heartbeat = %.3f, want 0", phi)
	}
}

func TestDetectorAccruesSuspicionThroughStates(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	d := newTestDetector(clk)
	for i := 0; i < 20; i++ {
		clk.advance(time.Second)
		d.Heartbeat()
	}
	// Silence begins. Phi must be monotone in the silence and cross
	// alive → suspect → dead.
	var prev float64
	sawSuspect := false
	for i := 0; i < 200; i++ {
		clk.advance(100 * time.Millisecond)
		phi := d.Phi()
		if phi < prev {
			t.Fatalf("phi decreased during silence: %.3f after %.3f", phi, prev)
		}
		prev = phi
		if d.State() == StateSuspect {
			sawSuspect = true
		}
		if d.State() == StateDead {
			if !sawSuspect {
				t.Fatal("detector jumped alive → dead without passing suspect")
			}
			// Recovery: a heartbeat resets suspicion immediately.
			d.Heartbeat()
			if s := d.State(); s != StateAlive {
				t.Fatalf("state after recovery heartbeat = %s, want alive", s)
			}
			return
		}
	}
	t.Fatalf("detector never declared death after 20s of silence (phi %.2f)", prev)
}

// TestDetectorAdaptsToCadence is the phi-accrual property a fixed
// timeout lacks: the same absolute silence is damning for a fast
// prober and unremarkable for a slow one.
func TestDetectorAdaptsToCadence(t *testing.T) {
	clkFast := &fakeClock{t: time.Unix(1000, 0)}
	fast := NewDetector(DetectorOptions{Window: 16, Expected: 100 * time.Millisecond, Now: clkFast.now})
	for i := 0; i < 20; i++ {
		clkFast.advance(100 * time.Millisecond)
		fast.Heartbeat()
	}
	clkSlow := &fakeClock{t: time.Unix(1000, 0)}
	slow := NewDetector(DetectorOptions{Window: 16, Expected: 10 * time.Second, Now: clkSlow.now})
	for i := 0; i < 20; i++ {
		clkSlow.advance(10 * time.Second)
		slow.Heartbeat()
	}
	clkFast.advance(2 * time.Second)
	clkSlow.advance(2 * time.Second)
	if s := fast.State(); s != StateDead {
		t.Fatalf("100ms-cadence member 2s silent = %s, want dead (phi %.2f)", s, fast.Phi())
	}
	if s := slow.State(); s != StateAlive {
		t.Fatalf("10s-cadence member 2s silent = %s, want alive (phi %.2f)", s, slow.Phi())
	}
}

func TestDetectorFreshStartsAlive(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	d := newTestDetector(clk)
	if s := d.State(); s != StateAlive {
		t.Fatalf("fresh detector = %s, want alive", s)
	}
	// With no heartbeats at all, the prior still accrues to death.
	clk.advance(time.Minute)
	if s := d.State(); s != StateDead {
		t.Fatalf("never-heartbeating member after 1m = %s, want dead (phi %.2f)", s, d.Phi())
	}
}
