package logic

import (
	"fmt"

	"scadaver/internal/sat"
)

// Encoder turns formulas into CNF over a sat.Solver via a polarity-blind
// (biconditional) Tseitin transformation, with sequential-counter
// encodings for cardinality atoms. It supports incremental use: Assert
// adds constraints, Solve can be called repeatedly, and further Asserts
// (e.g. blocking clauses during threat-space enumeration) refine the
// instance.
type Encoder struct {
	solver  *sat.Solver
	vars    map[string]sat.Var
	names   []string // var index -> name ("" for auxiliaries)
	cache   map[*Formula]sat.Lit
	hasTrue bool
	litTrue sat.Lit
}

// NewEncoder returns an Encoder over a fresh solver.
func NewEncoder() *Encoder {
	return &Encoder{
		solver: sat.New(),
		vars:   make(map[string]sat.Var),
		cache:  make(map[*Formula]sat.Lit),
	}
}

// Solver exposes the underlying SAT solver (for stats and budgets).
func (e *Encoder) Solver() *sat.Solver { return e.solver }

// Simplify preprocesses the asserted constraints in place (unit
// propagation, probing, subsumption, bounded variable elimination — see
// sat.Solver.Simplify). Every named variable and the internal
// constant-true literal are frozen first: callers keep referring to them
// in later formulas, assumptions, Block clauses, and Model lookups, so
// only anonymous Tseitin and counter auxiliaries are eliminable. The
// formula-literal memo is dropped, since cached auxiliary literals may
// no longer exist; formulas encoded afterwards get fresh auxiliaries.
// Reports false when preprocessing refutes the instance.
func (e *Encoder) Simplify() bool {
	for _, v := range e.vars {
		e.solver.Freeze(v)
	}
	if e.hasTrue {
		e.solver.Freeze(e.litTrue.Var())
	}
	e.cache = make(map[*Formula]sat.Lit)
	return e.solver.Simplify()
}

// Clone returns an independent copy of the encoder and its solver
// (variables, clauses, and any Simplify state carry over; see
// sat.Solver.Clone). The formula-literal memo starts empty — formulas
// encoded into the clone emit their own auxiliaries — so clones of one
// encoded structure can be extended and solved concurrently. This is
// what the core encoding cache hands out per query.
func (e *Encoder) Clone() *Encoder {
	vars := make(map[string]sat.Var, len(e.vars))
	for name, v := range e.vars {
		vars[name] = v
	}
	return &Encoder{
		solver:  e.solver.Clone(),
		vars:    vars,
		names:   append([]string(nil), e.names...),
		cache:   make(map[*Formula]sat.Lit),
		hasTrue: e.hasTrue,
		litTrue: e.litTrue,
	}
}

// VarLit returns the solver literal for the named variable, creating the
// variable on first use.
func (e *Encoder) VarLit(name string) sat.Lit {
	if v, ok := e.vars[name]; ok {
		return sat.PosLit(v)
	}
	v := e.solver.NewVar()
	e.vars[name] = v
	for len(e.names) <= int(v) {
		e.names = append(e.names, "")
	}
	e.names[v] = name
	return sat.PosLit(v)
}

func (e *Encoder) fresh() sat.Lit {
	v := e.solver.NewVar()
	for len(e.names) <= int(v) {
		e.names = append(e.names, "")
	}
	return sat.PosLit(v)
}

func (e *Encoder) constTrue() sat.Lit {
	if !e.hasTrue {
		e.litTrue = e.fresh()
		e.mustAdd(e.litTrue)
		e.hasTrue = true
	}
	return e.litTrue
}

func (e *Encoder) mustAdd(lits ...sat.Lit) {
	// AddClause only errors on undeclared variables, which the encoder
	// never produces; surface violations loudly during development.
	if err := e.solver.AddClause(lits...); err != nil {
		panic(fmt.Sprintf("logic: internal encoding error: %v", err))
	}
}

// Lit encodes f and returns a literal that is logically equivalent to f
// in every model of the emitted clauses.
func (e *Encoder) Lit(f *Formula) sat.Lit {
	if l, ok := e.cache[f]; ok {
		return l
	}
	var out sat.Lit
	switch f.kind {
	case kindConst:
		if f.b {
			out = e.constTrue()
		} else {
			out = e.constTrue().Neg()
		}
	case kindVar:
		out = e.VarLit(f.name)
	case kindNot:
		out = e.Lit(f.kids[0]).Neg()
	case kindAnd:
		out = e.andLits(e.kidLits(f))
	case kindOr:
		out = e.orLits(e.kidLits(f))
	case kindAtMost:
		out = e.atLeastLit(e.kidLits(f), f.k+1).Neg()
	case kindAtLeast:
		out = e.atLeastLit(e.kidLits(f), f.k)
	default:
		panic("logic: unknown formula kind")
	}
	e.cache[f] = out
	return out
}

func (e *Encoder) kidLits(f *Formula) []sat.Lit {
	lits := make([]sat.Lit, len(f.kids))
	for i, k := range f.kids {
		lits[i] = e.Lit(k)
	}
	return lits
}

// andLits returns a literal g with g <-> AND(lits).
func (e *Encoder) andLits(lits []sat.Lit) sat.Lit {
	switch len(lits) {
	case 0:
		return e.constTrue()
	case 1:
		return lits[0]
	}
	g := e.fresh()
	// g -> l_i
	for _, l := range lits {
		e.mustAdd(g.Neg(), l)
	}
	// (AND l_i) -> g
	cl := make([]sat.Lit, 0, len(lits)+1)
	for _, l := range lits {
		cl = append(cl, l.Neg())
	}
	cl = append(cl, g)
	e.mustAdd(cl...)
	return g
}

// orLits returns a literal g with g <-> OR(lits).
func (e *Encoder) orLits(lits []sat.Lit) sat.Lit {
	switch len(lits) {
	case 0:
		return e.constTrue().Neg()
	case 1:
		return lits[0]
	}
	g := e.fresh()
	// l_i -> g
	for _, l := range lits {
		e.mustAdd(l.Neg(), g)
	}
	// g -> OR l_i
	cl := make([]sat.Lit, 0, len(lits)+1)
	for _, l := range lits {
		cl = append(cl, l)
	}
	cl = append(cl, g.Neg())
	e.mustAdd(cl...)
	return g
}

// atLeastLit returns a literal equivalent to "at least k of lits are
// true" using a biconditional sequential (unary) counter: s[j] after
// step i holds iff at least j of the first i literals are true. Only the
// first k counter cells are materialized.
func (e *Encoder) atLeastLit(lits []sat.Lit, k int) sat.Lit {
	n := len(lits)
	if k <= 0 {
		return e.constTrue()
	}
	if k > n {
		return e.constTrue().Neg()
	}
	// prev[j] = "at least j+1 of the literals seen so far are true".
	prev := make([]sat.Lit, 0, k)
	for i, x := range lits {
		width := i + 1
		if width > k {
			width = k
		}
		cur := make([]sat.Lit, width)
		for j := 0; j < width; j++ {
			var ge sat.Lit // at least j+1 among first i+1
			switch {
			case j == i:
				// Needs all first i+1 true: s = prev[j-1] AND x (or
				// just x when j == 0).
				if j == 0 {
					ge = x
				} else {
					ge = e.andLits([]sat.Lit{prev[j-1], x})
				}
			case j == 0:
				// At least 1: s = prev[0] OR x.
				ge = e.orLits([]sat.Lit{prev[0], x})
			default:
				// s = prev[j] OR (prev[j-1] AND x).
				carry := e.andLits([]sat.Lit{prev[j-1], x})
				ge = e.orLits([]sat.Lit{prev[j], carry})
			}
			cur[j] = ge
		}
		prev = cur
	}
	return prev[k-1]
}

// Assert requires f to hold in every model.
func (e *Encoder) Assert(f *Formula) {
	// Top-level conjunctions are split to keep the CNF shallow.
	if f.kind == kindAnd {
		for _, k := range f.kids {
			e.Assert(k)
		}
		return
	}
	if f.kind == kindConst {
		if !f.b {
			e.mustAdd() // empty clause: unsat
		}
		return
	}
	e.mustAdd(e.Lit(f))
}

// AssertNot requires f to be false in every model.
func (e *Encoder) AssertNot(f *Formula) { e.mustAdd(e.Lit(f).Neg()) }

// AssertGuarded requires f to hold whenever the selector formula sel
// holds: every emitted clause carries ¬sel as an activation literal.
// While sel is free the guarded constraints are inert (a model may set
// sel false), so a database of guarded groups is a sound weakening of
// any subset of them; asserting sel as a unit activates the group, and
// asserting ¬sel permanently retires it. This is the delta-aware
// encoding cache's mechanism for disabling stale constraint groups
// without rebuilding the CNF (DESIGN.md §16). Top-level conjunctions
// are split like Assert's, so each conjunct gets its own short guarded
// clause instead of one deep Tseitin tree.
func (e *Encoder) AssertGuarded(sel, f *Formula) {
	if f.kind == kindAnd {
		for _, k := range f.kids {
			e.AssertGuarded(sel, k)
		}
		return
	}
	if f.kind == kindConst {
		if !f.b {
			e.Assert(Not(sel))
		}
		return
	}
	e.mustAdd(e.Lit(sel).Neg(), e.Lit(f))
}

// Solve decides the asserted constraints, optionally under assumption
// formulas (each assumption is encoded and passed to the SAT core as an
// assumption literal, so it does not permanently constrain the
// instance).
func (e *Encoder) Solve(assumptions ...*Formula) sat.Status {
	lits := make([]sat.Lit, len(assumptions))
	for i, a := range assumptions {
		lits[i] = e.Lit(a)
	}
	return e.solver.Solve(lits...)
}

// SolvePortfolio decides the asserted constraints like Solve, but races
// diversified solver replicas with clause sharing and inprocessing (see
// sat.Solver.SolvePortfolio). The winning replica's state is adopted
// into the encoder's solver, so Value, Model, and Block behave exactly
// as after a serial Solve; an Unsat verdict is identical to serial
// solving, while a Sat model may be a different valid assignment.
func (e *Encoder) SolvePortfolio(opts sat.PortfolioOptions, assumptions ...*Formula) (sat.Status, sat.PortfolioStats) {
	lits := make([]sat.Lit, len(assumptions))
	for i, a := range assumptions {
		lits[i] = e.Lit(a)
	}
	return e.solver.SolvePortfolio(opts, lits...)
}

// Model returns the values of all named variables after a Sat answer.
type Model map[string]bool

// Model extracts the named-variable assignment; call only after Solve
// returned Sat.
func (e *Encoder) Model() Model {
	m := make(Model, len(e.vars))
	for name, v := range e.vars {
		m[name] = e.solver.Value(v) == sat.True
	}
	return m
}

// Value reports the current truth value of a named variable (Unknown if
// the name was never used).
func (e *Encoder) Value(name string) sat.Tribool {
	v, ok := e.vars[name]
	if !ok {
		return sat.Unknown
	}
	return e.solver.Value(v)
}

// Block adds a clause excluding the given (partial) assignment: at least
// one listed variable must take a value different from the one given.
// It is the workhorse of threat-vector enumeration.
func (e *Encoder) Block(assignment map[string]bool) {
	lits := make([]sat.Lit, 0, len(assignment))
	for name, val := range assignment {
		l := e.VarLit(name)
		if val {
			l = l.Neg()
		}
		lits = append(lits, l)
	}
	e.mustAdd(lits...)
}
