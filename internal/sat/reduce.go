package sat

import "time"

// ReduceRoot applies the root-level assignment to the problem clause
// database: it propagates to fixpoint, deletes every root-satisfied
// clause, and strips root-false literals from the rest. This is the
// cheap, linear tail of Simplify — no probing, no subsumption, no
// variable elimination — for callers that have just asserted a batch of
// units over an already-preprocessed database and want the clauses
// specialized under them (the delta cache runs it per sealed snapshot:
// asserting the guard selectors turns every (¬sel ∨ C) into C and every
// retired group into satisfied clauses, at unit-propagation cost rather
// than a full preprocessing pass; see DESIGN.md §16).
//
// Strengthening never produces a unit or empty clause: after propagate
// reaches fixpoint without conflict, any non-satisfied clause has at
// least two non-false literals (the watch invariant would have
// propagated or conflicted otherwise), so the pass needs no inner
// propagation loop. Learned clauses are left alone — the intended call
// point is before any search or import has populated them.
//
// It reports false when propagation proves the database unsatisfiable
// at the root, mirroring Simplify.
func (s *Solver) ReduceRoot() bool {
	start := time.Now()
	defer func() { s.stats.SimplifyTime += time.Since(start) }()

	s.cancelUntil(0)
	if s.rootUnsat {
		return false
	}
	if s.propagate() != nil {
		s.markRootUnsat()
		return false
	}

	kept := s.clauses[:0]
	for _, c := range s.clauses {
		if c.deleted {
			continue
		}
		satisfied := false
		falseLits := 0
		for _, l := range c.lits {
			switch s.value(l) {
			case True:
				satisfied = true
			case False:
				falseLits++
			}
			if satisfied {
				break
			}
		}
		switch {
		case satisfied:
			s.detach(c)
			s.proofStep(ProofDelete, c.lits)
			c.deleted = true
		case falseLits > 0:
			// Detach while the watched literals are still at positions 0
			// and 1, then rebuild the literal slice; the survivors are all
			// root-unassigned, so any two of them may be watched.
			s.detach(c)
			lits := make([]Lit, 0, len(c.lits)-falseLits)
			for _, l := range c.lits {
				if s.value(l) != False {
					lits = append(lits, l)
				}
			}
			// Add-before-Delete keeps the proof step RUP: assuming the
			// strengthened clause false falsifies the original under the
			// root units already on the trail.
			s.proofStep(ProofAdd, lits)
			s.proofStep(ProofDelete, c.lits)
			c.lits = lits
			s.attach(c)
			kept = append(kept, c)
		default:
			kept = append(kept, c)
		}
	}
	s.clauses = kept

	// Root assignments are now facts of the database, not consequences of
	// clauses that may have just been strengthened away; drop the reason
	// pointers like Simplify's rebuild does.
	for _, l := range s.trail {
		s.reason[l.Var()] = nil
	}
	s.qhead = len(s.trail)
	return true
}

// ProbeRoot runs bounded failed-literal probing at the root level (the
// probing stage of Simplify on its own): each candidate literal is
// assumed and propagated, and a conflict fixes its negation as a root
// unit. Low-numbered variables are probed first, which on the encoder's
// numbering means the named structural interface — exactly the
// variables the per-query budget clauses will constrain — so units
// derived here are the ones that let a later solve finish at
// propagation depth. Reports false when probing proves the database
// unsatisfiable.
func (s *Solver) ProbeRoot(maxProbes int) bool {
	start := time.Now()
	defer func() { s.stats.SimplifyTime += time.Since(start) }()

	s.cancelUntil(0)
	if s.rootUnsat {
		return false
	}
	if s.propagate() != nil {
		s.markRootUnsat()
		return false
	}
	s.probeFailedLiterals(maxProbes)
	return !s.rootUnsat
}
