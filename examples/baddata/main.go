// Bad data: why (k,r)-resilient bad-data detectability matters.
//
// The example runs the DC weighted-least-squares state estimator on the
// 5-bus case-study system twice: once with a redundant measurement set,
// where an injected gross error is caught by the chi-square /
// largest-normalized-residual tests, and once with a minimal (just
// observable) set, where the same corruption is silently absorbed into
// the state estimate. It then shows the formal verifier predicting
// exactly this: the full configuration is 1-bad-data detectable, while
// after RTU failures reduce redundancy it is not.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"scadaver/internal/core"
	"scadaver/internal/powergrid"
	"scadaver/internal/scadanet"
	"scadaver/internal/stateest"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ms := powergrid.FullMeasurementSet(powergrid.Case5())
	est, err := stateest.New(ms, 1)
	if err != nil {
		return err
	}
	truth := []float64{0, -0.05, -0.12, -0.10, -0.08}
	rng := rand.New(rand.NewSource(1))

	// Redundant selection: all 19 possible measurements.
	all := make([]int, ms.Len())
	for i := range all {
		all[i] = i
	}
	sigma := make([]float64, len(all))
	for i := range sigma {
		sigma[i] = 0.01
	}
	z, err := est.Measure(truth, all, 0.005, rng)
	if err != nil {
		return err
	}
	corrupt := 4 // flow 1->2
	z[corrupt] += 3.0
	fmt.Printf("redundant set (%d measurements), corrupting %v:\n", len(all), ms.Msrs[all[corrupt]])
	flagged, err := est.DetectBadData(z, sigma, all, 40, 3)
	if err != nil {
		return err
	}
	fmt.Printf("  bad-data detection flagged measurement indices %v\n", flagged)

	// Minimal selection: spanning-tree flows only (m = n-1): every
	// measurement is critical.
	var minimal []int
	want := map[[2]int]bool{{1, 2}: true, {2, 3}: true, {2, 4}: true, {4, 5}: true}
	for i, m := range ms.Msrs {
		if m.Kind == powergrid.FlowForward && want[[2]int{m.From, m.To}] {
			minimal = append(minimal, i)
		}
	}
	zMin, err := est.Measure(truth, minimal, 0, nil)
	if err != nil {
		return err
	}
	zMin[1] += 3.0
	res, err := est.Estimate(zMin, nil, minimal)
	if err != nil {
		return err
	}
	fmt.Printf("minimal set (%d measurements), same class of corruption:\n", len(minimal))
	fmt.Printf("  chi-square = %.2e (structurally zero: the bad value is absorbed)\n", res.ChiSquare)
	fmt.Printf("  corrupted estimate: %+.4f (truth %+.4f)\n", res.Angles[2], truth[2])

	// The formal verifier predicts this from configuration alone.
	cfg, err := scadanet.CaseStudyConfig(false)
	if err != nil {
		return err
	}
	analyzer, err := core.NewAnalyzer(cfg)
	if err != nil {
		return err
	}
	fmt.Println("\nformal verification of (k,r)-resilient bad-data detectability:")
	for _, q := range []core.Query{
		{Property: core.BadDataDetectability, Combined: true, K: 0, R: 0},
		{Property: core.BadDataDetectability, Combined: true, K: 0, R: 1},
		{Property: core.BadDataDetectability, Combined: true, K: 1, R: 1},
	} {
		res, err := analyzer.Verify(q)
		if err != nil {
			return err
		}
		fmt.Printf("  %v\n", res)
	}
	return nil
}
