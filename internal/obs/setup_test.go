package obs

import (
	"bytes"
	"errors"
	"net"
	"path/filepath"
	"strings"
	"testing"

	"scadaver/internal/faultinject"
)

// TestSetupTraceFileUnwritable checks Setup fails fast, before any work
// runs, when the trace path cannot be created.
func TestSetupTraceFileUnwritable(t *testing.T) {
	path := filepath.Join(t.TempDir(), "no-such-dir", "trace.jsonl")
	_, _, _, err := Setup("x", path, "", "")
	if err == nil || !strings.Contains(err.Error(), "create trace file") {
		t.Fatalf("unwritable trace path: err = %v", err)
	}
}

// TestSetupPprofPortBound checks that a pprof address already held by
// another listener is a Setup error, and that the partially-constructed
// endpoints (the trace file opened first) are released on that path.
func TestSetupPprofPortBound(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	traceFile := filepath.Join(t.TempDir(), "trace.jsonl")
	_, _, _, err = Setup("x", traceFile, "", ln.Addr().String())
	if err == nil || !strings.Contains(err.Error(), "pprof listener") {
		t.Fatalf("bound pprof port: err = %v", err)
	}
	// The trace closer ran: the header-only file exists and is complete.
	assertFileContains(t, traceFile, TraceSchema)
}

// TestSetupMetricsFileUnwritable checks the metrics export error
// surfaces from the close function (metrics are written at close, not
// at Setup).
func TestSetupMetricsFileUnwritable(t *testing.T) {
	path := filepath.Join(t.TempDir(), "no-such-dir", "metrics.json")
	_, reg, closeObs, err := Setup("x", "", path, "")
	if err != nil {
		t.Fatal(err)
	}
	reg.Inc("ops_total", nil)
	if err := closeObs(); err == nil || !strings.Contains(err.Error(), "create metrics file") {
		t.Fatalf("unwritable metrics path: close err = %v", err)
	}
}

// TestTracerInjectedWriteFaultLatches drives the tracer over a
// fault-injected writer: the header succeeds, the first span's begin
// record hits an injected transient fault, and the tracer latches —
// every later record is dropped rather than written to a sink that
// already failed, and Err reports the original injected error.
func TestTracerInjectedWriteFaultLatches(t *testing.T) {
	var buf bytes.Buffer
	faults := faultinject.New(1).FailWrites(1) // write 0 is the header
	tr := NewTracer(faults.WrapWriter(&buf))

	sp := tr.Start("op") // injected failure here
	sp.Event("progress")
	sp.End()
	tr.Start("later").End()

	if err := tr.Err(); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("Err() = %v, want wrapped ErrInjected", err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1 || !strings.Contains(lines[0], TraceSchema) {
		t.Fatalf("latched tracer kept writing:\n%s", buf.String())
	}
	if got := faults.Counts().WriteFaults; got != 1 {
		t.Fatalf("injected %d write faults, want 1", got)
	}
}
