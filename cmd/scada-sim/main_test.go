package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const configPath = "../../testdata/case5bus.scada"

func TestRunDoS(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-config", configPath, "-dos", "9", "-at", "2s", "-outage", "3s", "-horizon", "8s"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "availability: observability 100.0%") {
		t.Fatalf("single RTU DoS must keep observability:\n%s", out)
	}
	if !strings.Contains(out, "worst concurrent device failures: 1") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestRunDoSBreaks(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-config", configPath, "-dos", "9,11,12", "-at", "1s", "-outage", "3s", "-horizon", "6s"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "availability: observability 100.0%") {
		t.Fatalf("three RTUs down must lose observability:\n%s", sb.String())
	}
}

func TestRunScenarioFile(t *testing.T) {
	scenario := `{
  "name": "router cut",
  "horizonSeconds": 4,
  "stepSeconds": 1,
  "events": [
    {"atSeconds": 1, "kind": "link-down", "link": 13},
    {"atSeconds": 3, "kind": "link-up", "link": 13}
  ]
}`
	path := filepath.Join(t.TempDir(), "sc.json")
	if err := os.WriteFile(path, []byte(scenario), 0o644); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := run([]string{"-config", configPath, "-scenario", path}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, `scenario "router cut": 5 samples`) {
		t.Fatalf("output:\n%s", out)
	}
	// Link 13 is the router-MTU backbone: its cut zeroes delivery.
	if !strings.Contains(out, "L13") {
		t.Fatalf("down-link column missing:\n%s", out)
	}
	if strings.Contains(out, "availability: observability 100.0%") {
		t.Fatalf("backbone cut must lose observability:\n%s", out)
	}
}

func TestRunErrors(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{}, &sb); err == nil {
		t.Fatal("missing -config must error")
	}
	if err := run([]string{"-config", configPath}, &sb); err == nil {
		t.Fatal("missing -scenario/-dos must error")
	}
	if err := run([]string{"-config", configPath, "-dos", "x"}, &sb); err == nil {
		t.Fatal("bad -dos must error")
	}
	if err := run([]string{"-config", configPath, "-scenario", "/nonexistent.json"}, &sb); err == nil {
		t.Fatal("missing scenario must error")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"events":[{"kind":"explode"}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-config", configPath, "-scenario", bad}, &sb); err == nil {
		t.Fatal("unknown event kind must error")
	}
}
