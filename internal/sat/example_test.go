package sat_test

import (
	"fmt"

	"scadaver/internal/sat"
)

// Example_portfolio races four diversified replicas of one solver on a
// pigeonhole instance. UNSAT verdicts are deterministic — every replica
// proves the same formula — so the portfolio is safe for certification
// queries; only the wall-clock (and, for SAT instances, the particular
// model) depends on which replica wins.
func Example_portfolio() {
	s := sat.New()

	// PHP(6,5): six pigeons, five holes — classically hard for CDCL.
	const pigeons, holes = 6, 5
	vars := make([][]sat.Var, pigeons)
	for i := range vars {
		vars[i] = make([]sat.Var, holes)
		for j := range vars[i] {
			vars[i][j] = s.NewVar()
		}
	}
	for i := 0; i < pigeons; i++ { // every pigeon sits somewhere
		lits := make([]sat.Lit, holes)
		for j := 0; j < holes; j++ {
			lits[j] = sat.PosLit(vars[i][j])
		}
		if err := s.AddClause(lits...); err != nil {
			fmt.Println(err)
			return
		}
	}
	for j := 0; j < holes; j++ { // no hole holds two pigeons
		for i := 0; i < pigeons; i++ {
			for k := i + 1; k < pigeons; k++ {
				if err := s.AddClause(sat.NegLit(vars[i][j]), sat.NegLit(vars[k][j])); err != nil {
					fmt.Println(err)
					return
				}
			}
		}
	}

	status, pstats := s.SolvePortfolio(sat.PortfolioOptions{Replicas: 4})
	fmt.Println(status, "with", pstats.Replicas, "replicas")
	// Output: unsat with 4 replicas
}
