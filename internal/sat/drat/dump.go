package drat

import (
	"bufio"
	"fmt"
	"io"
	"strconv"

	"scadaver/internal/sat"
)

// Dump buffers a proof stream as text: the input clauses as a DIMACS
// CNF body and the derivation as DRAT lines ("d "-prefixed deletions),
// the format external checkers such as drat-trim consume. Use it when
// the in-process Checker's verdict needs independent confirmation:
//
//	dump := drat.NewDump()
//	solver.SetProofHook(dump) // or drat.Tee(checker, dump)
//	...
//	dump.WriteDIMACS(cnfFile)
//	dump.WriteProof(proofFile)
type Dump struct {
	inputs []string
	steps  []string
	maxVar int
}

// NewDump returns an empty dump.
func NewDump() *Dump { return &Dump{} }

// Step implements sat.ProofWriter.
func (d *Dump) Step(op sat.ProofOp, lits []sat.Lit) {
	for _, l := range lits {
		if v := int(l.Var()) + 1; v > d.maxVar {
			d.maxVar = v
		}
	}
	switch op {
	case sat.ProofInput:
		d.inputs = append(d.inputs, dimacsLine("", lits))
	case sat.ProofAdd:
		d.steps = append(d.steps, dimacsLine("", lits))
	case sat.ProofDelete:
		d.steps = append(d.steps, dimacsLine("d ", lits))
	}
}

// Inputs returns the number of buffered input clauses.
func (d *Dump) Inputs() int { return len(d.inputs) }

// WriteDIMACS writes the input formula in DIMACS CNF format.
func (d *Dump) WriteDIMACS(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "p cnf %d %d\n", d.maxVar, len(d.inputs)); err != nil {
		return err
	}
	for _, line := range d.inputs {
		if _, err := bw.WriteString(line); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteProof writes the derivation in DRAT text format.
func (d *Dump) WriteProof(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, line := range d.steps {
		if _, err := bw.WriteString(line); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func dimacsLine(prefix string, lits []sat.Lit) string {
	buf := make([]byte, 0, len(prefix)+4*len(lits)+3)
	buf = append(buf, prefix...)
	for _, l := range lits {
		n := int(l.Var()) + 1
		if l.Sign() {
			n = -n
		}
		buf = strconv.AppendInt(buf, int64(n), 10)
		buf = append(buf, ' ')
	}
	buf = append(buf, '0', '\n')
	return string(buf)
}

// Tee fans one proof stream out to several writers (e.g. an in-process
// Checker plus a Dump for external re-checking).
func Tee(ws ...sat.ProofWriter) sat.ProofWriter { return tee(ws) }

type tee []sat.ProofWriter

// Step implements sat.ProofWriter.
func (t tee) Step(op sat.ProofOp, lits []sat.Lit) {
	for _, w := range t {
		w.Step(op, lits)
	}
}
