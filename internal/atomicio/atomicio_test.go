package atomicio

import (
	"bufio"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"scadaver/internal/faultinject"
)

func TestWriteFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.json")
	if err := WriteFile(path, func(w *bufio.Writer) error {
		_, err := io.WriteString(w, "hello")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "hello" {
		t.Fatalf("content = %q", data)
	}
}

// TestWriteFilePreservesPrevious pins the core guarantee: a failing
// write leaves the previous complete version untouched and litters no
// temp files.
func TestWriteFilePreservesPrevious(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	if err := os.WriteFile(path, []byte("previous"), 0o644); err != nil {
		t.Fatal(err)
	}

	boom := errors.New("boom")
	err := WriteFile(path, func(w *bufio.Writer) error {
		io.WriteString(w, "partial new content")
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "previous" {
		t.Fatalf("previous content clobbered: %q", data)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Fatalf("temp file littered: %s", e.Name())
		}
	}
}

// TestWriteFileInjectedFault drives the writer through a faultinject
// plan the way the checkpoint writer does: the injected transient error
// aborts the rename, the target never appears.
func TestWriteFileInjectedFault(t *testing.T) {
	faults := faultinject.New(7).FailWrites(0)
	path := filepath.Join(t.TempDir(), "ck.jsonl")
	err := WriteFile(path, func(w *bufio.Writer) error {
		fw := faults.WrapWriter(w)
		_, err := io.WriteString(fw, "entry\n")
		return err
	})
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if _, serr := os.Stat(path); !os.IsNotExist(serr) {
		t.Fatalf("target file exists after failed write (stat err = %v)", serr)
	}
}
