// Package obs is the repository's dependency-free observability core:
// hierarchical span tracing with a JSON-lines sink, and a concurrency-
// safe metrics registry (counters and duration histograms) with
// Prometheus-text and JSON export.
//
// The package is built around two rules. First, disabled observability
// must cost (almost) nothing: every Span and Registry method is safe on
// a nil receiver and returns immediately, so instrumented code carries
// exactly one nil-check per call site and no allocation when tracing or
// metrics are off. Second, producers never buffer: the tracer emits one
// JSONL record at span begin, span end, and each point event, so a
// cancelled or crashed run leaves a readable prefix whose open spans
// identify the in-flight work.
//
// The span model mirrors the verification pipeline: a root span per
// process or campaign, one "query" span per verification, and child
// phase spans ("build", "encode", "solve", "decode"). The solver's
// progress probe (sat.Solver.SetProgress) surfaces as "progress" events
// on the solve span. See DESIGN.md §8 for the record schema and the
// measured overhead.
package obs
