package scadanet

import (
	"fmt"

	"scadaver/internal/powergrid"
	"scadaver/internal/secpolicy"
)

// This file embeds the paper's Section IV case study: a 5-bus subsystem
// of the IEEE 14-bus system with 14 measurements, 8 IEDs (IDs 1–8),
// 4 RTUs (9–12), one MTU (13) and one router (14), reconstructed from
// Table II. A few Jacobian rows and IED→measurement lines are garbled in
// the available paper text; the reconstruction below fills them with the
// physically consistent choices documented in EXPERIMENTS.md (E1/E2) and
// reproduces the paper's qualitative results.

// CaseStudyJacobian returns the 14×5 measurement Jacobian of Table II.
// Rows 1–7 are line power flows, 8–11 bus injections at buses 2–5
// (with full-IEEE-14 diagonal values, as published), 12–14 the remaining
// flow/injection measurements.
func CaseStudyJacobian() [][]float64 {
	return [][]float64{
		{0, -5.05, 5.05, 0, 0},              // z1: flow 3→2
		{0, -5.67, 0, 5.67, 0},              // z2: flow 4→2
		{0, -5.75, 0, 0, 5.75},              // z3: flow 5→2
		{0, 0, 0, -23.75, 23.75},            // z4: flow 5→4
		{16.9, -16.9, 0, 0, 0},              // z5: flow 1→2
		{0, 0, 5.85, -5.85, 0},              // z6: flow 3→4
		{0, 0, 0, 23.75, -23.75},            // z7: flow 4→5
		{-16.9, 33.37, -5.05, -5.67, -5.75}, // z8: injection bus 2
		{0, -5.05, 10.9, -5.85, 0},          // z9: injection bus 3
		{0, -5.67, -5.85, 41.85, -23.75},    // z10: injection bus 4
		{-4.48, -5.75, 0, -23.75, 37.95},    // z11: injection bus 5
		{4.48, 0, 0, 0, -4.48},              // z12: flow 1→5
		{0, 0, -5.85, 5.85, 0},              // z13: flow 4→3
		{21.38, -16.9, 0, 0, -4.48},         // z14: injection bus 1
	}
}

// CaseStudyConfig builds the Section IV input. fig4 selects the paper's
// Fig. 4 topology variant, where RTU 9 connects to RTU 12 instead of to
// the router.
func CaseStudyConfig(fig4 bool) (*Config, error) {
	ms, err := powergrid.FromJacobian(CaseStudyJacobian())
	if err != nil {
		return nil, fmt.Errorf("case study: %w", err)
	}
	net := NewNetwork()
	add := func(kind DeviceKind, lo, hi int) error {
		for id := lo; id <= hi; id++ {
			if _, err := net.AddDevice(Device{ID: DeviceID(id), Kind: kind}); err != nil {
				return err
			}
		}
		return nil
	}
	if err := add(IED, 1, 8); err != nil {
		return nil, err
	}
	if err := add(RTU, 9, 12); err != nil {
		return nil, err
	}
	if err := add(MTU, 13, 13); err != nil {
		return nil, err
	}
	if err := add(Router, 14, 14); err != nil {
		return nil, err
	}

	type linkSpec struct {
		a, b     int
		profiles []secpolicy.Profile
	}
	chapSHA := func(shaBits int) []secpolicy.Profile {
		return []secpolicy.Profile{{Algo: secpolicy.CHAP, KeyBits: 64}, {Algo: secpolicy.SHA2, KeyBits: shaBits}}
	}
	rsaAES := func(rsaBits int) []secpolicy.Profile {
		return []secpolicy.Profile{{Algo: secpolicy.RSA, KeyBits: rsaBits}, {Algo: secpolicy.AES, KeyBits: 256}}
	}
	hmac128 := []secpolicy.Profile{{Algo: secpolicy.HMAC, KeyBits: 128}}

	links := []linkSpec{
		{1, 9, hmac128},        // Table II: 1 9 hmac 128
		{2, 9, chapSHA(128)},   // 2 9 chap 64 sha2 128
		{3, 9, chapSHA(128)},   // 3 9 chap 64 sha2 128
		{4, 10, nil},           // no security profile for this pair
		{5, 11, chapSHA(256)},  // 5 11 chap 64 sha2 256
		{6, 11, chapSHA(256)},  // 6 11 chap 64 sha2 256
		{7, 12, chapSHA(128)},  // 7 12 chap 64 sha2 128
		{8, 12, chapSHA(128)},  // 8 12 chap 64 sha2 128
		{9, 14, rsaAES(2048)},  // Table II lists the 9↔MTU pair: rsa 2048 aes 256
		{10, 11, hmac128},      // 10 11 hmac 128
		{11, 14, rsaAES(4096)}, // 11↔MTU pair: rsa 4096 aes 256
		{12, 14, rsaAES(2048)}, // 12↔MTU pair: rsa 2048 aes 256
		{14, 13, rsaAES(4096)}, // router↔control-center backbone
	}
	if fig4 {
		// Fig. 4: RTU 9 reaches the MTU through RTU 12 instead of the
		// router; its pairwise security profile moves with it.
		links[8] = linkSpec{9, 12, rsaAES(2048)}
	}
	for _, ls := range links {
		if _, err := net.AddLink(DeviceID(ls.a), DeviceID(ls.b), ls.profiles...); err != nil {
			return nil, err
		}
	}

	// Table II: measurements corresponding to IEDs.
	assign := map[int][]int{
		1: {1, 2},
		2: {3, 5},
		3: {11},
		4: {12},
		5: {7, 9},
		6: {13},
		7: {6, 8, 10},
		8: {4, 14},
	}
	for ied := 1; ied <= 8; ied++ {
		if err := net.AssignMeasurements(DeviceID(ied), assign[ied]...); err != nil {
			return nil, err
		}
	}

	cfg := &Config{Msrs: ms, Net: net, K1: 1, K2: 1, R: 1}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return cfg, nil
}
