package core

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"scadaver/internal/logic"
	"scadaver/internal/obs"
	"scadaver/internal/sat"
	"scadaver/internal/scadanet"
)

// EncodingVersion identifies the CNF encoding scheme — the clause shapes
// emitted by encodeStructure/violationFormula and the preprocessing
// applied on top of them (sat.Solver.Simplify). It participates in every
// encoding-cache key and in the verification service's enumeration
// checkpoint fingerprint, so bump it whenever the emitted clauses change
// meaning: stale snapshots and resumed enumerations are then rejected
// instead of silently mixed with the new encoding.
const EncodingVersion = 1

// WithPresimplify enables CNF preprocessing before search: after a
// query's constraints are encoded, the solver runs unit propagation to
// fixpoint, failed-literal probing, subsumption/self-subsuming
// resolution, and bounded variable elimination over the anonymous
// Tseitin auxiliaries (named variables are frozen — see
// logic.Encoder.Simplify). Verdicts are unchanged; the search starts on
// a smaller, stronger formula. Combined with WithEncodingCache the cost
// is paid once per structure and amortized across every query that
// shares it.
func WithPresimplify(on bool) Option {
	return func(a *Analyzer) { a.presimplify = on }
}

// WithEncodingCache shares a content-addressed cache of structural
// encodings across analyzers. Verify, Sweep, and threat enumeration
// then clone a ready (and, under WithPresimplify, pre-simplified)
// solver snapshot instead of re-encoding the configuration per query;
// only the per-query failure budget is encoded on the clone. The cache
// is safe for concurrent use — Runner workers and service handlers
// share one instance — and concurrent requests for the same snapshot
// build it exactly once (per-entry singleflight).
func WithEncodingCache(c *EncodingCache) Option {
	return func(a *Analyzer) { a.cache = c }
}

// EncodingCache holds immutable solver snapshots of structural
// encodings, keyed by content: a fingerprint of the configuration,
// security policy and path bound, the query's structure-relevant fields
// (property, corrupted-measurement budget, link budget), whether
// preprocessing ran, and EncodingVersion. Entries are built once under
// a per-entry sync.Once and never mutated afterwards; consumers receive
// private clones (logic.Encoder.Clone), so any number of goroutines may
// hit one entry concurrently.
type EncodingCache struct {
	mu      sync.Mutex
	entries map[string]*encodingEntry
	tick    uint64 // LRU clock, under mu

	limit int           // max entries (0 = unbounded)
	reg   *obs.Registry // eviction/delta counters (nil = none)
	delta bool          // delta-aware mode (guarded groups + Mutate)
}

// CacheOption configures an EncodingCache at construction.
type CacheOption func(*EncodingCache)

// CacheWithLimit bounds the cache to n entries, evicting the least
// recently used snapshot when a new structure would exceed the bound
// (n <= 0 keeps the cache unbounded). Queries holding a clone of an
// evicted snapshot are unaffected; the next request for that structure
// rebuilds it. Evictions increment
// scadaver_encoding_cache_evictions_total when a registry is attached.
func CacheWithLimit(n int) CacheOption {
	return func(c *EncodingCache) { c.limit = n }
}

// CacheWithMetrics attaches a metrics registry for the cache-level
// counter families: scadaver_encoding_cache_evictions_total, and in
// delta mode scadaver_delta_reuse_total,
// scadaver_delta_reencoded_total and scadaver_carried_learnts_total.
func CacheWithMetrics(reg *obs.Registry) CacheOption {
	return func(c *EncodingCache) { c.reg = reg }
}

// CacheWithDelta switches the cache to delta-aware snapshots (see
// delta.go): structural encodings are built as activation-literal
// guarded groups, and Mutate evolves them in place under configuration
// deltas instead of discarding them. Plain caches (the default) keep
// the original monolithic snapshot layout byte-for-byte.
func CacheWithDelta() CacheOption {
	return func(c *EncodingCache) { c.delta = true }
}

// encodingEntry is one built snapshot: the base encoder (structure +
// negated property asserted, optionally simplified; the failure budget
// is NOT included), plus the preprocessing counters and duration its
// construction accrued, reported once by the query that built it. In
// delta mode the entry additionally carries its evolvable deltaState
// (atomically published; cleared when a mutation moves the lineage to
// the successor fingerprint's entry) and the harvest variable bound of
// the sealed snapshot the entry serves.
type encodingEntry struct {
	once sync.Once
	enc  *logic.Encoder
	pre  sat.Stats

	delta      atomic.Pointer[deltaState]
	harvestMax int

	lastUsed uint64 // LRU tick, under the cache mutex
}

// claimDelta hands the entry's pending mutation counters to the first
// query consuming an evolved snapshot (false for plain entries, or when
// a prior query already claimed them).
func (e *encodingEntry) claimDelta() (MutationStats, bool) {
	if st := e.delta.Load(); st != nil {
		return st.claim()
	}
	return MutationStats{}, false
}

// NewEncodingCache returns an empty cache, ready to be shared across
// analyzers and goroutines.
func NewEncodingCache(opts ...CacheOption) *EncodingCache {
	c := &EncodingCache{entries: make(map[string]*encodingEntry)}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Len reports how many distinct structural encodings the cache holds.
func (c *EncodingCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

func (c *EncodingCache) entry(key string) *encodingEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok {
		e = &encodingEntry{}
		c.entries[key] = e
		c.evictLocked(key)
	}
	c.tick++
	e.lastUsed = c.tick
	return e
}

// evictLocked enforces the entry cap after an insert, dropping the
// least recently used entry other than the one just added. Callers
// hold c.mu.
func (c *EncodingCache) evictLocked(justAdded string) {
	for c.limit > 0 && len(c.entries) > c.limit {
		victim := ""
		var oldest uint64
		for key, e := range c.entries {
			if key == justAdded {
				continue
			}
			if victim == "" || e.lastUsed < oldest {
				victim, oldest = key, e.lastUsed
			}
		}
		if victim == "" {
			return
		}
		delete(c.entries, victim)
		c.reg.Inc("scadaver_encoding_cache_evictions_total", nil)
	}
}

// Mutate evolves the cache under a configuration delta: every delta-
// aware entry keyed to the old configuration's fingerprint is diffed
// against the mutated configuration (content-signature driven — see
// deltaGroupSpecs), its dirty groups retired and re-encoded, its learnt
// stash pruned and re-imported, and the evolved state republished under
// the new configuration's fingerprint so subsequent queries on the
// mutated configuration hit warm snapshots. The superseded entries keep
// serving their (still valid) old-configuration snapshots, but lose
// evolvability: a lineage moves forward, never forks.
//
// aopts must carry the same analyzer options the querying analyzers use
// (policy, maxPaths, presimplify, faults) — they shape both the
// fingerprint and the group inventory. On a no-op delta (identical
// canonical configurations, e.g. a key rotation to the same bits) the
// entries are reused verbatim and counted as full reuse.
func (c *EncodingCache) Mutate(old, next *scadanet.Config, aopts ...Option) (MutationStats, error) {
	var total MutationStats
	if c == nil || !c.delta {
		return total, nil
	}
	oldA, err := NewAnalyzer(old, aopts...)
	if err != nil {
		return total, fmt.Errorf("core: mutate (old config): %w", err)
	}
	nextA, err := NewAnalyzer(next, aopts...)
	if err != nil {
		return total, fmt.Errorf("core: mutate (mutated config): %w", err)
	}
	oldFP, err := oldA.encodingFingerprint()
	if err != nil {
		return total, err
	}
	newFP, err := nextA.encodingFingerprint()
	if err != nil {
		return total, err
	}

	type candidate struct {
		key string
		e   *encodingEntry
		st  *deltaState
	}
	prefix := oldFP + "|"
	c.mu.Lock()
	var cands []candidate
	for key, e := range c.entries {
		if !strings.HasPrefix(key, prefix) {
			continue
		}
		if st := e.delta.Load(); st != nil {
			cands = append(cands, candidate{key, e, st})
		}
	}
	c.mu.Unlock()
	sort.Slice(cands, func(i, j int) bool { return cands[i].key < cands[j].key })

	if oldFP == newFP {
		// Canonically identical configurations: every snapshot is exact
		// as-is, which is the strongest possible reuse.
		for _, cd := range cands {
			n := uint64(cd.st.activeGroups())
			cd.st.mu.Lock()
			cd.st.pending.DeltaReuse += n
			cd.st.hasPending = true
			cd.st.mu.Unlock()
			total.DeltaReuse += n
			total.Entries++
		}
		c.recordMutation(total)
		return total, nil
	}

	for _, cd := range cands {
		ms := cd.st.evolve(nextA)
		total.add(ms)
		total.Entries++

		ne := &encodingEntry{}
		ne.once.Do(func() {}) // pre-built: the evolved seal is the snapshot
		cd.st.mu.Lock()
		ne.enc = cd.st.sealed
		ne.harvestMax = cd.st.sealedVars
		cd.st.mu.Unlock()
		ne.delta.Store(cd.st)

		newKey := newFP + "|" + strings.TrimPrefix(cd.key, prefix)
		c.mu.Lock()
		cd.e.delta.Store(nil) // the old entry degrades to a static snapshot
		c.tick++
		ne.lastUsed = c.tick
		c.entries[newKey] = ne
		c.evictLocked(newKey)
		c.mu.Unlock()
	}
	c.recordMutation(total)
	return total, nil
}

// recordMutation folds one Mutate's counters into the cache registry.
func (c *EncodingCache) recordMutation(ms MutationStats) {
	if c.reg == nil || ms.Entries == 0 {
		return
	}
	c.reg.Add("scadaver_delta_reuse_total", nil, float64(ms.DeltaReuse))
	c.reg.Add("scadaver_delta_reencoded_total", nil, float64(ms.DeltaReencoded))
	c.reg.Add("scadaver_carried_learnts_total", nil, float64(ms.CarriedLearnts))
}

// encodingKey derives the cache key for q's structural encoding. The
// configuration/policy/maxPaths fingerprint is computed once per
// analyzer; the per-query suffix covers exactly the fields
// encodeStructure and violationFormula consult (property, R, KL) plus
// the preprocessing mode and encoding version.
func (a *Analyzer) encodingKey(q Query) (string, error) {
	fp, err := a.encodingFingerprint()
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("%s|v%d|prop%d|r%d|kl%d|simp%t",
		fp, EncodingVersion, q.Property, q.R, q.KL, a.presimplify), nil
}

// encodingFingerprint memoizes the analyzer's share of the cache key:
// the configuration/policy/maxPaths fingerprint. Mutate uses it to pair
// old- and new-configuration entries without a probe query.
func (a *Analyzer) encodingFingerprint() (string, error) {
	if a.encFP == "" {
		fp, err := CampaignFingerprint(a.cfg, "encoding", a.policy, a.maxPaths)
		if err != nil {
			return "", fmt.Errorf("core: encoding cache key: %w", err)
		}
		a.encFP = fp
	}
	return a.encFP, nil
}

// snapshot returns a private clone of the shared structural encoding
// for q: configuration constraints, delivery definitions and the
// negated property are asserted (and preprocessed under presimplify);
// the failure budget is not, so one snapshot serves every budget. The
// bool reports whether this call built the entry — the building query
// attributes the one-time preprocessing cost and counters; cache hits
// get the snapshot for free.
func (a *Analyzer) snapshot(q Query) (*logic.Encoder, bool, *encodingEntry, error) {
	key, err := a.encodingKey(q)
	if err != nil {
		return nil, false, nil, err
	}
	e := a.cache.entry(key)
	built := false
	e.once.Do(func() {
		built = true
		// Canonicalize to the structure-relevant fields so the snapshot is
		// visibly independent of the device-failure budget.
		probe := Query{Property: q.Property, Combined: true, R: q.R, KL: q.KL}
		if a.cache.delta {
			// Delta mode: build the guarded-group master and serve its
			// sealed snapshot (see delta.go). Logically equivalent to the
			// monolithic encoding over the named variables, but evolvable
			// under EncodingCache.Mutate.
			st := a.buildDeltaState(probe)
			e.pre = st.sealed.Solver().Stats()
			e.enc = st.sealed
			e.harvestMax = st.sealedVars
			e.delta.Store(st)
			return
		}
		enc, delivered := a.encodeStructure(probe)
		enc.Assert(a.violationFormula(probe, delivered))
		if a.presimplify {
			enc.Simplify()
		}
		e.pre = enc.Solver().Stats()
		e.enc = enc
	})
	return e.enc.Clone(), built, e, nil
}

// addPreprocessStats folds a snapshot's one-time preprocessing counters
// into a per-query stats record (only the query that built the snapshot
// does this, so campaign-level sums count the work exactly once).
func addPreprocessStats(dst *sat.Stats, pre sat.Stats) {
	dst.ElimVars += pre.ElimVars
	dst.SubsumedClauses += pre.SubsumedClauses
	dst.StrengthenedClauses += pre.StrengthenedClauses
	dst.FailedLits += pre.FailedLits
	dst.SimplifyTime += pre.SimplifyTime
}

// preprocessPhase splits a snapshot-building query's wall time between
// the build and preprocess phases: the snapshot's Simplify duration is
// reported as Preprocess and removed from Build.
func preprocessPhase(ph *PhaseTimes, pre sat.Stats) {
	ph.Preprocess = pre.SimplifyTime
	ph.Build -= ph.Preprocess
	if ph.Build < 0 {
		ph.Build = 0
	}
}

// enumEncoder returns the fully-asserted encoder backing one threat
// enumeration: a cache clone plus the asserted budget when a cache is
// configured, otherwise a fresh full encoding (preprocessed under
// presimplify). Blocking clauses land on the returned encoder either
// way, never on a shared snapshot.
func (a *Analyzer) enumEncoder(q Query) (*logic.Encoder, error) {
	if a.cache != nil {
		enc, _, _, err := a.snapshot(q)
		if err != nil {
			return nil, err
		}
		enc.Assert(a.budgetFormula(q))
		return enc, nil
	}
	enc := a.encode(q)
	if a.presimplify {
		enc.Simplify()
	}
	return enc, nil
}
