package core

import (
	"testing"
	"time"

	"scadaver/internal/obs"
	"scadaver/internal/powergrid"
	"scadaver/internal/sat"
)

// counterTotal sums every series of one counter family, collapsing the
// labels (property, reason) tests do not care about.
func counterTotal(reg *obs.Registry, name string) float64 {
	var total float64
	for _, c := range reg.Snapshot().Counters {
		if c.Name == name {
			total += c.Value
		}
	}
	return total
}

// findConflictHeavyQuery finds a campaign query whose unbudgeted solve
// spends at least minConflicts conflicts, so budget tests can rely on a
// conflict cap actually biting. The pick is deterministic (serial
// verification over a fixed synthetic topology).
func findConflictHeavyQuery(t *testing.T, a *Analyzer, minConflicts uint64) (Query, *Result) {
	t.Helper()
	for _, q := range campaignQueries(3) {
		res, err := a.Verify(q)
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.Conflicts >= minConflicts {
			return q, res
		}
	}
	t.Skip("no campaign query reaches the conflict threshold on this topology")
	return Query{}, nil
}

// TestBudgetConflictExhaustion pins graceful degradation: a conflict
// budget far below what the query needs yields Status Unsolved with the
// attempt count and failure reason recorded on the Result — never an
// error — and the unsolved/retry counters record the campaign's pain.
func TestBudgetConflictExhaustion(t *testing.T) {
	cfg := synthConfig(t, powergrid.IEEE14(), 41, 2)
	probe, err := NewAnalyzer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	q, _ := findConflictHeavyQuery(t, probe, 8)

	reg := obs.NewRegistry()
	a, err := NewAnalyzer(cfg,
		WithMetrics(reg),
		WithBudget(QueryBudget{Conflicts: 1, Retries: 2, Escalate: 1.5}))
	if err != nil {
		t.Fatal(err)
	}
	res, err := a.Verify(q)
	if err != nil {
		t.Fatalf("budget exhaustion must degrade, not error: %v", err)
	}
	if res.Status != sat.Unsolved {
		t.Fatalf("status = %v, want Unsolved", res.Status)
	}
	if res.FailureReason != ReasonConflicts {
		t.Fatalf("reason = %q, want %q", res.FailureReason, ReasonConflicts)
	}
	if res.Attempts != 3 {
		t.Fatalf("attempts = %d, want 3 (1 + 2 retries)", res.Attempts)
	}
	if got := counterTotal(reg, "scadaver_queries_unsolved_total"); got != 1 {
		t.Fatalf("scadaver_queries_unsolved_total = %v, want 1", got)
	}
	if got := counterTotal(reg, "scadaver_retries_total"); got != 2 {
		t.Fatalf("scadaver_retries_total = %v, want 2", got)
	}
}

// TestBudgetEscalationRecovers pins the retry contract: a query that
// starts with a hopeless conflict budget but enough retries escalates
// its way to a decision, and the decision matches the unbudgeted one.
func TestBudgetEscalationRecovers(t *testing.T) {
	cfg := synthConfig(t, powergrid.IEEE14(), 41, 2)
	probe, err := NewAnalyzer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	q, want := findConflictHeavyQuery(t, probe, 8)

	a, err := NewAnalyzer(cfg,
		WithBudget(QueryBudget{Conflicts: 1, Retries: 30})) // 1 → 2 → 4 → ... covers any instance
	if err != nil {
		t.Fatal(err)
	}
	res, err := a.Verify(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != want.Status {
		t.Fatalf("escalated status = %v, want %v (unbudgeted)", res.Status, want.Status)
	}
	if res.Attempts < 2 {
		t.Fatalf("attempts = %d, want >= 2 (the first 1-conflict attempt cannot succeed)", res.Attempts)
	}
	if res.FailureReason != "" {
		t.Fatalf("decided query has FailureReason = %q, want empty", res.FailureReason)
	}
}

// TestBudgetDeadline drives the wall-clock bound: a deadline of one
// nanosecond has expired by the solver's first interrupt poll, so the
// query degrades with ReasonDeadline.
func TestBudgetDeadline(t *testing.T) {
	cfg := synthConfig(t, powergrid.IEEE57(), 41, 2)
	a, err := NewAnalyzer(cfg, WithBudget(QueryBudget{Deadline: time.Nanosecond}))
	if err != nil {
		t.Fatal(err)
	}
	res, err := a.Verify(Query{Property: SecuredObservability, Combined: true, K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != sat.Unsolved {
		t.Skipf("instance decided before the first interrupt poll (%v)", res.Status)
	}
	if res.FailureReason != ReasonDeadline {
		t.Fatalf("reason = %q, want %q", res.FailureReason, ReasonDeadline)
	}
	if res.Attempts != 1 {
		t.Fatalf("attempts = %d, want 1 (no retries granted)", res.Attempts)
	}
}

// TestBudgetInterruptNotRetried pins the cancellation/budget boundary:
// an externally interrupted solve reports ReasonInterrupted and is NOT
// retried, no matter how many retries the budget grants — the campaign
// is shutting down.
func TestBudgetInterruptNotRetried(t *testing.T) {
	cfg := synthConfig(t, powergrid.IEEE14(), 41, 2)
	a, err := NewAnalyzer(cfg,
		WithInterrupt(func() bool { return true }),
		WithBudget(QueryBudget{Conflicts: 1, Retries: 50}))
	if err != nil {
		t.Fatal(err)
	}
	res, err := a.Verify(Query{Property: Observability, Combined: true, K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != sat.Unsolved {
		t.Fatalf("status = %v, want Unsolved", res.Status)
	}
	if res.FailureReason != ReasonInterrupted {
		t.Fatalf("reason = %q, want %q", res.FailureReason, ReasonInterrupted)
	}
	if res.Attempts != 1 {
		t.Fatalf("attempts = %d, want 1 (interrupted solves must not retry)", res.Attempts)
	}
}

// TestBudgetSweepIsolation ensures a budget armed on a sweep's shared
// solver does not leak across queries: after an exhausted query the
// next budget still gets fresh attempts, and an unbudgeted follow-up
// query on the same analyzer is unconstrained.
func TestBudgetSweepIsolation(t *testing.T) {
	cfg := synthConfig(t, powergrid.IEEE14(), 41, 2)
	a, err := NewAnalyzer(cfg, WithBudget(QueryBudget{Conflicts: 1, Retries: 30}))
	if err != nil {
		t.Fatal(err)
	}
	sw, err := a.NewSweep(Observability, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := NewAnalyzer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k <= 3; k++ {
		res, err := sw.VerifyK(k)
		if err != nil {
			t.Fatal(err)
		}
		want, err := plain.Verify(Query{Property: Observability, Combined: true, K: k})
		if err != nil {
			t.Fatal(err)
		}
		if res.Status != want.Status {
			t.Fatalf("k=%d: sweep-with-budget %v != unbudgeted %v", k, res.Status, want.Status)
		}
	}
}
