// Package cluster turns a fleet of verification-service nodes
// (internal/serve) into one fault-tolerant endpoint. A Coordinator
// consistent-hashes each campaign across the member ring and forwards
// /v1/verify, /v1/sweep and /v1/enumerate with per-attempt deadlines,
// bounded retries (exponential backoff with jitter) and failover to the
// next replica when a member dies mid-request.
//
// The pieces:
//
//   - Ring: a consistent-hash ring with virtual nodes. Owners(key, n)
//     walks the ring to yield the replica order for a key, so routing is
//     stable under membership change — a joining or dying node moves
//     only the keys it owns, never reshuffles the fleet.
//
//   - Detector: a phi-accrual-style failure detector. Each successful
//     health probe is a heartbeat; the suspicion level phi grows with
//     the time since the last heartbeat measured against the observed
//     inter-arrival distribution, and crosses the suspect then the dead
//     threshold. Unlike a fixed timeout, the detector adapts to each
//     member's actual probe cadence.
//
//   - Coordinator: the HTTP front end. It journals the vectors of every
//     in-flight enumeration (bounded, deduplicated by ThreatVector
//     identity), and when the serving member dies mid-stream it carries
//     the journal to the next owner as a fingerprint-bound checkpoint
//     (PUT /v1/checkpoints/{id}), re-issues the request under the same
//     requestId, and deduplicates the replayed prefix — the client sees
//     one uninterrupted stream with zero duplicated and zero lost
//     vectors. Soundness rests on the enumeration antichain argument
//     (see core.EnumerateThreatsResumable) and on the campaign
//     fingerprint, which rejects a journal from a different
//     configuration, query or encoding version with 409 instead of
//     resuming it.
//
// See DESIGN.md §14 for the architecture and the consistency argument.
package cluster
