package obs

// Satellite coverage for the Prometheus text exposition fixes (label
// escaping, gauge # TYPE emission) and histogram edge cases (+Inf
// accounting, zero-observation omission, Snapshot determinism under
// concurrent Observe).

import (
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

func promText(t *testing.T, r *Registry) string {
	t.Helper()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// Per the promtext rules, label values escape backslash to \\ and
// newline to \n — exactly once. The old %q rendering double-escaped
// both, which a Prometheus scraper reads back as literal '\' 'n'.
func TestWritePrometheusLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Inc("m", map[string]string{"v": "a\\b\nc\"d"})
	got := promText(t, r)
	want := `m{v="a\\b\nc\"d"} 1` + "\n"
	if !strings.Contains(got, want) {
		t.Fatalf("escaped series not found.\nwant line: %q\ngot:\n%s", want, got)
	}
	if strings.Contains(got, `\\\\`) || strings.Contains(got, `\\n`) {
		t.Fatalf("double-escaped label value:\n%s", got)
	}
}

// A gauge sharing its name with the preceding counter still needs its
// own # TYPE line; the old dedupe keyed on name alone and skipped it.
func TestWritePrometheusGaugeTypeLine(t *testing.T) {
	r := NewRegistry()
	r.Inc("scadaver_thing", map[string]string{"kind": "counter"})
	r.SetGauge("scadaver_thing", map[string]string{"kind": "gauge"}, 2)
	got := promText(t, r)
	for _, want := range []string{
		"# TYPE scadaver_thing counter\n",
		"# TYPE scadaver_thing gauge\n",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("missing %q in:\n%s", want, got)
		}
	}
}

// Every # TYPE line must appear once per (name, kind) even across many
// series of the same metric.
func TestWritePrometheusTypeLineDeduped(t *testing.T) {
	r := NewRegistry()
	r.Inc("m", map[string]string{"a": "1"})
	r.Inc("m", map[string]string{"a": "2"})
	got := promText(t, r)
	if n := strings.Count(got, "# TYPE m counter"); n != 1 {
		t.Fatalf("# TYPE emitted %d times, want 1:\n%s", n, got)
	}
}

func TestHistogramInfBucketAccounting(t *testing.T) {
	r := NewRegistry()
	top := DefBuckets[len(DefBuckets)-1]
	// One observation beyond the top finite bucket, one exactly on it
	// (le is inclusive), one tiny.
	r.Observe("h", nil, top*10)
	r.Observe("h", nil, top)
	r.Observe("h", nil, DefBuckets[0]/2)
	snap := r.Snapshot()
	if len(snap.Histograms) != 1 {
		t.Fatalf("histograms = %d, want 1", len(snap.Histograms))
	}
	h := snap.Histograms[0]
	if h.Count != 3 {
		t.Fatalf("count = %d, want 3", h.Count)
	}
	// The top finite cumulative bucket holds 2; only +Inf holds all 3.
	if got := h.Buckets[len(h.Buckets)-1].Count; got != 2 {
		t.Fatalf("top finite bucket = %d, want 2", got)
	}
	text := promText(t, r)
	if !strings.Contains(text, `h_bucket{le="+Inf"} 3`) {
		t.Fatalf("+Inf bucket line wrong:\n%s", text)
	}
	if !strings.Contains(text, "h_count 3") {
		t.Fatalf("missing h_count:\n%s", text)
	}
}

// A histogram series only exists once observed: a registry that never
// saw an Observe exports no histogram lines at all.
func TestHistogramZeroObservationOmitted(t *testing.T) {
	r := NewRegistry()
	r.Inc("requests", nil)
	snap := r.Snapshot()
	if len(snap.Histograms) != 0 {
		t.Fatalf("histograms = %+v, want none", snap.Histograms)
	}
	text := promText(t, r)
	if strings.Contains(text, "_bucket") || strings.Contains(text, "histogram") {
		t.Fatalf("zero-observation histogram leaked into:\n%s", text)
	}
}

// Snapshot must be deterministic (sorted series) and internally
// consistent while Observe runs concurrently: cumulative buckets never
// exceed the count, and two snapshots of the same quiesced registry
// are identical.
func TestSnapshotDeterminismUnderConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				r.ObserveDuration("h", map[string]string{"w": string(rune('a' + g))},
					time.Duration(i%100)*time.Millisecond)
			}
		}(g)
	}
	for i := 0; i < 50; i++ {
		snap := r.Snapshot()
		for _, h := range snap.Histograms {
			var prev uint64
			for _, bk := range h.Buckets {
				if bk.Count < prev {
					t.Fatalf("cumulative buckets decreased: %+v", h.Buckets)
				}
				prev = bk.Count
			}
			if prev > h.Count {
				t.Fatalf("finite buckets (%d) exceed count (%d)", prev, h.Count)
			}
		}
	}
	close(stop)
	wg.Wait()
	s1, s2 := r.Snapshot(), r.Snapshot()
	if !reflect.DeepEqual(s1, s2) {
		t.Fatal("snapshots of a quiesced registry differ")
	}
}
