package sat

import (
	"sort"
	"time"
)

// Preprocessing (SatELite-style, Eén & Biere 2005): unit propagation to
// fixpoint, failed-literal probing, backward subsumption, self-subsuming
// resolution, and bounded variable elimination with model
// reconstruction. Simplify rewrites the problem-clause database into an
// equisatisfiable, typically much smaller one before CDCL search starts.
//
// The solver stays incrementally usable afterwards under one contract:
// variables the caller will mention again — in future AddClause calls or
// as Solve assumptions — must be Frozen before Simplify, which exempts
// them from elimination. Eliminated variables are resolved out of the
// clause database entirely; their values are reconstructed into every
// satisfying model by extendModel, so Model and Value keep reporting
// them correctly.

// Bounds keeping preprocessing cheap relative to search. Probing is
// capped per Simplify call; elimination skips variables with large
// occurrence lists (resolving them is quadratic and rarely pays off on
// the structured formulas the encoder emits) and never grows the
// formula: a variable is eliminated only when the non-tautological
// resolvents number at most the clauses they replace plus elimGrow.
const (
	simplifyProbeLimit = 4096
	elimOccLimit       = 40
	elimGrow           = 0
)

// elimRecord remembers, for one eliminated variable, the clauses in
// which it occurred positively at elimination time (snapshots including
// the variable itself). That one side suffices for reconstruction: in a
// model of the simplified formula the variable must be true iff some of
// these clauses is not satisfied by its other literals — were both a
// positive and a negative occurrence clause otherwise-false, their
// resolvent (which Simplify added) would be falsified too.
type elimRecord struct {
	v   Var
	pos [][]Lit
}

// Freeze exempts v from variable elimination in future Simplify calls.
// Callers must freeze every variable they will still refer to after
// simplification — in added clauses, assumptions, or Block-style model
// queries by name. Freezing an already-frozen variable is a no-op.
func (s *Solver) Freeze(v Var) { s.frozen[v] = true }

// Eliminated reports whether v was removed by a previous Simplify.
func (s *Solver) Eliminated(v Var) bool { return s.eliminated[v] }

// Simplify preprocesses the clause database at the root level:
// propagates to fixpoint, probes literals for failed assignments,
// removes subsumed clauses, strengthens clauses by self-subsuming
// resolution, and eliminates non-frozen variables by bounded resolution.
// It reports false when preprocessing proves the instance unsatisfiable
// (subsequent Solve calls return Unsat immediately). Learned clauses are
// discarded — they are logically redundant — so Simplify is best called
// once, after the structural encoding and before search.
func (s *Solver) Simplify() bool {
	start := time.Now()
	defer func() { s.stats.SimplifyTime += time.Since(start) }()

	s.cancelUntil(0)
	if s.rootUnsat {
		return false
	}
	if s.propagate() != nil {
		s.markRootUnsat()
		return false
	}

	s.probeFailedLiterals(simplifyProbeLimit)
	if s.rootUnsat {
		return false
	}

	p := newSimplifier(s)
	if !p.run() {
		s.markRootUnsat()
	}
	p.rebuild()
	return !s.rootUnsat
}

// probeFailedLiterals assumes each candidate literal at a fresh decision
// level and propagates: a conflict proves the literal's negation at the
// root ("failed literal"). Watches are still attached here, so this is
// plain unit propagation, bounded by maxProbes assumptions per call.
func (s *Solver) probeFailedLiterals(maxProbes int) {
	probes := 0
	for v := Var(0); int(v) < len(s.assigns); v++ {
		if probes >= maxProbes {
			return
		}
		if s.assigns[v] != Unknown || s.eliminated[v] {
			continue
		}
		for _, l := range [2]Lit{PosLit(v), NegLit(v)} {
			if s.value(l) != Unknown {
				continue
			}
			probes++
			s.trailLim = append(s.trailLim, len(s.trail))
			s.uncheckedEnqueue(l, nil)
			conflict := s.propagate()
			s.cancelUntil(0)
			if conflict == nil {
				continue
			}
			s.stats.FailedLits++
			// A failed literal's negation is a RUP unit: assuming l and
			// propagating is exactly the RUP check of {¬l}.
			s.proofStep(ProofAdd, []Lit{l.Neg()})
			s.uncheckedEnqueue(l.Neg(), nil)
			if s.propagate() != nil {
				s.markRootUnsat()
				return
			}
		}
	}
}

// simplifier is the occurrence-list workspace of one Simplify call. The
// clause database is copied into an indexed working set (watches play no
// role here); occurrence lists are kept exact — a clause index appears
// in occ[l] iff the live clause contains l — so subsumption candidates
// and resolution partners come straight off the lists.
type simplifier struct {
	s       *Solver
	cls     []simpClause
	occ     [][]int
	queue   []int // clause indices pending backward subsumption
	inQueue []bool
	units   []Lit // root assignments pending application to the working set
}

type simpClause struct {
	lits []Lit // sorted ascending, deduped
	dead bool
}

func newSimplifier(s *Solver) *simplifier {
	p := &simplifier{
		s:   s,
		occ: make([][]int, 2*len(s.assigns)),
	}
	for _, c := range s.clauses {
		if c.deleted {
			continue
		}
		lits := make([]Lit, 0, len(c.lits))
		satisfied := false
		for _, l := range c.lits {
			switch s.value(l) {
			case True:
				satisfied = true
			case False:
				// drop
			default:
				lits = append(lits, l)
			}
			if satisfied {
				break
			}
		}
		if satisfied {
			continue
		}
		sort.Slice(lits, func(i, j int) bool { return lits[i] < lits[j] })
		p.addClause(lits)
	}
	// The working set replaces the watched representation entirely.
	// Discarded learned clauses are logged as deletions so a forward
	// checker's database tracks the solver's.
	for i := range s.watches {
		s.watches[i] = s.watches[i][:0]
	}
	if s.proof != nil {
		for _, c := range s.learned {
			if !c.deleted {
				s.proofStep(ProofDelete, c.lits)
			}
		}
	}
	s.learned = nil
	return p
}

// addClause inserts a working clause (sorted lits), routing empty and
// unit clauses to the root assignment machinery.
func (p *simplifier) addClause(lits []Lit) {
	switch len(lits) {
	case 0:
		p.s.markRootUnsat()
	case 1:
		p.units = append(p.units, lits[0])
	default:
		ci := len(p.cls)
		p.cls = append(p.cls, simpClause{lits: lits})
		p.inQueue = append(p.inQueue, false)
		for _, l := range lits {
			p.occ[l] = append(p.occ[l], ci)
		}
		p.push(ci)
	}
}

func (p *simplifier) push(ci int) {
	if !p.inQueue[ci] {
		p.inQueue[ci] = true
		p.queue = append(p.queue, ci)
	}
}

func (p *simplifier) removeOcc(l Lit, ci int) {
	list := p.occ[l]
	for i, c := range list {
		if c == ci {
			list[i] = list[len(list)-1]
			p.occ[l] = list[:len(list)-1]
			return
		}
	}
}

func (p *simplifier) kill(ci int) {
	c := &p.cls[ci]
	if c.dead {
		return
	}
	c.dead = true
	p.s.proofStep(ProofDelete, c.lits)
	for _, l := range c.lits {
		p.removeOcc(l, ci)
	}
}

// removeLit strengthens clause ci by deleting literal l, killing the
// clause if it degenerates to a unit (the unit is queued as a root
// assignment, which supersedes the clause). Reports false on refutation.
func (p *simplifier) removeLit(ci int, l Lit) bool {
	c := &p.cls[ci]
	if c.dead {
		return true
	}
	// Proof: strengthening is an Add of the shorter clause followed by
	// a Delete of the original (in that order — the Add is RUP while
	// the original still backs it). The compaction below mutates c.lits
	// in place, so the original is snapshotted first.
	var orig []Lit
	if p.s.proof != nil {
		orig = append([]Lit(nil), c.lits...)
	}
	p.removeOcc(l, ci)
	lits := c.lits[:0]
	for _, q := range c.lits {
		if q != l {
			lits = append(lits, q)
		}
	}
	c.lits = lits
	switch len(lits) {
	case 0:
		p.s.markRootUnsat()
		return false
	case 1:
		if p.s.proof != nil {
			p.s.proofStep(ProofAdd, lits)
			p.s.proofStep(ProofDelete, orig)
		}
		p.units = append(p.units, lits[0])
		// Detach the remaining occurrence; the pending root assignment
		// subsumes the clause.
		p.removeOcc(lits[0], ci)
		c.dead = true
		return true
	}
	if p.s.proof != nil {
		p.s.proofStep(ProofAdd, lits)
		p.s.proofStep(ProofDelete, orig)
	}
	p.push(ci)
	return true
}

// drainUnits applies pending root assignments to the working set:
// satisfied clauses die, falsified occurrences are removed (possibly
// cascading into further units). Reports false on refutation.
func (p *simplifier) drainUnits() bool {
	for len(p.units) > 0 {
		l := p.units[0]
		p.units = p.units[1:]
		switch p.s.value(l) {
		case True:
			continue
		case False:
			p.s.markRootUnsat()
			return false
		}
		p.s.uncheckedEnqueue(l, nil)
		for _, ci := range append([]int(nil), p.occ[l]...) {
			p.kill(ci)
		}
		for _, ci := range append([]int(nil), p.occ[l.Neg()]...) {
			if !p.removeLit(ci, l.Neg()) {
				return false
			}
		}
	}
	return true
}

// run drives simplification to fixpoint: subsumption sweeps alternate
// with elimination rounds until neither makes progress.
func (p *simplifier) run() bool {
	if !p.drainUnits() {
		return false
	}
	for round := 0; round < 10; round++ {
		if !p.subsumeAll() {
			return false
		}
		if p.eliminateRound() == 0 || p.s.rootUnsat {
			break
		}
	}
	return !p.s.rootUnsat
}

// subsumeAll processes the backward-subsumption queue: each queued
// clause C kills every live clause it subsumes and strengthens every
// clause it self-subsumes (C = A∨l, D ⊇ A∨¬l ⟹ ¬l leaves D).
// Candidates come from the occurrence list of C's rarest literal, the
// standard SatELite narrowing.
func (p *simplifier) subsumeAll() bool {
	for len(p.queue) > 0 {
		ci := p.queue[0]
		p.queue = p.queue[1:]
		p.inQueue[ci] = false
		c := &p.cls[ci]
		if c.dead || len(c.lits) == 0 {
			continue
		}
		best := c.lits[0]
		for _, l := range c.lits[1:] {
			if len(p.occ[l]) < len(p.occ[best]) {
				best = l
			}
		}
		// Candidates containing best are (possibly self-) subsumed;
		// candidates containing ¬best can only be strengthened with the
		// flip on best itself, which the merge walk also detects.
		cand := append([]int(nil), p.occ[best]...)
		cand = append(cand, p.occ[best.Neg()]...)
		for _, di := range cand {
			if di == ci || p.cls[di].dead || c.dead {
				continue
			}
			d := &p.cls[di]
			if len(d.lits) < len(c.lits) {
				continue
			}
			flip, ok := subsume(c.lits, d.lits)
			if !ok {
				continue
			}
			if flip == LitUndef {
				p.s.stats.SubsumedClauses++
				p.kill(di)
				continue
			}
			p.s.stats.StrengthenedClauses++
			if !p.removeLit(di, flip.Neg()) {
				return false
			}
			if !p.drainUnits() {
				return false
			}
		}
	}
	return true
}

// subsume reports whether c subsumes d (both sorted ascending), allowing
// at most one sign-flipped variable. A LitUndef flip with ok means plain
// subsumption (c ⊆ d); a concrete flip l means c contains l while d
// contains ¬l and is otherwise a superset — self-subsuming resolution
// may remove ¬l from d.
func subsume(c, d []Lit) (flip Lit, ok bool) {
	flip = LitUndef
	i, j := 0, 0
	for i < len(c) {
		if j >= len(d) {
			return LitUndef, false
		}
		switch {
		case c[i] == d[j]:
			i++
			j++
		case c[i] == d[j].Neg():
			if flip != LitUndef {
				return LitUndef, false
			}
			flip = c[i]
			i++
			j++
		case c[i] > d[j]:
			j++
		default:
			return LitUndef, false
		}
	}
	return flip, true
}

// eliminateRound attempts bounded variable elimination on every
// non-frozen, unassigned variable, returning how many were eliminated.
func (p *simplifier) eliminateRound() int {
	eliminated := 0
	for v := Var(0); int(v) < len(p.s.assigns); v++ {
		if p.s.frozen[v] || p.s.eliminated[v] || p.s.assigns[v] != Unknown {
			continue
		}
		if p.tryEliminate(v) {
			eliminated++
			if !p.drainUnits() {
				return eliminated
			}
		}
		if p.s.rootUnsat {
			return eliminated
		}
	}
	return eliminated
}

// tryEliminate resolves v out of the formula when the set of
// non-tautological resolvents of its positive and negative occurrence
// lists is no larger than the clauses they replace (plus elimGrow). The
// positive occurrence snapshots go on the elimination stack for model
// reconstruction.
func (p *simplifier) tryEliminate(v Var) bool {
	pos := p.occ[PosLit(v)]
	neg := p.occ[NegLit(v)]
	if len(pos)+len(neg) > elimOccLimit {
		return false
	}
	limit := len(pos) + len(neg) + elimGrow
	resolvents := make([][]Lit, 0, limit)
	for _, ci := range pos {
		for _, di := range neg {
			r, ok := resolve(p.cls[ci].lits, p.cls[di].lits, v)
			if !ok {
				continue
			}
			resolvents = append(resolvents, r)
			if len(resolvents) > limit {
				return false
			}
		}
	}

	// Proof: resolvents are RUP while both parents are still present, so
	// each addition is logged before the occurrence lists are deleted
	// (the kills below log the Deletes). addClause does not emit.
	if p.s.proof != nil {
		for _, r := range resolvents {
			p.s.proofStep(ProofAdd, r)
		}
	}
	rec := elimRecord{v: v, pos: make([][]Lit, 0, len(pos))}
	for _, ci := range pos {
		rec.pos = append(rec.pos, append([]Lit(nil), p.cls[ci].lits...))
	}
	for _, ci := range append([]int(nil), pos...) {
		p.kill(ci)
	}
	for _, ci := range append([]int(nil), neg...) {
		p.kill(ci)
	}
	p.s.eliminated[v] = true
	p.s.elimStack = append(p.s.elimStack, rec)
	p.s.stats.ElimVars++
	for _, r := range resolvents {
		p.addClause(r)
	}
	return true
}

// resolve returns the resolvent of a and b on pivot v (both sorted),
// deduped and re-sorted; ok is false for tautological resolvents.
func resolve(a, b []Lit, v Var) (out []Lit, ok bool) {
	out = make([]Lit, 0, len(a)+len(b)-2)
	for _, l := range a {
		if l.Var() != v {
			out = append(out, l)
		}
	}
	for _, l := range b {
		if l.Var() != v {
			out = append(out, l)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	w := 0
	for i := 0; i < len(out); i++ {
		if w > 0 && out[i] == out[w-1] {
			continue
		}
		if w > 0 && out[i] == out[w-1].Neg() {
			return nil, false
		}
		out[w] = out[i]
		w++
	}
	return out[:w], true
}

// rebuild installs the surviving working clauses as the solver's clause
// database and re-attaches watches. Root-level reasons are cleared: the
// antecedent clauses no longer exist, and conflict analysis never
// resolves on level-0 assignments anyway.
func (p *simplifier) rebuild() {
	s := p.s
	s.clauses = s.clauses[:0]
	if s.rootUnsat {
		return
	}
	for i := range p.cls {
		if p.cls[i].dead {
			continue
		}
		c := &clause{lits: p.cls[i].lits}
		s.clauses = append(s.clauses, c)
		s.attach(c)
	}
	for _, l := range s.trail {
		s.reason[l.Var()] = nil
	}
	s.qhead = len(s.trail)
}

// extendModel reconstructs eliminated variables into the current
// satisfying assignment, newest elimination first (a variable's stored
// clauses only mention variables still live at its elimination time, so
// every literal read here is already decided). The variable is set true
// exactly when some positive-occurrence clause is not satisfied by its
// other literals — the assignment that repairs all removed clauses; the
// resolvents kept in the formula guarantee no negative-occurrence clause
// needs the opposite (see DESIGN.md §11).
func (s *Solver) extendModel() {
	for i := len(s.elimStack) - 1; i >= 0; i-- {
		rec := &s.elimStack[i]
		val := False
		for _, cl := range rec.pos {
			satisfied := false
			for _, l := range cl {
				if l.Var() == rec.v {
					continue
				}
				if s.litModelTrue(l) {
					satisfied = true
					break
				}
			}
			if !satisfied {
				val = True
				break
			}
		}
		s.assigns[rec.v] = val
	}
}

// litModelTrue evaluates l under the Model convention: unassigned
// variables read as false.
func (s *Solver) litModelTrue(l Lit) bool {
	b := s.assigns[l.Var()] == True
	if l.Sign() {
		return !b
	}
	return b
}
