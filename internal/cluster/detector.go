package cluster

import (
	"math"
	"sync"
	"time"
)

// State is a failure detector's verdict on one member.
type State int

const (
	// StateAlive: heartbeats are arriving on cadence.
	StateAlive State = iota
	// StateSuspect: the current silence is unlikely under the observed
	// heartbeat distribution (phi past the suspect threshold). A suspect
	// member is deprioritized for routing but not abandoned.
	StateSuspect
	// StateDead: the silence is overwhelming evidence of failure (phi
	// past the dead threshold). A dead member is routed to only as a
	// last resort.
	StateDead
)

func (s State) String() string {
	switch s {
	case StateAlive:
		return "alive"
	case StateSuspect:
		return "suspect"
	default:
		return "dead"
	}
}

// DetectorOptions tunes a Detector; zero values select the defaults
// noted per field.
type DetectorOptions struct {
	// Window bounds how many heartbeat inter-arrival intervals inform
	// the distribution (default 32).
	Window int
	// Expected is the prior inter-arrival interval assumed until the
	// window holds real samples — normally the probe cadence
	// (default 1s).
	Expected time.Duration
	// SuspectPhi and DeadPhi are the suspicion thresholds (defaults 1
	// and 8): phi = 1 means the silence had probability 10^-1 under the
	// observed distribution, phi = 8 means 10^-8.
	SuspectPhi float64
	DeadPhi    float64
	// Now overrides the clock in tests.
	Now func() time.Time
}

// Detector is a phi-accrual-style failure detector for one member.
// Each successful health probe is a heartbeat; Phi reports how
// surprising the current silence is — -log10 of the probability that a
// healthy member would stay silent this long, under a normal model of
// its observed inter-arrival intervals. Unlike a fixed timeout, the
// verdict adapts: a member probed every 100ms is suspected after a few
// hundred milliseconds of silence, one probed every 10s is given the
// slack its cadence has earned.
type Detector struct {
	opts DetectorOptions

	mu        sync.Mutex
	intervals []float64 // seconds, ring buffer
	next      int
	n         int
	last      time.Time
}

// NewDetector returns a detector primed with a heartbeat at "now": a
// brand-new member starts alive and earns suspicion only by silence.
func NewDetector(opts DetectorOptions) *Detector {
	if opts.Window <= 0 {
		opts.Window = 32
	}
	if opts.Expected <= 0 {
		opts.Expected = time.Second
	}
	if opts.SuspectPhi <= 0 {
		opts.SuspectPhi = 1
	}
	if opts.DeadPhi <= 0 {
		opts.DeadPhi = 8
	}
	if opts.Now == nil {
		opts.Now = time.Now
	}
	return &Detector{
		opts:      opts,
		intervals: make([]float64, opts.Window),
		last:      opts.Now(),
	}
}

// Heartbeat records one arrival (a successful probe).
func (d *Detector) Heartbeat() {
	now := d.opts.Now()
	d.mu.Lock()
	defer d.mu.Unlock()
	d.intervals[d.next] = now.Sub(d.last).Seconds()
	d.next = (d.next + 1) % len(d.intervals)
	if d.n < len(d.intervals) {
		d.n++
	}
	d.last = now
}

// Phi returns the current suspicion level: -log10 P(silence >= observed
// silence) under a normal fit of the recorded inter-arrival intervals.
// 0 means the member just heartbeat; each unit is another factor of 10
// of improbability.
func (d *Detector) Phi() float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	silence := d.opts.Now().Sub(d.last).Seconds()
	if silence <= 0 {
		return 0
	}
	mean, std := d.fit()
	// P(X >= t) for X ~ N(mean, std), via the complementary error
	// function. Guard the underflow: erfc saturates at 0 well before
	// float64 runs out, and -log10(0) would be +Inf.
	p := 0.5 * math.Erfc((silence-mean)/(std*math.Sqrt2))
	if p < 1e-30 {
		return 30
	}
	return -math.Log10(p)
}

// fit returns the mean and (floored) standard deviation of the
// recorded intervals, falling back to the Expected prior while the
// window is still sparse. Callers hold d.mu.
func (d *Detector) fit() (mean, std float64) {
	prior := d.opts.Expected.Seconds()
	if d.n < 3 {
		return prior, prior / 4
	}
	var sum float64
	for i := 0; i < d.n; i++ {
		sum += d.intervals[i]
	}
	mean = sum / float64(d.n)
	var sq float64
	for i := 0; i < d.n; i++ {
		delta := d.intervals[i] - mean
		sq += delta * delta
	}
	std = math.Sqrt(sq / float64(d.n))
	// A floor on the deviation keeps a metronomic prober from declaring
	// death over one lost tick: with a tiny observed std the normal
	// model would put phi through the roof a few milliseconds past the
	// mean.
	if floor := mean / 4; std < floor {
		std = floor
	}
	if std < 1e-3 {
		std = 1e-3
	}
	return mean, std
}

// State maps Phi onto the three routing states.
func (d *Detector) State() State {
	phi := d.Phi()
	switch {
	case phi >= d.opts.DeadPhi:
		return StateDead
	case phi >= d.opts.SuspectPhi:
		return StateSuspect
	default:
		return StateAlive
	}
}

// LastHeartbeat returns the arrival time of the most recent heartbeat.
func (d *Detector) LastHeartbeat() time.Time {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.last
}
