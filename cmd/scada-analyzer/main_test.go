package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const configPath = "../../testdata/case5bus.scada"

func TestRunObservability(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-config", configPath, "-property", "observability"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "(1,1)-resilient observability: HOLDS") {
		t.Fatalf("output: %s", out)
	}
}

func TestRunSecuredWithThreats(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-config", configPath, "-property", "secured", "-enumerate", "10", "-stats"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "VIOLATED") || !strings.Contains(out, "threat vectors") {
		t.Fatalf("output: %s", out)
	}
	if !strings.Contains(out, "solver:") {
		t.Fatalf("missing stats: %s", out)
	}
}

func TestRunOverrides(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-config", configPath, "-property", "obs", "-k1", "2", "-k2", "1"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "(2,1)-resilient observability: VIOLATED") {
		t.Fatalf("output: %s", sb.String())
	}

	sb.Reset()
	err = run([]string{"-config", configPath, "-property", "obs", "-k", "1"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "1-resilient observability") {
		t.Fatalf("output: %s", sb.String())
	}
}

func TestRunBadData(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-config", configPath, "-property", "baddata", "-r", "1"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "bad-data-detectability") {
		t.Fatalf("output: %s", sb.String())
	}
}

func TestRunMaxResiliency(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-config", configPath, "-max-resiliency"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "maximum resiliency: 3 IED-only failures, 1 RTU-only failures") {
		t.Fatalf("output: %s", sb.String())
	}
}

func TestRunLint(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-config", configPath, "-lint"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "no-integrity") || !strings.Contains(out, "single-point-rtu") {
		t.Fatalf("lint output: %s", out)
	}
}

func TestRunHarden(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-config", configPath, "-property", "secured", "-enumerate", "0", "-harden"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "hardening plan: achieved") {
		t.Fatalf("harden output: %s", sb.String())
	}
}

func TestRunSweep(t *testing.T) {
	// The incremental single-solver path and the parallel pool must
	// print the same verdict lines.
	var serial, parallel strings.Builder
	if err := run([]string{"-config", configPath, "-property", "obs", "-sweep", "4", "-stats"}, &serial); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-config", configPath, "-property", "obs", "-sweep", "4", "-workers", "4", "-stats"}, &parallel); err != nil {
		t.Fatal(err)
	}
	for _, out := range []string{serial.String(), parallel.String()} {
		if !strings.Contains(out, "0-resilient observability: HOLDS") ||
			!strings.Contains(out, "4-resilient observability: VIOLATED") {
			t.Fatalf("sweep output: %s", out)
		}
		if !strings.Contains(out, "solves=1") {
			t.Fatalf("missing per-solve stats: %s", out)
		}
	}
	verdicts := func(out string) []string {
		var vs []string
		for _, line := range strings.Split(out, "\n") {
			if strings.Contains(line, "-resilient") {
				// Strip the trailing wall-time annotation; only the
				// verdict and vector must agree across pool sizes.
				if i := strings.LastIndex(line, " ("); i >= 0 {
					line = line[:i]
				}
				vs = append(vs, line)
			}
		}
		return vs
	}
	s, p := verdicts(serial.String()), verdicts(parallel.String())
	if len(s) != 5 || strings.Join(s, "|") != strings.Join(p, "|") {
		t.Fatalf("verdicts differ:\nserial:   %v\nparallel: %v", s, p)
	}
}

func TestRunSweepJSON(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-config", configPath, "-property", "obs", "-sweep", "2", "-json"}, &sb); err != nil {
		t.Fatal(err)
	}
	var results []map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &results); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, sb.String())
	}
	if len(results) != 3 {
		t.Fatalf("results = %d, want 3", len(results))
	}
}

func TestRunErrors(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{}, &sb); err == nil {
		t.Fatal("missing -config must error")
	}
	if err := run([]string{"-config", "/nonexistent.scada"}, &sb); err == nil {
		t.Fatal("missing file must error")
	}
	if err := run([]string{"-config", configPath, "-property", "bogus"}, &sb); err == nil {
		t.Fatal("unknown property must error")
	}
}

// TestRunObservabilityOutputs drives the -trace/-metrics/-progress
// flags end to end: the trace file is valid JSONL with balanced spans,
// and the metrics file contains the query counter.
func TestRunObservabilityOutputs(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "trace.jsonl")
	metricsPath := filepath.Join(dir, "metrics.prom")
	var sb strings.Builder
	err := run([]string{
		"-config", configPath, "-property", "secured",
		"-trace", tracePath, "-metrics", metricsPath,
		"-progress", "1", "-stats",
	}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "phases:") {
		t.Fatalf("-stats output missing phase breakdown: %s", sb.String())
	}

	raw, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	begins, ends := 0, 0
	for _, line := range strings.Split(strings.TrimSpace(string(raw)), "\n") {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("trace line %q: %v", line, err)
		}
		switch rec["ev"] {
		case "begin":
			begins++
		case "end":
			ends++
		}
	}
	if begins == 0 || begins != ends {
		t.Fatalf("trace spans unbalanced: %d begins, %d ends", begins, ends)
	}

	prom, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"scadaver_queries_total", "scadaver_phase_seconds_bucket"} {
		if !strings.Contains(string(prom), want) {
			t.Fatalf("metrics file missing %q:\n%s", want, prom)
		}
	}
}

// TestRunMetricsJSONAndSweepPhases covers the .json metrics branch and
// the per-phase lines of a -stats sweep.
func TestRunMetricsJSONAndSweepPhases(t *testing.T) {
	dir := t.TempDir()
	metricsPath := filepath.Join(dir, "metrics.json")
	var sb strings.Builder
	err := run([]string{
		"-config", configPath, "-sweep", "2", "-stats", "-metrics", metricsPath,
	}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(sb.String(), "phases:"); n != 3 {
		t.Fatalf("want 3 phase lines for -sweep 2, got %d:\n%s", n, sb.String())
	}
	raw, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Counters []struct {
			Name  string  `json:"name"`
			Value float64 `json:"value"`
		} `json:"counters"`
	}
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatalf("metrics JSON: %v", err)
	}
	var queries float64
	for _, c := range snap.Counters {
		if c.Name == "scadaver_queries_total" {
			queries += c.Value
		}
	}
	if queries != 3 {
		t.Fatalf("metrics recorded %v queries, want 3", queries)
	}
}

// TestRunEnumerateCheckpoint drives the -checkpoint flag on threat
// enumeration end to end: the first run writes a resumable JSONL file,
// a second run resumes from it and reports the same vectors, and a
// checkpoint from a different campaign is rejected loudly.
func TestRunEnumerateCheckpoint(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.jsonl")
	args := []string{"-config", configPath, "-property", "secured",
		"-enumerate", "10", "-checkpoint", path, "-deadline", "1h", "-retries", "1"}

	var first strings.Builder
	if err := run(args, &first); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(first.String(), "threat vectors") {
		t.Fatalf("output: %s", first.String())
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if len(lines) < 2 || !strings.Contains(lines[0], `"kind":"enumerate"`) {
		t.Fatalf("checkpoint file:\n%s", raw)
	}

	var resumed strings.Builder
	if err := run(args, &resumed); err != nil {
		t.Fatal(err)
	}
	// Identical up to the per-run wall-time annotation on the verdict line.
	stripTimes := func(out string) string {
		var lines []string
		for _, line := range strings.Split(out, "\n") {
			if i := strings.LastIndex(line, " ("); i >= 0 && strings.HasSuffix(line, "ms)") {
				line = line[:i]
			}
			lines = append(lines, line)
		}
		return strings.Join(lines, "\n")
	}
	if stripTimes(first.String()) != stripTimes(resumed.String()) {
		t.Fatalf("resumed output differs:\nfirst:\n%s\nresumed:\n%s", first.String(), resumed.String())
	}

	// A header from a different campaign must be rejected before any work.
	bogus := `{"schema":"scadaver-checkpoint/1","kind":"enumerate","fingerprint":"deadbeef"}` + "\n"
	if err := os.WriteFile(path, []byte(bogus), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(args, &resumed); err == nil || !strings.Contains(err.Error(), "checkpoint") {
		t.Fatalf("foreign checkpoint accepted: err = %v", err)
	}
}

// TestRunSweepCheckpoint checks that a sweep checkpoint written by the
// serial path resumes under a parallel pool with identical verdicts.
func TestRunSweepCheckpoint(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.jsonl")
	var serial strings.Builder
	if err := run([]string{"-config", configPath, "-property", "obs",
		"-sweep", "3", "-checkpoint", path}, &serial); err != nil {
		t.Fatal(err)
	}
	var resumed strings.Builder
	if err := run([]string{"-config", configPath, "-property", "obs",
		"-sweep", "3", "-workers", "4", "-checkpoint", path}, &resumed); err != nil {
		t.Fatal(err)
	}
	strip := func(out string) []string {
		var vs []string
		for _, line := range strings.Split(out, "\n") {
			if strings.Contains(line, "-resilient") {
				if i := strings.LastIndex(line, " ("); i >= 0 {
					line = line[:i]
				}
				vs = append(vs, line)
			}
		}
		return vs
	}
	s, r := strip(serial.String()), strip(resumed.String())
	if len(s) != 4 || strings.Join(s, "|") != strings.Join(r, "|") {
		t.Fatalf("verdicts differ across resume:\nserial:  %v\nresumed: %v", s, r)
	}
}
