// Package synth generates synthetic SCADA systems over bus systems,
// following the paper's evaluation methodology (Section V-A): on average
// one IED per two power-flow measurements and one IED per consumption
// (injection) measurement; RTU counts proportional to the bus count; and
// communication paths from IEDs to the MTU shaped by a hierarchy-level
// parameter giving the average number of intermediate RTUs.
package synth

import (
	"errors"
	"fmt"
	"math/rand"

	"scadaver/internal/powergrid"
	"scadaver/internal/scadanet"
	"scadaver/internal/secpolicy"
)

// Params configures one synthetic SCADA system.
type Params struct {
	// Bus is the underlying bus system (required).
	Bus *powergrid.BusSystem

	// MeasurementPercent selects how much of the maximum measurement set
	// (2L+N) is deployed, as in the paper's Fig. 7(a). Default 100.
	MeasurementPercent float64

	// Hierarchy is the average number of intermediate RTUs on an
	// IED→MTU path (the paper's hierarchy level, Figs. 6 and 7(b)).
	// Default 1: IED → RTU → MTU.
	Hierarchy int

	// SecureFraction is the probability that an IED uplink carries an
	// authenticating and integrity-protecting profile. Default 0.8.
	SecureFraction float64

	// RTUsPerIEDs controls RTU count: one RTU per this many IEDs
	// (minimum 2 RTUs). Default 3, which matches the paper's ~400
	// devices for the 118-bus system.
	RTUsPerIEDs int

	// CrossLinkProb adds redundant RTU-RTU links with this probability
	// per RTU (more connectivity at higher hierarchy, as the paper
	// observes). Default 0.25.
	CrossLinkProb float64

	// Seed drives all randomness; equal parameters give equal systems.
	Seed int64

	// Resiliency specification copied into the generated config.
	K1, K2, R int
}

func (p *Params) withDefaults() Params {
	out := *p
	if out.MeasurementPercent == 0 {
		out.MeasurementPercent = 100
	}
	if out.Hierarchy <= 0 {
		out.Hierarchy = 1
	}
	if out.SecureFraction == 0 {
		out.SecureFraction = 0.8
	}
	if out.RTUsPerIEDs <= 0 {
		out.RTUsPerIEDs = 3
	}
	if out.CrossLinkProb == 0 {
		out.CrossLinkProb = 0.25
	}
	return out
}

// ErrNilBus is returned when Params.Bus is missing.
var ErrNilBus = errors.New("synth: Params.Bus is required")

// Generate builds a synthetic SCADA configuration.
func Generate(p Params) (*scadanet.Config, error) {
	if p.Bus == nil {
		return nil, ErrNilBus
	}
	p = p.withDefaults()
	rng := rand.New(rand.NewSource(p.Seed))

	full := powergrid.FullMeasurementSet(p.Bus)
	msrs := full.Sample(p.MeasurementPercent, rng)

	// Partition measurements among IEDs: flows in pairs, injections
	// singly (Section V-A).
	var flowIdx, injIdx []int
	for i, m := range msrs.Msrs {
		if m.Kind == powergrid.Injection {
			injIdx = append(injIdx, i)
		} else {
			flowIdx = append(flowIdx, i)
		}
	}
	var assignments [][]int // per IED: 1-based measurement IDs
	for i := 0; i < len(flowIdx); i += 2 {
		ids := []int{msrs.Msrs[flowIdx[i]].ID}
		if i+1 < len(flowIdx) {
			ids = append(ids, msrs.Msrs[flowIdx[i+1]].ID)
		}
		assignments = append(assignments, ids)
	}
	for _, i := range injIdx {
		assignments = append(assignments, []int{msrs.Msrs[i].ID})
	}
	nIED := len(assignments)
	if nIED == 0 {
		return nil, fmt.Errorf("synth: no measurements to assign (percent=%v)", p.MeasurementPercent)
	}

	nRTU := nIED / p.RTUsPerIEDs
	if nRTU < 2 {
		nRTU = 2
	}

	net := scadanet.NewNetwork()
	// Device IDs: IEDs 1..nIED, RTUs nIED+1..nIED+nRTU, MTU last.
	for i := 1; i <= nIED; i++ {
		if _, err := net.AddDevice(scadanet.Device{ID: scadanet.DeviceID(i), Kind: scadanet.IED}); err != nil {
			return nil, err
		}
	}
	rtuID := func(i int) scadanet.DeviceID { return scadanet.DeviceID(nIED + 1 + i) }
	for i := 0; i < nRTU; i++ {
		if _, err := net.AddDevice(scadanet.Device{ID: rtuID(i), Kind: scadanet.RTU}); err != nil {
			return nil, err
		}
	}
	mtu := scadanet.DeviceID(nIED + nRTU + 1)
	if _, err := net.AddDevice(scadanet.Device{ID: mtu, Kind: scadanet.MTU}); err != nil {
		return nil, err
	}

	// Arrange RTUs into `Hierarchy` levels: level 0 uplinks to the MTU,
	// level j to a random RTU at level j-1. Levels are sized as evenly
	// as the RTU count permits.
	levels := p.Hierarchy
	if levels > nRTU {
		levels = nRTU
	}
	levelOf := make([]int, nRTU)
	for i := range levelOf {
		levelOf[i] = i % levels
	}
	byLevel := make([][]int, levels)
	for i, lv := range levelOf {
		byLevel[lv] = append(byLevel[lv], i)
	}
	backbone := rsaProfile(rng)
	for _, i := range byLevel[0] {
		if _, err := net.AddLink(rtuID(i), mtu, backbone...); err != nil {
			return nil, err
		}
	}
	for lv := 1; lv < levels; lv++ {
		for _, i := range byLevel[lv] {
			parent := byLevel[lv-1][rng.Intn(len(byLevel[lv-1]))]
			if _, err := net.AddLink(rtuID(i), rtuID(parent), rsaProfile(rng)...); err != nil {
				return nil, err
			}
		}
	}
	// Redundant cross links among RTUs (same or adjacent levels).
	for i := 0; i < nRTU; i++ {
		if rng.Float64() >= p.CrossLinkProb {
			continue
		}
		j := rng.Intn(nRTU)
		if j == i || net.LinkBetween(rtuID(i), rtuID(j)) != nil {
			continue
		}
		if abs(levelOf[i]-levelOf[j]) > 1 {
			continue
		}
		if _, err := net.AddLink(rtuID(i), rtuID(j), rsaProfile(rng)...); err != nil {
			return nil, err
		}
	}

	// Attach each IED to a random deepest-level RTU so that the average
	// intermediate-RTU count matches the hierarchy parameter; assign its
	// measurements and uplink security profile.
	deepest := byLevel[levels-1]
	for i, ids := range assignments {
		ied := scadanet.DeviceID(i + 1)
		r := deepest[rng.Intn(len(deepest))]
		profile := iedProfile(rng, p.SecureFraction)
		if _, err := net.AddLink(ied, rtuID(r), profile...); err != nil {
			return nil, err
		}
		if err := net.AssignMeasurements(ied, ids...); err != nil {
			return nil, err
		}
	}

	cfg := &scadanet.Config{Msrs: msrs, Net: net, K1: p.K1, K2: p.K2, R: p.R}
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("synth: generated config invalid: %w", err)
	}
	return cfg, nil
}

// rsaProfile returns an RTU/MTU backbone profile (always authenticated
// and integrity protected; key size varies).
func rsaProfile(rng *rand.Rand) []secpolicy.Profile {
	bits := 2048
	if rng.Intn(2) == 0 {
		bits = 4096
	}
	return []secpolicy.Profile{
		{Algo: secpolicy.RSA, KeyBits: bits},
		{Algo: secpolicy.AES, KeyBits: 256},
	}
}

// iedProfile draws an IED uplink profile: with probability secureFrac a
// CHAP+SHA2 profile (authenticated, integrity protected), otherwise a
// weak alternative (hmac-only, broken DES, or nothing).
func iedProfile(rng *rand.Rand, secureFrac float64) []secpolicy.Profile {
	if rng.Float64() < secureFrac {
		bits := 128
		if rng.Intn(2) == 0 {
			bits = 256
		}
		return []secpolicy.Profile{
			{Algo: secpolicy.CHAP, KeyBits: 64},
			{Algo: secpolicy.SHA2, KeyBits: bits},
		}
	}
	switch rng.Intn(3) {
	case 0:
		return []secpolicy.Profile{{Algo: secpolicy.HMAC, KeyBits: 128}}
	case 1:
		return []secpolicy.Profile{{Algo: secpolicy.DES, KeyBits: 56}}
	default:
		return nil
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
