package delivery

import (
	"encoding/binary"
	"math"
	"testing"

	"scadaver/internal/icsproto"
	"scadaver/internal/scadanet"
)

func wireValues() map[int]float64 {
	vals := map[int]float64{}
	for z := 1; z <= 14; z++ {
		vals[z] = float64(z) * 1.5
	}
	return vals
}

func TestRunWireCleanDeliversEverything(t *testing.T) {
	sim, a := caseStudySim(t)
	results, err := sim.RunWire(nil, wireValues(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 14 {
		t.Fatalf("results = %d", len(results))
	}
	plain := a.DeliveredMeasurements(nil, false)
	for _, r := range results {
		if r.Delivered != plain[r.MsrID] {
			t.Fatalf("z%d: wire delivered=%v, verifier=%v", r.MsrID, r.Delivered, plain[r.MsrID])
		}
		if !r.Delivered {
			continue
		}
		if r.Corrupted {
			t.Fatalf("z%d corrupted without an attacker", r.MsrID)
		}
		if r.Value != wireValues()[r.MsrID] {
			t.Fatalf("z%d value %v, want %v", r.MsrID, r.Value, wireValues()[r.MsrID])
		}
	}
}

func TestRunWireFailuresMatchVerifier(t *testing.T) {
	sim, a := caseStudySim(t)
	down := map[scadanet.DeviceID]bool{9: true}
	results, err := sim.RunWire(down, wireValues(), nil)
	if err != nil {
		t.Fatal(err)
	}
	want := a.DeliveredMeasurements(down, false)
	for _, r := range results {
		if r.Delivered != want[r.MsrID] {
			t.Fatalf("z%d: wire=%v verifier=%v", r.MsrID, r.Delivered, want[r.MsrID])
		}
	}
}

// forgeValue rewrites the float in a plain (CRC-only) frame and fixes up
// the CRC — the man-in-the-middle the paper's integrity requirement is
// about.
func forgeValue(wire []byte, newValue float64) []byte {
	out := append([]byte(nil), wire...)
	// Frame layout: version(1) src(2) dst(2) seq(4) count(2) id(2) value(8)...
	off := 1 + 2 + 2 + 4 + 2 + 2
	binary.BigEndian.PutUint64(out[off:off+8], math.Float64bits(newValue))
	body := out[:len(out)-2]
	binary.BigEndian.PutUint16(out[len(out)-2:], icsproto.CRC16DNP(body))
	return out
}

func TestRunWireTamperOnInsecureHopSucceeds(t *testing.T) {
	sim, a := caseStudySim(t)
	cfg := a.Config()
	insecure := cfg.Net.LinkBetween(1, 9) // hmac-only: hop not secured
	tamper := func(l *scadanet.Link, wire []byte) []byte {
		if l.ID != insecure.ID {
			return wire
		}
		return forgeValue(wire, 999)
	}
	results, err := sim.RunWire(nil, wireValues(), tamper)
	if err != nil {
		t.Fatal(err)
	}
	sawCorrupt := 0
	for _, r := range results {
		if r.IED == 1 {
			if !r.Delivered {
				t.Fatalf("z%d should still be delivered (insecure hop accepts forgery)", r.MsrID)
			}
			if !r.Corrupted || r.Value != 999 {
				t.Fatalf("z%d: corrupted=%v value=%v", r.MsrID, r.Corrupted, r.Value)
			}
			if r.Secured {
				t.Fatalf("z%d must not be marked secured", r.MsrID)
			}
			sawCorrupt++
		} else if r.Corrupted {
			t.Fatalf("z%d of IED %d corrupted unexpectedly", r.MsrID, r.IED)
		}
	}
	if sawCorrupt != 2 {
		t.Fatalf("expected IED 1's two measurements corrupted, got %d", sawCorrupt)
	}
}

func TestRunWireTamperOnSecuredHopDropped(t *testing.T) {
	sim, a := caseStudySim(t)
	cfg := a.Config()
	secured := cfg.Net.LinkBetween(5, 11) // chap+sha2-256: secured hop
	tamper := func(l *scadanet.Link, wire []byte) []byte {
		if l.ID != secured.ID {
			return wire
		}
		// Bit-flip inside the sealed body; the attacker has no session
		// key, so the tag cannot be fixed up.
		out := append([]byte(nil), wire...)
		out[len(out)/2] ^= 0x40
		return out
	}
	results, err := sim.RunWire(nil, wireValues(), tamper)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		switch r.IED {
		case 5:
			if r.Delivered {
				t.Fatalf("z%d must be dropped at the secured hop", r.MsrID)
			}
			if r.DroppedByHop != secured.ID {
				t.Fatalf("z%d dropped by %d, want %d", r.MsrID, r.DroppedByHop, secured.ID)
			}
		default:
			if !r.Delivered {
				t.Fatalf("z%d of IED %d unexpectedly dropped", r.MsrID, r.IED)
			}
			if r.Corrupted {
				t.Fatalf("z%d corrupted", r.MsrID)
			}
		}
	}
}

func TestRunWireSecuredFlagMatchesVerifier(t *testing.T) {
	sim, a := caseStudySim(t)
	results, err := sim.RunWire(nil, wireValues(), nil)
	if err != nil {
		t.Fatal(err)
	}
	wantSec := a.DeliveredMeasurements(nil, true)
	for _, r := range results {
		if !r.Delivered {
			continue
		}
		if r.Secured != wantSec[r.MsrID] {
			t.Fatalf("z%d: wire secured=%v, verifier=%v", r.MsrID, r.Secured, wantSec[r.MsrID])
		}
	}
}
