package secpolicy

import (
	"testing"
	"testing/quick"
)

func TestCapabilityString(t *testing.T) {
	cases := map[Capability]string{
		0:                                 "none",
		Authenticates:                     "auth",
		IntegrityProtects:                 "integrity",
		Encrypts:                          "encrypt",
		Authenticates | IntegrityProtects: "auth+integrity",
		Authenticates | IntegrityProtects | Encrypts: "auth+integrity+encrypt",
	}
	for c, want := range cases {
		if c.String() != want {
			t.Errorf("%d.String() = %q, want %q", c, c.String(), want)
		}
	}
}

func TestDefaultPolicyJudgements(t *testing.T) {
	p := Default()
	cases := []struct {
		profile Profile
		want    Capability
	}{
		{Profile{HMAC, 128}, Authenticates},
		{Profile{HMAC, 256}, Authenticates},
		{Profile{HMAC, 64}, 0}, // below threshold
		{Profile{CHAP, 64}, Authenticates},
		{Profile{CHAP, 32}, 0},
		{Profile{SHA2, 128}, IntegrityProtects},
		{Profile{SHA2, 256}, IntegrityProtects},
		{Profile{SHA2, 64}, 0},
		{Profile{RSA, 2048}, Authenticates | IntegrityProtects},
		{Profile{RSA, 4096}, Authenticates | IntegrityProtects},
		{Profile{RSA, 1024}, 0},
		{Profile{AES, 128}, Encrypts},
		{Profile{AES, 256}, Encrypts},
		{Profile{DES, 4096}, 0},        // broken regardless of key
		{Profile{TDES, 168}, 0},        // broken
		{Profile{MD5, 128}, 0},         // broken
		{Profile{SHA1, 160}, 0},        // broken
		{Profile{Plain, 0}, 0},         // broken
		{Profile{"whirlpool", 512}, 0}, // unknown algorithm
	}
	for _, tc := range cases {
		if got := p.Judge([]Profile{tc.profile}); got != tc.want {
			t.Errorf("Judge(%v) = %v, want %v", tc.profile, got, tc.want)
		}
	}
}

func TestJudgeUnion(t *testing.T) {
	p := Default()
	got := p.Judge([]Profile{{CHAP, 64}, {SHA2, 256}})
	if got != Authenticates|IntegrityProtects {
		t.Fatalf("chap+sha2 = %v", got)
	}
	got = p.Judge([]Profile{{RSA, 2048}, {AES, 256}})
	if got != Authenticates|IntegrityProtects|Encrypts {
		t.Fatalf("rsa+aes = %v", got)
	}
	if p.Judge(nil) != 0 {
		t.Fatal("empty profile set must grant nothing")
	}
}

func TestBroken(t *testing.T) {
	p := Default()
	if !p.Broken(DES) || p.Broken(AES) {
		t.Fatal("Broken misclassifies")
	}
}

func TestPairCapsWeakerKeyWins(t *testing.T) {
	p := Default()
	// One side has RSA-4096, the other RSA-1024: effective 1024, below
	// threshold.
	got := p.PairCaps([]Profile{{RSA, 4096}}, []Profile{{RSA, 1024}})
	if got != 0 {
		t.Fatalf("rsa 4096/1024 pair = %v, want none", got)
	}
	got = p.PairCaps([]Profile{{RSA, 4096}}, []Profile{{RSA, 2048}})
	if got != Authenticates|IntegrityProtects {
		t.Fatalf("rsa 4096/2048 pair = %v", got)
	}
	// Disjoint algorithms share nothing.
	got = p.PairCaps([]Profile{{HMAC, 128}}, []Profile{{SHA2, 256}})
	if got != 0 {
		t.Fatalf("disjoint pair = %v, want none", got)
	}
	// Multiple shared algorithms union their capabilities.
	a := []Profile{{CHAP, 64}, {SHA2, 128}}
	b := []Profile{{CHAP, 128}, {SHA2, 256}}
	if got := p.PairCaps(a, b); got != Authenticates|IntegrityProtects {
		t.Fatalf("chap+sha2 pair = %v", got)
	}
}

func TestCanPair(t *testing.T) {
	if !CanPair(nil, nil) {
		t.Fatal("two crypto-less devices must pair")
	}
	if CanPair([]Profile{{HMAC, 128}}, nil) {
		t.Fatal("one-sided crypto cannot pair")
	}
	if !CanPair([]Profile{{HMAC, 128}}, []Profile{{HMAC, 64}}) {
		t.Fatal("same algorithm must pair")
	}
	if CanPair([]Profile{{HMAC, 128}}, []Profile{{AES, 128}}) {
		t.Fatal("disjoint algorithms must not pair")
	}
}

func TestParseProfiles(t *testing.T) {
	ps, err := ParseProfiles([]string{"chap", "64", "sha2", "128"})
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 2 || ps[0] != (Profile{CHAP, 64}) || ps[1] != (Profile{SHA2, 128}) {
		t.Fatalf("parsed %v", ps)
	}
	ps, err = ParseProfiles([]string{"HMAC", "128"})
	if err != nil || ps[0].Algo != HMAC {
		t.Fatalf("case-insensitive parse failed: %v %v", ps, err)
	}
	if _, err := ParseProfiles([]string{"chap"}); err == nil {
		t.Fatal("odd token count must fail")
	}
	if _, err := ParseProfiles([]string{"chap", "xyz"}); err == nil {
		t.Fatal("bad key length must fail")
	}
	if _, err := ParseProfiles([]string{"chap", "-5"}); err == nil {
		t.Fatal("negative key length must fail")
	}
	empty, err := ParseProfiles(nil)
	if err != nil || len(empty) != 0 {
		t.Fatalf("empty parse: %v %v", empty, err)
	}
}

func TestFormatProfilesRoundTrip(t *testing.T) {
	in := []Profile{{SHA2, 128}, {CHAP, 64}}
	s := FormatProfiles(in)
	if s != "chap 64 sha2 128" {
		t.Fatalf("FormatProfiles = %q", s)
	}
	back, err := ParseProfiles([]string{"chap", "64", "sha2", "128"})
	if err != nil || len(back) != 2 {
		t.Fatalf("round trip: %v %v", back, err)
	}
}

func TestQuickPairCapsSubsetOfJudge(t *testing.T) {
	// Property: paired capabilities never exceed what either side could
	// achieve alone at its own key lengths.
	p := Default()
	algos := []Algorithm{HMAC, CHAP, SHA2, RSA, AES, DES}
	f := func(aIdx, bIdx uint8, aKey, bKey uint16) bool {
		a := []Profile{{algos[int(aIdx)%len(algos)], int(aKey) % 5000}}
		b := []Profile{{algos[int(bIdx)%len(algos)], int(bKey) % 5000}}
		pair := p.PairCaps(a, b)
		return p.Judge(a).Has(pair) && p.Judge(b).Has(pair)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickPairCapsSymmetric(t *testing.T) {
	p := Default()
	algos := []Algorithm{HMAC, CHAP, SHA2, RSA, AES}
	f := func(n1, n2 uint8, keys [6]uint16) bool {
		mk := func(n uint8, off int) []Profile {
			count := int(n)%3 + 1
			out := make([]Profile, count)
			for i := range out {
				out[i] = Profile{algos[(off+i)%len(algos)], int(keys[(off+i)%len(keys)]) % 5000}
			}
			return out
		}
		a, b := mk(n1, 0), mk(n2, 2)
		return p.PairCaps(a, b) == p.PairCaps(b, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCustomPolicy(t *testing.T) {
	p := NewPolicy([]Rule{{Algo: "quantum", MinKeyBits: 1, Grants: Encrypts}}, []Algorithm{"quantum-v0"})
	if got := p.Judge([]Profile{{"quantum", 1}}); got != Encrypts {
		t.Fatalf("custom rule: %v", got)
	}
	if got := p.Judge([]Profile{{"quantum-v0", 999}}); got != 0 {
		t.Fatalf("custom broken: %v", got)
	}
	var zero Policy
	if zero.Judge([]Profile{{AES, 256}}) != 0 {
		t.Fatal("zero policy must grant nothing")
	}
}
