module scadaver

go 1.22
