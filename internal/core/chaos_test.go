package core

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"scadaver/internal/faultinject"
	"scadaver/internal/obs"
	"scadaver/internal/powergrid"
	"scadaver/internal/sat"
)

// outcomeKey flattens one outcome for equality checks across worker
// counts: status, failure reason and threat vector (errors compare by
// message).
func outcomeKey(o Outcome) string {
	if o.Err != nil {
		return "err:" + o.Err.Error()
	}
	if o.Result == nil {
		return "missing"
	}
	return o.Result.Status.String() + "/" + o.Result.FailureReason + "/" + fmt.Sprint(o.Result.Vector)
}

// TestChaosSolverStallParallelEqualsSerial runs a whole campaign with
// the solver-stall fault armed — every solve gives up after one
// conflict — and asserts the degraded campaign is still deterministic:
// a full outcome at every index, and parallel outcomes identical to
// serial ones.
func TestChaosSolverStallParallelEqualsSerial(t *testing.T) {
	cfg := synthConfig(t, powergrid.IEEE14(), 41, 2)
	queries := campaignQueries(2)

	run := func(workers int) []Outcome {
		faults := faultinject.New(1).StallSolverAfter(1).DelaySolves(100 * time.Microsecond)
		out, err := NewRunner(workers, WithFaults(faults)).
			VerifyAllCollect(context.Background(), cfg, queries)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return out
	}
	serial, parallel := run(1), run(8)

	sawStall := false
	for i := range queries {
		if serial[i].Result == nil || parallel[i].Result == nil {
			t.Fatalf("query %d: collect mode dropped an outcome (serial=%+v parallel=%+v)", i, serial[i], parallel[i])
		}
		if got, want := outcomeKey(parallel[i]), outcomeKey(serial[i]); got != want {
			t.Fatalf("query %d: parallel %q != serial %q", i, got, want)
		}
		if serial[i].Result.Status == sat.Unsolved {
			sawStall = true
			if serial[i].Result.FailureReason != ReasonInjectedStall {
				t.Fatalf("query %d: reason %q, want %q", i, serial[i].Result.FailureReason, ReasonInjectedStall)
			}
		}
	}
	if !sawStall {
		t.Fatal("stall fault never bit: campaign has no conflict-requiring query")
	}
}

// TestChaosWorkerPanicIsolated pins panic isolation in collect mode:
// exactly the victim query carries a *PanicError, every other query
// completes, and the panic is counted in the metrics registry.
func TestChaosWorkerPanicIsolated(t *testing.T) {
	cfg := synthConfig(t, powergrid.IEEE14(), 41, 2)
	queries := campaignQueries(2)

	faults := faultinject.New(3)
	victim := faults.Pick(len(queries))
	faults.PanicOnTask(victim)
	reg := obs.NewRegistry()

	out, err := NewRunner(4, WithFaults(faults), WithMetrics(reg)).
		VerifyAllCollect(context.Background(), cfg, queries)
	if err != nil {
		t.Fatal(err)
	}
	for i := range queries {
		if i == victim {
			var pe *PanicError
			if !errors.As(out[i].Err, &pe) {
				t.Fatalf("victim %d: err = %v, want *PanicError", i, out[i].Err)
			}
			if pe.Index != victim {
				t.Fatalf("PanicError.Index = %d, want %d", pe.Index, victim)
			}
			if !errors.Is(out[i].Err, faultinject.ErrInjected) {
				t.Fatalf("panic value not unwrapped: %v", out[i].Err)
			}
			if len(pe.Stack) == 0 {
				t.Fatal("PanicError.Stack empty")
			}
			continue
		}
		if out[i].Err != nil || out[i].Result == nil {
			t.Fatalf("query %d: not isolated from victim %d: %+v", i, victim, out[i])
		}
	}
	if got := counterTotal(reg, "scadaver_worker_panics_total"); got != 1 {
		t.Fatalf("scadaver_worker_panics_total = %v, want 1", got)
	}
	if faults.Counts().Panics != 1 {
		t.Fatalf("plan fired %d panics, want 1", faults.Counts().Panics)
	}
}

// TestChaosWorkerPanicStrictMode pins the strict campaign under the
// same fault: VerifyAll fails fast with an error naming the panicking
// task instead of crashing the process.
func TestChaosWorkerPanicStrictMode(t *testing.T) {
	cfg := synthConfig(t, powergrid.IEEE14(), 41, 2)
	queries := campaignQueries(1)

	faults := faultinject.New(3).PanicOnTask(0)
	_, err := NewRunner(2, WithFaults(faults)).
		VerifyAll(context.Background(), cfg, queries)
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("strict campaign err = %v, want *PanicError", err)
	}
	if pe.Index != 0 {
		t.Fatalf("PanicError.Index = %d, want 0", pe.Index)
	}
	if !strings.Contains(err.Error(), "task 0 panicked") {
		t.Fatalf("error does not name the failing task: %v", err)
	}
}

// TestChaosCheckpointWriteFaults runs an enumeration whose checkpoint
// writer suffers repeated transient I/O faults and asserts the
// fault-tolerance contract: the campaign completes with the full threat
// set, and the file on disk is a valid checkpoint whose entries are a
// subset of that set.
func TestChaosCheckpointWriteFaults(t *testing.T) {
	cfg := synthConfig(t, powergrid.IEEE14(), 41, 2)
	q := Query{Property: Observability, Combined: true, K: 2}

	a, err := NewAnalyzer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := a.EnumerateThreats(q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Skip("query enumerates no vectors on this topology")
	}

	faults := faultinject.New(11).FailWrites(0, 2, 4, 6)
	path := filepath.Join(t.TempDir(), "ck.jsonl")
	ck, err := OpenCheckpoint(path, CheckpointKindEnumerate, "fp-chaos")
	if err != nil {
		t.Fatal(err)
	}
	ck.UseFaults(faults)

	a2, err := NewAnalyzer(cfg, WithFaults(faults))
	if err != nil {
		t.Fatal(err)
	}
	got, err := a2.EnumerateThreatsResumable(q, 0, ck)
	if err != nil {
		t.Fatalf("campaign must survive checkpoint write faults: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("faulted enumeration found %d vectors, want %d", len(got), len(want))
	}
	if faults.Counts().WriteFaults == 0 {
		t.Fatal("write faults never fired")
	}

	wantKeys := map[string]bool{}
	for _, v := range want {
		wantKeys[v.key()] = true
	}
	ck2, err := OpenCheckpoint(path, CheckpointKindEnumerate, "fp-chaos")
	if err != nil {
		t.Fatalf("on-disk checkpoint invalid after write faults: %v", err)
	}
	for _, raw := range ck2.Entries() {
		var v ThreatVector
		if err := json.Unmarshal(raw, &v); err != nil {
			t.Fatal(err)
		}
		if !wantKeys[v.key()] {
			t.Fatalf("checkpoint holds vector %v not in the enumerated set", v)
		}
	}
}

// TestChaosEnumerationResume is the acceptance scenario: an enumeration
// interrupted partway (here: capped) and resumed from its checkpoint
// yields exactly the set of the uninterrupted run — minimal vectors
// form an antichain, so blocking the checkpointed ones cannot lose any.
func TestChaosEnumerationResume(t *testing.T) {
	cfg := synthConfig(t, powergrid.IEEE14(), 41, 2)
	q := Query{Property: SecuredObservability, Combined: true, K: 2}

	a, err := NewAnalyzer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := a.EnumerateThreats(q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) < 2 {
		t.Skipf("need >= 2 vectors to interrupt meaningfully, got %d", len(want))
	}

	fp, err := CampaignFingerprint(cfg, CheckpointKindEnumerate, q)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "ck.jsonl")
	ck, err := OpenCheckpoint(path, CheckpointKindEnumerate, fp)
	if err != nil {
		t.Fatal(err)
	}
	partial, err := a.EnumerateThreatsResumable(q, len(want)/2, ck)
	if err != nil {
		t.Fatal(err)
	}
	if len(partial) != len(want)/2 {
		t.Fatalf("interrupted run found %d vectors, want %d", len(partial), len(want)/2)
	}

	// Resume on a fresh analyzer (fresh process in real life).
	a2, err := NewAnalyzer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ck2, err := OpenCheckpoint(path, CheckpointKindEnumerate, fp)
	if err != nil {
		t.Fatal(err)
	}
	if len(ck2.Entries()) != len(partial) {
		t.Fatalf("checkpoint recovered %d vectors, want %d", len(ck2.Entries()), len(partial))
	}
	got, err := a2.EnumerateThreatsResumable(q, 0, ck2)
	if err != nil {
		t.Fatal(err)
	}

	wantKeys := map[string]bool{}
	for _, v := range want {
		wantKeys[v.key()] = true
	}
	gotKeys := map[string]bool{}
	for _, v := range got {
		gotKeys[v.key()] = true
	}
	if len(got) != len(want) {
		t.Fatalf("resumed enumeration found %d vectors, uninterrupted found %d", len(got), len(want))
	}
	for k := range wantKeys {
		if !gotKeys[k] {
			t.Fatalf("resumed enumeration lost vector %s", k)
		}
	}

	// A checkpoint from a different campaign must be rejected loudly.
	otherFP, err := CampaignFingerprint(cfg, CheckpointKindEnumerate, Query{Property: Observability, Combined: true, K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := OpenCheckpoint(path, CheckpointKindEnumerate, otherFP); !errors.Is(err, ErrCheckpointMismatch) {
		t.Fatalf("cross-campaign resume: err = %v, want ErrCheckpointMismatch", err)
	}
}

// TestIEEE57EnumerationResume is the paper-scale acceptance scenario
// (EXPERIMENTS.md "interrupted and resumed"): a threat-space
// enumeration on the IEEE 57-bus system is interrupted partway, its
// checkpoint carried to a fresh analyzer, and the resumed run must
// reproduce the uninterrupted run's threat set exactly — same size,
// same vectors.
func TestIEEE57EnumerationResume(t *testing.T) {
	if testing.Short() {
		t.Skip("IEEE 57-bus enumeration is seconds-long; skipped in -short")
	}
	cfg := synthConfig(t, powergrid.IEEE57(), 41, 2)
	q := Query{Property: BadDataDetectability, Combined: true, K: 2, R: 1}

	a, err := NewAnalyzer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := a.EnumerateThreats(q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) < 4 {
		t.Fatalf("expected a rich threat space on IEEE 57, got %d vectors", len(want))
	}

	fp, err := CampaignFingerprint(cfg, CheckpointKindEnumerate, q)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "ieee57.ck.jsonl")
	ck, err := OpenCheckpoint(path, CheckpointKindEnumerate, fp)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.EnumerateThreatsResumable(q, len(want)/3, ck); err != nil {
		t.Fatal(err)
	}

	a2, err := NewAnalyzer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ck2, err := OpenCheckpoint(path, CheckpointKindEnumerate, fp)
	if err != nil {
		t.Fatal(err)
	}
	got, err := a2.EnumerateThreatsResumable(q, 0, ck2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("resumed run found %d vectors, uninterrupted found %d", len(got), len(want))
	}
	wantKeys := map[string]bool{}
	for _, v := range want {
		wantKeys[v.key()] = true
	}
	for _, v := range got {
		if !wantKeys[v.key()] {
			t.Fatalf("resumed run found vector %v absent from the uninterrupted run", v)
		}
	}
}

// TestChaosCampaignResumeAcrossWorkerCounts interrupts a parallel
// campaign via context cancellation, then resumes its checkpoint under
// a different worker count and checks the merged outcomes equal an
// uninterrupted serial campaign, index by index.
func TestChaosCampaignResumeAcrossWorkerCounts(t *testing.T) {
	cfg := synthConfig(t, powergrid.IEEE14(), 41, 2)
	queries := campaignQueries(2)

	uninterrupted, err := NewRunner(1).VerifyAll(context.Background(), cfg, queries)
	if err != nil {
		t.Fatal(err)
	}

	fp, err := CampaignFingerprint(cfg, CheckpointKindCampaign, queries)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "ck.jsonl")
	ck, err := OpenCheckpoint(path, CheckpointKindCampaign, fp)
	if err != nil {
		t.Fatal(err)
	}

	// Interrupt the first pass once a few results have reached the
	// on-disk checkpoint (polled by reopening the file, exactly as a
	// resuming process would see it). Artificial solve latency keeps
	// the campaign running long enough to interrupt on fast machines.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, _ = NewRunner(4, WithFaults(faultinject.New(5).DelaySolves(2*time.Millisecond))).
			VerifyAllResumable(ctx, cfg, queries, ck)
	}()
poll:
	for {
		select {
		case <-done:
			break poll
		case <-time.After(2 * time.Millisecond):
		}
		if ckPoll, err := OpenCheckpoint(path, CheckpointKindCampaign, fp); err == nil && len(ckPoll.Entries()) >= 3 {
			cancel()
			break
		}
	}
	cancel()
	<-done

	// Resume under a different worker count from the on-disk checkpoint.
	ckResume, err := OpenCheckpoint(path, CheckpointKindCampaign, fp)
	if err != nil {
		t.Fatal(err)
	}
	if len(ckResume.Entries()) == 0 {
		t.Skip("interrupted pass checkpointed nothing (machine too fast/slow); nothing to resume")
	}
	out, err := NewRunner(2).VerifyAllResumable(context.Background(), cfg, queries, ckResume)
	if err != nil {
		t.Fatal(err)
	}
	for i := range queries {
		if out[i].Err != nil || out[i].Result == nil {
			t.Fatalf("query %d: resumed campaign incomplete: %+v", i, out[i])
		}
		if out[i].Result.Status != uninterrupted[i].Status {
			t.Fatalf("query %d: resumed status %v != uninterrupted %v", i, out[i].Result.Status, uninterrupted[i].Status)
		}
		got, want := fmt.Sprint(out[i].Result.Vector), fmt.Sprint(uninterrupted[i].Vector)
		if got != want {
			t.Fatalf("query %d: resumed vector %s != uninterrupted %s", i, got, want)
		}
	}
}
