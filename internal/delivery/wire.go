package delivery

import (
	"crypto/sha256"
	"fmt"

	"scadaver/internal/icsproto"
	"scadaver/internal/scadanet"
)

// WireResult extends a Delivery with byte-level transport facts from a
// wire-mode run.
type WireResult struct {
	Delivery
	Value        float64         // value as received by the MTU
	Corrupted    bool            // value differs from what the IED sent
	DroppedByHop scadanet.LinkID // secured hop that rejected the frame (0 = none)
}

// TamperFn lets a test or attack scenario rewrite frame bytes in flight
// on one link; returning the input unchanged models a passive attacker.
type TamperFn func(link *scadanet.Link, wire []byte) []byte

// RunWire performs one acquisition round at the byte level: every
// measurement travels as an icsproto frame; hops that the policy judges
// authenticated+integrity-protected carry it inside a per-link secure
// session (HMAC-SHA-256, keys derived from the link identity), other
// hops carry plain CRC-framed bytes. tamper (optional) may rewrite the
// bytes on any link; tampering is rejected at secured hops and sails
// through insecure ones — the wire-level realization of the verifier's
// SecuredDelivery judgement.
func (s *Simulator) RunWire(down map[scadanet.DeviceID]bool, values map[int]float64, tamper TamperFn) ([]WireResult, error) {
	var out []WireResult
	for _, d := range s.cfg.Net.DevicesOfKind(scadanet.IED) {
		route, _ := s.route(d.ID, down)
		for _, z := range s.cfg.Net.MeasurementsOf(d.ID) {
			res := WireResult{Delivery: Delivery{MsrID: z, IED: d.ID}}
			sent := values[z]
			if route == nil || d.Down || down[d.ID] {
				out = append(out, res)
				continue
			}
			got, dropped, err := s.transportFrame(d.ID, z, sent, route, tamper)
			if err != nil {
				return nil, err
			}
			if dropped != 0 {
				res.DroppedByHop = dropped
				out = append(out, res)
				continue
			}
			res.Delivered = true
			res.Hops = len(route)
			res.Secured = s.routeSecured(route)
			res.Value = got
			res.Corrupted = got != sent
			out = append(out, res)
		}
	}
	return out, nil
}

// transportFrame walks the route hop by hop. It returns the value seen
// by the MTU, or the link that dropped the frame.
func (s *Simulator) transportFrame(ied scadanet.DeviceID, msrID int, value float64, route []*scadanet.Link, tamper TamperFn) (float64, scadanet.LinkID, error) {
	current := value
	seq := uint32(1)
	for _, l := range route {
		frame := &icsproto.Frame{
			Src: uint16(ied), Dst: uint16(s.cfg.Net.MTUID()), Seq: seq,
			Payload: []icsproto.Measurement{{ID: uint16(msrID), Value: current}},
		}
		secured := s.hopSecured(l)
		var wire []byte
		var rx *icsproto.Session
		var err error
		if secured {
			var tx *icsproto.Session
			tx, rx, err = linkSessions(l)
			if err != nil {
				return 0, 0, err
			}
			wire, err = tx.Seal(frame)
		} else {
			wire, err = frame.Marshal()
		}
		if err != nil {
			return 0, 0, err
		}
		if tamper != nil {
			wire = tamper(l, wire)
		}
		var received *icsproto.Frame
		if secured {
			received, err = rx.Open(wire)
		} else {
			received, err = icsproto.Unmarshal(wire)
		}
		if err != nil {
			// Integrity/CRC rejection: the forwarding device drops the
			// frame.
			return 0, l.ID, nil
		}
		if len(received.Payload) != 1 {
			return 0, l.ID, nil
		}
		current = received.Payload[0].Value
	}
	return current, 0, nil
}

func (s *Simulator) routeSecured(route []*scadanet.Link) bool {
	for _, l := range route {
		if !s.hopSecured(l) {
			return false
		}
	}
	return true
}

// linkSessions derives a deterministic per-link key pair (sender and
// receiver share it, as provisioned link keys would be).
func linkSessions(l *scadanet.Link) (*icsproto.Session, *icsproto.Session, error) {
	key := sha256.Sum256([]byte(fmt.Sprintf("scadaver-link-%d-%d-%d", l.ID, l.A, l.B)))
	tx, err := icsproto.NewSession(key[:], nil)
	if err != nil {
		return nil, nil, err
	}
	rx, err := icsproto.NewSession(key[:], nil)
	if err != nil {
		return nil, nil, err
	}
	return tx, rx, nil
}
