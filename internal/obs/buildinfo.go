package obs

import "scadaver/internal/version"

// RecordBuildInfo publishes the scadaver_build_info gauge (value 1,
// labels version + go) so any scrape of the registry identifies the
// binary that produced it. A nil registry is a no-op, matching the
// package contract.
func RecordBuildInfo(r *Registry) {
	if r == nil {
		return
	}
	v, g := version.Fields()
	r.SetGauge("scadaver_build_info", map[string]string{"version": v, "go": g}, 1)
}
