package core

// Live query registration: every Verify / Sweep / enumeration query an
// analyzer runs is mirrored into an obs.QueryRegistry when one is
// armed, feeding GET /v1/queries and the CLI -watch mode. The wiring
// follows the observability contract of the rest of the package: a nil
// registry costs one nil-check per phase, nothing more.

import (
	"fmt"

	"scadaver/internal/obs"
	"scadaver/internal/sat"
)

// WithQueryRegistry mirrors every verification of this analyzer into
// the live query registry: phase transitions, solver progress from the
// probe, flight-recorder events (restarts, DB reductions, escalations,
// retries, checkpoint flushes), and portfolio replica state. Budget
// exhaustion additionally dumps the flight record into the trace and
// appends it to Result.FailureReason. A nil registry (the default)
// disables registration entirely.
func WithQueryRegistry(r *obs.QueryRegistry) Option {
	return func(a *Analyzer) { a.queries = r }
}

// fingerprint returns the analyzer's configuration fingerprint for
// query registration, sharing the encoding cache key's memoization.
// Fingerprint failures degrade to an empty label.
func (a *Analyzer) fingerprint() string {
	if a.encFP == "" {
		fp, err := CampaignFingerprint(a.cfg, "encoding", a.policy, a.maxPaths)
		if err != nil {
			return ""
		}
		a.encFP = fp
	}
	return a.encFP
}

// beginQuery registers q in the live query registry and makes it the
// analyzer's current query, so solveBudgeted and the progress probe
// find it. Returns nil (a valid no-op state) when no registry is armed.
func (a *Analyzer) beginQuery(q Query, phase string) *obs.QueryState {
	if a.queries == nil {
		return nil
	}
	conflicts := a.budget.Conflicts
	if conflicts == 0 {
		conflicts = a.conflictBudget
	}
	qs := a.queries.Begin(a.fingerprint(), q.Property.String(), budgetLabel(q), conflicts, a.budget.Deadline)
	qs.SetPhase(phase)
	a.qs = qs
	return qs
}

// completeQuery finalizes the registry entry and, for queries over the
// registry's slow threshold, traces the flight record so slow queries
// are diagnosable after the fact.
func (a *Analyzer) completeQuery(qs *obs.QueryState, qspan *obs.Span, status, reason string) {
	if qs == nil {
		return
	}
	a.qs = nil
	snap := qs.Complete(status, reason)
	if t := a.queries.SlowThreshold(); t > 0 && snap.ElapsedNanos > int64(t) {
		qspan.Event("flight-record",
			obs.A("id", snap.ID),
			obs.A("elapsedNanos", snap.ElapsedNanos),
			obs.A("events", snap.Events))
	}
}

// panicQuery finalizes the registry entry of a query whose goroutine is
// unwinding from a panic, so the flight record survives into the
// completed ring before the panic propagates to the Runner's isolation.
func (a *Analyzer) panicQuery(qs *obs.QueryState, v any) {
	if qs == nil {
		return
	}
	a.qs = nil
	qs.Record("panic", fmt.Sprint(v), qs.Snapshot().Conflicts)
	qs.Complete("panic", fmt.Sprintf("panic: %v", v))
}

// flightReason dumps the current query's flight record into the trace
// and appends its one-line summary to a budget-exhaustion reason. The
// suffix only appears when a registry is armed, so exact-match
// consumers of the bare reason constants are unaffected; interrupted
// queries (campaign shutdown) never reach this path.
func (a *Analyzer) flightReason(reason string, solveSpan *obs.Span) string {
	if a.qs == nil {
		return reason
	}
	snap := a.qs.Snapshot()
	solveSpan.Event("flight-record",
		obs.A("id", snap.ID),
		obs.A("eventsDropped", snap.EventsDropped),
		obs.A("events", snap.Events))
	if fl := a.qs.FlightSummary(); fl != "" {
		return reason + " [flight: " + fl + "]"
	}
	return reason
}

// replicaSnapshots converts a portfolio race's per-replica accounting
// into the registry's JSON view.
func replicaSnapshots(ps sat.PortfolioStats) []obs.ReplicaSnapshot {
	out := make([]obs.ReplicaSnapshot, len(ps.PerReplica))
	for i, r := range ps.PerReplica {
		out[i] = obs.ReplicaSnapshot{
			ID:        r.ID,
			Strategy:  r.Strategy,
			Status:    r.Status.String(),
			Conflicts: r.Conflicts,
			Imported:  r.Imported,
			Exported:  r.Exported,
			Winner:    r.Winner,
			Panicked:  r.Panicked,
		}
	}
	return out
}
