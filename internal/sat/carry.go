package sat

// This file implements learnt-clause carryover between solver
// generations (DESIGN.md §16). When an encoding snapshot is rebuilt
// after a configuration delta, the clauses the previous generation
// learned are still valuable — most of the formula survived the
// mutation — but they were derived against the OLD clause database, so
// they cannot be transplanted on trust. HarvestLearnts extracts
// transferable candidates from a retiring solver; ImportLearnts
// re-admits them into a successor with the same vetting the portfolio
// applies to shared clauses (root-value filtering, eliminated-variable
// checks) plus a mandatory reverse-unit-propagation test against the
// NEW database. The RUP gate is what makes carryover unconditionally
// sound — variable filtering alone is not, since resolution can
// launder a dirty dependency into a clause over clean variables.

// SavedPhases returns a copy of the saved-phase (polarity) array for
// the first n variables (all of them when n <= 0 or out of range).
// Alongside learnt clauses, branching heuristics are the other state
// worth carrying between solver generations: they are pure heuristics,
// so transplanting them is unconditionally sound, and consecutive
// generations differ by one dirty cone — the phases that satisfied the
// previous instance are very close to satisfying the next one.
func (s *Solver) SavedPhases(n int) []bool {
	if n <= 0 || n > len(s.polarity) {
		n = len(s.polarity)
	}
	return append([]bool(nil), s.polarity[:n]...)
}

// AdoptPhases installs saved phases for the variables both solvers
// share; extra entries on either side are ignored.
func (s *Solver) AdoptPhases(p []bool) {
	copy(s.polarity, p)
}

// SavedActivity returns a copy of the branching-activity scores for the
// first n variables (all of them when n <= 0 or out of range).
func (s *Solver) SavedActivity(n int) []float64 {
	if n <= 0 || n > len(s.activity) {
		n = len(s.activity)
	}
	return append([]float64(nil), s.activity[:n]...)
}

// AdoptActivity installs saved activity scores for the variables both
// solvers share and rebuilds the decision order, so the next search
// starts branching where the previous generation's search was hot
// instead of rediscovering the formula's core from uniform scores.
// Must be called at decision level 0.
func (s *Solver) AdoptActivity(a []float64) {
	if s.decisionLevel() != 0 {
		return
	}
	copy(s.activity, a)
	s.order = newActivityHeap(&s.activity)
	for v := Var(0); v < Var(len(s.assigns)); v++ {
		if s.assigns[v] == Unknown && !s.eliminated[v] {
			s.order.push(v)
		}
	}
}

// HarvestLearnts copies up to limit learned clauses whose variables all
// lie below maxVar and whose length is at most maxLen, preferring
// low-LBD ("glue") clauses implicitly by scanning the database in
// place. Learned clauses are consequences of the clause database alone,
// independent of any assumptions in force, so harvesting is sound at
// any decision level. maxVar <= 0 means no variable bound; maxLen <= 0
// means no length bound.
func (s *Solver) HarvestLearnts(maxVar, maxLen, limit int) [][]Lit {
	if s == nil || limit <= 0 {
		return nil
	}
	out := make([][]Lit, 0, min(limit, len(s.learned)))
	for _, c := range s.learned {
		if c.deleted {
			continue
		}
		if maxLen > 0 && len(c.lits) > maxLen {
			continue
		}
		ok := true
		if maxVar > 0 {
			for _, l := range c.lits {
				if int(l.Var()) >= maxVar {
					ok = false
					break
				}
			}
		}
		if !ok {
			continue
		}
		out = append(out, append([]Lit(nil), c.lits...))
		if len(out) >= limit {
			break
		}
	}
	return out
}

// ImportLearnts re-admits harvested clauses into this solver and
// returns how many were accepted. It must be called at decision level
// 0 on a solver whose problem clauses are already loaded. Every
// candidate is vetted like a portfolio-shared clause — skipped when it
// mentions an eliminated variable or is root-satisfied, root-false
// literals stripped — and additionally must pass a reverse-unit-
// propagation check against this database, so a clause that depended on
// retired constraints is dropped rather than imported unsoundly. With a
// proof recorder armed, accepted imports are logged as derived
// additions (they are RUP, so the DRAT checker accepts them).
func (s *Solver) ImportLearnts(cands [][]Lit) int {
	if s == nil || s.decisionLevel() != 0 {
		return 0
	}
	accepted := 0
	for _, cand := range cands {
		if s.rootUnsat {
			break
		}
		lits := make([]Lit, 0, len(cand))
		skip := false
		for _, l := range cand {
			if int(l.Var()) >= s.NumVars() || s.eliminated[l.Var()] {
				skip = true
				break
			}
			switch s.value(l) {
			case True:
				skip = true
			case False:
				continue
			default:
				lits = append(lits, l)
			}
			if skip {
				break
			}
		}
		if skip {
			continue
		}
		// The RUP gate: only clauses the new database already implies at
		// the unit-propagation level survive the generation change.
		if !s.rupImplied(cand) {
			continue
		}
		if s.proof != nil {
			s.proofStep(ProofAdd, cand)
		}
		s.stats.ImportedClauses++
		accepted++
		switch len(lits) {
		case 0:
			s.markRootUnsat()
		case 1:
			s.uncheckedEnqueue(lits[0], nil)
			if s.propagate() != nil {
				s.markRootUnsat()
			}
		default:
			c := &clause{lits: lits, learned: true, lbd: int32(len(lits))}
			s.learned = append(s.learned, c)
			s.attach(c)
		}
	}
	return accepted
}
