package obs

import "net/http"

// ContentTypePrometheus is the content type of the Prometheus text
// exposition format, version suffix included — scrapers negotiate on
// it, so the handler must not fall back to a bare text/plain.
const ContentTypePrometheus = "text/plain; version=0.0.4; charset=utf-8"

// ContentTypeJSON is the content type of the JSON metrics export.
const ContentTypeJSON = "application/json"

// Handler serves the registry in the Prometheus text exposition format
// with the correct versioned Content-Type. Each request snapshots the
// registry, so a scrape observes a consistent point in time while the
// campaign keeps recording.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", ContentTypePrometheus)
		r.WritePrometheus(w) //nolint:errcheck // client gone; nothing to do
	})
}

// JSONHandler serves the registry snapshot as one JSON document with
// Content-Type application/json.
func (r *Registry) JSONHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", ContentTypeJSON)
		r.WriteJSON(w) //nolint:errcheck // client gone; nothing to do
	})
}
