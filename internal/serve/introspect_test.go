package serve

// End-to-end coverage for the query-introspection control plane:
// /v1/queries, /v1/queries/{id}/watch, the per-route latency histogram,
// the SLO breach counter, and the build-info gauge.

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"scadaver/internal/core"
	"scadaver/internal/faultinject"
	"scadaver/internal/obs"
)

func getBody(t testing.TB, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(raw)
}

// TestQueriesEndpoint: a served verification shows up in GET
// /v1/queries as a completed entry carrying its identity, and the new
// instrumentation (request histogram, build info) is on /metrics.
func TestQueriesEndpoint(t *testing.T) {
	_, ts := newTestServer(t, nil)
	q := core.Query{Property: core.Observability, Combined: true, K: 1}
	resp := postJSON(t, ts.URL+"/v1/verify", VerifyRequest{Config: "grid", Query: q})
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("verify status = %d", resp.StatusCode)
	}

	code, body := getBody(t, ts.URL+"/v1/queries")
	if code != http.StatusOK {
		t.Fatalf("/v1/queries status = %d", code)
	}
	var qr QueriesResponse
	if err := json.Unmarshal([]byte(body), &qr); err != nil {
		t.Fatalf("bad body %q: %v", body, err)
	}
	if len(qr.Active) != 0 {
		t.Fatalf("active = %+v, want none at rest", qr.Active)
	}
	if len(qr.Completed) != 1 {
		t.Fatalf("completed = %d entries, want 1", len(qr.Completed))
	}
	got := qr.Completed[0]
	if got.Property != "observability" || got.Budget != "k=1" || !got.Done {
		t.Fatalf("completed entry: %+v", got)
	}

	_, metrics := getBody(t, ts.URL+"/metrics")
	for _, want := range []string{
		`scadaver_http_request_seconds_bucket{route="verify",le="+Inf"} 1`,
		`scadaver_http_request_seconds_count{route="verify"} 1`,
		"scadaver_build_info{",
	} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("/metrics missing %s:\n%s", want, metrics)
		}
	}
}

// TestQueryWatchStreams: watching a live slow query yields at least one
// in-flight snapshot and terminates with a done=true line.
func TestQueryWatchStreams(t *testing.T) {
	s, ts := newTestServer(t, func(o *Options) {
		o.Faults = faultinject.New(3).DelaySolves(300 * time.Millisecond)
		o.AnalyzerOptions = []core.Option{core.WithProgressEvery(1)}
	})

	done := make(chan struct{})
	go func() {
		defer close(done)
		q := core.Query{Property: core.Observability, Combined: true, K: 1}
		resp := postJSON(t, ts.URL+"/v1/verify", VerifyRequest{Config: "grid", Query: q})
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
	}()

	var id uint64
	waitFor(t, 5*time.Second, func() bool {
		if act := s.Queries().Active(); len(act) > 0 {
			id = act[0].ID
			return true
		}
		return false
	})

	resp, err := http.Get(ts.URL + "/v1/queries/" + strconv.FormatUint(id, 10) + "/watch?interval=60ms")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("watch status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("watch Content-Type = %q", ct)
	}
	var snaps []obs.QuerySnapshot
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var snap obs.QuerySnapshot
		if err := json.Unmarshal(sc.Bytes(), &snap); err != nil {
			t.Fatalf("bad watch line %q: %v", sc.Bytes(), err)
		}
		if snap.ID != id {
			t.Fatalf("watch streamed query %d, want %d", snap.ID, id)
		}
		snaps = append(snaps, snap)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(snaps) == 0 {
		t.Fatal("watch streamed no snapshots")
	}
	last := snaps[len(snaps)-1]
	if !last.Done || last.Status == "" {
		t.Fatalf("final watch line not terminal: %+v", last)
	}
	for _, snap := range snaps[:len(snaps)-1] {
		if snap.Done {
			t.Fatal("done line was not the final line")
		}
	}
	<-done
}

// TestQueryWatchErrors pins the watch input contract: non-numeric id →
// 400, bad interval → 400, unknown id → 404.
func TestQueryWatchErrors(t *testing.T) {
	_, ts := newTestServer(t, nil)
	for _, tc := range []struct {
		path string
		want int
	}{
		{"/v1/queries/bogus/watch", http.StatusBadRequest},
		{"/v1/queries/1/watch?interval=fast", http.StatusBadRequest},
		{"/v1/queries/999/watch", http.StatusNotFound},
	} {
		code, body := getBody(t, ts.URL+tc.path)
		if code != tc.want {
			t.Fatalf("%s = %d (%s), want %d", tc.path, code, body, tc.want)
		}
	}
}

// TestSLOBreachCounter: with an unmeetable threshold every request
// breaches, the counter and threshold gauge export, and the slow-query
// log threshold reaches the registry.
func TestSLOBreachCounter(t *testing.T) {
	s, ts := newTestServer(t, func(o *Options) {
		o.SLOThreshold = time.Nanosecond
	})
	if got := s.Queries().SlowThreshold(); got != time.Nanosecond {
		t.Fatalf("slow-query threshold = %v", got)
	}
	q := core.Query{Property: core.Observability, Combined: true, K: 0}
	resp := postJSON(t, ts.URL+"/v1/verify", VerifyRequest{Config: "grid", Query: q})
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()

	_, metrics := getBody(t, ts.URL+"/metrics")
	for _, want := range []string{
		`scadaver_slo_breach_total{route="verify"} 1`,
		"scadaver_slo_threshold_seconds",
	} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("/metrics missing %s:\n%s", want, metrics)
		}
	}
}

// TestQueryHistoryBounded: the completed ring honors QueryHistory even
// when many more queries than the bound are served.
func TestQueryHistoryBounded(t *testing.T) {
	_, ts := newTestServer(t, func(o *Options) {
		o.QueryHistory = 3
	})
	q := core.Query{Property: core.Observability, Combined: true, K: 0}
	for i := 0; i < 8; i++ {
		resp := postJSON(t, ts.URL+"/v1/verify", VerifyRequest{Config: "grid", Query: q})
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
	}
	code, body := getBody(t, ts.URL+"/v1/queries")
	if code != http.StatusOK {
		t.Fatalf("/v1/queries status = %d", code)
	}
	var qr QueriesResponse
	if err := json.Unmarshal([]byte(body), &qr); err != nil {
		t.Fatal(err)
	}
	if len(qr.Completed) != 3 {
		t.Fatalf("completed = %d entries, want history bound 3", len(qr.Completed))
	}
}
