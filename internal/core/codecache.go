package core

import (
	"fmt"
	"sync"

	"scadaver/internal/logic"
	"scadaver/internal/sat"
)

// EncodingVersion identifies the CNF encoding scheme — the clause shapes
// emitted by encodeStructure/violationFormula and the preprocessing
// applied on top of them (sat.Solver.Simplify). It participates in every
// encoding-cache key and in the verification service's enumeration
// checkpoint fingerprint, so bump it whenever the emitted clauses change
// meaning: stale snapshots and resumed enumerations are then rejected
// instead of silently mixed with the new encoding.
const EncodingVersion = 1

// WithPresimplify enables CNF preprocessing before search: after a
// query's constraints are encoded, the solver runs unit propagation to
// fixpoint, failed-literal probing, subsumption/self-subsuming
// resolution, and bounded variable elimination over the anonymous
// Tseitin auxiliaries (named variables are frozen — see
// logic.Encoder.Simplify). Verdicts are unchanged; the search starts on
// a smaller, stronger formula. Combined with WithEncodingCache the cost
// is paid once per structure and amortized across every query that
// shares it.
func WithPresimplify(on bool) Option {
	return func(a *Analyzer) { a.presimplify = on }
}

// WithEncodingCache shares a content-addressed cache of structural
// encodings across analyzers. Verify, Sweep, and threat enumeration
// then clone a ready (and, under WithPresimplify, pre-simplified)
// solver snapshot instead of re-encoding the configuration per query;
// only the per-query failure budget is encoded on the clone. The cache
// is safe for concurrent use — Runner workers and service handlers
// share one instance — and concurrent requests for the same snapshot
// build it exactly once (per-entry singleflight).
func WithEncodingCache(c *EncodingCache) Option {
	return func(a *Analyzer) { a.cache = c }
}

// EncodingCache holds immutable solver snapshots of structural
// encodings, keyed by content: a fingerprint of the configuration,
// security policy and path bound, the query's structure-relevant fields
// (property, corrupted-measurement budget, link budget), whether
// preprocessing ran, and EncodingVersion. Entries are built once under
// a per-entry sync.Once and never mutated afterwards; consumers receive
// private clones (logic.Encoder.Clone), so any number of goroutines may
// hit one entry concurrently.
type EncodingCache struct {
	mu      sync.Mutex
	entries map[string]*encodingEntry
}

// encodingEntry is one built snapshot: the base encoder (structure +
// negated property asserted, optionally simplified; the failure budget
// is NOT included), plus the preprocessing counters and duration its
// construction accrued, reported once by the query that built it.
type encodingEntry struct {
	once sync.Once
	enc  *logic.Encoder
	pre  sat.Stats
}

// NewEncodingCache returns an empty cache, ready to be shared across
// analyzers and goroutines.
func NewEncodingCache() *EncodingCache {
	return &EncodingCache{entries: make(map[string]*encodingEntry)}
}

// Len reports how many distinct structural encodings the cache holds.
func (c *EncodingCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

func (c *EncodingCache) entry(key string) *encodingEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok {
		e = &encodingEntry{}
		c.entries[key] = e
	}
	return e
}

// encodingKey derives the cache key for q's structural encoding. The
// configuration/policy/maxPaths fingerprint is computed once per
// analyzer; the per-query suffix covers exactly the fields
// encodeStructure and violationFormula consult (property, R, KL) plus
// the preprocessing mode and encoding version.
func (a *Analyzer) encodingKey(q Query) (string, error) {
	if a.encFP == "" {
		fp, err := CampaignFingerprint(a.cfg, "encoding", a.policy, a.maxPaths)
		if err != nil {
			return "", fmt.Errorf("core: encoding cache key: %w", err)
		}
		a.encFP = fp
	}
	return fmt.Sprintf("%s|v%d|prop%d|r%d|kl%d|simp%t",
		a.encFP, EncodingVersion, q.Property, q.R, q.KL, a.presimplify), nil
}

// snapshot returns a private clone of the shared structural encoding
// for q: configuration constraints, delivery definitions and the
// negated property are asserted (and preprocessed under presimplify);
// the failure budget is not, so one snapshot serves every budget. The
// bool reports whether this call built the entry — the building query
// attributes the one-time preprocessing cost and counters; cache hits
// get the snapshot for free.
func (a *Analyzer) snapshot(q Query) (*logic.Encoder, bool, *encodingEntry, error) {
	key, err := a.encodingKey(q)
	if err != nil {
		return nil, false, nil, err
	}
	e := a.cache.entry(key)
	built := false
	e.once.Do(func() {
		built = true
		// Canonicalize to the structure-relevant fields so the snapshot is
		// visibly independent of the device-failure budget.
		probe := Query{Property: q.Property, Combined: true, R: q.R, KL: q.KL}
		enc, delivered := a.encodeStructure(probe)
		enc.Assert(a.violationFormula(probe, delivered))
		if a.presimplify {
			enc.Simplify()
		}
		e.pre = enc.Solver().Stats()
		e.enc = enc
	})
	return e.enc.Clone(), built, e, nil
}

// addPreprocessStats folds a snapshot's one-time preprocessing counters
// into a per-query stats record (only the query that built the snapshot
// does this, so campaign-level sums count the work exactly once).
func addPreprocessStats(dst *sat.Stats, pre sat.Stats) {
	dst.ElimVars += pre.ElimVars
	dst.SubsumedClauses += pre.SubsumedClauses
	dst.StrengthenedClauses += pre.StrengthenedClauses
	dst.FailedLits += pre.FailedLits
	dst.SimplifyTime += pre.SimplifyTime
}

// preprocessPhase splits a snapshot-building query's wall time between
// the build and preprocess phases: the snapshot's Simplify duration is
// reported as Preprocess and removed from Build.
func preprocessPhase(ph *PhaseTimes, pre sat.Stats) {
	ph.Preprocess = pre.SimplifyTime
	ph.Build -= ph.Preprocess
	if ph.Build < 0 {
		ph.Build = 0
	}
}

// enumEncoder returns the fully-asserted encoder backing one threat
// enumeration: a cache clone plus the asserted budget when a cache is
// configured, otherwise a fresh full encoding (preprocessed under
// presimplify). Blocking clauses land on the returned encoder either
// way, never on a shared snapshot.
func (a *Analyzer) enumEncoder(q Query) (*logic.Encoder, error) {
	if a.cache != nil {
		enc, _, _, err := a.snapshot(q)
		if err != nil {
			return nil, err
		}
		enc.Assert(a.budgetFormula(q))
		return enc, nil
	}
	enc := a.encode(q)
	if a.presimplify {
		enc.Simplify()
	}
	return enc, nil
}
