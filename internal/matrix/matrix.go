// Package matrix provides the small dense linear-algebra kernel the
// numeric observability baseline needs: measurement Jacobians are tall
// skinny float64 matrices whose rank decides observability.
package matrix

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// ErrShape is returned for dimension mismatches.
var ErrShape = errors.New("matrix: dimension mismatch")

// Matrix is a dense row-major float64 matrix.
type Matrix struct {
	rows, cols int
	data       []float64
}

// New returns a zero rows×cols matrix.
func New(rows, cols int) *Matrix {
	return &Matrix{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from row slices; all rows must share a length.
func FromRows(rows [][]float64) (*Matrix, error) {
	if len(rows) == 0 {
		return New(0, 0), nil
	}
	cols := len(rows[0])
	m := New(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			return nil, fmt.Errorf("%w: row %d has %d entries, want %d", ErrShape, i, len(r), cols)
		}
		copy(m.data[i*cols:(i+1)*cols], r)
	}
	return m, nil
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// At returns the element at (i, j).
func (m *Matrix) At(i, j int) float64 { return m.data[i*m.cols+j] }

// Set assigns the element at (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.data[i*m.cols+j] = v }

// Row returns a copy of row i.
func (m *Matrix) Row(i int) []float64 {
	out := make([]float64, m.cols)
	copy(out, m.data[i*m.cols:(i+1)*m.cols])
	return out
}

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := New(m.rows, m.cols)
	copy(c.data, m.data)
	return c
}

// SelectRows returns a new matrix keeping only the given rows, in order.
func (m *Matrix) SelectRows(idx []int) *Matrix {
	out := New(len(idx), m.cols)
	for i, r := range idx {
		copy(out.data[i*m.cols:(i+1)*m.cols], m.data[r*m.cols:(r+1)*m.cols])
	}
	return out
}

// Mul returns m × b.
func (m *Matrix) Mul(b *Matrix) (*Matrix, error) {
	if m.cols != b.rows {
		return nil, fmt.Errorf("%w: %dx%d × %dx%d", ErrShape, m.rows, m.cols, b.rows, b.cols)
	}
	out := New(m.rows, b.cols)
	for i := 0; i < m.rows; i++ {
		for k := 0; k < m.cols; k++ {
			a := m.At(i, k)
			if a == 0 {
				continue
			}
			for j := 0; j < b.cols; j++ {
				out.data[i*out.cols+j] += a * b.At(k, j)
			}
		}
	}
	return out, nil
}

// Transpose returns mᵀ.
func (m *Matrix) Transpose() *Matrix {
	out := New(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			out.Set(j, i, m.At(i, j))
		}
	}
	return out
}

// MulVec returns m × v.
func (m *Matrix) MulVec(v []float64) ([]float64, error) {
	if m.cols != len(v) {
		return nil, fmt.Errorf("%w: %dx%d × %d-vector", ErrShape, m.rows, m.cols, len(v))
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		s := 0.0
		for j := 0; j < m.cols; j++ {
			s += m.At(i, j) * v[j]
		}
		out[i] = s
	}
	return out, nil
}

// rankEps is the pivot tolerance for rank computation. Susceptance
// magnitudes in the embedded test systems are O(1)–O(100), so 1e-9 is a
// comfortable margin.
const rankEps = 1e-9

// Rank returns the numerical rank via Gaussian elimination with partial
// pivoting. The receiver is not modified.
func (m *Matrix) Rank() int {
	a := m.Clone()
	rank := 0
	for col := 0; col < a.cols && rank < a.rows; col++ {
		// Find pivot.
		pivot, best := -1, rankEps
		for r := rank; r < a.rows; r++ {
			if v := math.Abs(a.At(r, col)); v > best {
				best, pivot = v, r
			}
		}
		if pivot < 0 {
			continue
		}
		// Swap pivot row into place.
		if pivot != rank {
			for j := 0; j < a.cols; j++ {
				pr, rr := a.At(pivot, j), a.At(rank, j)
				a.Set(pivot, j, rr)
				a.Set(rank, j, pr)
			}
		}
		pv := a.At(rank, col)
		for r := rank + 1; r < a.rows; r++ {
			f := a.At(r, col) / pv
			if f == 0 {
				continue
			}
			for j := col; j < a.cols; j++ {
				a.Set(r, j, a.At(r, j)-f*a.At(rank, j))
			}
		}
		rank++
	}
	return rank
}

// SolveLSQ solves the weighted least-squares problem
// min ‖W^(1/2) (b − m·x)‖² via the normal equations (mᵀWm)x = mᵀWb,
// with Gaussian elimination. weights may be nil for unit weights.
// It returns ErrShape on mismatched sizes and an error when mᵀWm is
// singular (the system is unobservable).
func (m *Matrix) SolveLSQ(b, weights []float64) ([]float64, error) {
	if len(b) != m.rows {
		return nil, fmt.Errorf("%w: %d rows vs %d observations", ErrShape, m.rows, len(b))
	}
	if weights != nil && len(weights) != m.rows {
		return nil, fmt.Errorf("%w: %d rows vs %d weights", ErrShape, m.rows, len(weights))
	}
	n := m.cols
	// Build normal equations.
	ata := New(n, n)
	atb := make([]float64, n)
	for r := 0; r < m.rows; r++ {
		w := 1.0
		if weights != nil {
			w = weights[r]
		}
		for i := 0; i < n; i++ {
			hi := m.At(r, i)
			if hi == 0 {
				continue
			}
			atb[i] += w * hi * b[r]
			for j := 0; j < n; j++ {
				ata.data[i*n+j] += w * hi * m.At(r, j)
			}
		}
	}
	// Gaussian elimination with partial pivoting on [ata | atb].
	for col := 0; col < n; col++ {
		pivot, best := -1, rankEps
		for r := col; r < n; r++ {
			if v := math.Abs(ata.At(r, col)); v > best {
				best, pivot = v, r
			}
		}
		if pivot < 0 {
			return nil, errors.New("matrix: normal equations singular (system unobservable)")
		}
		if pivot != col {
			for j := 0; j < n; j++ {
				pv, cv := ata.At(pivot, j), ata.At(col, j)
				ata.Set(pivot, j, cv)
				ata.Set(col, j, pv)
			}
			atb[pivot], atb[col] = atb[col], atb[pivot]
		}
		pv := ata.At(col, col)
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := ata.At(r, col) / pv
			if f == 0 {
				continue
			}
			for j := col; j < n; j++ {
				ata.Set(r, j, ata.At(r, j)-f*ata.At(col, j))
			}
			atb[r] -= f * atb[col]
		}
	}
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = atb[i] / ata.At(i, i)
	}
	return x, nil
}

// Inverse returns m⁻¹ via Gauss-Jordan elimination with partial
// pivoting. It returns an error when m is not square or is singular.
func (m *Matrix) Inverse() (*Matrix, error) {
	if m.rows != m.cols {
		return nil, fmt.Errorf("%w: inverse of %dx%d", ErrShape, m.rows, m.cols)
	}
	n := m.rows
	a := m.Clone()
	inv := New(n, n)
	for i := 0; i < n; i++ {
		inv.Set(i, i, 1)
	}
	for col := 0; col < n; col++ {
		pivot, best := -1, rankEps
		for r := col; r < n; r++ {
			if v := math.Abs(a.At(r, col)); v > best {
				best, pivot = v, r
			}
		}
		if pivot < 0 {
			return nil, errors.New("matrix: singular matrix has no inverse")
		}
		if pivot != col {
			for j := 0; j < n; j++ {
				a.data[pivot*n+j], a.data[col*n+j] = a.data[col*n+j], a.data[pivot*n+j]
				inv.data[pivot*n+j], inv.data[col*n+j] = inv.data[col*n+j], inv.data[pivot*n+j]
			}
		}
		pv := a.At(col, col)
		for j := 0; j < n; j++ {
			a.data[col*n+j] /= pv
			inv.data[col*n+j] /= pv
		}
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := a.At(r, col)
			if f == 0 {
				continue
			}
			for j := 0; j < n; j++ {
				a.data[r*n+j] -= f * a.data[col*n+j]
				inv.data[r*n+j] -= f * inv.data[col*n+j]
			}
		}
	}
	return inv, nil
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	var sb strings.Builder
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				sb.WriteByte(' ')
			}
			fmt.Fprintf(&sb, "%8.3f", m.At(i, j))
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
