// Package version reports the build identity shared by every scadaver
// CLI's -version flag: the module version and, when the binary was
// built inside a VCS checkout, the revision and commit time Go stamps
// into the binary.
package version

import (
	"fmt"
	"runtime/debug"
	"strings"
)

// Fields returns the module version and Go toolchain version as
// separate values, for the scadaver_build_info metric labels. Missing
// build information degrades to "unknown" rather than empty labels.
func Fields() (version, goVersion string) {
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return "unknown", "unknown"
	}
	version = info.Main.Version
	if version == "" {
		version = "(devel)"
	}
	goVersion = info.GoVersion
	if goVersion == "" {
		goVersion = "unknown"
	}
	return version, goVersion
}

// String renders the binary's version as a single line, e.g.
//
//	scadaver (devel) rev 1a2b3c4d5e6f (2026-08-06T10:00:00Z, dirty) go1.22.1
//
// It degrades gracefully: binaries built without module or VCS
// information (go test, stripped builds) report what is available.
func String() string {
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return "scadaver (build info unavailable)"
	}
	var b strings.Builder
	b.WriteString("scadaver ")
	if v := info.Main.Version; v != "" {
		b.WriteString(v)
	} else {
		b.WriteString("(devel)")
	}

	var rev, at, modified string
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.time":
			at = s.Value
		case "vcs.modified":
			modified = s.Value
		}
	}
	if rev != "" {
		if len(rev) > 12 {
			rev = rev[:12]
		}
		fmt.Fprintf(&b, " rev %s", rev)
		switch {
		case at != "" && modified == "true":
			fmt.Fprintf(&b, " (%s, dirty)", at)
		case at != "":
			fmt.Fprintf(&b, " (%s)", at)
		case modified == "true":
			b.WriteString(" (dirty)")
		}
	}
	if info.GoVersion != "" {
		fmt.Fprintf(&b, " %s", info.GoVersion)
	}
	return b.String()
}
