// Package faultinject provides deterministic fault-injection hooks for
// chaos-testing verification campaigns: a seeded plan of faults —
// solver stalls after a fixed conflict count, a forced panic on a
// chosen worker task, transient I/O errors on checkpoint and trace
// writers, and artificial solve latency — that production code threads
// through plain function hooks with no build tags.
//
// The central design rule is "nil is off": every hook method is safe on
// a nil *Faults receiver and injects nothing, so internal/sat,
// internal/core and the checkpoint writer carry a possibly-nil plan
// without branching at call sites. Faults are counter-based, not
// probabilistic, so a plan replays identically across runs and across
// worker schedules: the i-th dispatched task panics, the i-th write
// fails, every solve stalls at exactly N conflicts. The seed only feeds
// Pick, a helper for tests that want to derive victim indices
// reproducibly from one number.
package faultinject

import (
	"errors"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected is the sentinel error returned by injected I/O faults.
// Code under test must treat it like any other transient write error;
// chaos tests use errors.Is to tell injected failures from real ones.
var ErrInjected = errors.New("faultinject: injected fault")

// Faults is one deterministic fault-injection plan. Construct with New
// and arm individual faults with the chainable setters; a plan with no
// faults armed (and the nil *Faults) injects nothing.
//
// A single plan may be shared by many goroutines: hook state is either
// immutable after arming or guarded by atomics, and the injection
// counters are safe to read while a campaign runs.
type Faults struct {
	seed uint64

	stallAfter    uint64 // solver stall: give up after N conflicts (0 = off)
	panicTask     int64  // task index to panic on (< 0 = off)
	panicReplica  int64  // portfolio replica index to panic on (< 0 = off)
	panicEvery    bool   // panic on every matching task, not just once
	solveDelay    time.Duration
	mutationDelay time.Duration   // config-mutation stall (0 = off)
	failedWrite   map[uint64]bool // global write indices that fail

	// HTTP-layer faults (see BeforeStreamItem).
	streamDelay time.Duration // slow client: per-item stall (0 = off)
	dropAfter   int64         // mid-stream disconnect after N items (< 0 = off)

	// Verdict-corruption faults (see FlipVerdict, CorruptModel and
	// DropProofStep): wrong answers injected after the solver decided,
	// which only a certification layer can catch.
	flipVerdict  int64 // verdict index to invert (< 0 = off)
	corruptModel int64 // sat-model index to corrupt (< 0 = off)
	dropProofAt  int64 // proof-addition index to truncate from (< 0 = off)

	// Network-level faults (see transport.go), allocated on first arm so
	// a plan without them carries no extra state.
	netOnce  sync.Once
	netState *netFaults

	rngMu sync.Mutex
	rng   uint64

	panicFired     atomic.Bool
	writeIdx       atomic.Uint64
	streamIdx      atomic.Int64
	verdictIdx     atomic.Int64
	modelIdx       atomic.Int64
	proofDropFired atomic.Bool

	stalls         atomic.Uint64
	mutationStalls atomic.Uint64
	panics         atomic.Uint64
	writeFaults    atomic.Uint64
	streamFaults   atomic.Uint64
	verdictFlips   atomic.Uint64
	modelFaults    atomic.Uint64
	proofDrops     atomic.Uint64
}

// New returns a plan with every fault disabled. The seed feeds Pick
// only; the faults themselves are counter-based and deterministic.
func New(seed int64) *Faults {
	return &Faults{
		seed:         uint64(seed),
		rng:          uint64(seed)*2862933555777941757 + 3037000493,
		panicTask:    -1,
		panicReplica: -1,
		dropAfter:    -1,
		flipVerdict:  -1,
		corruptModel: -1,
		dropProofAt:  -1,
		failedWrite:  map[uint64]bool{},
	}
}

// StallSolverAfter arms the solver-stall fault: every SAT solve gives
// up (sat.Unsolved) once it has spent n conflicts, as if the instance
// were too hard for its budget. 0 disarms.
func (f *Faults) StallSolverAfter(n uint64) *Faults {
	f.stallAfter = n
	return f
}

// PanicOnTask arms a one-shot worker panic: the worker executing the
// task with this index panics with ErrInjected. A negative index
// disarms.
func (f *Faults) PanicOnTask(i int) *Faults {
	f.panicTask = int64(i)
	f.panicFired.Store(false)
	return f
}

// PanicOnReplica arms a portfolio-replica panic: in every portfolio
// race, the replica with this index panics with ErrInjected as its
// search starts. Unlike PanicOnTask this fault is not one-shot — every
// race loses the same replica, which is exactly the repeatable
// degradation portfolio chaos tests want. A negative index disarms.
func (f *Faults) PanicOnReplica(i int) *Faults {
	f.panicReplica = int64(i)
	return f
}

// ReplicaHook returns the portfolio's replica-start hook for this plan,
// or nil when the replica-panic fault is disarmed. The portfolio driver
// must isolate the panic: the replica dies, the others decide.
func (f *Faults) ReplicaHook() func(id int) {
	if f == nil || f.panicReplica < 0 {
		return nil
	}
	victim := f.panicReplica
	return func(id int) {
		if int64(id) != victim {
			return
		}
		f.panics.Add(1)
		panic(ErrInjected)
	}
}

// DelaySolves arms artificial solve latency: every solve sleeps d
// before starting, modeling a slow or contended solver.
func (f *Faults) DelaySolves(d time.Duration) *Faults {
	f.solveDelay = d
	return f
}

// FailWrites arms transient I/O errors: across all writers wrapped by
// WrapWriter, the writes with the given global 0-based indices fail
// with ErrInjected. Later writes succeed again, which is what makes the
// fault transient rather than latched.
func (f *Faults) FailWrites(indices ...uint64) *Faults {
	for _, i := range indices {
		f.failedWrite[i] = true
	}
	return f
}

// Seed returns the plan's seed.
func (f *Faults) Seed() int64 {
	if f == nil {
		return 0
	}
	return int64(f.seed)
}

// Pick returns a deterministic pseudo-random index in [0, n), advancing
// the plan's seeded generator. Tests use it to choose victim tasks or
// write indices reproducibly from the plan's seed.
func (f *Faults) Pick(n int) int {
	if f == nil || n <= 0 {
		return 0
	}
	f.rngMu.Lock()
	defer f.rngMu.Unlock()
	// xorshift64* keeps the dependency surface at zero.
	f.rng ^= f.rng >> 12
	f.rng ^= f.rng << 25
	f.rng ^= f.rng >> 27
	return int((f.rng * 2685821657736338717) % uint64(n))
}

// SolverHook returns the solver's conflict hook for this plan, or nil
// when the solver-stall fault is disarmed (the solver treats a nil hook
// as absent). The hook reports true — abort the solve — once the
// current call has spent the armed number of conflicts.
func (f *Faults) SolverHook() func(conflicts uint64) bool {
	if f == nil || f.stallAfter == 0 {
		return nil
	}
	limit := f.stallAfter
	return func(conflicts uint64) bool {
		if conflicts < limit {
			return false
		}
		f.stalls.Add(1)
		return true
	}
}

// BeforeSolve blocks for the armed solve delay (a no-op otherwise).
func (f *Faults) BeforeSolve() {
	if f == nil || f.solveDelay <= 0 {
		return
	}
	time.Sleep(f.solveDelay)
}

// CheckTask panics with ErrInjected when the worker-panic fault is
// armed for task index i and has not fired yet. Campaign runners call
// it right before executing a task; the panic travels the same path as
// a genuine bug in verification code.
func (f *Faults) CheckTask(i int) {
	if f == nil || f.panicTask < 0 || int64(i) != f.panicTask {
		return
	}
	if f.panicFired.Swap(true) {
		return
	}
	f.panics.Add(1)
	panic(ErrInjected)
}

// FlipVerdict arms verdict corruption: the n-th (0-based, counted
// across the plan) decided solve verdict is inverted — Sat reported as
// Unsat and vice versa — modeling a wrong answer escaping the solver
// undetected. Without a certification layer the flipped verdict is
// simply believed; with one it must be caught and quarantined. A
// negative n disarms.
func (f *Faults) FlipVerdict(n int) *Faults {
	f.flipVerdict = int64(n)
	return f
}

// CorruptVerdict reports whether the current decided verdict must be
// inverted, advancing the plan's verdict counter. Callers invoke it
// once per decided (Sat/Unsat) verdict.
func (f *Faults) CorruptVerdict() bool {
	if f == nil || f.flipVerdict < 0 {
		return false
	}
	if f.verdictIdx.Add(1)-1 != f.flipVerdict {
		return false
	}
	f.verdictFlips.Add(1)
	return true
}

// CorruptModel arms witness corruption: the n-th (0-based, counted
// across the plan) decoded sat model has one element of its threat
// vector corrupted before it is reported, modeling a bad model readout.
// A negative n disarms.
func (f *Faults) CorruptModel(n int) *Faults {
	f.corruptModel = int64(n)
	return f
}

// CorruptModelNow reports whether the current decoded witness must be
// corrupted, advancing the plan's model counter. Callers invoke it once
// per decoded sat model.
func (f *Faults) CorruptModelNow() bool {
	if f == nil || f.corruptModel < 0 {
		return false
	}
	if f.modelIdx.Add(1)-1 != f.corruptModel {
		return false
	}
	f.modelFaults.Add(1)
	return true
}

// DropProofStep arms proof-stream truncation: in the first certified
// solve whose proof reaches the n-th (0-based) derived clause addition,
// that addition and every later one are silently dropped before
// reaching the proof checker — modeling a proof writer that crashed or
// lost derivation steps. One-shot across the plan, so later solves (in
// particular a quarantine re-solve) log complete proofs again. A
// negative n disarms.
func (f *Faults) DropProofStep(n int) *Faults {
	f.dropProofAt = int64(n)
	f.proofDropFired.Store(false)
	return f
}

// ProofDropHook returns a per-stream proof-truncation predicate for
// this plan, or nil when the fault is disarmed. Each certified solve
// obtains its own hook and calls it once per derived clause addition;
// the first stream to reach the armed step index claims the one-shot
// fault and truncates its proof from there.
func (f *Faults) ProofDropHook() func() bool {
	if f == nil || f.dropProofAt < 0 {
		return nil
	}
	at := f.dropProofAt
	var seen int64
	dropping := false
	return func() bool {
		if dropping {
			f.proofDrops.Add(1)
			return true
		}
		seen++
		if seen-1 == at && !f.proofDropFired.Swap(true) {
			dropping = true
			f.proofDrops.Add(1)
			return true
		}
		return false
	}
}

// StallMutations arms config-mutation latency: every delta-aware cache
// evolution (core.EncodingCache.Mutate) stalls for d before diffing
// constraint groups, modeling a mutation that lands mid-campaign while
// queries against the previous snapshot are still in flight. 0 disarms.
func (f *Faults) StallMutations(d time.Duration) *Faults {
	f.mutationDelay = d
	return f
}

// BeforeMutation blocks for the armed mutation delay (a no-op
// otherwise) and counts the stall. The delta cache calls it while
// holding the per-lineage evolution lock, so an armed stall widens the
// window in which concurrent queries race the mutation.
func (f *Faults) BeforeMutation() {
	if f == nil || f.mutationDelay <= 0 {
		return
	}
	f.mutationStalls.Add(1)
	time.Sleep(f.mutationDelay)
}

// SlowClient arms HTTP-stream latency: every streamed response item
// (a JSONL line of the enumeration endpoint) stalls for d before being
// written, modeling a client that drains the response slowly. 0 disarms.
func (f *Faults) SlowClient(d time.Duration) *Faults {
	f.streamDelay = d
	return f
}

// DropStreamAfter arms a mid-stream client disconnect: the n-th
// (0-based, counted across all streams of the plan) streamed item fails
// with ErrInjected, as if the client hung up while the response was in
// flight. A negative n disarms.
func (f *Faults) DropStreamAfter(n int) *Faults {
	f.dropAfter = int64(n)
	return f
}

// BeforeStreamItem is the HTTP streaming hook: response writers call it
// before emitting each streamed item. It blocks for the slow-client
// delay, then reports ErrInjected when the armed mid-stream disconnect
// index is reached — the caller must treat that exactly like a real
// client disconnect (abort the stream, keep server state consistent).
func (f *Faults) BeforeStreamItem() error {
	if f == nil {
		return nil
	}
	if f.streamDelay > 0 {
		time.Sleep(f.streamDelay)
	}
	if f.dropAfter < 0 {
		return nil
	}
	if f.streamIdx.Add(1)-1 >= f.dropAfter {
		f.streamFaults.Add(1)
		return ErrInjected
	}
	return nil
}

// WrapWriter interposes the plan's transient write faults in front of
// w. With no write faults armed (or a nil plan) it returns w unchanged,
// so the production path pays nothing.
func (f *Faults) WrapWriter(w io.Writer) io.Writer {
	if f == nil || len(f.failedWrite) == 0 {
		return w
	}
	return &faultyWriter{f: f, w: w}
}

type faultyWriter struct {
	f *Faults
	w io.Writer
}

func (fw *faultyWriter) Write(p []byte) (int, error) {
	idx := fw.f.writeIdx.Add(1) - 1
	if fw.f.failedWrite[idx] {
		fw.f.writeFaults.Add(1)
		return 0, ErrInjected
	}
	return fw.w.Write(p)
}

// Counts reports how many times each fault actually fired, for chaos
// tests to assert the plan was exercised.
type Counts struct {
	SolverStalls      uint64
	MutationStalls    uint64
	Panics            uint64
	WriteFaults       uint64
	StreamFaults      uint64
	RefusedConnects   uint64
	ResponseCuts      uint64
	VerdictFlips      uint64
	ModelCorruptions  uint64
	DroppedProofSteps uint64
}

// Counts returns the current injection counters.
func (f *Faults) Counts() Counts {
	if f == nil {
		return Counts{}
	}
	c := Counts{
		SolverStalls:      f.stalls.Load(),
		MutationStalls:    f.mutationStalls.Load(),
		Panics:            f.panics.Load(),
		WriteFaults:       f.writeFaults.Load(),
		StreamFaults:      f.streamFaults.Load(),
		VerdictFlips:      f.verdictFlips.Load(),
		ModelCorruptions:  f.modelFaults.Load(),
		DroppedProofSteps: f.proofDrops.Load(),
	}
	if n := f.netState; n != nil {
		c.RefusedConnects = n.refused.Load()
		c.ResponseCuts = n.cuts.Load()
	}
	return c
}
