// Package icsproto implements a DNP3-flavored measurement transport:
// framed measurement reports with the DNP3 CRC-16, plus a secure-session
// wrapper in the spirit of DNP3 Secure Authentication (HMAC-SHA-256
// integrity tags, monotonic sequence numbers for replay protection, and
// optional AES-256-GCM payload encryption). It grounds the verifier's
// abstract Authenticated/IntegrityProtected hop judgements in concrete
// wire mechanics: a hop whose session verifies tags is exactly a hop the
// formal model marks integrity-protected.
package icsproto

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Frame-format errors.
var (
	ErrTruncated = errors.New("icsproto: frame truncated")
	ErrCRC       = errors.New("icsproto: CRC mismatch")
	ErrVersion   = errors.New("icsproto: unsupported frame version")
	ErrTooLarge  = errors.New("icsproto: payload too large")
)

// Measurement is one reported data point.
type Measurement struct {
	ID      uint16  // measurement identifier (the verifier's z index)
	Value   float64 // engineering value
	Quality uint8   // 0 = good
}

// Frame is a measurement report from a field device toward the MTU.
type Frame struct {
	Src, Dst uint16 // device IDs
	Seq      uint32 // application sequence number
	Payload  []Measurement
}

const (
	frameVersion   = 1
	headerLen      = 1 + 2 + 2 + 4 + 2 // version src dst seq count
	measurementLen = 2 + 8 + 1
	crcLen         = 2
	// MaxMeasurements bounds one frame's payload.
	MaxMeasurements = 1024
)

// Marshal serializes the frame with a trailing DNP3 CRC-16.
func (f *Frame) Marshal() ([]byte, error) {
	if len(f.Payload) > MaxMeasurements {
		return nil, fmt.Errorf("%w: %d measurements", ErrTooLarge, len(f.Payload))
	}
	out := make([]byte, 0, headerLen+len(f.Payload)*measurementLen+crcLen)
	out = append(out, frameVersion)
	out = binary.BigEndian.AppendUint16(out, f.Src)
	out = binary.BigEndian.AppendUint16(out, f.Dst)
	out = binary.BigEndian.AppendUint32(out, f.Seq)
	out = binary.BigEndian.AppendUint16(out, uint16(len(f.Payload)))
	for _, m := range f.Payload {
		out = binary.BigEndian.AppendUint16(out, m.ID)
		out = binary.BigEndian.AppendUint64(out, math.Float64bits(m.Value))
		out = append(out, m.Quality)
	}
	out = binary.BigEndian.AppendUint16(out, CRC16DNP(out))
	return out, nil
}

// Unmarshal parses a frame, verifying the CRC.
func Unmarshal(data []byte) (*Frame, error) {
	if len(data) < headerLen+crcLen {
		return nil, ErrTruncated
	}
	body, tail := data[:len(data)-crcLen], data[len(data)-crcLen:]
	if CRC16DNP(body) != binary.BigEndian.Uint16(tail) {
		return nil, ErrCRC
	}
	if body[0] != frameVersion {
		return nil, fmt.Errorf("%w: %d", ErrVersion, body[0])
	}
	f := &Frame{
		Src: binary.BigEndian.Uint16(body[1:3]),
		Dst: binary.BigEndian.Uint16(body[3:5]),
		Seq: binary.BigEndian.Uint32(body[5:9]),
	}
	count := int(binary.BigEndian.Uint16(body[9:11]))
	if count > MaxMeasurements {
		return nil, fmt.Errorf("%w: %d measurements", ErrTooLarge, count)
	}
	want := headerLen + count*measurementLen
	if len(body) != want {
		return nil, ErrTruncated
	}
	f.Payload = make([]Measurement, count)
	off := headerLen
	for i := range f.Payload {
		f.Payload[i] = Measurement{
			ID:      binary.BigEndian.Uint16(body[off : off+2]),
			Value:   math.Float64frombits(binary.BigEndian.Uint64(body[off+2 : off+10])),
			Quality: body[off+10],
		}
		off += measurementLen
	}
	return f, nil
}

// CRC16DNP computes the DNP3 CRC-16 (polynomial x¹⁶+x¹³+x¹²+x¹¹+x¹⁰+
// x⁸+x⁶+x⁵+x²+1, reflected form 0xA6BC, final complement).
func CRC16DNP(data []byte) uint16 {
	var crc uint16
	for _, b := range data {
		crc ^= uint16(b)
		for bit := 0; bit < 8; bit++ {
			if crc&1 != 0 {
				crc = (crc >> 1) ^ 0xA6BC
			} else {
				crc >>= 1
			}
		}
	}
	return ^crc
}
