package secpolicy

import (
	"fmt"
	"sort"
	"strings"
)

// Algorithm names a cryptographic algorithm as it appears in SCADA
// device security profiles.
type Algorithm string

// Algorithms understood by the default policy. Arbitrary further
// algorithm names may appear in configurations; they simply match no
// rule (and hence grant no capability) unless the policy is extended.
const (
	HMAC  Algorithm = "hmac"
	CHAP  Algorithm = "chap"
	SHA2  Algorithm = "sha2"
	SHA1  Algorithm = "sha1"
	RSA   Algorithm = "rsa"
	AES   Algorithm = "aes"
	DES   Algorithm = "des"
	TDES  Algorithm = "3des"
	MD5   Algorithm = "md5"
	Plain Algorithm = "plain"
)

// Capability is a bitmask of security properties a profile provides.
type Capability uint8

// The three capabilities the verifier distinguishes.
const (
	Authenticates Capability = 1 << iota
	IntegrityProtects
	Encrypts
)

// Has reports whether c includes all capabilities in want.
func (c Capability) Has(want Capability) bool { return c&want == want }

// String implements fmt.Stringer.
func (c Capability) String() string {
	if c == 0 {
		return "none"
	}
	var parts []string
	if c.Has(Authenticates) {
		parts = append(parts, "auth")
	}
	if c.Has(IntegrityProtects) {
		parts = append(parts, "integrity")
	}
	if c.Has(Encrypts) {
		parts = append(parts, "encrypt")
	}
	return strings.Join(parts, "+")
}

// Profile is one cryptographic configuration entry of a device or link:
// an algorithm with a key length in bits (CryptType/CAlgo/CKey in the
// paper's notation).
type Profile struct {
	Algo    Algorithm
	KeyBits int
}

// String implements fmt.Stringer.
func (p Profile) String() string { return fmt.Sprintf("%s-%d", p.Algo, p.KeyBits) }

// Rule grants capabilities to profiles of one algorithm at or above a
// minimum key length.
type Rule struct {
	Algo       Algorithm
	MinKeyBits int
	Grants     Capability
}

// Policy is an ordered set of rules plus a broken-algorithm list.
// Construct with Default or NewPolicy; the zero value grants nothing.
type Policy struct {
	rules  []Rule
	broken map[Algorithm]bool
}

// NewPolicy builds a policy from rules and a list of broken algorithms
// whose profiles never grant capabilities regardless of key length.
func NewPolicy(rules []Rule, broken []Algorithm) *Policy {
	p := &Policy{
		rules:  append([]Rule(nil), rules...),
		broken: make(map[Algorithm]bool, len(broken)),
	}
	for _, a := range broken {
		p.broken[a] = true
	}
	return p
}

// Default returns the policy matching the paper's Section III-D
// examples: HMAC (≥128) and CHAP (≥64) authenticate; SHA-2 (≥128)
// integrity-protects; RSA (≥2048) both authenticates and
// integrity-protects (signatures); AES (≥128) encrypts; DES, 3DES, MD5,
// SHA-1 and plaintext are considered broken.
func Default() *Policy {
	return NewPolicy([]Rule{
		{Algo: HMAC, MinKeyBits: 128, Grants: Authenticates},
		{Algo: CHAP, MinKeyBits: 64, Grants: Authenticates},
		{Algo: SHA2, MinKeyBits: 128, Grants: IntegrityProtects},
		{Algo: RSA, MinKeyBits: 2048, Grants: Authenticates | IntegrityProtects},
		{Algo: AES, MinKeyBits: 128, Grants: Encrypts},
	}, []Algorithm{DES, TDES, MD5, SHA1, Plain})
}

// Broken reports whether the policy considers the algorithm broken.
func (p *Policy) Broken(a Algorithm) bool { return p.broken[a] }

// Judge returns the union of capabilities granted by the given profiles.
func (p *Policy) Judge(profiles []Profile) Capability {
	var caps Capability
	for _, pr := range profiles {
		caps |= p.judgeOne(pr)
	}
	return caps
}

func (p *Policy) judgeOne(pr Profile) Capability {
	if p.broken[pr.Algo] {
		return 0
	}
	var caps Capability
	for _, r := range p.rules {
		if r.Algo == pr.Algo && pr.KeyBits >= r.MinKeyBits {
			caps |= r.Grants
		}
	}
	return caps
}

// PairCaps returns the capabilities of the shared profiles of two
// devices: for every algorithm supported by both, the effective key
// length is the weaker of the two, and that effective profile is judged.
// This implements the paper's ∃K (CryptType_i = K ∧ CryptType_j = K ∧
// policy(K)) scheme.
func (p *Policy) PairCaps(a, b []Profile) Capability {
	best := map[Algorithm]int{}
	for _, pa := range a {
		for _, pb := range b {
			if pa.Algo != pb.Algo {
				continue
			}
			eff := pa.KeyBits
			if pb.KeyBits < eff {
				eff = pb.KeyBits
			}
			if eff > best[pa.Algo] {
				best[pa.Algo] = eff
			}
		}
	}
	var caps Capability
	for algo, key := range best {
		caps |= p.judgeOne(Profile{Algo: algo, KeyBits: key})
	}
	return caps
}

// CanPair reports whether two profile sets share at least one algorithm
// (the paper's CryptoPropPairing: handshaking is possible). Two empty
// sets pair trivially — neither side requires cryptography.
func CanPair(a, b []Profile) bool {
	if len(a) == 0 && len(b) == 0 {
		return true
	}
	for _, pa := range a {
		for _, pb := range b {
			if pa.Algo == pb.Algo {
				return true
			}
		}
	}
	return false
}

// ParseProfiles parses whitespace-separated "algo keybits" pairs, the
// format of the paper's Table II security-profile entries (e.g.
// "chap 64 sha2 128").
func ParseProfiles(fields []string) ([]Profile, error) {
	if len(fields)%2 != 0 {
		return nil, fmt.Errorf("secpolicy: odd profile token count %d (want algo/keybits pairs)", len(fields))
	}
	out := make([]Profile, 0, len(fields)/2)
	for i := 0; i < len(fields); i += 2 {
		var bits int
		if _, err := fmt.Sscanf(fields[i+1], "%d", &bits); err != nil || bits < 0 {
			return nil, fmt.Errorf("secpolicy: bad key length %q for algorithm %q", fields[i+1], fields[i])
		}
		out = append(out, Profile{Algo: Algorithm(strings.ToLower(fields[i])), KeyBits: bits})
	}
	return out, nil
}

// FormatProfiles renders profiles in the Table II text form, sorted for
// determinism.
func FormatProfiles(ps []Profile) string {
	sorted := append([]Profile(nil), ps...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Algo != sorted[j].Algo {
			return sorted[i].Algo < sorted[j].Algo
		}
		return sorted[i].KeyBits < sorted[j].KeyBits
	})
	parts := make([]string, 0, len(sorted))
	for _, p := range sorted {
		parts = append(parts, fmt.Sprintf("%s %d", p.Algo, p.KeyBits))
	}
	return strings.Join(parts, " ")
}
