// Package stateest implements DC weighted-least-squares power-system
// state estimation with chi-square and largest-normalized-residual bad
// data detection — the SCADA control routine whose data requirements
// (observability, redundancy for bad-data detectability) the verifier in
// package core reasons about. It demonstrates concretely why the
// verified properties matter: an unobservable measurement subset makes
// estimation impossible, and a state covered by r or fewer measurements
// lets r coordinated corruptions go undetected.
package stateest

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"scadaver/internal/matrix"
	"scadaver/internal/powergrid"
)

// Estimator solves the DC state-estimation problem for a measurement
// set. One bus is the angle reference (fixed to zero); the estimator
// works in the reduced state space without that column.
type Estimator struct {
	ms     *powergrid.MeasurementSet
	refBus int // 1-based reference bus
	cols   []int
}

// Estimation errors.
var (
	ErrUnobservable = errors.New("stateest: selected measurements do not observe the system")
	ErrBadInput     = errors.New("stateest: invalid input")
)

// New builds an estimator with the given reference bus (1-based).
func New(ms *powergrid.MeasurementSet, refBus int) (*Estimator, error) {
	if refBus < 1 || refBus > ms.NStates {
		return nil, fmt.Errorf("%w: reference bus %d of %d states", ErrBadInput, refBus, ms.NStates)
	}
	cols := make([]int, 0, ms.NStates-1)
	for x := 0; x < ms.NStates; x++ {
		if x != refBus-1 {
			cols = append(cols, x)
		}
	}
	return &Estimator{ms: ms, refBus: refBus, cols: cols}, nil
}

// reducedH stacks the selected measurement rows with the reference
// column removed. selected holds 0-based measurement indices.
func (e *Estimator) reducedH(selected []int) *matrix.Matrix {
	h := matrix.New(len(selected), len(e.cols))
	for i, z := range selected {
		row := e.ms.Msrs[z].Row
		for j, c := range e.cols {
			h.Set(i, j, row[c])
		}
	}
	return h
}

// Observable reports whether the selected measurements (0-based indices)
// numerically observe the system: the reduced Jacobian has full column
// rank n-1.
func (e *Estimator) Observable(selected []int) bool {
	if len(selected) < len(e.cols) {
		return false
	}
	return e.reducedH(selected).Rank() == len(e.cols)
}

// Result is the outcome of one estimation.
type Result struct {
	// Angles are the estimated bus angles (radians), full-length with
	// the reference bus fixed at 0.
	Angles []float64
	// Residuals are z - H·x̂ for the selected measurements, in their
	// given order.
	Residuals []float64
	// ChiSquare is the weighted residual sum Σ (r_i/σ_i)².
	ChiSquare float64
	// NormalizedResiduals are r_i / sqrt(Ω_ii), the statistic the
	// largest-normalized-residual test thresholds.
	NormalizedResiduals []float64
}

// Estimate solves the WLS problem for the selected measurements
// (0-based indices) with per-measurement standard deviations sigma
// (nil = unit). It returns ErrUnobservable when the selection cannot
// determine the state.
func (e *Estimator) Estimate(z []float64, sigma []float64, selected []int) (*Result, error) {
	m := len(selected)
	if len(z) != m {
		return nil, fmt.Errorf("%w: %d observations for %d selected measurements", ErrBadInput, len(z), m)
	}
	if sigma != nil && len(sigma) != m {
		return nil, fmt.Errorf("%w: %d sigmas for %d measurements", ErrBadInput, len(sigma), m)
	}
	if !e.Observable(selected) {
		return nil, ErrUnobservable
	}
	h := e.reducedH(selected)
	weights := make([]float64, m)
	for i := range weights {
		s := 1.0
		if sigma != nil {
			s = sigma[i]
		}
		if s <= 0 {
			return nil, fmt.Errorf("%w: non-positive sigma %v", ErrBadInput, s)
		}
		weights[i] = 1 / (s * s)
	}
	xRed, err := h.SolveLSQ(z, weights)
	if err != nil {
		return nil, fmt.Errorf("stateest: %w", err)
	}

	angles := make([]float64, e.ms.NStates)
	for j, c := range e.cols {
		angles[c] = xRed[j]
	}

	fitted, err := h.MulVec(xRed)
	if err != nil {
		return nil, err
	}
	res := &Result{Angles: angles, Residuals: make([]float64, m)}
	for i := range fitted {
		res.Residuals[i] = z[i] - fitted[i]
		s := 1.0
		if sigma != nil {
			s = sigma[i]
		}
		res.ChiSquare += (res.Residuals[i] / s) * (res.Residuals[i] / s)
	}

	res.NormalizedResiduals, err = e.normalizedResiduals(h, weights, sigma, res.Residuals)
	if err != nil {
		return nil, err
	}
	return res, nil
}

// normalizedResiduals computes r_i / sqrt(Ω_ii) with
// Ω = R − H·G⁻¹·Hᵀ (R = diag(σ²), G = HᵀWH), the residual covariance
// used by the largest-normalized-residual test.
func (e *Estimator) normalizedResiduals(h *matrix.Matrix, weights, sigma, residuals []float64) ([]float64, error) {
	m := h.Rows()
	n := h.Cols()
	g := matrix.New(n, n)
	for r := 0; r < m; r++ {
		for i := 0; i < n; i++ {
			hi := h.At(r, i)
			if hi == 0 {
				continue
			}
			for j := 0; j < n; j++ {
				g.Set(i, j, g.At(i, j)+weights[r]*hi*h.At(r, j))
			}
		}
	}
	gInv, err := g.Inverse()
	if err != nil {
		return nil, fmt.Errorf("stateest: gain matrix: %w", err)
	}
	out := make([]float64, m)
	for r := 0; r < m; r++ {
		// (H G⁻¹ Hᵀ)_rr
		hgh := 0.0
		for i := 0; i < n; i++ {
			hi := h.At(r, i)
			if hi == 0 {
				continue
			}
			for j := 0; j < n; j++ {
				hgh += hi * gInv.At(i, j) * h.At(r, j)
			}
		}
		s := 1.0
		if sigma != nil {
			s = sigma[r]
		}
		omega := s*s - hgh
		if omega < 1e-12 {
			// Critical measurement: its residual is structurally zero
			// and bad data on it is undetectable — exactly the situation
			// r-bad-data detectability excludes.
			out[r] = 0
			continue
		}
		out[r] = residuals[r] / math.Sqrt(omega)
	}
	return out, nil
}

// DetectBadData runs the classical detection loop: estimate, chi-square
// test against the threshold, remove the measurement with the largest
// normalized residual, repeat. It returns the indices (into the original
// selected slice) of measurements flagged bad. Detection stops when the
// chi-square statistic passes, when removal would lose observability, or
// when maxRemovals have been flagged.
func (e *Estimator) DetectBadData(z, sigma []float64, selected []int, chiThreshold float64, maxRemovals int) ([]int, error) {
	active := make([]int, len(selected))
	for i := range active {
		active[i] = i
	}
	var flagged []int
	for len(flagged) < maxRemovals || maxRemovals <= 0 {
		sel := make([]int, len(active))
		zz := make([]float64, len(active))
		var ss []float64
		if sigma != nil {
			ss = make([]float64, len(active))
		}
		for i, idx := range active {
			sel[i] = selected[idx]
			zz[i] = z[idx]
			if sigma != nil {
				ss[i] = sigma[idx]
			}
		}
		res, err := e.Estimate(zz, ss, sel)
		if err != nil {
			if errors.Is(err, ErrUnobservable) {
				// Cannot keep removing without losing the estimate.
				return flagged, nil
			}
			return nil, err
		}
		if res.ChiSquare <= chiThreshold {
			return flagged, nil
		}
		// Flag the largest normalized residual.
		worst, worstVal := -1, 0.0
		for i, nr := range res.NormalizedResiduals {
			if v := math.Abs(nr); v > worstVal {
				worst, worstVal = i, v
			}
		}
		if worst < 0 {
			// All residuals structurally zero: bad data is undetectable.
			return flagged, nil
		}
		flagged = append(flagged, active[worst])
		active = append(active[:worst], active[worst+1:]...)
		if len(active) == 0 {
			return flagged, nil
		}
	}
	return flagged, nil
}

// Measure synthesizes measurement values for the given true angles with
// Gaussian noise of standard deviation noiseStd (selected are 0-based
// measurement indices; rng may be nil for noiseless output).
func (e *Estimator) Measure(trueAngles []float64, selected []int, noiseStd float64, rng *rand.Rand) ([]float64, error) {
	if len(trueAngles) != e.ms.NStates {
		return nil, fmt.Errorf("%w: %d angles for %d states", ErrBadInput, len(trueAngles), e.ms.NStates)
	}
	out := make([]float64, len(selected))
	for i, zIdx := range selected {
		row := e.ms.Msrs[zIdx].Row
		v := 0.0
		for x, hx := range row {
			v += hx * (trueAngles[x] - trueAngles[e.refBus-1])
		}
		if rng != nil && noiseStd > 0 {
			v += rng.NormFloat64() * noiseStd
		}
		out[i] = v
	}
	return out, nil
}
