package powergrid

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"sync"

	"scadaver/internal/matrix"
)

// MsrKind classifies a measurement.
type MsrKind int

// Measurement kinds: line power flow measured at either end, and bus
// power injection (consumption).
const (
	FlowForward MsrKind = iota + 1
	FlowBackward
	Injection
	Custom // parsed from an explicit Jacobian row
)

// String implements fmt.Stringer.
func (k MsrKind) String() string {
	switch k {
	case FlowForward:
		return "flow-fwd"
	case FlowBackward:
		return "flow-bwd"
	case Injection:
		return "injection"
	case Custom:
		return "custom"
	}
	return "unknown"
}

// Measurement is one row of the measurement model: its Jacobian row over
// the state variables (bus angles) plus provenance.
type Measurement struct {
	ID   int // 1-based within its MeasurementSet
	Kind MsrKind
	From int // measured bus (flows: sending end; injection: the bus)
	To   int // flows: receiving end; 0 otherwise
	Row  []float64
}

// String renders a short description.
func (m Measurement) String() string {
	switch m.Kind {
	case FlowForward, FlowBackward:
		return fmt.Sprintf("z%d(%s %d-%d)", m.ID, m.Kind, m.From, m.To)
	case Injection:
		return fmt.Sprintf("z%d(injection %d)", m.ID, m.From)
	}
	return fmt.Sprintf("z%d(custom)", m.ID)
}

// MeasurementSet is an ordered collection of measurements over a common
// state space of NStates bus-angle variables.
type MeasurementSet struct {
	System  *BusSystem // nil for sets parsed from explicit Jacobians
	NStates int
	Msrs    []Measurement

	// UniqueGroups memo. Every analyzer built over this set recomputes
	// the partition otherwise, and the delta path builds one analyzer per
	// mutation over a shared, immutable measurement set — the row
	// canonicalization is the single most expensive part of analyzer
	// construction there. Msrs must not change after the first call.
	uniqueOnce   sync.Once
	uniqueGroups [][]int
}

// FullMeasurementSet builds the maximum measurement set of a bus system:
// a forward and a backward power-flow measurement per line and an
// injection measurement per bus (2L + N rows), in that order.
func FullMeasurementSet(sys *BusSystem) *MeasurementSet {
	n := sys.NBuses
	ms := &MeasurementSet{System: sys, NStates: n}
	id := 1
	for _, br := range sys.Branches {
		fwd := make([]float64, n)
		fwd[br.From-1] = br.Susceptance
		fwd[br.To-1] = -br.Susceptance
		ms.Msrs = append(ms.Msrs, Measurement{ID: id, Kind: FlowForward, From: br.From, To: br.To, Row: fwd})
		id++
		bwd := make([]float64, n)
		bwd[br.To-1] = br.Susceptance
		bwd[br.From-1] = -br.Susceptance
		ms.Msrs = append(ms.Msrs, Measurement{ID: id, Kind: FlowBackward, From: br.To, To: br.From, Row: bwd})
		id++
	}
	for bus := 1; bus <= n; bus++ {
		row := make([]float64, n)
		for _, br := range sys.Branches {
			switch bus {
			case br.From:
				row[br.From-1] += br.Susceptance
				row[br.To-1] -= br.Susceptance
			case br.To:
				row[br.To-1] += br.Susceptance
				row[br.From-1] -= br.Susceptance
			}
		}
		ms.Msrs = append(ms.Msrs, Measurement{ID: id, Kind: Injection, From: bus, Row: row})
		id++
	}
	return ms
}

// FromJacobian builds a measurement set from explicit Jacobian rows (the
// paper's Table II input form). Rows must share a length.
func FromJacobian(rows [][]float64) (*MeasurementSet, error) {
	if len(rows) == 0 {
		return nil, fmt.Errorf("powergrid: empty Jacobian")
	}
	n := len(rows[0])
	ms := &MeasurementSet{NStates: n}
	for i, r := range rows {
		if len(r) != n {
			return nil, fmt.Errorf("powergrid: Jacobian row %d has %d entries, want %d", i+1, len(r), n)
		}
		row := append([]float64(nil), r...)
		ms.Msrs = append(ms.Msrs, Measurement{ID: i + 1, Kind: Custom, Row: row})
	}
	return ms, nil
}

// Len returns the number of measurements.
func (ms *MeasurementSet) Len() int { return len(ms.Msrs) }

// Jacobian returns the stacked measurement Jacobian.
func (ms *MeasurementSet) Jacobian() *matrix.Matrix {
	rows := make([][]float64, len(ms.Msrs))
	for i, m := range ms.Msrs {
		rows[i] = m.Row
	}
	j, err := matrix.FromRows(rows)
	if err != nil {
		// Rows are constructed with uniform width above.
		panic(fmt.Sprintf("powergrid: internal Jacobian construction: %v", err))
	}
	return j
}

// sparseEps decides which Jacobian entries count as structural
// non-zeros (h_{Z,X} ≠ 0 in the paper).
const sparseEps = 1e-9

// StateSet returns StateSet_Z for measurement index z (0-based): the
// 0-based state indices with non-zero Jacobian entries.
func (ms *MeasurementSet) StateSet(z int) []int {
	var out []int
	for x, v := range ms.Msrs[z].Row {
		if math.Abs(v) > sparseEps {
			out = append(out, x)
		}
	}
	return out
}

// StateSets returns StateSet_Z for every measurement.
func (ms *MeasurementSet) StateSets() [][]int {
	out := make([][]int, len(ms.Msrs))
	for z := range ms.Msrs {
		out[z] = ms.StateSet(z)
	}
	return out
}

// UniqueGroups partitions measurement indices (0-based) into the paper's
// UMsrSet_E groups: two measurements represent the same electrical
// component when their Jacobian rows are equal or exactly opposite
// (forward vs backward flow on one line). Groups are returned in order
// of first appearance. The partition is computed once and memoized
// (measurement sets are immutable after construction); callers must
// treat the returned slices as read-only.
func (ms *MeasurementSet) UniqueGroups() [][]int {
	ms.uniqueOnce.Do(func() { ms.uniqueGroups = ms.uniqueGroupsSlow() })
	return ms.uniqueGroups
}

func (ms *MeasurementSet) uniqueGroupsSlow() [][]int {
	keyOf := func(row []float64) string {
		// Canonicalize sign by the first structural non-zero.
		sign := 1.0
		for _, v := range row {
			if math.Abs(v) > sparseEps {
				if v < 0 {
					sign = -1
				}
				break
			}
		}
		var sb strings.Builder
		for _, v := range row {
			q := math.Round(sign*v/sparseEps) * sparseEps
			if math.Abs(q) <= sparseEps {
				q = 0
			}
			fmt.Fprintf(&sb, "%.6f,", q)
		}
		return sb.String()
	}
	order := []string{}
	groups := map[string][]int{}
	for z, m := range ms.Msrs {
		k := keyOf(m.Row)
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		groups[k] = append(groups[k], z)
	}
	out := make([][]int, 0, len(order))
	for _, k := range order {
		out = append(out, groups[k])
	}
	return out
}

// Sample returns a new measurement set keeping roughly percent·Len()/100
// measurements, chosen uniformly at random but always at least one.
// Measurement IDs are renumbered 1..k; provenance fields are preserved.
func (ms *MeasurementSet) Sample(percent float64, rng *rand.Rand) *MeasurementSet {
	if percent >= 100 {
		return ms.clone()
	}
	k := int(math.Ceil(percent / 100 * float64(len(ms.Msrs))))
	if k < 1 {
		k = 1
	}
	idx := rng.Perm(len(ms.Msrs))[:k]
	sort.Ints(idx)
	out := &MeasurementSet{System: ms.System, NStates: ms.NStates}
	for i, z := range idx {
		m := ms.Msrs[z]
		m.ID = i + 1
		m.Row = append([]float64(nil), ms.Msrs[z].Row...)
		out.Msrs = append(out.Msrs, m)
	}
	return out
}

func (ms *MeasurementSet) clone() *MeasurementSet {
	out := &MeasurementSet{System: ms.System, NStates: ms.NStates, Msrs: make([]Measurement, len(ms.Msrs))}
	for i, m := range ms.Msrs {
		m.Row = append([]float64(nil), m.Row...)
		out.Msrs[i] = m
	}
	return out
}

// CoversAllStates reports whether the union of StateSets of the given
// measurement indices (0-based) covers every state.
func (ms *MeasurementSet) CoversAllStates(zs []int) bool {
	covered := make([]bool, ms.NStates)
	count := 0
	for _, z := range zs {
		for _, x := range ms.StateSet(z) {
			if !covered[x] {
				covered[x] = true
				count++
			}
		}
	}
	return count == ms.NStates
}
