package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"scadaver/internal/core"
	"scadaver/internal/obs"
	"scadaver/internal/powergrid"
	"scadaver/internal/scadanet"
	"scadaver/internal/synth"
)

// MutationStormResult is the outcome of one mutation-storm campaign
// (scada-bench -fig mutate): a sequence of random single-link deltas
// applied to one bus system, re-verified both incrementally (the
// delta-aware encoding cache evolves warm snapshots, carries learnts)
// and cold (full re-encode per step). Both legs must agree on every
// verdict; the ratio of their wall times is the delta optimization's
// headline number.
type MutationStormResult struct {
	System string
	Steps  int
	Query  core.Query

	Incremental time.Duration // total incremental re-verify wall (cache evolve + solve)
	Cold        time.Duration // total cold re-verify wall (re-encode + solve)
	Stats       core.MutationStats

	// Per-leg metrics registries, for BenchRecord's per-figure rows.
	IncReg, ColdReg *obs.Registry
}

// Speedup is cold wall over incremental wall.
func (r *MutationStormResult) Speedup() float64 {
	if r.Incremental <= 0 {
		return 0
	}
	return float64(r.Cold) / float64(r.Incremental)
}

// MutationStorm runs the mutation-storm campaign: steps random
// single-link removals (seeded, so the sequence is reproducible) on the
// named bus system, each re-verified incrementally and cold. The
// incremental leg warms one delta-aware cache on the initial structure,
// then per step pays only Config.Apply + EncodingCache.Mutate (the
// dirty cone re-encodes, everything else survives) + the solve; the
// cold leg re-encodes the mutated structure from scratch per step,
// which is what every verification did before the delta cache existed.
func MutationStorm(busName string, steps int, opt Options) (*MutationStormResult, error) {
	if steps <= 0 {
		steps = 10
	}
	sys, err := powergrid.ByName(busName)
	if err != nil {
		return nil, err
	}
	cfg, err := synth.Generate(synth.Params{
		Bus:            sys,
		Seed:           int64(1000*sys.NBuses + 7),
		Hierarchy:      2,
		SecureFraction: 0.9,
	})
	if err != nil {
		return nil, err
	}
	// The probe sits at the k-resiliency boundary (IEEE-57 at hierarchy 2
	// stops being observability-resilient around k=3), where the verdict
	// is informative and the solver genuinely searches — at trivial k the
	// instance decides at propagation depth and both legs just measure
	// encoding overhead.
	q := core.Query{Property: core.Observability, Combined: true, K: 3}

	res := &MutationStormResult{
		System: busName, Steps: steps, Query: q,
		IncReg: obs.NewRegistry(), ColdReg: obs.NewRegistry(),
	}
	cache := core.NewEncodingCache(core.CacheWithDelta(), core.CacheWithMetrics(res.IncReg))

	incOpt := opt
	incOpt.Cache = cache
	incOpt.NoCache = false
	incOpt.Metrics = res.IncReg
	incOpts := incOpt.CoreOptions()

	coldOpt := opt
	coldOpt.Cache = nil
	coldOpt.NoCache = true
	coldOpt.Metrics = res.ColdReg
	coldOpts := coldOpt.CoreOptions()

	// Warm the incremental leg's cache on the pre-storm structure (not
	// timed: a live service has already verified the configuration it is
	// serving when the first mutation arrives).
	warmA, err := core.NewAnalyzer(cfg, incOpts...)
	if err != nil {
		return nil, err
	}
	if _, err := warmA.Verify(q); err != nil {
		return nil, err
	}

	rng := rand.New(rand.NewSource(int64(4000*sys.NBuses + 11)))
	cur := cfg
	for step := 0; step < steps; step++ {
		links := cur.Net.Links()
		if len(links) == 0 {
			return nil, fmt.Errorf("mutation storm: %s ran out of links at step %d", busName, step)
		}
		victim := links[rng.Intn(len(links))].ID
		delta := scadanet.Delta{Ops: []scadanet.Op{{Kind: scadanet.OpLinkRemove, Link: victim}}}
		next, _, err := cur.Apply(delta)
		if err != nil {
			return nil, fmt.Errorf("mutation storm step %d (%s): %w", step, delta, err)
		}

		t0 := time.Now()
		ms, err := cache.Mutate(cur, next, incOpts...)
		if err != nil {
			return nil, err
		}
		incA, err := core.NewAnalyzer(next, incOpts...)
		if err != nil {
			return nil, err
		}
		incRes, err := incA.Verify(q)
		if err != nil {
			return nil, err
		}
		res.Incremental += time.Since(t0)
		res.Stats.DeltaReuse += ms.DeltaReuse
		res.Stats.DeltaReencoded += ms.DeltaReencoded
		res.Stats.CarriedLearnts += ms.CarriedLearnts
		res.Stats.Entries += ms.Entries

		t1 := time.Now()
		coldA, err := core.NewAnalyzer(next, coldOpts...)
		if err != nil {
			return nil, err
		}
		coldRes, err := coldA.Verify(q)
		if err != nil {
			return nil, err
		}
		res.Cold += time.Since(t1)

		if incRes.Status != coldRes.Status || incRes.Resilient() != coldRes.Resilient() {
			return nil, fmt.Errorf("mutation storm step %d (%s): incremental verdict (%v, resilient=%v) diverges from cold (%v, resilient=%v)",
				step, delta, incRes.Status, incRes.Resilient(), coldRes.Status, coldRes.Resilient())
		}
		cur = next
	}
	return res, nil
}

// PrintMutationStorm renders one mutation-storm campaign.
func PrintMutationStorm(w io.Writer, r *MutationStormResult) {
	fmt.Fprintf(w, "# mutation storm: %s, %d single-link deltas, query %v\n", r.System, r.Steps, r.Query)
	fmt.Fprintf(w, "%-14s %12s %12s\n", "leg", "wall(ms)", "per-step(ms)")
	fmt.Fprintf(w, "%-14s %12.2f %12.2f\n", "incremental", ms(r.Incremental), ms(r.Incremental)/float64(r.Steps))
	fmt.Fprintf(w, "%-14s %12.2f %12.2f\n", "cold", ms(r.Cold), ms(r.Cold)/float64(r.Steps))
	fmt.Fprintf(w, "speedup: %.1fx  (groups: %d reused, %d re-encoded; %d learnts carried)\n",
		r.Speedup(), r.Stats.DeltaReuse, r.Stats.DeltaReencoded, r.Stats.CarriedLearnts)
}
