package core

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"scadaver/internal/powergrid"
	"scadaver/internal/scadanet"
)

// TestCampaignFingerprintReorderedQueries pins that the fingerprint is
// order-sensitive: checkpoint entries are keyed by input index, so the
// same queries in a different order are a different campaign, and a
// checkpoint of one must not resume the other.
func TestCampaignFingerprintReorderedQueries(t *testing.T) {
	cfg := synthConfig(t, powergrid.IEEE14(), 41, 2)
	queries := campaignQueries(2)
	reordered := make([]Query, len(queries))
	copy(reordered, queries)
	reordered[0], reordered[len(reordered)-1] = reordered[len(reordered)-1], reordered[0]

	fp, err := CampaignFingerprint(cfg, CheckpointKindCampaign, queries)
	if err != nil {
		t.Fatal(err)
	}
	fpReordered, err := CampaignFingerprint(cfg, CheckpointKindCampaign, reordered)
	if err != nil {
		t.Fatal(err)
	}
	if fp == fpReordered {
		t.Fatal("reordered query list shares a fingerprint with the original")
	}

	// And the mismatch is enforced at resume time.
	path := filepath.Join(t.TempDir(), "ck.jsonl")
	ck, err := OpenCheckpoint(path, CheckpointKindCampaign, fp)
	if err != nil {
		t.Fatal(err)
	}
	if err := ck.Add(campaignEntry{Index: 0, Result: &Result{}}); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenCheckpoint(path, CheckpointKindCampaign, fpReordered); !errors.Is(err, ErrCheckpointMismatch) {
		t.Fatalf("resume with reordered-campaign fingerprint: err = %v, want ErrCheckpointMismatch", err)
	}
}

// seedCheckpoint writes a checkpoint with three vector entries and
// returns its path.
func seedCheckpoint(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "ck.jsonl")
	ck, err := OpenCheckpoint(path, CheckpointKindEnumerate, "fp-torn")
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		v := ThreatVector{IEDs: []scadanet.DeviceID{scadanet.DeviceID(i)}}
		if err := ck.Add(v); err != nil {
			t.Fatal(err)
		}
	}
	return path
}

// TestCheckpointTornFinalLineResumes pins the graceful-recovery
// contract: a writer killed mid-line leaves a partial final JSONL line,
// and the checkpoint must resume from the last complete entry instead
// of refusing the whole file.
func TestCheckpointTornFinalLineResumes(t *testing.T) {
	path := seedCheckpoint(t)

	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"ieds":[4,`); err != nil { // no newline: torn mid-write
		t.Fatal(err)
	}
	f.Close()

	ck, err := OpenCheckpoint(path, CheckpointKindEnumerate, "fp-torn")
	if err != nil {
		t.Fatalf("open with torn final line: %v", err)
	}
	if got := len(ck.Entries()); got != 3 {
		t.Fatalf("recovered %d entries, want the 3 complete ones", got)
	}

	// The next Add rewrites the file whole; reopening sees 4 clean
	// entries and no trace of the torn tail.
	if err := ck.Add(ThreatVector{IEDs: []scadanet.DeviceID{4}}); err != nil {
		t.Fatal(err)
	}
	ck2, err := OpenCheckpoint(path, CheckpointKindEnumerate, "fp-torn")
	if err != nil {
		t.Fatal(err)
	}
	if got := len(ck2.Entries()); got != 4 {
		t.Fatalf("after repair flush: %d entries, want 4", got)
	}
}

// TestCheckpointMalformedMiddleEntryRejected draws the line of the
// torn-tail grace: garbage followed by more entries means the writer
// kept going past the damage — that is corruption, and resuming would
// silently skip work, so the open must fail.
func TestCheckpointMalformedMiddleEntryRejected(t *testing.T) {
	path := seedCheckpoint(t)

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the middle: header, entry, garbage line, entry, entry.
	corrupted := append([]byte{}, raw...)
	lines := 0
	for i, b := range corrupted {
		if b != '\n' {
			continue
		}
		lines++
		if lines == 2 { // end of the first entry line
			corrupted = append(corrupted[:i+1],
				append([]byte("{\"ieds\":[9,\n"), corrupted[i+1:]...)...)
			break
		}
	}
	if err := os.WriteFile(path, corrupted, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, err := OpenCheckpoint(path, CheckpointKindEnumerate, "fp-torn"); err == nil {
		t.Fatal("open accepted a checkpoint with a malformed middle entry")
	} else if errors.Is(err, ErrCheckpointMismatch) {
		t.Fatalf("corruption misreported as a fingerprint mismatch: %v", err)
	}
}
