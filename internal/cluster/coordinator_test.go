package cluster

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"scadaver/internal/core"
	"scadaver/internal/obs"
	"scadaver/internal/powergrid"
	"scadaver/internal/scadanet"
	"scadaver/internal/serve"
	"scadaver/internal/synth"
)

func testConfig(t testing.TB) *scadanet.Config {
	t.Helper()
	cfg, err := synth.Generate(synth.Params{Bus: powergrid.Case5(), Seed: 7, Hierarchy: 2, SecureFraction: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

// newMember starts one real verification-service node and returns its
// handle, URL and metrics registry.
func newMember(t testing.TB, cfg *scadanet.Config, mutate func(*serve.Options)) (*serve.Server, *httptest.Server, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	opts := serve.Options{
		Configs:       map[string]*scadanet.Config{"grid": cfg},
		QueueDepth:    8,
		Workers:       2,
		DefaultBudget: core.QueryBudget{Deadline: 5 * time.Second},
		Metrics:       reg,
	}
	if mutate != nil {
		mutate(&opts)
	}
	srv, err := serve.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Drain(ctx) //nolint:errcheck
	})
	return srv, ts, reg
}

func postJSON(t testing.TB, url string, body any) *http.Response {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeBody[T any](t testing.TB, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

// newTestCoordinator wires a coordinator over the given member URLs.
func newTestCoordinator(t testing.TB, members []Member, mutate func(*Options)) (*Coordinator, *httptest.Server) {
	t.Helper()
	opts := Options{
		Members:           members,
		HeartbeatInterval: time.Hour, // tests that need probing set their own cadence
		RetryBackoff:      time.Millisecond,
		MaxRetryBackoff:   5 * time.Millisecond,
		Configs:           map[string]*scadanet.Config{"grid": testConfig(t)},
	}
	if mutate != nil {
		mutate(&opts)
	}
	c, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(c.Handler())
	t.Cleanup(func() {
		ts.Close()
		c.Close()
	})
	return c, ts
}

func TestCoordinatorForwardsVerify(t *testing.T) {
	cfg := testConfig(t)
	_, m1, _ := newMember(t, cfg, nil)
	_, m2, _ := newMember(t, cfg, nil)
	_, coord := newTestCoordinator(t, []Member{
		{Name: "m1", URL: m1.URL}, {Name: "m2", URL: m2.URL}}, nil)

	req := serve.VerifyRequest{Config: "grid",
		Query: core.Query{Property: core.Observability, Combined: true, K: 0}}
	direct := decodeBody[serve.VerifyResponse](t, postJSON(t, m1.URL+"/v1/verify", req))
	via := postJSON(t, coord.URL+"/v1/verify", req)
	if via.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(via.Body)
		t.Fatalf("coordinator verify = %d, body %s", via.StatusCode, raw)
	}
	got := decodeBody[serve.VerifyResponse](t, via)
	if got.Resilient != direct.Resilient {
		t.Fatalf("coordinator verdict %v != direct member verdict %v", got.Resilient, direct.Resilient)
	}
}

// TestCoordinatorFailoverKeepsServing kills one member outright and
// asserts every verify still succeeds: keys owned by the dead member
// fail over to the survivor within the attempt budget.
func TestCoordinatorFailoverKeepsServing(t *testing.T) {
	cfg := testConfig(t)
	_, m1, _ := newMember(t, cfg, nil)
	_, m2, _ := newMember(t, cfg, nil)
	reg := obs.NewRegistry()
	c, coord := newTestCoordinator(t, []Member{
		{Name: "m1", URL: m1.URL}, {Name: "m2", URL: m2.URL}},
		func(o *Options) { o.Metrics = reg })
	m2.Close() // node killed; the coordinator has not probed it yet

	// Pick a query whose key routes to the dead member first, so the
	// request must fail over to survive.
	query := core.Query{Property: core.Observability, Combined: true, K: 0}
	routed := false
	for k := 0; k <= 2 && !routed; k++ {
		query.K = k
		key := routingKey("verify", "grid", query)
		routed = c.candidates(key)[0].Name == "m2"
	}
	if !routed {
		t.Fatal("no k in 0..2 routes to m2 first; the ring test fixture needs a new key")
	}
	resp := postJSON(t, coord.URL+"/v1/verify", serve.VerifyRequest{Config: "grid", Query: query})
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("verify routed to a dead member = %d, body %s", resp.StatusCode, raw)
	}
	resp.Body.Close()
	if reg.Counter("scadaver_cluster_failovers_total", nil) == 0 {
		t.Fatal("request succeeded without counting a failover")
	}
}

func TestCoordinatorJoinLeaveMembers(t *testing.T) {
	cfg := testConfig(t)
	_, m1, _ := newMember(t, cfg, nil)
	_, m2, _ := newMember(t, cfg, nil)
	_, coord := newTestCoordinator(t, []Member{{Name: "m1", URL: m1.URL}}, nil)

	type membersBody struct {
		Members []memberInfo `json:"members"`
	}
	got := decodeBody[membersBody](t, mustGet(t, coord.URL+"/v1/cluster/members"))
	if len(got.Members) != 1 || got.Members[0].Name != "m1" {
		t.Fatalf("seed membership = %+v, want [m1]", got.Members)
	}

	resp := postJSON(t, coord.URL+"/v1/cluster/join", Member{Name: "m2", URL: m2.URL})
	joined := decodeBody[membersBody](t, resp)
	if resp.StatusCode != http.StatusOK || len(joined.Members) != 2 {
		t.Fatalf("join = %d with %d members, want 200 with 2", resp.StatusCode, len(joined.Members))
	}

	// A bad join is rejected.
	bad := postJSON(t, coord.URL+"/v1/cluster/join", Member{Name: "", URL: "not a url"})
	io.Copy(io.Discard, bad.Body) //nolint:errcheck
	bad.Body.Close()
	if bad.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty-name join = %d, want 400", bad.StatusCode)
	}

	del, err := http.NewRequest(http.MethodDelete, coord.URL+"/v1/cluster/members/m2", nil)
	if err != nil {
		t.Fatal(err)
	}
	delResp, err := http.DefaultClient.Do(del)
	if err != nil {
		t.Fatal(err)
	}
	left := decodeBody[membersBody](t, delResp)
	if delResp.StatusCode != http.StatusOK || len(left.Members) != 1 {
		t.Fatalf("leave = %d with %d members, want 200 with 1", delResp.StatusCode, len(left.Members))
	}
}

// TestCoordinatorReadyzNamesDownMember runs real probing: with one
// member killed, /readyz stays ready (a live member remains) and the
// Reasons name exactly which member is down.
func TestCoordinatorReadyzNamesDownMember(t *testing.T) {
	cfg := testConfig(t)
	_, m1, _ := newMember(t, cfg, nil)
	_, m2, _ := newMember(t, cfg, nil)
	_, coord := newTestCoordinator(t, []Member{
		{Name: "m1", URL: m1.URL}, {Name: "m2", URL: m2.URL}},
		func(o *Options) {
			o.HeartbeatInterval = 10 * time.Millisecond
			o.Detector = DetectorOptions{Window: 8, Expected: 10 * time.Millisecond}
		})
	m2.Close()

	waitFor(t, 5*time.Second, func() bool {
		body := decodeBody[clusterReadyz](t, mustGet(t, coord.URL+"/readyz"))
		if !body.Ready {
			return false
		}
		for _, reason := range body.Reasons {
			if strings.Contains(reason, "m2") {
				return true
			}
		}
		return false
	})
	body := decodeBody[clusterReadyz](t, mustGet(t, coord.URL+"/readyz"))
	for _, reason := range body.Reasons {
		if strings.Contains(reason, "m1") {
			t.Fatalf("readyz blames the healthy member: %v", body.Reasons)
		}
	}

	m1.Close()
	waitFor(t, 5*time.Second, func() bool {
		resp, err := http.Get(coord.URL + "/readyz")
		if err != nil {
			return false
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		return resp.StatusCode == http.StatusServiceUnavailable
	})
}

func mustGet(t testing.TB, url string) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// waitFor polls cond until it holds or the deadline expires.
func waitFor(t testing.TB, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("condition not reached in time")
}

// TestCoordinatorRelaysPatchAndSubscribe asserts config-name affinity
// for live mutation: a subscriber through the coordinator streams the
// greeting and, after a PATCH relayed through the coordinator, the
// mutation event — both served by the same ring owner, so the verdicts
// come from the member whose delta-aware cache evolved.
func TestCoordinatorRelaysPatchAndSubscribe(t *testing.T) {
	cfg := testConfig(t)
	_, m1, _ := newMember(t, cfg, nil)
	_, m2, _ := newMember(t, cfg, nil)
	_, coord := newTestCoordinator(t, []Member{
		{Name: "m1", URL: m1.URL}, {Name: "m2", URL: m2.URL}}, nil)

	sub, err := http.Get(coord.URL + "/v1/subscribe?config=grid")
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Body.Close()
	if sub.StatusCode != http.StatusOK {
		t.Fatalf("subscribe via coordinator = %d", sub.StatusCode)
	}
	lines := bufio.NewScanner(sub.Body)
	if !lines.Scan() {
		t.Fatalf("no greeting line: %v", lines.Err())
	}
	var hello serve.MutationEvent
	if err := json.Unmarshal(lines.Bytes(), &hello); err != nil {
		t.Fatal(err)
	}
	if hello.Config != "grid" || hello.Version != 1 {
		t.Fatalf("greeting = %+v, want grid v1", hello)
	}

	victim := cfg.Net.Links()[0].ID
	raw, err := json.Marshal(serve.PatchRequest{
		Delta: fmt.Sprintf("link-remove %d", victim)})
	if err != nil {
		t.Fatal(err)
	}
	preq, err := http.NewRequest(http.MethodPatch, coord.URL+"/v1/configs/grid", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	preq.Header.Set("Content-Type", "application/json")
	presp, err := http.DefaultClient.Do(preq)
	if err != nil {
		t.Fatal(err)
	}
	if presp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(presp.Body)
		presp.Body.Close()
		t.Fatalf("PATCH via coordinator = %d, body %s", presp.StatusCode, body)
	}
	ev := decodeBody[serve.MutationEvent](t, presp)
	if ev.Version != 2 || len(ev.Verdicts) != 3 {
		t.Fatalf("relayed PATCH response = %+v, want v2 with 3 verdicts", ev)
	}

	// The same event arrives on the relayed stream: PATCH and subscribe
	// landed on the same ring owner.
	if !lines.Scan() {
		t.Fatalf("no mutation event on relayed stream: %v", lines.Err())
	}
	var streamed serve.MutationEvent
	if err := json.Unmarshal(lines.Bytes(), &streamed); err != nil {
		t.Fatal(err)
	}
	if streamed.Version != ev.Version || len(streamed.Verdicts) != len(ev.Verdicts) {
		t.Fatalf("streamed event %+v != PATCH response %+v", streamed, ev)
	}

	// An invalid delta relays the member's 422 through unchanged.
	badRaw, _ := json.Marshal(serve.PatchRequest{Delta: "link-remove 9999"})
	breq, err := http.NewRequest(http.MethodPatch, coord.URL+"/v1/configs/grid", bytes.NewReader(badRaw))
	if err != nil {
		t.Fatal(err)
	}
	bresp, err := http.DefaultClient.Do(breq)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(bresp.Body)
	bresp.Body.Close()
	if bresp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("invalid relayed PATCH = %d, want 422 (body %s)", bresp.StatusCode, body)
	}
	if !strings.Contains(string(body), "unknown link") {
		t.Fatalf("relayed 422 body %q lacks the sentinel", body)
	}
}
