package core

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestQueryJSONRoundTrip(t *testing.T) {
	in := Query{Property: SecuredObservability, K1: 1, K2: 2, KL: 3, R: 1}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"secured-observability"`) {
		t.Fatalf("json = %s", data)
	}
	var out Query
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip: %+v != %+v", out, in)
	}
}

func TestPropertyJSONErrors(t *testing.T) {
	var p Property
	if err := json.Unmarshal([]byte(`"nope"`), &p); err == nil {
		t.Fatal("unknown property accepted")
	}
	if err := json.Unmarshal([]byte(`42`), &p); err == nil {
		t.Fatal("non-string property accepted")
	}
}

func TestResultJSON(t *testing.T) {
	a, err := NewAnalyzer(tinyConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	res, err := a.Verify(Query{Property: Observability, K1: 1, K2: 0})
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	for _, want := range []string{`"status":"sat"`, `"ieds":[1]`, `"property":"observability"`} {
		if !strings.Contains(s, want) {
			t.Fatalf("json %s missing %q", s, want)
		}
	}
	var back Result
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Status != res.Status || back.Vector == nil || len(back.Vector.IEDs) != 1 {
		t.Fatalf("round trip: %+v", back)
	}
}
