package scadanet

import (
	"testing"

	"scadaver/internal/secpolicy"
)

func TestNetworkClone(t *testing.T) {
	n := buildTiny(t)
	n.LinkBetween(1, 10).Profiles = []secpolicy.Profile{{Algo: secpolicy.HMAC, KeyBits: 128}}
	c := n.Clone()

	// Same structure.
	if len(c.Devices()) != len(n.Devices()) || len(c.Links()) != len(n.Links()) {
		t.Fatal("clone structure differs")
	}
	if got := c.MeasurementsOf(1); len(got) != 2 {
		t.Fatalf("clone measurements = %v", got)
	}

	// Mutations do not propagate in either direction.
	c.Device(1).Down = true
	if n.Device(1).Down {
		t.Fatal("device mutation leaked to original")
	}
	c.LinkBetween(1, 10).Profiles[0] = secpolicy.Profile{Algo: secpolicy.DES, KeyBits: 56}
	if n.LinkBetween(1, 10).Profiles[0].Algo == secpolicy.DES {
		t.Fatal("profile mutation leaked to original")
	}
	if _, err := c.AddLink(1, 11); err != nil {
		t.Fatal(err)
	}
	if n.LinkBetween(1, 11) != nil {
		t.Fatal("added link leaked to original")
	}
	if err := c.AssignMeasurements(2, 9); err != nil {
		t.Fatal(err)
	}
	if len(n.MeasurementsOf(2)) != 1 {
		t.Fatal("assignment leaked to original")
	}

	// New links on the clone get fresh IDs beyond the copied ones.
	added := c.LinkBetween(1, 11)
	for _, l := range n.Links() {
		if l.ID == added.ID {
			t.Fatal("clone reused an existing link ID")
		}
	}
}

func TestConfigClone(t *testing.T) {
	cfg, err := CaseStudyConfig(false)
	if err != nil {
		t.Fatal(err)
	}
	c := cfg.Clone()
	if c.K1 != cfg.K1 || c.K2 != cfg.K2 || c.R != cfg.R {
		t.Fatal("spec not copied")
	}
	// Jacobian rows are deep copies.
	c.Msrs.Msrs[0].Row[0] = 9999
	if cfg.Msrs.Msrs[0].Row[0] == 9999 {
		t.Fatal("Jacobian row leaked")
	}
	// Network is independent.
	c.Net.Device(1).Down = true
	if cfg.Net.Device(1).Down {
		t.Fatal("network leaked")
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}
