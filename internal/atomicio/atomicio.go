// Package atomicio writes files atomically via the temp-file + rename
// idiom, so an interrupted writer — a killed benchmark run, a crashed
// checkpointing campaign — can never leave a truncated or half-written
// file behind: readers observe either the previous complete content or
// the new complete content, never a prefix.
package atomicio

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
)

// WriteFile renders content through fn into a temporary file in path's
// directory, syncs it, and renames it onto path. If fn (or any I/O
// step) fails, the temporary file is removed and path is left exactly
// as it was — in particular, an existing previous version survives.
func WriteFile(path string, fn func(w *bufio.Writer) error) (err error) {
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	tmp, err := os.CreateTemp(dir, base+".tmp-*")
	if err != nil {
		return fmt.Errorf("atomicio: create temp for %s: %w", path, err)
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	bw := bufio.NewWriter(tmp)
	if err = fn(bw); err != nil {
		return fmt.Errorf("atomicio: write %s: %w", path, err)
	}
	if err = bw.Flush(); err != nil {
		return fmt.Errorf("atomicio: flush %s: %w", path, err)
	}
	if err = tmp.Sync(); err != nil {
		return fmt.Errorf("atomicio: sync %s: %w", path, err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("atomicio: close %s: %w", path, err)
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("atomicio: rename onto %s: %w", path, err)
	}
	return nil
}
