// Package sat implements a complete CDCL (conflict-driven clause learning)
// SAT solver used as the decision engine behind the SCADA resiliency
// verifier.
//
// The solver implements the standard modern architecture: two-watched-literal
// unit propagation, first-UIP conflict analysis with learned-clause
// minimization, exponential VSIDS variable activities with a binary heap,
// phase saving, Luby-sequence restarts, LBD-based (glue) learned-clause
// database reduction, and incremental solving under assumptions.
//
// The paper this repository reproduces solves its model with Z3; every
// constraint in that model is propositional structure plus cardinality
// sums, so a SAT back-end (fed by package logic's Tseitin and
// sequential-counter encodings) decides exactly the same fragment.
//
// # Preprocessing and snapshots
//
// Simplify runs a SatELite-style preprocessing pass in place — unit
// propagation to fixpoint, failed-literal probing, subsumption and
// self-subsuming resolution, and bounded variable elimination with
// model reconstruction. Variables the caller will still assume, block
// on, or read back must be protected with Freeze before the pass, or
// elimination may resolve them away. Clone deep-copies a solver —
// clause database, learned clauses, activities, saved phases, and the
// elimination record — into an independent instance; the encoding
// cache in package core pairs the two, simplifying a structural
// snapshot once and handing every subsequent query a private clone.
//
// # Portfolio solving
//
// SolvePortfolio races diversified clones of the solver and returns
// the first verdict (PortfolioOptions selects the replica count,
// clause sharing, and concurrent-admission cap; PortfolioStats reports
// the winner, its strategy label, and the exchange volume). Each
// replica takes a distinct row of a fixed diversification matrix —
// VSIDS decay, restart schedule, initial polarity — and replicas
// export short, low-LBD learned clauses through a bounded ring that
// the others import at their next restart. SetInprocess additionally
// arms a light inprocessing pass at restarts (default off; portfolio
// replicas switch it on). The losing replicas are cooperatively
// interrupted, replica panics are isolated, and the winner's
// statistics are merged back into the base solver. See DESIGN.md §12
// for the soundness and determinism argument.
//
// # Instrumentation and control
//
// Stats exposes per-solver counters — decisions, conflicts,
// propagations, learned clauses, restarts, plus the number of Solve
// calls and their cumulative wall time. Counters accumulate across
// incremental Solve calls; Stats.Sub produces the per-solve delta, which
// is how the verifier attributes effort to individual queries on a
// reused solver. Two hooks bound a solve: SetConflictBudget limits a
// single Solve call to a number of conflicts, and SetInterrupt installs
// a cooperative cancellation callback polled every few hundred search
// steps — both make the solver return Unsolved rather than block
// indefinitely, which is what makes campaign cancellation (core.Runner)
// responsive.
//
// # Concurrency
//
// A Solver is single-goroutine: it owns mutable trail, watch and
// activity state and performs no internal locking. Concurrent
// verification therefore gives every goroutine its own solver (the
// ownership rule enforced throughout package core); only SetInterrupt's
// callback is invoked on the solving goroutine but may read state
// written by others, which is how cancellation crosses the boundary.
//
// The zero value of Solver is not usable; construct with New.
package sat
