package faultinject

import (
	"errors"
	"testing"
	"time"
)

// TestStreamHooksNilAndDisarmed pins the "nil is off" contract for the
// HTTP-stream hooks: a nil plan and an unarmed plan both inject
// nothing, forever.
func TestStreamHooksNilAndDisarmed(t *testing.T) {
	var nilPlan *Faults
	for i := 0; i < 10; i++ {
		if err := nilPlan.BeforeStreamItem(); err != nil {
			t.Fatalf("nil plan injected a stream fault: %v", err)
		}
	}
	f := New(1)
	for i := 0; i < 10; i++ {
		if err := f.BeforeStreamItem(); err != nil {
			t.Fatalf("unarmed plan injected a stream fault at item %d: %v", i, err)
		}
	}
	if got := f.Counts().StreamFaults; got != 0 {
		t.Fatalf("unarmed plan counted %d stream faults", got)
	}
}

// TestDropStreamAfterIsDeterministic pins the counter semantics: items
// before the armed index pass, the armed index and everything after it
// fail with ErrInjected, and the counter spans streams of one plan.
func TestDropStreamAfterIsDeterministic(t *testing.T) {
	f := New(1).DropStreamAfter(3)
	for i := 0; i < 3; i++ {
		if err := f.BeforeStreamItem(); err != nil {
			t.Fatalf("item %d before the drop index failed: %v", i, err)
		}
	}
	for i := 3; i < 6; i++ {
		if err := f.BeforeStreamItem(); !errors.Is(err, ErrInjected) {
			t.Fatalf("item %d = %v, want ErrInjected", i, err)
		}
	}
	if got := f.Counts().StreamFaults; got != 3 {
		t.Fatalf("StreamFaults = %d, want 3", got)
	}

	// A negative index disarms.
	off := New(1).DropStreamAfter(-1)
	for i := 0; i < 5; i++ {
		if err := off.BeforeStreamItem(); err != nil {
			t.Fatalf("disarmed plan injected at item %d: %v", i, err)
		}
	}
}

// TestDropStreamAtZeroDropsFirstItem pins the edge the chaos suite
// leans on: DropStreamAfter(0) fails the very first streamed item.
func TestDropStreamAtZeroDropsFirstItem(t *testing.T) {
	f := New(1).DropStreamAfter(0)
	if err := f.BeforeStreamItem(); !errors.Is(err, ErrInjected) {
		t.Fatalf("first item = %v, want ErrInjected", err)
	}
}

// TestSlowClientDelays pins that the slow-client fault actually stalls
// the stream hook without injecting an error.
func TestSlowClientDelays(t *testing.T) {
	const delay = 20 * time.Millisecond
	f := New(1).SlowClient(delay)
	start := time.Now()
	if err := f.BeforeStreamItem(); err != nil {
		t.Fatalf("slow client injected an error: %v", err)
	}
	if elapsed := time.Since(start); elapsed < delay {
		t.Fatalf("BeforeStreamItem returned after %v, want >= %v", elapsed, delay)
	}
}
