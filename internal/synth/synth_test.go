package synth

import (
	"errors"
	"testing"
	"testing/quick"

	"scadaver/internal/powergrid"
	"scadaver/internal/scadanet"
)

func TestGenerateBasic(t *testing.T) {
	cfg, err := Generate(Params{Bus: powergrid.IEEE14(), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	// Full measurement set: 2*20 + 14 = 54 measurements.
	if cfg.Msrs.Len() != 54 {
		t.Fatalf("measurements = %d, want 54", cfg.Msrs.Len())
	}
	// IED count per Section V-A: 40 flows in pairs (20) + 14 injections.
	nIED := len(cfg.Net.DevicesOfKind(scadanet.IED))
	if nIED != 34 {
		t.Fatalf("IEDs = %d, want 34", nIED)
	}
	nRTU := len(cfg.Net.DevicesOfKind(scadanet.RTU))
	if nRTU != 34/3 {
		t.Fatalf("RTUs = %d, want %d", nRTU, 34/3)
	}
	if len(cfg.Net.DevicesOfKind(scadanet.MTU)) != 1 {
		t.Fatal("must have one MTU")
	}
	// Every measurement assigned exactly once.
	seen := map[int]int{}
	for _, d := range cfg.Net.DevicesOfKind(scadanet.IED) {
		for _, z := range cfg.Net.MeasurementsOf(d.ID) {
			seen[z]++
		}
	}
	for z := 1; z <= cfg.Msrs.Len(); z++ {
		if seen[z] != 1 {
			t.Fatalf("measurement %d assigned %d times", z, seen[z])
		}
	}
	// Every IED reaches the MTU.
	for _, d := range cfg.Net.DevicesOfKind(scadanet.IED) {
		if len(cfg.Net.Paths(d.ID, 0)) == 0 {
			t.Fatalf("IED %d unreachable", d.ID)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p := Params{Bus: powergrid.IEEE14(), Seed: 42, Hierarchy: 2}
	a, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Net.Links()) != len(b.Net.Links()) {
		t.Fatal("nondeterministic link count")
	}
	for i, la := range a.Net.Links() {
		lb := b.Net.Links()[i]
		if la.A != lb.A || la.B != lb.B || len(la.Profiles) != len(lb.Profiles) {
			t.Fatalf("link %d differs", i)
		}
	}
	c, err := Generate(Params{Bus: powergrid.IEEE14(), Seed: 43, Hierarchy: 2})
	if err != nil {
		t.Fatal(err)
	}
	same := len(a.Net.Links()) == len(c.Net.Links())
	if same {
		diff := false
		for i, la := range a.Net.Links() {
			lc := c.Net.Links()[i]
			if la.A != lc.A || la.B != lc.B {
				diff = true
				break
			}
		}
		same = !diff
	}
	if same {
		t.Fatal("different seeds produced identical topologies")
	}
}

func TestGenerateHierarchyDepth(t *testing.T) {
	for _, h := range []int{1, 2, 3, 4} {
		cfg, err := Generate(Params{Bus: powergrid.IEEE14(), Seed: 7, Hierarchy: h})
		if err != nil {
			t.Fatalf("h=%d: %v", h, err)
		}
		// The shortest path of every IED has exactly h intermediate
		// RTUs (IEDs attach to deepest-level RTUs; the RTU tree has h
		// levels).
		for _, d := range cfg.Net.DevicesOfKind(scadanet.IED) {
			paths := cfg.Net.Paths(d.ID, 0)
			if len(paths) == 0 {
				t.Fatalf("h=%d: IED %d unreachable", h, d.ID)
			}
			shortest := len(paths[0])
			for _, p := range paths {
				if len(p) < shortest {
					shortest = len(p)
				}
			}
			// Path links = intermediate RTUs + 1 (RTU→...→MTU).
			if shortest != h+1 {
				t.Fatalf("h=%d: IED %d shortest path has %d hops, want %d", h, d.ID, shortest, h+1)
			}
		}
	}
}

func TestGenerateMeasurementPercent(t *testing.T) {
	full, err := Generate(Params{Bus: powergrid.IEEE14(), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	half, err := Generate(Params{Bus: powergrid.IEEE14(), Seed: 1, MeasurementPercent: 50})
	if err != nil {
		t.Fatal(err)
	}
	if half.Msrs.Len() != (full.Msrs.Len()+1)/2 {
		t.Fatalf("50%%: %d of %d", half.Msrs.Len(), full.Msrs.Len())
	}
}

func TestGenerateSecureFractionExtremes(t *testing.T) {
	// SecureFraction=1: all IED uplinks authenticated+integrity.
	cfg, err := Generate(Params{Bus: powergrid.IEEE14(), Seed: 5, SecureFraction: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range cfg.Net.DevicesOfKind(scadanet.IED) {
		paths := cfg.Net.Paths(d.ID, 0)
		l := paths[0][0]
		if len(l.Profiles) != 2 {
			t.Fatalf("IED %d uplink not fully secured: %v", d.ID, l.Profiles)
		}
	}
	// SecureFraction≈0 (negative forces the weak branch): some weak
	// uplinks appear.
	weakCfg, err := Generate(Params{Bus: powergrid.IEEE14(), Seed: 5, SecureFraction: -1})
	if err != nil {
		t.Fatal(err)
	}
	weak := 0
	for _, d := range weakCfg.Net.DevicesOfKind(scadanet.IED) {
		l := weakCfg.Net.Paths(d.ID, 0)[0][0]
		if len(l.Profiles) < 2 {
			weak++
		}
	}
	if weak == 0 {
		t.Fatal("SecureFraction<0 produced no weak uplinks")
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(Params{}); !errors.Is(err, ErrNilBus) {
		t.Fatalf("want ErrNilBus, got %v", err)
	}
}

func TestGenerateLargerSystems(t *testing.T) {
	for _, sys := range []*powergrid.BusSystem{powergrid.IEEE30(), powergrid.IEEE57(), powergrid.IEEE118()} {
		cfg, err := Generate(Params{Bus: sys, Seed: 11, Hierarchy: 2})
		if err != nil {
			t.Fatalf("%s: %v", sys.Name, err)
		}
		nDev := len(cfg.Net.DevicesOfKind(scadanet.IED)) + len(cfg.Net.DevicesOfKind(scadanet.RTU))
		// The paper reports ~400 field devices at 118 buses.
		if sys.Name == "ieee118" && (nDev < 300 || nDev > 500) {
			t.Fatalf("118-bus device count %d outside the paper's scale", nDev)
		}
	}
}

func TestQuickGeneratedConfigsValid(t *testing.T) {
	f := func(seed int64, hRaw, pctRaw uint8) bool {
		h := 1 + int(hRaw)%4
		pct := 40 + float64(pctRaw%61) // 40..100
		cfg, err := Generate(Params{
			Bus:                powergrid.IEEE14(),
			Seed:               seed,
			Hierarchy:          h,
			MeasurementPercent: pct,
		})
		if err != nil {
			return false
		}
		if cfg.Validate() != nil {
			return false
		}
		for _, d := range cfg.Net.DevicesOfKind(scadanet.IED) {
			if len(cfg.Net.Paths(d.ID, 0)) == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateKnobs(t *testing.T) {
	// RTUsPerIEDs controls the RTU count.
	dense, err := Generate(Params{Bus: powergrid.IEEE14(), Seed: 2, RTUsPerIEDs: 2})
	if err != nil {
		t.Fatal(err)
	}
	sparse, err := Generate(Params{Bus: powergrid.IEEE14(), Seed: 2, RTUsPerIEDs: 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(dense.Net.DevicesOfKind(scadanet.RTU)) <= len(sparse.Net.DevicesOfKind(scadanet.RTU)) {
		t.Fatal("RTUsPerIEDs knob has no effect")
	}
	// CrossLinkProb adds redundant RTU-RTU links.
	linked, err := Generate(Params{Bus: powergrid.IEEE14(), Seed: 2, Hierarchy: 2, CrossLinkProb: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Generate(Params{Bus: powergrid.IEEE14(), Seed: 2, Hierarchy: 2, CrossLinkProb: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	if len(linked.Net.Links()) <= len(plain.Net.Links()) {
		t.Fatalf("CrossLinkProb knob has no effect: %d vs %d", len(linked.Net.Links()), len(plain.Net.Links()))
	}
	// The resiliency spec is copied through.
	spec, err := Generate(Params{Bus: powergrid.IEEE14(), Seed: 1, K1: 2, K2: 1, R: 2})
	if err != nil {
		t.Fatal(err)
	}
	if spec.K1 != 2 || spec.K2 != 1 || spec.R != 2 {
		t.Fatalf("spec = (%d,%d,%d)", spec.K1, spec.K2, spec.R)
	}
}
