package baseline

import (
	"testing"

	"scadaver/internal/core"
	"scadaver/internal/powergrid"
	"scadaver/internal/sat"
	"scadaver/internal/scadanet"
	"scadaver/internal/synth"
)

func caseStudy(t *testing.T, fig4 bool) (*Checker, *core.Analyzer) {
	t.Helper()
	cfg, err := scadanet.CaseStudyConfig(fig4)
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.NewAnalyzer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return New(cfg, nil), a
}

func TestObservableMatchesAnalyzerEval(t *testing.T) {
	c, a := caseStudy(t, false)
	downSets := []map[scadanet.DeviceID]bool{
		nil,
		{1: true},
		{9: true},
		{9: true, 7: true},
		{11: true, 5: true},
		{12: true, 9: true},
		{1: true, 5: true, 7: true},
	}
	for _, down := range downSets {
		for _, secured := range []bool{false, true} {
			if got, want := c.Observable(down, secured), a.EvalObservability(down, secured); got != want {
				t.Fatalf("down=%v secured=%v: baseline=%v analyzer=%v", down, secured, got, want)
			}
		}
		for r := 0; r <= 2; r++ {
			if got, want := c.BadDataDetectable(down, r), a.EvalBadDataDetectability(down, r); got != want {
				t.Fatalf("down=%v r=%d: baseline=%v analyzer=%v", down, r, got, want)
			}
		}
	}
}

func TestFindViolationAgreesWithSAT(t *testing.T) {
	for _, fig4 := range []bool{false, true} {
		c, a := caseStudy(t, fig4)
		for k1 := 0; k1 <= 2; k1++ {
			for k2 := 0; k2 <= 1; k2++ {
				for _, secured := range []bool{false, true} {
					prop := core.Observability
					if secured {
						prop = core.SecuredObservability
					}
					res, err := a.Verify(core.Query{Property: prop, K1: k1, K2: k2})
					if err != nil {
						t.Fatal(err)
					}
					v := c.FindViolation(k1, k2, func(down map[scadanet.DeviceID]bool) bool {
						return c.Observable(down, secured)
					})
					if (res.Status == sat.Sat) != (v != nil) {
						t.Fatalf("fig4=%v secured=%v (%d,%d): sat=%v baseline violation=%v",
							fig4, secured, k1, k2, res.Status, v)
					}
				}
			}
		}
	}
}

func TestFindViolationReturnsMinimalSize(t *testing.T) {
	c, _ := caseStudy(t, true)
	v := c.FindViolation(2, 1, func(down map[scadanet.DeviceID]bool) bool {
		return c.Observable(down, false)
	})
	// Fig. 4: {RTU 12} alone breaks observability; smallest-first search
	// must find a single-device violation.
	if len(v) != 1 || v[0] != 12 {
		t.Fatalf("violation = %v, want [12]", v)
	}
}

func TestMaxResiliencyMatchesSAT(t *testing.T) {
	for _, fig4 := range []bool{false, true} {
		c, a := caseStudy(t, fig4)
		for _, varyIEDs := range []bool{true, false} {
			got := c.MaxResiliency(false, varyIEDs)
			want, err := a.MaxResiliency(core.Observability, 0, varyIEDs, !varyIEDs)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("fig4=%v varyIEDs=%v: baseline=%d sat=%d", fig4, varyIEDs, got, want)
			}
		}
	}
}

// TestRandomSyntheticAgreement fuzzes small synthetic systems and checks
// the SAT verdict against exhaustive enumeration for every small budget.
func TestRandomSyntheticAgreement(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		cfg, err := synth.Generate(synth.Params{
			Bus:                powergrid.Case5(),
			Seed:               seed,
			Hierarchy:          1 + int(seed)%3,
			MeasurementPercent: 60 + float64(seed%5)*10,
			SecureFraction:     0.7,
		})
		if err != nil {
			t.Fatal(err)
		}
		a, err := core.NewAnalyzer(cfg)
		if err != nil {
			t.Fatal(err)
		}
		c := New(cfg, nil)
		for k1 := 0; k1 <= 1; k1++ {
			for k2 := 0; k2 <= 1; k2++ {
				for _, secured := range []bool{false, true} {
					prop := core.Observability
					if secured {
						prop = core.SecuredObservability
					}
					res, err := a.Verify(core.Query{Property: prop, K1: k1, K2: k2})
					if err != nil {
						t.Fatal(err)
					}
					v := c.FindViolation(k1, k2, func(down map[scadanet.DeviceID]bool) bool {
						return c.Observable(down, secured)
					})
					if (res.Status == sat.Sat) != (v != nil) {
						t.Fatalf("seed=%d secured=%v (%d,%d): sat=%v baseline=%v",
							seed, secured, k1, k2, res.Status, v)
					}
				}
				// Bad-data detectability with r=1.
				res, err := a.Verify(core.Query{Property: core.BadDataDetectability, K1: k1, K2: k2, R: 1})
				if err != nil {
					t.Fatal(err)
				}
				v := c.FindViolation(k1, k2, func(down map[scadanet.DeviceID]bool) bool {
					return c.BadDataDetectable(down, 1)
				})
				if (res.Status == sat.Sat) != (v != nil) {
					t.Fatalf("seed=%d baddata (%d,%d): sat=%v baseline=%v", seed, k1, k2, res.Status, v)
				}
			}
		}
	}
}

func TestSearchSpace(t *testing.T) {
	c, _ := caseStudy(t, false)
	// 8 IEDs, 4 RTUs: (1+8)(1+4) = 45 combinations at (1,1).
	if got := c.SearchSpace(1, 1); got != 45 {
		t.Fatalf("SearchSpace(1,1) = %v, want 45", got)
	}
	// (0,0): just the empty set.
	if got := c.SearchSpace(0, 0); got != 1 {
		t.Fatalf("SearchSpace(0,0) = %v, want 1", got)
	}
	// Budgets above device counts clamp.
	if got := c.SearchSpace(100, 100); got != 256*16 {
		t.Fatalf("SearchSpace(100,100) = %v, want 4096", got)
	}
}

func TestDeliveredMatchesAnalyzer(t *testing.T) {
	c, a := caseStudy(t, false)
	for _, down := range []map[scadanet.DeviceID]bool{nil, {9: true}, {11: true}} {
		for _, secured := range []bool{false, true} {
			got := c.Delivered(down, secured)
			want := a.DeliveredMeasurements(down, secured)
			if len(got) != len(want) {
				t.Fatalf("down=%v secured=%v: %v vs %v", down, secured, got, want)
			}
			for z := range want {
				if !got[z] {
					t.Fatalf("down=%v secured=%v: missing %d", down, secured, z)
				}
			}
		}
	}
}
