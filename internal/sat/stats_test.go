package sat

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"
)

// php adds the pigeonhole principle PHP(pigeons, holes) to s: every
// pigeon sits in some hole, no two pigeons share a hole. Unsatisfiable
// (and hard for CDCL) whenever pigeons > holes.
func php(t testing.TB, s *Solver, pigeons, holes int) {
	t.Helper()
	vars := make([][]Var, pigeons)
	for i := range vars {
		vars[i] = newVars(s, holes)
	}
	for i := 0; i < pigeons; i++ {
		lits := make([]Lit, holes)
		for j := 0; j < holes; j++ {
			lits[j] = PosLit(vars[i][j])
		}
		mustAdd(t, s, lits...)
	}
	for j := 0; j < holes; j++ {
		for i := 0; i < pigeons; i++ {
			for k := i + 1; k < pigeons; k++ {
				mustAdd(t, s, NegLit(vars[i][j]), NegLit(vars[k][j]))
			}
		}
	}
}

func TestStatsSolvesAndSolveTime(t *testing.T) {
	s := New()
	vs := newVars(s, 3)
	mustAdd(t, s, PosLit(vs[0]), PosLit(vs[1]))
	mustAdd(t, s, NegLit(vs[1]), PosLit(vs[2]))
	if s.Solve() != Sat {
		t.Fatal("want sat")
	}
	if s.Solve(NegLit(vs[0])) != Sat {
		t.Fatal("want sat under assumption")
	}
	st := s.Stats()
	if st.Solves != 2 {
		t.Fatalf("Solves = %d, want 2", st.Solves)
	}
	if st.SolveTime < 0 {
		t.Fatalf("SolveTime = %v", st.SolveTime)
	}
}

func TestStatsSub(t *testing.T) {
	s := New()
	php(t, s, 4, 3)
	if s.Solve() != Unsat {
		t.Fatal("want unsat")
	}
	mid := s.Stats()
	if mid.Conflicts == 0 {
		t.Fatal("PHP(4,3) should conflict at least once")
	}
	// A solver that is already root-unsat answers again without search.
	if s.Solve() != Unsat {
		t.Fatal("want unsat again")
	}
	delta := s.Stats().Sub(mid)
	if delta.Conflicts != 0 || delta.Decisions != 0 {
		t.Fatalf("re-answering an unsat root did extra work: %+v", delta)
	}
	if delta.Solves != 1 {
		t.Fatalf("Solves delta = %d, want 1", delta.Solves)
	}
	if delta.MaxVars != mid.MaxVars {
		t.Fatalf("Sub must keep absolute MaxVars, got %d want %d", delta.MaxVars, mid.MaxVars)
	}
}

// TestStatsCountersComplete is the round-trip guard for Stats: every
// field — including ones added later — must survive Sub (as a delta for
// cumulative counters, as the current value for the absolute instance-
// size fields) and must be rendered by String. It works by reflection
// so a newly added counter that is forgotten in Sub or String fails
// here instead of silently producing incomplete per-solve deltas.
func TestStatsCountersComplete(t *testing.T) {
	var big, small Stats
	bv := reflect.ValueOf(&big).Elem()
	sv := reflect.ValueOf(&small).Elem()
	tp := reflect.TypeOf(big)
	for i := 0; i < bv.NumField(); i++ {
		switch bv.Field(i).Kind() {
		case reflect.Uint64:
			bv.Field(i).SetUint(uint64(1000 + 111*i))
			sv.Field(i).SetUint(uint64(100 + i))
		case reflect.Int64: // time.Duration
			bv.Field(i).SetInt(int64(time.Duration(1000+111*i) * time.Millisecond))
			sv.Field(i).SetInt(int64(time.Duration(100+i) * time.Millisecond))
		case reflect.Int: // absolute instance-size fields
			bv.Field(i).SetInt(int64(1000 + 111*i))
			sv.Field(i).SetInt(int64(100 + i))
		default:
			t.Fatalf("Stats field %s has unhandled kind %v — extend this test",
				tp.Field(i).Name, bv.Field(i).Kind())
		}
	}

	delta := big.Sub(small)
	dv := reflect.ValueOf(delta)
	for i := 0; i < dv.NumField(); i++ {
		name := tp.Field(i).Name
		switch dv.Field(i).Kind() {
		case reflect.Uint64:
			want := bv.Field(i).Uint() - sv.Field(i).Uint()
			if got := dv.Field(i).Uint(); got != want {
				t.Errorf("Sub dropped or miscomputed %s: got %d, want %d", name, got, want)
			}
		case reflect.Int64:
			want := bv.Field(i).Int() - sv.Field(i).Int()
			if got := dv.Field(i).Int(); got != want {
				t.Errorf("Sub dropped or miscomputed %s: got %d, want %d", name, got, want)
			}
		case reflect.Int:
			// Absolute fields keep the current (big) value.
			if got := dv.Field(i).Int(); got != bv.Field(i).Int() {
				t.Errorf("Sub must keep absolute %s: got %d, want %d", name, got, bv.Field(i).Int())
			}
		}
	}

	s := big.String()
	durationType := reflect.TypeOf(time.Duration(0))
	for i := 0; i < bv.NumField(); i++ {
		name := tp.Field(i).Name
		var want string
		if tp.Field(i).Type == durationType {
			// Durations render as fractional milliseconds.
			want = fmt.Sprintf("%.2f", float64(time.Duration(bv.Field(i).Int()).Microseconds())/1000)
		} else {
			switch bv.Field(i).Kind() {
			case reflect.Uint64:
				want = fmt.Sprintf("%d", bv.Field(i).Uint())
			default:
				want = fmt.Sprintf("%d", bv.Field(i).Int())
			}
		}
		if !strings.Contains(s, want) {
			t.Errorf("String() does not render %s (looked for %q): %s", name, want, s)
		}
	}
}

// TestSetProgress checks the solver progress probe: reports fire at the
// configured conflict interval, carry monotonically increasing counters
// consistent with the final Stats, and the probe can be disabled.
func TestSetProgress(t *testing.T) {
	s := New()
	php(t, s, 8, 7)
	const every = 10
	var reports []Progress
	s.SetProgress(every, func(p Progress) { reports = append(reports, p) })
	if got := s.Solve(); got != Unsat {
		t.Fatalf("PHP(8,7) = %v, want unsat", got)
	}
	if len(reports) == 0 {
		t.Fatal("no progress reports on a multi-hundred-conflict proof")
	}
	var last uint64
	for i, p := range reports {
		if p.Conflicts < last+every {
			t.Fatalf("report %d at %d conflicts, previous at %d: interval violated", i, p.Conflicts, last)
		}
		last = p.Conflicts
		if p.Decisions == 0 || p.Propagations == 0 {
			t.Fatalf("report %d has empty counters: %+v", i, p)
		}
	}
	final := s.Stats()
	if last > final.Conflicts {
		t.Fatalf("last report (%d conflicts) exceeds final stats (%d)", last, final.Conflicts)
	}
	if uint64(len(reports)) > final.Conflicts/every {
		t.Fatalf("%d reports for %d conflicts at interval %d", len(reports), final.Conflicts, every)
	}
}

func TestSetProgressDisabled(t *testing.T) {
	fired := false
	probe := func(Progress) { fired = true }

	s := New()
	php(t, s, 6, 5)
	s.SetProgress(0, probe) // every == 0 disables
	if s.Solve() != Unsat {
		t.Fatal("want unsat")
	}
	if fired {
		t.Fatal("probe fired with interval 0")
	}

	s2 := New()
	php(t, s2, 6, 5)
	s2.SetProgress(10, probe)
	s2.SetProgress(10, nil) // nil callback disables
	if s2.Solve() != Unsat {
		t.Fatal("want unsat")
	}
	if fired {
		t.Fatal("probe fired after being cleared")
	}
}

func TestSetInterrupt(t *testing.T) {
	s := New()
	php(t, s, 8, 7)
	polls := 0
	s.SetInterrupt(func() bool {
		polls++
		return true
	})
	if got := s.Solve(); got != Unsolved {
		t.Fatalf("interrupted solve = %v, want unsolved", got)
	}
	if polls == 0 {
		t.Fatal("interrupt hook was never polled")
	}
	// The solver must stay usable: clear the hook and finish the proof.
	s.SetInterrupt(nil)
	if got := s.Solve(); got != Unsat {
		t.Fatalf("after interrupt: %v, want unsat", got)
	}
}

func TestConflictBudgetIsPerSolve(t *testing.T) {
	s := New()
	php(t, s, 7, 6)
	s.SetConflictBudget(50)
	first := s.Solve()
	if first != Unsolved {
		t.Fatalf("tiny budget should exhaust on PHP(7,6), got %v", first)
	}
	// Each Solve call gets the full budget again: repeated bounded calls
	// make progress via learned clauses instead of dying immediately.
	before := s.Stats().Conflicts
	if s.Solve() == Sat {
		t.Fatal("PHP must never be sat")
	}
	spent := s.Stats().Conflicts - before
	if spent == 0 {
		t.Fatal("second bounded solve did no work: budget was consumed across calls")
	}
}
