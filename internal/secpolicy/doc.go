// Package secpolicy judges cryptographic configurations: which
// (algorithm, key-length) profiles provide authentication, integrity
// protection, or encryption, and which algorithms are considered broken.
// It implements the paper's Authenticated_{i,j} and
// IntegrityProtected_{i,j} predicates (Section III-D), where e.g.
// hmac with a ≥128-bit key authenticates, sha256 with ≥128-bit keys
// integrity-protects, and DES never counts because of its known
// vulnerabilities.
//
// These predicates separate the paper's two delivery notions: a hop
// that merely pairs protocols contributes to AssuredDelivery_I, while
// SecuredDelivery_I — and with it the SecuredObservability property —
// additionally requires every hop on the path to satisfy both
// predicates under the active Policy. Default returns the paper's
// Section III-D policy; analyses accept an alternative one via
// core.WithPolicy, so "what if this cipher were considered broken"
// questions are a policy swap, not a model change.
package secpolicy
