package sat

import (
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"
)

// checkNoGoroutineLeak fails the test if the goroutine count does not
// return to (about) its starting value. Portfolio calls must join every
// replica before returning, so any sustained growth is a leak.
func checkNoGoroutineLeak(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d running, started with %d", runtime.NumGoroutine(), before)
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
}

// TestPortfolioMatchesSerial is the core equivalence property: on
// seeded random CNFs the portfolio must return the same status as a
// serial solver on an identical instance, and any Sat model must
// satisfy the original clauses (it may differ from the serial model).
func TestPortfolioMatchesSerial(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		nv := 10 + rng.Intn(30)
		nc := 10 + rng.Intn(5*nv)

		serial := New()
		_, clauses := randomSeededCNF(t, serial, rand.New(rand.NewSource(100+seed)), nv, nc, 3)
		want := serial.Solve()

		port := New()
		randomSeededCNF(t, port, rand.New(rand.NewSource(100+seed)), nv, nc, 3)
		got, pst := port.SolvePortfolio(PortfolioOptions{Replicas: 3, MaxConcurrent: -1})
		if got != want {
			t.Fatalf("seed %d: portfolio=%v serial=%v", seed, got, want)
		}
		if got == Sat {
			if pst.Winner < 0 || pst.Strategy == "" {
				t.Fatalf("seed %d: decided race reported no winner: %+v", seed, pst)
			}
			if !modelSatisfies(port, clauses) {
				t.Fatalf("seed %d: portfolio model violates original clauses", seed)
			}
		}
	}
}

// TestPortfolioUnsatPigeonhole checks the hard-unsat path (many
// conflicts, restarts, exchange traffic) against a known verdict.
func TestPortfolioUnsatPigeonhole(t *testing.T) {
	s := New()
	php(t, s, 7, 6)
	before := s.Stats()
	status, pst := s.SolvePortfolio(PortfolioOptions{Replicas: 4, MaxConcurrent: -1})
	if status != Unsat {
		t.Fatalf("PHP(7,6) portfolio = %v, want unsat", status)
	}
	if pst.Winner < 0 {
		t.Fatalf("no winner recorded: %+v", pst)
	}
	d := s.Stats().Sub(before)
	if d.Solves != 1 {
		t.Fatalf("Solves delta = %d, want 1 (winner's stats adopted once)", d.Solves)
	}
	if d.Conflicts == 0 {
		t.Fatalf("Conflicts delta = 0, want > 0")
	}
}

// TestPortfolioAssumptions checks that assumptions behave like in
// serial solving: verdicts flip with the assumed branch and the solver
// stays reusable afterwards.
func TestPortfolioAssumptions(t *testing.T) {
	s := New()
	vs := newVars(s, 4)
	mustAdd(t, s, PosLit(vs[0]), PosLit(vs[1]))
	mustAdd(t, s, NegLit(vs[0]), PosLit(vs[2]))
	mustAdd(t, s, NegLit(vs[2]), PosLit(vs[3]))

	if st, _ := s.SolvePortfolio(PortfolioOptions{Replicas: 2, MaxConcurrent: -1}, PosLit(vs[0])); st != Sat {
		t.Fatalf("sat branch = %v, want sat", st)
	}
	if s.Value(vs[0]) != True {
		t.Fatalf("assumption not honored in adopted model")
	}
	mustAdd(t, s, NegLit(vs[3]))
	if st, _ := s.SolvePortfolio(PortfolioOptions{Replicas: 2, MaxConcurrent: -1}, PosLit(vs[0])); st != Unsat {
		t.Fatalf("unsat branch = %v, want unsat", st)
	}
	// The incompatible assumption must not have poisoned the instance.
	if st, _ := s.SolvePortfolio(PortfolioOptions{Replicas: 2, MaxConcurrent: -1}, NegLit(vs[0])); st != Sat {
		t.Fatalf("other branch = %v, want sat", st)
	}
}

// TestPortfolioIncrementalEnumeration enumerates all models of a small
// instance through the portfolio (blocking each model) and checks the
// model set equals serial enumeration — adoption must leave the solver
// fully usable for incremental work.
func TestPortfolioIncrementalEnumeration(t *testing.T) {
	build := func() (*Solver, []Var) {
		s := New()
		vs := newVars(s, 4)
		mustAdd(t, s, PosLit(vs[0]), PosLit(vs[1]))
		mustAdd(t, s, NegLit(vs[2]), NegLit(vs[3]))
		return s, vs
	}
	enumerate := func(s *Solver, vs []Var, portfolio bool) map[[4]bool]bool {
		models := map[[4]bool]bool{}
		for len(models) < 32 {
			var st Status
			if portfolio {
				st, _ = s.SolvePortfolio(PortfolioOptions{Replicas: 3, MaxConcurrent: -1})
			} else {
				st = s.Solve()
			}
			if st == Unsat {
				return models
			}
			if st != Sat {
				t.Fatalf("enumeration returned %v", st)
			}
			var key [4]bool
			block := make([]Lit, len(vs))
			for i, v := range vs {
				key[i] = s.Value(v) == True
				block[i] = MkLit(v, key[i]) // negation of the model value
			}
			if models[key] {
				t.Fatalf("model %v repeated: blocking clause ignored", key)
			}
			models[key] = true
			mustAdd(t, s, block...)
		}
		t.Fatalf("enumeration did not terminate")
		return nil
	}

	s1, v1 := build()
	serialModels := enumerate(s1, v1, false)
	s2, v2 := build()
	portModels := enumerate(s2, v2, true)
	if len(serialModels) != len(portModels) {
		t.Fatalf("model counts differ: serial %d, portfolio %d", len(serialModels), len(portModels))
	}
	for m := range serialModels {
		if !portModels[m] {
			t.Fatalf("model %v found serially but not via portfolio", m)
		}
	}
}

// TestPortfolioReplicaPanicIsolated injects a panic into one replica:
// the verdict must be unaffected, the panic must be counted, and no
// goroutine may leak.
func TestPortfolioReplicaPanicIsolated(t *testing.T) {
	goroutines := runtime.NumGoroutine()
	s := New()
	php(t, s, 6, 5)
	status, pst := s.SolvePortfolio(PortfolioOptions{
		Replicas:      3,
		MaxConcurrent: -1, // saturate: replica 1 must actually start to panic
		OnReplicaStart: func(id int) {
			if id == 1 {
				panic("injected replica fault")
			}
		},
	})
	if status != Unsat {
		t.Fatalf("verdict with panicked replica = %v, want unsat", status)
	}
	if pst.Panics != 1 {
		t.Fatalf("Panics = %d, want 1", pst.Panics)
	}
	if pst.Winner == 1 {
		t.Fatalf("panicked replica must never win")
	}
	checkNoGoroutineLeak(t, goroutines)
}

// TestPortfolioAllReplicasPanic is the degenerate chaos case: every
// replica dies. The call must return Unsolved without adopting a
// poisoned replica and the base solver must still solve serially.
func TestPortfolioAllReplicasPanic(t *testing.T) {
	goroutines := runtime.NumGoroutine()
	s := New()
	php(t, s, 5, 4)
	status, pst := s.SolvePortfolio(PortfolioOptions{
		Replicas:       2,
		MaxConcurrent:  -1,
		OnReplicaStart: func(int) { panic("injected replica fault") },
	})
	if status != Unsolved {
		t.Fatalf("all-panicked race = %v, want unsolved", status)
	}
	if pst.Panics != 2 {
		t.Fatalf("Panics = %d, want 2", pst.Panics)
	}
	if got := s.Solve(); got != Unsat {
		t.Fatalf("base solver after failed race = %v, want unsat", got)
	}
	checkNoGoroutineLeak(t, goroutines)
}

// TestPortfolioInterrupt: an already-fired base interrupt must stop all
// replicas promptly with Unsolved, and clearing it must let the same
// solver finish the job (budget-retry pattern used by internal/core).
func TestPortfolioInterrupt(t *testing.T) {
	goroutines := runtime.NumGoroutine()
	s := New()
	php(t, s, 7, 6)
	s.SetInterrupt(func() bool { return true })
	status, pst := s.SolvePortfolio(PortfolioOptions{Replicas: 3, MaxConcurrent: -1})
	if status != Unsolved {
		t.Fatalf("interrupted race = %v, want unsolved", status)
	}
	if pst.Winner != -1 {
		t.Fatalf("interrupted race reported winner %d", pst.Winner)
	}
	s.SetInterrupt(nil)
	if st, _ := s.SolvePortfolio(PortfolioOptions{Replicas: 3, MaxConcurrent: -1}); st != Unsat {
		t.Fatalf("resumed race = %v, want unsat", st)
	}
	checkNoGoroutineLeak(t, goroutines)
}

// TestPortfolioConflictBudget: replicas inherit the base conflict
// budget, so a tiny budget on a hard instance yields Unsolved — and the
// adopted replica's learning must survive into the retry.
func TestPortfolioConflictBudget(t *testing.T) {
	s := New()
	php(t, s, 8, 7)
	s.SetConflictBudget(5)
	if st, _ := s.SolvePortfolio(PortfolioOptions{Replicas: 2, MaxConcurrent: -1}); st != Unsolved {
		t.Fatalf("budgeted race = %v, want unsolved", st)
	}
	if got := s.Stats().Learned; got == 0 {
		t.Fatalf("no learning adopted from an exhausted race")
	}
	s.SetConflictBudget(0)
	if st, _ := s.SolvePortfolio(PortfolioOptions{Replicas: 2, MaxConcurrent: -1}); st != Unsat {
		t.Fatalf("unbudgeted retry = %v, want unsat", st)
	}
}

// TestPortfolioNoSharingAblation: the ablation path (diversification
// only) must stay sound.
func TestPortfolioNoSharingAblation(t *testing.T) {
	s := New()
	php(t, s, 6, 5)
	status, pst := s.SolvePortfolio(PortfolioOptions{Replicas: 3, NoSharing: true, MaxConcurrent: -1})
	if status != Unsat {
		t.Fatalf("no-sharing race = %v, want unsat", status)
	}
	if pst.Imported != 0 || pst.Exported != 0 {
		t.Fatalf("sharing disabled but counters moved: %+v", pst)
	}
}

// TestExchangeRing exercises the ring in isolation: self-filtering,
// cursor advancement, and overrun skipping.
func TestExchangeRing(t *testing.T) {
	r := newExchangeRing(4)
	var cursor uint64
	r.publish(0, []Lit{1, 2}, 2)
	r.publish(1, []Lit{3, 4}, 2)
	got := r.drain(&cursor, 0)
	if len(got) != 1 || got[0].from != 1 {
		t.Fatalf("drain = %+v, want one clause from replica 1", got)
	}
	if got := r.drain(&cursor, 0); len(got) != 0 {
		t.Fatalf("second drain not empty: %+v", got)
	}
	// Overrun: 6 more publishes into a cap-4 ring drop the oldest two.
	for i := 0; i < 6; i++ {
		r.publish(1, []Lit{Lit(10 + 2*i)}, 1)
	}
	got = r.drain(&cursor, 0)
	if len(got) != 4 {
		t.Fatalf("overrun drain = %d entries, want 4", len(got))
	}
	if got[0].lits[0] != Lit(14) {
		t.Fatalf("overrun did not skip to oldest retained entry: %+v", got)
	}
}

// TestExchangeRingConcurrent hammers the ring from several goroutines
// under -race to catch locking mistakes.
func TestExchangeRingConcurrent(t *testing.T) {
	r := newExchangeRing(64)
	var wg sync.WaitGroup
	for id := 0; id < 4; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			var cursor uint64
			for i := 0; i < 500; i++ {
				r.publish(id, []Lit{Lit(id), Lit(i % 7)}, 2)
				for _, e := range r.drain(&cursor, id) {
					if e.from == id {
						t.Errorf("drained own clause")
						return
					}
				}
			}
		}(id)
	}
	wg.Wait()
}

// TestPortfolioAfterSimplify: the race must compose with preprocessing
// — replicas clone the post-Simplify solver, share clauses over the
// same variable space, and the adopted model must cover eliminated
// variables via reconstruction.
func TestPortfolioAfterSimplify(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		serial := New()
		_, clauses := randomSeededCNF(t, serial, rand.New(rand.NewSource(500+seed)), 25, 80, 3)
		want := serial.Solve()

		s := New()
		vars, _ := randomSeededCNF(t, s, rand.New(rand.NewSource(500+seed)), 25, 80, 3)
		// Freeze a few variables like the encoder does for named nodes.
		for _, v := range vars[:5] {
			s.Freeze(v)
		}
		s.Simplify()
		got, _ := s.SolvePortfolio(PortfolioOptions{Replicas: 3, MaxConcurrent: -1})
		if got != want {
			t.Fatalf("seed %d: post-simplify portfolio=%v serial=%v", seed, got, want)
		}
		if got == Sat && !modelSatisfies(s, clauses) {
			t.Fatalf("seed %d: reconstructed portfolio model violates original clauses", seed)
		}
	}
}

// TestStrategyMatrix pins the diversification invariants: replica 0 is
// the baseline, names are unique within one cycle, and cycling beyond
// the matrix still differs from the archetype.
func TestStrategyMatrix(t *testing.T) {
	if strategies[0].name != "baseline" || strategies[0].varDecay != 0 {
		t.Fatalf("replica 0 must inherit the base configuration")
	}
	seen := map[string]bool{}
	for i := range strategies {
		st := strategyFor(i)
		if seen[st.name] {
			t.Fatalf("duplicate strategy name %q", st.name)
		}
		seen[st.name] = true
	}
	wrapped := strategyFor(len(strategies) + 1)
	if wrapped.name != strategies[1].name {
		t.Fatalf("cycling broken: got %q", wrapped.name)
	}
	if wrapped.varDecay >= strategies[1].varDecay {
		t.Fatalf("cycled replica not nudged: %v vs %v", wrapped.varDecay, strategies[1].varDecay)
	}
}

// TestPortfolioCappedAdmission pins the single-CPU degradation path:
// with MaxConcurrent 1, replica 0 (the baseline) searches alone, and a
// verdict releases the waiting replicas without ever starting them — no
// clone, no OnReplicaStart, no N-way time slice.
func TestPortfolioCappedAdmission(t *testing.T) {
	s := New()
	php(t, s, 6, 5)
	var mu sync.Mutex
	started := map[int]bool{}
	status, pst := s.SolvePortfolio(PortfolioOptions{
		Replicas:      4,
		MaxConcurrent: 1,
		OnReplicaStart: func(id int) {
			mu.Lock()
			started[id] = true
			mu.Unlock()
		},
	})
	if status != Unsat {
		t.Fatalf("capped race = %v, want unsat", status)
	}
	if pst.Winner != 0 || pst.Strategy != "baseline" {
		t.Fatalf("capped race must be won by the baseline replica: %+v", pst)
	}
	mu.Lock()
	defer mu.Unlock()
	if !started[0] {
		t.Fatalf("replica 0 never started")
	}
	if len(started) != 1 {
		t.Fatalf("replicas started after the verdict: %v", started)
	}
}
