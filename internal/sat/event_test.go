package sat

import "testing"

// TestEventHookRestarts pins the event-hook seam: a conflict-heavy
// unsat solve delivers restart events carrying the cumulative counters
// at each firing.
func TestEventHookRestarts(t *testing.T) {
	s := pigeonholeSolver(t, 7)
	var events []Event
	s.SetEventHook(func(e Event) { events = append(events, e) })
	if got := s.Solve(); got != Unsat {
		t.Fatalf("Solve = %v, want Unsat", got)
	}
	st := s.Stats()
	if st.Restarts == 0 {
		t.Skip("instance decided without restarting; nothing to observe")
	}
	var restarts uint64
	var lastConflicts uint64
	for _, e := range events {
		if e.Kind != EventRestart && e.Kind != EventReduce {
			t.Fatalf("unexpected event kind %v", e.Kind)
		}
		if e.Conflicts < lastConflicts {
			t.Fatalf("event conflicts went backwards: %d after %d", e.Conflicts, lastConflicts)
		}
		lastConflicts = e.Conflicts
		if e.Kind == EventRestart {
			restarts++
			if e.Restarts != restarts {
				t.Fatalf("restart event #%d carries Restarts=%d", restarts, e.Restarts)
			}
		}
	}
	if restarts != st.Restarts {
		t.Fatalf("observed %d restart events, solver counted %d", restarts, st.Restarts)
	}
}

// TestEventHookDisabled: a nil hook must not fire and must not change
// the verdict.
func TestEventHookDisabled(t *testing.T) {
	s := pigeonholeSolver(t, 6)
	s.SetEventHook(nil)
	if got := s.Solve(); got != Unsat {
		t.Fatalf("Solve = %v, want Unsat", got)
	}
}

// TestEventKindString pins the names the flight recorder stores.
func TestEventKindString(t *testing.T) {
	for kind, want := range map[EventKind]string{
		EventRestart: "restart",
		EventReduce:  "reduce",
		EventKind(0): "unknown",
	} {
		if got := kind.String(); got != want {
			t.Fatalf("EventKind(%d).String() = %q, want %q", kind, got, want)
		}
	}
}

// TestPortfolioPerReplicaStats: a portfolio race reports one
// ReplicaStats per replica with the deterministic strategy assignment,
// and the winner is flagged consistently with the aggregate fields.
func TestPortfolioPerReplicaStats(t *testing.T) {
	s := pigeonholeSolver(t, 6)
	status, pst := s.SolvePortfolio(PortfolioOptions{Replicas: 3})
	if status != Unsat {
		t.Fatalf("SolvePortfolio = %v, want Unsat", status)
	}
	if len(pst.PerReplica) != 3 {
		t.Fatalf("PerReplica = %d entries, want 3", len(pst.PerReplica))
	}
	winners := 0
	for i, rep := range pst.PerReplica {
		if rep.ID != i {
			t.Fatalf("PerReplica[%d].ID = %d", i, rep.ID)
		}
		if want := StrategyName(i); rep.Strategy != want {
			t.Fatalf("PerReplica[%d].Strategy = %q, want %q", i, rep.Strategy, want)
		}
		if rep.Winner {
			winners++
			if i != pst.Winner {
				t.Fatalf("winner flag on replica %d, aggregate says %d", i, pst.Winner)
			}
			if rep.Strategy != pst.Strategy {
				t.Fatalf("winner strategy %q != aggregate %q", rep.Strategy, pst.Strategy)
			}
		}
	}
	if pst.Winner >= 0 && winners != 1 {
		t.Fatalf("decided race flagged %d winners", winners)
	}
}
