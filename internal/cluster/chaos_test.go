package cluster

// The cluster chaos suite (make chaos-cluster): race-enabled proofs of
// the issue's acceptance criteria — a member killed mid-enumeration
// yields the identical vector set with zero duplicated and zero lost
// vectors and no leaked goroutines, and a partitioned member does not
// stop the coordinator from serving /v1/verify within the fleet's
// queue bounds.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/url"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"scadaver/internal/core"
	"scadaver/internal/faultinject"
	"scadaver/internal/obs"
	"scadaver/internal/powergrid"
	"scadaver/internal/scadanet"
	"scadaver/internal/serve"
	"scadaver/internal/synth"
)

// readStream splits an enumerate response into vector lines and the
// trailer (nil when the stream was truncated).
func readStream(t testing.TB, resp *http.Response) ([]core.ThreatVector, *serve.EnumerateTrailer) {
	t.Helper()
	defer resp.Body.Close()
	var vectors []core.ThreatVector
	var trailer *serve.EnumerateTrailer
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		if trailer != nil {
			t.Fatalf("line after trailer: %s", line)
		}
		var probe map[string]json.RawMessage
		if err := json.Unmarshal(line, &probe); err != nil {
			t.Fatalf("bad stream line %q: %v", line, err)
		}
		if _, isTrailer := probe["done"]; isTrailer {
			trailer = &serve.EnumerateTrailer{}
			if err := json.Unmarshal(line, trailer); err != nil {
				t.Fatal(err)
			}
			continue
		}
		var v core.ThreatVector
		if err := json.Unmarshal(line, &v); err != nil {
			t.Fatal(err)
		}
		vectors = append(vectors, v)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return vectors, trailer
}

func vectorSet(vs []core.ThreatVector) map[string]bool {
	set := make(map[string]bool, len(vs))
	for _, v := range vs {
		set[v.Key()] = true
	}
	return set
}

// runMemberKill is the node-kill survival scenario at one topology
// scale: the member serving an enumeration dies mid-stream (its
// response is cut), the coordinator carries its journal to the next
// ring owner as a fingerprint-bound checkpoint, and the client must
// still receive exactly the single-node vector set — every vector once,
// one trailer.
func runMemberKill(t *testing.T, cfg *scadanet.Config, q core.Query) {
	a, err := core.NewAnalyzer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := a.EnumerateThreats(q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) < 3 {
		t.Fatalf("topology yields only %d vectors; too small to kill mid-stream", len(want))
	}

	budget := serve.BudgetSpec{DeadlineMS: 20_000}
	memberOpts := func(o *serve.Options) {
		o.Configs = map[string]*scadanet.Config{"grid": cfg}
		o.CheckpointDir = t.TempDir()
		o.DefaultBudget = core.QueryBudget{Deadline: 20 * time.Second}
		o.MaxBudget = core.QueryBudget{Deadline: 30 * time.Second, Retries: 2}
	}
	_, m1, _ := newMember(t, cfg, memberOpts)
	_, m2, _ := newMember(t, cfg, memberOpts)

	faults := faultinject.New(1)
	reg := obs.NewRegistry()
	_, coord := newTestCoordinator(t, []Member{
		{Name: "m1", URL: m1.URL}, {Name: "m2", URL: m2.URL}},
		func(o *Options) {
			o.Configs = map[string]*scadanet.Config{"grid": cfg}
			o.Transport = faults.Transport(nil)
			o.Metrics = reg
		})

	// The kill: the serving member's response dies after roughly two
	// vector lines — enough for the coordinator to have journaled real
	// work, well short of the full set.
	firstLine, err := json.Marshal(want[0])
	if err != nil {
		t.Fatal(err)
	}
	faults.CutResponseOnce(int64(len(firstLine)*2) + 4)

	req := serve.EnumerateRequest{Config: "grid", Query: q, RequestID: "chaos-kill", Budget: budget}
	resp := postJSON(t, coord.URL+"/v1/enumerate", req)
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("enumerate through coordinator = %d, body %s", resp.StatusCode, raw)
	}
	vectors, trailer := readStream(t, resp)

	if got := faults.Counts().ResponseCuts; got != 1 {
		t.Fatalf("response cuts fired %d times, want exactly 1 — the kill never happened", got)
	}
	if trailer == nil || !trailer.Done {
		t.Fatalf("stream ended without a trailer (trailer %+v); the failover did not complete", trailer)
	}
	gotSet, wantSet := vectorSet(vectors), vectorSet(want)
	if len(vectors) != len(gotSet) {
		t.Fatalf("%d vectors streamed but only %d distinct: the handoff duplicated vectors", len(vectors), len(gotSet))
	}
	if len(gotSet) != len(wantSet) {
		t.Fatalf("cluster streamed %d distinct vectors, single node found %d", len(gotSet), len(wantSet))
	}
	for k := range wantSet {
		if !gotSet[k] {
			t.Fatalf("vector %s lost across the failover", k)
		}
	}
	if trailer.Vectors != len(wantSet) {
		t.Fatalf("trailer accounts %d vectors, want %d", trailer.Vectors, len(wantSet))
	}
	if trailer.Resumed == 0 {
		t.Fatal("trailer shows no resumed vectors; the handoff never carried the journal")
	}
	if carried := reg.Counter("scadaver_cluster_handoffs_total",
		map[string]string{"outcome": "carried"}); carried != 1 {
		t.Fatalf("handoffs carried = %v, want 1", carried)
	}
	if reg.Counter("scadaver_cluster_failovers_total", nil) == 0 {
		t.Fatal("no failover was counted")
	}
}

// TestClusterChaosMemberKillMidEnumeration proves node-kill survival on
// the fast fixture and that the whole exercise — members, coordinator,
// failover, handoff — leaks no goroutines.
func TestClusterChaosMemberKillMidEnumeration(t *testing.T) {
	before := runtime.NumGoroutine()
	t.Run("kill", func(t *testing.T) {
		runMemberKill(t, testConfig(t),
			core.Query{Property: core.Observability, Combined: true, K: 2})
	})
	// Every member drained, the coordinator closed: the goroutine count
	// must settle back to the baseline (small slack for the test
	// harness's own background goroutines).
	waitFor(t, 10*time.Second, func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= before+3
	})
}

// TestClusterChaosIEEE57MemberKill is the paper-scale kill: the IEEE
// 57-bus enumeration (the EXPERIMENTS.md campaign) interrupted by a
// node kill must still produce the identical vector set.
func TestClusterChaosIEEE57MemberKill(t *testing.T) {
	if testing.Short() {
		t.Skip("IEEE 57-bus enumeration is seconds-long; skipped in -short")
	}
	cfg, err := synth.Generate(synth.Params{
		Bus: powergrid.IEEE57(), Seed: 41, Hierarchy: 2, SecureFraction: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	runMemberKill(t, cfg,
		core.Query{Property: core.BadDataDetectability, Combined: true, K: 2, R: 1})
}

// TestClusterChaosPartitionFailover partitions the coordinator from one
// member (the member is alive; the path to it is not) and asserts the
// cluster keeps serving /v1/verify: the detector marks the unreachable
// member down, requests fail over, and the surviving member's bounded
// admission queue — not an unbounded backlog — absorbs the load.
func TestClusterChaosPartitionFailover(t *testing.T) {
	cfg := testConfig(t)
	memberOpts := func(o *serve.Options) {
		o.QueueDepth = 4
		o.Workers = 2
	}
	_, m1, _ := newMember(t, cfg, memberOpts)
	_, m2, m2reg := newMember(t, cfg, memberOpts)

	m1URL, err := url.Parse(m1.URL)
	if err != nil {
		t.Fatal(err)
	}
	faults := faultinject.New(1).RefuseHost(m1URL.Host)
	reg := obs.NewRegistry()
	_, coord := newTestCoordinator(t, []Member{
		{Name: "m1", URL: m1.URL}, {Name: "m2", URL: m2.URL}},
		func(o *Options) {
			o.Transport = faults.Transport(nil)
			o.Metrics = reg
			o.HeartbeatInterval = 10 * time.Millisecond
			o.Detector = DetectorOptions{Window: 8, Expected: 10 * time.Millisecond}
		})

	// The detector must notice the partition and name the member while
	// the coordinator stays ready on the survivor. Readiness may flap
	// while the detector's window is still filling (a handful of
	// samples makes a noisy phi fit, especially under -race load), so
	// unreadiness here is "not settled yet", not a failure — the exit
	// condition pins the steady state this test is about: ready AND the
	// partitioned member named.
	waitFor(t, 5*time.Second, func() bool {
		body := decodeBody[clusterReadyz](t, mustGet(t, coord.URL+"/readyz"))
		if !body.Ready {
			return false
		}
		for _, reason := range body.Reasons {
			if strings.Contains(reason, "m1") {
				return true
			}
		}
		return false
	})

	// A concurrent burst while partitioned: every response must be a
	// verdict (200) or a bounded-queue shed (429) — never a hang, never
	// an unbounded backlog.
	const burst = 12
	codes := make([]int, burst)
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := serve.VerifyRequest{Config: "grid",
				Query: core.Query{Property: core.Observability, Combined: true, K: i % 3}}
			resp := postJSON(t, coord.URL+"/v1/verify", req)
			io.Copy(io.Discard, resp.Body) //nolint:errcheck
			resp.Body.Close()
			codes[i] = resp.StatusCode
		}(i)
	}
	wg.Wait()
	served := 0
	for i, code := range codes {
		switch code {
		case http.StatusOK:
			served++
		case http.StatusTooManyRequests:
			// bounded shed — the memory bound holding under pressure
		default:
			t.Fatalf("burst request %d = %d; want 200 or 429", i, code)
		}
	}
	if served == 0 {
		t.Fatal("no request was served during the partition")
	}
	// The survivor's queue never grew past its bound: depth is a gauge
	// maintained by the bounded queue itself.
	if depth := m2reg.Gauge("scadaver_queue_depth", nil); depth > 4 {
		t.Fatalf("survivor queue depth %v breached its bound 4", depth)
	}
	// Nothing ever got through the partition.
	if got := faults.Counts().RefusedConnects; got == 0 {
		t.Fatal("the partition refused no connections; the test exercised nothing")
	}
}

// TestClusterChaosCertifiedCorruptMember routes a verification through
// the coordinator to a certifying member whose solver is armed to flip
// its first verdict, and asserts the full certification story survives
// the relay: the member quarantines the lie, re-solves pristinely, and
// the coordinator hands the client the correct verdict with the
// certified attestation intact (member bodies are relayed verbatim).
func TestClusterChaosCertifiedCorruptMember(t *testing.T) {
	cfg := testConfig(t)
	a, err := core.NewAnalyzer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Ground truth: the largest budget whose pristine verdict is Unsat,
	// so the flip manufactures a spurious threat vector.
	var q core.Query
	var want *core.Result
	for k := 0; k <= 8; k++ {
		probe := core.Query{Property: core.Observability, Combined: true, K: k}
		res, err := a.Verify(probe)
		if err != nil {
			t.Fatal(err)
		}
		if res.Resilient() {
			q, want = probe, res
		}
	}
	if want == nil {
		t.Fatal("test config has no resilient budget within k <= 8")
	}

	// One member only, so the ring routes the query to the corrupted
	// certifying node by construction.
	faults := faultinject.New(1).FlipVerdict(0)
	_, m1, m1reg := newMember(t, cfg, func(o *serve.Options) {
		o.Certify = true
		o.Faults = faults
	})
	_, coord := newTestCoordinator(t, []Member{{Name: "m1", URL: m1.URL}}, nil)

	resp := postJSON(t, coord.URL+"/v1/verify", serve.VerifyRequest{Config: "grid", Query: q})
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("verify through coordinator = %d, body %s", resp.StatusCode, raw)
	}
	vr := decodeBody[serve.VerifyResponse](t, resp)
	if got := faults.Counts().VerdictFlips; got != 1 {
		t.Fatalf("verdict flips = %d, want exactly 1 — the corruption never fired", got)
	}
	res := vr.Result
	if res == nil {
		t.Fatal("coordinator relayed no result")
	}
	if res.Status != want.Status || vr.Resilient != want.Resilient() {
		t.Fatalf("client saw (%v, resilient=%v), ground truth (%v, resilient=%v) — the flipped verdict escaped the cluster",
			res.Status, vr.Resilient, want.Status, want.Resilient())
	}
	if !res.Quarantined {
		t.Fatal("the flipped verdict was not quarantined on the member")
	}
	if !vr.Certified || !res.Certified {
		t.Fatalf("attestation lost across the relay (response %v, result %v): %s",
			vr.Certified, res.Certified, res.CertifyError)
	}
	if res.CertifyError == "" {
		t.Fatal("quarantined result carries no audit-failure cause")
	}
	if vr.ProofClauses == 0 {
		t.Fatal("certified Unsat verdict relayed zero proof clauses")
	}
	pl := map[string]string{"property": q.Property.String()}
	if got := m1reg.Counter("scadaver_certify_quarantine_total", pl); got != 1 {
		t.Fatalf("member quarantine counter = %v, want 1", got)
	}
	if got := m1reg.Counter("scadaver_certify_divergence_total", pl); got != 1 {
		t.Fatalf("member divergence counter = %v, want 1", got)
	}
}
