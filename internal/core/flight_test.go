package core

import (
	"path/filepath"
	"strings"
	"testing"

	"scadaver/internal/faultinject"
	"scadaver/internal/obs"
	"scadaver/internal/powergrid"
	"scadaver/internal/sat"
)

// TestFlightVerifyRegisters: a verified query appears in the registry's
// completed ring with its identity, final phase and status, and the
// analyzer's current-query slot is cleared.
func TestFlightVerifyRegisters(t *testing.T) {
	cfg := synthConfig(t, powergrid.Case5(), 7, 1)
	qreg := obs.NewQueryRegistry(8, 8)
	a, err := NewAnalyzer(cfg, WithQueryRegistry(qreg))
	if err != nil {
		t.Fatal(err)
	}
	q := Query{Property: Observability, K: 1, Combined: true}
	res, err := a.Verify(q)
	if err != nil {
		t.Fatal(err)
	}
	if a.qs != nil {
		t.Fatal("current-query slot not cleared after Verify")
	}
	if n := len(qreg.Active()); n != 0 {
		t.Fatalf("active = %d after completion", n)
	}
	comp := qreg.Completed()
	if len(comp) != 1 {
		t.Fatalf("completed = %d entries, want 1", len(comp))
	}
	got := comp[0]
	if got.Property != "observability" || got.Budget != "k=1" {
		t.Fatalf("identity: %+v", got)
	}
	if got.Status != res.Status.String() {
		t.Fatalf("status %q, result says %q", got.Status, res.Status)
	}
	if !got.Done || got.Fingerprint == "" {
		t.Fatalf("completion fields: done=%v fingerprint=%q", got.Done, got.Fingerprint)
	}
}

// TestFlightExhaustionAppendsContext: with a registry armed, budget
// exhaustion appends the flight record to FailureReason (prefixed by
// the bare reason) and marks the exhaustion in the event ring. The
// bare-constant contract without a registry is covered by
// TestBudgetConflictExhaustion.
func TestFlightExhaustionAppendsContext(t *testing.T) {
	cfg := synthConfig(t, powergrid.IEEE14(), 41, 2)
	probe, err := NewAnalyzer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	q, _ := findConflictHeavyQuery(t, probe, 8)

	qreg := obs.NewQueryRegistry(8, 8)
	a, err := NewAnalyzer(cfg,
		WithQueryRegistry(qreg),
		WithBudget(QueryBudget{Conflicts: 1, Retries: 1}))
	if err != nil {
		t.Fatal(err)
	}
	res, err := a.Verify(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != sat.Unsolved {
		t.Fatalf("status = %v, want Unsolved", res.Status)
	}
	if !strings.HasPrefix(res.FailureReason, ReasonConflicts) {
		t.Fatalf("reason %q does not start with the bare constant", res.FailureReason)
	}
	if !strings.Contains(res.FailureReason, "[flight:") {
		t.Fatalf("reason %q carries no flight context", res.FailureReason)
	}
	comp := qreg.Completed()
	if len(comp) != 1 {
		t.Fatalf("completed = %d", len(comp))
	}
	var kinds []string
	for _, ev := range comp[0].Events {
		kinds = append(kinds, ev.Kind)
	}
	joined := strings.Join(kinds, " ")
	if !strings.Contains(joined, "retry") || !strings.Contains(joined, "exhausted") {
		t.Fatalf("flight events = %v, want retry + exhausted", kinds)
	}
}

// TestFlightInjectedStall: a fault-injected stall surfaces in the
// registry with the stall reason plus flight context.
func TestFlightInjectedStall(t *testing.T) {
	cfg := synthConfig(t, powergrid.IEEE14(), 41, 2)
	probe, err := NewAnalyzer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	q, _ := findConflictHeavyQuery(t, probe, 8)

	qreg := obs.NewQueryRegistry(8, 8)
	a, err := NewAnalyzer(cfg,
		WithQueryRegistry(qreg),
		WithFaults(faultinject.New(1).StallSolverAfter(3)))
	if err != nil {
		t.Fatal(err)
	}
	res, err := a.Verify(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != sat.Unsolved {
		t.Fatalf("status = %v, want Unsolved", res.Status)
	}
	if !strings.HasPrefix(res.FailureReason, ReasonInjectedStall) {
		t.Fatalf("reason = %q", res.FailureReason)
	}
	comp := qreg.Completed()
	if len(comp) != 1 || comp[0].FailureReason != res.FailureReason {
		t.Fatalf("registry reason %+v vs result %q", comp, res.FailureReason)
	}
}

// TestFlightEnumerationRegisters: one registry entry spans a whole
// enumeration, completes as done, and records checkpoint flushes.
func TestFlightEnumerationRegisters(t *testing.T) {
	cfg := synthConfig(t, powergrid.Case5(), 7, 1)
	qreg := obs.NewQueryRegistry(8, 32)
	a, err := NewAnalyzer(cfg, WithQueryRegistry(qreg))
	if err != nil {
		t.Fatal(err)
	}
	ck, err := OpenCheckpoint(filepath.Join(t.TempDir(), "enum.jsonl"), CheckpointKindEnumerate, "fp-flight")
	if err != nil {
		t.Fatal(err)
	}
	vs, err := a.EnumerateThreatsResumable(Query{Property: Observability, K: 1, Combined: true}, 4, ck)
	if err != nil {
		t.Fatal(err)
	}
	comp := qreg.Completed()
	if len(comp) != 1 {
		t.Fatalf("completed = %d entries, want 1 for the whole enumeration", len(comp))
	}
	got := comp[0]
	if got.Phase != "enumerate" || got.Status != "done" {
		t.Fatalf("enumeration entry: %+v", got)
	}
	if len(vs) > 0 {
		var flushes int
		for _, ev := range got.Events {
			if ev.Kind == "checkpoint" {
				flushes++
			}
		}
		if flushes != len(vs) {
			t.Fatalf("checkpoint events = %d, vectors = %d", flushes, len(vs))
		}
	}
}

// TestFlightSweepRegisters: every sweep iteration is its own registry
// entry (phase/decode visible per query).
func TestFlightSweepRegisters(t *testing.T) {
	cfg := synthConfig(t, powergrid.Case5(), 7, 1)
	qreg := obs.NewQueryRegistry(16, 8)
	a, err := NewAnalyzer(cfg, WithQueryRegistry(qreg))
	if err != nil {
		t.Fatal(err)
	}
	sw, err := a.NewSweep(Observability, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sw.VerifyRange(2, nil); err != nil {
		t.Fatal(err)
	}
	if got := len(qreg.Completed()); got != 3 {
		t.Fatalf("completed = %d entries, want 3 (k=0..2)", got)
	}
}

// TestFlightNilRegistryZeroChange: without a registry the analyzer's
// behavior is bit-identical — no registration, bare failure reasons —
// which the budget/chaos suites pin exhaustively; here we just pin that
// no hook state leaks into the solver.
func TestFlightNilRegistryZeroChange(t *testing.T) {
	cfg := synthConfig(t, powergrid.Case5(), 7, 1)
	a, err := NewAnalyzer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.queries != nil || a.qs != nil {
		t.Fatal("registry state set without WithQueryRegistry")
	}
	res, err := a.Verify(Query{Property: Observability, K: 1, Combined: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.FailureReason != "" && strings.Contains(res.FailureReason, "[flight:") {
		t.Fatalf("flight context leaked without a registry: %q", res.FailureReason)
	}
}
