package main

import (
	"strings"
	"testing"
)

func TestRunCase(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-fig", "case"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Case study", "Fig. 3", "Fig. 4", "threat space"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestRun7a(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-fig", "7a", "-inputs", "1", "-runs", "1"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Fig 7(a)") {
		t.Fatalf("output: %s", sb.String())
	}
}

func TestRunSweep(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-fig", "sweep", "-bus", "ieee14", "-maxk", "2", "-workers", "4"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"k-sweep campaign: ieee14", "4 workers", "campaign wall time"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestRunUnknownFigure(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-fig", "9z"}, &sb); err == nil {
		t.Fatal("unknown figure must error")
	}
}
