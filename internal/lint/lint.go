// Package lint statically checks SCADA configurations for the
// misconfiguration classes the paper names as the first cause of
// dependability threats (Section II-B): protocol inconsistencies between
// communicating devices, one-sided or broken cryptographic
// configurations, unreachable field devices, unassigned or doubly
// assigned measurements, and missing redundancy (critical measurements,
// single points of failure).
package lint

import (
	"fmt"
	"sort"
	"strings"

	"scadaver/internal/scadanet"
	"scadaver/internal/secpolicy"
)

// Severity grades a finding.
type Severity int

// Severities, most severe last.
const (
	Info Severity = iota + 1
	Warning
	Error
)

// String implements fmt.Stringer.
func (s Severity) String() string {
	switch s {
	case Info:
		return "info"
	case Warning:
		return "warning"
	case Error:
		return "error"
	}
	return "unknown"
}

// Code identifies a finding class.
type Code string

// Finding classes.
const (
	CodeProtocolMismatch Code = "protocol-mismatch"
	CodeCryptoMismatch   Code = "crypto-mismatch"
	CodeBrokenCrypto     Code = "broken-crypto"
	CodeWeakCrypto       Code = "weak-crypto"
	CodeNoIntegrity      Code = "no-integrity"
	CodeUnreachableIED   Code = "unreachable-ied"
	CodeIdleIED          Code = "idle-ied"
	CodeUnassignedMsr    Code = "unassigned-measurement"
	CodeDuplicateMsr     Code = "duplicate-measurement"
	CodeSinglePointRTU   Code = "single-point-rtu"
	CodeSingleLinkCut    Code = "single-link-cut"
	CodeCriticalMsr      Code = "critical-measurement"
	CodeLinkDown         Code = "link-down"
	CodeDeviceDown       Code = "device-down"
)

// Finding is one diagnostic.
type Finding struct {
	Code     Code
	Severity Severity
	Device   scadanet.DeviceID // 0 when not device-specific
	Link     scadanet.LinkID   // 0 when not link-specific
	Message  string
}

// String implements fmt.Stringer.
func (f Finding) String() string {
	return fmt.Sprintf("%s [%s] %s", f.Severity, f.Code, f.Message)
}

// Report is the ordered finding list of one lint run.
type Report struct {
	Findings []Finding
}

// HasErrors reports whether any Error-severity finding exists.
func (r *Report) HasErrors() bool {
	for _, f := range r.Findings {
		if f.Severity == Error {
			return true
		}
	}
	return false
}

// ByCode returns the findings of one class.
func (r *Report) ByCode(c Code) []Finding {
	var out []Finding
	for _, f := range r.Findings {
		if f.Code == c {
			out = append(out, f)
		}
	}
	return out
}

// String renders the report, one finding per line.
func (r *Report) String() string {
	if len(r.Findings) == 0 {
		return "no findings\n"
	}
	var sb strings.Builder
	for _, f := range r.Findings {
		sb.WriteString(f.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Check lints a configuration under a policy (nil = default).
func Check(cfg *scadanet.Config, policy *secpolicy.Policy) *Report {
	if policy == nil {
		policy = secpolicy.Default()
	}
	rep := &Report{}
	add := func(f Finding) { rep.Findings = append(rep.Findings, f) }

	// Device-level checks.
	for _, d := range cfg.Net.Devices() {
		if d.Down {
			add(Finding{
				Code: CodeDeviceDown, Severity: Warning, Device: d.ID,
				Message: fmt.Sprintf("%v %d is configured as down", d.Kind, d.ID),
			})
		}
		for _, p := range d.Profiles {
			if policy.Broken(p.Algo) {
				add(Finding{
					Code: CodeBrokenCrypto, Severity: Error, Device: d.ID,
					Message: fmt.Sprintf("device %d advertises broken algorithm %s", d.ID, p),
				})
			}
		}
	}

	// Link-level checks.
	for _, l := range cfg.Net.Links() {
		if l.Down {
			add(Finding{
				Code: CodeLinkDown, Severity: Warning, Link: l.ID,
				Message: fmt.Sprintf("link %d (%d-%d) is configured as down", l.ID, l.A, l.B),
			})
		}
		protoOK, cryptoOK := cfg.Net.HopPairing(l)
		if !protoOK {
			add(Finding{
				Code: CodeProtocolMismatch, Severity: Error, Link: l.ID,
				Message: fmt.Sprintf("devices %d and %d share no communication protocol", l.A, l.B),
			})
		}
		if !cryptoOK {
			add(Finding{
				Code: CodeCryptoMismatch, Severity: Error, Link: l.ID,
				Message: fmt.Sprintf("devices %d and %d cannot negotiate a crypto profile", l.A, l.B),
			})
		}
		for _, p := range l.Profiles {
			if policy.Broken(p.Algo) {
				add(Finding{
					Code: CodeBrokenCrypto, Severity: Error, Link: l.ID,
					Message: fmt.Sprintf("link %d (%d-%d) uses broken algorithm %s", l.ID, l.A, l.B, p),
				})
			} else if policy.Judge([]secpolicy.Profile{p}) == 0 {
				add(Finding{
					Code: CodeWeakCrypto, Severity: Warning, Link: l.ID,
					Message: fmt.Sprintf("link %d (%d-%d): profile %s grants no capability (key too short?)", l.ID, l.A, l.B, p),
				})
			}
		}
		caps := cfg.Net.HopCaps(l, policy)
		if cryptoOK && !caps.Has(secpolicy.Authenticates|secpolicy.IntegrityProtects) {
			add(Finding{
				Code: CodeNoIntegrity, Severity: Warning, Link: l.ID,
				Message: fmt.Sprintf("link %d (%d-%d) is not authenticated and integrity protected (caps: %v)", l.ID, l.A, l.B, caps),
			})
		}
	}

	// Reachability and measurement assignment.
	assigned := map[int][]scadanet.DeviceID{}
	for _, d := range cfg.Net.DevicesOfKind(scadanet.IED) {
		if len(cfg.Net.Paths(d.ID, 0)) == 0 {
			add(Finding{
				Code: CodeUnreachableIED, Severity: Error, Device: d.ID,
				Message: fmt.Sprintf("IED %d has no path to the MTU", d.ID),
			})
		}
		zs := cfg.Net.MeasurementsOf(d.ID)
		if len(zs) == 0 {
			add(Finding{
				Code: CodeIdleIED, Severity: Info, Device: d.ID,
				Message: fmt.Sprintf("IED %d transmits no measurements", d.ID),
			})
		}
		for _, z := range zs {
			assigned[z] = append(assigned[z], d.ID)
		}
	}
	for z := 1; z <= cfg.Msrs.Len(); z++ {
		switch senders := assigned[z]; {
		case len(senders) == 0:
			add(Finding{
				Code: CodeUnassignedMsr, Severity: Warning,
				Message: fmt.Sprintf("measurement z%d is not transmitted by any IED", z),
			})
		case len(senders) > 1:
			add(Finding{
				Code: CodeDuplicateMsr, Severity: Info,
				Message: fmt.Sprintf("measurement z%d is transmitted by %d IEDs %v", z, len(senders), senders),
			})
		}
	}

	// Redundancy: RTUs that are articulation points for some IED's
	// delivery (their failure disconnects the IED entirely).
	for _, r := range cfg.Net.DevicesOfKind(scadanet.RTU) {
		var cut []scadanet.DeviceID
		for _, d := range cfg.Net.DevicesOfKind(scadanet.IED) {
			paths := cfg.Net.Paths(d.ID, 0)
			if len(paths) == 0 {
				continue
			}
			all := true
			for _, p := range paths {
				through := false
				for _, l := range p {
					if l.A == r.ID || l.B == r.ID {
						through = true
						break
					}
				}
				if !through {
					all = false
					break
				}
			}
			if all {
				cut = append(cut, d.ID)
			}
		}
		if len(cut) > 0 {
			add(Finding{
				Code: CodeSinglePointRTU, Severity: Warning, Device: r.ID,
				Message: fmt.Sprintf("RTU %d is a single point of failure for IEDs %v", r.ID, cut),
			})
		}
	}

	// Link redundancy: IEDs whose delivery hangs on a single link
	// (min-cut 1 over the usable topology).
	for _, d := range cfg.Net.DevicesOfKind(scadanet.IED) {
		if len(cfg.Net.Paths(d.ID, 0)) == 0 {
			continue // already reported as unreachable
		}
		if c := cfg.Net.LinkMinCut(d.ID, nil); c == 1 {
			add(Finding{
				Code: CodeSingleLinkCut, Severity: Info, Device: d.ID,
				Message: fmt.Sprintf("IED %d depends on a single-link cut (link min-cut 1)", d.ID),
			})
		}
	}

	// Critical measurements: states covered by exactly one measurement
	// (bad data on them is undetectable, per the paper's Section III-E).
	cover := make([]int, cfg.Msrs.NStates)
	for z := 0; z < cfg.Msrs.Len(); z++ {
		if len(assigned[z+1]) == 0 {
			continue
		}
		for _, x := range cfg.Msrs.StateSet(z) {
			cover[x]++
		}
	}
	for x, c := range cover {
		if c == 1 {
			add(Finding{
				Code: CodeCriticalMsr, Severity: Warning,
				Message: fmt.Sprintf("state %d is covered by a single transmitted measurement (critical; bad data undetectable)", x+1),
			})
		}
	}

	sort.SliceStable(rep.Findings, func(i, j int) bool {
		return rep.Findings[i].Severity > rep.Findings[j].Severity
	})
	return rep
}
