package serve

// Live query introspection: GET /v1/queries renders the registry's
// active and recently-completed queries, and GET /v1/queries/{id}/watch
// streams JSONL progress snapshots of one query until it completes.
// Both routes bypass the admission pipeline — they are how an operator
// looks inside the service exactly when it is shedding load — and both
// are bounded: the queries table by the registry's rings, a watch by
// the snapshot cadence and the server's request timeout.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"scadaver/internal/obs"
)

// QueriesResponse is the GET /v1/queries body: in-flight queries in id
// order and completed ones newest first (bounded by QueryHistory).
type QueriesResponse struct {
	Active    []obs.QuerySnapshot `json:"active"`
	Completed []obs.QuerySnapshot `json:"completed"`
}

// Watch cadence bounds: the snapshot interval a client may request.
const (
	defaultWatchInterval = 200 * time.Millisecond
	minWatchInterval     = 50 * time.Millisecond
	maxWatchInterval     = 5 * time.Second
)

func (s *Server) handleQueries(w http.ResponseWriter, _ *http.Request) {
	start := time.Now()
	s.respond(w, "queries", start, http.StatusOK, QueriesResponse{
		Active:    s.queries.Active(),
		Completed: s.queries.Completed(),
	})
}

// handleQueryWatch streams JSONL QuerySnapshot lines for one query
// until it completes, the client disconnects, or the watch outlives the
// server's request timeout (a hard bound against orphaned streams).
// The final line has done=true; an id that is neither active nor in the
// completed ring is a 404.
func (s *Server) handleQueryWatch(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	const route = "watch"
	id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
	if err != nil {
		s.respond(w, route, start, http.StatusBadRequest, fmt.Errorf("bad query id %q", r.PathValue("id")))
		return
	}
	interval := defaultWatchInterval
	if v := r.URL.Query().Get("interval"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil {
			s.respond(w, route, start, http.StatusBadRequest, fmt.Errorf("bad interval %q", v))
			return
		}
		interval = min(max(d, minWatchInterval), maxWatchInterval)
	}
	snap, ok := s.queries.Get(id)
	if !ok {
		s.respond(w, route, start, http.StatusNotFound, fmt.Errorf("unknown query %d", id))
		return
	}

	flusher, _ := w.(http.Flusher)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	giveUp := time.NewTimer(s.opts.RequestTimeout)
	defer giveUp.Stop()
	codeLabel := strconv.Itoa(http.StatusOK)
	for {
		if err := enc.Encode(snap); err != nil {
			codeLabel += "-truncated" // client gone mid-stream
			break
		}
		if flusher != nil {
			flusher.Flush()
		}
		if snap.Done {
			break
		}
		select {
		case <-r.Context().Done():
			codeLabel += "-truncated"
			s.account(route, start, codeLabel)
			return
		case <-giveUp.C:
			codeLabel += "-timeout"
			s.account(route, start, codeLabel)
			return
		case <-time.After(interval):
		}
		snap, ok = s.queries.Get(id)
		if !ok {
			// Evicted from the completed ring between snapshots under
			// churn; the stream simply ends without a done line.
			codeLabel += "-evicted"
			break
		}
	}
	s.account(route, start, codeLabel)
}

// flightLine renders a flight-event ring as one compact line for the
// slow-query log.
func flightLine(events []obs.FlightEvent, dropped uint64) string {
	var b strings.Builder
	if dropped > 0 {
		fmt.Fprintf(&b, "+%d earlier", dropped)
	}
	for _, ev := range events {
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s@%d", ev.Kind, ev.Conflicts)
		if ev.Detail != "" {
			fmt.Fprintf(&b, "(%s)", ev.Detail)
		}
	}
	return b.String()
}
