package main

import (
	"bytes"
	"net/http"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"
)

func TestVersionFlag(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-version"}, &out, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "scadaver") {
		t.Fatalf("version output %q does not name the module", out.String())
	}
}

func TestRequiresConfig(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, &out, nil); err == nil {
		t.Fatal("run without -config succeeded")
	}
}

func TestRejectsBadConfigSpec(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-config", "=oops"}, &out, nil); err == nil {
		t.Fatal("run accepted an empty config name")
	}
	if err := run([]string{"-config", "grid=/does/not/exist.scada"}, &out, nil); err == nil {
		t.Fatal("run accepted a missing config file")
	}
}

// TestServeAndGracefulShutdown boots the real binary path end to end:
// parse a shipped configuration, serve on an ephemeral port, answer a
// verification request, then drain cleanly on SIGTERM.
func TestServeAndGracefulShutdown(t *testing.T) {
	var out bytes.Buffer
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-addr", "127.0.0.1:0",
			"-config", "grid=../../testdata/case5bus.scada",
			"-drain-timeout", "10s",
		}, &out, ready)
	}()

	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("server exited before ready: %v (output %q)", err, out.String())
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}
	base := "http://" + addr

	for _, path := range []string{"/healthz", "/readyz", "/metrics"} {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s = %d", path, resp.StatusCode)
		}
	}

	body := strings.NewReader(`{"config":"grid","query":{"property":"observability","combined":true,"k":0}}`)
	resp, err := http.Post(base+"/v1/verify", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/verify = %d", resp.StatusCode)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run after SIGTERM: %v (output %q)", err, out.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("server did not exit after SIGTERM")
	}
	if !strings.Contains(out.String(), "drained") {
		t.Fatalf("output %q does not report a drain", out.String())
	}
}

func TestRejectsBadMemberSpec(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-coordinator", "-member", "no-equals"}, &out, nil); err == nil {
		t.Fatal("run accepted a -member without NAME=URL")
	}
	if err := run([]string{"-coordinator", "-member", "m1=not a url"}, &out, nil); err == nil {
		t.Fatal("run accepted a malformed member URL")
	}
}

// TestClusterModeEndToEnd boots the real cluster topology through the
// binary's entry point: one member started standalone, a coordinator
// fronting it, and a second member that discovers the coordinator with
// -join. A verification request through the coordinator must succeed,
// the membership API must show both nodes, and one SIGTERM must wind
// the whole fleet down cleanly.
func TestClusterModeEndToEnd(t *testing.T) {
	waitReady := func(name string, ready chan string, done chan error) string {
		t.Helper()
		select {
		case addr := <-ready:
			return addr
		case err := <-done:
			t.Fatalf("%s exited before ready: %v", name, err)
		case <-time.After(10 * time.Second):
			t.Fatalf("%s never became ready", name)
		}
		return ""
	}

	var m1Out, m2Out, coordOut bytes.Buffer
	m1Ready, m1Done := make(chan string, 1), make(chan error, 1)
	go func() {
		m1Done <- run([]string{
			"-addr", "127.0.0.1:0",
			"-config", "grid=../../testdata/case5bus.scada",
			"-drain-timeout", "10s",
		}, &m1Out, m1Ready)
	}()
	m1Addr := waitReady("member 1", m1Ready, m1Done)

	coordReady, coordDone := make(chan string, 1), make(chan error, 1)
	go func() {
		coordDone <- run([]string{
			"-addr", "127.0.0.1:0",
			"-coordinator",
			"-member", "m1=http://" + m1Addr,
			"-heartbeat", "50ms",
			"-config", "grid=../../testdata/case5bus.scada",
		}, &coordOut, coordReady)
	}()
	coordAddr := waitReady("coordinator", coordReady, coordDone)
	base := "http://" + coordAddr

	m2Ready, m2Done := make(chan string, 1), make(chan error, 1)
	go func() {
		m2Done <- run([]string{
			"-addr", "127.0.0.1:0",
			"-config", "grid=../../testdata/case5bus.scada",
			"-join", base,
			"-node-name", "m2",
			"-drain-timeout", "10s",
		}, &m2Out, m2Ready)
	}()
	waitReady("member 2", m2Ready, m2Done)

	// The joined member must appear in the coordinator's membership.
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(base + "/v1/cluster/members")
		if err != nil {
			t.Fatal(err)
		}
		var raw bytes.Buffer
		raw.ReadFrom(resp.Body) //nolint:errcheck
		resp.Body.Close()
		if strings.Contains(raw.String(), `"m2"`) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("member m2 never joined; membership = %s (m2 output %q)", raw.String(), m2Out.String())
		}
		time.Sleep(50 * time.Millisecond)
	}

	for _, path := range []string{"/healthz", "/readyz", "/metrics"} {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("coordinator %s = %d", path, resp.StatusCode)
		}
	}

	body := strings.NewReader(`{"config":"grid","query":{"property":"observability","combined":true,"k":0}}`)
	resp, err := http.Post(base+"/v1/verify", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/verify through the coordinator = %d", resp.StatusCode)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	for name, done := range map[string]chan error{"member 1": m1Done, "member 2": m2Done, "coordinator": coordDone} {
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("%s exited with %v", name, err)
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("%s did not exit after SIGTERM", name)
		}
	}
	if !strings.Contains(coordOut.String(), "coordinator exited") {
		t.Fatalf("coordinator output %q does not report a clean exit", coordOut.String())
	}
}
