package faultinject

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func newEchoServer(t *testing.T, body string) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, body) //nolint:errcheck
	}))
	t.Cleanup(ts.Close)
	return ts
}

func TestTransportNilPlanPassesThrough(t *testing.T) {
	var f *Faults
	if got := f.Transport(http.DefaultTransport); got != http.DefaultTransport {
		t.Fatal("nil plan must return the base transport unchanged")
	}
}

func TestTransportFailConnects(t *testing.T) {
	ts := newEchoServer(t, "ok")
	f := New(1).FailConnects(1) // the second forward fails
	client := &http.Client{Transport: f.Transport(nil)}

	for i, wantErr := range []bool{false, true, false} {
		resp, err := client.Get(ts.URL)
		if wantErr {
			if err == nil || !errors.Is(err, ErrInjected) {
				t.Fatalf("forward %d: err = %v, want ErrInjected", i, err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("forward %d: %v", i, err)
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
	}
	if got := f.Counts().RefusedConnects; got != 1 {
		t.Fatalf("RefusedConnects = %d, want 1", got)
	}
}

func TestTransportRefuseAndHealHost(t *testing.T) {
	ts := newEchoServer(t, "ok")
	host := strings.TrimPrefix(ts.URL, "http://")
	f := New(1).RefuseHost(host)
	client := &http.Client{Transport: f.Transport(nil)}

	if _, err := client.Get(ts.URL); err == nil || !errors.Is(err, ErrInjected) {
		t.Fatalf("partitioned host: err = %v, want ErrInjected", err)
	}
	f.HealHost(host)
	resp, err := client.Get(ts.URL)
	if err != nil {
		t.Fatalf("healed host: %v", err)
	}
	resp.Body.Close()
}

func TestTransportDelayForwards(t *testing.T) {
	ts := newEchoServer(t, "ok")
	f := New(1).DelayForwards(30 * time.Millisecond)
	client := &http.Client{Transport: f.Transport(nil)}

	start := time.Now()
	resp, err := client.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if elapsed := time.Since(start); elapsed < 30*time.Millisecond {
		t.Fatalf("forward returned in %v, want >= 30ms injected latency", elapsed)
	}
}

func TestTransportCutResponseOnce(t *testing.T) {
	const body = "0123456789abcdef"
	ts := newEchoServer(t, body)
	f := New(1).CutResponseOnce(4)
	client := &http.Client{Transport: f.Transport(nil)}

	resp, err := client.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("cut response read error = %v, want ErrInjected", err)
	}
	if len(got) > 4 {
		t.Fatalf("cut response delivered %d bytes, bound is 4", len(got))
	}

	// One-shot: the retry streams clean.
	resp, err = client.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	got, err = io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || string(got) != body {
		t.Fatalf("post-cut response = %q, %v; want full body", got, err)
	}
	if c := f.Counts().ResponseCuts; c != 1 {
		t.Fatalf("ResponseCuts = %d, want 1", c)
	}
}
