package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock advances a fixed step on every reading, making trace
// timestamps (and therefore whole JSONL records) deterministic.
func fakeClock(step time.Duration) func() time.Time {
	base := time.Unix(1000, 0)
	n := -1
	return func() time.Time {
		n++
		return base.Add(time.Duration(n) * step)
	}
}

// TestTracerGoldenJSONL pins the exact JSONL output of a nested trace:
// the header, begin/end bracketing, parent ids, events, and end-record
// annotations. The fake clock ticks 1ms per reading.
func TestTracerGoldenJSONL(t *testing.T) {
	var buf bytes.Buffer
	tr := newTracer(&buf, fakeClock(time.Millisecond))

	root := tr.Start("campaign", A("system", "ieee57"))
	q := root.Start("query", A("k", 2))
	s := q.Start("solve")
	s.Event("progress", A("conflicts", 100))
	s.Annotate(A("status", "unsat"))
	s.End()
	q.End()
	root.End()

	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		`{"ev":"trace","name":"scadaver-trace/1","tNanos":0,"attrs":{"startUnixNano":1000000000000}}`,
		`{"ev":"begin","id":1,"name":"campaign","tNanos":1000000,"attrs":{"system":"ieee57"}}`,
		`{"ev":"begin","id":2,"parent":1,"name":"query","tNanos":2000000,"attrs":{"k":2}}`,
		`{"ev":"begin","id":3,"parent":2,"name":"solve","tNanos":3000000}`,
		`{"ev":"event","span":3,"name":"progress","tNanos":4000000,"attrs":{"conflicts":100}}`,
		`{"ev":"end","id":3,"name":"solve","tNanos":5000000,"durNanos":2000000,"attrs":{"status":"unsat"}}`,
		`{"ev":"end","id":2,"name":"query","tNanos":6000000,"durNanos":4000000}`,
		`{"ev":"end","id":1,"name":"campaign","tNanos":7000000,"durNanos":6000000}`,
	}, "\n") + "\n"
	if got := buf.String(); got != want {
		t.Fatalf("golden mismatch:\ngot:\n%swant:\n%s", got, want)
	}
}

func TestTracerEndIdempotent(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	sp := tr.Start("op")
	sp.End()
	sp.End()
	var ends int
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var r map[string]any
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		if r["ev"] == "end" {
			ends++
		}
	}
	if ends != 1 {
		t.Fatalf("double End wrote %d end records, want 1", ends)
	}
}

// TestTracerNilIsNoOp exercises the disabled path: a nil tracer yields
// nil spans, and every method on them must be safe.
func TestTracerNilIsNoOp(t *testing.T) {
	var tr *Tracer
	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}
	sp := tr.Start("root", A("x", 1))
	if sp != nil {
		t.Fatal("nil tracer must produce nil spans")
	}
	child := sp.Start("child")
	child.Event("ev")
	child.Annotate(A("y", 2))
	child.End()
	sp.End()
}

// TestTracerConcurrentSpans hammers one tracer from many goroutines and
// checks that the output is record-atomic: every line parses, every
// begin has a matching end, and ids are unique.
func TestTracerConcurrentSpans(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	root := tr.Start("root")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				sp := root.Start("work")
				sp.Event("tick")
				sp.End()
			}
		}()
	}
	wg.Wait()
	root.End()
	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}

	begun := map[uint64]bool{}
	ended := map[uint64]bool{}
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var r struct {
			Ev string `json:"ev"`
			ID uint64 `json:"id"`
		}
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("corrupt JSONL line %q: %v", sc.Text(), err)
		}
		switch r.Ev {
		case "begin":
			if begun[r.ID] {
				t.Fatalf("duplicate span id %d", r.ID)
			}
			begun[r.ID] = true
		case "end":
			ended[r.ID] = true
		}
	}
	if len(begun) != 8*50+1 {
		t.Fatalf("begun %d spans, want %d", len(begun), 8*50+1)
	}
	for id := range begun {
		if !ended[id] {
			t.Fatalf("span %d never ended", id)
		}
	}
}

func TestTracerWriteErrorLatches(t *testing.T) {
	tr := NewTracer(failWriter{})
	sp := tr.Start("op")
	sp.End()
	if tr.Err() == nil {
		t.Fatal("write error not surfaced")
	}
}

type failWriter struct{}

func (failWriter) Write(p []byte) (int, error) { return 0, errWrite }

var errWrite = &writeErr{}

type writeErr struct{}

func (*writeErr) Error() string { return "sink failed" }
