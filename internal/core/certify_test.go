package core

import (
	"strings"
	"testing"

	"scadaver/internal/faultinject"
	"scadaver/internal/obs"
	"scadaver/internal/powergrid"
	"scadaver/internal/sat"
	"scadaver/internal/scadanet"
)

// boundaryQueries probes the combined observability boundary of cfg
// with a plain analyzer and returns one Unsat query (the largest
// resilient budget) and one Sat query (the smallest violated budget).
func boundaryQueries(t *testing.T, cfg *scadanet.Config, p Property, r int) (unsatQ, satQ Query) {
	t.Helper()
	a, err := NewAnalyzer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 32; k++ {
		q := Query{Property: p, Combined: true, K: k, R: r}
		res, err := a.Verify(q)
		if err != nil {
			t.Fatal(err)
		}
		switch res.Status {
		case sat.Sat:
			if k == 0 {
				t.Fatalf("%v violated at k=0: no unsat boundary query", p)
			}
			return Query{Property: p, Combined: true, K: k - 1, R: r}, q
		case sat.Unsat:
			continue
		default:
			t.Fatalf("boundary probe unsolved at k=%d", k)
		}
	}
	t.Fatalf("%v never violated within k<32", p)
	return
}

// TestCertifiedVerifyMatchesUncertified is the no-divergence contract:
// with certification on, every decided verdict (and witness vector)
// must be identical to the uncertified analyzer's, carry Certified with
// an empty CertifyError, and never enter quarantine. Unsat verdicts
// must come with a non-empty checked proof.
func TestCertifiedVerifyMatchesUncertified(t *testing.T) {
	cfg := synthConfig(t, powergrid.IEEE14(), 41, 2)
	var queries []Query
	for k := 0; k <= 3; k++ {
		queries = append(queries,
			Query{Property: Observability, Combined: true, K: k},
			Query{Property: SecuredObservability, Combined: true, K: k},
			Query{Property: BadDataDetectability, Combined: true, K: k, R: 1},
			Query{Property: Observability, K1: k, K2: 1},
			Query{Property: Observability, Combined: true, K: k, KL: 1},
		)
	}
	plain, err := NewAnalyzer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	// Certification must compose with the cache (bypassing it for the
	// certified solve) and preprocessing (proof-logging it).
	cert, err := NewAnalyzer(cfg, WithCertification(true), WithPresimplify(true),
		WithEncodingCache(NewEncodingCache()), WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	decided := 0
	for _, q := range queries {
		want, err := plain.Verify(q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := cert.Verify(q)
		if err != nil {
			t.Fatal(err)
		}
		if got.Status != want.Status {
			t.Fatalf("%v: certified status %v, uncertified %v", q, got.Status, want.Status)
		}
		decided++
		if !got.Certified {
			t.Fatalf("%v: decided verdict not certified: %q", q, got.CertifyError)
		}
		if got.Quarantined || got.CertifyError != "" {
			t.Fatalf("%v: spurious divergence: quarantined=%v err=%q", q, got.Quarantined, got.CertifyError)
		}
		if got.Status == sat.Unsat && got.ProofClauses == 0 {
			t.Fatalf("%v: unsat certified with an empty proof", q)
		}
		if got.Status == sat.Sat {
			// Preprocessing may surface a different — equally minimal —
			// witness than the plain analyzer (the documented cache/
			// presimplify contract), so validate the certified vector
			// rather than demanding bit-equality.
			if got.Vector == nil {
				t.Fatalf("%v: sat without a vector", q)
			}
			f := Failures{Devices: map[scadanet.DeviceID]bool{}, Links: map[scadanet.LinkID]bool{}}
			for _, id := range got.Vector.Devices() {
				f.Devices[id] = true
			}
			for _, id := range got.Vector.Links {
				f.Links[id] = true
			}
			if !cert.violatedUnder(q, f) {
				t.Fatalf("%v: certified vector %v does not violate the property", q, got.Vector)
			}
		}
		if !strings.Contains(got.String(), "[certified]") {
			t.Fatalf("%v: String() misses the certification marker: %s", q, got)
		}
	}
	if n := reg.Counter("scadaver_certify_checked_total", map[string]string{"property": "observability"}); n == 0 {
		t.Fatal("scadaver_certify_checked_total not incremented")
	}
	for _, name := range []string{"scadaver_certify_failed_total", "scadaver_certify_divergence_total", "scadaver_certify_quarantine_total"} {
		for _, prop := range []string{"observability", "secured-observability", "bad-data-detectability"} {
			if n := reg.Counter(name, map[string]string{"property": prop}); n != 0 {
				t.Fatalf("%s{property=%s} = %v on a clean campaign", name, prop, n)
			}
		}
	}
	_ = decided
}

// TestCertifiedSweep covers the assumption-based proof path: a
// certified sweep shares one proof stream across all budgets, and each
// per-k Unsat is certified via RUP-ness of its negated budget
// assumption rather than the empty clause.
func TestCertifiedSweep(t *testing.T) {
	cfg := synthConfig(t, powergrid.IEEE14(), 41, 2)
	plainA, err := NewAnalyzer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	plainSw, err := plainA.NewSweep(Observability, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	certA, err := NewAnalyzer(cfg, WithCertification(true), WithPresimplify(true))
	if err != nil {
		t.Fatal(err)
	}
	certSw, err := certA.NewSweep(Observability, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	const maxK = 4
	want, err := plainSw.VerifyRange(maxK, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := certSw.VerifyRange(maxK, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k <= maxK; k++ {
		if got[k].Status != want[k].Status {
			t.Fatalf("k=%d: certified %v, uncertified %v", k, got[k].Status, want[k].Status)
		}
		if !got[k].Certified || got[k].Quarantined {
			t.Fatalf("k=%d: certified=%v quarantined=%v (%q)", k, got[k].Certified, got[k].Quarantined, got[k].CertifyError)
		}
	}
}

// TestCertifyIEEE57BoundaryUnsat is the acceptance criterion of the
// certification work: the IEEE-57 resiliency-boundary UNSAT — the
// verdict the whole analysis hinges on — must produce a proof that
// internal/sat/drat checks in-process, through preprocessing and
// everything else the production configuration enables.
func TestCertifyIEEE57BoundaryUnsat(t *testing.T) {
	if testing.Short() {
		t.Skip("IEEE-57 boundary solve in -short mode")
	}
	cfg := synthConfig(t, powergrid.IEEE57(), 41, 2)
	probe, err := NewAnalyzer(cfg, WithPresimplify(true), WithEncodingCache(NewEncodingCache()))
	if err != nil {
		t.Fatal(err)
	}
	kstar, err := probe.MaxResiliencyCombined(Observability, 0)
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewAnalyzer(cfg, WithCertification(true), WithPresimplify(true))
	if err != nil {
		t.Fatal(err)
	}
	res, err := a.Verify(Query{Property: Observability, Combined: true, K: kstar})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != sat.Unsat {
		t.Fatalf("boundary query at k*=%d: got %v, want unsat", kstar, res.Status)
	}
	if !res.Certified || res.Quarantined {
		t.Fatalf("boundary unsat not certified: certified=%v quarantined=%v err=%q",
			res.Certified, res.Quarantined, res.CertifyError)
	}
	if res.ProofClauses == 0 {
		t.Fatal("boundary unsat proof has no derived clauses")
	}
	t.Logf("ieee57 boundary k*=%d certified: %d proof clauses, audit %v", kstar, res.ProofClauses, res.Audit)
}

// TestChaosCertifyFlippedVerdict injects an inverted solve verdict —
// in both directions — and demands certification catches it: without
// certification the wrong answer is believed (proving the fault is
// real); with it the audit diverges, the query is quarantined, and the
// pristine re-solve restores the true verdict.
func TestChaosCertifyFlippedVerdict(t *testing.T) {
	cfg := synthConfig(t, powergrid.IEEE14(), 41, 2)
	unsatQ, satQ := boundaryQueries(t, cfg, Observability, 0)
	for _, tc := range []struct {
		name string
		q    Query
		want sat.Status
	}{
		{"unsat-reported-sat", unsatQ, sat.Unsat},
		{"sat-reported-unsat", satQ, sat.Sat},
	} {
		t.Run(tc.name, func(t *testing.T) {
			// Uncertified leg: the flip escapes undetected.
			faults := faultinject.New(1).FlipVerdict(0)
			plain, err := NewAnalyzer(cfg, WithFaults(faults))
			if err != nil {
				t.Fatal(err)
			}
			res, err := plain.Verify(tc.q)
			if err != nil {
				t.Fatal(err)
			}
			if res.Status == tc.want {
				t.Fatalf("verdict flip did not fire: still %v", res.Status)
			}
			if res.Certified {
				t.Fatal("uncertified analyzer claims certification")
			}
			if faults.Counts().VerdictFlips != 1 {
				t.Fatalf("VerdictFlips = %d, want 1", faults.Counts().VerdictFlips)
			}

			// Certified leg: the flip must be caught and quarantined.
			faults = faultinject.New(1).FlipVerdict(0)
			reg := obs.NewRegistry()
			cert, err := NewAnalyzer(cfg, WithFaults(faults), WithCertification(true), WithMetrics(reg))
			if err != nil {
				t.Fatal(err)
			}
			res, err = cert.Verify(tc.q)
			if err != nil {
				t.Fatal(err)
			}
			if res.Status != tc.want {
				t.Fatalf("quarantine did not restore the verdict: got %v, want %v", res.Status, tc.want)
			}
			if !res.Quarantined || !res.Certified {
				t.Fatalf("flip not quarantined+re-certified: quarantined=%v certified=%v err=%q",
					res.Quarantined, res.Certified, res.CertifyError)
			}
			if res.CertifyError == "" {
				t.Fatal("quarantined result records no divergence cause")
			}
			pl := map[string]string{"property": "observability"}
			if reg.Counter("scadaver_certify_quarantine_total", pl) != 1 ||
				reg.Counter("scadaver_certify_divergence_total", pl) != 1 ||
				reg.Counter("scadaver_certify_failed_total", pl) != 1 {
				t.Fatalf("quarantine counters wrong: q=%v d=%v f=%v",
					reg.Counter("scadaver_certify_quarantine_total", pl),
					reg.Counter("scadaver_certify_divergence_total", pl),
					reg.Counter("scadaver_certify_failed_total", pl))
			}
		})
	}
}

// TestChaosCertifyCorruptedModel injects a corrupted witness — one
// element dropped from an inclusion-minimal threat vector, so the
// reported vector no longer violates the property — and demands the
// sat-model audit catches it and the quarantine re-solve reports a
// genuine witness.
func TestChaosCertifyCorruptedModel(t *testing.T) {
	cfg := synthConfig(t, powergrid.IEEE14(), 41, 2)
	_, satQ := boundaryQueries(t, cfg, Observability, 0)

	faults := faultinject.New(1).CorruptModel(0)
	cert, err := NewAnalyzer(cfg, WithFaults(faults), WithCertification(true))
	if err != nil {
		t.Fatal(err)
	}
	res, err := cert.Verify(satQ)
	if err != nil {
		t.Fatal(err)
	}
	if faults.Counts().ModelCorruptions != 1 {
		t.Fatalf("ModelCorruptions = %d, want 1", faults.Counts().ModelCorruptions)
	}
	if !res.Quarantined || !res.Certified || res.Status != sat.Sat {
		t.Fatalf("corrupted witness not quarantined+re-certified: quarantined=%v certified=%v status=%v err=%q",
			res.Quarantined, res.Certified, res.Status, res.CertifyError)
	}
	// The final vector must be a genuine witness again.
	f := Failures{Devices: map[scadanet.DeviceID]bool{}, Links: map[scadanet.LinkID]bool{}}
	for _, id := range res.Vector.Devices() {
		f.Devices[id] = true
	}
	for _, id := range res.Vector.Links {
		f.Links[id] = true
	}
	if !cert.violatedUnder(satQ, f) {
		t.Fatalf("quarantined vector %v does not violate %v", res.Vector, satQ)
	}
}

// TestChaosCertifyDroppedProofStep truncates the proof stream of the
// certified solve (every derived addition from the first one on is
// lost, the closing empty clause included) and demands the unsat
// verdict is refused, quarantined, and re-proved from a pristine
// solve whose stream is intact.
func TestChaosCertifyDroppedProofStep(t *testing.T) {
	cfg := synthConfig(t, powergrid.IEEE14(), 41, 2)
	unsatQ, _ := boundaryQueries(t, cfg, Observability, 0)

	faults := faultinject.New(1).DropProofStep(0)
	cert, err := NewAnalyzer(cfg, WithFaults(faults), WithCertification(true))
	if err != nil {
		t.Fatal(err)
	}
	res, err := cert.Verify(unsatQ)
	if err != nil {
		t.Fatal(err)
	}
	if faults.Counts().DroppedProofSteps == 0 {
		t.Fatal("proof-truncation fault never fired")
	}
	if res.Status != sat.Unsat {
		t.Fatalf("got %v, want unsat", res.Status)
	}
	if !res.Quarantined || !res.Certified {
		t.Fatalf("truncated proof not quarantined+re-certified: quarantined=%v certified=%v err=%q",
			res.Quarantined, res.Certified, res.CertifyError)
	}
	if res.ProofClauses == 0 {
		t.Fatal("quarantine re-proof has no derived clauses")
	}
}
