package core

import (
	"testing"

	"scadaver/internal/powergrid"
	"scadaver/internal/sat"
	"scadaver/internal/scadanet"
)

func powergridFromRows(rows [][]float64) (*powergrid.MeasurementSet, error) {
	return powergrid.FromJacobian(rows)
}

func caseStudyAnalyzer(t *testing.T, fig4 bool) *Analyzer {
	t.Helper()
	cfg, err := scadanet.CaseStudyConfig(fig4)
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewAnalyzer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func verify(t *testing.T, a *Analyzer, q Query) *Result {
	t.Helper()
	res, err := a.Verify(q)
	if err != nil {
		t.Fatalf("%v: %v", q, err)
	}
	return res
}

// TestScenario1Fig3 reproduces the paper's Section IV-B results on the
// Fig. 3 topology: (1,1)-resilient observable, not (2,1)-resilient, and
// IED-only tolerance of exactly 3 failures.
func TestScenario1Fig3(t *testing.T) {
	a := caseStudyAnalyzer(t, false)

	if res := verify(t, a, Query{Property: Observability, K1: 1, K2: 1}); !res.Resilient() {
		t.Fatalf("(1,1) must hold: %v", res)
	}
	res := verify(t, a, Query{Property: Observability, K1: 2, K2: 1})
	if res.Resilient() {
		t.Fatalf("(2,1) must be violated: %v", res)
	}
	// The returned vector must actually break observability, use at most
	// 2 IEDs + 1 RTU, and involve at least two devices.
	if res.Vector.Size() < 2 || len(res.Vector.IEDs) > 2 || len(res.Vector.RTUs) > 1 {
		t.Fatalf("vector out of budget: %v", res.Vector)
	}
	if a.VerifyWithFailures(Observability, 0, res.Vector.Devices()) {
		t.Fatalf("vector %v does not break observability", res.Vector)
	}

	// Paper: several distinct threat vectors exist at (2,1).
	vectors, err := a.EnumerateThreats(Query{Property: Observability, K1: 2, K2: 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(vectors) < 5 {
		t.Fatalf("expected a multi-vector threat space, got %d: %v", len(vectors), vectors)
	}
	for _, v := range vectors {
		if a.VerifyWithFailures(Observability, 0, v.Devices()) {
			t.Fatalf("enumerated vector %v does not break observability", v)
		}
	}

	// Paper: "the system can tolerate up to the failures of 3 IEDs".
	maxIED, err := a.MaxResiliency(Observability, 0, true, false)
	if err != nil {
		t.Fatal(err)
	}
	if maxIED != 3 {
		t.Fatalf("IED-only max resiliency = %d, want 3", maxIED)
	}
}

// TestScenario1Fig4 reproduces the Fig. 4 rewiring results: the system
// loses (1,1)-resiliency, RTU 12 becomes a single point of failure, and
// the system is maximally (3,0)-resilient observable.
func TestScenario1Fig4(t *testing.T) {
	a := caseStudyAnalyzer(t, true)

	res := verify(t, a, Query{Property: Observability, K1: 1, K2: 1})
	if res.Resilient() {
		t.Fatalf("(1,1) must be violated on fig4: %v", res)
	}
	// Paper: "if RTU 12 fails, there is no way to observe the system";
	// the minimal vector is {RTU 12}.
	res = verify(t, a, Query{Property: Observability, K1: 0, K2: 1})
	if res.Resilient() {
		t.Fatal("(0,1) must be violated on fig4")
	}
	if len(res.Vector.RTUs) != 1 || res.Vector.RTUs[0] != 12 || len(res.Vector.IEDs) != 0 {
		t.Fatalf("single-RTU vector should be {RTU 12}, got %v", res.Vector)
	}

	// Paper: maximally (3,0)-resilient observable.
	maxIED, err := a.MaxResiliency(Observability, 0, true, false)
	if err != nil {
		t.Fatal(err)
	}
	maxRTU, err := a.MaxResiliency(Observability, 0, false, true)
	if err != nil {
		t.Fatal(err)
	}
	if maxIED != 3 || maxRTU != 0 {
		t.Fatalf("max resiliency = (%d,%d), want (3,0)", maxIED, maxRTU)
	}
}

// TestScenario2Fig3 reproduces Section IV-C on the Fig. 3 topology:
// the system is NOT (1,1)-resilient in terms of secured observability
// (although it is (1,1)-resilient observable), yet it tolerates any
// single IED or single RTU failure.
func TestScenario2Fig3(t *testing.T) {
	a := caseStudyAnalyzer(t, false)

	res := verify(t, a, Query{Property: SecuredObservability, K1: 1, K2: 1})
	if res.Resilient() {
		t.Fatalf("secured (1,1) must be violated: %v", res)
	}
	if len(res.Vector.IEDs) > 1 || len(res.Vector.RTUs) > 1 {
		t.Fatalf("vector out of budget: %v", res.Vector)
	}
	if a.VerifyWithFailures(SecuredObservability, 0, res.Vector.Devices()) {
		t.Fatalf("vector %v does not break secured observability", res.Vector)
	}

	// Paper: a handful of threat vectors at (1,1) (the paper reports 5).
	vectors, err := a.EnumerateThreats(Query{Property: SecuredObservability, K1: 1, K2: 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(vectors) < 3 || len(vectors) > 8 {
		t.Fatalf("secured (1,1) threat space = %d vectors %v, expected a handful", len(vectors), vectors)
	}

	// Paper: (1,0) and (0,1) give unsat.
	if res := verify(t, a, Query{Property: SecuredObservability, K1: 1, K2: 0}); !res.Resilient() {
		t.Fatalf("secured (1,0) must hold: %v", res)
	}
	if res := verify(t, a, Query{Property: SecuredObservability, K1: 0, K2: 1}); !res.Resilient() {
		t.Fatalf("secured (0,1) must hold: %v", res)
	}
}

// TestScenario2Fig4: with the Fig. 4 topology the system is no longer
// resilient to one RTU failure, and the paper reports exactly one threat
// vector: the unavailability of RTU 12.
func TestScenario2Fig4(t *testing.T) {
	a := caseStudyAnalyzer(t, true)
	vectors, err := a.EnumerateThreats(Query{Property: SecuredObservability, K1: 0, K2: 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(vectors) != 1 {
		t.Fatalf("threat vectors = %v, want exactly one", vectors)
	}
	v := vectors[0]
	if len(v.RTUs) != 1 || v.RTUs[0] != 12 || len(v.IEDs) != 0 {
		t.Fatalf("vector = %v, want {RTU 12}", v)
	}
}

// TestCaseStudyBadData exercises the (k,r)-resilient bad-data
// detectability constraint on the case study.
func TestCaseStudyBadData(t *testing.T) {
	a := caseStudyAnalyzer(t, false)

	// With zero failures and r=0, every state needs >=1 secured
	// measurement; the SAT verdict must agree with direct evaluation.
	holds0 := a.EvalBadDataDetectability(nil, 0)
	res := verify(t, a, Query{Property: BadDataDetectability, K1: 0, K2: 0, R: 0})
	if res.Resilient() != holds0 {
		t.Fatalf("r=0 verdict mismatch: eval=%v verify=%v", holds0, res.Status)
	}

	holds1 := a.EvalBadDataDetectability(nil, 1)
	res = verify(t, a, Query{Property: BadDataDetectability, K1: 0, K2: 0, R: 1})
	if res.Resilient() != holds1 {
		t.Fatalf("r=1 verdict mismatch: eval=%v verify=%v", holds1, res.Status)
	}

	// Large r can never be detectable (not enough measurements per
	// state).
	res = verify(t, a, Query{Property: BadDataDetectability, K1: 0, K2: 0, R: 14})
	if res.Resilient() {
		t.Fatal("r=14 cannot be detectable with 14 measurements")
	}

	// Monotonicity in k: if (k,r) is violated, (k+1,r) is too.
	for r := 0; r <= 2; r++ {
		prev := true
		for k := 0; k <= 3; k++ {
			res := verify(t, a, Query{Property: BadDataDetectability, Combined: true, K: k, R: r})
			if !prev && res.Resilient() {
				t.Fatalf("monotonicity violated at k=%d r=%d", k, r)
			}
			prev = res.Resilient()
		}
	}
}

// TestSATAgainstDirectEnumeration cross-validates the formal encoding
// against exhaustive direct evaluation on the case study for all small
// budgets: the threat query is satisfiable iff some failure set within
// the budget violates the property.
func TestSATAgainstDirectEnumeration(t *testing.T) {
	for _, fig4 := range []bool{false, true} {
		a := caseStudyAnalyzer(t, fig4)
		devices := make([]scadanet.DeviceID, 0, 12)
		for _, d := range a.Config().Net.DevicesOfKind(scadanet.IED) {
			devices = append(devices, d.ID)
		}
		rtuStart := len(devices)
		for _, d := range a.Config().Net.DevicesOfKind(scadanet.RTU) {
			devices = append(devices, d.ID)
		}

		for _, prop := range []Property{Observability, SecuredObservability} {
			for k1 := 0; k1 <= 2; k1++ {
				for k2 := 0; k2 <= 1; k2++ {
					res := verify(t, a, Query{Property: prop, K1: k1, K2: k2})
					want := existsViolation(a, prop, devices, rtuStart, k1, k2)
					if (res.Status == sat.Sat) != want {
						t.Fatalf("fig4=%v %v (%d,%d): sat=%v brute=%v",
							fig4, prop, k1, k2, res.Status, want)
					}
				}
			}
		}
	}
}

// existsViolation brute-forces all failure sets with ≤k1 IEDs and ≤k2
// RTUs via bitmask enumeration (12 field devices in the case study).
func existsViolation(a *Analyzer, prop Property, devices []scadanet.DeviceID, rtuStart, k1, k2 int) bool {
	n := len(devices)
	for mask := 0; mask < 1<<n; mask++ {
		nIED, nRTU := 0, 0
		for i := 0; i < n; i++ {
			if mask>>i&1 == 1 {
				if i < rtuStart {
					nIED++
				} else {
					nRTU++
				}
			}
		}
		if nIED > k1 || nRTU > k2 {
			continue
		}
		var failed []scadanet.DeviceID
		for i := 0; i < n; i++ {
			if mask>>i&1 == 1 {
				failed = append(failed, devices[i])
			}
		}
		if !a.VerifyWithFailures(prop, 0, failed) {
			return true
		}
	}
	return false
}

// TestMinimalVectorsAreMinimal checks that every enumerated vector stops
// violating the property when any single device is restored.
func TestMinimalVectorsAreMinimal(t *testing.T) {
	a := caseStudyAnalyzer(t, false)
	q := Query{Property: Observability, K1: 2, K2: 1}
	vectors, err := a.EnumerateThreats(q, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range vectors {
		devs := v.Devices()
		for skip := range devs {
			subset := make([]scadanet.DeviceID, 0, len(devs)-1)
			for i, d := range devs {
				if i != skip {
					subset = append(subset, d)
				}
			}
			if !a.VerifyWithFailures(Observability, 0, subset) {
				t.Fatalf("vector %v not minimal: %v already violates", v, subset)
			}
		}
	}
}

// TestEnumerationRespectsCap verifies the max parameter.
func TestEnumerationRespectsCap(t *testing.T) {
	a := caseStudyAnalyzer(t, false)
	vectors, err := a.EnumerateThreats(Query{Property: Observability, K1: 2, K2: 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(vectors) != 2 {
		t.Fatalf("cap ignored: %d vectors", len(vectors))
	}
	n, err := a.CountThreats(Query{Property: Observability, K1: 2, K2: 1}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("CountThreats = %d, want 3", n)
	}
}

// TestSecuredImpliesDelivered: every securely delivered measurement is
// also delivered (SecuredDelivery ⊂ AssuredDelivery).
func TestSecuredImpliesDelivered(t *testing.T) {
	a := caseStudyAnalyzer(t, false)
	for _, down := range []map[scadanet.DeviceID]bool{
		nil,
		{9: true},
		{11: true, 7: true},
	} {
		sec := a.DeliveredMeasurements(down, true)
		plain := a.DeliveredMeasurements(down, false)
		for z := range sec {
			if !plain[z] {
				t.Fatalf("down=%v: measurement %d secured but not delivered", down, z)
			}
		}
	}
}

// TestCaseStudySecuredSubset checks the reconstruction's security
// structure: IED 1 (hmac-only uplink) and IED 4 (no security profile)
// are never securely delivered.
func TestCaseStudySecuredSubset(t *testing.T) {
	a := caseStudyAnalyzer(t, false)
	sec := a.DeliveredMeasurements(nil, true)
	for _, z := range a.Config().Net.MeasurementsOf(1) {
		if sec[z] {
			t.Fatalf("IED 1 measurement %d must not be secured (hmac-only hop)", z)
		}
	}
	for _, z := range a.Config().Net.MeasurementsOf(4) {
		if sec[z] {
			t.Fatalf("IED 4 measurement %d must not be secured (no profile)", z)
		}
	}
	// But they are delivered.
	plain := a.DeliveredMeasurements(nil, false)
	for z := 1; z <= 14; z++ {
		if !plain[z] {
			t.Fatalf("measurement %d not delivered with all devices up", z)
		}
	}
}

// TestMinimalThreat: on the Fig. 4 topology a single device (RTU 12)
// breaks observability; on Fig. 3 the smallest breaking set has more
// than one device.
func TestMinimalThreat(t *testing.T) {
	fig4 := caseStudyAnalyzer(t, true)
	v, size, err := fig4.MinimalThreat(Observability, 0)
	if err != nil {
		t.Fatal(err)
	}
	if size != 1 || v == nil || len(v.RTUs) != 1 || v.RTUs[0] != 12 {
		t.Fatalf("fig4 minimal threat = %v (size %d), want {RTU 12}", v, size)
	}

	fig3 := caseStudyAnalyzer(t, false)
	v, size, err = fig3.MinimalThreat(Observability, 0)
	if err != nil {
		t.Fatal(err)
	}
	if size < 2 || v == nil {
		t.Fatalf("fig3 minimal threat = %v (size %d), want >= 2 devices", v, size)
	}
	if fig3.VerifyWithFailures(Observability, 0, v.Devices()) {
		t.Fatalf("minimal threat %v does not violate", v)
	}
}
