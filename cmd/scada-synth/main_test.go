package main

import (
	"os"
	"path/filepath"
	"testing"

	"scadaver/internal/scadanet"
)

func TestRunGeneratesParsableConfig(t *testing.T) {
	out := filepath.Join(t.TempDir(), "sys.scada")
	err := run([]string{"-bus", "ieee14", "-hierarchy", "2", "-percent", "80", "-seed", "7", "-o", out})
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	cfg, err := scadanet.ParseConfig(f)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Msrs.NStates != 14 {
		t.Fatalf("states = %d", cfg.Msrs.NStates)
	}
	if got := len(cfg.Net.DevicesOfKind(scadanet.IED)); got == 0 {
		t.Fatal("no IEDs generated")
	}
}

func TestRunResiliencySpecPropagates(t *testing.T) {
	out := filepath.Join(t.TempDir(), "sys.scada")
	err := run([]string{"-bus", "case5", "-k1", "2", "-k2", "0", "-r", "3", "-o", out})
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	cfg, err := scadanet.ParseConfig(f)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.K1 != 2 || cfg.K2 != 0 || cfg.R != 3 {
		t.Fatalf("spec = (%d,%d,%d)", cfg.K1, cfg.K2, cfg.R)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{"-bus", "ieee9000"}); err == nil {
		t.Fatal("unknown bus must error")
	}
	if err := run([]string{"-o", "/nonexistent-dir/x.scada"}); err == nil {
		t.Fatal("unwritable output must error")
	}
}
