package matrix

import (
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestFromRowsAndAccessors(t *testing.T) {
	m, err := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows() != 3 || m.Cols() != 2 {
		t.Fatalf("shape %dx%d", m.Rows(), m.Cols())
	}
	if m.At(1, 0) != 3 || m.At(2, 1) != 6 {
		t.Fatal("At broken")
	}
	m.Set(0, 0, 9)
	if m.At(0, 0) != 9 {
		t.Fatal("Set broken")
	}
	r := m.Row(2)
	r[0] = 100 // must not alias
	if m.At(2, 0) == 100 {
		t.Fatal("Row aliases internal storage")
	}
}

func TestFromRowsRagged(t *testing.T) {
	if _, err := FromRows([][]float64{{1, 2}, {3}}); !errors.Is(err, ErrShape) {
		t.Fatalf("want ErrShape, got %v", err)
	}
}

func TestFromRowsEmpty(t *testing.T) {
	m, err := FromRows(nil)
	if err != nil || m.Rows() != 0 {
		t.Fatalf("empty: %v %v", m, err)
	}
}

func TestRankBasics(t *testing.T) {
	cases := []struct {
		rows [][]float64
		want int
	}{
		{[][]float64{{1, 0}, {0, 1}}, 2},
		{[][]float64{{1, 2}, {2, 4}}, 1},
		{[][]float64{{0, 0}, {0, 0}}, 0},
		{[][]float64{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}}, 2},
		{[][]float64{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}, {1, 1, 1}}, 3},
		{[][]float64{{2, -2, 0}, {-2, 2, 0}}, 1},
	}
	for i, tc := range cases {
		m, err := FromRows(tc.rows)
		if err != nil {
			t.Fatal(err)
		}
		if got := m.Rank(); got != tc.want {
			t.Errorf("case %d: rank = %d, want %d", i, got, tc.want)
		}
	}
}

func TestRankDoesNotMutate(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	_ = m.Rank()
	if m.At(1, 0) != 3 {
		t.Fatal("Rank mutated receiver")
	}
}

func TestSelectRows(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 1}, {2, 2}, {3, 3}})
	s := m.SelectRows([]int{2, 0})
	if s.Rows() != 2 || s.At(0, 0) != 3 || s.At(1, 0) != 1 {
		t.Fatalf("SelectRows wrong: %v", s)
	}
}

func TestMulAndTranspose(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	b, _ := FromRows([][]float64{{5, 6}, {7, 8}})
	c, err := a.Mul(b)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]float64{{19, 22}, {43, 50}}
	for i := range want {
		for j := range want[i] {
			if c.At(i, j) != want[i][j] {
				t.Fatalf("Mul[%d][%d] = %v, want %v", i, j, c.At(i, j), want[i][j])
			}
		}
	}
	at := a.Transpose()
	if at.At(0, 1) != 3 || at.At(1, 0) != 2 {
		t.Fatal("Transpose broken")
	}
	if _, err := a.Mul(New(3, 3)); !errors.Is(err, ErrShape) {
		t.Fatalf("want ErrShape, got %v", err)
	}
}

func TestMulVec(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	v, err := a.MulVec([]float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if v[0] != 3 || v[1] != 7 {
		t.Fatalf("MulVec = %v", v)
	}
	if _, err := a.MulVec([]float64{1}); !errors.Is(err, ErrShape) {
		t.Fatalf("want ErrShape, got %v", err)
	}
}

func TestSolveLSQExact(t *testing.T) {
	// Overdetermined consistent system: solution must be recovered.
	h, _ := FromRows([][]float64{
		{1, 0},
		{0, 1},
		{1, 1},
		{2, -1},
	})
	xTrue := []float64{3, -2}
	b, _ := h.MulVec(xTrue)
	x, err := h.SolveLSQ(b, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range xTrue {
		if math.Abs(x[i]-xTrue[i]) > 1e-9 {
			t.Fatalf("x = %v, want %v", x, xTrue)
		}
	}
}

func TestSolveLSQWeighted(t *testing.T) {
	// Two conflicting measurements of a scalar; the weighted answer must
	// land proportionally closer to the heavier one.
	h, _ := FromRows([][]float64{{1}, {1}})
	x, err := h.SolveLSQ([]float64{0, 10}, []float64{9, 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-1.0) > 1e-9 { // (9*0 + 1*10)/10
		t.Fatalf("weighted x = %v, want 1.0", x[0])
	}
}

func TestSolveLSQSingular(t *testing.T) {
	h, _ := FromRows([][]float64{{1, 1}, {2, 2}})
	if _, err := h.SolveLSQ([]float64{1, 2}, nil); err == nil {
		t.Fatal("expected singular error")
	}
}

func TestSolveLSQShapeErrors(t *testing.T) {
	h, _ := FromRows([][]float64{{1}, {1}})
	if _, err := h.SolveLSQ([]float64{1}, nil); !errors.Is(err, ErrShape) {
		t.Fatalf("want ErrShape, got %v", err)
	}
	if _, err := h.SolveLSQ([]float64{1, 2}, []float64{1}); !errors.Is(err, ErrShape) {
		t.Fatalf("want ErrShape, got %v", err)
	}
}

func TestQuickRankBounds(t *testing.T) {
	// Property: 0 <= rank <= min(rows, cols), and duplicating a row never
	// increases rank.
	f := func(seed int64, rRaw, cRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		r := 1 + int(rRaw)%5
		c := 1 + int(cRaw)%5
		rows := make([][]float64, r)
		for i := range rows {
			rows[i] = make([]float64, c)
			for j := range rows[i] {
				rows[i][j] = float64(rng.Intn(7) - 3)
			}
		}
		m, err := FromRows(rows)
		if err != nil {
			return false
		}
		rk := m.Rank()
		minDim := r
		if c < minDim {
			minDim = c
		}
		if rk < 0 || rk > minDim {
			return false
		}
		dup, err := FromRows(append(rows, rows[0]))
		if err != nil {
			return false
		}
		return dup.Rank() == rk
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickLSQRecoversSolution(t *testing.T) {
	// Property: for full-column-rank H and consistent b = Hx, SolveLSQ
	// recovers x.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(4)
		r := n + rng.Intn(4)
		rows := make([][]float64, r)
		for i := range rows {
			rows[i] = make([]float64, n)
			for j := range rows[i] {
				rows[i][j] = rng.NormFloat64()
			}
		}
		h, err := FromRows(rows)
		if err != nil {
			return false
		}
		if h.Rank() < n {
			return true // skip rank-deficient draws
		}
		xTrue := make([]float64, n)
		for i := range xTrue {
			xTrue[i] = rng.NormFloat64()
		}
		b, err := h.MulVec(xTrue)
		if err != nil {
			return false
		}
		x, err := h.SolveLSQ(b, nil)
		if err != nil {
			return false
		}
		for i := range x {
			if math.Abs(x[i]-xTrue[i]) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestString(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 2}})
	if !strings.Contains(m.String(), "1.000") {
		t.Fatalf("String = %q", m.String())
	}
}
