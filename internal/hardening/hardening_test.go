package hardening

import (
	"errors"
	"strings"
	"testing"

	"scadaver/internal/core"
	"scadaver/internal/powergrid"
	"scadaver/internal/scadanet"
	"scadaver/internal/synth"
)

func TestSynthesizeCaseStudySecured(t *testing.T) {
	cfg, err := scadanet.CaseStudyConfig(false)
	if err != nil {
		t.Fatal(err)
	}
	q := core.Query{Property: core.SecuredObservability, K1: 1, K2: 1}
	plan, err := Synthesize(cfg, q, Options{})
	if err != nil {
		t.Fatalf("synthesize: %v\n%v", err, plan)
	}
	if !plan.Achieved {
		t.Fatalf("plan not achieved: %v", plan)
	}
	if len(plan.Actions) == 0 {
		t.Fatal("achieved with zero actions, but the input violates the spec")
	}
	// The hardened configuration must actually verify.
	a, err := core.NewAnalyzer(plan.Config)
	if err != nil {
		t.Fatal(err)
	}
	res, err := a.Verify(q)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Resilient() {
		t.Fatalf("hardened config still violates: %v", res)
	}
	// The original configuration must be untouched.
	orig, err := core.NewAnalyzer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	origRes, err := orig.Verify(q)
	if err != nil {
		t.Fatal(err)
	}
	if origRes.Resilient() {
		t.Fatal("planner mutated the input configuration")
	}
	if !strings.Contains(plan.String(), "achieved") {
		t.Fatalf("plan.String() = %q", plan.String())
	}
}

func TestSynthesizeAlreadyResilient(t *testing.T) {
	cfg, err := scadanet.CaseStudyConfig(false)
	if err != nil {
		t.Fatal(err)
	}
	q := core.Query{Property: core.Observability, K1: 1, K2: 1}
	plan, err := Synthesize(cfg, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Achieved || len(plan.Actions) != 0 || plan.TotalCost != 0 {
		t.Fatalf("already-resilient input should need no actions: %v", plan)
	}
}

func TestSynthesizeFig4Topology(t *testing.T) {
	// Fig. 4: RTU 12 is a single point of failure for observability.
	// The planner must add redundancy (it cannot fix this with crypto).
	cfg, err := scadanet.CaseStudyConfig(true)
	if err != nil {
		t.Fatal(err)
	}
	q := core.Query{Property: core.Observability, K1: 0, K2: 1}
	plan, err := Synthesize(cfg, q, Options{})
	if err != nil {
		t.Fatalf("%v\n%v", err, plan)
	}
	if !plan.Achieved {
		t.Fatalf("plan not achieved: %v", plan)
	}
	sawAdd := false
	for _, a := range plan.Actions {
		if a.Kind == AddRedundantLink {
			sawAdd = true
		}
	}
	if !sawAdd {
		t.Fatalf("expected a redundant link, got %v", plan)
	}
}

func TestSynthesizeSyntheticSystems(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		cfg, err := synth.Generate(synth.Params{
			Bus:            powergrid.Case5(),
			Seed:           seed,
			Hierarchy:      2,
			SecureFraction: 0.4,
		})
		if err != nil {
			t.Fatal(err)
		}
		q := core.Query{Property: core.SecuredObservability, K1: 1, K2: 0}
		plan, err := Synthesize(cfg, q, Options{MaxRounds: 20})
		if err != nil && !errors.Is(err, ErrNoProgress) {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if plan.Achieved {
			a, err := core.NewAnalyzer(plan.Config)
			if err != nil {
				t.Fatal(err)
			}
			res, err := a.Verify(q)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Resilient() {
				t.Fatalf("seed %d: achieved plan does not verify", seed)
			}
		}
	}
}

func TestActionString(t *testing.T) {
	up := Action{Kind: UpgradeLinkSecurity, Link: 3, Profiles: strongProfile(), Cost: 1}
	if !strings.Contains(up.String(), "upgrade link 3") {
		t.Fatalf("String = %q", up.String())
	}
	add := Action{Kind: AddRedundantLink, A: 9, B: 13, Profiles: backboneProfile(), Cost: 3}
	if !strings.Contains(add.String(), "add link 9-13") {
		t.Fatalf("String = %q", add.String())
	}
	var zero Action
	if zero.String() != "unknown action" {
		t.Fatal("zero action String")
	}
}

func TestApplyErrors(t *testing.T) {
	cfg, err := scadanet.CaseStudyConfig(false)
	if err != nil {
		t.Fatal(err)
	}
	if err := apply(cfg, Action{Kind: UpgradeLinkSecurity, Link: 999}); err == nil {
		t.Fatal("upgrading a missing link must fail")
	}
	if err := apply(cfg, Action{Kind: AddRedundantLink, A: 1, B: 9}); err == nil {
		t.Fatal("duplicating a link must fail")
	}
	if err := apply(cfg, Action{}); err == nil {
		t.Fatal("unknown action must fail")
	}
}
