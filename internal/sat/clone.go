package sat

// Clone returns an independent deep copy of the solver at the root
// level: variables, root-level assignments, problem and learned clauses,
// watches, activities, saved phases, and the elimination stack of a
// previous Simplify all carry over; per-solve hooks (interrupt, conflict
// hook, progress probe, proof writer) and the cumulative statistics do
// not — portfolio replicas install their own recording proof hooks. The copy
// shares no mutable state with the original, so clones may be solved
// concurrently — this is what the encoding cache hands out per query.
//
// Clone must be taken at decision level 0 (any active search is unwound
// first). Root-level antecedents are dropped in the copy: conflict
// analysis never resolves on level-0 assignments, so reasons there are
// dead weight.
func (s *Solver) Clone() *Solver {
	s.cancelUntil(0)
	nv := len(s.assigns)
	n := &Solver{
		varInc:         s.varInc,
		varDecay:       s.varDecay,
		clauseInc:      s.clauseInc,
		clauseDecay:    s.clauseDecay,
		maxLearned:     s.maxLearned,
		restartBase:    s.restartBase,
		restartGeom:    s.restartGeom,
		inprocess:      s.inprocess,
		geomLimit:      s.geomLimit,
		lubyIdx:        s.lubyIdx,
		conflictBudget: s.conflictBudget,
		rootUnsat:      s.rootUnsat,
		levelSeen:      make(map[int]bool, 32),
		assigns:        append([]Tribool(nil), s.assigns...),
		level:          append([]int(nil), s.level...),
		reason:         make([]*clause, nv),
		trail:          append([]Lit(nil), s.trail...),
		activity:       append([]float64(nil), s.activity...),
		polarity:       append([]bool(nil), s.polarity...),
		seen:           make([]bool, nv),
		frozen:         append([]bool(nil), s.frozen...),
		eliminated:     append([]bool(nil), s.eliminated...),
		elimStack:      append([]elimRecord(nil), s.elimStack...),
		watches:        make([][]watcher, 2*nv),
	}
	n.qhead = len(n.trail)
	n.order = newActivityHeap(&n.activity)
	for v := Var(0); int(v) < nv; v++ {
		if n.assigns[v] == Unknown && !n.eliminated[v] {
			n.order.push(v)
		}
	}
	// The delta cache clones per sealed snapshot and again per query, so
	// this copy is hot. Arena allocation keeps it cheap: one clause slab
	// and one literal slab per database (two allocations instead of two
	// PER CLAUSE), and the watch lists are pre-partitioned from a shared
	// watcher buffer so attach never grows a slice. Each clause's literal
	// slice is capacity-clipped to its segment: in-place shrinks (vivify,
	// ReduceRoot) stay inside it, and an append-growth would copy out
	// rather than stomp its neighbor.
	live, nlits := 0, 0
	count := func(src []*clause) {
		for _, c := range src {
			if !c.deleted {
				live++
				nlits += len(c.lits)
			}
		}
	}
	count(s.clauses)
	count(s.learned)
	if live > 0 {
		arena := make([]clause, 0, live)
		lits := make([]Lit, 0, nlits)
		wcount := make([]int32, 2*nv)
		copyDB := func(src []*clause, learned bool) []*clause {
			out := make([]*clause, 0, len(src))
			for _, c := range src {
				if c.deleted {
					continue
				}
				lo := len(lits)
				lits = append(lits, c.lits...)
				arena = append(arena, clause{
					lits: lits[lo:len(lits):len(lits)],
					act:  c.act, lbd: c.lbd, learned: learned,
				})
				cc := &arena[len(arena)-1]
				out = append(out, cc)
				wcount[cc.lits[0].Neg()]++
				wcount[cc.lits[1].Neg()]++
			}
			return out
		}
		n.clauses = copyDB(s.clauses, false)
		n.learned = copyDB(s.learned, true)
		wbuf := make([]watcher, 2*live)
		off := 0
		for i, w := range wcount {
			if w == 0 {
				continue
			}
			n.watches[i] = wbuf[off : off : off+int(w)]
			off += int(w)
		}
		for _, c := range n.clauses {
			n.attach(c)
		}
		for _, c := range n.learned {
			n.attach(c)
		}
	}
	n.stats.MaxVars = nv
	return n
}
