package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"scadaver/internal/core"
	"scadaver/internal/obs"
)

var fastOpt = Options{
	Inputs:       1,
	Runs:         1,
	Systems:      []string{"ieee14", "ieee30"},
	MaxHierarchy: 2,
	Percents:     []float64{60, 100},
}

func TestFig5Observability(t *testing.T) {
	pts, err := Fig5(core.Observability, fastOpt)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	for _, p := range pts {
		if p.SatMillis <= 0 || p.UnsatMillis <= 0 {
			t.Fatalf("%s: non-positive timings %+v", p.Label, p)
		}
		if p.Devices <= 0 {
			t.Fatalf("%s: no devices", p.Label)
		}
	}
	// Problem size must grow with the bus count.
	if pts[1].Devices <= pts[0].Devices {
		t.Fatalf("devices did not grow: %+v", pts)
	}
	var sb strings.Builder
	PrintScale(&sb, "test", pts)
	if !strings.Contains(sb.String(), "ieee30") {
		t.Fatalf("PrintScale output: %q", sb.String())
	}
}

func TestFig5Secured(t *testing.T) {
	pts, err := Fig5(core.SecuredObservability, Options{
		Inputs: 1, Runs: 1, Systems: []string{"ieee14"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 1 || pts[0].SatMillis <= 0 {
		t.Fatalf("pts = %+v", pts)
	}
}

func TestFig6(t *testing.T) {
	pts, err := Fig6("ieee14", core.Observability, fastOpt)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	for _, p := range pts {
		// Every point must have timed at least one outcome class.
		if p.SatMillis <= 0 && p.UnsatMillis <= 0 {
			t.Fatalf("%+v", p)
		}
	}
	if _, err := Fig6("nope", core.Observability, fastOpt); err == nil {
		t.Fatal("unknown system must error")
	}
}

func TestFig7a(t *testing.T) {
	pts, err := Fig7a(fastOpt)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	// The paper's shape: more measurements, at least as much resiliency
	// (allowing sampling noise of one unit).
	if pts[1].MaxIED+1 < pts[0].MaxIED {
		t.Fatalf("max IED resiliency fell sharply with density: %+v", pts)
	}
	// IED tolerance exceeds RTU tolerance (RTUs aggregate many IEDs).
	last := pts[len(pts)-1]
	if last.MaxIED < last.MaxRTU {
		t.Fatalf("expected IED tolerance >= RTU tolerance, got %+v", last)
	}
	var sb strings.Builder
	PrintResiliency(&sb, pts)
	if !strings.Contains(sb.String(), "max-IED") {
		t.Fatal("PrintResiliency output missing header")
	}
}

func TestFig7b(t *testing.T) {
	pts, err := Fig7b(fastOpt)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	for _, p := range pts {
		// Larger specs can only enlarge the threat space.
		if p.Vectors["(2,1)"] < p.Vectors["(1,1)"] {
			t.Fatalf("threat space shrank with larger spec: %+v", p)
		}
		if p.Vectors["(2,2)"] < p.Vectors["(2,1)"] {
			t.Fatalf("threat space shrank with larger spec: %+v", p)
		}
	}
	var sb strings.Builder
	PrintThreatSpace(&sb, pts)
	if !strings.Contains(sb.String(), "hierarchy") {
		t.Fatal("PrintThreatSpace output missing header")
	}
}

// TestKSweepDeterministicAcrossWorkers pins the campaign contract: the
// verdicts and threat vectors of a k-sweep are identical whatever the
// pool size.
func TestKSweepDeterministicAcrossWorkers(t *testing.T) {
	serial, err := KSweep("ieee14", 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := KSweep("ieee14", 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial.Results) != len(parallel.Results) || len(serial.Results) == 0 {
		t.Fatalf("result counts: serial %d, parallel %d", len(serial.Results), len(parallel.Results))
	}
	for i := range serial.Results {
		s, p := serial.Results[i], parallel.Results[i]
		if s == nil || p == nil {
			t.Fatalf("query %d: nil result (serial=%v parallel=%v)", i, s, p)
		}
		if s.Status != p.Status {
			t.Fatalf("query %v: serial %v, parallel %v", serial.Queries[i], s.Status, p.Status)
		}
		if fmt.Sprint(s.Vector) != fmt.Sprint(p.Vector) {
			t.Fatalf("query %v: vectors differ: %v vs %v", serial.Queries[i], s.Vector, p.Vector)
		}
		if p.Stats.Solves == 0 || p.Stats.SolveTime <= 0 {
			t.Fatalf("query %v: per-solve stats missing: %+v", serial.Queries[i], p.Stats)
		}
	}
	var sb strings.Builder
	PrintSweep(&sb, parallel)
	out := sb.String()
	for _, want := range []string{"k-sweep campaign", "conflicts", "campaign wall time"} {
		if !strings.Contains(out, want) {
			t.Fatalf("PrintSweep output missing %q:\n%s", want, out)
		}
	}
}

// TestFigWorkersInvariant checks a parallel figure campaign agrees with
// the serial one on everything but timings.
func TestFigWorkersInvariant(t *testing.T) {
	opt := fastOpt
	opt.Workers = 1
	serial, err := Fig7a(opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Workers = 8
	parallel, err := Fig7a(opt)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(serial) != fmt.Sprint(parallel) {
		t.Fatalf("Fig7a differs across pool sizes:\nserial:   %v\nparallel: %v", serial, parallel)
	}
}

func TestCaseStudyOutput(t *testing.T) {
	var sb strings.Builder
	if err := CaseStudy(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"Fig. 3",
		"Fig. 4",
		"(1,1)-resilient observability: HOLDS",
		"(2,1)-resilient observability: VIOLATED",
		"maximum observability resiliency: (3 IED-only, 0 RTU-only)",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("case study output missing %q:\n%s", want, out)
		}
	}
}

// TestBenchRecord runs the recorded benchmark campaign on the smallest
// system and checks the written JSON is complete and self-consistent.
func TestBenchRecord(t *testing.T) {
	run, err := BenchRecord(Options{
		Inputs:  1,
		Runs:    1,
		Systems: []string{"ieee14"},
		MaxK:    2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if run.Schema != BenchSchema {
		t.Fatalf("schema = %q", run.Schema)
	}
	if len(run.Figures) != 2 {
		t.Fatalf("figures = %+v, want boundary + ksweep", run.Figures)
	}
	for _, f := range run.Figures {
		if f.System != "ieee14" {
			t.Fatalf("figure system = %q", f.System)
		}
		if f.Queries <= 0 || f.WallMs <= 0 || f.SolveMs <= 0 {
			t.Fatalf("figure %s has empty numbers: %+v", f.Figure, f)
		}
		if f.SolveMs > f.WallMs {
			t.Fatalf("figure %s: solve time %v ms exceeds wall %v ms", f.Figure, f.SolveMs, f.WallMs)
		}
	}
	if run.TotalWallMs <= 0 {
		t.Fatal("no total wall time")
	}

	var sb strings.Builder
	if err := WriteBenchRun(&sb, run); err != nil {
		t.Fatal(err)
	}
	var back BenchRun
	if err := json.Unmarshal([]byte(sb.String()), &back); err != nil {
		t.Fatalf("BENCH record is not valid JSON: %v", err)
	}
	if fmt.Sprint(back) != fmt.Sprint(*run) {
		t.Fatalf("JSON round trip changed the record:\n%v\n%v", back, *run)
	}
}

// TestFigTraceAndMetricsThreaded checks Options.Trace / Options.Metrics
// reach the campaign analyzers: a traced Fig5 run produces balanced
// query spans and a non-empty registry.
func TestFigTraceAndMetricsThreaded(t *testing.T) {
	var buf bytes.Buffer
	tracer := obs.NewTracer(&buf)
	root := tracer.Start("fig5")
	reg := obs.NewRegistry()
	opt := Options{Inputs: 1, Runs: 1, Systems: []string{"ieee14"}, Trace: root, Metrics: reg}
	if _, err := Fig5(core.Observability, opt); err != nil {
		t.Fatal(err)
	}
	root.End()
	if err := tracer.Err(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"name":"query"`)) {
		t.Fatal("trace has no query spans")
	}
	queries, conflicts, solveSec := registryTotals(reg)
	if queries <= 0 || solveSec <= 0 {
		t.Fatalf("registry empty after traced campaign: q=%v conf=%v solve=%v", queries, conflicts, solveSec)
	}
}
