package serve

import (
	"io"
	"net/http"
	"path/filepath"
	"testing"

	"scadaver/internal/core"
)

// TestServicePresimplifyVerdicts: the service with preprocessing and
// the shared encoding cache enabled returns exactly the verdicts of a
// plain direct analyzer, and repeated requests share one snapshot.
func TestServicePresimplifyVerdicts(t *testing.T) {
	s, ts := newTestServer(t, func(o *Options) { o.Presimplify = true })
	if s.cache == nil {
		t.Fatal("encoding cache should be on by default")
	}

	direct, err := core.NewAnalyzer(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	queries := []core.Query{
		{Property: core.Observability, Combined: true, K: 0},
		{Property: core.Observability, Combined: true, K: 1},
		{Property: core.SecuredObservability, Combined: true, K: 1},
		{Property: core.BadDataDetectability, Combined: true, K: 0, R: 1},
	}
	for _, q := range queries {
		resp := postJSON(t, ts.URL+"/v1/verify", VerifyRequest{Config: "grid", Query: q})
		if resp.StatusCode != http.StatusOK {
			body, _ := io.ReadAll(resp.Body)
			t.Fatalf("%v: status = %d, body %s", q, resp.StatusCode, body)
		}
		got := decodeBody[VerifyResponse](t, resp)
		want, err := direct.Verify(q)
		if err != nil {
			t.Fatal(err)
		}
		if got.Result.Status != want.Status {
			t.Errorf("%v: served %v, direct %v", q, got.Result.Status, want.Status)
		}
	}
	// Three distinct structures were queried (observability twice under
	// different budgets shares one snapshot).
	if got := s.cache.Len(); got != 3 {
		t.Errorf("shared cache holds %d snapshots, want 3", got)
	}
}

// TestEnumerateRejectsStaleEncodingCheckpoint: a checkpoint journaled
// under a different CNF encoding version must be rejected with 409, not
// resumed against clauses with a different meaning.
func TestEnumerateRejectsStaleEncodingCheckpoint(t *testing.T) {
	dir := t.TempDir()
	_, ts := newTestServer(t, func(o *Options) { o.CheckpointDir = dir })
	q := core.Query{Property: core.Observability, Combined: true, K: 2}

	// Journal one vector under the pre-versioned fingerprint (what an
	// older binary would have written).
	staleFP, err := core.CampaignFingerprint(testConfig(t), core.CheckpointKindEnumerate, q)
	if err != nil {
		t.Fatal(err)
	}
	ck, err := core.OpenCheckpoint(filepath.Join(dir, "stale.ckpt"), core.CheckpointKindEnumerate, staleFP)
	if err != nil {
		t.Fatal(err)
	}
	if err := ck.Add(core.ThreatVector{}); err != nil {
		t.Fatal(err)
	}

	resp := postJSON(t, ts.URL+"/v1/enumerate",
		EnumerateRequest{Config: "grid", Query: q, RequestID: "stale"})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("stale-encoding checkpoint: status = %d, want 409; body %s", resp.StatusCode, body)
	}

	// A fresh ID under the current encoding still works end to end.
	resp = postJSON(t, ts.URL+"/v1/enumerate",
		EnumerateRequest{Config: "grid", Query: q, RequestID: "fresh"})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("fresh enumerate: status = %d, body %s", resp.StatusCode, body)
	}
}
