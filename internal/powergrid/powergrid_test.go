package powergrid

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIEEE14Shape(t *testing.T) {
	sys := IEEE14()
	if sys.NBuses != 14 || len(sys.Branches) != 20 {
		t.Fatalf("ieee14: %d buses, %d branches", sys.NBuses, len(sys.Branches))
	}
	if err := sys.Validate(); err != nil {
		t.Fatal(err)
	}
	avg := sys.AverageDegree()
	if avg < 2.5 || avg > 3.2 {
		t.Fatalf("ieee14 average degree %.2f, expected ≈3", avg)
	}
	if sys.MaxMeasurements() != 2*20+14 {
		t.Fatalf("MaxMeasurements = %d", sys.MaxMeasurements())
	}
}

func TestCase5Shape(t *testing.T) {
	sys := Case5()
	if sys.NBuses != 5 || len(sys.Branches) != 7 {
		t.Fatalf("case5: %d buses, %d branches", sys.NBuses, len(sys.Branches))
	}
	if err := sys.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGeneratedSystems(t *testing.T) {
	cases := []struct {
		sys      *BusSystem
		buses    int
		branches int
	}{
		{IEEE30(), 30, 41},
		{IEEE57(), 57, 80},
		{IEEE118(), 118, 186},
	}
	for _, tc := range cases {
		if tc.sys.NBuses != tc.buses || len(tc.sys.Branches) != tc.branches {
			t.Fatalf("%s: %d buses %d branches, want %d/%d",
				tc.sys.Name, tc.sys.NBuses, len(tc.sys.Branches), tc.buses, tc.branches)
		}
		if err := tc.sys.Validate(); err != nil {
			t.Fatalf("%s: %v", tc.sys.Name, err)
		}
		avg := tc.sys.AverageDegree()
		if avg < 2.0 || avg > 4.0 {
			t.Fatalf("%s: average degree %.2f out of grid-like range", tc.sys.Name, avg)
		}
	}
}

func TestGeneratedSystemsDeterministic(t *testing.T) {
	a, b := IEEE57(), IEEE57()
	if len(a.Branches) != len(b.Branches) {
		t.Fatal("nondeterministic generation")
	}
	for i := range a.Branches {
		if a.Branches[i] != b.Branches[i] {
			t.Fatalf("branch %d differs: %v vs %v", i, a.Branches[i], b.Branches[i])
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"ieee14", "ieee30", "ieee57", "ieee118", "case5"} {
		sys, err := ByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if sys.Name != name {
			t.Fatalf("got name %q, want %q", sys.Name, name)
		}
	}
	if _, err := ByName("ieee9999"); err == nil {
		t.Fatal("expected error for unknown system")
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		sys  BusSystem
		want error
	}{
		{BusSystem{NBuses: 0}, ErrNoBuses},
		{BusSystem{NBuses: 2, Branches: []Branch{{From: 1, To: 3}}}, ErrBadBranch},
		{BusSystem{NBuses: 2, Branches: []Branch{{From: 1, To: 1}}}, ErrSelfLoop},
		{BusSystem{NBuses: 3, Branches: []Branch{{From: 1, To: 2}}}, ErrDisconnected},
	}
	for i, tc := range cases {
		if err := tc.sys.Validate(); !errors.Is(err, tc.want) {
			t.Errorf("case %d: got %v, want %v", i, err, tc.want)
		}
	}
}

func TestGenerateArgumentErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := Generate(1, 0, rng); err == nil {
		t.Error("expected error for 1 bus")
	}
	if _, err := Generate(5, 3, rng); err == nil {
		t.Error("expected error for too few branches")
	}
	if _, err := Generate(4, 7, rng); err == nil {
		t.Error("expected error for too many branches")
	}
}

func TestQuickGenerateAlwaysConnected(t *testing.T) {
	f := func(seed int64, busRaw, extraRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		buses := 2 + int(busRaw)%60
		maxExtra := buses*(buses-1)/2 - (buses - 1)
		extra := 0
		if maxExtra > 0 {
			extra = int(extraRaw) % minInt(maxExtra+1, buses)
		}
		sys, err := Generate(buses, buses-1+extra, rng)
		if err != nil {
			return false
		}
		return sys.Validate() == nil && len(sys.Branches) == buses-1+extra
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestFullMeasurementSet(t *testing.T) {
	sys := Case5()
	ms := FullMeasurementSet(sys)
	if ms.Len() != 2*7+5 {
		t.Fatalf("len = %d, want 19", ms.Len())
	}
	if ms.NStates != 5 {
		t.Fatalf("NStates = %d", ms.NStates)
	}
	// First two rows are forward/backward flow on branch 1: opposite rows.
	for x := 0; x < 5; x++ {
		if ms.Msrs[0].Row[x] != -ms.Msrs[1].Row[x] {
			t.Fatalf("fwd/bwd rows not opposite at col %d", x)
		}
	}
	// Injection row of a bus sums incident susceptances on the diagonal.
	var injRow []float64
	for _, m := range ms.Msrs {
		if m.Kind == Injection && m.From == 2 {
			injRow = m.Row
		}
	}
	if injRow == nil {
		t.Fatal("no injection measurement for bus 2")
	}
	sum := 0.0
	for _, br := range sys.Branches {
		if br.From == 2 || br.To == 2 {
			sum += br.Susceptance
		}
	}
	if math.Abs(injRow[1]-sum) > 1e-9 {
		t.Fatalf("injection diagonal = %v, want %v", injRow[1], sum)
	}
	// Row sums of flow and injection rows are zero (DC property).
	for _, m := range ms.Msrs {
		s := 0.0
		for _, v := range m.Row {
			s += v
		}
		if math.Abs(s) > 1e-9 {
			t.Fatalf("%v: row sum %v != 0", m, s)
		}
	}
}

func TestStateSet(t *testing.T) {
	ms := FullMeasurementSet(Case5())
	// Flow measurements touch exactly two states.
	for z, m := range ms.Msrs {
		ss := ms.StateSet(z)
		switch m.Kind {
		case FlowForward, FlowBackward:
			if len(ss) != 2 {
				t.Fatalf("%v: StateSet %v, want 2 states", m, ss)
			}
		case Injection:
			if len(ss) < 2 {
				t.Fatalf("%v: StateSet %v too small", m, ss)
			}
		}
	}
	all := ms.StateSets()
	if len(all) != ms.Len() {
		t.Fatalf("StateSets len %d", len(all))
	}
}

func TestUniqueGroupsPairsFlows(t *testing.T) {
	ms := FullMeasurementSet(Case5())
	groups := ms.UniqueGroups()
	// 7 lines (fwd+bwd pairs) + 5 injections = 12 groups.
	if len(groups) != 12 {
		t.Fatalf("groups = %d, want 12", len(groups))
	}
	paired := 0
	for _, g := range groups {
		switch len(g) {
		case 2:
			paired++
			a, b := ms.Msrs[g[0]], ms.Msrs[g[1]]
			if !(a.From == b.To && a.To == b.From) {
				t.Fatalf("group %v pairs non-opposite measurements %v %v", g, a, b)
			}
		case 1:
		default:
			t.Fatalf("unexpected group size %d", len(g))
		}
	}
	if paired != 7 {
		t.Fatalf("paired groups = %d, want 7", paired)
	}
}

func TestFromJacobian(t *testing.T) {
	rows := [][]float64{
		{1, -1, 0},
		{-1, 1, 0},
		{0, 2, -2},
	}
	ms, err := FromJacobian(rows)
	if err != nil {
		t.Fatal(err)
	}
	if ms.Len() != 3 || ms.NStates != 3 {
		t.Fatalf("len=%d states=%d", ms.Len(), ms.NStates)
	}
	groups := ms.UniqueGroups()
	if len(groups) != 2 {
		t.Fatalf("groups = %v, want 2 groups", groups)
	}
	if _, err := FromJacobian([][]float64{{1}, {1, 2}}); err == nil {
		t.Fatal("expected ragged-row error")
	}
	if _, err := FromJacobian(nil); err == nil {
		t.Fatal("expected empty error")
	}
}

func TestJacobianMatrix(t *testing.T) {
	ms := FullMeasurementSet(Case5())
	j := ms.Jacobian()
	if j.Rows() != ms.Len() || j.Cols() != 5 {
		t.Fatalf("jacobian %dx%d", j.Rows(), j.Cols())
	}
	// DC Jacobian of a connected system has rank n-1 (angle reference).
	if r := j.Rank(); r != 4 {
		t.Fatalf("rank = %d, want 4", r)
	}
}

func TestSample(t *testing.T) {
	ms := FullMeasurementSet(IEEE14())
	rng := rand.New(rand.NewSource(3))
	half := ms.Sample(50, rng)
	if got, want := half.Len(), (ms.Len()+1)/2; got != want {
		t.Fatalf("sample 50%%: %d, want %d", got, want)
	}
	for i, m := range half.Msrs {
		if m.ID != i+1 {
			t.Fatalf("IDs not renumbered: %v", m)
		}
	}
	full := ms.Sample(100, rng)
	if full.Len() != ms.Len() {
		t.Fatalf("sample 100%%: %d", full.Len())
	}
	tiny := ms.Sample(0.0001, rng)
	if tiny.Len() != 1 {
		t.Fatalf("sample ≈0%%: %d, want 1", tiny.Len())
	}
}

func TestSampleDoesNotAliasRows(t *testing.T) {
	ms := FullMeasurementSet(Case5())
	rng := rand.New(rand.NewSource(9))
	s := ms.Sample(100, rng)
	s.Msrs[0].Row[0] = 12345
	if ms.Msrs[0].Row[0] == 12345 {
		t.Fatal("Sample aliases source rows")
	}
}

func TestCoversAllStates(t *testing.T) {
	ms := FullMeasurementSet(Case5())
	all := make([]int, ms.Len())
	for i := range all {
		all[i] = i
	}
	if !ms.CoversAllStates(all) {
		t.Fatal("full set must cover all states")
	}
	if ms.CoversAllStates([]int{0}) {
		t.Fatal("single flow cannot cover 5 states")
	}
	if ms.CoversAllStates(nil) {
		t.Fatal("empty set covers nothing")
	}
}

func TestMsrKindString(t *testing.T) {
	if FlowForward.String() != "flow-fwd" || Injection.String() != "injection" ||
		FlowBackward.String() != "flow-bwd" || Custom.String() != "custom" || MsrKind(0).String() != "unknown" {
		t.Fatal("MsrKind.String broken")
	}
}
