package core

import (
	"encoding/json"
	"fmt"
	"time"

	"scadaver/internal/logic"
	"scadaver/internal/obs"
	"scadaver/internal/sat"
)

// Sweep verifies a family of queries that differ only in their failure
// budget over one topology, reusing the structural encoding. The
// configuration constraints, the delivery definitions and the negated
// property are encoded once; each VerifyK / VerifySplit call then adds
// only the cardinality constraint for its budget and solves it as an
// assumption, so the SAT core keeps its variables, saved phases and
// learned clauses across the whole sweep instead of rebuilding the CNF
// from scratch per k. This is the fast path behind MaxResiliency and
// MaxResiliencyCombined.
//
// Result.Stats of a sweep verification is the per-solve delta (via
// sat.Stats.Sub), so instrumentation stays attributable to individual
// queries even though the solver is shared across the sweep.
//
// A Sweep borrows its Analyzer and is subject to the same ownership
// rule: one goroutine at a time (see Runner).
type Sweep struct {
	a    *Analyzer
	enc  *logic.Encoder
	prop Property
	r    int
	kl   int

	// cert is the shared proof checker of a certified sweep (nil
	// otherwise): one proof stream covers the whole sweep, and each
	// per-k Unsat is certified via RUP-ness of its negated budget
	// assumption (see certify.go).
	cert *certState
}

// NewSweep prepares a reusable encoding of the property — with the fixed
// corrupted-measurement budget r and link budget kl — for repeated
// verification under varying device-failure budgets. With an encoding
// cache configured the sweep starts from a clone of the shared (and,
// under presimplify, pre-simplified) structural snapshot; otherwise it
// encodes the structure itself, preprocessing it when presimplify is on.
// Either way, per-k budgets stay assumptions on the sweep's private
// encoder.
func (a *Analyzer) NewSweep(p Property, r, kl int) (*Sweep, error) {
	probe := Query{Property: p, Combined: true, K: 0, R: r, KL: kl}
	if err := validateQuery(probe); err != nil {
		return nil, err
	}
	var enc *logic.Encoder
	var cert *certState
	// As in Verify, certification forces the fresh-encoder path: the
	// sweep's proof stream must contain every input clause, so the
	// checker is armed on the encoder from construction.
	if a.cache != nil && !a.certify {
		var err error
		enc, _, _, err = a.snapshot(probe)
		if err != nil {
			return nil, err
		}
	} else {
		cert = a.beginCertify()
		var delivered []*logic.Formula
		enc, delivered = a.encodeStructure(probe)
		a.proofSink = nil
		enc.Assert(a.violationFormula(probe, delivered))
		if a.presimplify {
			enc.Simplify()
		}
	}
	return &Sweep{a: a, enc: enc, prop: p, r: r, kl: kl, cert: cert}, nil
}

// VerifyK verifies the combined-budget query with at most k device
// failures, reusing the sweep's encoding.
func (s *Sweep) VerifyK(k int) (*Result, error) {
	return s.verify(Query{Property: s.prop, Combined: true, K: k, R: s.r, KL: s.kl})
}

// VerifySplit verifies the split-budget query with at most k1 IED and
// k2 RTU failures, reusing the sweep's encoding.
func (s *Sweep) VerifySplit(k1, k2 int) (*Result, error) {
	return s.verify(Query{Property: s.prop, K1: k1, K2: k2, R: s.r, KL: s.kl})
}

// VerifyRange verifies the combined budgets k = 0..maxK serially on the
// sweep's shared incremental solver, checkpointing each finished budget
// to ck (kind CheckpointKindCampaign, entries keyed by k) and skipping
// budgets a prior interrupted run already decided. Entries match the
// Runner.VerifyAllResumable shape, so a sweep checkpoint taken serially
// resumes on a parallel campaign over the same query list and vice
// versa. A nil ck disables checkpointing.
func (s *Sweep) VerifyRange(maxK int, ck *Checkpoint) ([]*Result, error) {
	results := make([]*Result, maxK+1)
	for n, raw := range ck.Entries() {
		var e campaignEntry
		if err := json.Unmarshal(raw, &e); err != nil {
			return nil, fmt.Errorf("checkpoint entry %d: %w", n, err)
		}
		if e.Index < 0 || e.Index > maxK || e.Result == nil {
			return nil, fmt.Errorf("checkpoint entry %d: budget %d out of range [0,%d]", n, e.Index, maxK)
		}
		results[e.Index] = e.Result
	}
	for k := 0; k <= maxK; k++ {
		if results[k] != nil {
			continue
		}
		res, err := s.VerifyK(k)
		if err != nil {
			return nil, err
		}
		results[k] = res
		if cerr := ck.Add(campaignEntry{Index: k, Result: res}); cerr != nil {
			s.a.metrics.Inc("scadaver_checkpoint_errors_total", nil)
		}
	}
	return results, nil
}

func (s *Sweep) verify(q Query) (*Result, error) {
	if err := validateQuery(q); err != nil {
		return nil, err
	}
	start := time.Now()
	qspan := s.a.startQuerySpan(q)
	defer qspan.End()
	qs := s.a.beginQuery(q, "encode")
	defer func() {
		if r := recover(); r != nil {
			s.a.panicQuery(qs, r)
			panic(r)
		}
	}()
	before := s.enc.Solver().Stats()

	// The structure was built once in NewSweep, so a sweep query has no
	// build phase; the encode phase covers constructing the budget
	// formula (its CNF counter is encoded lazily inside Solve and is
	// therefore attributed to the solve phase).
	var ph PhaseTimes
	sp := qspan.Start("encode")
	t0 := time.Now()
	budget := s.a.budgetFormula(q)
	ph.Encode = time.Since(t0)
	sp.End()

	// The budget is passed as an assumption, not asserted: only its
	// sequential counter is added to the instance, and the next budget
	// does not have to be compatible with this one.
	qs.SetPhase("solve")
	sp = qspan.Start("solve")
	s.a.armProgress(s.enc, sp)
	t0 = time.Now()
	out := s.a.solveBudgeted(q, s.enc, sp, budget)
	status := s.a.corruptStatus(out.status)
	ph.Solve = time.Since(t0)
	s.a.disarmProgress(s.enc)
	stats := s.enc.Solver().Stats().Sub(before)
	sp.Annotate(obs.A("status", status.String()), obs.A("conflicts", stats.Conflicts),
		obs.A("attempts", out.attempts))
	sp.End()

	res := &Result{
		Query:         q,
		Status:        status,
		Stats:         stats,
		Attempts:      out.attempts,
		FailureReason: out.reason,
	}
	if status == sat.Sat {
		qs.SetPhase("decode")
		sp = qspan.Start("decode")
		t0 = time.Now()
		v := s.a.extractVector(q, s.enc)
		v = s.a.minimizeVector(q, v)
		if s.a.faults.CorruptModelNow() {
			s.a.corruptVector(&v)
		}
		ph.Decode = time.Since(t0)
		sp.End()
		res.Vector = &v
	}
	if s.cert != nil {
		qs.SetPhase("certify")
		sp = qspan.Start("certify")
		// The budget was assumed, not asserted, so an Unsat at this k is
		// certified by RUP-ness of its negated budget-counter literal.
		var alits []sat.Lit
		if status == sat.Unsat {
			alits = []sat.Lit{s.enc.Lit(budget)}
		}
		s.a.certifyResult(q, s.enc, s.cert, alits, res)
		sp.Annotate(obs.A("certified", res.Certified))
		sp.End()
	}
	res.Phases = ph
	res.Duration = time.Since(start)
	qspan.Annotate(obs.A("status", res.Status.String()))
	s.a.recordMetrics(res)
	s.a.completeQuery(qs, qspan, res.Status.String(), res.FailureReason)
	return res, nil
}
