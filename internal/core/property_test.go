package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"scadaver/internal/powergrid"
	"scadaver/internal/sat"
	"scadaver/internal/scadanet"
	"scadaver/internal/synth"
)

// TestQuickObservabilityMonotoneInFailures: adding failures can only
// degrade observability — if the system is observable under failure set
// T, it is observable under every subset S ⊆ T.
func TestQuickObservabilityMonotoneInFailures(t *testing.T) {
	cfg, err := scadanet.CaseStudyConfig(false)
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewAnalyzer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	devices := []scadanet.DeviceID{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}

	f := func(maskT uint16, dropBits uint16, secured bool) bool {
		down := func(mask uint16) map[scadanet.DeviceID]bool {
			m := map[scadanet.DeviceID]bool{}
			for i, d := range devices {
				if mask>>uint(i)&1 == 1 {
					m[d] = true
				}
			}
			return m
		}
		bigger := maskT & 0xFFF
		smaller := bigger &^ dropBits // subset
		if a.EvalObservability(down(bigger), secured) {
			return a.EvalObservability(down(smaller), secured)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSecuredSubsetOfDelivered: secured delivery implies plain
// delivery under every failure set.
func TestQuickSecuredSubsetOfDelivered(t *testing.T) {
	cfg, err := scadanet.CaseStudyConfig(true)
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewAnalyzer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	devices := []scadanet.DeviceID{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}
	f := func(mask uint16) bool {
		down := map[scadanet.DeviceID]bool{}
		for i, d := range devices {
			if mask>>uint(i)&1 == 1 {
				down[d] = true
			}
		}
		sec := a.DeliveredMeasurements(down, true)
		plain := a.DeliveredMeasurements(down, false)
		for z := range sec {
			if !plain[z] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickVerifyAgreesWithEval fuzzes synthetic systems and checks
// that the SAT verdict matches brute-force evaluation for small split
// budgets.
func TestQuickVerifyAgreesWithEval(t *testing.T) {
	f := func(seed int64, k1Raw, k2Raw, propRaw uint8) bool {
		cfg, err := synth.Generate(synth.Params{
			Bus:                powergrid.Case5(),
			Seed:               seed,
			Hierarchy:          1 + int(seed%2),
			MeasurementPercent: 70,
			SecureFraction:     0.6,
		})
		if err != nil {
			return false
		}
		a, err := NewAnalyzer(cfg)
		if err != nil {
			return false
		}
		k1 := int(k1Raw) % 2
		k2 := int(k2Raw) % 2
		prop := Observability
		if propRaw%2 == 1 {
			prop = SecuredObservability
		}
		res, err := a.Verify(Query{Property: prop, K1: k1, K2: k2})
		if err != nil {
			return false
		}

		// Brute force over all budget-conformant failure sets.
		var ieds, rtus []scadanet.DeviceID
		for _, d := range cfg.Net.DevicesOfKind(scadanet.IED) {
			ieds = append(ieds, d.ID)
		}
		for _, d := range cfg.Net.DevicesOfKind(scadanet.RTU) {
			rtus = append(rtus, d.ID)
		}
		secured := prop == SecuredObservability
		violated := false
		var rec func(iIdx, nI, rIdx, nR int, down map[scadanet.DeviceID]bool)
		rec = func(iIdx, nI, rIdx, nR int, down map[scadanet.DeviceID]bool) {
			if violated {
				return
			}
			if !a.EvalObservability(down, secured) {
				violated = true
				return
			}
			for i := iIdx; i < len(ieds) && nI < k1; i++ {
				down[ieds[i]] = true
				rec(i+1, nI+1, rIdx, nR, down)
				delete(down, ieds[i])
			}
			for r := rIdx; r < len(rtus) && nR < k2; r++ {
				down[rtus[r]] = true
				rec(len(ieds), k1, r+1, nR+1, down)
				delete(down, rtus[r])
			}
		}
		rec(0, 0, 0, 0, map[scadanet.DeviceID]bool{})
		return (res.Status == sat.Sat) == violated
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickMaxResiliencyBinaryAgreesWithLinear checks the binary-search
// combined-budget maximum against the definitionally correct linear
// scan.
func TestQuickMaxResiliencyBinaryAgreesWithLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 6; trial++ {
		cfg, err := synth.Generate(synth.Params{
			Bus:                powergrid.Case5(),
			Seed:               rng.Int63(),
			Hierarchy:          1 + trial%3,
			MeasurementPercent: 80,
			SecureFraction:     1,
		})
		if err != nil {
			t.Fatal(err)
		}
		a, err := NewAnalyzer(cfg)
		if err != nil {
			t.Fatal(err)
		}
		bin, err := a.MaxResiliencyCombined(Observability, 0)
		if err != nil {
			t.Fatal(err)
		}
		lin, err := a.MaxResiliency(Observability, 0, true, true)
		if err != nil {
			t.Fatal(err)
		}
		if bin != lin {
			t.Fatalf("trial %d: binary %d vs linear %d", trial, bin, lin)
		}
	}
}

// TestQuickBadDataMonotoneInR: if r-detectability holds, r'-detectability
// holds for every r' <= r.
func TestQuickBadDataMonotoneInR(t *testing.T) {
	cfg, err := scadanet.CaseStudyConfig(false)
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewAnalyzer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f := func(mask uint16, rRaw uint8) bool {
		devices := []scadanet.DeviceID{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}
		down := map[scadanet.DeviceID]bool{}
		for i, d := range devices {
			if mask>>uint(i)&1 == 1 {
				down[d] = true
			}
		}
		r := int(rRaw)%3 + 1
		if a.EvalBadDataDetectability(down, r) {
			return a.EvalBadDataDetectability(down, r-1)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
