// Package sat implements a complete CDCL (conflict-driven clause learning)
// SAT solver used as the decision engine behind the SCADA resiliency
// verifier.
//
// The solver implements the standard modern architecture: two-watched-literal
// unit propagation, first-UIP conflict analysis with learned-clause
// minimization, exponential VSIDS variable activities with a binary heap,
// phase saving, Luby-sequence restarts, LBD-based (glue) learned-clause
// database reduction, and incremental solving under assumptions.
//
// The paper this repository reproduces solves its model with Z3; every
// constraint in that model is propositional structure plus cardinality
// sums, so a SAT back-end (fed by package logic's Tseitin and
// sequential-counter encodings) decides exactly the same fragment.
//
// The zero value of Solver is not usable; construct with New.
package sat
