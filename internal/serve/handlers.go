package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"path/filepath"
	"regexp"
	"strconv"
	"time"

	"scadaver/internal/core"
	"scadaver/internal/faultinject"
	"scadaver/internal/sat"
	"scadaver/internal/scadanet"
)

// BudgetSpec is the wire form of a per-request verification budget.
// Every field is optional; absent budgets take the server default, and
// all budgets are clamped by the server's MaxBudget ceiling.
type BudgetSpec struct {
	DeadlineMS int64  `json:"deadlineMs,omitempty"`
	Conflicts  uint64 `json:"conflicts,omitempty"`
	Retries    int    `json:"retries,omitempty"`
}

func (b BudgetSpec) toBudget() core.QueryBudget {
	return core.QueryBudget{
		Deadline:  time.Duration(b.DeadlineMS) * time.Millisecond,
		Conflicts: b.Conflicts,
		Retries:   b.Retries,
	}
}

// VerifyRequest is the body of POST /v1/verify.
type VerifyRequest struct {
	Config string     `json:"config"`
	Query  core.Query `json:"query"`
	Budget BudgetSpec `json:"budget"`
}

// VerifyResponse is the body of a successful POST /v1/verify. On a
// certifying service (Options.Certify) the attestation fields report
// whether the verdict was independently checked, how many derived
// proof clauses the in-process checker accepted, and the audit
// overhead in milliseconds; they are zero otherwise. The cluster
// coordinator relays member bodies verbatim, so the attestation of the
// member that solved the query reaches the client unchanged.
type VerifyResponse struct {
	Resilient    bool         `json:"resilient"`
	Result       *core.Result `json:"result"`
	Certified    bool         `json:"certified,omitempty"`
	ProofClauses uint64       `json:"proofClauses,omitempty"`
	AuditMs      float64      `json:"auditMs,omitempty"`
}

// SweepRequest is the body of POST /v1/sweep: verify every combined
// budget k = 0..MaxK of the property on one incremental solver. A
// RequestID (with a checkpoint directory configured) makes the sweep
// resumable: each finished budget is journaled, and a retry of the same
// ID — on this node, or on a node the checkpoint was handed off to —
// re-solves only the budgets the journal does not already hold.
type SweepRequest struct {
	Config    string        `json:"config"`
	Property  core.Property `json:"property"`
	MaxK      int           `json:"maxK"`
	R         int           `json:"r,omitempty"`
	KL        int           `json:"kl,omitempty"`
	RequestID string        `json:"requestId,omitempty"`
	Budget    BudgetSpec    `json:"budget"`
}

// SweepResponse is the body of a successful POST /v1/sweep. Resumed
// counts the budgets recovered from the request's checkpoint rather
// than solved.
type SweepResponse struct {
	Results []*core.Result `json:"results"`
	Resumed int            `json:"resumed,omitempty"`
	// Certification attestation (Options.Certify): Certified only when
	// every solved budget was certified (budgets resumed from a
	// checkpoint re-use their recorded attestation); ProofClauses and
	// AuditMs aggregate over the sweep.
	Certified    bool    `json:"certified,omitempty"`
	ProofClauses uint64  `json:"proofClauses,omitempty"`
	AuditMs      float64 `json:"auditMs,omitempty"`
}

// EnumerateRequest is the body of POST /v1/enumerate. The response is
// streamed as JSONL: one ThreatVector per line as it is discovered,
// then one EnumerateTrailer line — a stream without a trailer was
// truncated. A RequestID (with a checkpoint directory configured)
// makes the request resumable: a retry with the same ID replays the
// checkpointed vectors and continues the search.
type EnumerateRequest struct {
	Config    string     `json:"config"`
	Query     core.Query `json:"query"`
	Max       int        `json:"max,omitempty"`
	RequestID string     `json:"requestId,omitempty"`
	Budget    BudgetSpec `json:"budget"`
}

// EnumerateTrailer is the final JSONL line of a complete enumeration
// stream.
type EnumerateTrailer struct {
	Done    bool `json:"done"`
	Vectors int  `json:"vectors"`
	Resumed int  `json:"resumed,omitempty"`
}

// errorBody is the JSON error envelope of every non-2xx response.
type errorBody struct {
	Error string `json:"error"`
}

func writeJSONError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(errorBody{Error: msg}) //nolint:errcheck // client gone
}

// account records one finished request into the per-route metrics —
// request count, latency histogram — and the SLO breach counter when a
// threshold is armed and exceeded. Every handler exit path funnels
// through it, streaming responses included.
func (s *Server) account(route string, start time.Time, codeLabel string) {
	elapsed := time.Since(start)
	s.reg.Inc("scadaver_http_requests_total", map[string]string{
		"route": route, "code": codeLabel,
	})
	s.reg.ObserveDuration("scadaver_http_request_seconds",
		map[string]string{"route": route}, elapsed)
	if t := s.opts.SLOThreshold; t > 0 && elapsed > t {
		s.reg.Inc("scadaver_slo_breach_total", map[string]string{"route": route})
		s.opts.ErrorLog.Printf("serve: SLO breach route=%s code=%s dur=%s threshold=%s",
			route, codeLabel, elapsed, t)
	}
}

// respond writes one JSON response and accounts the request metrics.
func (s *Server) respond(w http.ResponseWriter, route string, start time.Time, code int, body any) {
	s.account(route, start, strconv.Itoa(code))
	if msg, ok := body.(error); ok {
		writeJSONError(w, code, msg.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if body != nil {
		json.NewEncoder(w).Encode(body) //nolint:errcheck // client gone
	}
}

// decode parses one JSON request body, bounded to keep a hostile
// client from ballooning the heap.
func decode(r *http.Request, into any) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	return dec.Decode(into)
}

// lookupConfig resolves a request's named configuration — the
// currently published version, so verification always sees the latest
// successfully re-verified mutation.
func (s *Server) lookupConfig(name string) (*scadanet.Config, error) {
	sc, ok := s.configs[name]
	if !ok {
		return nil, fmt.Errorf("unknown config %q", name)
	}
	return sc.cur.Load().cfg, nil
}

// classify maps a finished job's error to an HTTP status — panic →
// 500, deadline → 504, drain → 503 — and settles the job's breaker
// accounting: service-health failures feed the window, client-caused
// outcomes release the admission slot without a sample. Every admitted
// job must reach exactly one Record or Cancel, or a half-open probe
// slot would leak and the breaker could never close again; error paths
// settle here, success paths Record in their handler.
func (s *Server) classify(j *job) (int, error) {
	var pe *core.PanicError
	switch {
	case errors.As(j.err, &pe):
		s.brk.Record(true)
		return http.StatusInternalServerError, fmt.Errorf("internal: request %d failed in the verification worker", j.id)
	case errors.Is(j.err, context.DeadlineExceeded):
		s.brk.Record(true)
		return http.StatusGatewayTimeout, fmt.Errorf("request deadline exceeded before a verdict")
	case errors.Is(j.err, context.Canceled):
		s.brk.Cancel()
		if s.draining.Load() {
			return http.StatusServiceUnavailable, fmt.Errorf("server is draining")
		}
		return 499, fmt.Errorf("client closed request") // nginx's 499; never actually received
	case errors.Is(j.err, core.ErrBadQuery), errors.Is(j.err, core.ErrBadBudget):
		s.brk.Cancel()
		return http.StatusBadRequest, j.err
	case errors.Is(j.err, scadanet.ErrBadDelta), errors.Is(j.err, scadanet.ErrUnknownDevice),
		errors.Is(j.err, scadanet.ErrUnknownLink), errors.Is(j.err, scadanet.ErrNoMTU),
		errors.Is(j.err, scadanet.ErrMultipleMTU), errors.Is(j.err, scadanet.ErrNotIED):
		// A semantically invalid delta is the client's fault: the prior
		// configuration version stays live and the breaker sees nothing.
		s.brk.Cancel()
		return http.StatusUnprocessableEntity, j.err
	case errors.Is(j.err, faultinject.ErrInjected):
		// An injected mid-stream disconnect is a client fault, exactly
		// like the real disconnect it models.
		s.brk.Cancel()
		return 499, j.err
	case j.err != nil:
		s.brk.Record(true)
		return http.StatusInternalServerError, j.err
	}
	return http.StatusOK, nil
}

func (s *Server) handleVerify(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	const route = "verify"
	var req VerifyRequest
	if err := decode(r, &req); err != nil {
		s.respond(w, route, start, http.StatusBadRequest, fmt.Errorf("bad request: %w", err))
		return
	}
	cfg, err := s.lookupConfig(req.Config)
	if err != nil {
		s.respond(w, route, start, http.StatusNotFound, err)
		return
	}
	budget, err := s.deriveBudget(req.Budget.toBudget())
	if err != nil {
		s.respond(w, route, start, http.StatusBadRequest, err)
		return
	}

	var out core.Outcome
	run := func(ctx context.Context) error {
		runner := core.NewRunner(1, s.analyzerOptions(budget)...)
		outs, err := runner.VerifyAllCollect(ctx, cfg, []core.Query{req.Query})
		if err != nil {
			return err
		}
		out = outs[0]
		return nil
	}
	j, release, ok := s.admit(w, r, route, s.requestDeadline(budget, 1), run)
	if !ok {
		return
	}
	defer release()
	<-j.done

	if j.err == nil && out.Err != nil {
		j.err = out.Err
	}
	if j.err == nil && out.Result == nil {
		// The campaign was interrupted before the query was decided.
		j.err = j.ctx.Err()
		if j.err == nil {
			j.err = context.Canceled
		}
	}
	if code, err := s.classify(j); err != nil {
		s.respond(w, route, start, code, err)
		return
	}
	s.brk.Record(out.Result.Status == sat.Unsolved)
	s.respond(w, route, start, http.StatusOK, VerifyResponse{
		Resilient:    out.Result.Resilient(),
		Result:       out.Result,
		Certified:    out.Result.Certified,
		ProofClauses: out.Result.ProofClauses,
		AuditMs:      durationMs(out.Result.Audit),
	})
}

// durationMs renders an audit duration as fractional milliseconds for
// the attestation fields.
func durationMs(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	const route = "sweep"
	var req SweepRequest
	if err := decode(r, &req); err != nil {
		s.respond(w, route, start, http.StatusBadRequest, fmt.Errorf("bad request: %w", err))
		return
	}
	cfg, err := s.lookupConfig(req.Config)
	if err != nil {
		s.respond(w, route, start, http.StatusNotFound, err)
		return
	}
	if req.MaxK < 0 || req.MaxK > s.opts.MaxSweepK {
		s.respond(w, route, start, http.StatusBadRequest,
			fmt.Errorf("maxK %d outside [0,%d]", req.MaxK, s.opts.MaxSweepK))
		return
	}
	budget, err := s.deriveBudget(req.Budget.toBudget())
	if err != nil {
		s.respond(w, route, start, http.StatusBadRequest, err)
		return
	}
	// The sweep fingerprint covers everything that shapes the campaign —
	// property, budgets, range — so a requestId reused for a different
	// sweep conflicts (409) instead of resuming the wrong one.
	ck, err := s.openRequestCheckpoint(req.RequestID, cfg, core.CheckpointKindCampaign,
		req.Property, req.R, req.KL, req.MaxK)
	if err != nil {
		code := http.StatusBadRequest
		if errors.Is(err, core.ErrCheckpointMismatch) {
			code = http.StatusConflict
		}
		s.respond(w, route, start, code, err)
		return
	}
	resumed := len(ck.Entries())

	var results []*core.Result
	run := func(ctx context.Context) error {
		opts := append(s.analyzerOptions(budget), core.WithInterrupt(func() bool {
			return ctx.Err() != nil
		}))
		a, err := core.NewAnalyzer(cfg, opts...)
		if err != nil {
			return err
		}
		sw, err := a.NewSweep(req.Property, req.R, req.KL)
		if err != nil {
			return err
		}
		results, err = sw.VerifyRange(req.MaxK, ck)
		return err
	}
	j, release, ok := s.admit(w, r, route, s.requestDeadline(budget, req.MaxK+1), run)
	if !ok {
		return
	}
	defer release()
	<-j.done

	// An interrupted sweep degrades its remaining budgets to Unsolved
	// results rather than erroring; surface the interruption as the
	// request-level verdict.
	if j.err == nil && j.ctx.Err() != nil && anyInterrupted(results) {
		j.err = j.ctx.Err()
	}
	if code, err := s.classify(j); err != nil {
		s.respond(w, route, start, code, err)
		return
	}
	s.brk.Record(anyUnsolved(results))
	resp := SweepResponse{Results: results, Resumed: resumed, Certified: len(results) > 0}
	for _, res := range results {
		if res == nil {
			continue
		}
		if !res.Certified {
			resp.Certified = false
		}
		resp.ProofClauses += res.ProofClauses
		resp.AuditMs += durationMs(res.Audit)
	}
	s.respond(w, route, start, http.StatusOK, resp)
}

func anyUnsolved(results []*core.Result) bool {
	for _, res := range results {
		if res != nil && res.Status == sat.Unsolved {
			return true
		}
	}
	return false
}

func anyInterrupted(results []*core.Result) bool {
	for _, res := range results {
		if res != nil && res.Status == sat.Unsolved && res.FailureReason == core.ReasonInterrupted {
			return true
		}
	}
	return false
}

// requestIDPattern keeps enumeration request IDs filesystem-safe; the
// checkpoint path is <CheckpointDir>/<RequestID>.ckpt and nothing else.
var requestIDPattern = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$`)

// openRequestCheckpoint opens the resumable checkpoint for one request
// ID, fingerprinted over the configuration and the campaign-shaping
// extras so an ID reused for a different campaign is rejected instead
// of silently resumed.
func (s *Server) openRequestCheckpoint(id string, cfg *scadanet.Config, kind string, extra ...any) (*core.Checkpoint, error) {
	if id == "" || s.opts.CheckpointDir == "" {
		return nil, nil
	}
	if !requestIDPattern.MatchString(id) {
		return nil, fmt.Errorf("invalid requestId %q", id)
	}
	// The encoding version participates in the fingerprint: a checkpoint
	// journaled under an older CNF encoding is rejected (409) rather than
	// resumed against clauses with different meaning.
	fp, err := core.CampaignFingerprint(cfg, kind, append(extra, core.EncodingVersion)...)
	if err != nil {
		return nil, err
	}
	ck, err := core.OpenCheckpoint(filepath.Join(s.opts.CheckpointDir, id+".ckpt"), kind, fp)
	if err != nil {
		return nil, err
	}
	ck.UseFaults(s.opts.Faults)
	return ck, nil
}

func (s *Server) handleEnumerate(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	const route = "enumerate"
	var req EnumerateRequest
	if err := decode(r, &req); err != nil {
		s.respond(w, route, start, http.StatusBadRequest, fmt.Errorf("bad request: %w", err))
		return
	}
	cfg, err := s.lookupConfig(req.Config)
	if err != nil {
		s.respond(w, route, start, http.StatusNotFound, err)
		return
	}
	budget, err := s.deriveBudget(req.Budget.toBudget())
	if err != nil {
		s.respond(w, route, start, http.StatusBadRequest, err)
		return
	}
	maxVectors := req.Max
	if maxVectors <= 0 || maxVectors > s.opts.MaxEnumerate {
		maxVectors = s.opts.MaxEnumerate
	}
	ck, err := s.openRequestCheckpoint(req.RequestID, cfg, core.CheckpointKindEnumerate, req.Query)
	if err != nil {
		code := http.StatusBadRequest
		if errors.Is(err, core.ErrCheckpointMismatch) {
			code = http.StatusConflict
		}
		s.respond(w, route, start, code, err)
		return
	}
	resumed := len(ck.Entries())

	// The stream is written from the worker goroutine while this
	// handler blocks on the job — single-writer, so this is safe. Once
	// the first vector is out the status line is immutable; a later
	// failure truncates the stream (no trailer line) instead.
	flusher, _ := w.(http.Flusher)
	streamed := false
	count := 0
	run := func(ctx context.Context) error {
		opts := append(s.analyzerOptions(budget), core.WithInterrupt(func() bool {
			return ctx.Err() != nil
		}))
		a, err := core.NewAnalyzer(cfg, opts...)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(w)
		_, err = a.EnumerateThreatsStream(req.Query, maxVectors, ck, func(v core.ThreatVector) error {
			if err := s.opts.Faults.BeforeStreamItem(); err != nil {
				return fmt.Errorf("client disconnected mid-stream: %w", err)
			}
			if err := ctx.Err(); err != nil {
				return err
			}
			if !streamed {
				streamed = true
				w.Header().Set("Content-Type", "application/x-ndjson")
				w.WriteHeader(http.StatusOK)
			}
			if err := enc.Encode(v); err != nil {
				return err
			}
			count++
			if flusher != nil {
				flusher.Flush()
			}
			return nil
		})
		if err != nil {
			return err
		}
		if err := ctx.Err(); err != nil {
			// The enumeration stopped because the request was cancelled
			// (solves degraded to interrupted-unsolved), not because the
			// threat space is exhausted; the stream must not claim done.
			return err
		}
		if !streamed {
			streamed = true
			w.Header().Set("Content-Type", "application/x-ndjson")
			w.WriteHeader(http.StatusOK)
		}
		return enc.Encode(EnumerateTrailer{Done: true, Vectors: count, Resumed: resumed})
	}
	j, release, ok := s.admit(w, r, route, s.requestDeadline(budget, maxVectors), run)
	if !ok {
		return
	}
	defer release()
	<-j.done

	code, cerr := s.classify(j)
	if cerr == nil {
		s.brk.Record(false)
		s.account(route, start, strconv.Itoa(http.StatusOK))
		return
	}
	if streamed {
		// The status line is out; the truncated stream (no trailer) is
		// the error signal. Metrics still record the true outcome.
		s.account(route, start, strconv.Itoa(code)+"-truncated")
		return
	}
	s.respond(w, route, start, code, cerr)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, `{"ok":true}`)
}

// readyzBody is the /readyz response, exposing the load signals an
// operator (or autoscaler) steers by. Reasons names each dependency
// that is holding readiness down — an unready probe an operator cannot
// diagnose from its body is a page, not a signal.
type readyzBody struct {
	Ready       bool     `json:"ready"`
	Reasons     []string `json:"reasons,omitempty"`
	Draining    bool     `json:"draining"`
	BreakerOpen bool     `json:"breakerOpen"`
	QueueDepth  int      `json:"queueDepth"`
	QueueCap    int      `json:"queueCap"`
	Inflight    int64    `json:"inflight"`
}

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	body := readyzBody{
		Ready:       s.Ready(),
		Draining:    s.draining.Load(),
		BreakerOpen: s.brk.Open(),
		QueueDepth:  s.q.depth(),
		QueueCap:    s.q.capacity(),
		Inflight:    s.inflight.Load(),
	}
	if body.Draining {
		body.Reasons = append(body.Reasons, "drain in progress")
	}
	if body.BreakerOpen {
		body.Reasons = append(body.Reasons, "breaker open")
	}
	code := http.StatusOK
	if !body.Ready {
		code = http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(body) //nolint:errcheck // client gone
}
