// Package core implements the paper's contribution: the SCADA Analyzer.
// It formally models SCADA configurations (device availability, link
// status, reachability, protocol and crypto pairing), the observability
// requirement of state estimation, secured delivery, and bad-data
// detectability, and verifies k- and (k1,k2)-resilient variants of those
// properties as threat queries: a satisfiable query yields a threat
// vector (a set of device failures violating the property), an
// unsatisfiable one certifies the resiliency specification.
//
// # Mapping to the paper
//
// The package encodes the constructs of Sections III-C through III-F:
//
//   - AssuredDelivery_I / SecuredDelivery_I — deliveryFormula: an IED's
//     measurements reach the MTU over at least one path whose devices
//     and links are up, protocols pair hop by hop, and (for the secured
//     variant) every hop is authenticated and integrity-protected under
//     the secpolicy rules.
//   - Observability — violationFormula(Observability): state estimation
//     stays solvable, i.e. the delivered measurements span all states
//     (powergrid's StateSet_Z cover); the query searches a failure set
//     within the budget under which some state is unmeasured.
//   - SecuredObservability — the same cover over SecuredDelivery_I only.
//   - r-BadDataDetectability — violationFormula(BadDataDetectability):
//     every state must remain observable after removing any r delivered
//     measurements, the paper's redundancy condition for detecting up
//     to r corrupted measurements.
//   - k / (k1,k2) resiliency — budgetFormula: a sequential-counter
//     cardinality bound on failed devices, either one combined budget k
//     or separate IED (k1) and RTU (k2) budgets.
//
// # Pipeline
//
// A Verify call runs query → encode → solve → minimize: the negated
// property and the budget are Tseitin-encoded (package logic) into the
// CDCL solver (package sat); a model is decoded into a ThreatVector and
// greedily minimized against the direct evaluator (eval.go), so every
// reported vector is a minimal witness. EnumerateThreats extends the
// pipeline with blocking clauses to walk the whole antichain of minimal
// threat vectors.
//
// # Scaling the analysis
//
// Two engines accelerate campaigns over many queries:
//
//   - Sweep reuses one structural encoding across a failure-budget
//     sweep, adding only the per-k cardinality counter and passing the
//     budget as an assumption, so learned clauses and saved phases
//     carry over (the fast path behind MaxResiliency and
//     MaxResiliencyCombined).
//   - Runner fans independent queries out over a pool of worker
//     goroutines under the solver ownership rule — one Analyzer, and
//     therefore one solver, per goroutine; only the read-only Config is
//     shared — with deterministic, input-ordered results and
//     context-based cancellation.
//   - The encoding cache (WithEncodingCache / NewEncodingCache) builds
//     each (structure, property) snapshot once, simplifies it with the
//     decision variables frozen, and hands every query a private
//     sat.Clone — concurrent identical requests singleflight into one
//     encode+simplify. With the cache armed, MaxResiliencyCombined
//     gallops up from k = 0 probing pristine clones instead of driving
//     one accumulating incremental sweep solver.
//   - WithPortfolio arms portfolio escalation: a query that survives a
//     DefaultPortfolioThreshold-conflict serial prelude is re-run as a
//     race of diversified solver replicas with clause sharing
//     (sat.SolvePortfolio), carrying the prelude's learned clauses
//     into every replica. Unsat and bound verdicts are identical to
//     serial solving; a Sat witness may be a different, equally valid,
//     minimal vector — which is why -sweep campaigns (contracted to
//     byte-identical output across worker counts) keep both the cache
//     and the portfolio off. WithPortfolioNoShare is the ablation knob.
//
// Every Result carries the per-solve sat.Stats (decisions, conflicts,
// propagations, learned clauses, solve time) of the query that produced
// it.
package core
