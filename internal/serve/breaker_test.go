package serve

import (
	"testing"
	"time"
)

// fakeClock is an injectable breaker clock.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1_700_000_000, 0)} }
func testBreaker(c *fakeClock, opts breakerOptions) *breaker {
	opts.now = c.now
	return newBreaker(opts, nil)
}

func TestBreakerStaysClosedBelowThreshold(t *testing.T) {
	b := testBreaker(newFakeClock(), breakerOptions{Window: 8, Threshold: 0.5, MinSamples: 4})
	for i := 0; i < 20; i++ {
		if !b.Allow() {
			t.Fatalf("Allow = false on healthy traffic (i=%d)", i)
		}
		b.Record(i%4 == 0) // 25% failure rate, below 50% threshold
	}
	if b.Open() {
		t.Fatal("breaker opened below threshold")
	}
}

func TestBreakerOpensAtThreshold(t *testing.T) {
	clk := newFakeClock()
	b := testBreaker(clk, breakerOptions{Window: 8, Threshold: 0.5, MinSamples: 4, Cooldown: time.Second})
	for i := 0; i < 4; i++ {
		b.Record(true)
	}
	if !b.Open() {
		t.Fatal("breaker still closed after 4/4 failures with MinSamples=4")
	}
	if b.Allow() {
		t.Fatal("Allow = true while open, before cooldown")
	}
}

func TestBreakerMinSamplesGate(t *testing.T) {
	b := testBreaker(newFakeClock(), breakerOptions{Window: 8, Threshold: 0.5, MinSamples: 4})
	b.Record(true)
	b.Record(true)
	b.Record(true) // 3/3 failures but below MinSamples
	if b.Open() {
		t.Fatal("breaker opened on fewer than MinSamples outcomes")
	}
}

func TestBreakerHalfOpenProbeSuccessCloses(t *testing.T) {
	clk := newFakeClock()
	b := testBreaker(clk, breakerOptions{Window: 8, Threshold: 0.5, MinSamples: 4, Cooldown: time.Second})
	for i := 0; i < 4; i++ {
		b.Record(true)
	}
	clk.advance(time.Second)
	// Cooldown elapsed: Open reports ready so traffic returns...
	if b.Open() {
		t.Fatal("Open = true after cooldown elapsed")
	}
	// ...and exactly one probe is admitted.
	if !b.Allow() {
		t.Fatal("probe not admitted after cooldown")
	}
	if b.Allow() {
		t.Fatal("second request admitted while probe in flight")
	}
	b.Record(false) // probe succeeds
	if !b.Allow() || b.Open() {
		t.Fatal("breaker did not close after successful probe")
	}
	// The window was reset: one failure must not re-open it.
	b.Record(true)
	if b.Open() {
		t.Fatal("breaker re-opened on a single failure after reset")
	}
}

func TestBreakerHalfOpenProbeFailureReopens(t *testing.T) {
	clk := newFakeClock()
	b := testBreaker(clk, breakerOptions{Window: 8, Threshold: 0.5, MinSamples: 4, Cooldown: time.Second})
	for i := 0; i < 4; i++ {
		b.Record(true)
	}
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("probe not admitted after cooldown")
	}
	b.Record(true) // probe fails
	if b.Allow() {
		t.Fatal("Allow = true immediately after failed probe")
	}
	if !b.Open() {
		t.Fatal("breaker not open after failed probe")
	}
	// Another full cooldown earns another probe.
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("no probe after second cooldown")
	}
}

// TestBreakerCancelReleasesProbe covers the probe-leak fix: a request
// admitted past Allow in the half-open state but shed later (queue
// full, drain race, client fault) must release the probe slot, or the
// breaker can never close again.
func TestBreakerCancelReleasesProbe(t *testing.T) {
	clk := newFakeClock()
	b := testBreaker(clk, breakerOptions{Window: 8, Threshold: 0.5, MinSamples: 4, Cooldown: time.Second})
	for i := 0; i < 4; i++ {
		b.Record(true)
	}
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("probe not admitted")
	}
	b.Cancel() // the probe request was shed before reaching a worker
	if !b.Allow() {
		t.Fatal("probe slot not released by Cancel")
	}
	b.Record(false)
	if b.Open() {
		t.Fatal("breaker did not close after the re-issued probe succeeded")
	}
}

func TestBreakerOnOpenHook(t *testing.T) {
	clk := newFakeClock()
	var transitions []bool
	opts := breakerOptions{Window: 8, Threshold: 0.5, MinSamples: 4, Cooldown: time.Second}
	opts.now = clk.now
	b := newBreaker(opts, func(open bool) { transitions = append(transitions, open) })
	for i := 0; i < 4; i++ {
		b.Record(true)
	}
	clk.advance(time.Second)
	b.Allow()
	b.Record(false)
	if len(transitions) != 2 || !transitions[0] || transitions[1] {
		t.Fatalf("onOpen transitions = %v, want [true false]", transitions)
	}
}
