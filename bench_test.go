package scadaver_test

// One benchmark per table/figure of the paper's evaluation, plus
// ablations. Run with:
//
//	go test -bench=. -benchmem
//
// The full parameter sweeps (several inputs × several runs, exactly as
// the paper describes) live in cmd/scada-bench; these testing.B benches
// time the core verification queries each figure is built from.

import (
	"context"
	"fmt"
	"testing"

	"scadaver"
	"scadaver/internal/baseline"
	"scadaver/internal/core"
	"scadaver/internal/delivery"
	"scadaver/internal/experiments"
	"scadaver/internal/powergrid"
	"scadaver/internal/sat"
	"scadaver/internal/stateest"
	"scadaver/internal/synth"
)

func mustAnalyzer(b *testing.B, cfg *scadaver.Config) *scadaver.Analyzer {
	b.Helper()
	a, err := scadaver.NewAnalyzer(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return a
}

func mustSynth(b *testing.B, p synth.Params) *scadaver.Config {
	b.Helper()
	cfg, err := synth.Generate(p)
	if err != nil {
		b.Fatal(err)
	}
	return cfg
}

// BenchmarkCaseStudyScenario1 times the Section IV-B verification
// queries (Table II input, Fig. 3 topology): the unsat (1,1) and sat
// (2,1) observability checks.
func BenchmarkCaseStudyScenario1(b *testing.B) {
	cfg, err := scadaver.CaseStudyConfig(false)
	if err != nil {
		b.Fatal(err)
	}
	for _, q := range []scadaver.Query{
		{Property: scadaver.Observability, K1: 1, K2: 1},
		{Property: scadaver.Observability, K1: 2, K2: 1},
	} {
		b.Run(q.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				a := mustAnalyzer(b, cfg)
				if _, err := a.Verify(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCaseStudyScenario2 times the Section IV-C secured
// observability queries on both topologies.
func BenchmarkCaseStudyScenario2(b *testing.B) {
	for _, fig4 := range []bool{false, true} {
		cfg, err := scadaver.CaseStudyConfig(fig4)
		if err != nil {
			b.Fatal(err)
		}
		name := "fig3"
		if fig4 {
			name = "fig4"
		}
		b.Run(name, func(b *testing.B) {
			q := scadaver.Query{Property: scadaver.SecuredObservability, K1: 1, K2: 1}
			for i := 0; i < b.N; i++ {
				a := mustAnalyzer(b, cfg)
				if _, err := a.Verify(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// benchBoundary times the sat and unsat verification at an instance's
// resiliency boundary — the quantity plotted in Figs. 5 and 6.
func benchBoundary(b *testing.B, cfg *scadaver.Config, prop scadaver.Property) {
	b.Helper()
	setup := mustAnalyzer(b, cfg)
	kStar, err := setup.MaxResiliencyCombined(prop, cfg.R)
	if err != nil {
		b.Fatal(err)
	}
	unsatK := kStar
	if unsatK < 0 {
		unsatK = 0
	}
	b.Run("unsat", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			a := mustAnalyzer(b, cfg)
			res, err := a.Verify(scadaver.Query{Property: prop, Combined: true, K: unsatK, R: cfg.R})
			if err != nil {
				b.Fatal(err)
			}
			if kStar >= 0 && res.Status != sat.Unsat {
				b.Fatalf("expected unsat at k*=%d, got %v", kStar, res.Status)
			}
		}
	})
	b.Run("sat", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			a := mustAnalyzer(b, cfg)
			res, err := a.Verify(scadaver.Query{Property: prop, Combined: true, K: kStar + 1, R: cfg.R})
			if err != nil {
				b.Fatal(err)
			}
			if res.Status != sat.Sat {
				b.Fatalf("expected sat at k*+1=%d, got %v", kStar+1, res.Status)
			}
		}
	})
}

// BenchmarkFig5aObservability regenerates Fig. 5(a): k-resilient
// observability verification time versus problem size.
func BenchmarkFig5aObservability(b *testing.B) {
	for _, name := range []string{"ieee14", "ieee30", "ieee57", "ieee118"} {
		sys, err := powergrid.ByName(name)
		if err != nil {
			b.Fatal(err)
		}
		cfg := mustSynth(b, synth.Params{Bus: sys, Seed: int64(1000 * sys.NBuses), Hierarchy: 2, SecureFraction: 0.9})
		b.Run(name, func(b *testing.B) {
			benchBoundary(b, cfg, scadaver.Observability)
		})
	}
}

// BenchmarkFig5bSecuredObservability regenerates Fig. 5(b): the secured
// variant.
func BenchmarkFig5bSecuredObservability(b *testing.B) {
	for _, name := range []string{"ieee14", "ieee30", "ieee57", "ieee118"} {
		sys, err := powergrid.ByName(name)
		if err != nil {
			b.Fatal(err)
		}
		cfg := mustSynth(b, synth.Params{Bus: sys, Seed: int64(1000 * sys.NBuses), Hierarchy: 2, SecureFraction: 0.9})
		b.Run(name, func(b *testing.B) {
			benchBoundary(b, cfg, scadaver.SecuredObservability)
		})
	}
}

// BenchmarkFig6aHierarchy14 regenerates Fig. 6(a): verification time
// versus hierarchy level on the 14-bus system.
func BenchmarkFig6aHierarchy14(b *testing.B) {
	for h := 1; h <= 4; h++ {
		cfg := mustSynth(b, synth.Params{Bus: powergrid.IEEE14(), Seed: int64(100 * h), Hierarchy: h, SecureFraction: 0.9})
		b.Run(fmt.Sprintf("h%d", h), func(b *testing.B) {
			benchBoundary(b, cfg, scadaver.Observability)
		})
	}
}

// BenchmarkFig6bHierarchy57 regenerates Fig. 6(b): the 57-bus variant.
func BenchmarkFig6bHierarchy57(b *testing.B) {
	for h := 1; h <= 4; h++ {
		cfg := mustSynth(b, synth.Params{Bus: powergrid.IEEE57(), Seed: int64(100 * h), Hierarchy: h, SecureFraction: 0.9})
		b.Run(fmt.Sprintf("h%d", h), func(b *testing.B) {
			benchBoundary(b, cfg, scadaver.Observability)
		})
	}
}

// BenchmarkFig7aMaxResiliency regenerates Fig. 7(a): the
// maximum-resiliency search versus measurement density on the 14-bus
// system.
func BenchmarkFig7aMaxResiliency(b *testing.B) {
	for _, pct := range []float64{50, 75, 100} {
		cfg := mustSynth(b, synth.Params{
			Bus: powergrid.IEEE14(), Seed: int64(10 * pct), Hierarchy: 1,
			MeasurementPercent: pct, SecureFraction: 1,
		})
		b.Run(fmt.Sprintf("pct%.0f", pct), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				a := mustAnalyzer(b, cfg)
				if _, err := a.MaxResiliency(core.Observability, 0, true, false); err != nil {
					b.Fatal(err)
				}
				if _, err := a.MaxResiliency(core.Observability, 0, false, true); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig7bThreatSpace regenerates Fig. 7(b): threat-space
// enumeration versus hierarchy level on the 14-bus system.
func BenchmarkFig7bThreatSpace(b *testing.B) {
	for h := 1; h <= 4; h++ {
		cfg := mustSynth(b, synth.Params{Bus: powergrid.IEEE14(), Seed: int64(7000 + 10*h), Hierarchy: h, SecureFraction: 1})
		b.Run(fmt.Sprintf("h%d", h), func(b *testing.B) {
			q := scadaver.Query{Property: scadaver.Observability, K1: 2, K2: 1}
			for i := 0; i < b.N; i++ {
				a := mustAnalyzer(b, cfg)
				if _, err := a.EnumerateThreats(q, experiments.ThreatEnumerationCap); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkParallelSweep57 measures the worker-pool speedup on the
// repository's reference campaign: the IEEE 57-bus k-sweep
// (cmd/scada-bench -fig sweep), identical queries at every pool size.
// The measured speedups are recorded in EXPERIMENTS.md.
func BenchmarkParallelSweep57(b *testing.B) {
	cfg := mustSynth(b, synth.Params{Bus: powergrid.IEEE57(), Seed: 1000*57 + 7, Hierarchy: 2, SecureFraction: 0.9})
	queries := experiments.SweepQueries(6)
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers%d", w), func(b *testing.B) {
			r := scadaver.NewRunner(w)
			for i := 0; i < b.N; i++ {
				if _, err := r.VerifyAll(context.Background(), cfg, queries); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSweepVsFresh ablates the encoding-reuse path: one
// incrementally reused solver across a k-sweep versus a fresh encoding
// per budget.
func BenchmarkSweepVsFresh(b *testing.B) {
	cfg := mustSynth(b, synth.Params{Bus: powergrid.IEEE57(), Seed: 3, Hierarchy: 2, SecureFraction: 0.9})
	const maxK = 6
	b.Run("reuse", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			a := mustAnalyzer(b, cfg)
			sw, err := a.NewSweep(scadaver.Observability, 0, 0)
			if err != nil {
				b.Fatal(err)
			}
			for k := 0; k <= maxK; k++ {
				if _, err := sw.VerifyK(k); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("fresh", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			a := mustAnalyzer(b, cfg)
			for k := 0; k <= maxK; k++ {
				if _, err := a.Verify(scadaver.Query{Property: scadaver.Observability, Combined: true, K: k}); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkAblationSATvsBruteForce compares the paper's
// constraint-solving approach against exhaustive contingency
// enumeration on the same query — the design choice the paper's
// "scalable and provable" claim rests on.
func BenchmarkAblationSATvsBruteForce(b *testing.B) {
	cfg := mustSynth(b, synth.Params{Bus: powergrid.IEEE14(), Seed: 9, Hierarchy: 1, SecureFraction: 1})
	q := scadaver.Query{Property: scadaver.Observability, K1: 2, K2: 1}
	b.Run("sat", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			a := mustAnalyzer(b, cfg)
			if _, err := a.Verify(q); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("bruteforce", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c := baseline.New(cfg, nil)
			c.FindViolation(2, 1, func(down map[scadaver.DeviceID]bool) bool {
				return c.Observable(down, false)
			})
		}
	})
}

// BenchmarkAblationPathsVsBudget measures encoding sensitivity to the
// path-enumeration cap (DESIGN.md ablation: path disjunction size).
func BenchmarkAblationPathsVsBudget(b *testing.B) {
	cfg := mustSynth(b, synth.Params{Bus: powergrid.IEEE57(), Seed: 3, Hierarchy: 3, SecureFraction: 1})
	for _, maxPaths := range []int{4, 32, 256} {
		b.Run(fmt.Sprintf("maxpaths%d", maxPaths), func(b *testing.B) {
			q := scadaver.Query{Property: scadaver.Observability, Combined: true, K: 2}
			for i := 0; i < b.N; i++ {
				a, err := core.NewAnalyzer(cfg, core.WithMaxPaths(maxPaths))
				if err != nil {
					b.Fatal(err)
				}
				if _, err := a.Verify(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDeliverySimulation times one full acquisition round of the
// discrete-event delivery simulator on a 118-bus SCADA system.
func BenchmarkDeliverySimulation(b *testing.B) {
	cfg := mustSynth(b, synth.Params{Bus: powergrid.IEEE118(), Seed: 2, Hierarchy: 2, SecureFraction: 0.9})
	sim := delivery.New(cfg, nil, delivery.Params{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Run(nil)
	}
}

// BenchmarkStateEstimation times WLS estimation plus bad-data detection
// on the full IEEE 14-bus measurement set.
func BenchmarkStateEstimation(b *testing.B) {
	ms := powergrid.FullMeasurementSet(powergrid.IEEE14())
	est, err := stateest.New(ms, 1)
	if err != nil {
		b.Fatal(err)
	}
	truth := make([]float64, ms.NStates)
	for i := range truth {
		truth[i] = -0.01 * float64(i)
	}
	sel := make([]int, ms.Len())
	for i := range sel {
		sel[i] = i
	}
	z, err := est.Measure(truth, sel, 0, nil)
	if err != nil {
		b.Fatal(err)
	}
	z[3] += 2.5
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := est.DetectBadData(z, nil, sel, 1e-6, 2); err != nil {
			b.Fatal(err)
		}
	}
}
