// Case study: the paper's Section IV scenarios end to end.
//
// Scenario 1 verifies (k1,k2)-resilient observability of the 5-bus
// system (Table II input) on the Fig. 3 topology, then on the Fig. 4
// rewiring where RTU 9 uplinks through RTU 12. Scenario 2 repeats the
// analysis for secured observability, where only hops that are both
// authenticated and integrity-protected count.
package main

import (
	"fmt"
	"log"

	"scadaver/internal/core"
	"scadaver/internal/scadanet"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	for _, topo := range []struct {
		name string
		fig4 bool
	}{
		{"Fig. 3 (RTU 9 uplinks via the router)", false},
		{"Fig. 4 (RTU 9 uplinks via RTU 12)", true},
	} {
		cfg, err := scadanet.CaseStudyConfig(topo.fig4)
		if err != nil {
			return err
		}
		analyzer, err := core.NewAnalyzer(cfg)
		if err != nil {
			return err
		}
		fmt.Printf("=== 5-bus case study, topology %s ===\n", topo.name)

		fmt.Println("--- Scenario 1: k1,k2-resilient observability ---")
		for _, q := range []core.Query{
			{Property: core.Observability, K1: 1, K2: 1},
			{Property: core.Observability, K1: 2, K2: 1},
		} {
			if err := report(analyzer, q); err != nil {
				return err
			}
		}
		maxIED, err := analyzer.MaxResiliency(core.Observability, 0, true, false)
		if err != nil {
			return err
		}
		maxRTU, err := analyzer.MaxResiliency(core.Observability, 0, false, true)
		if err != nil {
			return err
		}
		fmt.Printf("maximally (%d,%d)-resilient observable\n", maxIED, maxRTU)

		fmt.Println("--- Scenario 2: k1,k2-resilient secured observability ---")
		for _, q := range []core.Query{
			{Property: core.SecuredObservability, K1: 1, K2: 1},
			{Property: core.SecuredObservability, K1: 1, K2: 0},
			{Property: core.SecuredObservability, K1: 0, K2: 1},
		} {
			if err := report(analyzer, q); err != nil {
				return err
			}
		}
		fmt.Println()
	}
	return nil
}

func report(analyzer *core.Analyzer, q core.Query) error {
	res, err := analyzer.Verify(q)
	if err != nil {
		return err
	}
	fmt.Println(res)
	if !res.Resilient() {
		vectors, err := analyzer.EnumerateThreats(q, 20)
		if err != nil {
			return err
		}
		fmt.Printf("  threat space: %d minimal vectors\n", len(vectors))
		for _, v := range vectors {
			fmt.Printf("    %v\n", v)
		}
	}
	return nil
}
