package sat

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func mustAdd(t testing.TB, s *Solver, lits ...Lit) {
	t.Helper()
	if err := s.AddClause(lits...); err != nil {
		t.Fatalf("AddClause(%v): %v", lits, err)
	}
}

func newVars(s *Solver, n int) []Var {
	vs := make([]Var, n)
	for i := range vs {
		vs[i] = s.NewVar()
	}
	return vs
}

func TestEmptyFormulaIsSat(t *testing.T) {
	s := New()
	if got := s.Solve(); got != Sat {
		t.Fatalf("empty formula: got %v, want sat", got)
	}
}

func TestSingleUnit(t *testing.T) {
	s := New()
	v := s.NewVar()
	mustAdd(t, s, PosLit(v))
	if got := s.Solve(); got != Sat {
		t.Fatalf("got %v, want sat", got)
	}
	if s.Value(v) != True {
		t.Fatalf("v = %v, want true", s.Value(v))
	}
}

func TestContradictoryUnits(t *testing.T) {
	s := New()
	v := s.NewVar()
	mustAdd(t, s, PosLit(v))
	mustAdd(t, s, NegLit(v))
	if got := s.Solve(); got != Unsat {
		t.Fatalf("got %v, want unsat", got)
	}
}

func TestEmptyClauseIsUnsat(t *testing.T) {
	s := New()
	mustAdd(t, s)
	if got := s.Solve(); got != Unsat {
		t.Fatalf("got %v, want unsat", got)
	}
	// Adding more clauses keeps the instance unsat without error.
	v := s.NewVar()
	if err := s.AddClause(PosLit(v)); err != nil {
		t.Fatalf("AddClause after unsat: %v", err)
	}
	if got := s.Solve(); got != Unsat {
		t.Fatalf("still expected unsat, got %v", got)
	}
}

func TestTautologyIgnored(t *testing.T) {
	s := New()
	v := s.NewVar()
	mustAdd(t, s, PosLit(v), NegLit(v))
	if got := s.Solve(); got != Sat {
		t.Fatalf("got %v, want sat", got)
	}
}

func TestUndeclaredVariableRejected(t *testing.T) {
	s := New()
	if err := s.AddClause(PosLit(Var(3))); err == nil {
		t.Fatal("expected error for undeclared variable")
	}
}

func TestSimpleImplicationChain(t *testing.T) {
	s := New()
	vs := newVars(s, 5)
	for i := 0; i+1 < len(vs); i++ {
		mustAdd(t, s, NegLit(vs[i]), PosLit(vs[i+1])) // v_i -> v_{i+1}
	}
	mustAdd(t, s, PosLit(vs[0]))
	if got := s.Solve(); got != Sat {
		t.Fatalf("got %v, want sat", got)
	}
	for i, v := range vs {
		if s.Value(v) != True {
			t.Fatalf("vs[%d] = %v, want true", i, s.Value(v))
		}
	}
}

func TestChainWithContradiction(t *testing.T) {
	s := New()
	vs := newVars(s, 5)
	for i := 0; i+1 < len(vs); i++ {
		mustAdd(t, s, NegLit(vs[i]), PosLit(vs[i+1]))
	}
	mustAdd(t, s, PosLit(vs[0]))
	mustAdd(t, s, NegLit(vs[4]))
	if got := s.Solve(); got != Unsat {
		t.Fatalf("got %v, want unsat", got)
	}
}

func TestPigeonhole(t *testing.T) {
	// PHP(n+1, n): n+1 pigeons into n holes — classically unsat, and a
	// good stress of clause learning.
	for _, n := range []int{3, 4, 5} {
		s := New()
		p := make([][]Var, n+1)
		for i := range p {
			p[i] = newVars(s, n)
		}
		// Every pigeon in some hole.
		for i := 0; i <= n; i++ {
			lits := make([]Lit, n)
			for j := 0; j < n; j++ {
				lits[j] = PosLit(p[i][j])
			}
			mustAdd(t, s, lits...)
		}
		// No two pigeons share a hole.
		for j := 0; j < n; j++ {
			for i1 := 0; i1 <= n; i1++ {
				for i2 := i1 + 1; i2 <= n; i2++ {
					mustAdd(t, s, NegLit(p[i1][j]), NegLit(p[i2][j]))
				}
			}
		}
		if got := s.Solve(); got != Unsat {
			t.Fatalf("PHP(%d,%d): got %v, want unsat", n+1, n, got)
		}
	}
}

func TestPigeonholeSatVariant(t *testing.T) {
	// n pigeons into n holes is sat.
	n := 5
	s := New()
	p := make([][]Var, n)
	for i := range p {
		p[i] = newVars(s, n)
	}
	for i := 0; i < n; i++ {
		lits := make([]Lit, n)
		for j := 0; j < n; j++ {
			lits[j] = PosLit(p[i][j])
		}
		mustAdd(t, s, lits...)
	}
	for j := 0; j < n; j++ {
		for i1 := 0; i1 < n; i1++ {
			for i2 := i1 + 1; i2 < n; i2++ {
				mustAdd(t, s, NegLit(p[i1][j]), NegLit(p[i2][j]))
			}
		}
	}
	if got := s.Solve(); got != Sat {
		t.Fatalf("got %v, want sat", got)
	}
	// Verify the model is a valid assignment: each pigeon somewhere, no
	// hole shared.
	for i := 0; i < n; i++ {
		found := false
		for j := 0; j < n; j++ {
			if s.Value(p[i][j]) == True {
				found = true
			}
		}
		if !found {
			t.Fatalf("pigeon %d unplaced in model", i)
		}
	}
}

func TestAssumptions(t *testing.T) {
	s := New()
	a, b := s.NewVar(), s.NewVar()
	mustAdd(t, s, NegLit(a), PosLit(b)) // a -> b

	if got := s.Solve(PosLit(a), NegLit(b)); got != Unsat {
		t.Fatalf("assume a,!b: got %v, want unsat", got)
	}
	if got := s.Solve(PosLit(a)); got != Sat {
		t.Fatalf("assume a: got %v, want sat", got)
	}
	if s.Value(b) != True {
		t.Fatalf("b = %v under assumption a, want true", s.Value(b))
	}
	if got := s.Solve(NegLit(b), PosLit(a)); got != Unsat {
		t.Fatalf("assume !b,a: got %v, want unsat", got)
	}
	// Solver remains usable and the instance is still sat without
	// assumptions.
	if got := s.Solve(); got != Sat {
		t.Fatalf("no assumptions: got %v, want sat", got)
	}
}

func TestIncrementalAddBetweenSolves(t *testing.T) {
	s := New()
	vs := newVars(s, 3)
	mustAdd(t, s, PosLit(vs[0]), PosLit(vs[1]))
	if got := s.Solve(); got != Sat {
		t.Fatalf("got %v, want sat", got)
	}
	mustAdd(t, s, NegLit(vs[0]))
	mustAdd(t, s, NegLit(vs[1]))
	if got := s.Solve(); got != Unsat {
		t.Fatalf("after strengthening: got %v, want unsat", got)
	}
}

func TestConflictBudget(t *testing.T) {
	// A hard pigeonhole instance with a tiny budget must return Unsolved.
	n := 8
	s := New()
	p := make([][]Var, n+1)
	for i := range p {
		p[i] = newVars(s, n)
	}
	for i := 0; i <= n; i++ {
		lits := make([]Lit, n)
		for j := 0; j < n; j++ {
			lits[j] = PosLit(p[i][j])
		}
		mustAdd(t, s, lits...)
	}
	for j := 0; j < n; j++ {
		for i1 := 0; i1 <= n; i1++ {
			for i2 := i1 + 1; i2 <= n; i2++ {
				mustAdd(t, s, NegLit(p[i1][j]), NegLit(p[i2][j]))
			}
		}
	}
	s.SetConflictBudget(5)
	if got := s.Solve(); got != Unsolved {
		t.Fatalf("got %v, want unsolved under budget", got)
	}
	s.SetConflictBudget(0)
	if got := s.Solve(); got != Unsat {
		t.Fatalf("got %v, want unsat without budget", got)
	}
}

func TestLitHelpers(t *testing.T) {
	v := Var(7)
	if PosLit(v).Var() != v || NegLit(v).Var() != v {
		t.Fatal("Var round-trip broken")
	}
	if PosLit(v).Sign() || !NegLit(v).Sign() {
		t.Fatal("Sign broken")
	}
	if PosLit(v).Neg() != NegLit(v) || NegLit(v).Neg() != PosLit(v) {
		t.Fatal("Neg broken")
	}
	if MkLit(v, false) != PosLit(v) || MkLit(v, true) != NegLit(v) {
		t.Fatal("MkLit broken")
	}
	if PosLit(v).String() != "8" || NegLit(v).String() != "-8" {
		t.Fatalf("String: got %q/%q", PosLit(v).String(), NegLit(v).String())
	}
}

func TestTriboolString(t *testing.T) {
	cases := map[Tribool]string{True: "true", False: "false", Unknown: "unknown"}
	for tb, want := range cases {
		if tb.String() != want {
			t.Errorf("%d.String() = %q, want %q", tb, tb.String(), want)
		}
	}
	if True.Not() != False || False.Not() != True || Unknown.Not() != Unknown {
		t.Error("Tribool.Not broken")
	}
}

func TestStatusString(t *testing.T) {
	if Sat.String() != "sat" || Unsat.String() != "unsat" || Unsolved.String() != "unsolved" {
		t.Fatal("Status.String broken")
	}
}

// randomCNF builds a random 3-CNF over nv variables with nc clauses.
func randomCNF(rng *rand.Rand, nv, nc int) [][]Lit {
	cls := make([][]Lit, nc)
	for i := range cls {
		c := make([]Lit, 3)
		for j := range c {
			c[j] = MkLit(Var(rng.Intn(nv)), rng.Intn(2) == 0)
		}
		cls[i] = c
	}
	return cls
}

func bruteForceSat(nv int, clauses [][]Lit) bool {
	for m := 0; m < 1<<nv; m++ {
		ok := true
		for _, c := range clauses {
			sat := false
			for _, l := range c {
				val := m>>uint(l.Var())&1 == 1
				if l.Sign() {
					val = !val
				}
				if val {
					sat = true
					break
				}
			}
			if !sat {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

func TestAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 300; trial++ {
		nv := 3 + rng.Intn(8) // up to 10 vars
		nc := 1 + rng.Intn(5*nv)
		clauses := randomCNF(rng, nv, nc)
		want := bruteForceSat(nv, clauses)

		s := New()
		newVars(s, nv)
		for _, c := range clauses {
			if err := s.AddClause(c...); err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
		}
		got := s.Solve()
		if (got == Sat) != want {
			t.Fatalf("trial %d (nv=%d nc=%d): solver=%v brute=%v", trial, nv, nc, got, want)
		}
		if got == Sat {
			// Model must actually satisfy every clause.
			m := s.Model()
			for ci, c := range clauses {
				sat := false
				for _, l := range c {
					val := m[l.Var()]
					if l.Sign() {
						val = !val
					}
					if val {
						sat = true
						break
					}
				}
				if !sat {
					t.Fatalf("trial %d: clause %d unsatisfied by returned model", trial, ci)
				}
			}
		}
	}
}

func TestQuickModelsSatisfyFormula(t *testing.T) {
	// Property: whenever the solver answers sat, its model satisfies
	// every clause that was added.
	f := func(seed int64, nvRaw, ncRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		nv := 2 + int(nvRaw)%12
		nc := 1 + int(ncRaw)%40
		clauses := randomCNF(rng, nv, nc)
		s := New()
		newVars(s, nv)
		for _, c := range clauses {
			if err := s.AddClause(c...); err != nil {
				return false
			}
		}
		if s.Solve() != Sat {
			return true // nothing to check for unsat here
		}
		m := s.Model()
		for _, c := range clauses {
			ok := false
			for _, l := range c {
				val := m[l.Var()]
				if l.Sign() {
					val = !val
				}
				if val {
					ok = true
					break
				}
			}
			if !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickAssumptionConsistency(t *testing.T) {
	// Property: Solve(assumptions) == Sat implies the model honors every
	// assumption; and adding the assumptions as unit clauses yields the
	// same satisfiability.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nv := 4 + rng.Intn(8)
		nc := 1 + rng.Intn(25)
		clauses := randomCNF(rng, nv, nc)
		nAssume := 1 + rng.Intn(3)
		assume := make([]Lit, nAssume)
		for i := range assume {
			assume[i] = MkLit(Var(rng.Intn(nv)), rng.Intn(2) == 0)
		}

		s := New()
		newVars(s, nv)
		for _, c := range clauses {
			if err := s.AddClause(c...); err != nil {
				return false
			}
		}
		got := s.Solve(assume...)
		if got == Sat {
			for _, a := range assume {
				want := True
				if a.Sign() {
					want = False
				}
				if s.Value(a.Var()) != want {
					return false
				}
			}
		}

		s2 := New()
		newVars(s2, nv)
		for _, c := range clauses {
			if err := s2.AddClause(c...); err != nil {
				return false
			}
		}
		for _, a := range assume {
			if err := s2.AddClause(a); err != nil {
				return false
			}
		}
		return got == s2.Solve()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDIMACSRoundTrip(t *testing.T) {
	in := `c a comment
p cnf 3 3
1 -2 0
2 3 0
-1 0
`
	s, err := ParseDIMACS(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Solve(); got != Sat {
		t.Fatalf("got %v, want sat", got)
	}
	// -1 forces !v1; 1 -2 forces !v2; 2 3 forces v3.
	if s.Value(0) != False || s.Value(1) != False || s.Value(2) != True {
		t.Fatalf("model = %v %v %v", s.Value(0), s.Value(1), s.Value(2))
	}
	var sb strings.Builder
	if err := s.WriteDIMACS(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(sb.String(), "p cnf 3") {
		t.Fatalf("unexpected DIMACS output: %q", sb.String())
	}
}

func TestDIMACSErrors(t *testing.T) {
	if _, err := ParseDIMACS(strings.NewReader("1 x 0")); err == nil {
		t.Fatal("expected parse error for bad token")
	}
}

func TestDIMACSUnsat(t *testing.T) {
	in := "p cnf 1 2\n1 0\n-1 0\n"
	s, err := ParseDIMACS(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Solve(); got != Unsat {
		t.Fatalf("got %v, want unsat", got)
	}
}

func TestDIMACSTrailingClauseWithoutZero(t *testing.T) {
	s, err := ParseDIMACS(strings.NewReader("p cnf 2 1\n1 2"))
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Solve(); got != Sat {
		t.Fatalf("got %v, want sat", got)
	}
}

func TestStatsPopulated(t *testing.T) {
	s := New()
	vs := newVars(s, 4)
	mustAdd(t, s, PosLit(vs[0]), PosLit(vs[1]))
	mustAdd(t, s, NegLit(vs[0]), PosLit(vs[2]))
	if s.Solve() != Sat {
		t.Fatal("want sat")
	}
	st := s.Stats()
	if st.MaxVars != 4 {
		t.Fatalf("MaxVars = %d, want 4", st.MaxVars)
	}
	if st.Clauses != 2 {
		t.Fatalf("Clauses = %d, want 2", st.Clauses)
	}
	if !strings.Contains(st.String(), "vars=4") {
		t.Fatalf("Stats.String = %q", st.String())
	}
}

func TestLubySequence(t *testing.T) {
	want := []int{1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8}
	for i, w := range want {
		if got := luby(i + 1); got != w {
			t.Fatalf("luby(%d) = %d, want %d", i+1, got, w)
		}
	}
}

func TestHeapOrdering(t *testing.T) {
	act := []float64{1, 5, 3, 4, 2}
	h := newActivityHeap(&act)
	for v := 0; v < 5; v++ {
		h.push(Var(v))
	}
	order := []Var{}
	for !h.empty() {
		order = append(order, h.pop())
	}
	want := []Var{1, 3, 2, 4, 0}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("pop order %v, want %v", order, want)
		}
	}
}

func TestGraphColoring(t *testing.T) {
	// 3-coloring of K4 is unsat; of C5 (odd cycle) it is sat.
	color := func(edges [][2]int, n, k int) Status {
		s := New()
		vars := make([][]Var, n)
		for i := range vars {
			vars[i] = newVars(s, k)
			lits := make([]Lit, k)
			for c := range lits {
				lits[c] = PosLit(vars[i][c])
			}
			mustAdd(t, s, lits...)
		}
		for _, e := range edges {
			for c := 0; c < k; c++ {
				mustAdd(t, s, NegLit(vars[e[0]][c]), NegLit(vars[e[1]][c]))
			}
		}
		return s.Solve()
	}
	k4 := [][2]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}}
	if got := color(k4, 4, 3); got != Unsat {
		t.Fatalf("K4 3-coloring: got %v, want unsat", got)
	}
	c5 := [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}}
	if got := color(c5, 5, 3); got != Sat {
		t.Fatalf("C5 3-coloring: got %v, want sat", got)
	}
	if got := color(c5, 5, 2); got != Unsat {
		t.Fatalf("C5 2-coloring: got %v, want unsat", got)
	}
}

func TestLargeRandomSatisfiableInstances(t *testing.T) {
	// Under-constrained random 3-CNF (ratio 2.0) is satisfiable with
	// overwhelming probability; verify models on a few hundred vars to
	// exercise restarts and clause DB reduction.
	rng := rand.New(rand.NewSource(7))
	nv, nc := 300, 600
	clauses := randomCNF(rng, nv, nc)
	s := New()
	newVars(s, nv)
	for _, c := range clauses {
		mustAdd(t, s, c...)
	}
	if got := s.Solve(); got != Sat {
		t.Fatalf("got %v, want sat", got)
	}
	m := s.Model()
	for ci, c := range clauses {
		ok := false
		for _, l := range c {
			v := m[l.Var()]
			if l.Sign() {
				v = !v
			}
			if v {
				ok = true
				break
			}
		}
		if !ok {
			t.Fatalf("clause %d unsatisfied", ci)
		}
	}
}
