GO ?= go

.PHONY: all build vet test race lint bench verify

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Lint the checked-in case-study configuration with the repository's own
# misconfiguration analyzer (internal/lint via scada-analyzer -lint).
# Exits non-zero if the linter reports errors (warnings are expected:
# the paper's Table II input deliberately contains weak profiles).
lint:
	$(GO) run ./cmd/scada-analyzer -lint -config testdata/case5bus.scada

bench:
	$(GO) test -bench=. -benchmem

# The pre-merge gate: static checks, full build, race-enabled tests,
# and the config lint.
verify: vet build race lint
