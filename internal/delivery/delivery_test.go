package delivery

import (
	"testing"
	"time"

	"scadaver/internal/core"
	"scadaver/internal/powergrid"
	"scadaver/internal/scadanet"
	"scadaver/internal/secpolicy"
	"scadaver/internal/synth"
)

func caseStudySim(t *testing.T) (*Simulator, *core.Analyzer) {
	t.Helper()
	cfg, err := scadanet.CaseStudyConfig(false)
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.NewAnalyzer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return New(cfg, nil, Params{}), a
}

func TestSimulationMatchesFormalDelivery(t *testing.T) {
	sim, a := caseStudySim(t)
	downSets := []map[scadanet.DeviceID]bool{
		nil,
		{9: true},
		{11: true},
		{12: true},
		{1: true, 9: true},
		{9: true, 11: true},
	}
	for _, down := range downSets {
		results := sim.Run(down)
		simPlain := DeliveredSet(results, false)
		simSec := DeliveredSet(results, true)
		wantPlain := a.DeliveredMeasurements(down, false)
		wantSec := a.DeliveredMeasurements(down, true)
		if len(simPlain) != len(wantPlain) {
			t.Fatalf("down=%v: delivered %v, verifier says %v", down, simPlain, wantPlain)
		}
		for z := range wantPlain {
			if !simPlain[z] {
				t.Fatalf("down=%v: verifier delivers %d, simulation does not", down, z)
			}
		}
		if len(simSec) != len(wantSec) {
			t.Fatalf("down=%v: secured %v, verifier says %v", down, simSec, wantSec)
		}
		for z := range wantSec {
			if !simSec[z] {
				t.Fatalf("down=%v: verifier secures %d, simulation does not", down, z)
			}
		}
	}
}

func TestArrivalTimesPositiveAndHopScaled(t *testing.T) {
	sim, _ := caseStudySim(t)
	results := sim.Run(nil)
	if len(results) != 14 {
		t.Fatalf("results = %d, want 14", len(results))
	}
	for _, r := range results {
		if !r.Delivered {
			t.Fatalf("measurement %d not delivered with all devices up", r.MsrID)
		}
		if r.At <= 0 || r.Hops < 2 {
			t.Fatalf("measurement %d: at=%v hops=%d", r.MsrID, r.At, r.Hops)
		}
		// Arrival must cost at least hops × (link latency + device
		// delay).
		min := time.Duration(r.Hops) * (2*time.Millisecond + 500*time.Microsecond)
		if r.At < min {
			t.Fatalf("measurement %d arrived too fast: %v < %v", r.MsrID, r.At, min)
		}
	}
}

func TestLatencyGrowsWithHierarchy(t *testing.T) {
	avgLatency := func(h int) time.Duration {
		cfg, err := synth.Generate(synth.Params{Bus: powergrid.IEEE14(), Seed: 3, Hierarchy: h, SecureFraction: 1})
		if err != nil {
			t.Fatal(err)
		}
		sim := New(cfg, nil, Params{})
		results := sim.Run(nil)
		var sum time.Duration
		n := 0
		for _, r := range results {
			if r.Delivered {
				sum += r.At
				n++
			}
		}
		if n == 0 {
			t.Fatal("nothing delivered")
		}
		return sum / time.Duration(n)
	}
	if l1, l3 := avgLatency(1), avgLatency(3); l3 <= l1 {
		t.Fatalf("latency did not grow with hierarchy: h1=%v h3=%v", l1, l3)
	}
}

func TestFailuresReduceDeliveries(t *testing.T) {
	sim, _ := caseStudySim(t)
	full := DeliveredSet(sim.Run(nil), false)
	partial := DeliveredSet(sim.Run(map[scadanet.DeviceID]bool{9: true}), false)
	if len(partial) >= len(full) {
		t.Fatalf("RTU 9 failure did not reduce deliveries: %d vs %d", len(partial), len(full))
	}
	// IEDs behind RTU 9 (1,2,3) lose exactly their measurements.
	for _, z := range []int{1, 2, 3, 5, 11} { // msrs of IEDs 1,2,3
		if partial[z] {
			t.Fatalf("measurement %d should be lost with RTU 9 down", z)
		}
	}
}

func TestSecuredRoutePreferred(t *testing.T) {
	// Build a net where the IED has a short insecure route and a longer
	// secure route; the simulator should still mark the packet secured.
	net := scadanet.NewNetwork()
	for _, d := range []scadanet.Device{
		{ID: 1, Kind: scadanet.IED},
		{ID: 2, Kind: scadanet.RTU},
		{ID: 3, Kind: scadanet.RTU},
		{ID: 4, Kind: scadanet.MTU},
	} {
		if _, err := net.AddDevice(d); err != nil {
			t.Fatal(err)
		}
	}
	secureProfiles := []secpolicy.Profile{
		{Algo: secpolicy.CHAP, KeyBits: 64},
		{Algo: secpolicy.SHA2, KeyBits: 256},
	}
	secure := []struct{ a, b scadanet.DeviceID }{{1, 2}, {2, 3}, {3, 4}}
	for _, s := range secure {
		if _, err := net.AddLink(s.a, s.b, secureProfiles...); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := net.AddLink(2, 4); err != nil { // short, insecure
		t.Fatal(err)
	}
	if err := net.AssignMeasurements(1, 1); err != nil {
		t.Fatal(err)
	}
	ms, err := powergrid.FromJacobian([][]float64{{1}})
	if err != nil {
		t.Fatal(err)
	}
	cfg := &scadanet.Config{Msrs: ms, Net: net}
	sim := New(cfg, nil, Params{})
	results := sim.Run(nil)
	if len(results) != 1 || !results[0].Delivered || !results[0].Secured {
		t.Fatalf("results = %+v, want secured delivery", results)
	}
	if results[0].Hops != 3 {
		t.Fatalf("hops = %d, want the 3-hop secured route", results[0].Hops)
	}
}
