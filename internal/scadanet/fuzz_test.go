package scadanet

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParseConfig checks that arbitrary input never panics the parser
// and that accepted configurations survive a write/parse round trip.
func FuzzParseConfig(f *testing.F) {
	cfg, err := CaseStudyConfig(false)
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteConfig(&buf, cfg); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add("")
	f.Add("# only a comment\n")
	f.Add("[jacobian]\n1 0\n[devices]\nied 1\nmtu 2\n[links]\n1 2\n")
	f.Add("[jacobian]\nNaN Inf\n")
	f.Add("[bogus]\nx\n")
	f.Add("[jacobian]\n1\n[devices]\nied 1 99999\n")

	f.Fuzz(func(t *testing.T, input string) {
		parsed, err := ParseConfig(strings.NewReader(input))
		if err != nil {
			return
		}
		// Anything accepted must be serializable and re-parsable.
		var out bytes.Buffer
		if err := WriteConfig(&out, parsed); err != nil {
			t.Fatalf("write of accepted config failed: %v", err)
		}
		back, err := ParseConfig(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("round trip failed: %v\n%s", err, out.String())
		}
		if back.Msrs.Len() != parsed.Msrs.Len() {
			t.Fatalf("round trip changed measurement count %d -> %d", parsed.Msrs.Len(), back.Msrs.Len())
		}
	})
}
