package obs

// Live query introspection: a registry of in-flight verification
// queries plus a bounded per-query flight recorder of recent solver
// events. The registry follows the package's nil-is-off contract: a
// nil *QueryRegistry hands out nil *QueryState values, and every
// method on both types is a no-op on a nil receiver, so instrumented
// code pays one nil check when introspection is disabled.
//
// Memory is bounded by construction: the active map holds only
// queries currently being solved (capped by the caller's worker
// count), each query keeps at most eventCap flight events in a ring,
// and completed snapshots are retained in a fixed-size ring of the
// last `history` queries.

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Defaults for the registry's two memory bounds.
const (
	// DefaultQueryHistory is the number of completed query snapshots
	// retained for GET /v1/queries when no explicit bound is given.
	DefaultQueryHistory = 64
	// DefaultFlightEvents is the per-query flight-recorder ring size.
	DefaultFlightEvents = 32
)

// FlightEvent is one entry in a query's flight recorder: a rare,
// coarse solver or control-plane event (restart, DB reduction,
// escalation, retry, checkpoint flush) with the conflict count at
// which it happened and its offset from the query's start.
type FlightEvent struct {
	OffsetNanos int64  `json:"tNanos"`
	Kind        string `json:"kind"`
	Detail      string `json:"detail,omitempty"`
	Conflicts   uint64 `json:"conflicts,omitempty"`
}

// ReplicaSnapshot describes one portfolio replica's contribution to a
// query: its strategy, final status, and clause-sharing traffic.
type ReplicaSnapshot struct {
	ID        int    `json:"id"`
	Strategy  string `json:"strategy"`
	Status    string `json:"status,omitempty"`
	Conflicts uint64 `json:"conflicts,omitempty"`
	Imported  uint64 `json:"imported,omitempty"`
	Exported  uint64 `json:"exported,omitempty"`
	Winner    bool   `json:"winner,omitempty"`
	Panicked  bool   `json:"panicked,omitempty"`
}

// QuerySnapshot is the point-in-time JSON view of a query served by
// GET /v1/queries and streamed by /v1/queries/{id}/watch.
type QuerySnapshot struct {
	ID             uint64            `json:"id"`
	Fingerprint    string            `json:"fingerprint,omitempty"`
	Property       string            `json:"property"`
	Budget         string            `json:"budget,omitempty"`
	Phase          string            `json:"phase"`
	Attempt        int               `json:"attempt"`
	Conflicts      uint64            `json:"conflicts"`
	ConflictBudget uint64            `json:"conflictBudget,omitempty"`
	DeadlineNanos  int64             `json:"deadlineNanos,omitempty"`
	Decisions      uint64            `json:"decisions"`
	Propagations   uint64            `json:"propagations"`
	Restarts       uint64            `json:"restarts"`
	Reduces        uint64            `json:"reduces"`
	LearntDB       int               `json:"learntDB"`
	StartUnixNano  int64             `json:"startUnixNano"`
	ElapsedNanos   int64             `json:"elapsedNanos"`
	ConflictsPerS  float64           `json:"conflictsPerSec"`
	Replicas       []ReplicaSnapshot `json:"replicas,omitempty"`
	Events         []FlightEvent     `json:"events,omitempty"`
	EventsDropped  uint64            `json:"eventsDropped,omitempty"`
	Done           bool              `json:"done"`
	Status         string            `json:"status,omitempty"`
	FailureReason  string            `json:"failureReason,omitempty"`
}

// WatchLine renders the snapshot as a single human-readable progress
// line for the CLI -watch mode.
func (q QuerySnapshot) WatchLine() string {
	var b strings.Builder
	fmt.Fprintf(&b, "watch: q%d %s", q.ID, q.Property)
	if q.Budget != "" {
		fmt.Fprintf(&b, " %s", q.Budget)
	}
	fmt.Fprintf(&b, " phase=%s attempt=%d conflicts=%d", q.Phase, q.Attempt, q.Conflicts)
	if q.ConflictBudget > 0 {
		fmt.Fprintf(&b, "/%d", q.ConflictBudget)
	}
	fmt.Fprintf(&b, " (%.0f/s) restarts=%d learnt=%d", q.ConflictsPerS, q.Restarts, q.LearntDB)
	if n := len(q.Replicas); n > 0 {
		fmt.Fprintf(&b, " replicas=%d", n)
	}
	if q.Done {
		fmt.Fprintf(&b, " done status=%s", q.Status)
	}
	return b.String()
}

// QueryRegistry tracks live queries and retains the last N completed
// ones. All methods are safe on a nil receiver and for concurrent use.
type QueryRegistry struct {
	history  int
	eventCap int
	nextID   atomic.Uint64

	slowThreshold atomic.Int64 // nanoseconds; 0 = slow-query log off
	slowMu        sync.Mutex
	slowLog       func(QuerySnapshot)

	mu        sync.Mutex
	active    map[uint64]*QueryState
	completed []QuerySnapshot // ring of the last `history` completions
	compNext  int
	compLen   int
}

// NewQueryRegistry builds a registry retaining the last `history`
// completed snapshots and at most `eventCap` flight events per query.
// Non-positive arguments select the package defaults.
func NewQueryRegistry(history, eventCap int) *QueryRegistry {
	if history <= 0 {
		history = DefaultQueryHistory
	}
	if eventCap <= 0 {
		eventCap = DefaultFlightEvents
	}
	return &QueryRegistry{
		history:   history,
		eventCap:  eventCap,
		active:    make(map[uint64]*QueryState),
		completed: make([]QuerySnapshot, history),
	}
}

// SetSlowQueryLog arms the slow-query log: any query whose total
// duration exceeds threshold has fn invoked with its final snapshot
// (flight record included) at completion. A zero threshold disarms.
func (r *QueryRegistry) SetSlowQueryLog(threshold time.Duration, fn func(QuerySnapshot)) {
	if r == nil {
		return
	}
	r.slowMu.Lock()
	r.slowLog = fn
	r.slowMu.Unlock()
	r.slowThreshold.Store(int64(threshold))
}

// SlowThreshold returns the armed slow-query threshold (0 = off).
func (r *QueryRegistry) SlowThreshold() time.Duration {
	if r == nil {
		return 0
	}
	return time.Duration(r.slowThreshold.Load())
}

// Begin registers a new query and returns its live state. On a nil
// registry it returns nil, which is itself a valid no-op QueryState.
func (r *QueryRegistry) Begin(fingerprint, property, budget string, conflictBudget uint64, deadline time.Duration) *QueryState {
	if r == nil {
		return nil
	}
	qs := &QueryState{
		reg:            r,
		id:             r.nextID.Add(1),
		fingerprint:    fingerprint,
		property:       property,
		budget:         budget,
		conflictBudget: conflictBudget,
		deadline:       deadline,
		start:          time.Now(),
		phase:          "begin",
	}
	qs.attempt.Store(1)
	r.mu.Lock()
	r.active[qs.id] = qs
	r.mu.Unlock()
	return qs
}

// Active returns snapshots of all in-flight queries, ordered by id.
func (r *QueryRegistry) Active() []QuerySnapshot {
	if r == nil {
		return []QuerySnapshot{}
	}
	r.mu.Lock()
	states := make([]*QueryState, 0, len(r.active))
	for _, qs := range r.active {
		states = append(states, qs)
	}
	r.mu.Unlock()
	sort.Slice(states, func(i, j int) bool { return states[i].id < states[j].id })
	out := make([]QuerySnapshot, len(states))
	for i, qs := range states {
		out[i] = qs.Snapshot()
	}
	return out
}

// Completed returns the retained completed-query snapshots, newest
// first. The slice length is bounded by the registry's history.
func (r *QueryRegistry) Completed() []QuerySnapshot {
	if r == nil {
		return []QuerySnapshot{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]QuerySnapshot, 0, r.compLen)
	for i := 0; i < r.compLen; i++ {
		idx := (r.compNext - 1 - i + r.history) % r.history
		out = append(out, r.completed[idx])
	}
	return out
}

// Get returns the snapshot for a query id, searching active queries
// first and then the completed ring.
func (r *QueryRegistry) Get(id uint64) (QuerySnapshot, bool) {
	if r == nil {
		return QuerySnapshot{}, false
	}
	r.mu.Lock()
	qs, ok := r.active[id]
	r.mu.Unlock()
	if ok {
		return qs.Snapshot(), true
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := 0; i < r.compLen; i++ {
		idx := (r.compNext - 1 - i + r.history) % r.history
		if r.completed[idx].ID == id {
			return r.completed[idx], true
		}
	}
	return QuerySnapshot{}, false
}

// complete moves a finished query from the active map into the
// completed ring and fires the slow-query log when armed.
func (r *QueryRegistry) complete(qs *QueryState, snap QuerySnapshot) {
	r.mu.Lock()
	delete(r.active, qs.id)
	r.completed[r.compNext] = snap
	r.compNext = (r.compNext + 1) % r.history
	if r.compLen < r.history {
		r.compLen++
	}
	r.mu.Unlock()
	if t := r.slowThreshold.Load(); t > 0 && snap.ElapsedNanos > t {
		r.slowMu.Lock()
		fn := r.slowLog
		r.slowMu.Unlock()
		if fn != nil {
			fn(snap)
		}
	}
}

// QueryState is the live state of one registered query. The solving
// goroutine updates the hot counters through lock-free atomics (fed
// by the sat.SetProgress probe); rare transitions (phase changes,
// flight events, replica views, completion) take a per-query mutex.
// All methods are no-ops on a nil receiver.
type QueryState struct {
	reg            *QueryRegistry
	id             uint64
	fingerprint    string
	property       string
	budget         string
	conflictBudget uint64
	deadline       time.Duration
	start          time.Time

	// Hot fields, written from the progress probe.
	conflicts    atomic.Uint64
	decisions    atomic.Uint64
	propagations atomic.Uint64
	restarts     atomic.Uint64
	reduces      atomic.Uint64
	learntDB     atomic.Int64
	attempt      atomic.Int64

	mu            sync.Mutex
	phase         string
	events        []FlightEvent // ring, bounded by reg.eventCap
	evNext        int
	evLen         int
	eventsDropped uint64
	replicas      []ReplicaSnapshot
	done          bool
	status        string
	failureReason string
	end           time.Time
}

// ID returns the registry-assigned query id (0 on a nil state).
func (qs *QueryState) ID() uint64 {
	if qs == nil {
		return 0
	}
	return qs.id
}

// SetPhase records the query's current phase (encode, solve, decode…).
func (qs *QueryState) SetPhase(phase string) {
	if qs == nil {
		return
	}
	qs.mu.Lock()
	qs.phase = phase
	qs.mu.Unlock()
}

// SetAttempt records the current solve attempt (1-based).
func (qs *QueryState) SetAttempt(n int) {
	if qs == nil {
		return
	}
	qs.attempt.Store(int64(n))
}

// Progress publishes a solver progress snapshot. It is the hot path:
// seven atomic stores, no locks, called from the sat progress probe.
func (qs *QueryState) Progress(conflicts, decisions, propagations, restarts, reduces uint64, learntDB int) {
	if qs == nil {
		return
	}
	qs.conflicts.Store(conflicts)
	qs.decisions.Store(decisions)
	qs.propagations.Store(propagations)
	qs.restarts.Store(restarts)
	qs.reduces.Store(reduces)
	qs.learntDB.Store(int64(learntDB))
}

// Record appends a flight event to the query's bounded ring. When the
// ring is full the oldest event is overwritten and the drop counted.
func (qs *QueryState) Record(kind, detail string, conflicts uint64) {
	if qs == nil {
		return
	}
	ev := FlightEvent{
		OffsetNanos: int64(time.Since(qs.start)),
		Kind:        kind,
		Detail:      detail,
		Conflicts:   conflicts,
	}
	qs.mu.Lock()
	cap := qs.reg.eventCap
	if qs.events == nil {
		qs.events = make([]FlightEvent, cap)
	}
	qs.events[qs.evNext] = ev
	qs.evNext = (qs.evNext + 1) % cap
	if qs.evLen < cap {
		qs.evLen++
	} else {
		qs.eventsDropped++
	}
	qs.mu.Unlock()
}

// SetReplicas publishes the portfolio replica view (racing or final).
func (qs *QueryState) SetReplicas(replicas []ReplicaSnapshot) {
	if qs == nil {
		return
	}
	qs.mu.Lock()
	qs.replicas = replicas
	qs.mu.Unlock()
}

// Complete marks the query finished, moves it into the registry's
// completed ring, and returns the final snapshot. Subsequent calls
// are no-ops returning the zero snapshot.
func (qs *QueryState) Complete(status, failureReason string) QuerySnapshot {
	if qs == nil {
		return QuerySnapshot{}
	}
	qs.mu.Lock()
	if qs.done {
		qs.mu.Unlock()
		return QuerySnapshot{}
	}
	qs.done = true
	qs.status = status
	qs.failureReason = failureReason
	qs.end = time.Now()
	snap := qs.snapshotLocked()
	qs.mu.Unlock()
	qs.reg.complete(qs, snap)
	return snap
}

// Snapshot returns the query's current point-in-time view.
func (qs *QueryState) Snapshot() QuerySnapshot {
	if qs == nil {
		return QuerySnapshot{}
	}
	qs.mu.Lock()
	defer qs.mu.Unlock()
	return qs.snapshotLocked()
}

func (qs *QueryState) snapshotLocked() QuerySnapshot {
	end := qs.end
	if !qs.done {
		end = time.Now()
	}
	elapsed := end.Sub(qs.start)
	conflicts := qs.conflicts.Load()
	rate := 0.0
	if secs := elapsed.Seconds(); secs > 0 {
		rate = float64(conflicts) / secs
	}
	var events []FlightEvent
	if qs.evLen > 0 {
		events = make([]FlightEvent, 0, qs.evLen)
		cap := len(qs.events)
		for i := 0; i < qs.evLen; i++ {
			events = append(events, qs.events[(qs.evNext-qs.evLen+i+cap)%cap])
		}
	}
	var replicas []ReplicaSnapshot
	if len(qs.replicas) > 0 {
		replicas = append(replicas, qs.replicas...)
	}
	return QuerySnapshot{
		ID:             qs.id,
		Fingerprint:    qs.fingerprint,
		Property:       qs.property,
		Budget:         qs.budget,
		Phase:          qs.phase,
		Attempt:        int(qs.attempt.Load()),
		Conflicts:      conflicts,
		ConflictBudget: qs.conflictBudget,
		DeadlineNanos:  int64(qs.deadline),
		Decisions:      qs.decisions.Load(),
		Propagations:   qs.propagations.Load(),
		Restarts:       qs.restarts.Load(),
		Reduces:        qs.reduces.Load(),
		LearntDB:       int(qs.learntDB.Load()),
		StartUnixNano:  qs.start.UnixNano(),
		ElapsedNanos:   int64(elapsed),
		ConflictsPerS:  rate,
		Replicas:       replicas,
		Events:         events,
		EventsDropped:  qs.eventsDropped,
		Done:           qs.done,
		Status:         qs.status,
		FailureReason:  qs.failureReason,
	}
}

// FlightSummary renders the recorded events as one compact line
// ("restart@1024 reduce@4096 retry@8192(deadline)"), suitable for
// appending to a FailureReason. Empty when nothing was recorded.
func (qs *QueryState) FlightSummary() string {
	if qs == nil {
		return ""
	}
	snap := qs.Snapshot()
	if len(snap.Events) == 0 {
		return ""
	}
	var b strings.Builder
	if snap.EventsDropped > 0 {
		fmt.Fprintf(&b, "+%d earlier", snap.EventsDropped)
	}
	for _, ev := range snap.Events {
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s@%d", ev.Kind, ev.Conflicts)
		if ev.Detail != "" {
			fmt.Fprintf(&b, "(%s)", ev.Detail)
		}
	}
	return b.String()
}

// WatchProgress starts a goroutine that renders one WatchLine per
// active query to w every interval, for the CLI -watch mode. The
// returned stop function halts the goroutine and waits for it. On a
// nil registry or non-positive interval it is a no-op.
func WatchProgress(w io.Writer, r *QueryRegistry, interval time.Duration) (stop func()) {
	if r == nil || interval <= 0 {
		return func() {}
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				for _, q := range r.Active() {
					fmt.Fprintln(w, q.WatchLine())
				}
			}
		}
	}()
	return func() {
		close(done)
		wg.Wait()
	}
}
