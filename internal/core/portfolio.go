package core

import (
	"scadaver/internal/sat"
)

// DefaultPortfolioThreshold is the escalation threshold in conflicts:
// a query whose serial prelude decides within this many conflicts never
// pays for the portfolio (cloning N replicas costs a deep copy of the
// clause database each), while a harder query escalates with the
// prelude's learned clauses carried into every replica. The value is
// tuned against the bench suite: boundary queries on IEEE-14/30 decide
// under it, the IEEE-57/118 tail does not.
const DefaultPortfolioThreshold = 512

// WithPortfolio arms portfolio escalation: a query that exceeds the
// escalation threshold (DefaultPortfolioThreshold conflicts) is re-run
// as a race of n diversified solver replicas with clause sharing and
// inprocessing (see sat.Solver.SolvePortfolio). n <= 1 keeps solving
// purely serial.
//
// Verdicts stay deterministic per class: Unsat/bound verdicts (and thus
// resiliency indices) are identical to serial solving; a Sat witness
// may be a different — but always valid — attack vector. Campaigns that
// contract witness stability (scada-analyzer -sweep) must therefore
// keep the portfolio off, exactly like the encoding cache.
func WithPortfolio(n int) Option {
	return func(a *Analyzer) { a.portfolio = n }
}

// WithPortfolioNoShare disables the learnt-clause exchange between
// portfolio replicas, leaving diversification only. This is the
// ablation knob used by the benchmark methodology (EXPERIMENTS.md §P3);
// production callers want sharing on.
func WithPortfolioNoShare(v bool) Option {
	return func(a *Analyzer) { a.portfolioNoShare = v }
}

// portfolioThreshold returns the serial-prelude conflict budget before
// a query escalates to the portfolio.
func (a *Analyzer) portfolioThreshold() uint64 {
	if a.portfolioAfter > 0 {
		return a.portfolioAfter
	}
	return DefaultPortfolioThreshold
}

// portfolioOptions assembles the solver-level options for one
// escalation, including the chaos seam for replica faults.
// MaxConcurrent is left at its default (GOMAXPROCS), so on a single-CPU
// host escalation costs one clone over the serial retry instead of
// diluting the winner N ways; chaos tests saturate it explicitly.
func (a *Analyzer) portfolioOptions() sat.PortfolioOptions {
	return sat.PortfolioOptions{
		Replicas:       a.portfolio,
		NoSharing:      a.portfolioNoShare,
		MaxConcurrent:  a.portfolioMaxConc,
		OnReplicaStart: a.faults.ReplicaHook(),
	}
}

// recordPortfolio publishes one escalation's outcome: which strategy
// won (bounded label set — the diversification matrix), exchange
// volume, and isolated replica panics.
func (a *Analyzer) recordPortfolio(q Query, ps sat.PortfolioStats) {
	if a.qs != nil && len(ps.PerReplica) > 0 {
		a.qs.SetReplicas(replicaSnapshots(ps))
	}
	prop := q.Property.String()
	a.metrics.Inc("scadaver_portfolio_escalations_total", map[string]string{"property": prop})
	if ps.Winner >= 0 {
		a.metrics.Inc("scadaver_portfolio_wins_total", map[string]string{"strategy": ps.Strategy})
	}
	a.metrics.Add("scadaver_portfolio_clauses_exported_total", nil, float64(ps.Exported))
	a.metrics.Add("scadaver_portfolio_clauses_imported_total", nil, float64(ps.Imported))
	if ps.Panics > 0 {
		a.metrics.Add("scadaver_portfolio_replica_panics_total", nil, float64(ps.Panics))
	}
}
