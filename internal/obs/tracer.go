package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// Attr is one key/value annotation attached to a span or event.
type Attr struct {
	Key   string
	Value any
}

// A builds an Attr; it keeps instrumentation call sites short.
func A(key string, value any) Attr { return Attr{Key: key, Value: value} }

// TraceSchema names the JSONL record schema emitted by Tracer. It is
// written into the header record so consumers can detect incompatible
// changes.
const TraceSchema = "scadaver-trace/1"

// Tracer writes a hierarchical span trace as JSON lines. Each record is
// one object:
//
//	{"ev":"trace","name":"scadaver-trace/1","tNanos":0,"attrs":{"startUnixNano":...}}
//	{"ev":"begin","id":1,"name":"query","tNanos":120,"attrs":{...}}
//	{"ev":"event","span":1,"name":"progress","tNanos":950,"attrs":{...}}
//	{"ev":"end","id":1,"name":"query","tNanos":2100,"durNanos":1980,"attrs":{...}}
//
// Timestamps are nanoseconds relative to the header record; span ids
// are unique within the trace and child spans carry their parent's id.
// A Tracer is safe for concurrent use: spans started from worker
// goroutines interleave record-atomically in the output.
//
// The nil *Tracer is a valid disabled tracer: Start returns a nil
// *Span, on which every method is a no-op.
type Tracer struct {
	mu    sync.Mutex
	w     io.Writer
	next  uint64
	start time.Time
	now   func() time.Time // test seam; time.Now outside tests
	err   error
}

// NewTracer returns a tracer emitting JSONL records to w and writes the
// header record. The caller owns w (the tracer never closes it).
func NewTracer(w io.Writer) *Tracer {
	return newTracer(w, time.Now)
}

func newTracer(w io.Writer, now func() time.Time) *Tracer {
	t := &Tracer{w: w, now: now}
	t.start = now()
	t.mu.Lock()
	t.writeLocked(record{
		Ev:    "trace",
		Name:  TraceSchema,
		Attrs: map[string]any{"startUnixNano": t.start.UnixNano()},
	})
	t.mu.Unlock()
	return t
}

// Err returns the first write error, if any. Tracing degrades to a
// no-op after a write error rather than failing the traced work.
func (t *Tracer) Err() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// Start opens a root span (no parent). End must be called to emit the
// closing record; defer it right after Start.
func (t *Tracer) Start(name string, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	return t.startSpan(0, name, attrs)
}

// record is the wire form of one JSONL line.
type record struct {
	Ev     string         `json:"ev"`
	ID     uint64         `json:"id,omitempty"`
	Parent uint64         `json:"parent,omitempty"`
	Span   uint64         `json:"span,omitempty"`
	Name   string         `json:"name,omitempty"`
	T      int64          `json:"tNanos"`
	Dur    *int64         `json:"durNanos,omitempty"`
	Attrs  map[string]any `json:"attrs,omitempty"`
}

// writeLocked marshals and writes one record; t.mu must be held.
func (t *Tracer) writeLocked(r record) {
	if t.err != nil {
		return
	}
	data, err := json.Marshal(r)
	if err != nil {
		t.err = fmt.Errorf("obs: marshal trace record: %w", err)
		return
	}
	data = append(data, '\n')
	if _, err := t.w.Write(data); err != nil {
		t.err = fmt.Errorf("obs: write trace record: %w", err)
	}
}

func (t *Tracer) startSpan(parent uint64, name string, attrs []Attr) *Span {
	t.mu.Lock()
	t.next++
	id := t.next
	now := t.now()
	t.writeLocked(record{
		Ev:     "begin",
		ID:     id,
		Parent: parent,
		Name:   name,
		T:      now.Sub(t.start).Nanoseconds(),
		Attrs:  attrMap(attrs),
	})
	t.mu.Unlock()
	return &Span{t: t, id: id, name: name, start: now}
}

func attrMap(attrs []Attr) map[string]any {
	if len(attrs) == 0 {
		return nil
	}
	m := make(map[string]any, len(attrs))
	for _, a := range attrs {
		m[a.Key] = a.Value
	}
	return m
}

// Span is one traced operation. Spans form a tree via Start; a span's
// begin and end records bracket all of its children in the output.
// A single span must be ended by one goroutine, but different spans of
// one tracer may live on different goroutines (Runner workers). All
// methods are no-ops on a nil *Span, which is how disabled tracing
// propagates through instrumented code.
type Span struct {
	t     *Tracer
	id    uint64
	name  string
	start time.Time

	mu    sync.Mutex
	extra map[string]any
	ended bool
}

// Start opens a child span.
func (s *Span) Start(name string, attrs ...Attr) *Span {
	if s == nil {
		return nil
	}
	return s.t.startSpan(s.id, name, attrs)
}

// Event emits a point-in-time record inside the span (e.g. a solver
// progress report). Events carry the enclosing span's id but no id of
// their own.
func (s *Span) Event(name string, attrs ...Attr) {
	if s == nil {
		return
	}
	t := s.t
	t.mu.Lock()
	t.writeLocked(record{
		Ev:    "event",
		Span:  s.id,
		Name:  name,
		T:     t.now().Sub(t.start).Nanoseconds(),
		Attrs: attrMap(attrs),
	})
	t.mu.Unlock()
}

// Annotate attaches attributes to the span's end record — outcomes that
// are only known once the operation finishes (status, conflict counts).
func (s *Span) Annotate(attrs ...Attr) {
	if s == nil || len(attrs) == 0 {
		return
	}
	s.mu.Lock()
	if s.extra == nil {
		s.extra = make(map[string]any, len(attrs))
	}
	for _, a := range attrs {
		s.extra[a.Key] = a.Value
	}
	s.mu.Unlock()
}

// End emits the span's closing record with its duration and any
// annotations. End is idempotent; only the first call writes.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	extra := s.extra
	s.mu.Unlock()

	t := s.t
	t.mu.Lock()
	now := t.now()
	dur := now.Sub(s.start).Nanoseconds()
	t.writeLocked(record{
		Ev:    "end",
		ID:    s.id,
		Name:  s.name,
		T:     now.Sub(t.start).Nanoseconds(),
		Dur:   &dur,
		Attrs: extra,
	})
	t.mu.Unlock()
}
