// Quickstart: build a small SCADA system with the public API, verify a
// resiliency specification, and print the threat vectors the verifier
// synthesizes.
//
// The system: a 3-bus ring measured by four IEDs behind two RTUs. We ask
// whether state estimation stays possible ((1,1)-resilient
// observability) and securely possible, and let the analyzer point at
// the weak spots.
package main

import (
	"fmt"
	"log"

	"scadaver/internal/core"
	"scadaver/internal/powergrid"
	"scadaver/internal/scadanet"
	"scadaver/internal/secpolicy"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A 3-bus ring: lines 1-2, 2-3, 1-3.
	bus := &powergrid.BusSystem{
		Name:   "ring3",
		NBuses: 3,
		Branches: []powergrid.Branch{
			{From: 1, To: 2, Susceptance: 10},
			{From: 2, To: 3, Susceptance: 8},
			{From: 1, To: 3, Susceptance: 5},
		},
	}
	if err := bus.Validate(); err != nil {
		return err
	}

	// Measurements: both flow directions per line plus injections.
	msrs := powergrid.FullMeasurementSet(bus)
	fmt.Printf("bus system %q: %d states, %d possible measurements\n",
		bus.Name, msrs.NStates, msrs.Len())

	// The SCADA network: 4 IEDs (1-4), 2 RTUs (5, 6), one MTU (7).
	net := scadanet.NewNetwork()
	for id, kind := range map[scadanet.DeviceID]scadanet.DeviceKind{
		1: scadanet.IED, 2: scadanet.IED, 3: scadanet.IED, 4: scadanet.IED,
		5: scadanet.RTU, 6: scadanet.RTU,
		7: scadanet.MTU,
	} {
		if _, err := net.AddDevice(scadanet.Device{ID: id, Kind: kind}); err != nil {
			return err
		}
	}
	strong := []secpolicy.Profile{
		{Algo: secpolicy.CHAP, KeyBits: 64},
		{Algo: secpolicy.SHA2, KeyBits: 256},
	}
	authOnly := []secpolicy.Profile{{Algo: secpolicy.HMAC, KeyBits: 128}}
	backbone := []secpolicy.Profile{
		{Algo: secpolicy.RSA, KeyBits: 2048},
		{Algo: secpolicy.AES, KeyBits: 256},
	}
	links := []struct {
		a, b     scadanet.DeviceID
		profiles []secpolicy.Profile
	}{
		{1, 5, strong}, {2, 5, strong},
		{3, 6, strong}, {4, 6, authOnly}, // IED 4's uplink lacks integrity
		{5, 7, backbone}, {6, 7, backbone},
		{5, 6, backbone}, // RTU cross link
	}
	for _, l := range links {
		if _, err := net.AddLink(l.a, l.b, l.profiles...); err != nil {
			return err
		}
	}

	// Which IED records which measurements (1-based measurement IDs):
	// flows come in fwd/bwd pairs per line (IDs 1..6), injections 7..9.
	assign := map[scadanet.DeviceID][]int{
		1: {1, 2}, // both directions of line 1-2
		2: {3, 7}, // flow 2->3 and injection at bus 1
		3: {5, 8}, // flow 1->3 and injection at bus 2
		4: {6, 9}, // flow 3->1 and injection at bus 3
	}
	for ied, ids := range assign {
		if err := net.AssignMeasurements(ied, ids...); err != nil {
			return err
		}
	}

	cfg := &scadanet.Config{Msrs: msrs, Net: net, K1: 1, K2: 1, R: 1}
	analyzer, err := core.NewAnalyzer(cfg)
	if err != nil {
		return err
	}

	for _, q := range []core.Query{
		{Property: core.Observability, K1: 1, K2: 1},
		{Property: core.SecuredObservability, K1: 1, K2: 1},
		{Property: core.BadDataDetectability, K1: 0, K2: 0, R: 1},
	} {
		res, err := analyzer.Verify(q)
		if err != nil {
			return err
		}
		fmt.Println(res)
		if !res.Resilient() {
			vectors, err := analyzer.EnumerateThreats(q, 5)
			if err != nil {
				return err
			}
			for _, v := range vectors {
				fmt.Printf("  threat vector: %v\n", v)
			}
		}
	}

	maxIED, err := analyzer.MaxResiliency(core.Observability, 0, true, false)
	if err != nil {
		return err
	}
	fmt.Printf("maximum IED-only failures tolerated: %d\n", maxIED)
	return nil
}
