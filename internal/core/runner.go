package core

import (
	"context"
	"runtime"
	"sync"

	"scadaver/internal/sat"
	"scadaver/internal/scadanet"
)

// Runner fans independent verification work out across a pool of worker
// goroutines. The paper's evaluation — per-bus-system, per-property,
// per-budget queries — is embarrassingly parallel: every query is an
// independent SAT instance. The runner exploits that while enforcing the
// solver ownership rule: each worker builds and owns its own Analyzer
// (and therefore its own encoder and SAT solver); only the read-only
// Config is shared. Results come back in input order regardless of
// which worker finished first, so parallel campaigns produce results
// identical to serial ones.
//
// Cancellation is context-based: cancelling the context stops dispatch
// and interrupts in-flight solves through the solver's cooperative
// interrupt hook, so even a long unsat proof unwinds within a few
// hundred search steps.
type Runner struct {
	workers int
	opts    []Option
}

// NewRunner returns a runner with the given pool size; workers <= 0
// selects runtime.GOMAXPROCS(0). The options are applied to every
// analyzer the runner builds (WithConflictBudget, WithPolicy, ...).
func NewRunner(workers int, opts ...Option) *Runner {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Runner{workers: workers, opts: opts}
}

// Workers returns the configured pool size.
func (r *Runner) Workers() int { return r.workers }

// analyzerOptions returns the runner's options plus an interrupt hook
// polling ctx, for analyzers that must abandon solves on cancellation.
func (r *Runner) analyzerOptions(ctx context.Context) []Option {
	done := ctx.Done()
	hook := WithInterrupt(func() bool {
		select {
		case <-done:
			return true
		default:
			return false
		}
	})
	return append(append([]Option(nil), r.opts...), hook)
}

// VerifyAll verifies all queries against one shared configuration and
// returns results indexed like the input. Each worker owns a private
// Analyzer over cfg, which itself is only ever read.
//
// On context cancellation (or the first verification error) the
// remaining queries are abandoned: the returned slice holds nil at every
// unfinished index and the error is the context's (respectively the
// verification error). A nil error guarantees every entry is non-nil.
func (r *Runner) VerifyAll(ctx context.Context, cfg *scadanet.Config, queries []Query) ([]*Result, error) {
	results := make([]*Result, len(queries))
	err := r.RunEach(ctx, len(queries), func(ctx context.Context) (func(i int) error, error) {
		a, err := NewAnalyzer(cfg, r.analyzerOptions(ctx)...)
		if err != nil {
			return nil, err
		}
		return func(i int) error {
			res, err := a.Verify(queries[i])
			if err != nil {
				return err
			}
			if res.Status == sat.Unsolved && ctx.Err() != nil {
				// The solve was interrupted by cancellation, not decided;
				// leave the slot nil like every other unfinished query.
				return nil
			}
			results[i] = res
			return nil
		}, nil
	})
	return results, err
}

// Run executes task(0) … task(n-1) on the worker pool, at most Workers
// at a time, and returns the first error (cancelling the rest). Tasks
// must be independent; they run on arbitrary workers in arbitrary
// order. Callers needing per-worker state (e.g. a private Analyzer
// reused across tasks) should use RunEach or VerifyAll.
func (r *Runner) Run(ctx context.Context, n int, task func(i int) error) error {
	return r.RunEach(ctx, n, func(context.Context) (func(i int) error, error) {
		return task, nil
	})
}

// RunEach is Run with per-worker setup: newTask runs once on each worker
// goroutine and returns that worker's task function, closing over any
// single-goroutine state (an Analyzer, a Sweep, scratch buffers). The
// context passed to newTask is cancelled as soon as any task errors or
// the caller's context is done — wire it into WithInterrupt (as
// VerifyAll does) to make in-flight solves abandonable.
func (r *Runner) RunEach(ctx context.Context, n int, newTask func(ctx context.Context) (func(i int) error, error)) error {
	if n == 0 {
		return ctx.Err()
	}
	workers := r.workers
	if workers > n {
		workers = n
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		mu       sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		cancel()
	}

	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			task, err := newTask(ctx)
			if err != nil {
				fail(err)
				return
			}
			for i := range jobs {
				if err := task(i); err != nil {
					fail(err)
					return
				}
				if ctx.Err() != nil {
					return
				}
			}
		}()
	}

dispatch:
	for i := 0; i < n; i++ {
		select {
		case jobs <- i:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(jobs)
	wg.Wait()

	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}
