package sat

import (
	"math/rand"
	"testing"
)

// buildChain wires n implication chains x0 → x1 → … → xn-1 so a single
// assumption floods the propagation queue: the benchmark's hot loop is
// exactly Solver.propagate plus the trail unwinding between calls.
func buildChain(b *testing.B, s *Solver, n int) []Var {
	b.Helper()
	vars := make([]Var, n)
	for i := range vars {
		vars[i] = s.NewVar()
	}
	for i := 0; i+1 < n; i++ {
		if err := s.AddClause(NegLit(vars[i]), PosLit(vars[i+1])); err != nil {
			b.Fatal(err)
		}
	}
	return vars
}

// BenchmarkPropagate measures steady-state propagation: each iteration
// assumes the head of a 4096-variable implication chain, propagating the
// full chain and unwinding it again. Run with -benchmem; the watcher
// filtering must stay allocation-free once watch lists have warmed up.
func BenchmarkPropagate(b *testing.B) {
	s := New()
	vars := buildChain(b, s, 4096)
	head := PosLit(vars[0])
	if s.Solve(head) != Sat {
		b.Fatal("chain should be satisfiable")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s.Solve(head) != Sat {
			b.Fatal("chain should stay satisfiable")
		}
	}
}

// BenchmarkSolveConflicts measures the conflict-heavy steady state —
// analyze, clause learning, DB reduction, and the per-conflict scratch
// buffers — by re-solving a seeded random 3-SAT instance under rotating
// assumptions. The minimization snapshot buffer is reused across
// conflicts, so allocs/op here tracks only genuine clause learning.
func BenchmarkSolveConflicts(b *testing.B) {
	s := New()
	rng := rand.New(rand.NewSource(42))
	const nv, nc = 120, 480
	vars := make([]Var, nv)
	for i := range vars {
		vars[i] = s.NewVar()
	}
	for i := 0; i < nc; i++ {
		lits := make([]Lit, 0, 3)
		seen := map[int]bool{}
		for len(lits) < 3 {
			j := rng.Intn(nv)
			if seen[j] {
				continue
			}
			seen[j] = true
			lits = append(lits, MkLit(vars[j], rng.Intn(2) == 1))
		}
		if err := s.AddClause(lits...); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a1 := MkLit(vars[i%nv], i%2 == 0)
		a2 := MkLit(vars[(i*7+3)%nv], i%3 == 0)
		if a1.Var() == a2.Var() {
			a2 = MkLit(vars[(i*7+4)%nv], i%3 == 0)
		}
		s.Solve(a1, a2)
	}
}

// benchPortfolio measures a saturated 4-replica race on PHP(8,7) — a
// conflict-heavy unsat instance where the replicas restart often enough
// for the exchange ring to carry traffic. Toggling sharing isolates the
// exchange's contribution (EXPERIMENTS.md §P3): conflicts/solve is the
// adopted winner's conflict count and imports/solve the clauses it
// attached from other replicas.
func benchPortfolio(b *testing.B, noShare bool) {
	var conflicts, imported uint64
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s := New()
		php(b, s, 8, 7)
		b.StartTimer()
		status, pst := s.SolvePortfolio(PortfolioOptions{
			Replicas:      4,
			MaxConcurrent: -1,
			NoSharing:     noShare,
		})
		if status != Unsat {
			b.Fatalf("PHP(7,6) = %v, want unsat", status)
		}
		if pst.Winner < 0 {
			b.Fatal("no replica decided")
		}
		conflicts += s.Stats().Conflicts
		imported += pst.Imported
	}
	b.ReportMetric(float64(conflicts)/float64(b.N), "conflicts/solve")
	b.ReportMetric(float64(imported)/float64(b.N), "imports/solve")
}

func BenchmarkPortfolioSharing(b *testing.B)   { benchPortfolio(b, false) }
func BenchmarkPortfolioNoSharing(b *testing.B) { benchPortfolio(b, true) }
