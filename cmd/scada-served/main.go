// Command scada-served is the long-running verification service: it
// loads one or more named SCADA configurations and serves resiliency
// verification over HTTP/JSON with admission control, load shedding,
// and graceful degradation (see internal/serve and DESIGN.md §10).
//
// Usage:
//
//	scada-served -addr :8080 -config grid=testdata/case5bus.scada \
//	    [-config NAME=PATH ...] [-queue 64] [-workers 8] \
//	    [-deadline 10s] [-max-deadline 30s] [-checkpoint-dir /var/lib/scadaver] \
//	    [-breaker-threshold 0.5] [-drain-timeout 20s]
//
// Endpoints:
//
//	POST /v1/verify     one resiliency query        → JSON result
//	POST /v1/sweep      combined budgets k = 0..K   → JSON results
//	POST /v1/enumerate  threat vectors              → JSONL stream (resumable by requestId)
//	PATCH /v1/configs/{name}  apply a mutation delta → re-verify and publish, JSON verdicts
//	GET  /v1/subscribe  ?config=NAME                → JSONL stream of re-verification verdicts
//	GET  /v1/queries    live + recent query introspection → JSON
//	GET  /v1/queries/{id}/watch  one query's progress → JSONL stream
//	GET  /healthz       liveness
//	GET  /readyz        readiness (drain + breaker + load signals)
//	GET  /metrics       Prometheus text exposition
//	GET  /metrics.json  JSON metrics export
//	GET  /debug/pprof/  live profiling
//
// Overload sheds with 429 Retry-After at the bounded admission queue;
// a sustained unsolved/panic rate opens a breaker that turns /readyz
// unready; SIGTERM drains gracefully — stop accepting, finish or
// deadline-cancel in-flight solves, then exit.
//
// Clustering (see internal/cluster and DESIGN.md §14): with
// -coordinator the process fronts a fleet of member nodes instead of
// solving itself — it consistent-hashes campaigns across the members
// named by -member NAME=URL (or joining at runtime via
// POST /v1/cluster/join), fails requests over when a member dies, and
// carries in-flight enumeration checkpoints to the new owner. A member
// started with -join URL announces itself to that coordinator once it
// is listening, advertising -advertise (default: its bound address).
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"scadaver/internal/cluster"
	"scadaver/internal/core"
	"scadaver/internal/scadanet"
	"scadaver/internal/serve"
	"scadaver/internal/version"
)

// configFlags collects repeated -config NAME=PATH (or bare PATH)
// values.
type configFlags []string

func (c *configFlags) String() string { return strings.Join(*c, ", ") }
func (c *configFlags) Set(v string) error {
	*c = append(*c, v)
	return nil
}

// loadConfigs parses every -config value into a named configuration.
// A bare PATH takes the file's base name (without extension) as its
// name.
func loadConfigs(specs []string) (map[string]*scadanet.Config, error) {
	out := make(map[string]*scadanet.Config, len(specs))
	for _, spec := range specs {
		name, path, ok := strings.Cut(spec, "=")
		if !ok {
			path = spec
			name = strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
		}
		if name == "" || path == "" {
			return nil, fmt.Errorf("bad -config %q: want NAME=PATH or PATH", spec)
		}
		if _, dup := out[name]; dup {
			return nil, fmt.Errorf("duplicate config name %q", name)
		}
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		cfg, err := scadanet.ParseConfig(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("config %q: %w", name, err)
		}
		out[name] = cfg
	}
	return out, nil
}

func main() {
	if err := run(os.Args[1:], os.Stdout, nil); err != nil {
		fmt.Fprintln(os.Stderr, "scada-served:", err)
		os.Exit(1)
	}
}

// run starts the service and blocks until SIGTERM/SIGINT, then drains.
// ready, when non-nil, receives the bound listen address once the
// service is accepting (tests listen on :0 and need the real port).
func run(args []string, out io.Writer, ready chan<- string) error {
	fs := flag.NewFlagSet("scada-served", flag.ContinueOnError)
	var configs configFlags
	fs.Var(&configs, "config", "NAME=PATH of a .scada configuration to serve (repeatable; bare PATH names it after the file)")
	var (
		addr         = fs.String("addr", ":8080", "listen address")
		queueDepth   = fs.Int("queue", 64, "admission queue depth; excess load is shed with 429")
		workers      = fs.Int("workers", 0, "verification worker-pool size (0 = GOMAXPROCS)")
		portfolio    = fs.Int("portfolio", 0, "race N diversified solver replicas per hard query; the worker pool shrinks to workers/N so replicas don't oversubscribe (0/1 = serial)")
		deadline     = fs.Duration("deadline", 10*time.Second, "default per-solve deadline for requests without a budget")
		maxDeadline  = fs.Duration("max-deadline", 30*time.Second, "server-enforced per-solve deadline ceiling")
		maxRetries   = fs.Int("max-retries", 2, "server-enforced retry ceiling per query")
		reqTimeout   = fs.Duration("request-timeout", 60*time.Second, "whole-request wall-clock ceiling (queue wait included)")
		maxEnumerate = fs.Int("max-enumerate", 256, "max threat vectors per /v1/enumerate request")
		maxSweepK    = fs.Int("max-sweep-k", 64, "max budget range per /v1/sweep request")
		brkWindow    = fs.Int("breaker-window", 32, "breaker rolling-window size (request outcomes)")
		brkThreshold = fs.Float64("breaker-threshold", 0.5, "unsolved/panic rate that opens the breaker")
		brkCooldown  = fs.Duration("breaker-cooldown", 5*time.Second, "how long an open breaker waits before probing")
		ckptDir      = fs.String("checkpoint-dir", "", "directory for resumable /v1/enumerate checkpoints (empty = disabled)")
		sloThresh    = fs.Duration("slo", 0, "latency SLO threshold: slower requests count scadaver_slo_breach_total and slow queries log their flight record (0 = disabled)")
		queryHistory = fs.Int("query-history", 0, "completed queries retained by GET /v1/queries (0 = default 64)")
		presimp      = fs.Bool("presimplify", false, "preprocess each structural CNF before search (amortized via the shared encoding cache)")
		certify      = fs.Bool("certify", false, "certify every verdict (proof-logged solves checked in-process, sat-model audits, quarantine on divergence); responses carry certified/proofClauses/auditMs attestation")
		noCache      = fs.Bool("no-cache", false, "disable the service-wide encoding cache (re-encode the structure per request)")
		cacheEntries = fs.Int("cache-entries", 0, "encoding-cache entry cap, LRU-evicted beyond it (0 = default 256)")
		maxSubs      = fs.Int("max-subscribers", 0, "concurrent GET /v1/subscribe watchers per config; excess shed with 503 (0 = default 64)")
		drainTimeout = fs.Duration("drain-timeout", 20*time.Second, "grace for in-flight solves on SIGTERM before they are cancelled")
		showVersion  = fs.Bool("version", false, "print version and exit")
	)
	var members memberFlags
	fs.Var(&members, "member", "NAME=URL of a cluster member (repeatable; coordinator mode)")
	var (
		coordMode = fs.Bool("coordinator", false, "run as a cluster coordinator fronting -member nodes instead of solving locally")
		replicas  = fs.Int("replicas", 2, "coordinator replica-walk depth for failover ordering")
		attempts  = fs.Int("attempts", 3, "coordinator forward attempts per request before giving up")
		heartbeat = fs.Duration("heartbeat", time.Second, "coordinator member health-probe cadence")
		joinURL   = fs.String("join", "", "coordinator URL to announce this member to once listening")
		advertise = fs.String("advertise", "", "URL this member advertises when joining (default: its bound address)")
		nodeName  = fs.String("node-name", "", "member name used when joining (default: derived from the bound address)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *showVersion {
		fmt.Fprintln(out, version.String())
		return nil
	}
	if len(configs) == 0 && !*coordMode {
		fs.Usage()
		return fmt.Errorf("at least one -config is required")
	}
	named, err := loadConfigs(configs)
	if err != nil {
		return err
	}
	if *coordMode {
		return runCoordinator(coordinatorParams{
			addr: *addr, members: members, configs: named,
			replicas: *replicas, attempts: *attempts, heartbeat: *heartbeat,
		}, out, ready)
	}

	srv, err := serve.New(serve.Options{
		Configs:          named,
		QueueDepth:       *queueDepth,
		Workers:          *workers,
		Portfolio:        *portfolio,
		DefaultBudget:    core.QueryBudget{Deadline: *deadline},
		MaxBudget:        core.QueryBudget{Deadline: *maxDeadline, Retries: *maxRetries},
		RequestTimeout:   *reqTimeout,
		MaxEnumerate:     *maxEnumerate,
		MaxSweepK:        *maxSweepK,
		BreakerWindow:    *brkWindow,
		BreakerThreshold: *brkThreshold,
		BreakerCooldown:  *brkCooldown,
		CheckpointDir:    *ckptDir,
		SLOThreshold:     *sloThresh,
		QueryHistory:     *queryHistory,
		Presimplify:      *presimp,
		NoEncodingCache:  *noCache,
		CacheEntries:     *cacheEntries,
		MaxSubscribers:   *maxSubs,
		Certify:          *certify,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	fmt.Fprintf(out, "scada-served: serving %d config(s) on %s\n", len(named), ln.Addr())
	if ready != nil {
		ready <- ln.Addr().String()
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	if *joinURL != "" {
		name, adv := *nodeName, *advertise
		if adv == "" {
			adv = "http://" + ln.Addr().String()
		}
		if name == "" {
			name = "node-" + strings.NewReplacer(":", "-", ".", "-").Replace(ln.Addr().String())
		}
		go announceJoin(ctx, *joinURL, cluster.Member{Name: name, URL: adv}, out)
	}

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}

	// Graceful drain: stop admitting (readyz unready, new work shed),
	// finish or deadline-cancel in-flight solves, then close the
	// listener. Checkpoints are flushed per entry; metrics live at
	// /metrics until the very end.
	fmt.Fprintln(out, "scada-served: draining")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	drainErr := srv.Drain(drainCtx)
	shutCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := httpSrv.Shutdown(shutCtx); err != nil && drainErr == nil {
		drainErr = err
	}
	<-errCh // Serve has returned http.ErrServerClosed
	if drainErr != nil && !errors.Is(drainErr, context.DeadlineExceeded) {
		return drainErr
	}
	if drainErr != nil {
		fmt.Fprintln(out, "scada-served: drain deadline reached; in-flight solves were cancelled")
	}
	fmt.Fprintln(out, "scada-served: drained, exiting")
	return nil
}

// memberFlags collects repeated -member NAME=URL values.
type memberFlags []cluster.Member

func (m *memberFlags) String() string {
	names := make([]string, len(*m))
	for i, mem := range *m {
		names[i] = mem.Name
	}
	return strings.Join(names, ", ")
}

func (m *memberFlags) Set(v string) error {
	name, memberURL, ok := strings.Cut(v, "=")
	if !ok || name == "" || memberURL == "" {
		return fmt.Errorf("bad -member %q: want NAME=URL", v)
	}
	*m = append(*m, cluster.Member{Name: name, URL: memberURL})
	return nil
}

type coordinatorParams struct {
	addr      string
	members   []cluster.Member
	configs   map[string]*scadanet.Config
	replicas  int
	attempts  int
	heartbeat time.Duration
}

// runCoordinator serves the cluster coordinator until SIGTERM/SIGINT.
// Configs are optional here: they only enable checkpoint-carrying
// handoff fingerprints — without them a failover restarts the campaign
// on the new owner.
func runCoordinator(p coordinatorParams, out io.Writer, ready chan<- string) error {
	coord, err := cluster.New(cluster.Options{
		Members:           p.members,
		Configs:           p.configs,
		Replicas:          p.replicas,
		Attempts:          p.attempts,
		HeartbeatInterval: p.heartbeat,
	})
	if err != nil {
		return err
	}
	defer coord.Close()

	ln, err := net.Listen("tcp", p.addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: coord.Handler()}
	fmt.Fprintf(out, "scada-served: coordinating %d member(s) on %s\n", len(p.members), ln.Addr())
	if ready != nil {
		ready <- ln.Addr().String()
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	fmt.Fprintln(out, "scada-served: coordinator shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		return err
	}
	<-errCh
	fmt.Fprintln(out, "scada-served: coordinator exited")
	return nil
}

// announceJoin registers this member with the coordinator, retrying
// until it succeeds or the process is shutting down — the coordinator
// may well start after its members.
func announceJoin(ctx context.Context, coordURL string, m cluster.Member, out io.Writer) {
	body, err := json.Marshal(m)
	if err != nil {
		fmt.Fprintf(out, "scada-served: join announce: %v\n", err)
		return
	}
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost,
			strings.TrimSuffix(coordURL, "/")+"/v1/cluster/join", bytes.NewReader(body))
		if err != nil {
			fmt.Fprintf(out, "scada-served: join announce: %v\n", err)
			return
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body) //nolint:errcheck
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				fmt.Fprintf(out, "scada-served: joined cluster at %s as %s\n", coordURL, m.Name)
				return
			}
			err = fmt.Errorf("status %d", resp.StatusCode)
		}
		fmt.Fprintf(out, "scada-served: join announce failed (%v), retrying\n", err)
		select {
		case <-ctx.Done():
			return
		case <-time.After(time.Second):
		}
	}
}
