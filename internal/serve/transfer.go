package serve

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"time"

	"scadaver/internal/core"
)

// Checkpoint transfer: the member half of the cluster's
// checkpoint-carrying handoff protocol (see internal/cluster and
// DESIGN.md §14). GET serves a request's journal exactly as it sits on
// disk; PUT materializes a journal received from another node, so an
// in-flight enumeration or sweep resumes here instead of restarting.
// Both routes bypass admission: they are bounded journal I/O, not
// solver work, and a handoff must land precisely while the fleet is
// degraded.

// checkpointImportBody is the JSON response of a successful PUT
// /v1/checkpoints/{id}.
type checkpointImportBody struct {
	Entries     int    `json:"entries"`
	Fingerprint string `json:"fingerprint"`
}

// checkpointPath validates a transfer request's ID and resolves its
// journal path, or writes the error response and returns "".
func (s *Server) checkpointPath(w http.ResponseWriter, route string, start time.Time, id string) string {
	if s.opts.CheckpointDir == "" {
		s.respond(w, route, start, http.StatusNotFound,
			fmt.Errorf("checkpointing is disabled on this node"))
		return ""
	}
	if !requestIDPattern.MatchString(id) {
		s.respond(w, route, start, http.StatusBadRequest, fmt.Errorf("invalid requestId %q", id))
		return ""
	}
	return filepath.Join(s.opts.CheckpointDir, id+".ckpt")
}

func (s *Server) handleCheckpointExport(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	const route = "checkpoint-export"
	path := s.checkpointPath(w, route, start, r.PathValue("id"))
	if path == "" {
		return
	}
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		s.respond(w, route, start, http.StatusNotFound,
			fmt.Errorf("no checkpoint for requestId %q", r.PathValue("id")))
		return
	}
	if err != nil {
		s.respond(w, route, start, http.StatusInternalServerError, err)
		return
	}
	defer f.Close()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	n, err := io.Copy(w, f)
	code := strconv.Itoa(http.StatusOK)
	if err != nil {
		code += "-truncated"
	}
	s.account(route, start, code)
	s.reg.Add("scadaver_checkpoint_export_bytes_total", nil, float64(n))
}

func (s *Server) handleCheckpointImport(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	const route = "checkpoint-import"
	path := s.checkpointPath(w, route, start, r.PathValue("id"))
	if path == "" {
		return
	}
	kind := r.URL.Query().Get("kind")
	if kind == "" {
		kind = core.CheckpointKindEnumerate
	}
	if kind != core.CheckpointKindEnumerate && kind != core.CheckpointKindCampaign {
		s.respond(w, route, start, http.StatusBadRequest, fmt.Errorf("unknown checkpoint kind %q", kind))
		return
	}
	// The body is bounded like any request body; a checkpoint journal is
	// at most a few hundred entries. A torn final line — the sending
	// node died mid-transfer — imports its complete prefix (see
	// core.ImportCheckpoint); a foreign fingerprint is only detected
	// when a campaign opens the journal, and conflicts there.
	ck, err := core.ImportCheckpoint(path, kind, http.MaxBytesReader(w, r.Body, 32<<20))
	if err != nil {
		code := http.StatusBadRequest
		if errors.Is(err, core.ErrCheckpointMismatch) {
			code = http.StatusConflict
		}
		s.respond(w, route, start, code, err)
		return
	}
	s.reg.Inc("scadaver_checkpoint_imports_total", nil)
	s.respond(w, route, start, http.StatusOK, checkpointImportBody{
		Entries:     len(ck.Entries()),
		Fingerprint: ck.Fingerprint(),
	})
}
