package drat

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"scadaver/internal/sat"
)

// stream is a test-local proof recorder so a recorded run can be
// replayed into fresh checkers, with or without mutations.
type stream struct {
	steps []streamStep
}

type streamStep struct {
	op   sat.ProofOp
	lits []sat.Lit
}

func (s *stream) Step(op sat.ProofOp, lits []sat.Lit) {
	s.steps = append(s.steps, streamStep{op: op, lits: append([]sat.Lit(nil), lits...)})
}

func (s *stream) replay(w sat.ProofWriter) {
	for _, st := range s.steps {
		w.Step(st.op, st.lits)
	}
}

func replayInto(steps []streamStep) *Checker {
	ck := New()
	for _, st := range steps {
		ck.Step(st.op, st.lits)
	}
	return ck
}

// toLits converts 1-based DIMACS-style ints to sat literals.
func toLits(clause []int) []sat.Lit {
	lits := make([]sat.Lit, len(clause))
	for i, n := range clause {
		if n > 0 {
			lits[i] = sat.PosLit(sat.Var(n - 1))
		} else {
			lits[i] = sat.NegLit(sat.Var(-n - 1))
		}
	}
	return lits
}

func buildSolver(t *testing.T, nv int, cnf [][]int, hook sat.ProofWriter) *sat.Solver {
	t.Helper()
	s := sat.New()
	s.SetProofHook(hook)
	for i := 0; i < nv; i++ {
		s.NewVar()
	}
	for _, cl := range cnf {
		if err := s.AddClause(toLits(cl)...); err != nil {
			t.Fatalf("AddClause(%v): %v", cl, err)
		}
	}
	return s
}

// bruteForceSat decides small CNFs by enumeration (ground truth).
func bruteForceSat(nv int, cnf [][]int) bool {
	for m := 0; m < 1<<nv; m++ {
		ok := true
		for _, cl := range cnf {
			sat := false
			for _, n := range cl {
				v := n
				if v < 0 {
					v = -v
				}
				bit := m>>(v-1)&1 == 1
				if (n > 0) == bit {
					sat = true
					break
				}
			}
			if !sat {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// php builds the pigeonhole principle PHP(p, h): p pigeons into h holes,
// unsat whenever p > h. Variable x[i][j] = pigeon i sits in hole j,
// numbered 1 + i*h + j.
func php(p, h int) (nv int, cnf [][]int) {
	nv = p * h
	x := func(i, j int) int { return 1 + i*h + j }
	for i := 0; i < p; i++ {
		row := make([]int, h)
		for j := 0; j < h; j++ {
			row[j] = x(i, j)
		}
		cnf = append(cnf, row)
	}
	for j := 0; j < h; j++ {
		for i1 := 0; i1 < p; i1++ {
			for i2 := i1 + 1; i2 < p; i2++ {
				cnf = append(cnf, []int{-x(i1, j), -x(i2, j)})
			}
		}
	}
	return nv, cnf
}

func randCNF(rng *rand.Rand) (nv int, cnf [][]int) {
	nv = 3 + rng.Intn(8)
	nc := nv + rng.Intn(4*nv)
	for i := 0; i < nc; i++ {
		w := 1 + rng.Intn(3)
		cl := make([]int, 0, w)
		for j := 0; j < w; j++ {
			v := 1 + rng.Intn(nv)
			if rng.Intn(2) == 0 {
				v = -v
			}
			cl = append(cl, v)
		}
		cnf = append(cnf, cl)
	}
	return nv, cnf
}

func modelSatisfies(t *testing.T, s *sat.Solver, cnf [][]int) {
	t.Helper()
	m := s.Model()
	for _, cl := range cnf {
		ok := false
		for _, n := range cl {
			v := n
			if v < 0 {
				v = -v
			}
			if (n > 0) == m[v-1] {
				ok = true
				break
			}
		}
		if !ok {
			t.Fatalf("model %v falsifies clause %v", m, cl)
		}
	}
}

// TestCheckerAcceptsSolverProofs drives randomized small instances
// through the three solving pipelines (plain CDCL, Simplify+CDCL,
// inprocessing CDCL) with the checker armed from birth: verdicts must
// match brute force, and every Unsat verdict must carry a checkable
// refutation.
func TestCheckerAcceptsSolverProofs(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		rng := rand.New(rand.NewSource(seed))
		nv, cnf := randCNF(rng)
		ck := New()
		s := buildSolver(t, nv, cnf, ck)
		switch seed % 3 {
		case 1:
			s.Simplify()
		case 2:
			s.SetInprocess(true)
		}
		st := s.Solve()
		want := bruteForceSat(nv, cnf)
		switch st {
		case sat.Sat:
			if !want {
				t.Fatalf("seed %d: solver said sat, brute force says unsat", seed)
			}
			modelSatisfies(t, s, cnf)
		case sat.Unsat:
			if want {
				t.Fatalf("seed %d: solver said unsat, brute force says sat", seed)
			}
			if err := ck.Err(); err != nil {
				t.Fatalf("seed %d: proof step rejected: %v", seed, err)
			}
			if err := ck.VerifyUnsat(); err != nil {
				t.Fatalf("seed %d: unsat not certified: %v", seed, err)
			}
		default:
			t.Fatalf("seed %d: unexpected status %v", seed, st)
		}
	}
}

// TestCheckerPigeonhole certifies real conflict-driven refutations
// (pigeonhole instances force non-trivial learned-clause chains).
func TestCheckerPigeonhole(t *testing.T) {
	for _, pigeons := range []int{4, 5} {
		nv, cnf := php(pigeons, pigeons-1)
		ck := New()
		s := buildSolver(t, nv, cnf, ck)
		if st := s.Solve(); st != sat.Unsat {
			t.Fatalf("PHP(%d,%d): got %v, want unsat", pigeons, pigeons-1, st)
		}
		if err := ck.VerifyUnsat(); err != nil {
			t.Fatalf("PHP(%d,%d): %v", pigeons, pigeons-1, err)
		}
		if ck.Additions() == 0 {
			t.Fatalf("PHP(%d,%d): no derivation steps recorded", pigeons, pigeons-1)
		}
	}
}

// TestCheckerSimplifyProof forces the preprocessing emission paths
// (BVE resolvents, subsumption deletes, strengthen pairs) into the
// proof and checks the refutation still verifies.
func TestCheckerSimplifyProof(t *testing.T) {
	nv, cnf := php(5, 4)
	ck := New()
	s := buildSolver(t, nv, cnf, ck)
	s.Simplify()
	if st := s.Solve(); st != sat.Unsat {
		t.Fatalf("got %v, want unsat", st)
	}
	if err := ck.VerifyUnsat(); err != nil {
		t.Fatal(err)
	}
}

// TestCheckerUnsatUnderAssumptions covers the no-empty-clause path: a
// satisfiable formula refuted only under assumptions is certified by
// RUP-ness of the negated-assumption clause.
func TestCheckerUnsatUnderAssumptions(t *testing.T) {
	ck := New()
	s := sat.New()
	s.SetProofHook(ck)
	a, b, c := s.NewVar(), s.NewVar(), s.NewVar()
	for _, cl := range [][]sat.Lit{
		{sat.PosLit(a), sat.PosLit(b)},
		{sat.NegLit(a), sat.PosLit(c)},
		{sat.NegLit(b), sat.PosLit(c)},
	} {
		if err := s.AddClause(cl...); err != nil {
			t.Fatal(err)
		}
	}
	assumptions := []sat.Lit{sat.NegLit(c)}
	if st := s.Solve(assumptions...); st != sat.Unsat {
		t.Fatalf("got %v, want unsat under assumptions", st)
	}
	if err := ck.VerifyUnsat(assumptions...); err != nil {
		t.Fatal(err)
	}
	// The formula itself is satisfiable, so the plain certificate must
	// NOT exist.
	if err := ck.VerifyUnsat(); err == nil {
		t.Fatal("empty-clause certificate claimed for a satisfiable formula")
	}
	// And the solver stays usable: without the assumption it is sat.
	if st := s.Solve(); st != sat.Sat {
		t.Fatalf("got %v, want sat without assumptions", st)
	}
}

// TestCheckerPortfolioProofs runs the clause-sharing portfolio under an
// armed proof hook: imports are RUP-vetted at import time and the
// adopted replica's recording must replay into a checkable proof. The
// MaxConcurrent: 1 leg pins the 1-CPU admission path (replica 0 races
// alone).
func TestCheckerPortfolioProofs(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts sat.PortfolioOptions
	}{
		{"shared", sat.PortfolioOptions{Replicas: 4, MaxConcurrent: -1}},
		{"one-cpu", sat.PortfolioOptions{Replicas: 4, MaxConcurrent: 1}},
		{"no-sharing", sat.PortfolioOptions{Replicas: 4, MaxConcurrent: -1, NoSharing: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			nv, cnf := php(5, 4)
			ck := New()
			s := buildSolver(t, nv, cnf, ck)
			st, pst := s.SolvePortfolio(tc.opts)
			if st != sat.Unsat {
				t.Fatalf("got %v (winner %d), want unsat", st, pst.Winner)
			}
			if err := ck.VerifyUnsat(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestCheckerRejectsBogusAdd: a clause that is neither RUP nor RAT must
// latch an error.
func TestCheckerRejectsBogusAdd(t *testing.T) {
	ck := New()
	ck.Step(sat.ProofInput, toLits([]int{1, 2}))
	ck.Step(sat.ProofAdd, toLits([]int{-1}))
	if ck.Err() == nil {
		t.Fatal("underivable clause accepted")
	}
	if err := ck.VerifyUnsat(); err == nil {
		t.Fatal("VerifyUnsat succeeded after a rejected step")
	}
}

// TestCheckerRejectsMutatedProof mutates a recorded pigeonhole
// refutation — dropping a derivation step, permuting adjacent steps,
// flipping a literal — and requires that the checker catches at least
// one mutation of each kind (an individual mutation can be harmless
// when later steps do not depend on it, but a checker that never
// notices any is broken).
func TestCheckerRejectsMutatedProof(t *testing.T) {
	nv, cnf := php(4, 3)
	rec := &stream{}
	s := buildSolver(t, nv, cnf, rec)
	if st := s.Solve(); st != sat.Unsat {
		t.Fatalf("got %v, want unsat", st)
	}
	if ck := replayInto(rec.steps); ck.VerifyUnsat() != nil {
		t.Fatalf("unmutated proof rejected: %v", ck.VerifyUnsat())
	}
	addIdx := []int{}
	for i, st := range rec.steps {
		if st.op == sat.ProofAdd {
			addIdx = append(addIdx, i)
		}
	}
	if len(addIdx) < 2 {
		t.Fatalf("refutation too short to mutate (%d adds)", len(addIdx))
	}

	rejected := func(steps []streamStep) bool {
		ck := replayInto(steps)
		return ck.Err() != nil || ck.VerifyUnsat() != nil
	}

	drops := 0
	for _, i := range addIdx {
		mut := append([]streamStep(nil), rec.steps[:i]...)
		mut = append(mut, rec.steps[i+1:]...)
		if rejected(mut) {
			drops++
		}
	}
	if drops == 0 {
		t.Error("no dropped-step mutation was rejected")
	}

	perms := 0
	for k := 0; k+1 < len(addIdx); k++ {
		i, j := addIdx[k], addIdx[k+1]
		mut := append([]streamStep(nil), rec.steps...)
		mut[i], mut[j] = mut[j], mut[i]
		if rejected(mut) {
			perms++
		}
	}
	if perms == 0 {
		t.Error("no permuted-step mutation was rejected")
	}

	flips := 0
	for _, i := range addIdx {
		if len(rec.steps[i].lits) == 0 {
			continue
		}
		mut := append([]streamStep(nil), rec.steps...)
		lits := append([]sat.Lit(nil), mut[i].lits...)
		lits[0] = lits[0].Neg()
		mut[i] = streamStep{op: sat.ProofAdd, lits: lits}
		if rejected(mut) {
			flips++
		}
	}
	if flips == 0 {
		t.Error("no flipped-literal mutation was rejected")
	}
}

// TestCheckerDeletionBoundsMemory: honored deletes shrink the live set,
// unmatched deletes are ignored, and unit-like clauses are retained.
func TestCheckerDeletionBoundsMemory(t *testing.T) {
	ck := New()
	ck.Step(sat.ProofInput, toLits([]int{1, 2, 3}))
	ck.Step(sat.ProofInput, toLits([]int{-1, 2, 3}))
	if ck.Live() != 2 {
		t.Fatalf("live = %d, want 2", ck.Live())
	}
	ck.Step(sat.ProofAdd, toLits([]int{2, 3})) // resolvent: RUP
	if ck.Err() != nil {
		t.Fatal(ck.Err())
	}
	if ck.Live() != 3 {
		t.Fatalf("live = %d, want 3", ck.Live())
	}
	ck.Step(sat.ProofDelete, toLits([]int{1, 2, 3}))
	if ck.Live() != 2 {
		t.Fatalf("live = %d after delete, want 2", ck.Live())
	}
	ck.Step(sat.ProofDelete, toLits([]int{1, 2, 3})) // unmatched now
	if ck.Live() != 2 || ck.Err() != nil {
		t.Fatalf("unmatched delete: live=%d err=%v", ck.Live(), ck.Err())
	}
}

// TestDumpFormats checks the DIMACS + DRAT text rendering.
func TestDumpFormats(t *testing.T) {
	d := NewDump()
	d.Step(sat.ProofInput, toLits([]int{1, -2}))
	d.Step(sat.ProofInput, toLits([]int{2, 3}))
	d.Step(sat.ProofAdd, toLits([]int{1, 3}))
	d.Step(sat.ProofDelete, toLits([]int{2, 3}))

	var cnf bytes.Buffer
	if err := d.WriteDIMACS(&cnf); err != nil {
		t.Fatal(err)
	}
	want := "p cnf 3 2\n1 -2 0\n2 3 0\n"
	if cnf.String() != want {
		t.Fatalf("DIMACS = %q, want %q", cnf.String(), want)
	}

	var proof bytes.Buffer
	if err := d.WriteProof(&proof); err != nil {
		t.Fatal(err)
	}
	if got := proof.String(); got != "1 3 0\nd 2 3 0\n" {
		t.Fatalf("proof = %q", got)
	}
	if d.Inputs() != 2 {
		t.Fatalf("inputs = %d, want 2", d.Inputs())
	}
}

// TestTeeFansOut: a teed stream reaches both the checker and the dump.
func TestTeeFansOut(t *testing.T) {
	ck := New()
	d := NewDump()
	nv, cnf := php(4, 3)
	s := buildSolver(t, nv, cnf, Tee(ck, d))
	if st := s.Solve(); st != sat.Unsat {
		t.Fatalf("got %v, want unsat", st)
	}
	if err := ck.VerifyUnsat(); err != nil {
		t.Fatal(err)
	}
	var proof strings.Builder
	if err := d.WriteProof(&proof); err != nil {
		t.Fatal(err)
	}
	if proof.Len() == 0 || d.Inputs() != len(cnf) {
		t.Fatalf("dump missed steps: proof=%d bytes inputs=%d want %d", proof.Len(), d.Inputs(), len(cnf))
	}
}
