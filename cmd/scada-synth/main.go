// Command scada-synth generates synthetic SCADA configurations over
// IEEE(-like) bus systems, following the paper's evaluation methodology
// (Section V-A), and writes them in the .scada text format that
// scada-analyzer consumes.
//
// Usage:
//
//	scada-synth -bus ieee14 -hierarchy 2 -percent 80 -seed 7 -o sys.scada
package main

import (
	"flag"
	"fmt"
	"os"

	"scadaver/internal/obs"
	"scadaver/internal/powergrid"
	"scadaver/internal/scadanet"
	"scadaver/internal/synth"
	"scadaver/internal/version"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "scada-synth:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("scada-synth", flag.ContinueOnError)
	var (
		bus        = fs.String("bus", "ieee14", "bus system: ieee14 | ieee30 | ieee57 | ieee118 | case5")
		hierarchy  = fs.Int("hierarchy", 1, "average intermediate RTUs per IED→MTU path")
		percent    = fs.Float64("percent", 100, "percentage of the maximum measurement set to deploy")
		secureFrac = fs.Float64("secure", 0.8, "fraction of IED uplinks with integrity-protecting profiles")
		seed       = fs.Int64("seed", 1, "generator seed")
		k1         = fs.Int("k1", 1, "IED failure budget written into the config")
		k2         = fs.Int("k2", 1, "RTU failure budget written into the config")
		r          = fs.Int("r", 1, "corrupted-measurement budget written into the config")
		outPath    = fs.String("o", "-", "output file ('-' = stdout)")
		metricsOut = fs.String("metrics", "", "write run metrics (build info) to this file (.json extension = JSON, otherwise Prometheus text)")
		showVer    = fs.Bool("version", false, "print version and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *showVer {
		fmt.Println(version.String())
		return nil
	}
	if *metricsOut != "" {
		_, _, closeObs, err := obs.Setup("scada-synth", "", *metricsOut, "")
		if err != nil {
			return err
		}
		defer closeObs() //nolint:errcheck // metrics export is best-effort
	}

	sys, err := powergrid.ByName(*bus)
	if err != nil {
		return err
	}
	cfg, err := synth.Generate(synth.Params{
		Bus:                sys,
		Hierarchy:          *hierarchy,
		MeasurementPercent: *percent,
		SecureFraction:     *secureFrac,
		Seed:               *seed,
		K1:                 *k1,
		K2:                 *k2,
		R:                  *r,
	})
	if err != nil {
		return err
	}

	out := os.Stdout
	if *outPath != "-" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	return scadanet.WriteConfig(out, cfg)
}
