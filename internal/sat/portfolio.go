package sat

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// PortfolioOptions configures SolvePortfolio. The zero value (and any
// Replicas <= 1) degenerates to a plain serial Solve; set Replicas to
// race diversified clones with clause sharing and inprocessing enabled.
type PortfolioOptions struct {
	// Replicas is the number of diversified solver clones raced against
	// each other. Values <= 1 fall back to a plain serial Solve; values
	// above 16 are clamped.
	Replicas int

	// NoSharing disables the learnt-clause exchange between replicas
	// (the ablation knob: diversification only).
	NoSharing bool

	// NoInprocess disables between-restart inprocessing (root-level
	// database cleaning and clause vivification) in the replicas.
	NoInprocess bool

	// MaxSharedLen and MaxSharedLBD filter which learned clauses a
	// replica exports: only clauses at most MaxSharedLen literals long
	// with LBD at most MaxSharedLBD enter the exchange ring. Defaults: 8
	// literals, LBD 4.
	MaxSharedLen int
	MaxSharedLBD int32

	// ExchangeCap bounds the exchange ring (in clauses); older entries
	// are overwritten once the ring wraps. Default 4096.
	ExchangeCap int

	// MaxConcurrent caps how many replicas search simultaneously. A
	// portfolio only beats serial search when the replicas get real
	// parallelism: time-slicing N replicas on one CPU multiplies the
	// wall clock of the eventual winner by ~N. The default (0) therefore
	// admits runtime.GOMAXPROCS(0) replicas at a time — on a single-CPU
	// host the race degenerates to the baseline replica searching alone
	// (costing one clone over serial Solve), while multi-core hosts get
	// the full race. Admission is strictly in replica order and a decided
	// race releases waiting replicas without starting them. Negative
	// values admit every replica at once regardless of CPU count (chaos
	// tests pin the saturated race this way).
	MaxConcurrent int

	// OnReplicaStart, when non-nil, runs on each replica's goroutine
	// right before its search starts. It exists for fault injection in
	// chaos tests: a panicking hook kills that replica, and the
	// portfolio must isolate the loss without changing the verdict.
	OnReplicaStart func(id int)
}

func (o PortfolioOptions) withDefaults() PortfolioOptions {
	if o.Replicas > 16 {
		o.Replicas = 16
	}
	if o.MaxSharedLen <= 0 {
		o.MaxSharedLen = 8
	}
	if o.MaxSharedLBD <= 0 {
		o.MaxSharedLBD = 4
	}
	if o.ExchangeCap <= 0 {
		o.ExchangeCap = 4096
	}
	return o
}

// PortfolioStats describes one SolvePortfolio race, for observability:
// which strategy decided and how much the exchange moved.
type PortfolioStats struct {
	Replicas int    // replicas actually raced (0 when the serial fallback ran)
	Winner   int    // index of the deciding replica, -1 when none decided
	Strategy string // diversification strategy of the winner, "" when none
	Imported uint64 // shared clauses imported, summed over live replicas
	Exported uint64 // learned clauses exported, summed over live replicas
	Vivified uint64 // clauses strengthened by inprocessing, summed
	Panics   int    // replicas lost to a panic (isolated, never propagated)
	// PerReplica breaks the race down replica by replica for the live
	// query registry; index i describes replica i.
	PerReplica []ReplicaStats
}

// ReplicaStats is one replica's view of a portfolio race.
type ReplicaStats struct {
	ID        int
	Strategy  string
	Status    Status
	Conflicts uint64
	Imported  uint64
	Exported  uint64
	Winner    bool
	Panicked  bool
}

// StrategyName returns the diversification strategy replica i would be
// assigned, so callers can publish the racing lineup before the race
// resolves.
func StrategyName(i int) string { return strategyFor(i).name }

// strategy is one row of the diversification matrix. Zero-valued knobs
// mean "keep the base solver's setting".
type strategy struct {
	name        string
	varDecay    float64 // VSIDS decay (0 = inherit)
	restartBase int     // first restart interval (0 = inherit)
	geom        float64 // >1 = geometric restart factor, else Luby
	polarity    polInit
}

type polInit int

const (
	polSaved       polInit = iota // keep the base solver's saved phases
	polPositive                   // branch true first everywhere
	polNegative                   // branch false first everywhere
	polAlternating                // split by variable parity
)

// strategies is the diversification matrix (documented in DESIGN.md
// §12). Replica 0 is always the undiversified baseline so the portfolio
// is never slower than serial search by more than the scheduling
// overhead on a contended machine.
var strategies = [...]strategy{
	{name: "baseline", polarity: polSaved},
	{name: "geometric-fast", varDecay: 0.90, restartBase: 100, geom: 1.3, polarity: polPositive},
	{name: "luby-deep", varDecay: 0.99, restartBase: 300, polarity: polNegative},
	{name: "geometric-wide", varDecay: 0.85, restartBase: 50, geom: 2.0, polarity: polAlternating},
}

// strategyFor returns the strategy for replica i, cycling through the
// matrix with a deterministic decay nudge so replicas beyond the fourth
// still differ from their archetype.
func strategyFor(i int) strategy {
	st := strategies[i%len(strategies)]
	if rounds := i / len(strategies); rounds > 0 && st.varDecay > 0 {
		st.varDecay -= 0.02 * float64(rounds)
		if st.varDecay < 0.5 {
			st.varDecay = 0.5
		}
	}
	return st
}

func (st strategy) apply(r *Solver) {
	if st.varDecay > 0 {
		r.varDecay = st.varDecay
	}
	if st.restartBase > 0 {
		r.restartBase = st.restartBase
	}
	r.restartGeom = st.geom
	r.geomLimit = 0
	switch st.polarity {
	case polPositive:
		for v := range r.polarity {
			r.polarity[v] = false
		}
	case polNegative:
		for v := range r.polarity {
			r.polarity[v] = true
		}
	case polAlternating:
		for v := range r.polarity {
			r.polarity[v] = v%2 == 1
		}
	}
}

// sharedLearnt is one exchange-ring entry. lits is owned by the ring
// (copied on publish); importers copy again on attach so no two
// replicas ever share a clause's backing array.
type sharedLearnt struct {
	from int
	lbd  int32
	lits []Lit
}

// exchangeRing is the bounded, finely-locked learnt-clause exchange.
// Writers overwrite the oldest slot once the ring wraps; readers keep a
// private cursor and skip ahead on overrun, so a slow replica loses old
// clauses instead of stalling fast ones. The single short-critical-
// section mutex is deliberately simple — exports are filtered to short,
// low-LBD clauses, so traffic is a tiny fraction of propagation work.
type exchangeRing struct {
	mu   sync.Mutex
	buf  []sharedLearnt
	head uint64 // total clauses ever published
}

func newExchangeRing(capacity int) *exchangeRing {
	return &exchangeRing{buf: make([]sharedLearnt, capacity)}
}

func (r *exchangeRing) publish(from int, lits []Lit, lbd int32) {
	cp := append([]Lit(nil), lits...)
	r.mu.Lock()
	r.buf[int(r.head%uint64(len(r.buf)))] = sharedLearnt{from: from, lbd: lbd, lits: cp}
	r.head++
	r.mu.Unlock()
}

// drain returns every entry published since *cursor by replicas other
// than self and advances the cursor to the present. On overrun (more
// than cap(ring) publications since the last drain) the oldest entries
// are silently skipped.
func (r *exchangeRing) drain(cursor *uint64, self int) []sharedLearnt {
	r.mu.Lock()
	defer r.mu.Unlock()
	lo := *cursor
	if n := uint64(len(r.buf)); r.head > n && lo < r.head-n {
		lo = r.head - n
	}
	var out []sharedLearnt
	for i := lo; i < r.head; i++ {
		e := r.buf[int(i%uint64(len(r.buf)))]
		if e.from != self {
			out = append(out, e)
		}
	}
	*cursor = r.head
	return out
}

// importShared attaches clauses drained from the exchange ring. Must be
// called at decision level 0 (the restart hook guarantees this), so
// literal values are root-level facts: root-satisfied clauses are
// skipped, root-false literals stripped, and derived units enqueued.
// Clauses mentioning locally-eliminated variables are skipped
// defensively — replicas never run variable elimination, so with the
// current pipeline the filter never fires, but it keeps the importer
// sound if that ever changes.
//
// Under an armed proof hook every import must itself be justified: the
// clause was derived by ANOTHER replica, whose derivation this
// replica's proof does not contain. The importer therefore RUP-checks
// each candidate against the local database (rupImplied) and logs the
// ones that pass as ordinary Add steps; candidates that are not yet
// locally implied are dropped — sharing degrades instead of the proof
// breaking. See DESIGN.md §15 for why this beats disabling sharing.
func (s *Solver) importShared(ring *exchangeRing, cursor *uint64, self int) {
	for _, e := range ring.drain(cursor, self) {
		lits := make([]Lit, 0, len(e.lits))
		skip := false
		for _, l := range e.lits {
			if s.eliminated[l.Var()] {
				skip = true
				break
			}
			switch s.value(l) {
			case True:
				skip = true
			case False:
				continue
			default:
				lits = append(lits, l)
			}
			if skip {
				break
			}
		}
		if skip {
			continue
		}
		if s.proof != nil {
			if !s.rupImplied(e.lits) {
				continue
			}
			s.proofStep(ProofAdd, e.lits)
		}
		s.stats.ImportedClauses++
		switch len(lits) {
		case 0:
			s.markRootUnsat()
			return
		case 1:
			s.uncheckedEnqueue(lits[0], nil)
			if s.propagate() != nil {
				s.markRootUnsat()
				return
			}
		default:
			c := &clause{lits: lits, learned: true, lbd: e.lbd}
			s.learned = append(s.learned, c)
			s.attach(c)
		}
	}
}

// SolvePortfolio decides the instance like Solve, but races
// opts.Replicas diversified clones of the solver and returns the first
// verdict. Each replica gets its own VSIDS decay, restart schedule
// (Luby vs geometric), and initial polarity from the diversification
// matrix; unless disabled, replicas exchange short low-LBD learned
// clauses through a bounded ring and run light inprocessing
// (vivification and root-level re-simplification) between restarts.
//
// The first replica to decide wins and cooperatively interrupts the
// rest via the interrupt hook; the call always joins every replica
// goroutine before returning. The winner's full search state — clause
// database, learned clauses, assignment trail, activities, phases — is
// adopted into s, so a Sat answer exposes its model through Value/Model
// exactly as after a serial Solve, and later incremental calls continue
// from the winner's learning. The winner's counters are folded into
// s.Stats() so per-solve deltas stay truthful. When no replica decides
// (interrupt or exhausted conflict budget), the first intact replica is
// adopted anyway: its learned clauses are implied by the formula, so a
// retry under a bigger budget resumes instead of restarting.
//
// Verdicts are deterministic per class: Unsat is identical to serial
// solving (it is a property of the formula), while a Sat model may be a
// different — but always valid — satisfying assignment.
//
// An installed interrupt hook is honored by every replica and may be
// called from all replica goroutines concurrently, so it must be
// race-free. A conflict hook (fault-injection seam) rides replica 0
// only: an injected stall slows one replica instead of deciding the
// race. A replica that panics is isolated (counted in PortfolioStats)
// and never decides nor gets adopted.
func (s *Solver) SolvePortfolio(opts PortfolioOptions, assumptions ...Lit) (Status, PortfolioStats) {
	opts = opts.withDefaults()
	if opts.Replicas <= 1 || s.rootUnsat {
		return s.Solve(assumptions...), PortfolioStats{Winner: -1}
	}
	start := time.Now()

	var ring *exchangeRing
	if !opts.NoSharing {
		ring = newExchangeRing(opts.ExchangeCap)
	}
	baseInterrupt := s.interrupt
	var done atomic.Bool
	var winner atomic.Int32
	winner.Store(-1)
	doneCh := make(chan struct{})

	n := opts.Replicas
	maxConc := opts.MaxConcurrent
	if maxConc == 0 {
		maxConc = runtime.GOMAXPROCS(0)
	}
	if maxConc < 0 || maxConc > n {
		maxConc = n
	}

	replicas := make([]*Solver, n)
	statuses := make([]Status, n)
	panicked := make([]bool, n)

	// Under an armed proof hook each replica logs into a private
	// recorder (Clone deliberately does not copy the hook); the adopted
	// replica's recording is replayed into the parent's writer after
	// the race, so the emitted proof describes exactly the database the
	// caller ends up observing. Replicas are clones of s, whose inputs
	// and prior derivations the parent's proof already contains, so the
	// replayed steps check against the right prefix.
	var recorders []*proofRecorder
	if s.proof != nil {
		recorders = make([]*proofRecorder, n)
	}

	// makeReplica clones s and diversifies the clone lazily, only when
	// the replica is actually admitted — replicas released by an already
	// decided race never pay the clone. The mutex serializes Clone calls:
	// Clone unwinds s to the root level first, which must not race.
	var cloneMu sync.Mutex
	makeReplica := func(id int) *Solver {
		cloneMu.Lock()
		r := s.Clone()
		cloneMu.Unlock()
		strategyFor(id).apply(r)
		if recorders != nil {
			rec := &proofRecorder{}
			recorders[id] = rec
			r.SetProofHook(rec)
		}
		r.SetInterrupt(func() bool {
			return done.Load() || (baseInterrupt != nil && baseInterrupt())
		})
		if id == 0 {
			// Deterministic fault hooks and the progress probe ride the
			// baseline replica only: an injected stall degrades one replica
			// (the others still decide), and progress events stay
			// single-goroutine.
			r.SetConflictHook(s.conflictHook)
			r.SetProgress(s.progressEvery, s.progress)
			r.SetEventHook(s.eventHook)
		}
		inproc := 0
		var cursor uint64
		if ring != nil {
			r.learnHook = func(lits []Lit, lbd int32) {
				if len(lits) > opts.MaxSharedLen || lbd > opts.MaxSharedLBD {
					return
				}
				ring.publish(id, lits, lbd)
				r.stats.ExportedClauses++
			}
		}
		if ring != nil || !opts.NoInprocess {
			r.restartHook = func() {
				if ring != nil {
					r.importShared(ring, &cursor, id)
					if r.rootUnsat {
						return
					}
				}
				inproc++
				if !opts.NoInprocess && inproc%inprocessEvery == 0 {
					r.simplifyRoots()
					if !r.rootUnsat {
						r.vivifyRound(vivifyClausesPerRound)
					}
				}
			}
		}
		return r
	}

	// Admission is a deterministic hand-off chain: the first maxConc
	// replicas start immediately, and every replica that finishes (for
	// any reason, panic included) releases exactly the next one in index
	// order. Replica 0 — the undiversified baseline — is therefore always
	// first, so a GOMAXPROCS-capped portfolio on one CPU behaves like a
	// serial Solve plus one clone rather than an N-way time slice.
	starts := make([]chan struct{}, n)
	for i := range starts {
		starts[i] = make(chan struct{})
	}
	for i := 0; i < maxConc; i++ {
		close(starts[i])
	}
	var nextAdmit atomic.Int64
	nextAdmit.Store(int64(maxConc))

	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(id int) {
			defer wg.Done()
			defer func() {
				if nxt := int(nextAdmit.Add(1)) - 1; nxt < n {
					close(starts[nxt])
				}
			}()
			defer func() {
				if p := recover(); p != nil {
					panicked[id] = true
					statuses[id] = Unsolved
				}
			}()
			// Replicas admitted up front always start — the saturated race
			// is what the chaos tests pin. Replicas that had to wait for a
			// slot skip entirely when the race was decided (or externally
			// interrupted) in the meantime: no clone, no search.
			if id >= maxConc {
				select {
				case <-starts[id]:
				case <-doneCh:
					return // race decided before this replica's turn
				}
				if done.Load() || (baseInterrupt != nil && baseInterrupt()) {
					return
				}
			}
			r := makeReplica(id)
			replicas[id] = r
			if opts.OnReplicaStart != nil {
				opts.OnReplicaStart(id)
			}
			st := r.Solve(assumptions...)
			statuses[id] = st
			if st != Unsolved && winner.CompareAndSwap(-1, int32(id)) {
				done.Store(true)
				close(doneCh)
			}
		}(i)
	}
	wg.Wait()

	pst := PortfolioStats{Replicas: opts.Replicas, Winner: -1}
	pst.PerReplica = make([]ReplicaStats, opts.Replicas)
	for i, r := range replicas {
		rep := ReplicaStats{ID: i, Strategy: strategyFor(i).name, Status: statuses[i], Panicked: panicked[i]}
		if panicked[i] {
			pst.Panics++
			pst.PerReplica[i] = rep
			continue
		}
		if r == nil {
			pst.PerReplica[i] = rep
			continue // released without starting: nothing to account
		}
		rs := r.Stats()
		rep.Conflicts = rs.Conflicts
		rep.Imported = rs.ImportedClauses
		rep.Exported = rs.ExportedClauses
		pst.PerReplica[i] = rep
		pst.Imported += rs.ImportedClauses
		pst.Exported += rs.ExportedClauses
		pst.Vivified += rs.VivifiedClauses
	}
	status := Unsolved
	pick := int(winner.Load())
	if pick >= 0 {
		status = statuses[pick]
		pst.Winner = pick
		pst.Strategy = strategyFor(pick).name
		pst.PerReplica[pick].Winner = true
	} else {
		pick = -1
		for i := range replicas {
			if !panicked[i] && replicas[i] != nil {
				pick = i
				break
			}
		}
	}
	if pick >= 0 && replicas[pick] != nil {
		if recorders != nil && recorders[pick] != nil {
			recorders[pick].replay(s.proof)
		}
		s.adopt(replicas[pick], time.Since(start))
	}
	return status, pst
}

// adopt moves the chosen replica's entire search state into s while
// keeping s's identity: callers holding the *Solver (the encoder, the
// encoding cache) see the winner's clause database, trail, and model
// through the same pointer. Hooks and schedule knobs stay s's own; the
// replica's counters (a per-race delta, since clones start at zero) are
// folded into s's cumulative stats, with SolveTime replaced by the
// race's wall clock so phase accounting reflects elapsed time rather
// than the sum over replicas.
func (s *Solver) adopt(w *Solver, wall time.Duration) {
	s.clauses = w.clauses
	s.learned = w.learned
	s.assigns = w.assigns
	s.level = w.level
	s.reason = w.reason
	s.trail = w.trail
	s.trailLim = w.trailLim
	s.qhead = w.qhead
	s.watches = w.watches
	s.activity = w.activity
	s.varInc = w.varInc
	s.clauseInc = w.clauseInc
	s.polarity = w.polarity
	s.frozen = w.frozen
	s.eliminated = w.eliminated
	s.elimStack = w.elimStack
	s.rootUnsat = w.rootUnsat
	// The activity heap holds a pointer to its owner's activity slice;
	// rebuild it over s's (now adopted) slice.
	s.order = newActivityHeap(&s.activity)
	for v := Var(0); int(v) < len(s.assigns); v++ {
		if s.assigns[v] == Unknown && !s.eliminated[v] {
			s.order.push(v)
		}
	}
	delta := w.Stats()
	delta.SolveTime = wall
	s.stats = s.stats.add(delta)
}
