// AC state estimation: the nonlinear control routine whose data needs
// the verifier reasons about.
//
// The example runs Gauss-Newton AC weighted-least-squares estimation on
// the IEEE 14-bus system: synthesize a true operating point, measure it
// with realistic noise (P/Q flows, P/Q injections, voltage magnitudes),
// estimate, and compare. It then drops voltage anchors to show the
// estimate degrading exactly where the measurement set stops pinning the
// state — the nonlinear face of the observability property the SCADA
// verifier certifies combinatorially.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"scadaver/internal/powergrid"
	"scadaver/internal/stateest"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	sys := powergrid.IEEE14()
	est, err := stateest.NewAC(sys, 1)
	if err != nil {
		return err
	}

	// A plausible operating point.
	truth := est.FlatState()
	for i := range truth.Angles {
		truth.Angles[i] = -0.025 * float64(i)
		truth.Voltages[i] = 1.0 + 0.015*math.Sin(float64(i))
	}

	// Measurement plan: both P flows per line, one Q flow, P/Q
	// injections and a voltage reading per bus.
	var plan []stateest.ACMeasurement
	for _, br := range sys.Branches {
		plan = append(plan,
			stateest.ACMeasurement{Kind: stateest.ACFlowP, From: br.From, To: br.To, Sigma: 0.01},
			stateest.ACMeasurement{Kind: stateest.ACFlowP, From: br.To, To: br.From, Sigma: 0.01},
			stateest.ACMeasurement{Kind: stateest.ACFlowQ, From: br.From, To: br.To, Sigma: 0.01},
		)
	}
	for bus := 1; bus <= sys.NBuses; bus++ {
		plan = append(plan,
			stateest.ACMeasurement{Kind: stateest.ACInjP, From: bus, Sigma: 0.01},
			stateest.ACMeasurement{Kind: stateest.ACInjQ, From: bus, Sigma: 0.01},
			stateest.ACMeasurement{Kind: stateest.ACVoltage, From: bus, Sigma: 0.005},
		)
	}

	msrs, err := est.MeasureAC(plan, truth, rand.New(rand.NewSource(14)))
	if err != nil {
		return err
	}
	state, chi, err := est.EstimateAC(msrs)
	if err != nil {
		return err
	}

	maxAngleErr, maxVoltErr := 0.0, 0.0
	for i := range truth.Angles {
		a := math.Abs(state.Angles[i] - (truth.Angles[i] - truth.Angles[0]))
		v := math.Abs(state.Voltages[i] - truth.Voltages[i])
		maxAngleErr = math.Max(maxAngleErr, a)
		maxVoltErr = math.Max(maxVoltErr, v)
	}
	fmt.Printf("full plan: %d measurements, chi-square %.1f\n", len(msrs), chi)
	fmt.Printf("  max angle error   %.5f rad\n", maxAngleErr)
	fmt.Printf("  max voltage error %.5f pu\n", maxVoltErr)

	// Drop every voltage reading but one: angles stay estimable,
	// voltage precision degrades gracefully; drop them all and the gain
	// matrix goes singular — the AC analogue of unobservability.
	var thin []stateest.ACMeasurement
	voltSeen := false
	for _, m := range msrs {
		if m.Kind == stateest.ACVoltage {
			if voltSeen {
				continue
			}
			voltSeen = true
		}
		thin = append(thin, m)
	}
	_, chiThin, err := est.EstimateAC(thin)
	if err != nil {
		return err
	}
	fmt.Printf("one voltage anchor: %d measurements, chi-square %.1f (still solvable)\n", len(thin), chiThin)

	// Real-power measurements alone cannot fix the voltage magnitudes
	// (P = Vi·Vj·b·sin θij is scale-ambiguous in V): the gain matrix is
	// singular — the AC analogue of an unobservable measurement set.
	var pOnly []stateest.ACMeasurement
	for _, m := range msrs {
		if m.Kind == stateest.ACFlowP || m.Kind == stateest.ACInjP {
			pOnly = append(pOnly, m)
		}
	}
	if _, _, err := est.EstimateAC(pOnly); err != nil {
		fmt.Printf("P-only plan:        estimation fails as predicted: %v\n", err)
	} else {
		fmt.Println("P-only plan:        unexpectedly solvable")
	}
	return nil
}
