package sat

import (
	"fmt"
	"sort"
	"time"
)

// Solver is an incremental CDCL SAT solver. Construct with New, create
// variables with NewVar, add clauses with AddClause, and call Solve
// (optionally with assumption literals). After a Sat answer, Value and
// Model expose the satisfying assignment.
type Solver struct {
	// Clause database.
	clauses []*clause // problem clauses
	learned []*clause // learned clauses

	// Assignment state.
	assigns  []Tribool // var -> current value
	level    []int     // var -> decision level of assignment
	reason   []*clause // var -> antecedent clause (nil for decisions)
	trail    []Lit     // assignment stack
	trailLim []int     // decision-level boundaries in trail
	qhead    int       // propagation queue head (index into trail)

	// Watches: literal -> clauses watching that literal's negation.
	watches [][]watcher

	// Decision heuristic.
	activity []float64
	varInc   float64
	varDecay float64
	order    *activityHeap
	polarity []bool // saved phases (true = last assigned false)

	// Learned-clause management.
	clauseInc   float64
	clauseDecay float64
	maxLearned  int

	// Conflict-analysis scratch.
	seen        []bool
	analyzeTmp  []Lit
	minimizeTmp []Lit // reusable snapshot buffer for clause minimization
	levelSeen   map[int]bool

	// Preprocessing state (see simplify.go). Frozen variables are exempt
	// from elimination because callers will still refer to them in future
	// clauses or assumptions; eliminated variables are resolved out of the
	// clause database and reconstructed into models by extendModel.
	frozen     []bool
	eliminated []bool
	elimStack  []elimRecord

	// Restart bookkeeping. restartGeom > 1 selects a geometric schedule
	// (the limit grows by that factor each restart); otherwise the Luby
	// sequence over restartBase is used. Portfolio replicas diversify
	// both (see portfolio.go).
	lubyIdx     int
	restartBase int
	restartGeom float64
	geomLimit   int

	// Portfolio seams (see portfolio.go). learnHook observes every
	// clause learned by conflict analysis (the exchange export side);
	// restartHook runs at the root level after each restart unwinds (the
	// import + inprocessing side). Both are nil outside portfolio
	// replicas; the disabled cost is one nil-check per conflict/restart.
	learnHook   func(lits []Lit, lbd int32)
	restartHook func()

	// vivifyNext rotates clause vivification through the learned DB so
	// successive inprocessing rounds touch different clauses.
	vivifyNext int

	// inprocess arms between-restart inprocessing (root-level database
	// cleaning plus clause vivification, every inprocessEvery restarts)
	// on the serial solve path. Portfolio replicas inprocess through
	// their restartHook instead, which takes precedence.
	inprocess bool

	// Budget: 0 = unlimited.
	conflictBudget uint64

	// Cooperative cancellation: polled periodically during search.
	interrupt func() bool

	// Deterministic cancellation seam: consulted after every conflict
	// with the current call's conflict count (see SetConflictHook).
	conflictHook func(conflicts uint64) bool

	// Progress probe: fired every progressEvery conflicts (see
	// SetProgress). progressNext is the conflict count of the next report.
	progress      func(Progress)
	progressEvery uint64
	progressNext  uint64

	// Event hook: fired on rare search transitions (restarts, DB
	// reductions) for the flight recorder (see SetEventHook). The
	// disabled cost is one nil-check per restart/reduction.
	eventHook func(Event)

	// Proof logging seam (see proof.go): every clause-database change —
	// inputs, learned clauses, pre-/inprocessing derivations, deletions
	// — is narrated as a DRAT step when armed. Nil outside certified
	// runs; the disabled cost is one nil-check per database change.
	proof ProofWriter

	rootUnsat bool
	stats     Stats
}

// New returns an empty solver ready for variables and clauses.
func New() *Solver {
	s := &Solver{
		varInc:      1.0,
		varDecay:    0.95,
		clauseInc:   1.0,
		clauseDecay: 0.999,
		maxLearned:  4000,
		restartBase: 100,
		levelSeen:   make(map[int]bool, 32),
	}
	s.order = newActivityHeap(&s.activity)
	return s
}

// NewVar introduces a fresh variable and returns it.
func (s *Solver) NewVar() Var {
	v := Var(len(s.assigns))
	s.assigns = append(s.assigns, Unknown)
	s.level = append(s.level, -1)
	s.reason = append(s.reason, nil)
	s.activity = append(s.activity, 0)
	s.polarity = append(s.polarity, true)
	s.seen = append(s.seen, false)
	s.watches = append(s.watches, nil, nil)
	s.frozen = append(s.frozen, false)
	s.eliminated = append(s.eliminated, false)
	s.order.push(v)
	s.stats.MaxVars = len(s.assigns)
	return v
}

// NumVars returns the number of variables created so far.
func (s *Solver) NumVars() int { return len(s.assigns) }

// SetConflictBudget bounds the number of conflicts a single Solve may
// spend; 0 means unlimited. An exhausted budget yields Unsolved. The
// budget applies to each Solve call individually — it is not consumed
// across calls on an incrementally reused solver.
func (s *Solver) SetConflictBudget(n uint64) { s.conflictBudget = n }

// SetInterrupt installs a cancellation hook polled periodically during
// search (roughly every few hundred decisions/conflicts). When it
// returns true the current Solve unwinds to the root level and returns
// Unsolved. A nil hook disables polling. The solver remains usable for
// further Solve calls afterwards.
func (s *Solver) SetInterrupt(f func() bool) { s.interrupt = f }

// SetConflictHook installs a deterministic cancellation seam: after
// every conflict of a Solve call the hook receives the number of
// conflicts that call has spent so far, and a true return unwinds the
// search to the root level with Unsolved — exactly like an exhausted
// conflict budget, but decided by the caller. Unlike SetInterrupt
// (polled on a wall-clock-ish iteration cadence) the hook is exact and
// replayable, which is what the fault-injection harness needs to stall
// solves at reproducible points. A nil hook disables the seam; the
// disabled cost is one nil-check per conflict.
func (s *Solver) SetConflictHook(f func(conflicts uint64) bool) { s.conflictHook = f }

// SetInprocess arms (or disarms) between-restart inprocessing on the
// serial solve path: every inprocessEvery restarts the solver removes
// root-satisfied clauses and vivifies a bounded rotation of its learned
// DB (see vivify.go). Inprocessing is deterministic — the same solve
// runs the same rounds — and equisatisfiable, so verdicts never change;
// long solves keep shrinking their clause database instead of paying
// ever-longer propagations. Portfolio replicas inprocess through their
// restart hook instead; this knob only affects plain Solve calls.
func (s *Solver) SetInprocess(v bool) { s.inprocess = v }

// SetProgress installs a progress probe fired from inside Solve every
// `every` conflicts, so long searches (multi-second unsat proofs in
// particular) are observable while they run. The callback receives a
// Progress snapshot of the cumulative counters; it runs on the solving
// goroutine and must be fast and must not call back into the solver.
// A nil callback or every == 0 disables the probe. The disabled cost is
// one nil-check per conflict.
func (s *Solver) SetProgress(every uint64, f func(Progress)) {
	if f == nil || every == 0 {
		s.progress, s.progressEvery, s.progressNext = nil, 0, 0
		return
	}
	s.progress = f
	s.progressEvery = every
	s.progressNext = s.stats.Conflicts + every
}

// SetEventHook installs a hook fired on coarse search transitions —
// each restart and each learned-DB reduction — with the cumulative
// counters at that point. Events are orders of magnitude rarer than
// conflicts, so the hook may do slightly more work than a progress
// probe (e.g. append to a mutex-guarded ring), but it still runs on
// the solving goroutine and must not call back into the solver. A nil
// hook disables the seam; the disabled cost is one nil-check per
// restart and per reduction.
func (s *Solver) SetEventHook(f func(Event)) { s.eventHook = f }

// fireEvent delivers a solver event to the hook, if armed.
func (s *Solver) fireEvent(kind EventKind) {
	if s.eventHook == nil {
		return
	}
	s.eventHook(Event{
		Kind:         kind,
		Conflicts:    s.stats.Conflicts,
		Decisions:    s.stats.Decisions,
		Propagations: s.stats.Propagations,
		Restarts:     s.stats.Restarts,
		Reduces:      s.stats.Reduces,
		LearntDB:     len(s.learned),
	})
}

// progressSnapshot builds the probe's view of the search.
func (s *Solver) progressSnapshot() Progress {
	return Progress{
		Conflicts:    s.stats.Conflicts,
		Decisions:    s.stats.Decisions,
		Propagations: s.stats.Propagations,
		Restarts:     s.stats.Restarts,
		Reduces:      s.stats.Reduces,
		LearntDB:     len(s.learned),
		Level:        s.decisionLevel(),
	}
}

// Stats returns a snapshot of the solver counters.
func (s *Solver) Stats() Stats {
	st := s.stats
	st.Clauses = len(s.clauses)
	return st
}

func (s *Solver) value(l Lit) Tribool {
	v := s.assigns[l.Var()]
	if l.Sign() {
		return v.Not()
	}
	return v
}

// Value returns the truth value of v in the current assignment. It is
// meaningful for all variables after Solve returned Sat.
func (s *Solver) Value(v Var) Tribool {
	if int(v) >= len(s.assigns) {
		return Unknown
	}
	return s.assigns[v]
}

// Model returns the satisfying assignment as a slice indexed by variable.
// Unassigned variables (possible for variables outside every clause)
// default to false. Valid only after Solve returned Sat.
func (s *Solver) Model() []bool {
	m := make([]bool, len(s.assigns))
	for v := range s.assigns {
		m[v] = s.assigns[v] == True
	}
	return m
}

// AddClause adds a clause over the given literals. Duplicate literals are
// merged and tautologies are ignored. Adding the empty clause (or a
// clause falsified at the root level) makes the instance unsat; further
// additions are no-ops that keep the instance unsat.
func (s *Solver) AddClause(lits ...Lit) error {
	if s.rootUnsat {
		return nil
	}
	if s.decisionLevel() != 0 {
		s.cancelUntil(0)
	}
	// Normalize in two passes. The first sorts, dedupes, and detects
	// tautologies; the proof logs the clause at this point — before
	// root-value filtering — so the recorded input formula is exactly
	// what the caller asserted (the checker mirrors root units by its
	// own propagation, making the filtered clause the solver stores
	// propagation-equivalent). The second pass drops root-false
	// literals and root-satisfied clauses.
	tmp := make([]Lit, len(lits))
	copy(tmp, lits)
	sort.Slice(tmp, func(i, j int) bool { return tmp[i] < tmp[j] })
	ded := tmp[:0]
	var prev Lit = LitUndef
	for _, l := range tmp {
		if int(l.Var()) >= len(s.assigns) || l < 0 {
			return fmt.Errorf("sat: literal %v uses an undeclared variable", l)
		}
		if s.eliminated[l.Var()] {
			return fmt.Errorf("sat: literal %v uses a variable eliminated by Simplify (Freeze it before simplifying)", l)
		}
		if l == prev {
			continue
		}
		if prev != LitUndef && l == prev.Neg() {
			return nil // tautology
		}
		ded = append(ded, l)
		prev = l
	}
	s.proofStep(ProofInput, ded)
	out := ded[:0]
	for _, l := range ded {
		switch s.value(l) {
		case True:
			return nil // already satisfied at root
		case False:
			continue // drop
		}
		out = append(out, l)
	}
	switch len(out) {
	case 0:
		s.markRootUnsat()
		return nil
	case 1:
		s.uncheckedEnqueue(out[0], nil)
		if s.propagate() != nil {
			s.markRootUnsat()
		}
		return nil
	}
	c := &clause{lits: append([]Lit(nil), out...)}
	s.clauses = append(s.clauses, c)
	s.attach(c)
	return nil
}

func (s *Solver) attach(c *clause) {
	// Watch the first two literals. Watch lists are indexed by the
	// negation of the watched literal: when that literal becomes false
	// the clause must be inspected.
	w0, w1 := c.lits[0], c.lits[1]
	s.watches[w0.Neg()] = append(s.watches[w0.Neg()], watcher{c: c, blocker: w1})
	s.watches[w1.Neg()] = append(s.watches[w1.Neg()], watcher{c: c, blocker: w0})
}

func (s *Solver) decisionLevel() int { return len(s.trailLim) }

func (s *Solver) uncheckedEnqueue(l Lit, from *clause) {
	v := l.Var()
	if l.Sign() {
		s.assigns[v] = False
	} else {
		s.assigns[v] = True
	}
	s.level[v] = s.decisionLevel()
	s.reason[v] = from
	s.trail = append(s.trail, l)
}

// propagate performs unit propagation; it returns a conflicting clause or
// nil if a fixpoint was reached without conflict.
func (s *Solver) propagate() *clause {
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead] // p is true; clauses watching p must move
		s.qhead++
		ws := s.watches[p]
		kept := ws[:0]
		var conflict *clause
		for wi := 0; wi < len(ws); wi++ {
			w := ws[wi]
			if conflict != nil {
				kept = append(kept, ws[wi:]...)
				break
			}
			if s.value(w.blocker) == True {
				kept = append(kept, w)
				continue
			}
			c := w.c
			if c.deleted {
				continue
			}
			if len(c.lits) == 2 {
				// Binary fast path: the blocker is the other literal (attach
				// keeps this invariant — binary clauses never move watches),
				// and it is not True (checked above), so the clause is unit
				// or conflicting without scanning the literal array. 95% of
				// the grid encodings' clauses have <= 3 literals, so this
				// skips the watch-move machinery for the bulk of the
				// propagation traffic.
				kept = append(kept, w)
				if s.value(w.blocker) == False {
					conflict = c
					s.qhead = len(s.trail)
					continue
				}
				if c.lits[0] != w.blocker {
					// Reason clauses carry the implied literal at slot 0
					// (analyze relies on it).
					c.lits[0], c.lits[1] = c.lits[1], c.lits[0]
				}
				s.stats.Propagations++
				s.uncheckedEnqueue(w.blocker, c)
				continue
			}
			// Ensure the false watched literal is at position 1.
			falseLit := p.Neg()
			if c.lits[0] == falseLit {
				c.lits[0], c.lits[1] = c.lits[1], c.lits[0]
			}
			first := c.lits[0]
			if first != w.blocker && s.value(first) == True {
				kept = append(kept, watcher{c: c, blocker: first})
				continue
			}
			// Look for a new literal to watch.
			moved := false
			for k := 2; k < len(c.lits); k++ {
				if s.value(c.lits[k]) != False {
					c.lits[1], c.lits[k] = c.lits[k], c.lits[1]
					nw := c.lits[1]
					s.watches[nw.Neg()] = append(s.watches[nw.Neg()], watcher{c: c, blocker: first})
					moved = true
					break
				}
			}
			if moved {
				continue
			}
			// Clause is unit or conflicting.
			kept = append(kept, watcher{c: c, blocker: first})
			if s.value(first) == False {
				conflict = c
				s.qhead = len(s.trail)
				continue
			}
			s.stats.Propagations++
			s.uncheckedEnqueue(first, c)
		}
		s.watches[p] = kept
		if conflict != nil {
			return conflict
		}
	}
	return nil
}

func (s *Solver) cancelUntil(lvl int) {
	if s.decisionLevel() <= lvl {
		return
	}
	bound := s.trailLim[lvl]
	for i := len(s.trail) - 1; i >= bound; i-- {
		l := s.trail[i]
		v := l.Var()
		s.polarity[v] = s.assigns[v] == False
		s.assigns[v] = Unknown
		s.reason[v] = nil
		s.level[v] = -1
		s.order.push(v)
	}
	s.trail = s.trail[:bound]
	s.trailLim = s.trailLim[:lvl]
	s.qhead = len(s.trail)
}

func (s *Solver) bumpVar(v Var) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
		s.order.rebuild()
	}
	s.order.update(v)
}

func (s *Solver) bumpClause(c *clause) {
	c.act += s.clauseInc
	if c.act > 1e20 {
		for _, lc := range s.learned {
			lc.act *= 1e-20
		}
		s.clauseInc *= 1e-20
	}
}

// analyze performs first-UIP conflict analysis, returning the learned
// clause (asserting literal first) and the backjump level.
func (s *Solver) analyze(conflict *clause) ([]Lit, int) {
	learnt := s.analyzeTmp[:0]
	learnt = append(learnt, LitUndef) // slot for the asserting literal
	counter := 0
	var p Lit = LitUndef
	idx := len(s.trail) - 1
	c := conflict

	for {
		s.bumpClause(c)
		start := 0
		if p != LitUndef {
			start = 1 // c.lits[0] is p for reason clauses
		}
		for _, q := range c.lits[start:] {
			v := q.Var()
			if s.seen[v] || s.level[v] == 0 {
				continue
			}
			s.seen[v] = true
			s.bumpVar(v)
			if s.level[v] >= s.decisionLevel() {
				counter++
			} else {
				learnt = append(learnt, q)
			}
		}
		// Find the next trail literal to resolve on.
		for !s.seen[s.trail[idx].Var()] {
			idx--
		}
		p = s.trail[idx]
		idx--
		s.seen[p.Var()] = false
		counter--
		if counter == 0 {
			break
		}
		c = s.reason[p.Var()]
		// Reason clauses store the implied literal first; normalize.
		if c.lits[0] != p {
			for k := 1; k < len(c.lits); k++ {
				if c.lits[k] == p {
					c.lits[0], c.lits[k] = c.lits[k], c.lits[0]
					break
				}
			}
		}
	}
	learnt[0] = p.Neg()

	// Clause minimization: drop literals implied by the rest. Snapshot
	// the clause first: the in-place compaction below overwrites dropped
	// literals, and every touched variable must have its seen flag
	// cleared afterwards. The snapshot buffer is reused across conflicts.
	toClear := append(s.minimizeTmp[:0], learnt...)
	s.minimizeTmp = toClear
	for _, l := range learnt[1:] {
		s.seen[l.Var()] = true
	}
	j := 1
	for i := 1; i < len(learnt); i++ {
		if !s.redundant(learnt[i]) {
			learnt[j] = learnt[i]
			j++
		}
	}
	for _, l := range toClear {
		s.seen[l.Var()] = false
	}
	minimized := learnt[:j]

	// Compute backjump level (second-highest level in the clause).
	back := 0
	if len(minimized) > 1 {
		maxIdx := 1
		for i := 2; i < len(minimized); i++ {
			if s.level[minimized[i].Var()] > s.level[minimized[maxIdx].Var()] {
				maxIdx = i
			}
		}
		minimized[1], minimized[maxIdx] = minimized[maxIdx], minimized[1]
		back = s.level[minimized[1].Var()]
	}
	s.analyzeTmp = learnt[:0]
	out := append([]Lit(nil), minimized...)
	return out, back
}

// redundant reports whether literal l in a learned clause is implied by
// the remaining marked literals (local self-subsumption check: l has a
// reason all of whose literals are already marked or at level 0).
func (s *Solver) redundant(l Lit) bool {
	r := s.reason[l.Var()]
	if r == nil {
		return false
	}
	for _, q := range r.lits {
		if q.Var() == l.Var() {
			continue
		}
		if s.level[q.Var()] != 0 && !s.seen[q.Var()] {
			return false
		}
	}
	return true
}

// computeLBD counts the distinct decision levels in a clause.
func (s *Solver) computeLBD(lits []Lit) int32 {
	for k := range s.levelSeen {
		delete(s.levelSeen, k)
	}
	for _, l := range lits {
		s.levelSeen[s.level[l.Var()]] = true
	}
	return int32(len(s.levelSeen))
}

func (s *Solver) record(lits []Lit) {
	// First-UIP clauses (minimization included) are RUP by construction.
	s.proofStep(ProofAdd, lits)
	if len(lits) == 1 {
		if s.learnHook != nil {
			s.learnHook(lits, 1)
		}
		s.uncheckedEnqueue(lits[0], nil)
		return
	}
	c := &clause{lits: lits, learned: true, lbd: s.computeLBD(lits)}
	s.learned = append(s.learned, c)
	s.stats.Learned++
	s.attach(c)
	s.bumpClause(c)
	if s.learnHook != nil {
		// The clause owns lits from here on; exporters must copy.
		s.learnHook(c.lits, c.lbd)
	}
	s.uncheckedEnqueue(lits[0], c)
}

// reduceDB discards roughly half the learned clauses, preferring high-LBD
// low-activity ones. Clauses currently acting as reasons are kept.
func (s *Solver) reduceDB() {
	s.stats.Reduces++
	sort.Slice(s.learned, func(i, j int) bool {
		a, b := s.learned[i], s.learned[j]
		if a.lbd != b.lbd {
			return a.lbd < b.lbd
		}
		return a.act > b.act
	})
	keepFrom := len(s.learned) / 2
	kept := s.learned[:0]
	for i, c := range s.learned {
		if i < keepFrom || c.lbd <= 2 || s.isReason(c) {
			kept = append(kept, c)
			continue
		}
		c.deleted = true
		s.stats.Removed++
		s.proofStep(ProofDelete, c.lits)
	}
	// Compact in place: kept aliases s.learned's backing array, so only
	// the dropped tail needs clearing for the GC.
	for i := len(kept); i < len(s.learned); i++ {
		s.learned[i] = nil
	}
	s.learned = kept
	s.cleanWatches()
	s.fireEvent(EventReduce)
}

// cleanWatches drops watchers of deleted clauses and shrinks watch lists
// whose backing arrays grew far beyond their live size, so steady-state
// propagation neither scans dead entries nor pins peak-sized buffers.
func (s *Solver) cleanWatches() {
	for i := range s.watches {
		ws := s.watches[i]
		kept := ws[:0]
		for _, w := range ws {
			if !w.c.deleted {
				kept = append(kept, w)
			}
		}
		for j := len(kept); j < len(ws); j++ {
			ws[j] = watcher{}
		}
		if cap(kept) >= 16 && cap(kept) > 4*len(kept) {
			shrunk := make([]watcher, len(kept))
			copy(shrunk, kept)
			kept = shrunk
		}
		s.watches[i] = kept
	}
}

func (s *Solver) isReason(c *clause) bool {
	// Clause literals get permuted by watch maintenance, so the implied
	// literal is not necessarily at position 0: scan all of them.
	for _, l := range c.lits {
		v := l.Var()
		if s.assigns[v] != Unknown && s.reason[v] == c {
			return true
		}
	}
	return false
}

func (s *Solver) pickBranchLit() Lit {
	for !s.order.empty() {
		v := s.order.pop()
		if s.assigns[v] == Unknown && !s.eliminated[v] {
			return MkLit(v, s.polarity[v])
		}
	}
	return LitUndef
}

func luby(i int) int {
	// Luby sequence: 1,1,2,1,1,2,4,...
	for k := 1; ; k++ {
		if i == (1<<k)-1 {
			return 1 << (k - 1)
		}
		if i >= 1<<k {
			continue
		}
		return luby(i - (1 << (k - 1)) + 1)
	}
}

// nextRestartLimit advances the restart schedule and returns the number
// of conflicts allowed before the next restart: geometric growth when
// restartGeom > 1, the Luby sequence over restartBase otherwise.
func (s *Solver) nextRestartLimit() int {
	if s.restartGeom > 1 {
		if s.geomLimit < s.restartBase {
			s.geomLimit = s.restartBase
		} else {
			s.geomLimit = int(float64(s.geomLimit)*s.restartGeom) + 1
		}
		return s.geomLimit
	}
	return s.restartBase * luby(s.lubyIdx+1)
}

// interruptPollInterval is how many search-loop iterations pass between
// polls of the interrupt hook: frequent enough for sub-millisecond
// cancellation latency, rare enough that the indirect call never shows
// up in profiles.
const interruptPollInterval = 256

// Solve searches for a satisfying assignment consistent with the given
// assumption literals. It returns Sat, Unsat, or Unsolved if the conflict
// budget was exhausted or the interrupt hook fired. Per-call wall time
// and the call count accumulate into Stats.
func (s *Solver) Solve(assumptions ...Lit) Status {
	start := time.Now()
	defer func() {
		s.stats.Solves++
		s.stats.SolveTime += time.Since(start)
	}()
	if s.rootUnsat {
		return Unsat
	}
	s.cancelUntil(0)
	if s.propagate() != nil {
		s.markRootUnsat()
		return Unsat
	}

	var conflicts uint64
	restartLimit := s.nextRestartLimit()
	conflictsAtRestart := 0
	sinceInterruptPoll := 0

	for {
		if s.interrupt != nil {
			sinceInterruptPoll++
			if sinceInterruptPoll >= interruptPollInterval {
				sinceInterruptPoll = 0
				if s.interrupt() {
					s.cancelUntil(0)
					return Unsolved
				}
			}
		}
		conflict := s.propagate()
		if conflict != nil {
			s.stats.Conflicts++
			conflicts++
			conflictsAtRestart++
			if s.progress != nil && s.stats.Conflicts >= s.progressNext {
				s.progressNext = s.stats.Conflicts + s.progressEvery
				s.progress(s.progressSnapshot())
			}
			if s.decisionLevel() == 0 {
				s.markRootUnsat()
				return Unsat
			}
			learnt, back := s.analyze(conflict)
			s.cancelUntil(back)
			s.record(learnt)
			s.varInc /= s.varDecay
			s.clauseInc /= s.clauseDecay
			if s.conflictBudget > 0 && conflicts >= s.conflictBudget {
				s.cancelUntil(0)
				return Unsolved
			}
			if s.conflictHook != nil && s.conflictHook(conflicts) {
				s.cancelUntil(0)
				return Unsolved
			}
			continue
		}

		if conflictsAtRestart >= restartLimit {
			// Restart; assumptions are re-enqueued on the next descent.
			s.lubyIdx++
			s.stats.Restarts++
			restartLimit = s.nextRestartLimit()
			conflictsAtRestart = 0
			s.cancelUntil(0)
			s.fireEvent(EventRestart)
			if s.restartHook != nil {
				// Portfolio import + inprocessing runs at the root. It may
				// add clauses and root units, or discover root-level unsat.
				s.restartHook()
				if s.rootUnsat {
					return Unsat
				}
				if s.propagate() != nil {
					s.markRootUnsat()
					return Unsat
				}
			} else if s.inprocess && s.stats.Restarts%inprocessEvery == 0 {
				s.simplifyRoots()
				s.vivifyRound(vivifyClausesPerRound)
				if s.rootUnsat {
					return Unsat
				}
				if s.propagate() != nil {
					s.markRootUnsat()
					return Unsat
				}
			}
			continue
		}
		if len(s.learned) > s.maxLearned+len(s.trail) {
			s.reduceDB()
		}

		// Place assumptions as pseudo-decisions before free decisions.
		next, pending := s.nextAssumption(assumptions)
		if pending {
			if next == LitUndef {
				// An assumption is falsified by the current forced
				// assignment: unsat under these assumptions.
				s.cancelUntil(0)
				return Unsat
			}
			s.trailLim = append(s.trailLim, len(s.trail))
			s.uncheckedEnqueue(next, nil)
			continue
		}

		l := s.pickBranchLit()
		if l == LitUndef {
			s.extendModel()
			return Sat
		}
		s.stats.Decisions++
		s.trailLim = append(s.trailLim, len(s.trail))
		s.uncheckedEnqueue(l, nil)
	}
}

// nextAssumption returns the next assumption to decide on. The second
// result is false when all assumptions are already enqueued. A LitUndef
// first result signals an assumption that is false under the current
// (root-level) assignment.
func (s *Solver) nextAssumption(assumptions []Lit) (Lit, bool) {
	for s.decisionLevel() < len(assumptions) {
		a := assumptions[s.decisionLevel()]
		switch s.value(a) {
		case True:
			// Already satisfied; open an empty pseudo-level to keep
			// level bookkeeping aligned with the assumption index.
			s.trailLim = append(s.trailLim, len(s.trail))
			continue
		case False:
			return LitUndef, true
		default:
			return a, true
		}
	}
	return 0, false
}
