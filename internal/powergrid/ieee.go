package powergrid

import (
	"fmt"
	"math/rand"
)

// IEEE14 returns the IEEE 14-bus test system with its standard branch
// reactances (susceptance = 1/x).
func IEEE14() *BusSystem {
	x := []struct {
		f, t int
		x    float64
	}{
		{1, 2, 0.05917}, {1, 5, 0.22304}, {2, 3, 0.19797}, {2, 4, 0.17632},
		{2, 5, 0.17388}, {3, 4, 0.17103}, {4, 5, 0.04211}, {4, 7, 0.20912},
		{4, 9, 0.55618}, {5, 6, 0.25202}, {6, 11, 0.19890}, {6, 12, 0.25581},
		{6, 13, 0.13027}, {7, 8, 0.17615}, {7, 9, 0.11001}, {9, 10, 0.08450},
		{9, 14, 0.27038}, {10, 11, 0.19207}, {12, 13, 0.19988}, {13, 14, 0.34802},
	}
	branches := make([]Branch, len(x))
	for i, e := range x {
		branches[i] = Branch{From: e.f, To: e.t, Susceptance: 1 / e.x}
	}
	return &BusSystem{Name: "ieee14", NBuses: 14, Branches: branches}
}

// Case5 returns the 5-bus subsystem of the IEEE 14-bus system used in
// the paper's Section IV case study (buses 1–5 and the 7 lines among
// them).
func Case5() *BusSystem {
	full := IEEE14()
	var branches []Branch
	for _, br := range full.Branches {
		if br.From <= 5 && br.To <= 5 {
			branches = append(branches, br)
		}
	}
	return &BusSystem{Name: "case5", NBuses: 5, Branches: branches}
}

// IEEE-like generated systems. The paper evaluates on the IEEE
// 30/57/118-bus systems; the verifier consumes only the Jacobian's
// sparsity pattern, so deterministic topologies with the published
// bus/branch counts and the grid-characteristic average degree ≈ 3
// reproduce the same problem sizes (see DESIGN.md, substitutions).
const (
	ieee30Branches  = 41
	ieee57Branches  = 80
	ieee118Branches = 186
)

// IEEE30 returns a deterministic IEEE-30-like system (30 buses, 41
// branches).
func IEEE30() *BusSystem { return generateLike("ieee30", 30, ieee30Branches, 30) }

// IEEE57 returns a deterministic IEEE-57-like system (57 buses, 80
// branches).
func IEEE57() *BusSystem { return generateLike("ieee57", 57, ieee57Branches, 57) }

// IEEE118 returns a deterministic IEEE-118-like system (118 buses, 186
// branches).
func IEEE118() *BusSystem { return generateLike("ieee118", 118, ieee118Branches, 118) }

// ByName returns a named test system: "ieee14", "ieee30", "ieee57",
// "ieee118", or "case5".
func ByName(name string) (*BusSystem, error) {
	switch name {
	case "ieee14":
		return IEEE14(), nil
	case "ieee30":
		return IEEE30(), nil
	case "ieee57":
		return IEEE57(), nil
	case "ieee118":
		return IEEE118(), nil
	case "case5":
		return Case5(), nil
	}
	return nil, fmt.Errorf("powergrid: unknown bus system %q", name)
}

func generateLike(name string, buses, branches int, seed int64) *BusSystem {
	sys, err := Generate(buses, branches, rand.New(rand.NewSource(seed)))
	if err != nil {
		// Only reachable with inconsistent constants above.
		panic(fmt.Sprintf("powergrid: generating %s: %v", name, err))
	}
	sys.Name = name
	return sys
}

// Generate produces a random connected bus system with the given bus and
// branch counts. Topology generation mimics transmission grids: a random
// spanning tree plus extra lines attached preferentially to low-degree
// buses, keeping the average degree near 2·branches/buses (≈3 for the
// IEEE-like parameterizations). Reactances are drawn from the range
// spanned by the IEEE 14-bus system.
func Generate(buses, branches int, rng *rand.Rand) (*BusSystem, error) {
	if buses < 2 {
		return nil, fmt.Errorf("powergrid: need at least 2 buses, got %d", buses)
	}
	if branches < buses-1 {
		return nil, fmt.Errorf("powergrid: %d branches cannot connect %d buses", branches, buses)
	}
	maxBranches := buses * (buses - 1) / 2
	if branches > maxBranches {
		return nil, fmt.Errorf("powergrid: %d branches exceed simple-graph maximum %d", branches, maxBranches)
	}

	used := make(map[[2]int]bool, branches)
	key := func(a, b int) [2]int {
		if a > b {
			a, b = b, a
		}
		return [2]int{a, b}
	}
	reactance := func() float64 { return 0.04 + rng.Float64()*0.31 }

	out := &BusSystem{Name: "generated", NBuses: buses}
	// Spanning tree: each new bus attaches to a random earlier bus,
	// biased toward recent buses to keep the tree path-like, as
	// transmission backbones are.
	for v := 2; v <= buses; v++ {
		lo := v - 1 - rng.Intn(minInt(v-1, 4))
		u := lo + rng.Intn(v-lo)
		if u == v {
			u = v - 1
		}
		used[key(u, v)] = true
		out.Branches = append(out.Branches, Branch{From: u, To: v, Susceptance: 1 / reactance()})
	}
	// Extra lines: random pairs preferring low-degree buses.
	deg := out.Degree()
	for len(out.Branches) < branches {
		u := 1 + rng.Intn(buses)
		v := 1 + rng.Intn(buses)
		if u == v || used[key(u, v)] {
			continue
		}
		// Rejection-sample against high degrees to hold avg degree ~3.
		if deg[u]+deg[v] > 6 && rng.Intn(3) != 0 {
			continue
		}
		used[key(u, v)] = true
		deg[u]++
		deg[v]++
		out.Branches = append(out.Branches, Branch{From: u, To: v, Susceptance: 1 / reactance()})
	}
	return out, nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
